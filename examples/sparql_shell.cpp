// An interactive SPARQL shell over any of the nine reproduced engines.
//
//   $ ./sparql_shell data.nt [engine]
//   sparql> SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }
//   sparql>                                   (blank line executes)
//
// Engines: haqwa sparqlgx s2rdf hybrid s2x graphxsm sparkql graphframes
// sparkrdf (default: s2rdf).
// Dot-commands: .engines .metrics .stats .explain .lint .lineage
// .analyze .profile .trace .quit
// `.metrics prom` prints the same Metrics snapshot in Prometheus text
// exposition format (what a scrape of the serving layer would see).
// `.explain` prints the engine's physical plan (EXPLAIN) for the query
// currently buffered at the prompt, without executing it.
// `.lint [tiers]` runs the tiered static lint over the buffered query:
// tier A (QA rules, pure AST), tier B (plan verifier SC/CP/BC/ST/VP
// rules), tier D (resource envelope RS rules + per-stage byte envelope,
// see systems/plan/resource.h) — all without executing — then tier C,
// which executes once inside a happens-before recorder window and
// appends the race & determinism findings (RC/DT rules, see spark/hb.h).
// With no argument all four tiers run; `.lint A,B,D` (or `.lint bd`)
// selects a subset.
// `.lineage` *executes* the buffered query's BGP, snapshots the RDD
// lineage DAG it built, and prints the lineage analyzer's findings
// (LN rules: uncached reuse, redundant shuffle, deep shuffle chains)
// followed by a Graphviz DOT export of the DAG.
// `.analyze` *executes* the buffered query with per-operator actuals
// collection and prints EXPLAIN ANALYZE (estimated vs actual rows,
// estimate error, per-node runtime counters).
// `.profile` prints the tracer's compact text timeline of everything run
// so far (enable with `.trace on` first).
// `.trace on|off|<file.json>` toggles runtime tracing or exports the
// collected spans as Chrome chrome://tracing JSON to <file.json>.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "obs/prometheus.h"
#include "rdf/ntriples.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "sparql/parser.h"
#include "systems/engine.h"
#include "systems/graphframes_engine.h"
#include "systems/graphx_sm.h"
#include "systems/haqwa.h"
#include "systems/hybrid.h"
#include "systems/s2rdf.h"
#include "systems/s2x.h"
#include "systems/sparkql.h"
#include "systems/sparkrdf.h"
#include "systems/sparqlgx.h"

namespace {

using namespace rdfspark;

std::unique_ptr<systems::RdfQueryEngine> MakeEngine(
    const std::string& name, spark::SparkContext* sc) {
  if (name == "haqwa") return std::make_unique<systems::HaqwaEngine>(sc);
  if (name == "sparqlgx") return std::make_unique<systems::SparqlgxEngine>(sc);
  if (name == "s2rdf") return std::make_unique<systems::S2rdfEngine>(sc);
  if (name == "hybrid") return std::make_unique<systems::HybridEngine>(sc);
  if (name == "s2x") return std::make_unique<systems::S2xEngine>(sc);
  if (name == "graphxsm") return std::make_unique<systems::GraphxSmEngine>(sc);
  if (name == "sparkql") return std::make_unique<systems::SparkqlEngine>(sc);
  if (name == "graphframes") {
    return std::make_unique<systems::GraphFramesEngine>(sc);
  }
  if (name == "sparkrdf") return std::make_unique<systems::SparkRdfEngine>(sc);
  return nullptr;
}

void RunQuery(systems::RdfQueryEngine* engine, const rdf::TripleStore& store,
              const std::string& text) {
  auto parsed = sparql::ParseQuery(text);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  auto before = engine->context()->metrics();
  // CONSTRUCT/DESCRIBE output triples; SELECT/ASK output bindings.
  if (parsed->form == sparql::QueryForm::kConstruct ||
      parsed->form == sparql::QueryForm::kDescribe) {
    auto triples =
        parsed->form == sparql::QueryForm::kConstruct
            ? systems::ExecuteConstruct(engine, store, *parsed)
            : systems::ExecuteDescribe(engine, store, *parsed);
    auto delta = engine->context()->metrics() - before;
    if (!triples.ok()) {
      std::printf("error: %s\n", triples.status().ToString().c_str());
      return;
    }
    size_t shown = 0;
    for (const auto& t : *triples) {
      if (shown++ >= 40) {
        std::printf("... (%zu triples total)\n", triples->size());
        break;
      }
      std::printf("%s\n", t.ToNTriples().c_str());
    }
    std::printf("-- %zu triples; %llu shuffled records, %.3f sim ms\n",
                triples->size(),
                static_cast<unsigned long long>(delta.shuffle_records),
                delta.simulated_ms.ms());
    return;
  }
  auto result = engine->Execute(*parsed);
  auto delta = engine->context()->metrics() - before;
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->ToString(store.dictionary(), 40).c_str());
  std::printf("-- %llu rows; %llu shuffled records, %llu tasks, %.3f sim ms\n",
              static_cast<unsigned long long>(result->num_rows()),
              static_cast<unsigned long long>(delta.shuffle_records),
              static_cast<unsigned long long>(delta.tasks),
              delta.simulated_ms.ms());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <data.nt> [engine]\n"
                 "engines: haqwa sparqlgx s2rdf hybrid s2x graphxsm sparkql "
                 "graphframes sparkrdf\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto triples = rdf::ParseNTriplesDocument(buffer.str());
  if (!triples.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 triples.status().ToString().c_str());
    return 1;
  }
  rdf::TripleStore store;
  store.AddAll(*triples);
  store.Dedupe();

  spark::ClusterConfig cluster;
  cluster.num_executors = 4;
  cluster.default_parallelism = 8;
  spark::SparkContext sc(cluster);
  std::string engine_name = argc > 2 ? argv[2] : "s2rdf";
  auto engine = MakeEngine(engine_name, &sc);
  if (!engine) {
    std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 2;
  }
  auto load = engine->Load(store);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 load.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu triples loaded into %s (%.1f ms, %llu stored records)\n",
              store.size(), engine->traits().name.c_str(), load->wall_ms,
              static_cast<unsigned long long>(load->stored_records));
  std::printf(
      "enter a SPARQL query, blank line to run; .explain/.lint/.lineage/"
      ".analyze to inspect the buffered query; .trace on + .profile for "
      "timelines; .quit to exit\n");

  std::string pending;
  std::string line;
  std::printf("sparql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed(TrimWhitespace(line));
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".engines") {
      std::printf(
          "haqwa sparqlgx s2rdf hybrid s2x graphxsm sparkql graphframes "
          "sparkrdf\n");
    } else if (trimmed == ".explain") {
      if (TrimWhitespace(pending).empty()) {
        std::printf(
            "usage: type a query first (don't run it), then .explain\n");
      } else {
        auto explained = engine->ExplainText(pending);
        if (explained.ok()) {
          std::printf("%s", explained->c_str());
        } else {
          std::printf("error: %s\n", explained.status().ToString().c_str());
        }
      }
    } else if (trimmed == ".lint" || trimmed.rfind(".lint ", 0) == 0) {
      if (TrimWhitespace(pending).empty()) {
        std::printf("usage: type a query first (don't run it), then .lint\n");
      } else {
        // `.lint` runs every tier; `.lint A,B,D` (or `.lint bd`) a subset.
        std::string arg = trimmed.size() > 5
                              ? std::string(TrimWhitespace(trimmed.substr(5)))
                              : std::string();
        bool tier[4] = {arg.empty(), arg.empty(), arg.empty(), arg.empty()};
        bool arg_ok = true;
        for (char c : arg) {
          char u = (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A')
                                          : c;
          if (u == ',' || u == ' ') continue;
          if (u >= 'A' && u <= 'D') {
            tier[u - 'A'] = true;
          } else {
            arg_ok = false;
            break;
          }
        }
        auto* bgp_engine =
            dynamic_cast<systems::BgpEngineBase*>(engine.get());
        if (!arg_ok) {
          std::printf("usage: .lint [tiers], e.g. `.lint A,B,D`; tiers are "
                      "A (query), B (plan), C (races), D (resources)\n");
        } else if (bgp_engine == nullptr) {
          std::printf("error: engine does not expose the tiered lint\n");
        } else {
          std::vector<systems::plan::Diagnostic> diags;
          std::string envelope;
          bool failed = false;
          if (tier[0]) {
            auto analyzed = bgp_engine->AnalyzeQueryText(pending);
            if (analyzed.ok()) {
              for (auto& d : *analyzed) diags.push_back(std::move(d));
            } else {
              std::printf("tier A error: %s\n",
                          analyzed.status().ToString().c_str());
              failed = true;
            }
          }
          if (tier[1]) {
            auto linted = bgp_engine->LintQuery(pending);
            if (linted.ok()) {
              for (auto& d : *linted) diags.push_back(std::move(d));
            } else {
              std::printf("tier B error: %s\n",
                          linted.status().ToString().c_str());
              failed = true;
            }
          }
          if (tier[3]) {
            auto analysis = bgp_engine->ResourceEnvelope(pending);
            if (analysis.ok()) {
              for (auto& d : analysis->findings) diags.push_back(std::move(d));
              envelope = systems::plan::RenderEnvelope(*analysis);
            } else {
              std::printf("tier D error: %s\n",
                          analysis.status().ToString().c_str());
              failed = true;
            }
          }
          if (!failed && (tier[0] || tier[1] || tier[3])) {
            std::printf("%s%s",
                        systems::plan::RenderDiagnostics(std::move(diags))
                            .c_str(),
                        envelope.c_str());
          }
          if (!failed && tier[2]) {
            auto raced = bgp_engine->RaceCheckText(pending);
            if (raced.ok()) {
              std::printf("tier C (happens-before):\n%s", raced->c_str());
            } else {
              std::printf("tier C error: %s\n",
                          raced.status().ToString().c_str());
            }
          }
        }
      }
    } else if (trimmed == ".lineage") {
      if (TrimWhitespace(pending).empty()) {
        std::printf(
            "usage: type a query first (don't run it), then .lineage\n");
      } else if (auto* bgp_engine =
                     dynamic_cast<systems::BgpEngineBase*>(engine.get())) {
        auto lineage = bgp_engine->LineageText(pending);
        if (lineage.ok()) {
          std::printf("%s", lineage->c_str());
        } else {
          std::printf("error: %s\n", lineage.status().ToString().c_str());
        }
      } else {
        std::printf("error: engine does not expose RDD lineage\n");
      }
    } else if (trimmed == ".analyze") {
      if (TrimWhitespace(pending).empty()) {
        std::printf(
            "usage: type a query first (don't run it), then .analyze\n");
      } else {
        auto analyzed = engine->ExplainAnalyzeText(pending);
        if (analyzed.ok()) {
          std::printf("%s", analyzed->c_str());
        } else {
          std::printf("error: %s\n", analyzed.status().ToString().c_str());
        }
      }
    } else if (trimmed == ".profile") {
      if (sc.tracer().event_count() == 0) {
        std::printf("no spans recorded; `.trace on` then run a query\n");
      } else {
        std::printf("%s", sc.tracer().ToTimelineText().c_str());
      }
    } else if (trimmed == ".trace on") {
      sc.tracer().set_enabled(true);
      std::printf("tracing enabled\n");
    } else if (trimmed == ".trace off") {
      sc.tracer().set_enabled(false);
      std::printf("tracing disabled (%zu spans buffered)\n",
                  sc.tracer().event_count());
    } else if (trimmed.rfind(".trace ", 0) == 0) {
      std::string path(TrimWhitespace(trimmed.substr(7)));
      std::ofstream out(path);
      if (!out) {
        std::printf("cannot write %s\n", path.c_str());
      } else {
        out << sc.tracer().ToChromeTraceJson();
        std::printf("wrote %zu spans to %s (open in chrome://tracing)\n",
                    sc.tracer().event_count(), path.c_str());
      }
    } else if (trimmed == ".metrics") {
      std::printf("%s\n", sc.metrics().ToString().c_str());
    } else if (trimmed == ".metrics prom") {
      // Prometheus text exposition of the same snapshot (the serving
      // layer's scrape format; see obs/prometheus.h).
      std::printf("%s", obs::ExpositionForMetrics(sc.metrics(), "rdfspark_")
                            .c_str());
    } else if (trimmed == ".stats") {
      auto stats = store.ComputeStatistics();
      std::printf(
          "triples=%llu subjects=%llu predicates=%llu objects=%llu\n",
          static_cast<unsigned long long>(stats.num_triples),
          static_cast<unsigned long long>(stats.distinct_subjects),
          static_cast<unsigned long long>(stats.distinct_predicates),
          static_cast<unsigned long long>(stats.distinct_objects));
    } else if (trimmed.empty()) {
      if (!TrimWhitespace(pending).empty()) {
        RunQuery(engine.get(), store, pending);
      }
      pending.clear();
    } else {
      pending += line;
      pending += '\n';
    }
    std::printf("sparql> ");
    std::fflush(stdout);
  }
  // Run any trailing query on EOF.
  if (!TrimWhitespace(pending).empty()) {
    std::printf("\n");
    RunQuery(engine.get(), store, pending);
  }
  return 0;
}
