// The paper notes that GraphX "comes with well known graph processing
// algorithms, like pagerank, triangle counting and shortest paths
// computation" (§III). This example builds a property graph from a
// generated social RDF dataset (WatDiv-style) and runs those algorithms.
//
//   $ ./graph_analytics

#include <algorithm>
#include <cstdio>
#include <vector>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "spark/graphx/algorithms.h"
#include "spark/graphx/graph.h"

int main() {
  using namespace rdfspark;
  using spark::graphx::Edge;
  using spark::graphx::Graph;
  using spark::graphx::VertexId;

  // Social RDF data with Zipf-skewed popularity.
  rdf::WatdivConfig cfg;
  cfg.num_users = 120;
  cfg.num_products = 60;
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateWatdiv(cfg));
  store.Dedupe();
  std::printf("WatDiv-style dataset: %zu triples\n", store.size());

  spark::ClusterConfig cluster;
  cluster.num_executors = 4;
  cluster.default_parallelism = 8;
  spark::SparkContext sc(cluster);

  // Follow graph only.
  auto follows =
      store.dictionary().Lookup(rdf::Term::Uri(
          std::string(rdf::kWdPrefix) + "follows"));
  if (!follows.ok()) {
    std::fprintf(stderr, "no follows edges generated\n");
    return 1;
  }
  std::vector<Edge<int>> edges;
  for (const auto& t : store.triples()) {
    if (t.p == *follows) {
      edges.push_back(Edge<int>{static_cast<VertexId>(t.s),
                                static_cast<VertexId>(t.o), 0});
    }
  }
  auto graph = Graph<int, int>::FromEdges(&sc, edges, 0, 8);
  std::printf("follow graph: %llu vertices, %llu edges\n\n",
              static_cast<unsigned long long>(graph.NumVertices()),
              static_cast<unsigned long long>(graph.NumEdges()));

  // PageRank: who are the influencers?
  auto ranks = PageRank(graph, 15).Collect();
  std::sort(ranks.begin(), ranks.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("top-5 PageRank users:\n");
  for (size_t i = 0; i < 5 && i < ranks.size(); ++i) {
    auto name = store.dictionary().DecodeString(
        static_cast<rdf::TermId>(ranks[i].first));
    std::printf("  %5.3f  %s\n", ranks[i].second,
                name.ok() ? name->c_str() : "?");
  }

  // Connected components of the follow graph.
  auto components = ConnectedComponents(graph).Collect();
  std::vector<VertexId> ids;
  for (const auto& [v, c] : components) ids.push_back(c);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::printf("\nconnected components: %zu\n", ids.size());

  // Triangles: mutual-follow cliques.
  std::printf("triangles in the follow graph: %llu\n",
              static_cast<unsigned long long>(TriangleCount(graph)));

  // Shortest paths from the most-followed user.
  if (!ranks.empty()) {
    auto dists = ShortestPaths(graph, ranks[0].first).Collect();
    int reachable = 0;
    double max_hops = 0;
    for (const auto& [v, d] : dists) {
      if (d < 1e17) {
        ++reachable;
        max_hops = std::max(max_hops, d);
      }
    }
    std::printf("from the top user: %d reachable, eccentricity %.0f hops\n",
                reachable, max_hops);
  }

  std::printf("\nGraphX supersteps executed: %llu, messages: %llu\n",
              static_cast<unsigned long long>(sc.metrics().supersteps),
              static_cast<unsigned long long>(sc.metrics().messages));
  return 0;
}
