// Runs the four query shapes of the paper's §II.B over a generated
// LUBM-style university dataset, on all nine reproduced systems, and prints
// a side-by-side comparison — a miniature of the survey's assessment.
//
//   $ ./university_queries [universities]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "sparql/parser.h"
#include "systems/engine.h"

int main(int argc, char** argv) {
  using namespace rdfspark;

  int universities = argc > 1 ? std::atoi(argv[1]) : 1;
  if (universities < 1) universities = 1;

  rdf::LubmConfig cfg;
  cfg.num_universities = universities;
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.Dedupe();
  std::printf("LUBM(%d): %zu triples, %zu dictionary terms\n\n", universities,
              store.size(), store.dictionary().size());

  spark::ClusterConfig cluster;
  cluster.num_executors = 4;
  cluster.default_parallelism = 8;
  spark::SparkContext sc(cluster);
  auto engines = systems::MakeAllEngines(&sc);

  std::printf("%-26s %-11s %8s %10s %12s %8s\n", "system", "shape", "rows",
              "sim_ms", "shuffle_rec", "steps");
  std::printf("%s\n", std::string(80, '-').c_str());
  for (auto& engine : engines) {
    auto load = engine->Load(store);
    if (!load.ok()) {
      std::printf("%-26s load failed: %s\n", engine->traits().name.c_str(),
                  load.status().ToString().c_str());
      continue;
    }
    for (auto shape :
         {rdf::QueryShape::kStar, rdf::QueryShape::kLinear,
          rdf::QueryShape::kSnowflake}) {
      auto query = sparql::ParseQuery(rdf::LubmShapeQuery(shape));
      if (!query.ok()) continue;
      auto before = sc.metrics();
      auto result = engine->Execute(*query);
      auto delta = sc.metrics() - before;
      if (!result.ok()) {
        std::printf("%-26s %-11s %s\n", engine->traits().name.c_str(),
                    rdf::QueryShapeName(shape),
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("%-26s %-11s %8llu %10.2f %12llu %8llu\n",
                  engine->traits().name.c_str(), rdf::QueryShapeName(shape),
                  static_cast<unsigned long long>(result->num_rows()),
                  delta.simulated_ms.ms(),
                  static_cast<unsigned long long>(delta.shuffle_records),
                  static_cast<unsigned long long>(delta.supersteps));
    }
  }
  std::printf(
      "\nNote the Table II contrasts: subject-hash systems answer stars\n"
      "without shuffling; graph engines run supersteps; S2RDF's ExtVP\n"
      "avoids shuffles entirely on these shapes.\n");
  return 0;
}
