// The paper's closing direction (§V): RDF data "are constantly evolving,
// typically without any warning", so systems must track versions and keep
// answering queries uninterrupted. This example maintains a delta-chain
// archive of an evolving department and queries it at several points in
// its history.
//
//   $ ./versioned_store

#include <cstdio>

#include "rdf/versioning.h"
#include "sparql/eval.h"
#include "sparql/parser.h"

namespace {

rdfspark::rdf::Triple T(const std::string& s, const std::string& p,
                        const std::string& o) {
  using rdfspark::rdf::Term;
  return {Term::Uri("http://ex/" + s), Term::Uri("http://ex/" + p),
          Term::Uri("http://ex/" + o)};
}

}  // namespace

int main() {
  using namespace rdfspark;

  rdf::VersionedStore archive;

  // v1: the initial team.
  rdf::Delta v1;
  v1.added = {T("alice", "worksFor", "acme"), T("bob", "worksFor", "acme"),
              T("carol", "worksFor", "acme")};
  v1.message = "initial team";
  (void)archive.Commit(v1);

  // v2: bob leaves, dave joins.
  rdf::Delta v2;
  v2.removed = {T("bob", "worksFor", "acme")};
  v2.added = {T("dave", "worksFor", "acme")};
  v2.message = "bob -> dave";
  (void)archive.Commit(v2);

  // v3: a re-org adds a second department.
  rdf::Delta v3;
  v3.added = {T("erin", "worksFor", "acme-labs"),
              T("acme-labs", "subOrganizationOf", "acme")};
  v3.message = "acme-labs spun up";
  (void)archive.Commit(v3);

  auto query = sparql::ParseQuery(
      "SELECT ?who WHERE { ?who <http://ex/worksFor> <http://ex/acme> }");
  if (!query.ok()) return 1;

  for (int version = 1; version <= archive.latest_version(); ++version) {
    auto store = archive.Materialize(version);
    if (!store.ok()) continue;
    sparql::ReferenceEvaluator eval(&*store);
    auto result = eval.Evaluate(*query);
    std::printf("version %d (%llu triples): who works for acme?\n", version,
                static_cast<unsigned long long>(store->size()));
    if (result.ok()) {
      std::printf("%s\n", result->ToString(store->dictionary()).c_str());
    }
  }

  auto net = archive.DeltaBetween(1, archive.latest_version());
  if (net.ok()) {
    std::printf("net change v1 -> v%d: +%zu / -%zu triples\n",
                archive.latest_version(), net->added.size(),
                net->removed.size());
  }
  std::printf("archive stores %llu delta records in total\n",
              static_cast<unsigned long long>(archive.StoredRecords()));
  return 0;
}
