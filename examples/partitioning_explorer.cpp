// Demonstrates the paper's central assessment — "data partitioning is a
// key element of efficient query processing" (§V) — by contrasting how
// HAQWA's fragmentation handles star vs linear queries, with and without
// workload-aware replication, and showing the RDD lineage behind one plan.
//
//   $ ./partitioning_explorer

#include <cstdio>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "systems/haqwa.h"

namespace {

void RunOne(const char* label, rdfspark::systems::HaqwaEngine* engine,
            const std::string& query) {
  auto* sc = engine->context();
  auto before = sc->metrics();
  auto result = engine->ExecuteText(query);
  auto delta = sc->metrics() - before;
  if (!result.ok()) {
    std::printf("%-32s %s\n", label, result.status().ToString().c_str());
    return;
  }
  std::printf("%-32s rows=%-5llu shuffle_rec=%-6llu remote=%-8llu sim_ms=%.2f\n",
              label, static_cast<unsigned long long>(result->num_rows()),
              static_cast<unsigned long long>(delta.shuffle_records),
              static_cast<unsigned long long>(delta.remote_shuffle_bytes),
              delta.simulated_ms.ms());
}

}  // namespace

int main() {
  using namespace rdfspark;

  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
  store.Dedupe();

  const std::string star = rdf::LubmShapeQuery(rdf::QueryShape::kStar, 4);
  const std::string linear = rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3);

  std::printf("== HAQWA, plain subject-hash fragmentation ==\n");
  spark::SparkContext sc1(spark::ClusterConfig{});
  systems::HaqwaEngine plain(&sc1);
  if (!plain.Load(store).ok()) return 1;
  RunOne("star (local by construction)", &plain, star);
  RunOne("linear (must shuffle)", &plain, linear);

  std::printf(
      "\n== HAQWA, workload-aware allocation for the linear query ==\n");
  spark::SparkContext sc2(spark::ClusterConfig{});
  systems::HaqwaEngine::Options opts;
  opts.frequent_queries = {linear};
  systems::HaqwaEngine aware(&sc2, opts);
  auto load = aware.Load(store);
  if (!load.ok()) return 1;
  std::printf("replicated %llu triples during load (storage for locality)\n",
              static_cast<unsigned long long>(aware.replicated_triples()));
  RunOne("star (unchanged)", &aware, star);
  RunOne("linear (replicas join locally)", &aware, linear);

  std::printf(
      "\n== The machinery underneath: an RDD lineage with partitioners ==\n");
  spark::SparkContext sc3(spark::ClusterConfig{});
  std::vector<std::pair<int, int>> kv;
  for (int i = 0; i < 64; ++i) kv.emplace_back(i % 8, i);
  auto rdd = Parallelize(&sc3, kv, 4)
                 .PartitionByKey(8, "hash-subject")
                 .MapValues([](const int& v) { return v * 2; })
                 .Filter([](const std::pair<int, int>& p) {
                   return p.second % 3 == 0;
                 });
  std::printf("%s", rdd.DebugString().c_str());
  std::printf("partitioner preserved: %s\n",
              rdd.partitioner() ? rdd.partitioner()->kind.c_str() : "none");
  return 0;
}
