// Quickstart: load N-Triples data, materialize RDFS inferences, and answer
// a SPARQL query with one of the reproduced engines (S2RDF here).
//
//   $ ./quickstart
//
// This walks the core public API end to end:
//   ParseNTriplesDocument -> TripleStore -> MaterializeRdfs
//   -> SparkContext + engine -> ExecuteText -> BindingTable.

#include <cstdio>

#include "rdf/ntriples.h"
#include "rdf/rdfs.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "systems/s2rdf.h"

namespace {

constexpr char kData[] = R"(
<http://ex/alice>  <http://ex/worksFor>  <http://ex/acme> .
<http://ex/bob>    <http://ex/headOf>    <http://ex/acme> .
<http://ex/carol>  <http://ex/worksFor>  <http://ex/initech> .
<http://ex/alice>  <http://ex/age>       "34"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/bob>    <http://ex/age>       "41"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/headOf> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://ex/worksFor> .
)";

constexpr char kQuery[] = R"(
PREFIX ex: <http://ex/>
SELECT ?who ?org ?age WHERE {
  ?who ex:worksFor ?org .
  OPTIONAL { ?who ex:age ?age }
}
ORDER BY ?who
)";

}  // namespace

int main() {
  using namespace rdfspark;

  // 1. Parse and load.
  auto triples = rdf::ParseNTriplesDocument(kData);
  if (!triples.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 triples.status().ToString().c_str());
    return 1;
  }
  rdf::TripleStore store;
  store.AddAll(*triples);
  std::printf("loaded %zu triples\n", store.size());

  // 2. RDFS inference: headOf is a sub-property of worksFor, so bob also
  // worksFor acme after materialization.
  auto inferred = rdf::MaterializeRdfs(&store);
  std::printf("RDFS materialization added %llu triples in %d rounds\n",
              static_cast<unsigned long long>(inferred.inferred_triples),
              inferred.iterations);

  // 3. Spin up a simulated 4-executor cluster and load the S2RDF engine.
  spark::ClusterConfig cluster;
  cluster.num_executors = 4;
  cluster.default_parallelism = 8;
  spark::SparkContext sc(cluster);
  systems::S2rdfEngine engine(&sc);
  auto load = engine.Load(store);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 load.status().ToString().c_str());
    return 1;
  }
  std::printf("S2RDF loaded: %llu stored records (%llu ExtVP tables)\n\n",
              static_cast<unsigned long long>(load->stored_records),
              static_cast<unsigned long long>(engine.num_extvp_tables()));

  // 4. Query.
  auto result = engine.ExecuteText(kQuery);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToString(store.dictionary()).c_str());

  // 5. What did the cluster do?
  std::printf("cluster metrics:\n%s\n", sc.metrics().ToString().c_str());
  return 0;
}
