// Dataset generator CLI: writes LUBM-style or WatDiv-style synthetic RDF
// to an N-Triples file — the input for sparql_shell and for external tools.
//
//   $ ./generate_data lubm 2 /tmp/lubm2.nt
//   $ ./generate_data watdiv 500 /tmp/watdiv.nt     (500 = users)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "rdf/generator.h"
#include "rdf/ntriples.h"

int main(int argc, char** argv) {
  using namespace rdfspark;
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: %s <lubm|watdiv> <scale> <out.nt>\n"
                 "  lubm scale   = number of universities\n"
                 "  watdiv scale = number of users\n",
                 argv[0]);
    return 2;
  }
  int scale = std::atoi(argv[2]);
  if (scale < 1) {
    std::fprintf(stderr, "scale must be >= 1\n");
    return 2;
  }
  std::vector<rdf::Triple> triples;
  if (std::strcmp(argv[1], "lubm") == 0) {
    rdf::LubmConfig cfg;
    cfg.num_universities = scale;
    triples = rdf::GenerateLubm(cfg);
    // Include the schema so RDFS consumers can materialize.
    for (auto& t : rdf::LubmSchema()) triples.push_back(t);
  } else if (std::strcmp(argv[1], "watdiv") == 0) {
    rdf::WatdivConfig cfg;
    cfg.num_users = scale;
    cfg.num_products = scale / 2 + 1;
    triples = rdf::GenerateWatdiv(cfg);
  } else {
    std::fprintf(stderr, "unknown generator '%s'\n", argv[1]);
    return 2;
  }
  std::ofstream out(argv[3]);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  out << rdf::WriteNTriples(triples);
  std::printf("wrote %zu triples to %s\n", triples.size(), argv[3]);
  return 0;
}
