// Regenerates Figure 1 of the paper: the taxonomy of dimensions for
// organizing RDF query processing methods, as a tree annotated with the
// implemented systems that sit in each leaf.

#include <cstdio>
#include <string>

#include "bench_util.h"

namespace rdfspark::bench {
namespace {

std::string SystemsUsing(
    const std::vector<std::unique_ptr<systems::RdfQueryEngine>>& engines,
    systems::DataModel model) {
  std::string out;
  for (const auto& e : engines) {
    if (e->traits().data_model != model) continue;
    if (!out.empty()) out += ", ";
    out += e->traits().name;
  }
  return out;
}

std::string SystemsUsing(
    const std::vector<std::unique_ptr<systems::RdfQueryEngine>>& engines,
    systems::SparkAbstraction abstraction) {
  std::string out;
  for (const auto& e : engines) {
    bool uses = false;
    for (auto a : e->traits().abstractions) uses |= a == abstraction;
    if (!uses) continue;
    if (!out.empty()) out += ", ";
    out += e->traits().name;
  }
  return out.empty() ? "-" : out;
}

void Run() {
  spark::SparkContext sc(DefaultCluster());
  auto engines = systems::MakeAllEngines(&sc);

  std::printf(
      "FIGURE 1: A taxonomy presenting the dimensions for organizing RDF\n"
      "query processing methods (annotated with the implemented systems)\n\n");
  std::printf("RDF query processing on Apache Spark\n");
  std::printf("|-- Data Model\n");
  std::printf("|   |-- The Triple Model   [%s]\n",
              SystemsUsing(engines, systems::DataModel::kTriple).c_str());
  std::printf("|   `-- The Graph Model    [%s]\n",
              SystemsUsing(engines, systems::DataModel::kGraph).c_str());
  std::printf("`-- Apache Spark Abstraction\n");
  std::printf("    |-- RDD                [%s]\n",
              SystemsUsing(engines, systems::SparkAbstraction::kRdd).c_str());
  std::printf(
      "    |-- DataFrames         [%s]\n",
      SystemsUsing(engines, systems::SparkAbstraction::kDataFrames).c_str());
  std::printf(
      "    |-- Spark SQL          [%s]\n",
      SystemsUsing(engines, systems::SparkAbstraction::kSparkSql).c_str());
  std::printf(
      "    |-- GraphX             [%s]\n",
      SystemsUsing(engines, systems::SparkAbstraction::kGraphX).c_str());
  std::printf(
      "    `-- GraphFrames        [%s]\n",
      SystemsUsing(engines, systems::SparkAbstraction::kGraphFrames).c_str());

  std::printf(
      "\nFurther dimensions (§III), realized as engine options and measured\n"
      "by the assessment benches:\n"
      "  Query Processing            -> bench_table2, bench_query_shapes\n"
      "  Query Processing Optimizations -> bench_optimizers\n"
      "  Data Partitioning           -> bench_partitioning\n"
      "  SPARQL Fragment             -> bench_table2 (+ conformance tests)\n"
      "  System Contribution         -> bench_table2\n");
}

}  // namespace
}  // namespace rdfspark::bench

int main() {
  rdfspark::bench::Run();
  return 0;
}
