// The LUBM benchmark workload (Q1..Q14, adapted) on the RDFS-materialized
// dataset, across all nine systems — the evaluation setting the surveyed
// papers themselves report (S2RDF and SPARQLGX use LUBM; S2X uses WatDiv).
// Every row is verified against the reference evaluator before printing.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "rdf/rdfs.h"
#include "sparql/eval.h"
#include "systems/s2rdf.h"

namespace rdfspark::bench {
namespace {

rdf::TripleStore MaterializedStore(int universities) {
  rdf::LubmConfig cfg;
  cfg.num_universities = universities;
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.AddAll(rdf::LubmSchema());
  store.Dedupe();
  rdf::MaterializeRdfs(&store);
  return store;
}

void LubmTable() {
  rdf::TripleStore store = MaterializedStore(2);
  auto queries = rdf::LubmBenchmarkQueries();
  std::printf(
      "LUBM Q1..Q14 (adapted) over the RDFS-materialized dataset "
      "(%llu triples)\nrows verified against the reference evaluator\n\n",
      static_cast<unsigned long long>(store.size()));

  sparql::ReferenceEvaluator reference(&store);
  std::vector<uint64_t> expected_rows;
  for (const auto& [name, text] : queries) {
    auto parsed = sparql::ParseQuery(text);
    if (!parsed.ok()) {
      expected_rows.push_back(0);
      continue;
    }
    auto r = reference.Evaluate(*parsed);
    expected_rows.push_back(r.ok() ? r->num_rows() : 0);
  }

  // Header row: query names.
  std::printf("%-26s", "system \\ query");
  for (const auto& [name, text] : queries) std::printf("%7s", name.c_str());
  std::printf("\n%-26s", "expected rows");
  for (uint64_t rows : expected_rows) {
    std::printf("%7llu", static_cast<unsigned long long>(rows));
  }
  std::printf("\n%s\n", std::string(26 + 7 * queries.size(), '-').c_str());

  spark::SparkContext sc(DefaultCluster());
  BenchJson json("lubm");
  auto engines = systems::MakeAllEngines(&sc);
  for (auto& engine : engines) {
    if (!engine->Load(store).ok()) continue;
    std::printf("%-26s", engine->traits().name.c_str());
    double total_ms = 0;
    uint64_t total_cmp = 0;
    uint64_t total_shuffle_bytes = 0;
    bool all_match = true;
    for (size_t q = 0; q < queries.size(); ++q) {
      QueryRun run = RunQuery(engine.get(), queries[q].second);
      total_ms += run.delta.simulated_ms;
      total_cmp += run.delta.join_comparisons;
      total_shuffle_bytes += run.delta.shuffle_bytes;
      if (!run.ok || run.rows != expected_rows[q]) {
        all_match = false;
        std::printf("%7s", "ERR");
      } else {
        std::printf("%7.2f", run.delta.simulated_ms.ms());
      }
      std::string label =
          engine->traits().name + "/" + queries[q].first;
      json.Add(label, "rows", static_cast<double>(run.rows));
      json.Add(label, "wall_ms", run.wall_ms);
      json.AddMetrics(label, run.delta);
    }
    std::printf("  | total %.2f sim ms, cmp=%llu, shuf=%.1f KiB%s\n",
                total_ms, static_cast<unsigned long long>(total_cmp),
                static_cast<double>(total_shuffle_bytes) / 1024.0,
                all_match ? "" : "  (MISMATCH!)");
  }
  json.Write();
  std::printf(
      "\nCells are simulated milliseconds; row counts all matched the\n"
      "reference unless marked. Shape check: the subsumption-heavy scans\n"
      "(Q6, Q14) are cheap everywhere; the triangles (Q2, Q9) dominate.\n\n");
}

void BM_LubmQuery(benchmark::State& state) {
  static rdf::TripleStore store = MaterializedStore(1);
  auto queries = rdf::LubmBenchmarkQueries();
  size_t index = static_cast<size_t>(state.range(0));
  spark::SparkContext sc(DefaultCluster());
  systems::S2rdfEngine engine(&sc);
  if (!engine.Load(store).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  for (auto _ : state) {
    QueryRun run = RunQuery(&engine, queries[index].second);
    benchmark::DoNotOptimize(run.rows);
  }
  state.SetLabel(queries[index].first);
}
BENCHMARK(BM_LubmQuery)->Arg(1)->Arg(5)->Arg(8)->Arg(13)->Name("s2rdf/lubm_q");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::LubmTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
