// A5 — the partitioning assessment of §IV/§V: "data partitioning is a key
// element of efficient query processing". For each system's partitioning
// scheme we report preprocessing cost, storage blow-up, and the locality
// achieved on a mixed query log (remote fraction of shuffled bytes and
// total shuffled records).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "systems/haqwa.h"

namespace rdfspark::bench {
namespace {

void PartitioningTable() {
  rdf::TripleStore store = MakeLubmStore(2);
  std::vector<std::string> query_log = {
      rdf::LubmShapeQuery(rdf::QueryShape::kStar, 4),
      rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3),
      rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3),
      rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake),
  };

  std::printf(
      "A5: partitioning schemes — preprocessing vs query-time locality\n"
      "(query log: 2x star, 1x linear, 1x snowflake over LUBM %llu "
      "triples)\n\n",
      static_cast<unsigned long long>(store.size()));
  std::vector<int> widths = {26, 20, 12, 14, 14, 14, 12};
  PrintRow({"System", "Partitioning", "load_ms", "stored_rec", "shuffle_rec",
            "remote_KiB", "sim_ms"},
           widths);
  PrintRule(widths);

  spark::SparkContext sc(DefaultCluster());
  auto engines = systems::MakeAllEngines(&sc);
  // Plus the workload-aware HAQWA variant (the paper's §V direction:
  // "exploiting knowledge about the queries previously submitted").
  {
    systems::HaqwaEngine::Options opts;
    opts.frequent_queries = query_log;
    engines.push_back(std::make_unique<systems::HaqwaEngine>(&sc, opts));
  }
  // And the §V semantic-partitioning prototype [27].
  {
    systems::HaqwaEngine::Options opts;
    opts.semantic_partitioning = true;
    engines.push_back(std::make_unique<systems::HaqwaEngine>(&sc, opts));
  }

  for (size_t e = 0; e < engines.size(); ++e) {
    auto& engine = engines[e];
    auto load = engine->Load(store);
    if (!load.ok()) continue;
    spark::Metrics total;
    double sim = 0;
    bool ok = true;
    for (const auto& text : query_log) {
      QueryRun run = RunQuery(engine.get(), text);
      ok &= run.ok;
      total += run.delta;
      sim += run.delta.simulated_ms;
    }
    std::string name = engine->traits().name;
    if (e == engines.size() - 2) name += " (workload-aware)";
    if (e == engines.size() - 1) name += " (semantic [27])";
    PrintRow({name, engine->traits().partitioning, Fmt(load->wall_ms),
              Fmt(load->stored_records), Fmt(total.shuffle_records),
              Fmt(double(total.remote_shuffle_bytes) / 1024.0), Fmt(sim)},
             widths);
  }
  std::printf(
      "\nCheck: sophisticated partitioning (ExtVP, MESG, workload-aware\n"
      "replication) trades preprocessing time and storage for less\n"
      "query-time shuffling — the §V argument for partitioning research.\n\n");
}

void BM_LoadScheme(benchmark::State& state) {
  bool workload_aware = state.range(0) != 0;
  rdf::TripleStore store = MakeLubmStore(1);
  for (auto _ : state) {
    spark::SparkContext sc(DefaultCluster());
    systems::HaqwaEngine::Options opts;
    if (workload_aware) {
      opts.frequent_queries = {
          rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)};
    }
    systems::HaqwaEngine engine(&sc, opts);
    auto load = engine.Load(store);
    benchmark::DoNotOptimize(load.ok());
  }
}
BENCHMARK(BM_LoadScheme)->Arg(0)->Arg(1)->Name("haqwa_load/workload_aware");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::PartitioningTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
