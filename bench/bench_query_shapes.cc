// A1 — the survey's per-system behaviour across the query shapes of §II.B
// (star / linear / snowflake / complex). For every implemented system we
// report result size, wall time, simulated cluster time, shuffle volume and
// graph supersteps on the same LUBM-style dataset.
//
// Expected shape (paper's qualitative claims):
//  * subject-hash systems (HAQWA, [21], SparkRDF) answer star queries with
//    zero shuffle;
//  * linear queries force per-join shuffles on triple-model systems;
//  * graph engines pay per-iteration messaging that grows with the BGP.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "systems/s2rdf.h"
#include "systems/s2x.h"
#include "systems/sparqlgx.h"

namespace rdfspark::bench {
namespace {

std::string ComplexBgpQuery() {
  // The kComplex shape without FILTER/DISTINCT so that BGP-only engines
  // run the same pattern; the shape (object-object join) is preserved.
  return "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
         ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
         "SELECT ?x ?n WHERE {\n"
         "  ?x rdf:type ub:UndergraduateStudent .\n"
         "  ?x ub:name ?n .\n"
         "  ?x ub:takesCourse ?c .\n"
         "  ?t ub:teacherOf ?c .\n"
         "  ?t ub:worksFor ?d .\n"
         "}\n";
}

void PrintShapeTable() {
  rdf::TripleStore store = MakeLubmStore(2);
  std::printf(
      "A1: query-shape assessment over LUBM(%llu triples), 4 executors\n\n",
      static_cast<unsigned long long>(store.size()));

  std::vector<std::pair<std::string, std::string>> queries = {
      {"star", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 4)},
      {"linear", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)},
      {"snowflake", rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake)},
      {"complex", ComplexBgpQuery()},
  };

  std::vector<int> widths = {26, 11, 8, 10, 11, 12, 13, 8, 7};
  PrintRow({"System", "shape", "rows", "wall_ms", "sim_ms", "shuffle_rec",
            "remote_KiB", "tasks", "steps"},
           widths);
  PrintRule(widths);

  spark::SparkContext sc(DefaultCluster());
  auto engines = systems::MakeAllEngines(&sc);
  for (auto& engine : engines) {
    auto load = engine->Load(store);
    if (!load.ok()) continue;
    for (const auto& [shape, text] : queries) {
      QueryRun run = RunQuery(engine.get(), text);
      if (!run.ok) {
        PrintRow({engine->traits().name, shape, "ERR", run.error}, widths);
        continue;
      }
      PrintRow({engine->traits().name, shape, Fmt(run.rows),
                Fmt(run.wall_ms), Fmt(run.delta.simulated_ms),
                Fmt(run.delta.shuffle_records),
                Fmt(double(run.delta.remote_shuffle_bytes) / 1024.0),
                Fmt(run.delta.tasks), Fmt(run.delta.supersteps)},
               widths);
    }
    PrintRule(widths);
  }
  std::printf(
      "Check: HAQWA / SPARQL-GPP / SparkRDF show shuffle_rec=0 for 'star'\n"
      "(subject-hash locality); graph engines show steps>0.\n\n");
}

// Wall-clock microbenchmarks per shape for one representative of each
// category (triple-model RDD, SQL, graph).
void BM_Shape(benchmark::State& state, const std::string& engine_kind,
              rdf::QueryShape shape) {
  rdf::TripleStore store = MakeLubmStore(1);
  spark::SparkContext sc(DefaultCluster());
  std::unique_ptr<systems::RdfQueryEngine> engine;
  if (engine_kind == "sparqlgx") {
    engine = std::make_unique<systems::SparqlgxEngine>(&sc);
  } else if (engine_kind == "s2rdf") {
    engine = std::make_unique<systems::S2rdfEngine>(&sc);
  } else {
    engine = std::make_unique<systems::S2xEngine>(&sc);
  }
  if (!engine->Load(store).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::string text = rdf::LubmShapeQuery(shape, 3);
  uint64_t rows = 0;
  for (auto _ : state) {
    QueryRun run = RunQuery(engine.get(), text);
    rows = run.rows;
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::PrintShapeTable();
  using rdfspark::bench::BM_Shape;
  for (auto [kind_name, kind] :
       {std::pair<const char*, const char*>{"sparqlgx", "sparqlgx"},
        {"s2rdf", "s2rdf"},
        {"s2x", "s2x"}}) {
    for (auto [shape_name, shape] :
         {std::pair<const char*, rdfspark::rdf::QueryShape>{
              "star", rdfspark::rdf::QueryShape::kStar},
          {"linear", rdfspark::rdf::QueryShape::kLinear},
          {"snowflake", rdfspark::rdf::QueryShape::kSnowflake}}) {
      benchmark::RegisterBenchmark(
          (std::string(kind_name) + "/" + shape_name).c_str(),
          [kind = std::string(kind), shape = shape](benchmark::State& s) {
            BM_Shape(s, kind, shape);
          });
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
