// Regenerates Table I of the paper: "A taxonomy of the RDF query
// processing approaches with respect to data model and Apache Spark
// abstraction". The matrix is derived from the implemented engines'
// self-reported traits, not hard-coded.

#include <cstdio>
#include <map>

#include "bench_util.h"

namespace rdfspark::bench {
namespace {

void Run() {
  spark::SparkContext sc(DefaultCluster());
  auto engines = systems::MakeAllEngines(&sc);

  // Citation tags, keyed by engine name, matching the paper's reference
  // numbers for row labels.
  auto ref_of = [](const std::string& citation) {
    auto end = citation.find(']');
    return citation.substr(0, end + 1);
  };

  std::printf(
      "TABLE I: A TAXONOMY OF THE RDF QUERY PROCESSING APPROACHES WITH\n"
      "RESPECT TO DATA MODEL AND APACHE SPARK ABSTRACTION\n"
      "(generated from EngineTraits of the 9 implemented systems)\n\n");

  const std::vector<systems::SparkAbstraction> kRows = {
      systems::SparkAbstraction::kRdd,
      systems::SparkAbstraction::kDataFrames,
      systems::SparkAbstraction::kSparkSql,
      systems::SparkAbstraction::kGraphX,
      systems::SparkAbstraction::kGraphFrames,
  };
  const std::vector<systems::DataModel> kCols = {
      systems::DataModel::kTriple, systems::DataModel::kGraph};

  std::vector<int> widths = {14, 34, 34};
  PrintRow({"Abstraction", "The Triple Model", "The Graph Model"}, widths);
  PrintRule(widths);
  for (auto abstraction : kRows) {
    std::map<systems::DataModel, std::string> cells;
    for (const auto& engine : engines) {
      const auto& t = engine->traits();
      bool uses = false;
      for (auto a : t.abstractions) uses |= a == abstraction;
      if (!uses) continue;
      std::string& cell = cells[t.data_model];
      if (!cell.empty()) cell += ", ";
      cell += ref_of(t.citation) + " " + t.name;
    }
    PrintRow({systems::SparkAbstractionName(abstraction),
              cells.count(systems::DataModel::kTriple)
                  ? cells[systems::DataModel::kTriple]
                  : "-",
              cells.count(systems::DataModel::kGraph)
                  ? cells[systems::DataModel::kGraph]
                  : "-"},
             widths);
  }
  std::printf(
      "\nPaper's Table I for comparison:\n"
      "  RDD         | [7] [13] [21]      | [5]\n"
      "  DataFrames  | [21]               | -\n"
      "  Spark SQL   | [24]               | -\n"
      "  GraphX      | -                  | [23] [16] [12]\n"
      "  GraphFrames | -                  | [4]\n");
}

}  // namespace
}  // namespace rdfspark::bench

int main() {
  rdfspark::bench::Run();
  return 0;
}
