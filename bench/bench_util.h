#ifndef RDFSPARK_BENCH_BENCH_UTIL_H_
#define RDFSPARK_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "rdf/generator.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "sparql/parser.h"
#include "systems/engine.h"

namespace rdfspark::bench {

/// Fixed-width table printing for benchmark reports.
inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 16;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-*s", w, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

inline void PrintRule(const std::vector<int>& widths) {
  int total = 0;
  for (int w : widths) total += w;
  std::printf("%s\n", std::string(static_cast<size_t>(total), '-').c_str());
}

inline std::string Fmt(uint64_t v) { return std::to_string(v); }
inline std::string Fmt(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// LUBM dataset scaled by `universities`, deduplicated.
inline rdf::TripleStore MakeLubmStore(int universities, uint64_t seed = 42) {
  rdf::LubmConfig cfg;
  cfg.num_universities = universities;
  cfg.seed = seed;
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.Dedupe();
  return store;
}

inline spark::ClusterConfig DefaultCluster(int executors = 4,
                                           int parallelism = 8,
                                           int executor_threads = 0) {
  spark::ClusterConfig cfg;
  cfg.num_executors = executors;
  cfg.default_parallelism = parallelism;
  cfg.executor_threads = executor_threads;
  return cfg;
}

/// Wall-clock milliseconds spent in `fn`.
inline double WallMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Result of one measured query execution.
struct QueryRun {
  uint64_t rows = 0;
  double wall_ms = 0.0;
  spark::Metrics delta;
  bool ok = false;
  std::string error;
};

inline QueryRun RunQuery(systems::RdfQueryEngine* engine,
                         const std::string& text) {
  QueryRun run;
  auto query = sparql::ParseQuery(text);
  if (!query.ok()) {
    run.error = query.status().ToString();
    return run;
  }
  auto before = engine->context()->metrics();
  auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(*query);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  run.delta = engine->context()->metrics() - before;
  if (!result.ok()) {
    run.error = result.status().ToString();
    return run;
  }
  run.ok = true;
  run.rows = result->num_rows();
  return run;
}

/// Machine-readable benchmark output. The human tables above are for eyes;
/// this collects the same numbers as (label, metric, value) triples and
/// writes them to $RDFSPARK_BENCH_JSON_DIR/BENCH_<name>.json when that
/// environment variable points at a directory (CI sets it; interactive
/// runs that leave it unset write nothing). Values are emitted with %.10g,
/// so counters survive round-tripping exactly.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& label, const std::string& metric,
           double value) {
    RowFor(label)->values.emplace_back(metric, value);
  }

  /// Flattens a metrics delta (counters, simulated time, histogram
  /// summaries incl. partition skew) under `label`.
  void AddMetrics(const std::string& label, const spark::Metrics& delta) {
    Row* row = RowFor(label);
    delta.ForEachNumericField(
        [row](const std::string& metric, double value) {
          row->values.emplace_back(metric, value);
        });
  }

  /// Writes BENCH_<name>.json if requested; returns whether a file was
  /// written. Call once, after the tables are printed.
  bool Write() const {
    const char* dir = std::getenv("RDFSPARK_BENCH_JSON_DIR");
    if (dir == nullptr || dir[0] == '\0') return false;
    std::string json = "{\n  \"benchmark\": \"" + JsonEscape(name_) +
                       "\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      json += "    {\"label\": \"" + JsonEscape(rows_[i].label) +
              "\", \"metrics\": {";
      for (size_t v = 0; v < rows_[i].values.size(); ++v) {
        if (v > 0) json += ", ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.10g",
                      rows_[i].values[v].second);
        json += "\"" + JsonEscape(rows_[i].values[v].first) + "\": " + buf;
      }
      json += i + 1 < rows_.size() ? "}},\n" : "}}\n";
    }
    json += "  ]\n}\n";
    std::string path =
        std::string(dir) + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return false;
    }
    out << json;
    std::fprintf(stderr, "BenchJson: wrote %s (%zu rows)\n", path.c_str(),
                 rows_.size());
    return true;
  }

 private:
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> values;
  };

  Row* RowFor(const std::string& label) {
    for (auto& row : rows_) {
      if (row.label == label) return &row;
    }
    rows_.push_back(Row{label, {}});
    return &rows_.back();
  }

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace rdfspark::bench

#endif  // RDFSPARK_BENCH_BENCH_UTIL_H_
