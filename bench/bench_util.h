#ifndef RDFSPARK_BENCH_BENCH_UTIL_H_
#define RDFSPARK_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "sparql/parser.h"
#include "systems/engine.h"

namespace rdfspark::bench {

/// Fixed-width table printing for benchmark reports.
inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 16;
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-*s", w, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

inline void PrintRule(const std::vector<int>& widths) {
  int total = 0;
  for (int w : widths) total += w;
  std::printf("%s\n", std::string(static_cast<size_t>(total), '-').c_str());
}

inline std::string Fmt(uint64_t v) { return std::to_string(v); }
inline std::string Fmt(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// LUBM dataset scaled by `universities`, deduplicated.
inline rdf::TripleStore MakeLubmStore(int universities, uint64_t seed = 42) {
  rdf::LubmConfig cfg;
  cfg.num_universities = universities;
  cfg.seed = seed;
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.Dedupe();
  return store;
}

inline spark::ClusterConfig DefaultCluster(int executors = 4,
                                           int parallelism = 8,
                                           int executor_threads = 0) {
  spark::ClusterConfig cfg;
  cfg.num_executors = executors;
  cfg.default_parallelism = parallelism;
  cfg.executor_threads = executor_threads;
  return cfg;
}

/// Wall-clock milliseconds spent in `fn`.
inline double WallMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Result of one measured query execution.
struct QueryRun {
  uint64_t rows = 0;
  double wall_ms = 0.0;
  spark::Metrics delta;
  bool ok = false;
  std::string error;
};

inline QueryRun RunQuery(systems::RdfQueryEngine* engine,
                         const std::string& text) {
  QueryRun run;
  auto query = sparql::ParseQuery(text);
  if (!query.ok()) {
    run.error = query.status().ToString();
    return run;
  }
  auto before = engine->context()->metrics();
  auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(*query);
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  run.delta = engine->context()->metrics() - before;
  if (!result.ok()) {
    run.error = result.status().ToString();
    return run;
  }
  run.ok = true;
  run.rows = result->num_rows();
  return run;
}

}  // namespace rdfspark::bench

#endif  // RDFSPARK_BENCH_BENCH_UTIL_H_
