// A6 — scalability assessment: Spark's promise of "parallel computations
// on commodity machines with ... load balancing" (§III). Simulated cluster
// time for a representative engine as (a) executors grow at fixed data and
// (b) data grows at fixed executors.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "spark/rdd.h"
#include "systems/sparqlgx.h"

namespace rdfspark::bench {
namespace {

void ExecutorSweep() {
  std::printf(
      "A6: executor sweep — SPARQLGX, snowflake query, LUBM x4\n\n");
  rdf::TripleStore store = MakeLubmStore(4);
  const std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake);

  std::vector<int> widths = {11, 10, 10, 10, 12, 10};
  PrintRow({"executors", "rows", "wall_ms", "sim_ms", "speedup", "tasks"},
           widths);
  PrintRule(widths);
  double base = 0;
  for (int executors : {1, 2, 4, 8, 16}) {
    spark::SparkContext sc(DefaultCluster(executors, 16));
    systems::SparqlgxEngine engine(&sc);
    if (!engine.Load(store).ok()) continue;
    QueryRun run = RunQuery(&engine, query);
    if (base == 0) base = run.delta.simulated_ms;
    PrintRow({Fmt(uint64_t(executors)), Fmt(run.rows), Fmt(run.wall_ms),
              Fmt(run.delta.simulated_ms),
              Fmt(base / run.delta.simulated_ms, 2) + "x",
              Fmt(run.delta.tasks)},
             widths);
  }
  std::printf(
      "\nCheck: simulated time falls with executors (sub-linearly: the\n"
      "shuffle's network cost and task overheads bound the speedup).\n\n");
}

void DataSweep() {
  std::printf("A6b: data sweep — SPARQLGX, snowflake query, 8 executors\n\n");
  std::vector<int> widths = {8, 10, 10, 10, 14};
  PrintRow({"univs", "triples", "rows", "sim_ms", "shuffle_rec"}, widths);
  PrintRule(widths);
  for (int universities : {1, 2, 4, 8}) {
    rdf::TripleStore store = MakeLubmStore(universities);
    spark::SparkContext sc(DefaultCluster(8, 16));
    systems::SparqlgxEngine engine(&sc);
    if (!engine.Load(store).ok()) continue;
    QueryRun run =
        RunQuery(&engine, rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake));
    PrintRow({Fmt(uint64_t(universities)), Fmt(store.size()), Fmt(run.rows),
              Fmt(run.delta.simulated_ms), Fmt(run.delta.shuffle_records)},
             widths);
  }
  std::printf("\nCheck: cost grows roughly linearly with dataset size.\n\n");
}

/// A6c: the executor pool is real — the same job run with the pool enabled
/// (executor_threads = 0, one thread per simulated executor) against the
/// serial in-driver reference (executor_threads = 1). Wall-clock should
/// drop on a multi-core host while every simulated metric stays
/// bit-identical; on a single-core host only the identity check is
/// meaningful.
void PoolSpeedup() {
  std::printf(
      "A6c: physical pool speedup — compute-heavy map + Collect,\n"
      "4 executors x 16 partitions, pool vs serial driver\n\n");
  auto mix = [](int64_t x) {
    uint64_t h = static_cast<uint64_t>(x);
    for (int r = 0; r < 256; ++r) {
      h += 0x9e3779b97f4a7c15ull;
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
      h ^= h >> 31;
    }
    return static_cast<int64_t>(h);
  };
  struct Result {
    double wall_ms = 0;
    uint64_t checksum = 0;
    spark::Metrics delta;
  };
  auto run = [&](int executor_threads) {
    spark::SparkContext sc(DefaultCluster(4, 16, executor_threads));
    std::vector<int64_t> data(200000);
    for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int64_t>(i);
    auto rdd = spark::Parallelize(&sc, data, 16).Map(mix);
    Result res;
    auto before = sc.metrics();
    res.wall_ms = WallMs([&] {
      for (int64_t v : rdd.Collect()) {
        res.checksum ^= static_cast<uint64_t>(v);
      }
    });
    res.delta = sc.metrics() - before;
    return res;
  };

  Result serial = run(1);
  Result pooled = run(0);

  std::vector<int> widths = {10, 10, 10, 8, 12};
  PrintRow({"mode", "wall_ms", "sim_ms", "tasks", "records"}, widths);
  PrintRule(widths);
  PrintRow({"serial", Fmt(serial.wall_ms), Fmt(serial.delta.simulated_ms),
            Fmt(serial.delta.tasks), Fmt(serial.delta.records_processed)},
           widths);
  PrintRow({"pool", Fmt(pooled.wall_ms), Fmt(pooled.delta.simulated_ms),
            Fmt(pooled.delta.tasks), Fmt(pooled.delta.records_processed)},
           widths);
  bool identical =
      serial.checksum == pooled.checksum &&
      serial.delta.simulated_ms.nanos() == pooled.delta.simulated_ms.nanos() &&
      uint64_t(serial.delta.tasks) == uint64_t(pooled.delta.tasks) &&
      uint64_t(serial.delta.records_processed) ==
          uint64_t(pooled.delta.records_processed);
  std::printf("\nwall-clock speedup: %.2fx — results and simulated metrics %s\n",
              serial.wall_ms / (pooled.wall_ms > 0 ? pooled.wall_ms : 1e-9),
              identical ? "identical (as required)" : "DIVERGED (bug!)");
  std::printf(
      "Check: >2x on a >=4-core host; ~1x on fewer cores. Identity must\n"
      "hold everywhere.\n\n");
}

void BM_QueryAtScale(benchmark::State& state) {
  int universities = static_cast<int>(state.range(0));
  rdf::TripleStore store = MakeLubmStore(universities);
  spark::SparkContext sc(DefaultCluster(8, 16));
  systems::SparqlgxEngine engine(&sc);
  if (!engine.Load(store).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake);
  for (auto _ : state) {
    QueryRun run = RunQuery(&engine, query);
    benchmark::DoNotOptimize(run.rows);
  }
  state.counters["triples"] = static_cast<double>(store.size());
}
BENCHMARK(BM_QueryAtScale)->Arg(1)->Arg(2)->Arg(4)->Name("sparqlgx/universities");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::ExecutorSweep();
  rdfspark::bench::DataSweep();
  rdfspark::bench::PoolSpeedup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
