// A6 — scalability assessment: Spark's promise of "parallel computations
// on commodity machines with ... load balancing" (§III). Simulated cluster
// time for a representative engine as (a) executors grow at fixed data and
// (b) data grows at fixed executors.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "systems/sparqlgx.h"

namespace rdfspark::bench {
namespace {

void ExecutorSweep() {
  std::printf(
      "A6: executor sweep — SPARQLGX, snowflake query, LUBM x4\n\n");
  rdf::TripleStore store = MakeLubmStore(4);
  const std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake);

  std::vector<int> widths = {11, 10, 10, 12, 10};
  PrintRow({"executors", "rows", "sim_ms", "speedup", "tasks"}, widths);
  PrintRule(widths);
  double base = 0;
  for (int executors : {1, 2, 4, 8, 16}) {
    spark::SparkContext sc(DefaultCluster(executors, 16));
    systems::SparqlgxEngine engine(&sc);
    if (!engine.Load(store).ok()) continue;
    QueryRun run = RunQuery(&engine, query);
    if (base == 0) base = run.delta.simulated_ms;
    PrintRow({Fmt(uint64_t(executors)), Fmt(run.rows),
              Fmt(run.delta.simulated_ms),
              Fmt(base / run.delta.simulated_ms, 2) + "x",
              Fmt(run.delta.tasks)},
             widths);
  }
  std::printf(
      "\nCheck: simulated time falls with executors (sub-linearly: the\n"
      "shuffle's network cost and task overheads bound the speedup).\n\n");
}

void DataSweep() {
  std::printf("A6b: data sweep — SPARQLGX, snowflake query, 8 executors\n\n");
  std::vector<int> widths = {8, 10, 10, 10, 14};
  PrintRow({"univs", "triples", "rows", "sim_ms", "shuffle_rec"}, widths);
  PrintRule(widths);
  for (int universities : {1, 2, 4, 8}) {
    rdf::TripleStore store = MakeLubmStore(universities);
    spark::SparkContext sc(DefaultCluster(8, 16));
    systems::SparqlgxEngine engine(&sc);
    if (!engine.Load(store).ok()) continue;
    QueryRun run =
        RunQuery(&engine, rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake));
    PrintRow({Fmt(uint64_t(universities)), Fmt(store.size()), Fmt(run.rows),
              Fmt(run.delta.simulated_ms), Fmt(run.delta.shuffle_records)},
             widths);
  }
  std::printf("\nCheck: cost grows roughly linearly with dataset size.\n\n");
}

void BM_QueryAtScale(benchmark::State& state) {
  int universities = static_cast<int>(state.range(0));
  rdf::TripleStore store = MakeLubmStore(universities);
  spark::SparkContext sc(DefaultCluster(8, 16));
  systems::SparqlgxEngine engine(&sc);
  if (!engine.Load(store).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake);
  for (auto _ : state) {
    QueryRun run = RunQuery(&engine, query);
    benchmark::DoNotOptimize(run.rows);
  }
  state.counters["triples"] = static_cast<double>(store.size());
}
BENCHMARK(BM_QueryAtScale)->Arg(1)->Arg(2)->Arg(4)->Name("sparqlgx/universities");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::ExecutorSweep();
  rdfspark::bench::DataSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
