// A9 — the paper's §V future-work direction: "next generation parallel RDF
// query answering systems should be able to handle evolving data in an
// uninterrupted manner" with access "not only to the latest version, but
// also to previous ones". We measure the delta-chain archive: storage
// against full snapshots, materialization latency per version, and
// uninterrupted answering across versions.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "rdf/versioning.h"
#include "sparql/eval.h"

namespace rdfspark::bench {
namespace {

rdf::Triple NewTriple(int version, int i) {
  auto uri = [](const std::string& s) {
    return rdf::Term::Uri(std::string(rdf::kUbPrefix) + s);
  };
  return rdf::Triple{uri("Student" + std::to_string(i) + ".vNew" +
                         std::to_string(version)),
                     uri("memberOf"), uri("Dept0.Univ0")};
}

void VersioningTable() {
  std::printf(
      "A9: evolving-data archive (delta chain) over LUBM, 8 versions of\n"
      "+40/-10 triples each\n\n");
  rdf::VersionedStore archive;
  rdf::Delta base;
  base.added = rdf::GenerateLubm(rdf::LubmConfig{});
  auto v = archive.Commit(base);
  if (!v.ok()) return;

  for (int version = 0; version < 8; ++version) {
    rdf::Delta d;
    for (int i = 0; i < 40; ++i) d.added.push_back(NewTriple(version, i));
    if (version > 0) {
      for (int i = 0; i < 10; ++i) {
        d.removed.push_back(NewTriple(version - 1, i));
      }
    }
    if (!archive.Commit(d).ok()) return;
  }

  const std::string query =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nSELECT ?x WHERE { ?x ub:memberOf ?d }";
  auto parsed = sparql::ParseQuery(query);
  if (!parsed.ok()) return;

  std::vector<int> widths = {9, 10, 18, 12};
  PrintRow({"version", "triples", "materialize_ms", "answers"}, widths);
  PrintRule(widths);
  uint64_t snapshot_records = 0;
  for (int version = 1; version <= archive.latest_version(); ++version) {
    auto start = std::chrono::steady_clock::now();
    auto store = archive.Materialize(version);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!store.ok()) continue;
    snapshot_records += store->size();
    sparql::ReferenceEvaluator eval(&*store);
    auto result = eval.Evaluate(*parsed);
    PrintRow({Fmt(uint64_t(version)), Fmt(store->size()), Fmt(ms),
              result.ok() ? Fmt(result->num_rows()) : "ERR"},
             widths);
  }
  std::printf(
      "\nArchive stores %llu delta records; per-version snapshots would\n"
      "store %llu records (%.1fx more). Queries answered at every version\n"
      "without interrupting access to the others.\n\n",
      static_cast<unsigned long long>(archive.StoredRecords()),
      static_cast<unsigned long long>(snapshot_records),
      double(snapshot_records) / double(archive.StoredRecords()));
}

void BM_Materialize(benchmark::State& state) {
  int versions = static_cast<int>(state.range(0));
  rdf::VersionedStore archive;
  rdf::Delta base;
  base.added = rdf::GenerateLubm(rdf::LubmConfig{});
  if (!archive.Commit(base).ok()) {
    state.SkipWithError("commit failed");
    return;
  }
  for (int version = 0; version < versions; ++version) {
    rdf::Delta d;
    for (int i = 0; i < 20; ++i) d.added.push_back(NewTriple(version, i));
    if (!archive.Commit(d).ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
  for (auto _ : state) {
    auto store = archive.Materialize(archive.latest_version());
    benchmark::DoNotOptimize(store.ok());
  }
}
BENCHMARK(BM_Materialize)->Arg(1)->Arg(4)->Arg(16)->Name("archive/materialize_latest");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::VersioningTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
