// A3 — the distributed-join study of [21] (§IV.A.3): partitioned (shuffle)
// joins vs broadcast joins vs the Cartesian fallback of a naive SQL
// translation, across size ratios of the two sides. The crossover — where
// broadcasting the small side stops paying — moves with the broadcast
// threshold, and a hybrid greedy plan tracks the better of the two.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "spark/sql/dataframe.h"
#include "systems/common.h"
#include "systems/hybrid.h"

namespace rdfspark::bench {
namespace {

namespace sql = spark::sql;

sql::DataFrame MakeTable(spark::SparkContext* sc, int rows, int key_mod,
                         const std::string& key, const std::string& val,
                         int partitions = 8) {
  std::vector<sql::Row> data;
  data.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    data.push_back(sql::Row{int64_t{i % key_mod},
                            std::string("value-") + std::to_string(i)});
  }
  sql::Schema schema{{sql::Field{key, sql::DataType::kInt64},
                      sql::Field{val, sql::DataType::kString}}};
  return sql::DataFrame::FromRows(sc, schema, data, partitions);
}

void SizeRatioSweep() {
  std::printf(
      "A3: broadcast vs partitioned join across |small|/|large| ratios\n"
      "(|large| = 20000 rows, broadcast threshold = 64 KiB)\n\n");
  std::vector<int> widths = {12, 12, 20, 20, 18, 16, 20, 20};
  PrintRow({"small_rows", "result", "broadcast: net_KiB", "shuffle: net_KiB",
            "shuf_KiB (b/s)", "cmp (b/s)", "wall_ms (b/s)",
            "winner (sim_ms b/s)"},
           widths);
  PrintRule(widths);

  const int kLargeRows = 20000;
  BenchJson json("joins");
  for (int small_rows : {10, 100, 1000, 5000, 20000}) {
    double sim_ms[2];
    double wall_ms[2];
    uint64_t net_bytes[2];
    uint64_t shuf_bytes[2];
    uint64_t comparisons[2];
    uint64_t result_rows = 0;
    for (int strat = 0; strat < 2; ++strat) {
      spark::ClusterConfig cfg = DefaultCluster();
      cfg.broadcast_threshold_bytes = 64 << 10;
      spark::SparkContext sc(cfg);
      auto large = MakeTable(&sc, kLargeRows, 4096, "k", "lv");
      auto small = MakeTable(&sc, small_rows, 4096, "k2", "rv");
      auto before = sc.metrics();
      wall_ms[strat] = WallMs([&] {
        auto joined = large.Join(
            small, {{"k", "k2"}}, sql::JoinType::kInner,
            strat == 0 ? sql::JoinStrategy::kBroadcast
                       : sql::JoinStrategy::kShuffleHash);
        result_rows = joined.NumRows();
      });
      auto delta = sc.metrics() - before;
      sim_ms[strat] = delta.simulated_ms;
      net_bytes[strat] =
          delta.remote_shuffle_bytes + delta.broadcast_bytes;
      shuf_bytes[strat] = delta.shuffle_bytes;
      comparisons[strat] = delta.join_comparisons;
      std::string label = std::to_string(small_rows) + "/" +
                          (strat == 0 ? "broadcast" : "shuffle");
      json.Add(label, "result_rows", static_cast<double>(result_rows));
      json.Add(label, "wall_ms", wall_ms[strat]);
      json.AddMetrics(label, delta);
    }
    std::string winner = sim_ms[0] < sim_ms[1] ? "broadcast" : "shuffle";
    PrintRow({Fmt(uint64_t(small_rows)), Fmt(result_rows),
              Fmt(double(net_bytes[0]) / 1024.0),
              Fmt(double(net_bytes[1]) / 1024.0),
              Fmt(double(shuf_bytes[0]) / 1024.0) + "/" +
                  Fmt(double(shuf_bytes[1]) / 1024.0),
              Fmt(comparisons[0]) + "/" + Fmt(comparisons[1]),
              Fmt(wall_ms[0]) + "/" + Fmt(wall_ms[1]),
              winner + " (" + Fmt(sim_ms[0]) + "/" + Fmt(sim_ms[1]) + ")"},
             widths);
  }
  std::printf(
      "\nCheck: broadcast wins while the small side is small; as it grows\n"
      "the replicated volume overtakes the two-sided shuffle (crossover).\n\n");
  json.Write();
}

void StrategyComparisonOnBgp() {
  std::printf(
      "A3b: the four strategies of [21] on a 3-pattern BGP (LUBM)\n\n");
  rdf::TripleStore store = MakeLubmStore(2);
  const std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3);

  std::vector<int> widths = {24, 8, 11, 11, 14, 13, 16, 14};
  PrintRow({"Strategy", "rows", "wall_ms", "sim_ms", "shuffle_rec",
            "shuffle_KiB", "broadcast_KiB", "comparisons"},
           widths);
  PrintRule(widths);
  for (auto mode :
       {systems::HybridMode::kSparkSqlNaive,
        systems::HybridMode::kRddPartitioned,
        systems::HybridMode::kDataFrameAuto, systems::HybridMode::kHybrid}) {
    spark::ClusterConfig cfg = DefaultCluster();
    cfg.broadcast_threshold_bytes = 32 << 10;
    spark::SparkContext sc(cfg);
    systems::HybridEngine::Options opts;
    opts.mode = mode;
    systems::HybridEngine engine(&sc, opts);
    if (!engine.Load(store).ok()) continue;
    // Plan-shape guard: the EXPLAIN tree must show the join strategy the
    // mode is named after.
    auto plan = engine.ExplainText(query);
    if (!plan.ok()) {
      std::fprintf(stderr, "A3b: EXPLAIN failed for %s: %s\n",
                   systems::HybridModeName(mode),
                   plan.status().ToString().c_str());
      std::abort();
    }
    bool shape_ok = false;
    switch (mode) {
      case systems::HybridMode::kSparkSqlNaive:
        shape_ok = plan->find("CartesianProduct") != std::string::npos &&
                   plan->find("PartitionedHashJoin") == std::string::npos;
        break;
      case systems::HybridMode::kRddPartitioned:
        shape_ok = plan->find("PartitionedHashJoin") != std::string::npos;
        break;
      case systems::HybridMode::kDataFrameAuto:
      case systems::HybridMode::kHybrid:
        shape_ok = plan->find("BroadcastJoin") != std::string::npos ||
                   plan->find("PartitionedHashJoin") != std::string::npos;
        break;
    }
    if (!shape_ok) {
      std::fprintf(stderr, "A3b: unexpected plan shape for %s:\n%s",
                   systems::HybridModeName(mode), plan->c_str());
      std::abort();
    }
    QueryRun run = RunQuery(&engine, query);
    PrintRow({systems::HybridModeName(mode), Fmt(run.rows), Fmt(run.wall_ms),
              Fmt(run.delta.simulated_ms), Fmt(run.delta.shuffle_records),
              Fmt(double(run.delta.shuffle_bytes) / 1024.0),
              Fmt(double(run.delta.broadcast_bytes) / 1024.0),
              Fmt(run.delta.join_comparisons)},
             widths);
  }
  std::printf(
      "\nCheck: the naive SQL translation pays Cartesian-product\n"
      "comparisons; the RDD mode shuffles every join; the hybrid plan\n"
      "shuffles least by exploiting the subject partitioning.\n\n");
}

// Joins key rows through VarSchema::IndexOf on every row extension, so the
// lookup must stay O(1); a linear probe over a wide (64-var) schema costs
// hundreds of ns per call and regresses every engine at once.
void VarSchemaIndexOfMicroAssert() {
  systems::VarSchema schema;
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) {
    names.push_back("?v" + std::to_string(i));
    schema.Add(names.back());
  }
  constexpr int kIters = 200000;
  int64_t acc = 0;
  for (int i = 0; i < 1000; ++i) {  // warm-up
    acc += schema.IndexOf(names[static_cast<size_t>(i & 63)]);
  }
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    acc += schema.IndexOf(names[static_cast<size_t>(i & 63)]);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(acc);
  double ns_per_op =
      std::chrono::duration<double, std::nano>(elapsed).count() / kIters;
  std::printf("VarSchema::IndexOf on a 64-var schema: %.1f ns/op\n\n",
              ns_per_op);
  if (ns_per_op > 200.0) {
    std::fprintf(stderr,
                 "VarSchema::IndexOf regressed to %.1f ns/op (> 200 ns): "
                 "lookup is no longer O(1)\n",
                 ns_per_op);
    std::abort();
  }
}

void BM_JoinStrategy(benchmark::State& state) {
  bool broadcast = state.range(0) != 0;
  int small_rows = static_cast<int>(state.range(1));
  spark::ClusterConfig cfg = DefaultCluster();
  cfg.broadcast_threshold_bytes = 64 << 10;
  spark::SparkContext sc(cfg);
  auto large = MakeTable(&sc, 20000, 4096, "k", "lv");
  auto small = MakeTable(&sc, small_rows, 4096, "k2", "rv");
  for (auto _ : state) {
    auto joined = large.Join(small, {{"k", "k2"}}, sql::JoinType::kInner,
                             broadcast ? sql::JoinStrategy::kBroadcast
                                       : sql::JoinStrategy::kShuffleHash);
    benchmark::DoNotOptimize(joined.NumRows());
  }
}
BENCHMARK(BM_JoinStrategy)
    ->Args({1, 100})
    ->Args({0, 100})
    ->Args({1, 10000})
    ->Args({0, 10000})
    ->Name("join/broadcast_smallrows");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::VarSchemaIndexOfMicroAssert();
  rdfspark::bench::SizeRatioSweep();
  rdfspark::bench::StrategyComparisonOnBgp();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
