// A4 — the abstraction assessment of §III / §IV.A.3: DataFrames' columnar
// compressed representation manages much larger data than row RDDs ("up to
// 10 times larger data sets than RDD can be managed"), and HAQWA's
// dictionary encoding "minimizes data volume". We measure the resident
// footprint of the same triples in four representations.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "spark/rdd.h"
#include "spark/sql/dataframe.h"

namespace rdfspark::bench {
namespace {

namespace sql = spark::sql;

struct Footprints {
  uint64_t string_rdd = 0;
  uint64_t encoded_rdd = 0;
  uint64_t dataframe_strings = 0;
  uint64_t dataframe_encoded = 0;
};

Footprints Measure(int universities) {
  rdf::LubmConfig cfg;
  cfg.num_universities = universities;
  auto triples = rdf::GenerateLubm(cfg);

  spark::SparkContext sc(DefaultCluster());
  Footprints out;

  // 1. RDD of N-Triples strings (the "raw triples in their natural form").
  {
    std::vector<std::string> lines;
    lines.reserve(triples.size());
    for (const auto& t : triples) lines.push_back(t.ToNTriples());
    auto rdd = Parallelize(&sc, std::move(lines), 8);
    out.string_rdd = rdd.MemoryFootprint();
  }
  // 2. RDD of dictionary-encoded triples (HAQWA's encoding step).
  rdf::TripleStore store;
  store.AddAll(triples);
  {
    auto rdd = Parallelize(
        &sc,
        std::vector<rdf::EncodedTriple>(store.triples().begin(),
                                        store.triples().end()),
        8);
    out.encoded_rdd =
        rdd.MemoryFootprint() + store.dictionary().StringBytes();
  }
  // 3. DataFrame of string columns (columnar + dictionary-encoded columns).
  {
    std::vector<sql::Row> rows;
    rows.reserve(triples.size());
    for (const auto& t : triples) {
      rows.push_back(sql::Row{t.subject.ToNTriples(),
                              t.predicate.ToNTriples(),
                              t.object.ToNTriples()});
    }
    sql::Schema schema{{sql::Field{"s", sql::DataType::kString},
                        sql::Field{"p", sql::DataType::kString},
                        sql::Field{"o", sql::DataType::kString}}};
    auto df = sql::DataFrame::FromRows(&sc, schema, rows, 8);
    out.dataframe_strings = df.MemoryFootprint();
  }
  // 4. DataFrame of encoded int64 columns (S2RDF-style tables).
  {
    std::vector<sql::Row> rows;
    rows.reserve(store.triples().size());
    for (const auto& t : store.triples()) {
      rows.push_back(sql::Row{static_cast<int64_t>(t.s),
                              static_cast<int64_t>(t.p),
                              static_cast<int64_t>(t.o)});
    }
    sql::Schema schema{{sql::Field{"s", sql::DataType::kInt64},
                        sql::Field{"p", sql::DataType::kInt64},
                        sql::Field{"o", sql::DataType::kInt64}}};
    auto df = sql::DataFrame::FromRows(&sc, schema, rows, 8);
    out.dataframe_encoded =
        df.MemoryFootprint() + store.dictionary().StringBytes();
  }
  return out;
}

void FootprintTable() {
  std::printf(
      "A4: resident bytes of the same RDF data per Spark representation\n"
      "(dictionary cost included where encoding is used)\n\n");
  std::vector<int> widths = {8, 10, 14, 14, 16, 16, 12};
  PrintRow({"univs", "triples", "RDD(str)", "RDD(enc)", "DF(str,col)",
            "DF(enc,col)", "DF/RDD"},
           widths);
  PrintRule(widths);
  for (int universities : {1, 2, 4, 8}) {
    rdf::LubmConfig cfg;
    cfg.num_universities = universities;
    uint64_t n = rdf::GenerateLubm(cfg).size();
    Footprints fp = Measure(universities);
    PrintRow({Fmt(uint64_t(universities)), Fmt(n),
              Fmt(fp.string_rdd / 1024.0) + "K",
              Fmt(fp.encoded_rdd / 1024.0) + "K",
              Fmt(fp.dataframe_strings / 1024.0) + "K",
              Fmt(fp.dataframe_encoded / 1024.0) + "K",
              Fmt(double(fp.string_rdd) /
                  double(fp.dataframe_strings ? fp.dataframe_strings : 1)) +
                  "x"},
             widths);
  }
  std::printf(
      "\nCheck: the columnar DataFrame holds the same strings several times\n"
      "smaller than the row RDD (the paper reports up to 10x on real\n"
      "datasets); dictionary encoding gives a further large reduction.\n\n");
}

void BM_BuildRepresentation(benchmark::State& state) {
  int kind = static_cast<int>(state.range(0));
  rdf::LubmConfig cfg;
  cfg.num_universities = 2;
  auto triples = rdf::GenerateLubm(cfg);
  spark::SparkContext sc(DefaultCluster());
  for (auto _ : state) {
    if (kind == 0) {
      std::vector<std::string> lines;
      for (const auto& t : triples) lines.push_back(t.ToNTriples());
      auto rdd = Parallelize(&sc, std::move(lines), 8);
      benchmark::DoNotOptimize(rdd.Count());
    } else {
      rdf::TripleStore store;
      store.AddAll(triples);
      benchmark::DoNotOptimize(store.size());
    }
  }
}
BENCHMARK(BM_BuildRepresentation)->Arg(0)->Arg(1)->Name("build/strings_vs_encoded");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::FootprintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
