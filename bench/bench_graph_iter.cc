// A8 — graph-engine iteration behaviour: S2X's validation fixpoint
// ("exchange messages between adjacent vertices ... until they do not
// change anymore", §IV.B.1) as a function of BGP size, and SparkRDF's
// rdf:type elimination benefit on type-rich data (§IV.B.3).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "systems/s2x.h"
#include "systems/sparkrdf.h"

namespace rdfspark::bench {
namespace {

void S2xIterationSweep() {
  rdf::TripleStore store = MakeLubmStore(2);
  std::printf(
      "A8: S2X fixpoint rounds vs query size/shape (LUBM x2)\n\n");
  std::vector<int> widths = {14, 10, 8, 12, 12, 12};
  PrintRow({"query", "patterns", "rows", "iterations", "messages",
            "supersteps"},
           widths);
  PrintRule(widths);

  spark::SparkContext sc(DefaultCluster());
  systems::S2xEngine engine(&sc);
  if (!engine.Load(store).ok()) return;
  std::vector<std::pair<std::string, std::string>> queries = {
      {"linear-2", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 2)},
      {"linear-3", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)},
      {"linear-4", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 4)},
      {"star-3", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3)},
      {"star-5", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 5)},
      {"snowflake", rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake)},
  };
  for (const auto& [label, text] : queries) {
    auto query = sparql::ParseQuery(text);
    if (!query.ok()) continue;
    QueryRun run = RunQuery(&engine, text);
    PrintRow({label, Fmt(uint64_t(query->where.bgp.size())), Fmt(run.rows),
              Fmt(uint64_t(engine.last_iterations())),
              Fmt(run.delta.messages), Fmt(run.delta.supersteps)},
             widths);
  }
  std::printf(
      "\nCheck: rounds-to-fixpoint grow with the pattern diameter (chains)\n"
      "and stay small for stars.\n\n");
}

void SparkRdfTypeElimination() {
  rdf::TripleStore store = MakeLubmStore(2);
  std::printf(
      "A8b: SparkRDF rdf:type elimination on a type-rich query (LUBM x2)\n\n");
  const std::string query =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "SELECT ?x ?p WHERE {\n"
      "  ?x rdf:type ub:GraduateStudent .\n"
      "  ?p rdf:type ub:FullProfessor .\n"
      "  ?x ub:advisor ?p .\n"
      "}\n";

  std::vector<int> widths = {30, 8, 11, 14, 14, 14};
  PrintRow({"Variant", "rows", "wall_ms", "stored_rec", "records_proc",
            "shuffle_rec"},
           widths);
  PrintRule(widths);
  for (bool enabled : {false, true}) {
    spark::SparkContext sc(DefaultCluster());
    systems::SparkRdfEngine::Options opts;
    opts.enable_class_indexes = enabled;
    systems::SparkRdfEngine engine(&sc, opts);
    auto load = engine.Load(store);
    if (!load.ok()) continue;
    QueryRun run = RunQuery(&engine, query);
    PrintRow({enabled ? "MESG CR/RC/CRC + elimination" : "relation index only",
              Fmt(run.rows), Fmt(run.wall_ms), Fmt(load->stored_records),
              Fmt(run.delta.records_processed),
              Fmt(run.delta.shuffle_records)},
             widths);
  }
  std::printf(
      "\nCheck: class-aware index files avoid reading unnecessary data and\n"
      "remove the rdf:type joins, at the price of index storage.\n\n");
}

void BM_S2xChain(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  rdf::TripleStore store = MakeLubmStore(1);
  spark::SparkContext sc(DefaultCluster());
  systems::S2xEngine engine(&sc);
  if (!engine.Load(store).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query =
      rdf::LubmShapeQuery(rdf::QueryShape::kLinear, length);
  for (auto _ : state) {
    QueryRun run = RunQuery(&engine, query);
    benchmark::DoNotOptimize(run.rows);
  }
  state.counters["iterations"] =
      static_cast<double>(engine.last_iterations());
}
BENCHMARK(BM_S2xChain)->Arg(2)->Arg(3)->Arg(4)->Name("s2x/chain_length");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::S2xIterationSweep();
  rdfspark::bench::SparkRdfTypeElimination();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
