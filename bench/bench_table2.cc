// Regenerates Table II of the paper: "Additional characteristics of the
// RDF query processing approaches" — query processing style, optimization,
// partitioning scheme and supported SPARQL fragment per system, derived
// from the implemented engines' traits.

#include <cstdio>

#include "bench_util.h"

namespace rdfspark::bench {
namespace {

void Run() {
  spark::SparkContext sc(DefaultCluster());
  auto engines = systems::MakeAllEngines(&sc);

  std::printf(
      "TABLE II: ADDITIONAL CHARACTERISTICS OF THE RDF QUERY PROCESSING\n"
      "APPROACHES (generated from EngineTraits)\n\n");

  std::vector<int> widths = {26, 20, 14, 20, 9};
  PrintRow({"System", "Query Processing", "Optimization", "Partitioning",
            "SPARQL"},
           widths);
  PrintRule(widths);
  for (const auto& engine : engines) {
    const auto& t = engine->traits();
    auto ref = t.citation.substr(0, t.citation.find(']') + 1);
    PrintRow({ref + " " + t.name, t.query_processing,
              t.has_optimization ? "Yes" : "No", t.partitioning,
              systems::SparqlFragmentName(t.fragment)},
             widths);
  }
  std::printf(
      "\nPaper's Table II for comparison:\n"
      "  [7]  HAQWA    | RDD API          | No  | Hash / Query Aware | BGP+\n"
      "  [13] SPARQLGX | RDD API          | Yes | Vertical           | BGP+\n"
      "  [24] S2RDF    | Spark SQL        | Yes | Extended Vertical  | BGP+\n"
      "  [21]          | Hybrid           | Yes | Hash-sbj           | BGP\n"
      "  [23] S2X      | Graph Iterations | No  | Default            | BGP+\n"
      "  [16]          | Graph Iterations | Yes | Default            | BGP\n"
      "  [12] Spar(k)ql| Graph Iterations | Yes | Default            | BGP\n"
      "  [4]           | Subgraph Matching| Yes | Default            | BGP\n"
      "  [5]  SparkRDF | Custom           | Yes | Hash-sbj           | BGP\n");

  std::printf("\nSystem contributions (the §III dimension):\n");
  for (const auto& engine : engines) {
    const auto& t = engine->traits();
    std::printf("  %-26s %s\n", t.name.c_str(), t.contribution.c_str());
  }
}

}  // namespace
}  // namespace rdfspark::bench

int main() {
  rdfspark::bench::Run();
  return 0;
}
