// A2 — S2RDF's ExtVP assessment (§IV.A.2). Reproduces the paper's worked
// example: "assuming there are two tables containing 100 entries each,
// having only 10 entries in the same subject, we need 10,000 comparisons to
// join them. If we store data using ExtVP, only 10 comparisons are needed."
// Also sweeps the selectivity-factor threshold to show the storage/benefit
// trade-off that motivates the SF cut-off.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "systems/s2rdf.h"

namespace rdfspark::bench {
namespace {

/// Two-predicate dataset: p1 and p2 have `per_table` triples each; exactly
/// `overlap` subjects occur in both.
rdf::TripleStore TwoTableStore(int per_table, int overlap) {
  rdf::TripleStore store;
  auto uri = [](const std::string& s) { return rdf::Term::Uri("http://" + s); };
  for (int i = 0; i < per_table; ++i) {
    // p1 subjects: s0..s{n-1}; p2 subjects overlap on the first `overlap`.
    store.Add({uri("s" + std::to_string(i)), uri("p1"),
               uri("a" + std::to_string(i))});
    std::string p2_subject =
        i < overlap ? "s" + std::to_string(i) : "t" + std::to_string(i);
    store.Add({uri(p2_subject), uri("p2"), uri("b" + std::to_string(i))});
  }
  return store;
}

void PaperExample() {
  std::printf(
      "A2: ExtVP worked example — 2 tables x 100 entries, 10 shared "
      "subjects\n\n");
  rdf::TripleStore store = TwoTableStore(100, 10);
  const std::string query =
      "SELECT ?x ?y ?z WHERE { ?x <http://p1> ?y . ?x <http://p2> ?z }";

  std::vector<int> widths = {26, 8, 16, 18, 14};
  PrintRow({"Variant", "rows", "join_inputs", "comparisons", "analytic"},
           widths);
  PrintRule(widths);

  struct Variant {
    std::string name;
    bool extvp;
    std::string analytic;
  };
  for (const Variant& v :
       {Variant{"VP (plain)", false, "100 probes"},
        Variant{"ExtVP (semi-join SS)", true, "10 probes"}}) {
    spark::SparkContext sc(DefaultCluster());
    systems::S2rdfEngine::Options opts;
    opts.enable_extvp = v.extvp;
    opts.selectivity_threshold = 1.0;
    systems::S2rdfEngine engine(&sc, opts);
    auto load = engine.Load(store);
    if (!load.ok()) continue;
    QueryRun run = RunQuery(&engine, query);
    PrintRow({v.name, Fmt(run.rows), Fmt(run.delta.records_processed),
              Fmt(run.delta.join_comparisons), v.analytic},
             widths);
  }
  std::printf(
      "\nNested-loop framing of the paper: VP needs 100x100 = 10000 pair\n"
      "comparisons; ExtVP tables hold only the 10 surviving rows each, so a\n"
      "nested loop needs 10x10 = 100 and a hash join ~10.\n\n");
}

void ThresholdSweep() {
  std::printf("A2b: selectivity-factor threshold sweep on LUBM\n\n");
  rdf::TripleStore store = MakeLubmStore(1);
  const std::string linear = rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3);

  std::vector<int> widths = {12, 14, 14, 16, 14, 10};
  PrintRow({"SF thresh", "extvp_tables", "extvp_rows", "storage_bytes",
            "comparisons", "rows"},
           widths);
  PrintRule(widths);
  for (double sf : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    spark::SparkContext sc(DefaultCluster());
    systems::S2rdfEngine::Options opts;
    opts.enable_extvp = sf > 0.0;
    opts.selectivity_threshold = sf;
    systems::S2rdfEngine engine(&sc, opts);
    auto load = engine.Load(store);
    if (!load.ok()) continue;
    QueryRun run = RunQuery(&engine, linear);
    PrintRow({Fmt(sf, 2), Fmt(engine.num_extvp_tables()),
              Fmt(engine.extvp_rows()), Fmt(load->stored_bytes),
              Fmt(run.delta.join_comparisons), Fmt(run.rows)},
             widths);
  }
  std::printf(
      "\nCheck: storage grows with the threshold while query-time join work\n"
      "shrinks — the trade-off the SF threshold controls.\n\n");
}

void BM_ExtvpJoin(benchmark::State& state) {
  bool extvp = state.range(0) != 0;
  rdf::TripleStore store = TwoTableStore(500, 25);
  spark::SparkContext sc(DefaultCluster());
  systems::S2rdfEngine::Options opts;
  opts.enable_extvp = extvp;
  opts.selectivity_threshold = 1.0;
  systems::S2rdfEngine engine(&sc, opts);
  if (!engine.Load(store).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query =
      "SELECT ?x WHERE { ?x <http://p1> ?y . ?x <http://p2> ?z }";
  for (auto _ : state) {
    QueryRun run = RunQuery(&engine, query);
    benchmark::DoNotOptimize(run.rows);
  }
}
BENCHMARK(BM_ExtvpJoin)->Arg(0)->Arg(1)->Name("S2RDF_join/extvp");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::PaperExample();
  rdfspark::bench::ThresholdSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
