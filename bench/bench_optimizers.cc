// A7 — optimizer ablations: SPARQLGX's statistics-based join reordering
// (§IV.A.1) and S2RDF's sub-query ordering + ExtVP (§IV.A.2), plus the
// GraphFrames engine's predicate-frequency ordering and pruning (§IV.B.2).
// Each system runs the same query with its optimization on and off.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "systems/graphframes_engine.h"
#include "systems/s2rdf.h"
#include "systems/sparqlgx.h"

namespace rdfspark::bench {
namespace {

// A snowflake-ish query written worst-first: the most frequent predicate
// (name) leads, so an order-as-written evaluator starts from the biggest
// relation.
std::string WorstFirstQuery() {
  return "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
         ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
         "SELECT ?x ?n ?d WHERE {\n"
         "  ?x ub:name ?n .\n"
         "  ?x ub:worksFor ?d .\n"
         "  ?x ub:headOf ?d .\n"
         "  ?d ub:subOrganizationOf ?u .\n"
         "}\n";
}

// First PatternScan line of an EXPLAIN tree. Plans print pre-order, so for
// the left-deep trees these engines build, the first scan printed is the
// pattern the optimizer chose to evaluate first.
std::string FirstScanLine(const std::string& plan) {
  std::istringstream in(plan);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("PatternScan") != std::string::npos) return line;
  }
  return "";
}

std::string MustExplain(systems::RdfQueryEngine* engine,
                        const std::string& query, const char* label) {
  auto plan = engine->ExplainText(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "A7: EXPLAIN failed for %s: %s\n", label,
                 plan.status().ToString().c_str());
    std::abort();
  }
  return *plan;
}

void AblationTable() {
  rdf::TripleStore store = MakeLubmStore(2);
  const std::string query = WorstFirstQuery();
  std::printf(
      "A7: optimizer ablations on a worst-first 4-pattern query (LUBM x2)\n\n");
  std::vector<int> widths = {34, 8, 11, 14, 14, 14};
  PrintRow({"System / optimization", "rows", "wall_ms", "shuffle_rec",
            "comparisons", "records_proc"},
           widths);
  PrintRule(widths);

  auto report = [&](const std::string& label,
                    systems::RdfQueryEngine* engine) {
    QueryRun run = RunQuery(engine, query);
    PrintRow({label, Fmt(run.rows), Fmt(run.wall_ms),
              Fmt(run.delta.shuffle_records), Fmt(run.delta.join_comparisons),
              Fmt(run.delta.records_processed)},
             widths);
  };

  {
    spark::SparkContext sc(DefaultCluster());
    systems::SparqlgxEngine::Options off;
    off.enable_statistics_reordering = false;
    systems::SparqlgxEngine engine(&sc, off);
    if (engine.Load(store).ok()) report("SPARQLGX / no statistics", &engine);
  }
  {
    spark::SparkContext sc(DefaultCluster());
    systems::SparqlgxEngine engine(&sc);
    if (engine.Load(store).ok()) {
      // Plan-shape guard: with statistics on, the reordering must demote the
      // worst-first `name` pattern — the first scan in the plan has to be a
      // more selective one.
      std::string plan =
          MustExplain(&engine, query, "SPARQLGX / stats reordering");
      std::string first = FirstScanLine(plan);
      if (first.empty() || first.find("name") != std::string::npos) {
        std::fprintf(stderr,
                     "A7: SPARQLGX stats reordering did not demote the "
                     "worst-first pattern; plan:\n%s",
                     plan.c_str());
        std::abort();
      }
      report("SPARQLGX / stats reordering", &engine);
    }
  }
  {
    spark::SparkContext sc(DefaultCluster());
    systems::S2rdfEngine::Options off;
    off.enable_extvp = false;
    systems::S2rdfEngine engine(&sc, off);
    if (engine.Load(store).ok()) report("S2RDF / VP only", &engine);
  }
  {
    spark::SparkContext sc(DefaultCluster());
    systems::S2rdfEngine::Options on;
    on.selectivity_threshold = 0.5;
    systems::S2rdfEngine engine(&sc, on);
    if (engine.Load(store).ok()) {
      // Plan-shape guard: with ExtVP enabled the plan must actually read
      // extvp_* tables, not plain VP ones.
      std::string plan = MustExplain(&engine, query, "S2RDF / ExtVP");
      if (plan.find("extvp_") == std::string::npos) {
        std::fprintf(stderr,
                     "A7: S2RDF ExtVP plan reads no extvp_ table; plan:\n%s",
                     plan.c_str());
        std::abort();
      }
      report("S2RDF / ExtVP (SF<=0.5)", &engine);
    }
  }
  {
    spark::SparkContext sc(DefaultCluster());
    systems::GraphFramesEngine::Options off;
    off.enable_frequency_ordering = false;
    off.enable_pruning = false;
    systems::GraphFramesEngine engine(&sc, off);
    if (engine.Load(store).ok()) report("GF-SPARQL / unoptimized", &engine);
  }
  {
    spark::SparkContext sc(DefaultCluster());
    systems::GraphFramesEngine engine(&sc);
    if (engine.Load(store).ok()) {
      report("GF-SPARQL / freq order + pruning", &engine);
    }
  }
  std::printf(
      "\nCheck: every optimization cuts intermediate work (comparisons /\n"
      "shuffled records) relative to its own baseline, as §IV describes.\n\n");
}

void BM_Sparqlgx(benchmark::State& state) {
  bool optimized = state.range(0) != 0;
  rdf::TripleStore store = MakeLubmStore(1);
  spark::SparkContext sc(DefaultCluster());
  systems::SparqlgxEngine::Options opts;
  opts.enable_statistics_reordering = optimized;
  systems::SparqlgxEngine engine(&sc, opts);
  if (!engine.Load(store).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  const std::string query = WorstFirstQuery();
  for (auto _ : state) {
    QueryRun run = RunQuery(&engine, query);
    benchmark::DoNotOptimize(run.rows);
  }
}
BENCHMARK(BM_Sparqlgx)->Arg(0)->Arg(1)->Name("sparqlgx/stats_reorder");

}  // namespace
}  // namespace rdfspark::bench

int main(int argc, char** argv) {
  rdfspark::bench::AblationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
