#!/usr/bin/env bash
# Mutation validation for the Tier C happens-before checker: proves the
# checker's silence on the clean tree is load-bearing, not vacuous.
#
#   1. Clean tree: dataflow_lint reports ZERO RC/DT findings over the full
#      12-variant x LUBM-shape corpus + runtime probe + serving workload,
#      and its output is byte-identical between --threads=1 and --threads=8.
#   2. -DRDFSPARK_MUTATE_NO_SLOT_LOCK=ON removes the per-partition cache
#      slot lock (and, via the same macro, its lockset record): the probe's
#      sibling tasks now conflict and dataflow_lint must exit 1 with an
#      RC001 or RC003 finding — at --threads=1, where no physical race can
#      possibly occur, because the verdict is structural.
#   3. -DRDFSPARK_MUTATE_CACHED_PLAIN=ON downgrades RddNodeBase::cached_
#      from std::atomic<bool> to a plain bool (and its event records from
#      atomic to plain): the uncache-vs-read probe stage must fire RC003.
#   Each mutated run executes twice and the outputs are byte-compared, so
#   the *findings* are shown to be as deterministic as the silence.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_TYPE="${RDFSPARK_MUTATION_BUILD_TYPE:-RelWithDebInfo}"

echo "=== mutation check 0/2: clean tree is silent and deterministic ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" >/dev/null
cmake --build build -j --target dataflow_lint
./build/tools/dataflow_lint --threads=1 > /tmp/mutcheck_clean_t1.txt
./build/tools/dataflow_lint --threads=8 > /tmp/mutcheck_clean_t8.txt
diff /tmp/mutcheck_clean_t1.txt /tmp/mutcheck_clean_t8.txt
if grep -qE "\[(RC00[123]|DT00[123])\]" /tmp/mutcheck_clean_t1.txt; then
  echo "FAIL: clean tree produced RC/DT findings"
  exit 1
fi
grep -q "tier C findings: 0 error(s), 0 warning(s)" /tmp/mutcheck_clean_t1.txt
echo "clean tree: silent, --threads=1 == --threads=8"

run_mutation() {
  local name="$1" flag="$2" pattern="$3" builddir="build-mut-${name}"
  echo
  echo "=== mutation check (${name}): ${flag} must fire ${pattern} ==="
  cmake -B "${builddir}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" \
    "-D${flag}=ON" >/dev/null
  cmake --build "${builddir}" -j --target dataflow_lint
  local out1="/tmp/mutcheck_${name}_1.txt" out2="/tmp/mutcheck_${name}_2.txt"
  # The mutated checker must fail (exit 1) with the expected rule, and the
  # findings must be identical across two serial runs: a structural
  # verdict, not a lucky interleaving.
  local status=0
  ./"${builddir}"/tools/dataflow_lint --threads=1 --serving-workers=1 \
    > "${out1}" || status=$?
  if [ "${status}" -ne 1 ]; then
    echo "FAIL: mutated lint exited ${status}, expected 1"
    exit 1
  fi
  status=0
  ./"${builddir}"/tools/dataflow_lint --threads=1 --serving-workers=1 \
    > "${out2}" || status=$?
  if [ "${status}" -ne 1 ]; then
    echo "FAIL: mutated lint rerun exited ${status}, expected 1"
    exit 1
  fi
  diff "${out1}" "${out2}"
  grep -qE "${pattern}" "${out1}" || {
    echo "FAIL: expected ${pattern} in mutated output"
    exit 1
  }
  echo "${name}: fires $(grep -cE "${pattern}" "${out1}") ${pattern} finding(s), deterministically"
}

run_mutation lock RDFSPARK_MUTATE_NO_SLOT_LOCK "\[(RC001|RC003)\]"
run_mutation atomic RDFSPARK_MUTATE_CACHED_PLAIN "\[RC003\]"

echo
echo "mutation check: OK"
