#!/usr/bin/env bash
# clang-tidy over all library sources (src/), using the checks pinned in
# .clang-tidy. Skips gracefully when clang-tidy is not installed (the dev
# container ships only gcc); CI installs it and runs this same script.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "lint: $TIDY not found; skipping (install clang-tidy to run locally)"
  exit 0
fi

echo "=== lint: $($TIDY --version | head -n1) ==="
cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# All translation units under src/, from the compile database itself so the
# list never drifts from the build.
mapfile -t sources < <(python3 - <<'EOF'
import json
for entry in json.load(open("build-lint/compile_commands.json")):
    f = entry["file"]
    if "/src/" in f:
        print(f)
EOF
)

echo "lint: ${#sources[@]} files"
"$TIDY" -p build-lint --quiet "${sources[@]}"
echo "lint: OK"
