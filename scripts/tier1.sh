#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the dedicated
# ThreadSanitizer pass (scripts/tsan.sh) over the concurrency-sensitive
# suites.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== tier 1: build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j4

echo
./scripts/tsan.sh

echo
echo "tier 1: OK"
