#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer pass
# over the concurrency-sensitive suites (scheduler, rdd, dataframe, serving).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== tier 1: build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j4

echo
echo "=== tier 1: ThreadSanitizer (scheduler/rdd/dataframe/engines/plans/serving) ==="
cmake -B build-tsan -S . -DRDFSPARK_TSAN=ON >/dev/null
cmake --build build-tsan -j --target scheduler_test rdd_test dataframe_test \
  engines_test plan_explain_test tracing_test serving_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/scheduler_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/rdd_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/dataframe_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/engines_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/plan_explain_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/tracing_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/serving_test

echo
echo "tier 1: OK"
