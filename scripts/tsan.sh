#!/usr/bin/env bash
# Dedicated ThreadSanitizer pass over the concurrency-sensitive suites:
# the scheduler/RDD runtime, the engines that drive it, the serving layer,
# and the happens-before checker itself (whose verdicts must hold on the
# same binaries TSan watches). tier1.sh delegates here; CI runs it as its
# own job so a TSan failure is attributable at a glance.
set -euo pipefail

cd "$(dirname "$0")/.."

SUITES=(scheduler_test rdd_test dataframe_test engines_test \
  plan_explain_test tracing_test serving_test hb_test)

echo "=== ThreadSanitizer (${SUITES[*]}) ==="
cmake -B build-tsan -S . -DRDFSPARK_TSAN=ON >/dev/null
cmake --build build-tsan -j --target "${SUITES[@]}"
for suite in "${SUITES[@]}"; do
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/${suite}"
done

echo
echo "tsan: OK"
