// Metrics field-coverage and histogram tests.
//
// The field-coverage tests expand the same RDFSPARK_METRICS_*_FIELDS
// X-macro lists the Metrics operators are generated from, so a counter
// added to the struct and the lists is automatically covered here — and a
// counter added to the struct but NOT to the lists fails the sizeof
// static_assert in metrics.cc before any test runs. Either way, a new
// field cannot silently vanish from snapshots/deltas/dumps again.

#include "spark/metrics.h"

#include <set>
#include <string>

#include "gtest/gtest.h"

namespace rdfspark::spark {
namespace {

TEST(MetricsCoverage, OperatorMinusCoversEveryCounterField) {
  Metrics after;
  Metrics before;
  uint64_t i = 0;
  // after = 1000 + k, before = k  =>  every field's delta must be 1000.
#define RDFSPARK_SET(name) \
  ++i;                     \
  after.name = 1000 + i;   \
  before.name = i;
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_SET)
#undef RDFSPARK_SET
  Metrics delta = after - before;
#define RDFSPARK_CHECK(name) \
  EXPECT_EQ(delta.name.value(), 1000u) << "operator- dropped field " #name;
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_CHECK)
#undef RDFSPARK_CHECK
}

TEST(MetricsCoverage, OperatorPlusEqualsCoversEveryCounterField) {
  Metrics acc;
  Metrics rhs;
  uint64_t i = 0;
#define RDFSPARK_SET(name) \
  ++i;                     \
  acc.name = i;            \
  rhs.name = 10 * i;
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_SET)
#undef RDFSPARK_SET
  acc += rhs;
  i = 0;
#define RDFSPARK_CHECK(name) \
  ++i;                       \
  EXPECT_EQ(acc.name.value(), 11 * i) << "operator+= dropped field " #name;
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_CHECK)
#undef RDFSPARK_CHECK
}

TEST(MetricsCoverage, SimTimeAndHistogramsCoveredBySnapshotDelta) {
  Metrics after;
  Metrics before;
  after.simulated_ms = 8.0;
  before.simulated_ms = 3.0;
  after.task_duration_ns.Record(100);
  after.task_duration_ns.Record(300);
  after.task_records.Record(7);
  Metrics delta = after - before;
  EXPECT_DOUBLE_EQ(delta.simulated_ms.ms(), 5.0);
  EXPECT_EQ(delta.task_duration_ns.count(), 2u);
  EXPECT_EQ(delta.task_duration_ns.sum(), 400u);
  EXPECT_EQ(delta.task_records.count(), 1u);

  Metrics acc;
  acc += after;
  EXPECT_DOUBLE_EQ(acc.simulated_ms.ms(), 8.0);
  EXPECT_EQ(acc.task_duration_ns.count(), 2u);
  EXPECT_EQ(acc.task_records.sum(), 7u);
}

TEST(MetricsCoverage, ToStringMentionsEveryCounterValue) {
  Metrics m;
  // Distinct, searchable values: 4242 + k never collides with formatting
  // artifacts of the other fields.
  uint64_t i = 0;
#define RDFSPARK_SET(name) \
  ++i;                     \
  m.name = 424200 + i;
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_SET)
#undef RDFSPARK_SET
  // Byte-valued fields print through FormatBytes ("414.26 KiB"), so check
  // those by field name instead of value.
  std::set<std::string> byte_fields = {"shuffle_bytes", "remote_shuffle_bytes",
                                       "broadcast_bytes"};
  std::string text = m.ToString();
  i = 0;
#define RDFSPARK_CHECK(name)                                              \
  ++i;                                                                    \
  if (byte_fields.count(#name) == 0) {                                    \
    EXPECT_NE(text.find(std::to_string(424200 + i)), std::string::npos)   \
        << "ToString() does not include field " #name " (value "          \
        << (424200 + i) << "):\n"                                         \
        << text;                                                          \
  }
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_CHECK)
#undef RDFSPARK_CHECK
  EXPECT_NE(text.find("bytes="), std::string::npos);
  EXPECT_NE(text.find("task_duration_ns:"), std::string::npos);
  EXPECT_NE(text.find("task_records:"), std::string::npos);
  EXPECT_NE(text.find("simulated_ms="), std::string::npos);
}

TEST(MetricsCoverage, ForEachNumericFieldEmitsEveryCounterOnce) {
  Metrics m;
  std::set<std::string> names;
  m.ForEachNumericField(
      [&](const std::string& name, double) { names.insert(name); });
#define RDFSPARK_CHECK(name) \
  EXPECT_EQ(names.count(#name), 1u) << "missing field " #name;
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_CHECK)
#undef RDFSPARK_CHECK
  EXPECT_EQ(names.count("simulated_ms"), 1u);
  EXPECT_EQ(names.count("task_records.skew_vs_mean"), 1u);
  EXPECT_EQ(names.count("task_duration_ns.p95_upper"), 1u);
}

TEST(Histogram, BucketsCountSumMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.SkewVsMean(), 0.0);

  h.Record(0);
  h.Record(1);
  h.Record(5);
  h.Record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.max_value(), 1000u);
  EXPECT_EQ(h.bucket(Histogram::BucketOf(0)), 1u);   // 0 -> bucket 0
  EXPECT_EQ(h.bucket(Histogram::BucketOf(1)), 1u);   // 1 -> bucket 1
  EXPECT_EQ(h.bucket(Histogram::BucketOf(5)), 1u);   // 4..7 -> bucket 3
  EXPECT_EQ(Histogram::BucketOf(5), 3);
  EXPECT_EQ(Histogram::BucketOf(1000), 10);  // 512..1023
  EXPECT_DOUBLE_EQ(h.Mean(), 1006.0 / 4.0);
}

TEST(Histogram, QuantileUpperBoundsAreBucketBounds) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(10);  // bucket 4 (8..15)
  h.Record(100000);                           // the outlier
  EXPECT_EQ(h.QuantileUpperBound(0.5), 15u);
  EXPECT_EQ(h.QuantileUpperBound(0.95), 15u);
  // The top quantile lands in the outlier's bucket, clamped to true max.
  EXPECT_EQ(h.QuantileUpperBound(1.0), 100000u);
  EXPECT_GT(h.SkewVsMean(), 90.0);
}

TEST(Histogram, DeltaSubtractsBucketsAndKeepsMax) {
  Histogram before;
  before.Record(4);
  Histogram after = before;  // copyable via Counter value semantics
  after.Record(4);
  after.Record(64);
  Histogram delta = after - before;
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.sum(), 68u);
  EXPECT_EQ(delta.bucket(Histogram::BucketOf(4)), 1u);
  EXPECT_EQ(delta.bucket(Histogram::BucketOf(64)), 1u);
  // Max is since-construction by contract.
  EXPECT_EQ(delta.max_value(), 64u);
}

TEST(Histogram, SkewRatioDetectsImbalance) {
  Histogram balanced;
  for (int i = 0; i < 8; ++i) balanced.Record(100);
  EXPECT_DOUBLE_EQ(balanced.SkewVsMean(), 1.0);

  Histogram skewed;
  for (int i = 0; i < 7; ++i) skewed.Record(10);
  skewed.Record(930);
  EXPECT_DOUBLE_EQ(skewed.SkewVsMean(), 930.0 / 125.0);
}

}  // namespace
}  // namespace rdfspark::spark
