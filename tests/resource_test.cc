// Tier D resource-envelope tests: the RS rule triggers on hand-built plan
// shapes, the scan-calibration fold, and the two whole-corpus properties the
// CI footprint gate relies on — soundness (static peak envelope >= bytes a
// profiled execution actually materialized) and byte-identity of the
// analysis across executor-thread counts, for every LUBM corpus query on
// every one of the twelve engine variants.

#include "systems/plan/resource.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "spark/tracing.h"
#include "sparql/parser.h"
#include "systems/engine.h"
#include "systems/plan/plan.h"

namespace rdfspark::systems::plan {
namespace {

/// Same small dataset as dataflow_lint / plan_lint, so the corpus
/// properties exercise exactly the cells the tool reports on.
rdf::TripleStore LintDataset() {
  rdf::TripleStore store;
  rdf::LubmConfig cfg;
  cfg.num_universities = 1;
  cfg.departments_per_university = 3;
  cfg.professors_per_department = 4;
  cfg.students_per_department = 20;
  cfg.courses_per_department = 5;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.Dedupe();
  return store;
}

spark::ClusterConfig LintCluster(int executor_threads) {
  spark::ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  cfg.executor_threads = executor_threads;
  return cfg;
}

/// A scan leaf with a sound row cap, binding one variable.
PlanPtr Scan(uint64_t rows, const std::string& var) {
  PlanPtr scan = MakeScan(NodeKind::kPatternScan, AccessPath::kFullScan,
                          "scan " + var, rows, nullptr);
  scan->max_cardinality = rows;
  scan->out_vars = {var};
  return scan;
}

/// A scan leaf the planner could not bound at all (kNoEstimate).
PlanPtr UnboundedScan(const std::string& var) {
  PlanPtr scan = MakeScan(NodeKind::kPatternScan, AccessPath::kFullScan,
                          "scan " + var, kNoEstimate, nullptr);
  scan->out_vars = {var};
  return scan;
}

int CountRule(const std::vector<Diagnostic>& ds, const std::string& rule) {
  int n = 0;
  for (const auto& d : ds) n += d.rule == rule;
  return n;
}

// ------------------------------------------------------------ RS rules

TEST(ResourceRulesTest, Rs001BroadcastReplicaOverExecutorBudget) {
  // Both inputs ~80MB (width 1), so the build side alone exceeds the
  // 64MiB per-executor default budget.
  PlanPtr join =
      MakeBinary(NodeKind::kBroadcastJoin, "bcast", Scan(10'000'000, "x"),
                 Scan(10'000'000, "y"), nullptr);
  ResourceProfile profile;
  auto analysis = AnalyzeResources(*join, profile);
  EXPECT_EQ(CountRule(analysis.findings, "RS001"), 1);
  EXPECT_TRUE(analysis.bounded);
}

TEST(ResourceRulesTest, Rs001SilentWhenReplicaFits) {
  PlanPtr join = MakeBinary(NodeKind::kBroadcastJoin, "bcast",
                            Scan(100, "x"), Scan(100, "y"), nullptr);
  ResourceProfile profile;
  auto analysis = AnalyzeResources(*join, profile);
  EXPECT_EQ(CountRule(analysis.findings, "RS001"), 0);
  // The replica term still charges build * num_executors at the join node.
  ASSERT_FALSE(analysis.nodes.empty());
  EXPECT_GT(analysis.nodes.front().working_bytes, 0u);
}

TEST(ResourceRulesTest, Rs002PeakOverClusterBudget) {
  PlanPtr scan = Scan(200, "x");
  ResourceProfile profile;
  profile.cluster_budget_bytes = 1000;  // Scan envelope is 1616B.
  auto analysis = AnalyzeResources(*scan, profile);
  EXPECT_EQ(CountRule(analysis.findings, "RS002"), 1);
  EXPECT_TRUE(analysis.bounded);
  EXPECT_GT(analysis.peak_bytes, profile.ClusterBudget());
}

TEST(ResourceRulesTest, Rs002NeverFiresOnUnboundedEnvelopes) {
  // Unbounded plans are RS003's job; RS002 compares *bounded* peaks only,
  // mirroring the serving gate (unbounded envelopes are admitted).
  PlanPtr join =
      MakeBinary(NodeKind::kPartitionedHashJoin, "join",
                 UnboundedScan("x"), Scan(100, "y"), nullptr);
  ResourceProfile profile;
  profile.cluster_budget_bytes = 1;
  auto analysis = AnalyzeResources(*join, profile);
  EXPECT_FALSE(analysis.bounded);
  EXPECT_EQ(CountRule(analysis.findings, "RS002"), 0);
}

TEST(ResourceRulesTest, Rs003UnboundedLeafUnderBlockingOperator) {
  PlanPtr join =
      MakeBinary(NodeKind::kPartitionedHashJoin, "join",
                 UnboundedScan("x"), Scan(100, "y"), nullptr);
  ResourceProfile profile;
  auto analysis = AnalyzeResources(*join, profile);
  EXPECT_EQ(CountRule(analysis.findings, "RS003"), 1);
  EXPECT_FALSE(analysis.bounded);
  EXPECT_EQ(analysis.peak_bytes, kUnboundedBytes);
}

TEST(ResourceRulesTest, Rs003SilentWithoutBlockingAncestor) {
  // A bare unbounded scan blocks nothing: no working set needs the bound.
  PlanPtr scan = UnboundedScan("x");
  ResourceProfile profile;
  auto analysis = AnalyzeResources(*scan, profile);
  EXPECT_EQ(CountRule(analysis.findings, "RS003"), 0);
  EXPECT_FALSE(analysis.bounded);
}

TEST(ResourceRulesTest, Rs005SuperlinearCartesianProduct) {
  // 100 x 100 rows -> 10000-row cross product at width 2: far beyond
  // kSuperlinearFactor times the input bytes.
  PlanPtr cross = MakeBinary(NodeKind::kCartesianProduct, "cross",
                             Scan(100, "x"), Scan(100, "y"), nullptr);
  ResourceProfile profile;
  auto analysis = AnalyzeResources(*cross, profile);
  EXPECT_EQ(CountRule(analysis.findings, "RS005"), 1);
}

TEST(ResourceRulesTest, Rs005SilentOnKeyedJoin) {
  // The same inputs through an equi-join stay within fanout headroom.
  PlanPtr join = MakeBinary(NodeKind::kPartitionedHashJoin, "join",
                            Scan(100, "x"), Scan(100, "y"), nullptr);
  ResourceProfile profile;
  auto analysis = AnalyzeResources(*join, profile);
  EXPECT_EQ(CountRule(analysis.findings, "RS005"), 0);
  // Fanout headroom: bound is 2 * max(inputs), not the product.
  EXPECT_EQ(analysis.nodes.front().row_bound, 200u);
}

TEST(ResourceRulesTest, Rs006FiresOnUnsoundEnvelope) {
  ObservedFootprint observed;
  observed.output_bytes = 5000;
  observed.nodes_with_actuals = 1;
  auto findings = DriftFindings(/*envelope_output_bytes=*/1000, observed);
  ASSERT_EQ(CountRule(findings, "RS006"), 1);
  EXPECT_NE(findings[0].message.find("no longer sound"), std::string::npos);
}

TEST(ResourceRulesTest, Rs006FiresOnOverConservativeEnvelope) {
  ObservedFootprint observed;
  observed.output_bytes = 100;
  observed.nodes_with_actuals = 1;
  auto findings = DriftFindings(/*envelope_output_bytes=*/2000, observed);
  EXPECT_EQ(CountRule(findings, "RS006"), 1);  // 20x > the 16x bound.
}

TEST(ResourceRulesTest, Rs006SilentWithinBoundOrWithoutActuals) {
  ObservedFootprint observed;
  observed.output_bytes = 100;
  observed.nodes_with_actuals = 1;
  EXPECT_TRUE(DriftFindings(/*envelope_output_bytes=*/1500, observed).empty());
  observed.nodes_with_actuals = 0;
  EXPECT_TRUE(DriftFindings(/*envelope_output_bytes=*/2000, observed).empty());
}

// ----------------------------------------------------- envelope algebra

TEST(ResourceEnvelopeTest, StageFoldRetainsUpstreamOutputs) {
  // join(join(a, b), c): two shuffle barriers -> three stages; the peak
  // stage retains every upstream output plus its own working sets.
  PlanPtr inner = MakeBinary(NodeKind::kPartitionedHashJoin, "inner",
                             Scan(100, "x"), Scan(100, "y"), nullptr);
  PlanPtr outer = MakeBinary(NodeKind::kPartitionedHashJoin, "outer",
                             std::move(inner), Scan(100, "z"), nullptr);
  ResourceProfile profile;
  auto analysis = AnalyzeResources(*outer, profile);
  ASSERT_EQ(analysis.stages.size(), 3u);
  EXPECT_TRUE(analysis.bounded);
  for (size_t s = 1; s < analysis.stages.size(); ++s) {
    EXPECT_GE(analysis.stages[s].live_output_bytes,
              analysis.stages[s - 1].live_output_bytes);
  }
  EXPECT_EQ(analysis.peak_bytes, analysis.stages.back().total_bytes);
}

TEST(ResourceEnvelopeTest, SortAtRootChargesBuffer) {
  ResourceProfile plain;
  ResourceProfile sorted;
  sorted.sort_at_root = true;
  PlanPtr scan1 = Scan(100, "x");
  PlanPtr scan2 = Scan(100, "x");
  auto without = AnalyzeResources(*scan1, plain);
  auto with = AnalyzeResources(*scan2, sorted);
  EXPECT_GT(with.peak_bytes, without.peak_bytes);
  EXPECT_EQ(with.nodes.front().working_bytes,
            without.nodes.front().output_bytes * kSortBufferFactor);
}

TEST(ResourceEnvelopeTest, MaxCardinalityTightensInteriorBound) {
  PlanPtr join = MakeBinary(NodeKind::kPartitionedHashJoin, "join",
                            Scan(100, "x"), Scan(100, "y"), nullptr);
  join->max_cardinality = 7;  // Planner proved a tighter cap.
  ResourceProfile profile;
  auto analysis = AnalyzeResources(*join, profile);
  EXPECT_EQ(analysis.nodes.front().row_bound, 7u);
}

// -------------------------------------------------------- calibration

TEST(CalibrateScansTest, SumsLeafEnvelopesAgainstLeafActuals) {
  PlanPtr join = MakeBinary(NodeKind::kPartitionedHashJoin, "join",
                            Scan(100, "x"), Scan(100, "y"), nullptr);
  auto mark = [](const PlanPtr& node, uint64_t rows) {
    auto stats = std::make_shared<spark::OpStats>();
    stats->rows_out = rows;
    stats->rows_known = true;
    node->actuals = std::move(stats);
  };
  mark(join->children[0], 5);
  mark(join->children[1], 9);
  mark(join, 45);  // Interior actuals must NOT enter the sample.

  ResourceProfile profile;
  auto analysis = AnalyzeResources(*join, profile);
  auto calib = CalibrateScans(*join, analysis);
  EXPECT_EQ(calib.leaves, 2);
  // Leaf width is 1 (each binds one variable): 16 + rows * 8.
  EXPECT_EQ(calib.envelope_bytes, 2u * (16 + 100 * 8));
  EXPECT_EQ(calib.observed_bytes, (16 + 5 * 8) + (16 + 9 * 8));
  EXPECT_GE(calib.envelope_bytes, calib.observed_bytes);
}

TEST(CalibrateScansTest, SkipsLeavesWithoutActualsOrBounds) {
  PlanPtr join = MakeBinary(NodeKind::kPartitionedHashJoin, "join",
                            UnboundedScan("x"), Scan(100, "y"), nullptr);
  auto stats = std::make_shared<spark::OpStats>();
  stats->rows_out = 3;
  stats->rows_known = true;
  join->children[0]->actuals = stats;  // Unbounded envelope: skipped.
  // children[1] has a bound but no actuals: skipped too.
  ResourceProfile profile;
  auto analysis = AnalyzeResources(*join, profile);
  auto calib = CalibrateScans(*join, analysis);
  EXPECT_EQ(calib.leaves, 0);
  EXPECT_EQ(calib.envelope_bytes, 0u);
  EXPECT_EQ(calib.observed_bytes, 0u);
}

// ------------------------------------------- whole-corpus properties

/// Soundness: for every engine variant and every LUBM corpus query, a
/// bounded static envelope dominates what a profiled execution actually
/// materialized — the property the CI footprint gate snapshots.
TEST(ResourceCorpusTest, PeakEnvelopeDominatesObservedBytes) {
  rdf::TripleStore store = LintDataset();
  auto corpus = rdf::LubmQueryMix();
  int bounded_cells = 0;
  for (const auto& factory : AllEngineVariantFactories()) {
    spark::SparkContext sc(LintCluster(/*executor_threads=*/2));
    auto engine = factory.make(&sc);
    ASSERT_TRUE(engine->Load(store).ok()) << factory.name;
    for (const auto& [shape, text] : corpus) {
      SCOPED_TRACE(factory.name + " / " + text);
      auto analysis = engine->ResourceEnvelope(text);
      ASSERT_TRUE(analysis.ok());
      auto analyzed = engine->ExecuteAnalyzed(text);
      ASSERT_TRUE(analyzed.ok());
      auto observed = ObserveFootprint(**analyzed);
      if (!analysis->bounded) continue;
      ++bounded_cells;
      EXPECT_GE(analysis->peak_bytes, observed.output_bytes);
      EXPECT_GE(analysis->output_bytes, observed.output_bytes);
      // Scan calibration never exceeds the whole-plan envelope and stays
      // sound per leaf by construction.
      auto query = sparql::ParseQuery(text);
      ASSERT_TRUE(query.ok());
      auto aligned = engine->AnalyzePlanResources(*query, **analyzed);
      auto calib = CalibrateScans(**analyzed, aligned);
      if (calib.leaves > 0) {
        EXPECT_GE(calib.envelope_bytes, calib.observed_bytes);
      }
    }
  }
  // The property must not pass vacuously.
  EXPECT_GT(bounded_cells, 20);
}

/// Determinism: the rendered analysis is byte-identical whether the engine
/// simulates one executor thread or eight.
TEST(ResourceCorpusTest, EnvelopeByteIdenticalAcrossExecutorThreads) {
  rdf::TripleStore store = LintDataset();
  auto corpus = rdf::LubmQueryMix();
  for (const auto& factory : AllEngineVariantFactories()) {
    spark::SparkContext sc1(LintCluster(/*executor_threads=*/1));
    spark::SparkContext sc8(LintCluster(/*executor_threads=*/8));
    auto engine1 = factory.make(&sc1);
    auto engine8 = factory.make(&sc8);
    ASSERT_TRUE(engine1->Load(store).ok()) << factory.name;
    ASSERT_TRUE(engine8->Load(store).ok()) << factory.name;
    for (const auto& [shape, text] : corpus) {
      SCOPED_TRACE(factory.name + " / " + text);
      auto a1 = engine1->ResourceEnvelope(text);
      auto a8 = engine8->ResourceEnvelope(text);
      ASSERT_EQ(a1.ok(), a8.ok());
      if (!a1.ok()) continue;
      EXPECT_EQ(RenderEnvelope(*a1), RenderEnvelope(*a8));
      EXPECT_EQ(a1->peak_bytes, a8->peak_bytes);
      EXPECT_EQ(a1->findings.size(), a8->findings.size());
    }
  }
}

}  // namespace
}  // namespace rdfspark::systems::plan
