#include "sparql/serialize.h"

#include <gtest/gtest.h>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "sparql/eval.h"
#include "sparql/parser.h"

namespace rdfspark::sparql {
namespace {

/// Round trip: parse -> serialize -> parse -> serialize; the two serialized
/// forms must be identical (fixed point), and both queries must evaluate to
/// the same results.
void CheckRoundTrip(const std::string& text, const rdf::TripleStore& store) {
  auto q1 = ParseQuery(text);
  ASSERT_TRUE(q1.ok()) << text << "\n" << q1.status().ToString();
  std::string s1 = ToSparql(*q1);
  auto q2 = ParseQuery(s1);
  ASSERT_TRUE(q2.ok()) << "serialized form failed to parse:\n" << s1 << "\n"
                       << q2.status().ToString();
  EXPECT_EQ(s1, ToSparql(*q2)) << "not a serialization fixed point";

  ReferenceEvaluator eval(&store);
  auto r1 = eval.Evaluate(*q1);
  auto r2 = eval.Evaluate(*q2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->Decode(store.dictionary()), r2->Decode(store.dictionary()))
      << "round trip changed the answers for:\n" << text;
}

class SerializeTest : public ::testing::Test {
 protected:
  static const rdf::TripleStore& Store() {
    static rdf::TripleStore* store = [] {
      auto* s = new rdf::TripleStore();
      s->AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
      s->Dedupe();
      return s;
    }();
    return *store;
  }
};

TEST_F(SerializeTest, ShapeQueriesRoundTrip) {
  for (auto shape :
       {rdf::QueryShape::kStar, rdf::QueryShape::kLinear,
        rdf::QueryShape::kSnowflake, rdf::QueryShape::kComplex}) {
    CheckRoundTrip(rdf::LubmShapeQuery(shape), Store());
  }
}

TEST_F(SerializeTest, ModifiersRoundTrip) {
  const std::string prologue =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) + ">\n";
  CheckRoundTrip(prologue +
                     "SELECT DISTINCT ?d WHERE { ?x ub:worksFor ?d } "
                     "ORDER BY DESC(?d) LIMIT 3 OFFSET 1",
                 Store());
}

TEST_F(SerializeTest, OptionalUnionFilterRoundTrip) {
  const std::string prologue =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
  CheckRoundTrip(
      prologue +
          "SELECT ?x ?u WHERE { ?x rdf:type ub:GraduateStudent . "
          "OPTIONAL { ?x ub:undergraduateDegreeFrom ?u } "
          "{ ?x ub:memberOf ?d } UNION { ?x ub:advisor ?p } "
          "FILTER (BOUND(?u) || !(?x = ?x)) }",
      Store());
}

TEST_F(SerializeTest, AggregatesRoundTrip) {
  const std::string prologue =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) + ">\n";
  CheckRoundTrip(prologue +
                     "SELECT ?d (COUNT(?x) AS ?n) (AVG(?a) AS ?avg) WHERE { "
                     "?x ub:memberOf ?d . ?x ub:age ?a } GROUP BY ?d",
                 Store());
  CheckRoundTrip(
      prologue + "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }", Store());
}

TEST_F(SerializeTest, AskAndLiteralsRoundTrip) {
  CheckRoundTrip("ASK { ?x <http://a> \"v\\\"quoted\\\"\"@en }", Store());
  CheckRoundTrip(
      "SELECT ?x WHERE { ?x <http://p> "
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer> }",
      Store());
}

TEST_F(SerializeTest, FilterPrecedenceSurvives) {
  // Parentheses in the output must preserve evaluation order.
  CheckRoundTrip(
      "SELECT ?x WHERE { ?x <http://age> ?a . "
      "FILTER (?a > 1 && ?a < 9 || ?a = 30) }",
      Store());
}

}  // namespace
}  // namespace rdfspark::sparql
