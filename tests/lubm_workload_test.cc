// The adapted LUBM Q1..Q14 workload as a conformance suite: every engine
// must return exactly the reference evaluator's answers on the
// RDFS-materialized dataset (the setting the surveyed papers evaluate in).

#include <gtest/gtest.h>

#include "rdf/generator.h"
#include "rdf/rdfs.h"
#include "rdf/store.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "systems/engine.h"

namespace rdfspark::systems {
namespace {

const rdf::TripleStore& MaterializedStore() {
  static rdf::TripleStore* store = [] {
    auto* s = new rdf::TripleStore();
    s->AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
    s->AddAll(rdf::LubmSchema());
    s->Dedupe();
    rdf::MaterializeRdfs(s);
    return s;
  }();
  return *store;
}

TEST(LubmWorkloadTest, FourteenQueriesParseAndHaveAnswers) {
  const rdf::TripleStore& store = MaterializedStore();
  sparql::ReferenceEvaluator reference(&store);
  auto queries = rdf::LubmBenchmarkQueries();
  ASSERT_EQ(queries.size(), 14u);
  int with_answers = 0;
  for (const auto& [name, text] : queries) {
    auto parsed = sparql::ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.status().ToString();
    auto result = reference.Evaluate(*parsed);
    ASSERT_TRUE(result.ok()) << name;
    if (result->num_rows() > 0) ++with_answers;
  }
  // The workload is only meaningful if most queries are non-empty.
  EXPECT_GE(with_answers, 12);
}

TEST(LubmWorkloadTest, SubsumptionQueriesNeedInference) {
  // Q6 (all Students) must be empty without materialization and non-empty
  // with it — the RDFS machinery is load-bearing for LUBM.
  rdf::TripleStore raw;
  raw.AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
  raw.Dedupe();
  sparql::ReferenceEvaluator raw_eval(&raw);
  auto q6 = sparql::ParseQuery(rdf::LubmBenchmarkQueries()[5].second);
  ASSERT_TRUE(q6.ok());
  EXPECT_EQ((*raw_eval.Evaluate(*q6)).num_rows(), 0u);

  sparql::ReferenceEvaluator mat_eval(&MaterializedStore());
  EXPECT_GT((*mat_eval.Evaluate(*q6)).num_rows(), 0u);
}

TEST(LubmWorkloadTest, AllEnginesMatchReferenceOnAllFourteen) {
  const rdf::TripleStore& store = MaterializedStore();
  sparql::ReferenceEvaluator reference(&store);
  spark::SparkContext sc(spark::ClusterConfig{});
  auto engines = MakeAllEngines(&sc);
  for (auto& engine : engines) {
    ASSERT_TRUE(engine->Load(store).ok()) << engine->traits().name;
  }
  for (const auto& [name, text] : rdf::LubmBenchmarkQueries()) {
    auto parsed = sparql::ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << name;
    auto expected = reference.Evaluate(*parsed);
    ASSERT_TRUE(expected.ok()) << name;
    auto expected_decoded = expected->Decode(store.dictionary());
    for (auto& engine : engines) {
      auto got = engine->Execute(*parsed);
      ASSERT_TRUE(got.ok()) << engine->traits().name << " / " << name << ": "
                            << got.status().ToString();
      EXPECT_EQ(got->Decode(store.dictionary()), expected_decoded)
          << engine->traits().name << " / " << name;
    }
  }
}

}  // namespace
}  // namespace rdfspark::systems
