#include <gtest/gtest.h>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "systems/haqwa.h"
#include "systems/s2rdf.h"
#include "systems/s2x.h"

namespace rdfspark::sparql {
namespace {

using rdf::Term;

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

TEST(AggregateParserTest, ParsesGroupByWithAggregates) {
  auto q = ParseQuery(
      "SELECT ?d (COUNT(?x) AS ?n) (AVG(?age) AS ?a) WHERE { ?x <http://p> "
      "?d . ?x <http://age> ?age } GROUP BY ?d");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->IsAggregate());
  EXPECT_EQ(q->select_vars, (std::vector<std::string>{"d"}));
  ASSERT_EQ(q->aggregates.size(), 2u);
  EXPECT_EQ(q->aggregates[0].op, AggregateOp::kCount);
  EXPECT_EQ(q->aggregates[0].var, "x");
  EXPECT_EQ(q->aggregates[0].alias, "n");
  EXPECT_EQ(q->aggregates[1].op, AggregateOp::kAvg);
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"d"}));
  EXPECT_EQ(q->EffectiveProjection(),
            (std::vector<std::string>{"d", "n", "a"}));
}

TEST(AggregateParserTest, ParsesCountStar) {
  auto q = ParseQuery(
      "SELECT (COUNT(*) AS ?total) WHERE { ?s ?p ?o }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggregates.size(), 1u);
  EXPECT_TRUE(q->aggregates[0].var.empty());
}

TEST(AggregateParserTest, ParsesAllOps) {
  auto q = ParseQuery(
      "SELECT (SUM(?v) AS ?s) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) "
      "WHERE { ?x <http://v> ?v }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggregates.size(), 3u);
  EXPECT_EQ(q->aggregates[0].op, AggregateOp::kSum);
  EXPECT_EQ(q->aggregates[1].op, AggregateOp::kMin);
  EXPECT_EQ(q->aggregates[2].op, AggregateOp::kMax);
}

TEST(AggregateParserTest, RejectsBadForms) {
  // Ungrouped plain variable.
  EXPECT_FALSE(ParseQuery("SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x "
                          "<http://p> ?y }")
                   .ok());
  // SUM(*) is invalid.
  EXPECT_FALSE(
      ParseQuery("SELECT (SUM(*) AS ?s) WHERE { ?x <http://p> ?y }").ok());
  // Missing AS alias.
  EXPECT_FALSE(
      ParseQuery("SELECT (COUNT(?x)) WHERE { ?x <http://p> ?y }").ok());
}

// ---------------------------------------------------------------------------
// Reference evaluation.
// ---------------------------------------------------------------------------

class AggregateEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](const char* who, const char* dept, int age) {
      store_.AddAll({{Term::Uri(std::string("http://") + who),
                      Term::Uri("http://dept"),
                      Term::Uri(std::string("http://") + dept)},
                     {Term::Uri(std::string("http://") + who),
                      Term::Uri("http://age"),
                      Term::Literal(std::to_string(age), rdf::kXsdInteger)}});
    };
    add("alice", "eng", 30);
    add("bob", "eng", 40);
    add("carol", "sales", 25);
  }

  BindingTable Eval(const std::string& text) {
    auto q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    ReferenceEvaluator eval(&store_);
    auto r = eval.Evaluate(*q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  rdf::TripleStore store_;
};

TEST_F(AggregateEvalTest, CountStarGlobal) {
  auto t = Eval("SELECT (COUNT(*) AS ?n) WHERE { ?x <http://dept> ?d }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Decode(store_.dictionary())[0].at("n"),
            "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST_F(AggregateEvalTest, GroupByDepartment) {
  auto t = Eval(
      "SELECT ?d (COUNT(?x) AS ?n) (AVG(?a) AS ?avg) WHERE { ?x "
      "<http://dept> ?d . ?x <http://age> ?a } GROUP BY ?d");
  ASSERT_EQ(t.num_rows(), 2u);
  auto rows = t.Decode(store_.dictionary());
  for (const auto& row : rows) {
    if (row.at("d") == "<http://eng>") {
      EXPECT_EQ(row.at("n"),
                "\"2\"^^<http://www.w3.org/2001/XMLSchema#integer>");
      EXPECT_EQ(row.at("avg"),
                "\"35\"^^<http://www.w3.org/2001/XMLSchema#double>");
    } else {
      EXPECT_EQ(row.at("n"),
                "\"1\"^^<http://www.w3.org/2001/XMLSchema#integer>");
    }
  }
}

TEST_F(AggregateEvalTest, MinMaxReturnOriginalTerms) {
  auto t = Eval(
      "SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE { ?x <http://age> ?a "
      "}");
  ASSERT_EQ(t.num_rows(), 1u);
  auto row = t.Decode(store_.dictionary())[0];
  EXPECT_EQ(row.at("lo"), "\"25\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(row.at("hi"), "\"40\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST_F(AggregateEvalTest, SumAndEmptyMatch) {
  auto t = Eval("SELECT (SUM(?a) AS ?s) WHERE { ?x <http://age> ?a }");
  EXPECT_EQ(t.Decode(store_.dictionary())[0].at("s"),
            "\"95\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  // COUNT over an empty match is 0 (single global group).
  auto empty =
      Eval("SELECT (COUNT(?x) AS ?n) WHERE { ?x <http://nothere> ?y }");
  ASSERT_EQ(empty.num_rows(), 1u);
  EXPECT_EQ(empty.Decode(store_.dictionary())[0].at("n"),
            "\"0\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST_F(AggregateEvalTest, OrderByAggregateAlias) {
  auto t = Eval(
      "SELECT ?d (COUNT(?x) AS ?n) WHERE { ?x <http://dept> ?d } "
      "GROUP BY ?d ORDER BY DESC(?n)");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(*t.ResolveTerm(t.rows()[0][0], store_.dictionary()),
            Term::Uri("http://eng"));
}

// ---------------------------------------------------------------------------
// Engines: BGP+ engines evaluate aggregates; BGP engines reject them.
// ---------------------------------------------------------------------------

TEST(AggregateEngineTest, BgpPlusEnginesAgreeWithReference) {
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
  store.Dedupe();
  const std::string query =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nSELECT ?d (COUNT(?x) AS ?n) WHERE { ?x ub:worksFor ?d } GROUP BY "
      "?d ORDER BY ?d";
  auto parsed = ParseQuery(query);
  ASSERT_TRUE(parsed.ok());

  ReferenceEvaluator reference(&store);
  auto expected = reference.Evaluate(*parsed);
  ASSERT_TRUE(expected.ok());
  EXPECT_GT(expected->num_rows(), 0u);

  spark::ClusterConfig cfg;
  spark::SparkContext sc(cfg);
  systems::S2rdfEngine s2rdf(&sc);
  ASSERT_TRUE(s2rdf.Load(store).ok());
  auto got = s2rdf.Execute(*parsed);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->Decode(store.dictionary()),
            expected->Decode(store.dictionary()));

  systems::S2xEngine s2x(&sc);
  ASSERT_TRUE(s2x.Load(store).ok());
  auto got2 = s2x.Execute(*parsed);
  ASSERT_TRUE(got2.ok()) << got2.status().ToString();
  EXPECT_EQ(got2->Decode(store.dictionary()),
            expected->Decode(store.dictionary()));
}

TEST(AggregateEngineTest, BgpOnlyEnginesReject) {
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
  store.Dedupe();
  spark::SparkContext sc(spark::ClusterConfig{});
  systems::HaqwaEngine haqwa(&sc);  // BGP+: accepts
  ASSERT_TRUE(haqwa.Load(store).ok());
  const std::string query =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nSELECT (COUNT(*) AS ?n) WHERE { ?x ub:worksFor ?d }";
  auto r = haqwa.ExecuteText(query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 1u);
}

}  // namespace
}  // namespace rdfspark::sparql
