// CONSTRUCT and DESCRIBE — the remaining two SPARQL output types of §II.B
// ("construction of new triples", "descriptions of resources") — through
// the reference evaluator and through every engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "sparql/serialize.h"
#include "systems/engine.h"

namespace rdfspark::sparql {
namespace {

using rdf::Term;

class ConstructDescribeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.AddAll({
        {Term::Uri("http://alice"), Term::Uri("http://worksFor"),
         Term::Uri("http://acme")},
        {Term::Uri("http://bob"), Term::Uri("http://worksFor"),
         Term::Uri("http://acme")},
        {Term::Uri("http://alice"), Term::Uri("http://knows"),
         Term::Uri("http://bob")},
        {Term::Uri("http://acme"), Term::Uri("http://located"),
         Term::Literal("Athens")},
    });
  }

  rdf::TripleStore store_;
};

TEST_F(ConstructDescribeTest, ParserAcceptsBothForms) {
  auto c = ParseQuery(
      "CONSTRUCT { ?x <http://colleagueOf> ?y } WHERE { ?x "
      "<http://worksFor> ?o . ?y <http://worksFor> ?o }");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->form, QueryForm::kConstruct);
  EXPECT_EQ(c->construct_template.size(), 1u);

  auto d = ParseQuery("DESCRIBE <http://acme>");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->form, QueryForm::kDescribe);

  auto dv = ParseQuery(
      "DESCRIBE ?x WHERE { ?x <http://worksFor> <http://acme> }");
  ASSERT_TRUE(dv.ok()) << dv.status().ToString();
  EXPECT_EQ(dv->describe_targets.size(), 1u);
}

TEST_F(ConstructDescribeTest, ParserRejectsBadForms) {
  EXPECT_FALSE(ParseQuery("CONSTRUCT { } WHERE { ?s ?p ?o }").ok());
  EXPECT_FALSE(ParseQuery("DESCRIBE").ok());
  // Variable DESCRIBE without a pattern is meaningless.
  EXPECT_FALSE(ParseQuery("DESCRIBE ?x").ok());
}

TEST_F(ConstructDescribeTest, ConstructBuildsNewTriples) {
  auto q = ParseQuery(
      "CONSTRUCT { ?x <http://colleagueOf> ?y } WHERE { ?x "
      "<http://worksFor> ?o . ?y <http://worksFor> ?o }");
  ASSERT_TRUE(q.ok());
  ReferenceEvaluator eval(&store_);
  auto triples = eval.EvaluateConstruct(*q);
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  // alice-alice, alice-bob, bob-alice, bob-bob.
  EXPECT_EQ(triples->size(), 4u);
  for (const auto& t : *triples) {
    EXPECT_EQ(t.predicate.lexical(), "http://colleagueOf");
  }
}

TEST_F(ConstructDescribeTest, ConstructSkipsIllFormedInstantiations) {
  // ?lit is a literal: it cannot become a subject.
  auto q = ParseQuery(
      "CONSTRUCT { ?lit <http://p> ?x } WHERE { ?x <http://located> ?lit "
      "}");
  ASSERT_TRUE(q.ok());
  ReferenceEvaluator eval(&store_);
  auto triples = eval.EvaluateConstruct(*q);
  ASSERT_TRUE(triples.ok());
  EXPECT_TRUE(triples->empty());
}

TEST_F(ConstructDescribeTest, ConstructDeduplicates) {
  auto q = ParseQuery(
      "CONSTRUCT { ?o <http://hasEmployee> ?x } WHERE { ?x "
      "<http://worksFor> ?o . ?y <http://worksFor> ?o }");
  ASSERT_TRUE(q.ok());
  ReferenceEvaluator eval(&store_);
  auto triples = eval.EvaluateConstruct(*q);
  ASSERT_TRUE(triples.ok());
  // 4 solution rows but only 2 distinct (acme, hasEmployee, {alice,bob}).
  EXPECT_EQ(triples->size(), 2u);
}

TEST_F(ConstructDescribeTest, DescribeConstantResource) {
  auto q = ParseQuery("DESCRIBE <http://acme>");
  ASSERT_TRUE(q.ok());
  ReferenceEvaluator eval(&store_);
  auto triples = eval.EvaluateDescribe(*q);
  ASSERT_TRUE(triples.ok());
  ASSERT_EQ(triples->size(), 1u);  // acme located "Athens"
  EXPECT_EQ((*triples)[0].predicate.lexical(), "http://located");
}

TEST_F(ConstructDescribeTest, DescribeVariableTargets) {
  auto q = ParseQuery(
      "DESCRIBE ?x WHERE { ?x <http://worksFor> <http://acme> }");
  ASSERT_TRUE(q.ok());
  ReferenceEvaluator eval(&store_);
  auto triples = eval.EvaluateDescribe(*q);
  ASSERT_TRUE(triples.ok());
  // alice: worksFor + knows; bob: worksFor => 3 triples.
  EXPECT_EQ(triples->size(), 3u);
}

TEST_F(ConstructDescribeTest, SelectPathRejectsTripleForms) {
  auto q = ParseQuery("DESCRIBE <http://acme>");
  ASSERT_TRUE(q.ok());
  ReferenceEvaluator eval(&store_);
  EXPECT_FALSE(eval.Evaluate(*q).ok());
}

TEST_F(ConstructDescribeTest, SerializerRoundTripsBothForms) {
  for (const char* text :
       {"CONSTRUCT { ?x <http://colleagueOf> ?y } WHERE { ?x "
        "<http://worksFor> ?o . ?y <http://worksFor> ?o }",
        "DESCRIBE <http://acme>",
        "DESCRIBE ?x WHERE { ?x <http://worksFor> <http://acme> }"}) {
    auto q1 = ParseQuery(text);
    ASSERT_TRUE(q1.ok()) << text;
    std::string s1 = ToSparql(*q1);
    auto q2 = ParseQuery(s1);
    ASSERT_TRUE(q2.ok()) << s1;
    EXPECT_EQ(s1, ToSparql(*q2));
  }
}

TEST(ConstructDescribeEngineTest, AllEnginesMatchReference) {
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
  store.Dedupe();
  const std::string construct_text =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nCONSTRUCT { ?p ub:advises ?x } WHERE { ?x ub:advisor ?p }";
  const std::string describe_text =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nDESCRIBE ?d WHERE { ?d ub:subOrganizationOf ?u }";
  auto construct_q = sparql::ParseQuery(construct_text);
  auto describe_q = sparql::ParseQuery(describe_text);
  ASSERT_TRUE(construct_q.ok() && describe_q.ok());

  ReferenceEvaluator reference(&store);
  auto expected_c = reference.EvaluateConstruct(*construct_q);
  auto expected_d = reference.EvaluateDescribe(*describe_q);
  ASSERT_TRUE(expected_c.ok() && expected_d.ok());
  EXPECT_GT(expected_c->size(), 0u);
  EXPECT_GT(expected_d->size(), 0u);
  auto canonical = [](const std::vector<rdf::Triple>& ts) {
    std::set<std::string> out;
    for (const auto& t : ts) out.insert(t.ToNTriples());
    return out;
  };
  auto want_c = canonical(*expected_c);
  auto want_d = canonical(*expected_d);

  spark::SparkContext sc(spark::ClusterConfig{});
  for (auto& engine : systems::MakeAllEngines(&sc)) {
    ASSERT_TRUE(engine->Load(store).ok());
    auto got_c = systems::ExecuteConstruct(engine.get(), store, *construct_q);
    ASSERT_TRUE(got_c.ok()) << engine->traits().name << ": "
                            << got_c.status().ToString();
    EXPECT_EQ(canonical(*got_c), want_c) << engine->traits().name;
    auto got_d = systems::ExecuteDescribe(engine.get(), store, *describe_q);
    ASSERT_TRUE(got_d.ok()) << engine->traits().name;
    EXPECT_EQ(canonical(*got_d), want_d) << engine->traits().name;
  }
}

}  // namespace
}  // namespace rdfspark::sparql
