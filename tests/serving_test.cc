// Serving-layer tests: the concurrent multi-tenant QueryServer must produce
// binding tables bit-identical to the serial reference server for every
// engine variant and query shape, account plan-cache hits/misses/bypasses
// exactly, reject inadmissible queries before planning, and never serve a
// stale plan across a dataset reload. The concurrent cases double as the
// TSan targets for the serving path (see scripts/tier1.sh).

#include "serving/query_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "rdf/generator.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "systems/engine.h"

namespace rdfspark::serving {
namespace {

/// One small LUBM university — large enough that every query shape has
/// rows, small enough that 12 engines load it quickly.
rdf::TripleStore SmallLubm(uint64_t seed = 42, int departments = 3) {
  rdf::LubmConfig cfg;
  cfg.num_universities = 1;
  cfg.departments_per_university = departments;
  cfg.professors_per_department = 4;
  cfg.students_per_department = 20;
  cfg.courses_per_department = 5;
  cfg.seed = seed;
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.Dedupe();
  return store;
}

QueryServer::Options QuietOptions(int workers) {
  QueryServer::Options options;
  options.worker_threads = workers;
  // The admission/verification gates are covered by their own tests; keep
  // the result-identity tests independent of the environment.
  options.verify_queries = false;
  options.verify_plans = false;
  return options;
}

/// Order-insensitive canonical outcome of one request.
struct Outcome {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::vector<std::map<std::string, std::string>> rows;

  bool operator==(const Outcome&) const = default;
};

Outcome Canon(const RequestResult& result, const rdf::Dictionary& dict) {
  Outcome out;
  out.ok = result.status.ok();
  out.code = result.status.code();
  if (out.ok) {
    out.rows = result.table.Decode(dict);
    std::sort(out.rows.begin(), out.rows.end());
  }
  return out;
}

TEST(QueryServerTest, ConcurrentResultsMatchSerialReference) {
  rdf::TripleStore store = SmallLubm();
  std::vector<std::pair<rdf::QueryShape, std::string>> mix =
      rdf::LubmQueryMix();

  // Serial reference: a one-worker server over its own cluster.
  spark::SparkContext serial_sc;
  QueryServer serial(&serial_sc, QuietOptions(1));
  ASSERT_TRUE(serial.AttachDataset(store).ok());
  int ref_session = serial.OpenSession("ref");
  std::map<std::pair<std::string, std::string>, Outcome> reference;
  for (const auto& variant : serial.variant_names()) {
    for (const auto& [shape, text] : mix) {
      reference[{variant, text}] =
          Canon(serial.Execute(ref_session, variant, text),
                store.dictionary());
    }
  }
  // The mix must contain shapes every variant answers (engines whose
  // fragment excludes FILTER return Unsupported for the complex shape;
  // both servers must agree on that too).
  size_t ok_count = 0;
  for (const auto& [key, outcome] : reference) ok_count += outcome.ok;
  ASSERT_GT(ok_count, reference.size() / 2);

  // Concurrent server: 8 workers, 4 tenants, every tenant submits the
  // whole variant x shape matrix at once.
  spark::SparkContext sc;
  QueryServer server(&sc, QuietOptions(8));
  ASSERT_TRUE(server.AttachDataset(store).ok());
  constexpr int kTenants = 4;
  std::vector<int> sessions;
  for (int t = 0; t < kTenants; ++t) {
    sessions.push_back(server.OpenSession("tenant" + std::to_string(t)));
  }
  struct Pending {
    std::string variant;
    std::string text;
    std::shared_ptr<QueryServer::Ticket> ticket;
  };
  std::vector<Pending> pending;
  for (int t = 0; t < kTenants; ++t) {
    for (const auto& variant : server.variant_names()) {
      for (const auto& [shape, text] : mix) {
        pending.push_back(
            {variant, text,
             server.Submit(sessions[static_cast<size_t>(t)], variant, text)});
      }
    }
  }
  for (auto& p : pending) {
    Outcome got = Canon(p.ticket->Wait(), store.dictionary());
    const Outcome& want = reference.at({p.variant, p.text});
    EXPECT_EQ(got, want) << p.variant << " diverged from the serial "
                         << "reference on: " << p.text;
  }

  // Every tenant's ledger adds up.
  for (int t = 0; t < kTenants; ++t) {
    TenantStats stats = server.tenant_stats("tenant" + std::to_string(t));
    EXPECT_EQ(stats.submitted,
              server.variant_names().size() * mix.size());
    EXPECT_EQ(stats.submitted,
              stats.completed + stats.rejected + stats.failed);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.latency_ns.count(), stats.submitted);
  }
}

TEST(QueryServerTest, PlanCacheHitMissAccounting) {
  rdf::TripleStore store = SmallLubm();
  spark::SparkContext sc;
  QueryServer server(&sc, QuietOptions(2));
  ASSERT_TRUE(server.AttachDataset(store).ok());
  int session = server.OpenSession("acct");
  std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3);

  RequestResult first = server.Execute(session, "SPARQLGX", query);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  PlanCacheStats stats = server.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);

  RequestResult second = server.Execute(session, "SPARQLGX", query);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);

  // Text that differs only in layout normalizes onto the same entry.
  std::string spaced;
  for (char c : query) {
    spaced += c;
    if (c == ' ') spaced += ' ';
  }
  RequestResult third = server.Execute(session, "SPARQLGX", spaced);
  ASSERT_TRUE(third.status.ok());
  EXPECT_TRUE(third.cache_hit);

  stats = server.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);

  // A different variant plans its own entry: the key includes the engine.
  RequestResult other = server.Execute(session, "HAQWA", query);
  ASSERT_TRUE(other.status.ok());
  EXPECT_FALSE(other.cache_hit);
  stats = server.plan_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);

  // Cached and uncached executions return identical tables.
  EXPECT_EQ(Canon(first, store.dictionary()),
            Canon(second, store.dictionary()));
  EXPECT_EQ(Canon(first, store.dictionary()),
            Canon(third, store.dictionary()));

  TenantStats tenant = server.tenant_stats("acct");
  EXPECT_EQ(tenant.cache_hits, 2u);
}

TEST(QueryServerTest, ReloadNeverServesStalePlan) {
  // The second dataset is structurally different (fewer departments), so
  // the star query provably has a different answer set — LUBM's entity
  // layout is deterministic and a seed change alone would not move it.
  rdf::TripleStore first = SmallLubm(/*seed=*/42, /*departments=*/3);
  rdf::TripleStore second = SmallLubm(/*seed=*/7, /*departments=*/2);
  std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3);

  spark::SparkContext sc;
  QueryServer server(&sc, QuietOptions(2));
  ASSERT_TRUE(server.AttachDataset(first).ok());
  uint64_t epoch_before = server.dataset_epoch();
  int session = server.OpenSession("reload");

  // Warm the cache against the first dataset.
  RequestResult warm = server.Execute(session, "SPARQLGX", query);
  ASSERT_TRUE(warm.status.ok());
  ASSERT_TRUE(server.Execute(session, "SPARQLGX", query).cache_hit);

  // Hot-swap the dataset: epoch bumps, cached plans die.
  ASSERT_TRUE(server.AttachDataset(second).ok());
  EXPECT_EQ(server.dataset_epoch(), epoch_before + 1);
  PlanCacheStats stats = server.plan_cache_stats();
  EXPECT_GE(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);

  // The same text re-plans against the new dataset...
  RequestResult fresh = server.Execute(session, "SPARQLGX", query);
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_FALSE(fresh.cache_hit);

  // ...and its rows match an engine loaded with the new dataset only —
  // the regression a stale plan (old dictionary ids) would break.
  spark::SparkContext ref_sc;
  std::unique_ptr<systems::BgpEngineBase> ref;
  for (auto& factory : systems::AllEngineVariantFactories()) {
    if (factory.name == "SPARQLGX") ref = factory.make(&ref_sc);
  }
  ASSERT_NE(ref, nullptr);
  ASSERT_TRUE(ref->Load(second).ok());
  auto expected = ref->ExecuteText(query);
  ASSERT_TRUE(expected.ok());
  auto expected_rows = expected->Decode(second.dictionary());
  std::sort(expected_rows.begin(), expected_rows.end());
  EXPECT_EQ(Canon(fresh, second.dictionary()).rows, expected_rows);
  // And differ from the first dataset's answer (different seed, different
  // individuals), so the comparison above is not vacuous.
  EXPECT_NE(Canon(fresh, second.dictionary()).rows,
            Canon(warm, first.dictionary()).rows);
}

TEST(QueryServerTest, AdmissionRejectsBeforePlanning) {
  rdf::TripleStore store = SmallLubm();
  spark::SparkContext sc;
  QueryServer::Options options = QuietOptions(2);
  options.verify_queries = true;  // The admission gate under test.
  QueryServer server(&sc, options);
  ASSERT_TRUE(server.AttachDataset(store).ok());
  int session = server.OpenSession("gate");

  // QA001: projected variable that no pattern binds — ERROR, rejected.
  RequestResult bad =
      server.Execute(session, "HAQWA", "SELECT ?x WHERE { ?s ?p ?o }");
  EXPECT_FALSE(bad.status.ok());
  EXPECT_TRUE(bad.rejected);
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);

  // Unparseable text is rejected too (never reaches an engine).
  RequestResult garbage = server.Execute(session, "HAQWA", "NOT SPARQL AT");
  EXPECT_FALSE(garbage.status.ok());
  EXPECT_TRUE(garbage.rejected);

  // Admissible queries still flow.
  RequestResult good = server.Execute(
      session, "HAQWA", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3));
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();

  TenantStats stats = server.tenant_stats("gate");
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.completed, 1u);
  // Rejected requests never planned anything: no cache traffic for them.
  PlanCacheStats cache = server.plan_cache_stats();
  EXPECT_EQ(cache.hits + cache.misses + cache.bypasses, 1u);
}

TEST(QueryServerTest, UnknownVariantAndSessionAreRejected) {
  rdf::TripleStore store = SmallLubm();
  spark::SparkContext sc;
  QueryServer server(&sc, QuietOptions(1));
  ASSERT_TRUE(server.AttachDataset(store).ok());
  int session = server.OpenSession("edge");

  RequestResult no_engine =
      server.Execute(session, "NoSuchEngine", "SELECT ?s WHERE { ?s ?p ?o }");
  EXPECT_FALSE(no_engine.status.ok());
  EXPECT_TRUE(no_engine.rejected);

  RequestResult no_session =
      server.Execute(999, "HAQWA", "SELECT ?s WHERE { ?s ?p ?o }");
  EXPECT_FALSE(no_session.status.ok());
  EXPECT_EQ(no_session.status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryServerTest, FrozenDictionaryServesUnknownConstantsConcurrently) {
  rdf::TripleStore store = SmallLubm();
  spark::SparkContext sc;
  QueryServer server(&sc, QuietOptions(8));
  ASSERT_TRUE(server.AttachDataset(store).ok());
  // AttachDataset froze the dictionary: query paths are read-only now.
  EXPECT_TRUE(store.dictionary().frozen());
  size_t terms_before = store.dictionary().size();

  // A constant no dataset term matches must resolve to the empty table —
  // via const Lookup, never via Encode — on every variant, concurrently.
  std::string unknown =
      "SELECT ?s WHERE { ?s <http://example.org/noSuchPredicate> ?o }";
  constexpr int kTenants = 4;
  std::vector<std::shared_ptr<QueryServer::Ticket>> tickets;
  for (int t = 0; t < kTenants; ++t) {
    int session = server.OpenSession("frozen" + std::to_string(t));
    for (const auto& variant : server.variant_names()) {
      tickets.push_back(server.Submit(session, variant, unknown));
    }
  }
  for (auto& ticket : tickets) {
    const RequestResult& result = ticket->Wait();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.table.num_rows(), 0u);
  }
  // No query-time path grew the dictionary.
  EXPECT_EQ(store.dictionary().size(), terms_before);
}

TEST(QueryServerTest, S2xPlansBypassTheCache) {
  rdf::TripleStore store = SmallLubm();
  spark::SparkContext sc;
  QueryServer::Options options = QuietOptions(2);
  options.variants = {"S2X"};
  QueryServer server(&sc, options);
  ASSERT_TRUE(server.AttachDataset(store).ok());
  ASSERT_EQ(server.variant_names(), std::vector<std::string>{"S2X"});
  int session = server.OpenSession("s2x");
  std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3);

  // S2X plans are single-use (the matching fixpoint's state is consumed by
  // the first execution), so every request must bypass — and still return
  // the same rows each time.
  Outcome first;
  for (int i = 0; i < 3; ++i) {
    RequestResult result = server.Execute(session, "S2X", query);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_FALSE(result.cache_hit);
    EXPECT_TRUE(result.cache_bypass);
    Outcome outcome = Canon(result, store.dictionary());
    if (i == 0) {
      first = outcome;
      EXPECT_FALSE(first.rows.empty());
    } else {
      EXPECT_EQ(outcome, first);
    }
  }
  PlanCacheStats stats = server.plan_cache_stats();
  EXPECT_EQ(stats.bypasses, 3u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(PlanCacheTest, LruEvictionAtCapacity) {
  PlanCache cache(/*capacity=*/2);
  auto plan = [] {
    return std::shared_ptr<const systems::plan::PlanNode>(
        new systems::plan::PlanNode());
  };
  cache.Put("e", "q1", 1, plan());
  cache.Put("e", "q2", 1, plan());
  EXPECT_NE(cache.Get("e", "q1", 1), nullptr);  // q1 now most recent.
  cache.Put("e", "q3", 1, plan());              // Evicts q2.
  EXPECT_EQ(cache.Get("e", "q2", 1), nullptr);
  EXPECT_NE(cache.Get("e", "q1", 1), nullptr);
  EXPECT_NE(cache.Get("e", "q3", 1), nullptr);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

// ---- Tier C: the server-owned happens-before window. ---------------------

QueryServer::Options RaceCheckedOptions(int workers) {
  QueryServer::Options options = QuietOptions(workers);
  options.check_races = true;
  return options;
}

std::string RenderFindings(std::vector<systems::plan::Diagnostic> findings) {
  return systems::plan::FormatDiagnostics(findings);
}

TEST(QueryServerRaceTest, HotSwapRacingConcurrentFillsStaysSilent) {
  // AttachDataset hot-swaps the dataset while earlier requests are still
  // being admitted and the plan cache is filling concurrently. The
  // dataset_mu_ writer lock + epoch bump is the declared synchronization;
  // the HB checker must find the whole trace ordered.
  rdf::TripleStore first = SmallLubm(/*seed=*/42, /*departments=*/3);
  rdf::TripleStore second = SmallLubm(/*seed=*/7, /*departments=*/2);
  std::vector<std::pair<rdf::QueryShape, std::string>> mix =
      rdf::LubmQueryMix();

  spark::SparkContext sc;
  QueryServer server(&sc, RaceCheckedOptions(/*workers=*/4));
  ASSERT_TRUE(server.AttachDataset(first).ok());
  int session_a = server.OpenSession("swap-a");
  int session_b = server.OpenSession("swap-b");

  std::vector<std::shared_ptr<QueryServer::Ticket>> tickets;
  auto submit_matrix = [&](int session) {
    for (const auto& variant : server.variant_names()) {
      for (const auto& [shape, text] : mix) {
        tickets.push_back(server.Submit(session, variant, text));
      }
    }
  };
  // Burst one tenant's matrix, hot-swap mid-flight (AttachDataset drains
  // in-flight work under the writer lock), then burst the other tenant
  // against the new epoch so the cache refills concurrently.
  submit_matrix(session_a);
  ASSERT_TRUE(server.AttachDataset(second).ok());
  uint64_t epoch_after_swap = server.dataset_epoch();
  EXPECT_EQ(epoch_after_swap, 2u);
  submit_matrix(session_b);
  for (auto& ticket : tickets) ticket->Wait();

  auto findings = server.race_findings();
  EXPECT_TRUE(findings.empty()) << RenderFindings(findings);
  server.Shutdown();
}

TEST(QueryServerRaceTest, FrozenDictionarySharedAcrossWorkersStaysSilent) {
  // Every worker decodes terms through the one frozen dictionary while
  // executing concurrently; Freeze's publication edge must order all of
  // those reads after the load-time encodes, so the checker stays silent.
  rdf::TripleStore store = SmallLubm();
  std::vector<std::pair<rdf::QueryShape, std::string>> mix =
      rdf::LubmQueryMix();

  spark::SparkContext sc;
  QueryServer server(&sc, RaceCheckedOptions(/*workers=*/8));
  ASSERT_TRUE(server.AttachDataset(store).ok());
  int session = server.OpenSession("dict");

  std::vector<std::shared_ptr<QueryServer::Ticket>> tickets;
  for (int round = 0; round < 2; ++round) {
    for (const auto& variant : server.variant_names()) {
      for (const auto& [shape, text] : mix) {
        tickets.push_back(server.Submit(session, variant, text));
      }
    }
  }
  size_t decoded_rows = 0;
  for (auto& ticket : tickets) {
    const RequestResult& result = ticket->Wait();
    if (result.status.ok()) {
      decoded_rows += result.table.Decode(store.dictionary()).size();
    }
  }
  EXPECT_GT(decoded_rows, 0u);

  auto findings = server.race_findings();
  EXPECT_TRUE(findings.empty()) << RenderFindings(findings);
  server.Shutdown();
}

TEST(QueryServerRaceTest, RaceGateRejectionIsRejectedNotFailed) {
  // Inject a genuine Tier C ERROR into the server's open happens-before
  // window: two writes to one accumulator object from two unconnected
  // roots are logically concurrent, so the final value is
  // schedule-dependent (DT001). The next request to finish observes the
  // raised ERROR count and must be *rejected* by the race gate — counted
  // in rejected (with race_rejected as its subset), never in failed, so
  // the tenant ledger keeps balancing.
  rdf::TripleStore store = SmallLubm();
  spark::SparkContext sc;
  QueryServer server(&sc, RaceCheckedOptions(/*workers=*/1));
  ASSERT_TRUE(server.AttachDataset(store).ok());
  int session = server.OpenSession("racegate");
  std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3);

  // Before the injection the workload is clean.
  RequestResult clean = server.Execute(session, "SPARQLGX", query);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();

  auto& recorder = spark::hb::Recorder::Get();
  int root_a = recorder.BeginRoot();
  recorder.Record(spark::hb::AccumulatorObject(987654),
                  spark::hb::Access::kWrite, "serving_test injected write A");
  recorder.EndRoot(root_a);
  int root_b = recorder.BeginRoot();
  recorder.Record(spark::hb::AccumulatorObject(987654),
                  spark::hb::Access::kWrite, "serving_test injected write B");
  recorder.EndRoot(root_b);

  // The next finished request surfaces the new finding and is withheld.
  RequestResult gated = server.Execute(session, "SPARQLGX", query);
  EXPECT_FALSE(gated.status.ok());
  EXPECT_EQ(gated.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(gated.rejected);
  EXPECT_TRUE(gated.race_rejected);
  EXPECT_EQ(gated.table.num_rows(), 0u);

  // The high-water mark absorbed the finding: later requests flow again.
  RequestResult after = server.Execute(session, "SPARQLGX", query);
  EXPECT_TRUE(after.status.ok()) << after.status.ToString();

  TenantStats stats = server.tenant_stats("racegate");
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.race_rejected, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected + stats.failed);

  // The telemetry event log records the rejection as its own typed kind.
  ASSERT_NE(server.telemetry(), nullptr);
  EXPECT_NE(server.telemetry()->EventsJson().find("race_gate_reject"),
            std::string::npos);
  server.Shutdown();
}

TEST(PlanCacheTest, EpochIsPartOfTheKey) {
  PlanCache cache(8);
  auto plan = std::shared_ptr<const systems::plan::PlanNode>(
      new systems::plan::PlanNode());
  cache.Put("e", "q", 1, plan);
  EXPECT_NE(cache.Get("e", "q", 1), nullptr);
  EXPECT_EQ(cache.Get("e", "q", 2), nullptr);  // New epoch never matches.
  cache.InvalidateExcept(2);
  EXPECT_EQ(cache.Get("e", "q", 1), nullptr);  // Old entry is gone too.
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

// ---- Tier D: byte-budgeted cache eviction and the admission gate. --------

TEST(PlanCacheTest, ByteBudgetDrivesEviction) {
  PlanCache cache(/*capacity=*/16, /*byte_budget=*/1000);
  auto plan = [] {
    return std::shared_ptr<const systems::plan::PlanNode>(
        new systems::plan::PlanNode());
  };
  cache.Put("e", "q1", 1, plan(), 400);
  cache.Put("e", "q2", 1, plan(), 400);
  EXPECT_EQ(cache.stats().resident_bytes, 800u);
  cache.Put("e", "q3", 1, plan(), 400);  // 1200 > 1000: q1 evicted.
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(cache.Get("e", "q1", 1), nullptr);
  EXPECT_NE(cache.Get("e", "q2", 1), nullptr);
  EXPECT_NE(cache.Get("e", "q3", 1), nullptr);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.resident_bytes, 800u);
  EXPECT_EQ(stats.evicted_bytes, 400u);
}

TEST(PlanCacheTest, NewestEntrySurvivesAnOverBudgetEnvelope) {
  // One plan whose envelope alone exceeds the budget still caches: the
  // most recent entry is never evicted, so a hot over-budget query does
  // not thrash the cache it needs.
  PlanCache cache(/*capacity=*/16, /*byte_budget=*/1000);
  auto plan = [] {
    return std::shared_ptr<const systems::plan::PlanNode>(
        new systems::plan::PlanNode());
  };
  cache.Put("e", "small", 1, plan(), 100);
  cache.Put("e", "huge", 1, plan(), 5000);  // Evicts small, keeps itself.
  PlanCacheStats stats = cache.stats();
  EXPECT_NE(cache.Get("e", "huge", 1), nullptr);
  EXPECT_EQ(cache.Get("e", "small", 1), nullptr);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_bytes, 5000u);
}

TEST(PlanCacheTest, UnboundedPlansChargeNothing) {
  PlanCache cache(/*capacity=*/16, /*byte_budget=*/1000);
  auto plan = std::shared_ptr<const systems::plan::PlanNode>(
      new systems::plan::PlanNode());
  cache.Put("e", "q", 1, plan, /*envelope_bytes=*/0);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(QueryServerBudgetTest, GateRejectsAgainstTheQuerysOwnEnvelope) {
  rdf::TripleStore store = SmallLubm();
  const std::string variant = "Hybrid_SparkSQL_naive";
  const std::string text = rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3);

  // Reference run with the gate off: learn the plan's static envelope.
  uint64_t envelope = 0;
  {
    spark::SparkContext sc;
    QueryServer::Options options = QuietOptions(1);
    options.memory_budget_bytes = 0;
    QueryServer server(&sc, options);
    ASSERT_TRUE(server.AttachDataset(store).ok());
    int session = server.OpenSession("probe");
    RequestResult result = server.Execute(session, variant, text);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    envelope = result.envelope_bytes;
    ASSERT_GT(envelope, 0u);  // naive SparkSQL plans are bounded.
  }

  // One byte under the envelope: rejected before a single operator runs.
  {
    spark::SparkContext sc;
    QueryServer::Options options = QuietOptions(1);
    options.memory_budget_bytes = envelope - 1;
    QueryServer server(&sc, options);
    ASSERT_TRUE(server.AttachDataset(store).ok());
    int session = server.OpenSession("tight");
    RequestResult result = server.Execute(session, variant, text);
    EXPECT_FALSE(result.status.ok());
    EXPECT_TRUE(result.rejected);
    EXPECT_TRUE(result.budget_rejected);
    EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(result.envelope_bytes, envelope);

    // The plan was still cached (valid for other budgets); a retry is a
    // cache hit and the gate rejects it again, deterministically.
    RequestResult retry = server.Execute(session, variant, text);
    EXPECT_TRUE(retry.budget_rejected);
    PlanCacheStats cache = server.plan_cache_stats();
    EXPECT_EQ(cache.misses, 1u);
    EXPECT_EQ(cache.hits, 1u);

    TenantStats stats = server.tenant_stats("tight");
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.rejected, 2u);
    EXPECT_EQ(stats.budget_rejected, 2u);
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_EQ(stats.failed, 0u);
  }

  // Budget exactly at the envelope: admitted.
  {
    spark::SparkContext sc;
    QueryServer::Options options = QuietOptions(1);
    options.memory_budget_bytes = envelope;
    QueryServer server(&sc, options);
    ASSERT_TRUE(server.AttachDataset(store).ok());
    int session = server.OpenSession("fits");
    RequestResult result = server.Execute(session, variant, text);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_FALSE(result.budget_rejected);
    TenantStats stats = server.tenant_stats("fits");
    EXPECT_EQ(stats.budget_rejected, 0u);
    EXPECT_EQ(stats.completed, 1u);
  }
}

TEST(QueryServerBudgetTest, ConcurrentRejectsMatchSerialReference) {
  // Budget decisions depend only on the plan's static envelope, never on
  // scheduling: an 8-worker server must reject exactly the requests a
  // 1-worker server rejects, and every tenant ledger must still add up
  // with budget_rejected a subset of rejected.
  rdf::TripleStore store = SmallLubm();
  std::vector<std::pair<rdf::QueryShape, std::string>> mix =
      rdf::LubmQueryMix();
  constexpr uint64_t kBudget = 200'000;

  std::map<std::pair<std::string, std::string>, bool> reference;
  {
    spark::SparkContext sc;
    QueryServer::Options options = QuietOptions(1);
    options.memory_budget_bytes = kBudget;
    QueryServer serial(&sc, options);
    ASSERT_TRUE(serial.AttachDataset(store).ok());
    int session = serial.OpenSession("ref");
    for (const auto& variant : serial.variant_names()) {
      for (const auto& [shape, text] : mix) {
        reference[{variant, text}] =
            serial.Execute(session, variant, text).budget_rejected;
      }
    }
  }
  size_t ref_rejects = 0;
  for (const auto& [key, rejected] : reference) ref_rejects += rejected;
  ASSERT_GT(ref_rejects, 0u) << "budget too loose to exercise the gate";
  ASSERT_LT(ref_rejects, reference.size()) << "budget rejects everything";

  spark::SparkContext sc;
  QueryServer::Options options = QuietOptions(8);
  options.memory_budget_bytes = kBudget;
  QueryServer server(&sc, options);
  ASSERT_TRUE(server.AttachDataset(store).ok());
  int session = server.OpenSession("load");
  struct Pending {
    std::string variant;
    std::string text;
    std::shared_ptr<QueryServer::Ticket> ticket;
  };
  std::vector<Pending> pending;
  for (const auto& variant : server.variant_names()) {
    for (const auto& [shape, text] : mix) {
      pending.push_back({variant, text, server.Submit(session, variant, text)});
    }
  }
  for (auto& p : pending) {
    RequestResult result = p.ticket->Wait();
    EXPECT_EQ(result.budget_rejected, reference.at({p.variant, p.text}))
        << p.variant << " budget decision diverged on: " << p.text;
    if (result.budget_rejected) {
      EXPECT_TRUE(result.rejected);
      EXPECT_FALSE(result.status.ok());
    }
  }
  TenantStats stats = server.tenant_stats("load");
  EXPECT_EQ(stats.submitted, pending.size());
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected + stats.failed);
  EXPECT_EQ(stats.budget_rejected, ref_rejects);
  EXPECT_LE(stats.budget_rejected, stats.rejected);
}

}  // namespace
}  // namespace rdfspark::serving
