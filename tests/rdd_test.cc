#include "spark/rdd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

namespace rdfspark::spark {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

std::vector<int> Ints(int n) {
  std::vector<int> v(n);
  for (int i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(RddTest, ParallelizeSplitsEvenly) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(100), 8);
  EXPECT_EQ(rdd.num_partitions(), 8);
  EXPECT_EQ(rdd.Count(), 100u);
}

TEST(RddTest, CollectPreservesOrderWithinPartitions) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(10), 2);
  auto got = rdd.Collect();
  EXPECT_EQ(got, Ints(10));
}

TEST(RddTest, MapAndFilter) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(10), 4);
  auto even_squares = rdd.Filter([](const int& x) { return x % 2 == 0; })
                          .Map([](const int& x) { return x * x; })
                          .Collect();
  EXPECT_EQ(even_squares, (std::vector<int>{0, 4, 16, 36, 64}));
}

TEST(RddTest, FlatMapExpands) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, std::vector<int>{1, 2, 3}, 2);
  auto out = rdd.FlatMap([](const int& x) {
                   return std::vector<int>(static_cast<size_t>(x), x);
                 })
                 .Collect();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

TEST(RddTest, UnionConcatenates) {
  SparkContext sc(SmallCluster());
  auto a = Parallelize(&sc, std::vector<int>{1, 2}, 2);
  auto b = Parallelize(&sc, std::vector<int>{3, 4}, 2);
  auto u = a.Union(b);
  EXPECT_EQ(u.num_partitions(), 4);
  EXPECT_EQ(u.Count(), 4u);
}

TEST(RddTest, DistinctRemovesDuplicates) {
  SparkContext sc(SmallCluster());
  auto rdd =
      Parallelize(&sc, std::vector<int>{1, 1, 2, 2, 3, 3, 3, 4}, 4).Distinct();
  auto got = rdd.Collect();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
}

TEST(RddTest, DistinctOnStringsUsesValueHash) {
  SparkContext sc(SmallCluster());
  std::vector<std::string> data{"a", "b", "a", "c", "b"};
  auto got = Parallelize(&sc, data, 3).Distinct().Collect();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(RddTest, SortByAscendingAndDescending) {
  SparkContext sc(SmallCluster());
  std::vector<int> data{5, 3, 9, 1, 7, 2, 8, 0, 6, 4};
  auto asc = Parallelize(&sc, data, 4)
                 .SortBy([](const int& x) { return x; })
                 .Collect();
  EXPECT_EQ(asc, Ints(10));
  auto desc = Parallelize(&sc, data, 4)
                  .SortBy([](const int& x) { return x; }, /*ascending=*/false)
                  .Collect();
  auto want = Ints(10);
  std::reverse(want.begin(), want.end());
  EXPECT_EQ(desc, want);
}

TEST(RddTest, SampleIsDeterministicAndApproximate) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(2000), 8);
  auto s1 = rdd.Sample(0.25, 42).Collect();
  auto s2 = rdd.Sample(0.25, 42).Collect();
  EXPECT_EQ(s1, s2);
  EXPECT_GT(s1.size(), 350u);
  EXPECT_LT(s1.size(), 650u);
}

TEST(RddTest, TakeStopsEarly) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(100), 10);
  auto got = rdd.Take(5);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RddTest, FoldSums) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(11), 3);
  int total = rdd.Fold(0, [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 55);
}

TEST(RddTest, CartesianProducesAllPairs) {
  SparkContext sc(SmallCluster());
  auto a = Parallelize(&sc, std::vector<int>{1, 2}, 2);
  auto b = Parallelize(&sc, std::vector<int>{10, 20, 30}, 3);
  auto pairs = a.Cartesian(b).Collect();
  EXPECT_EQ(pairs.size(), 6u);
  uint64_t before = sc.metrics().join_comparisons;
  EXPECT_GT(before, 0u);
}

TEST(RddTest, IntersectionKeepsCommonDistinctValues) {
  SparkContext sc(SmallCluster());
  auto a = Parallelize(&sc, std::vector<int>{1, 2, 2, 3, 4}, 3);
  auto b = Parallelize(&sc, std::vector<int>{2, 3, 3, 5}, 2);
  auto got = a.Intersection(b).Collect();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{2, 3}));
}

TEST(RddTest, SubtractRemovesMatchingValues) {
  SparkContext sc(SmallCluster());
  auto a = Parallelize(&sc, std::vector<int>{1, 2, 2, 3, 4}, 3);
  auto b = Parallelize(&sc, std::vector<int>{2, 5}, 2);
  auto got = a.Subtract(b).Collect();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{1, 3, 4}));  // both 2s removed
}

TEST(RddTest, ZipWithIndexIsGloballyConsecutive) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(23), 5).ZipWithIndex();
  auto got = rdd.Collect();
  ASSERT_EQ(got.size(), 23u);
  for (int64_t i = 0; i < 23; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)].first, static_cast<int>(i));
    EXPECT_EQ(got[static_cast<size_t>(i)].second, i);
  }
}

TEST(RddTest, AggregateWithDifferentAccumulatorType) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(10), 4);
  // Accumulate (sum, count) pairs.
  auto [sum, count] = rdd.Aggregate(
      std::pair<int, int>{0, 0},
      [](std::pair<int, int> acc, int x) {
        return std::pair<int, int>{acc.first + x, acc.second + 1};
      },
      [](std::pair<int, int> a, std::pair<int, int> b) {
        return std::pair<int, int>{a.first + b.first, a.second + b.second};
      });
  EXPECT_EQ(sum, 45);
  EXPECT_EQ(count, 10);
}

// ---------------------------------------------------------------------------
// Pair-RDD operations.
// ---------------------------------------------------------------------------

TEST(PairRddTest, KeyByAndCountByKey) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(10), 4).KeyBy([](const int& x) {
    return x % 3;
  });
  auto counts = rdd.CountByKey();
  EXPECT_EQ(counts[0], 4u);  // 0,3,6,9
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 3u);
}

TEST(PairRddTest, ReduceByKeySums) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<std::string, int>> data{
      {"a", 1}, {"b", 2}, {"a", 3}, {"b", 4}, {"c", 5}};
  auto out = Parallelize(&sc, data, 3)
                 .ReduceByKey([](int a, int b) { return a + b; })
                 .Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::pair<std::string, int>>{
                     {"a", 4}, {"b", 6}, {"c", 5}}));
}

TEST(PairRddTest, MapSideCombineReducesShuffleRecords) {
  SparkContext sc(SmallCluster());
  // 1000 records, only 4 distinct keys: combine should shrink the shuffle.
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 1000; ++i) data.emplace_back(i % 4, 1);
  auto before = sc.metrics();
  Parallelize(&sc, data, 8)
      .ReduceByKey([](int a, int b) { return a + b; })
      .Collect();
  auto delta = sc.metrics() - before;
  // At most 4 keys per map partition * 8 partitions records shuffled.
  EXPECT_LE(delta.shuffle_records, 32u);

  SparkContext sc2(SmallCluster());
  auto before2 = sc2.metrics();
  Parallelize(&sc2, data, 8).GroupByKey().Collect();
  auto delta2 = sc2.metrics() - before2;
  EXPECT_EQ(delta2.shuffle_records, 1000u);  // groupByKey: no combine
}

TEST(PairRddTest, GroupByKeyGathersValues) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> data{{1, 10}, {2, 20}, {1, 11}, {2, 21}};
  auto out = Parallelize(&sc, data, 2).GroupByKey().Collect();
  ASSERT_EQ(out.size(), 2u);
  for (auto& [k, vs] : out) {
    auto sorted = vs;
    std::sort(sorted.begin(), sorted.end());
    if (k == 1) {
      EXPECT_EQ(sorted, (std::vector<int>{10, 11}));
    }
    if (k == 2) {
      EXPECT_EQ(sorted, (std::vector<int>{20, 21}));
    }
  }
}

TEST(PairRddTest, MapValuesPreservesPartitioner) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> data{{1, 1}, {2, 2}, {3, 3}};
  auto part = Parallelize(&sc, data, 2).PartitionByKey(4);
  ASSERT_TRUE(part.partitioner().has_value());
  auto mapped = part.MapValues([](const int& v) { return v * 10; });
  ASSERT_TRUE(mapped.partitioner().has_value());
  EXPECT_EQ(*mapped.partitioner(), *part.partitioner());
}

TEST(PairRddTest, JoinMatchesKeys) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, std::string>> left{{1, "a"}, {2, "b"}, {3, "c"}};
  std::vector<std::pair<int, int>> right{{2, 20}, {3, 30}, {4, 40}};
  auto joined = Parallelize(&sc, left, 2)
                    .Join(Parallelize(&sc, right, 3))
                    .Collect();
  std::sort(joined.begin(), joined.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined[0].first, 2);
  EXPECT_EQ(joined[0].second.first, "b");
  EXPECT_EQ(joined[0].second.second, 20);
  EXPECT_EQ(joined[1].first, 3);
}

TEST(PairRddTest, JoinHandlesDuplicateKeys) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> left{{1, 1}, {1, 2}};
  std::vector<std::pair<int, int>> right{{1, 10}, {1, 20}};
  auto joined = Parallelize(&sc, left, 2).Join(Parallelize(&sc, right, 2));
  EXPECT_EQ(joined.Count(), 4u);
}

TEST(PairRddTest, LeftOuterJoinKeepsUnmatched) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> left{{1, 1}, {2, 2}};
  std::vector<std::pair<int, int>> right{{2, 20}};
  auto joined =
      Parallelize(&sc, left, 2).LeftOuterJoin(Parallelize(&sc, right, 2));
  auto rows = joined.Collect();
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[0].second.second.has_value());
  ASSERT_TRUE(rows[1].second.second.has_value());
  EXPECT_EQ(*rows[1].second.second, 20);
}

TEST(PairRddTest, CoGroupGathersBothSides) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> left{{1, 1}, {1, 2}, {2, 3}};
  std::vector<std::pair<int, int>> right{{1, 10}, {3, 30}};
  auto rows =
      Parallelize(&sc, left, 2).CoGroup(Parallelize(&sc, right, 2)).Collect();
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].second.first.size(), 2u);   // key 1: two left values
  EXPECT_EQ(rows[0].second.second.size(), 1u);  // key 1: one right value
  EXPECT_EQ(rows[2].second.first.size(), 0u);   // key 3: right only
}

TEST(PairRddTest, SubtractByKey) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> left{{1, 1}, {2, 2}, {3, 3}};
  std::vector<std::pair<int, int>> right{{2, 0}};
  auto rows = Parallelize(&sc, left, 2)
                  .SubtractByKey(Parallelize(&sc, right, 2))
                  .Collect();
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, (std::vector<std::pair<int, int>>{{1, 1}, {3, 3}}));
}

TEST(PairRddTest, CoPartitionedJoinAvoidsShuffle) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 200; ++i) data.emplace_back(i, i);
  auto a = Parallelize(&sc, data, 4).PartitionByKey(8);
  auto b = Parallelize(&sc, data, 4).PartitionByKey(8);
  a.Count();  // force materialization (and its shuffle)
  b.Count();
  auto before = sc.metrics();
  a.Join(b).Count();
  auto delta = sc.metrics() - before;
  EXPECT_EQ(delta.shuffle_records, 0u) << "co-partitioned join must not shuffle";

  // Contrast: same join without pre-partitioning shuffles both sides.
  SparkContext sc2(SmallCluster());
  auto a2 = Parallelize(&sc2, data, 4);
  auto b2 = Parallelize(&sc2, data, 4);
  auto before2 = sc2.metrics();
  a2.Join(b2).Count();
  auto delta2 = sc2.metrics() - before2;
  EXPECT_EQ(delta2.shuffle_records, 400u);
}

TEST(PairRddTest, BroadcastHashJoinShufflesNothing) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> big;
  for (int i = 0; i < 500; ++i) big.emplace_back(i % 50, i);
  std::vector<std::pair<int, std::string>> small{{7, "seven"}, {13, "x"}};
  auto big_rdd = Parallelize(&sc, big, 8);
  auto small_map = CollectAsMultimap(Parallelize(&sc, small, 2));
  auto before = sc.metrics();
  auto joined = big_rdd.BroadcastHashJoin(small_map);
  uint64_t n = joined.Count();
  auto delta = sc.metrics() - before;
  EXPECT_EQ(n, 20u);  // two hot keys * 10 occurrences each
  EXPECT_EQ(delta.shuffle_records, 0u);
  EXPECT_GT(sc.metrics().broadcast_bytes, 0u);
}

TEST(PairRddTest, PartitionByKeyIsIdempotent) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> data{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  auto part = Parallelize(&sc, data, 2).PartitionByKey(4);
  part.Count();
  auto before = sc.metrics();
  auto again = part.PartitionByKey(4);
  again.Count();
  auto delta = sc.metrics() - before;
  EXPECT_EQ(delta.shuffle_records, 0u);
}

// ---------------------------------------------------------------------------
// Metrics / simulator behaviour.
// ---------------------------------------------------------------------------

TEST(MetricsTest, ActionsCountJobsAndTasks) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(100), 8);
  rdd.Count();
  EXPECT_EQ(sc.metrics().jobs, 1u);
  EXPECT_EQ(sc.metrics().tasks, 8u);
  EXPECT_EQ(sc.metrics().stages, 1u);
  rdd.Collect();
  EXPECT_EQ(sc.metrics().jobs, 2u);
}

TEST(MetricsTest, ShuffleCountsRecordsAndBytes) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 64; ++i) data.emplace_back(i, i);
  auto before = sc.metrics();
  Parallelize(&sc, data, 4).PartitionByKey(8).Count();
  auto delta = sc.metrics() - before;
  EXPECT_EQ(delta.shuffle_records, 64u);
  EXPECT_GT(delta.shuffle_bytes, 0u);
  EXPECT_GT(delta.remote_shuffle_bytes, 0u);
  EXPECT_LE(delta.remote_shuffle_bytes, delta.shuffle_bytes);
}

TEST(MetricsTest, MoreExecutorsReduceSimulatedTime) {
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 20000; ++i) data.emplace_back(i, i);

  auto run = [&](int executors) {
    ClusterConfig cfg;
    cfg.num_executors = executors;
    cfg.default_parallelism = 16;
    SparkContext sc(cfg);
    Parallelize(&sc, data, 16)
        .Map([](const std::pair<int, int>& kv) {
          return std::pair<int, int>(kv.first % 7, kv.second);
        })
        .ReduceByKey([](int a, int b) { return a + b; })
        .Collect();
    return sc.metrics().simulated_ms;
  };
  double t1 = run(1);
  double t8 = run(8);
  EXPECT_LT(t8, t1);
}

TEST(MetricsTest, MemoryFootprintTracksStringSizes) {
  SparkContext sc(SmallCluster());
  std::vector<std::string> strings(100, std::string(100, 'x'));
  auto rdd = Parallelize(&sc, strings, 4);
  uint64_t fp = rdd.MemoryFootprint();
  EXPECT_GE(fp, 100u * 100u);
  EXPECT_LE(fp, 100u * 140u);
}

TEST(MetricsTest, ToStringMentionsKeyCounters) {
  Metrics m;
  m.jobs = 3;
  m.shuffle_records = 17;
  auto s = m.ToString();
  EXPECT_NE(s.find("jobs=3"), std::string::npos);
  EXPECT_NE(s.find("records=17"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lineage & fault tolerance.
// ---------------------------------------------------------------------------

TEST(LineageTest, DebugStringShowsChain) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(10), 2)
                 .Map([](const int& x) { return x + 1; })
                 .Filter([](const int& x) { return x > 3; });
  auto dbg = rdd.DebugString();
  EXPECT_NE(dbg.find("Filter"), std::string::npos);
  EXPECT_NE(dbg.find("Map"), std::string::npos);
  EXPECT_NE(dbg.find("Parallelize"), std::string::npos);
}

TEST(LineageTest, EvictedPartitionRecomputesSameData) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(100), 8).Map([](const int& x) {
    return x * 3;
  });
  auto first = rdd.Collect();
  // Simulate losing three partitions.
  rdd.node()->EvictPartition(1);
  rdd.node()->EvictPartition(4);
  rdd.node()->EvictPartition(7);
  EXPECT_FALSE(rdd.node()->IsPartitionCached(1));
  auto second = rdd.Collect();
  EXPECT_EQ(first, second);
}

TEST(LineageTest, UncacheRacingPooledActionIsSafe) {
  // Uncache() flips the persist flag and drops retained partitions while
  // pooled tasks may be mid-GetPartition; results must stay correct and
  // the accesses race-free (this test runs under TSan in tier 1).
  ClusterConfig cfg = SmallCluster();
  cfg.executor_threads = 4;
  SparkContext sc(cfg);
  auto rdd = Parallelize(&sc, Ints(400), 8).Map([](const int& x) {
    return x * 2;
  });
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      rdd.Uncache();
      rdd.Cache();
    }
  });
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(rdd.Count(), 400u);
  }
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  rdd.Cache();
  auto got = rdd.Collect();
  ASSERT_EQ(got.size(), 400u);
  EXPECT_EQ(got[7], 14);
}

TEST(LineageTest, EvictionAfterShuffleRecomputesFromBuckets) {
  SparkContext sc(SmallCluster());
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 50; ++i) data.emplace_back(i % 5, 1);
  auto rdd = Parallelize(&sc, data, 4).ReduceByKey([](int a, int b) {
    return a + b;
  });
  auto first = rdd.Collect();
  rdd.node()->EvictPartition(0);
  auto second = rdd.Collect();
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rdfspark::spark
