// Executor-pool scheduler tests: the pool must run every task exactly once,
// propagate failures, and — the core contract of the parallel substrate —
// produce results and metrics (including a bit-identical simulated_ms) that
// match the serial reference path for any thread interleaving.

#include "spark/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "spark/context.h"
#include "spark/rdd.h"
#include "spark/sql/dataframe.h"

namespace rdfspark::spark {
namespace {

TEST(TaskSchedulerTest, RunsEveryIndexExactlyOnce) {
  TaskScheduler pool(4);
  constexpr int kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kCount, [&](int i) { ++hits[static_cast<size_t>(i)]; });
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(TaskSchedulerTest, ReusableAcrossBatches) {
  TaskScheduler pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(10, [&](int) { ++total; });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(TaskSchedulerTest, PropagatesTaskException) {
  TaskScheduler pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(32,
                       [&](int i) {
                         ++ran;
                         if (i == 7) throw std::runtime_error("task 7 died");
                       }),
      std::runtime_error);
  // The batch drains fully even when one task throws.
  EXPECT_EQ(ran.load(), 32);
  // And the pool is still usable afterwards.
  std::atomic<int> again{0};
  pool.ParallelFor(8, [&](int) { ++again; });
  EXPECT_EQ(again.load(), 8);
}

TEST(TaskSchedulerTest, TasksSeeWorkerFlag) {
  EXPECT_FALSE(TaskScheduler::InWorkerThread());
  TaskScheduler pool(2);
  std::atomic<int> flagged{0};
  pool.ParallelFor(16, [&](int) {
    if (TaskScheduler::InWorkerThread()) ++flagged;
  });
  // Every task runs under the flag — including those the caller ran itself.
  EXPECT_EQ(flagged.load(), 16);
  // The caller's flag is restored once the batch retires.
  EXPECT_FALSE(TaskScheduler::InWorkerThread());
}

TEST(TaskSchedulerTest, ConcurrentBatchesRunEveryTaskOnce) {
  // Several driver threads (the serving layer's workers) share one pool;
  // the multi-batch scheduler must run every task of every batch exactly
  // once, whatever the interleaving.
  TaskScheduler pool(4);
  constexpr int kDrivers = 8;
  constexpr int kCount = 200;
  std::vector<std::atomic<int>> hits(kDrivers * kCount);
  for (auto& h : hits) h.store(0);
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      pool.ParallelFor(kCount, [&, d](int i) {
        ++hits[static_cast<size_t>(d * kCount + i)];
      });
    });
  }
  for (auto& t : drivers) t.join();
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(TaskSchedulerTest, ExceptionIsolatedToItsOwnBatch) {
  // A throwing batch must not poison batches submitted by other drivers.
  TaskScheduler pool(4);
  std::atomic<int> good{0};
  std::thread bad([&] {
    EXPECT_THROW(pool.ParallelFor(64,
                                  [&](int i) {
                                    if (i == 13) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
                 std::runtime_error);
  });
  std::thread fine([&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(32, [&](int) { ++good; });
    }
  });
  bad.join();
  fine.join();
  EXPECT_EQ(good.load(), 640);
}

TEST(RunParallelTest, ConcurrentDriversShareOneLazyPool) {
  // Concurrent first-use of RunParallel races the lazy scheduler creation;
  // the once-guard must yield exactly one pool and lose no tasks.
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.executor_threads = 4;
  SparkContext sc(cfg);
  std::atomic<int> total{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 6; ++d) {
    drivers.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        sc.RunParallel(25, [&](int) { ++total; });
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(total.load(), 6 * 10 * 25);
}

TEST(RunParallelTest, NestedCallsRunInline) {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  SparkContext sc(cfg);
  std::atomic<int> inner_total{0};
  sc.RunParallel(4, [&](int) {
    // A nested RunParallel from inside a task must not re-enter the pool's
    // batch machinery (that would deadlock); it runs inline.
    sc.RunParallel(4, [&](int) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 16);
}

// --- Phase accounting -----------------------------------------------------

ClusterConfig FourExecutors(int executor_threads = 0) {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  cfg.executor_threads = executor_threads;
  return cfg;
}

TEST(PhaseAccountingTest, NestedPhasesFoldExactCharges) {
  // Default cost model: 100us task overhead, 50ns/record, 10ns/byte.
  SparkContext sc(FourExecutors());
  sc.BeginPhase();
  sc.ChargeTask(0, 100, 0);  // executor 0: 100000 + 5000 = 105000 ns
  sc.BeginPhase();
  sc.ChargeTask(1, 200, 50);  // executor 1: 100000 + 10000 + 500 = 110500 ns
  sc.EndPhase();              // folds max = 110500 ns
  sc.ChargeCompute(0, 100);   // executor 0: + 5000 -> 110000 ns
  sc.EndPhase();              // folds max = 110000 ns
  EXPECT_DOUBLE_EQ(sc.metrics().simulated_ms, 0.2205);
  EXPECT_EQ(static_cast<uint64_t>(sc.metrics().stages), 2u);
  EXPECT_EQ(static_cast<uint64_t>(sc.metrics().tasks), 2u);
  EXPECT_EQ(static_cast<uint64_t>(sc.metrics().records_processed), 400u);
}

TEST(PhaseAccountingTest, ParallelChargesLandInSubmittersPhase) {
  SparkContext sc(FourExecutors());
  sc.BeginPhase();
  sc.RunParallel(8, [&](int p) { sc.ChargeTask(p, 100, 0); });
  sc.EndPhase();
  // 8 tasks round-robin over 4 executors: 2 per executor, 105000 ns each.
  EXPECT_DOUBLE_EQ(sc.metrics().simulated_ms, 0.21);
  EXPECT_EQ(static_cast<uint64_t>(sc.metrics().tasks), 8u);
}

// --- Serial vs parallel equivalence ---------------------------------------

/// A pipeline exercising narrow chains, a shuffle (ReduceByKey), a sort and
/// actions, returning (collected result, metrics snapshot).
std::pair<std::vector<std::pair<int, int>>, Metrics> RunRddPipeline(
    int executor_threads) {
  SparkContext sc(FourExecutors(executor_threads));
  std::vector<int> data;
  for (int i = 0; i < 5000; ++i) data.push_back(i);
  auto pairs = Parallelize(&sc, data, 16)
                   .Map([](int x) { return std::make_pair(x % 97, x); })
                   .Filter([](const std::pair<int, int>& kv) {
                     return kv.second % 3 != 0;
                   })
                   .ReduceByKey([](int a, int b) { return a + b; });
  auto sorted = pairs.SortBy(
      [](const std::pair<int, int>& kv) { return kv.first; }, true, 8);
  auto out = sorted.Collect();
  (void)pairs.Count();
  return {std::move(out), sc.metrics()};
}

TEST(ParallelEquivalenceTest, RddPipelineMatchesSerialBitForBit) {
  auto [serial_out, serial_m] = RunRddPipeline(/*executor_threads=*/1);
  auto [parallel_out, parallel_m] = RunRddPipeline(/*executor_threads=*/0);

  EXPECT_EQ(serial_out, parallel_out);
  EXPECT_EQ(static_cast<uint64_t>(serial_m.jobs),
            static_cast<uint64_t>(parallel_m.jobs));
  EXPECT_EQ(static_cast<uint64_t>(serial_m.stages),
            static_cast<uint64_t>(parallel_m.stages));
  EXPECT_EQ(static_cast<uint64_t>(serial_m.tasks),
            static_cast<uint64_t>(parallel_m.tasks));
  EXPECT_EQ(static_cast<uint64_t>(serial_m.records_processed),
            static_cast<uint64_t>(parallel_m.records_processed));
  EXPECT_EQ(static_cast<uint64_t>(serial_m.shuffle_records),
            static_cast<uint64_t>(parallel_m.shuffle_records));
  EXPECT_EQ(static_cast<uint64_t>(serial_m.shuffle_bytes),
            static_cast<uint64_t>(parallel_m.shuffle_bytes));
  EXPECT_EQ(static_cast<uint64_t>(serial_m.remote_shuffle_bytes),
            static_cast<uint64_t>(parallel_m.remote_shuffle_bytes));
  // Bit-for-bit: integer-nanosecond accounting makes the fold order
  // irrelevant, so this is an exact equality, not a tolerance check.
  EXPECT_EQ(serial_m.simulated_ms.nanos(), parallel_m.simulated_ms.nanos());
}

TEST(ParallelEquivalenceTest, SimulatedMsIsDeterministicAcrossRuns) {
  auto [out0, m0] = RunRddPipeline(/*executor_threads=*/0);
  for (int run = 1; run < 5; ++run) {
    auto [out, m] = RunRddPipeline(/*executor_threads=*/0);
    EXPECT_EQ(out, out0);
    EXPECT_EQ(m.simulated_ms.nanos(), m0.simulated_ms.nanos());
    EXPECT_EQ(static_cast<uint64_t>(m.tasks),
              static_cast<uint64_t>(m0.tasks));
  }
}

/// Stress: many small partitions hammering the pool, repeated to shake out
/// interleavings. Results and metrics must match the serial path every time.
TEST(ParallelEquivalenceTest, StressManySmallPartitions) {
  auto run = [](int executor_threads) {
    SparkContext sc(FourExecutors(executor_threads));
    std::vector<int> data;
    for (int i = 0; i < 2000; ++i) data.push_back(i);
    auto rdd = Parallelize(&sc, data, 64).Map([](int x) { return x * 2; });
    auto collected = rdd.Collect();
    uint64_t count = rdd.Count();
    return std::make_tuple(std::move(collected), count,
                           static_cast<uint64_t>(sc.metrics().tasks),
                           sc.metrics().simulated_ms.nanos());
  };
  auto expected = run(1);
  for (int rep = 0; rep < 10; ++rep) {
    EXPECT_EQ(run(0), expected) << "rep " << rep;
  }
}

std::pair<std::vector<sql::Row>, Metrics> RunDataFramePipeline(
    int executor_threads) {
  SparkContext sc(FourExecutors(executor_threads));
  sql::Schema schema{{sql::Field{"id", sql::DataType::kInt64},
                      sql::Field{"grp", sql::DataType::kString}}};
  std::vector<sql::Row> rows;
  for (int i = 0; i < 1000; ++i) {
    rows.push_back({int64_t{i}, std::string(i % 7 ? "odd" : "seven")});
  }
  auto df = sql::DataFrame::FromRows(&sc, schema, rows, 8);
  auto filtered = df.Filter(sql::Col("id") < sql::Lit(int64_t{900}));
  auto joined = filtered.Join(df.Rename({"id2", "grp2"}),
                              {{"grp", "grp2"}}, sql::JoinType::kInner,
                              sql::JoinStrategy::kShuffleHash);
  auto grouped = joined.GroupByAgg(
      {"grp"}, {sql::AggSpec{sql::AggOp::kCount, "", "n"}});
  auto out = grouped.Sort({{"grp", true}}).Collect();
  (void)filtered.Distinct().Count();
  return {std::move(out), sc.metrics()};
}

TEST(ParallelEquivalenceTest, DataFramePipelineMatchesSerial) {
  auto [serial_out, serial_m] = RunDataFramePipeline(/*executor_threads=*/1);
  auto [parallel_out, parallel_m] = RunDataFramePipeline(/*executor_threads=*/0);
  ASSERT_EQ(serial_out.size(), parallel_out.size());
  for (size_t i = 0; i < serial_out.size(); ++i) {
    EXPECT_EQ(serial_out[i], parallel_out[i]) << "row " << i;
  }
  EXPECT_EQ(static_cast<uint64_t>(serial_m.tasks),
            static_cast<uint64_t>(parallel_m.tasks));
  EXPECT_EQ(static_cast<uint64_t>(serial_m.shuffle_records),
            static_cast<uint64_t>(parallel_m.shuffle_records));
  EXPECT_EQ(static_cast<uint64_t>(serial_m.join_comparisons),
            static_cast<uint64_t>(parallel_m.join_comparisons));
  EXPECT_EQ(serial_m.simulated_ms.nanos(), parallel_m.simulated_ms.nanos());
}

// --- Seed-bug regressions -------------------------------------------------

TEST(CartesianTest, HugePartitionsDoNotOverflowReserve) {
  // Two single-partition RDDs whose size product would previously be passed
  // straight to vector::reserve. With modest sizes this still verifies the
  // clamped-estimate path produces the full product.
  SparkContext sc(FourExecutors(1));
  std::vector<int> a(300), b(300);
  auto left = Parallelize(&sc, a, 1);
  auto right = Parallelize(&sc, b, 1);
  EXPECT_EQ(left.Cartesian(right).Count(), 90000u);
}

}  // namespace
}  // namespace rdfspark::spark
