// Integration: RDFS materialization feeds the distributed engines — §II.A's
// "inference rules used to generate new, implicit triples from explicit
// ones" become queryable through every system.

#include <gtest/gtest.h>

#include "rdf/generator.h"
#include "rdf/rdfs.h"
#include "rdf/store.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "systems/engine.h"

namespace rdfspark::systems {
namespace {

TEST(InferenceIntegrationTest, EnginesSeeMaterializedTriples) {
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
  store.AddAll(rdf::LubmSchema());
  store.Dedupe();
  uint64_t before = store.size();
  auto result = rdf::MaterializeRdfs(&store);
  EXPECT_GT(result.inferred_triples, 0u);
  EXPECT_EQ(store.size(), before + result.inferred_triples);

  // "Professor" instances exist only through subclass inference.
  const std::string query =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "SELECT ?x WHERE { ?x rdf:type ub:Professor . ?x ub:worksFor ?d }";
  auto parsed = sparql::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  sparql::ReferenceEvaluator reference(&store);
  auto expected = reference.Evaluate(*parsed);
  ASSERT_TRUE(expected.ok());
  EXPECT_GT(expected->num_rows(), 0u)
      << "inference must produce Professor instances";
  auto expected_decoded = expected->Decode(store.dictionary());

  spark::SparkContext sc(spark::ClusterConfig{});
  for (auto& engine : MakeAllEngines(&sc)) {
    ASSERT_TRUE(engine->Load(store).ok()) << engine->traits().name;
    auto got = engine->Execute(*parsed);
    ASSERT_TRUE(got.ok()) << engine->traits().name << ": "
                          << got.status().ToString();
    EXPECT_EQ(got->Decode(store.dictionary()), expected_decoded)
        << engine->traits().name;
  }
}

TEST(InferenceIntegrationTest, SubPropertyQueriesWork) {
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
  store.AddAll(rdf::LubmSchema());
  store.Dedupe();
  rdf::MaterializeRdfs(&store);

  // degreeFrom exists only via subPropertyOf(doctoralDegreeFrom, degreeFrom).
  const std::string query =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nSELECT ?x ?u WHERE { ?x ub:degreeFrom ?u }";
  auto parsed = sparql::ParseQuery(query);
  ASSERT_TRUE(parsed.ok());
  sparql::ReferenceEvaluator reference(&store);
  auto expected = reference.Evaluate(*parsed);
  ASSERT_TRUE(expected.ok());
  EXPECT_GT(expected->num_rows(), 0u);

  spark::SparkContext sc(spark::ClusterConfig{});
  auto engines = MakeAllEngines(&sc);
  for (auto& engine : engines) {
    ASSERT_TRUE(engine->Load(store).ok());
    auto got = engine->Execute(*parsed);
    ASSERT_TRUE(got.ok()) << engine->traits().name;
    EXPECT_EQ(got->num_rows(), expected->num_rows())
        << engine->traits().name;
  }
}

TEST(InferenceIntegrationTest, SelectiveRuleOptions) {
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
  store.AddAll(rdf::LubmSchema());
  store.Dedupe();

  rdf::RdfsOptions only_class;
  only_class.sub_property_of = false;
  only_class.domain = false;
  only_class.range = false;
  uint64_t before = store.size();
  auto result = rdf::MaterializeRdfs(&store, only_class);
  EXPECT_GT(result.inferred_triples, 0u);
  // degreeFrom must NOT exist: subPropertyOf was disabled.
  auto degree = store.dictionary().Lookup(
      rdf::Term::Uri(std::string(rdf::kUbPrefix) + "degreeFrom"));
  if (degree.ok()) {
    EXPECT_TRUE(
        store.Match({std::nullopt, *degree, std::nullopt}).empty());
  }
  EXPECT_EQ(store.size(), before + result.inferred_triples);
}

}  // namespace
}  // namespace rdfspark::systems
