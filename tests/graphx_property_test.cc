// Property-based sweeps of the GraphX layer: random graphs, algorithms
// checked against brute-force references (union-find components, exhaustive
// triangle enumeration, BFS distances, PageRank conservation).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "spark/graphx/algorithms.h"
#include "spark/graphx/graph.h"

namespace rdfspark::spark::graphx {
namespace {

struct RandomGraphParam {
  int vertices;
  int edges;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<RandomGraphParam>& info) {
  return "v" + std::to_string(info.param.vertices) + "_e" +
         std::to_string(info.param.edges) + "_s" +
         std::to_string(info.param.seed);
}

class GraphPropertyTest : public ::testing::TestWithParam<RandomGraphParam> {
 protected:
  GraphPropertyTest() : sc_(MakeConfig()) {
    Rng rng(GetParam().seed);
    std::set<std::pair<VertexId, VertexId>> seen;
    while (static_cast<int>(edges_.size()) < GetParam().edges) {
      VertexId a = static_cast<VertexId>(
          rng.Below(static_cast<uint64_t>(GetParam().vertices)));
      VertexId b = static_cast<VertexId>(
          rng.Below(static_cast<uint64_t>(GetParam().vertices)));
      if (a == b) continue;
      if (!seen.insert({a, b}).second) continue;
      edges_.push_back(Edge<int>{a, b, 0});
    }
    graph_ = Graph<int, int>::FromEdges(&sc_, edges_, 0, 4);
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig cfg;
    cfg.num_executors = 4;
    cfg.default_parallelism = 4;
    return cfg;
  }

  SparkContext sc_;
  std::vector<Edge<int>> edges_;
  Graph<int, int> graph_;
};

TEST_P(GraphPropertyTest, ConnectedComponentsMatchUnionFind) {
  // Union-find reference (undirected semantics, matching the algorithm).
  std::map<VertexId, VertexId> parent;
  std::function<VertexId(VertexId)> find = [&](VertexId x) {
    if (!parent.count(x)) parent[x] = x;
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (const auto& e : edges_) {
    VertexId ra = find(e.src), rb = find(e.dst);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }
  std::map<VertexId, std::set<VertexId>> expected_groups;
  for (const auto& [v, p] : parent) expected_groups[find(v)].insert(v);

  auto got = ConnectedComponents(graph_).Collect();
  std::map<VertexId, std::set<VertexId>> got_groups;
  for (const auto& [v, c] : got) got_groups[c].insert(v);

  // Same partition of the vertex set (labels are min ids in both).
  EXPECT_EQ(got_groups.size(), expected_groups.size());
  for (const auto& [label, members] : expected_groups) {
    EXPECT_EQ(got_groups[label], members) << "component " << label;
  }
}

TEST_P(GraphPropertyTest, TriangleCountMatchesBruteForce) {
  // Undirected adjacency.
  std::map<VertexId, std::set<VertexId>> adj;
  for (const auto& e : edges_) {
    adj[e.src].insert(e.dst);
    adj[e.dst].insert(e.src);
  }
  uint64_t expected = 0;
  std::vector<VertexId> vertices;
  for (const auto& [v, n] : adj) vertices.push_back(v);
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (!adj[vertices[i]].count(vertices[j])) continue;
      for (size_t k = j + 1; k < vertices.size(); ++k) {
        if (adj[vertices[i]].count(vertices[k]) &&
            adj[vertices[j]].count(vertices[k])) {
          ++expected;
        }
      }
    }
  }
  EXPECT_EQ(TriangleCount(graph_), expected);
}

TEST_P(GraphPropertyTest, ShortestPathsMatchBfs) {
  VertexId source = edges_.front().src;
  // BFS reference over directed edges.
  std::map<VertexId, std::vector<VertexId>> out;
  for (const auto& e : edges_) out[e.src].push_back(e.dst);
  std::map<VertexId, double> expected;
  std::vector<VertexId> frontier{source};
  expected[source] = 0;
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (VertexId w : out[v]) {
        if (!expected.count(w)) {
          expected[w] = expected[v] + 1;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
  }
  auto got = ShortestPaths(graph_, source).Collect();
  for (const auto& [v, d] : got) {
    if (expected.count(v)) {
      EXPECT_DOUBLE_EQ(d, expected[v]) << "vertex " << v;
    } else {
      EXPECT_GT(d, 1e17) << "vertex " << v << " should be unreachable";
    }
  }
}

TEST_P(GraphPropertyTest, PageRankIsPositiveAndBounded) {
  auto ranks = PageRank(graph_, 25).Collect();
  ASSERT_EQ(ranks.size(), graph_.NumVertices());
  double total = 0;
  for (const auto& [v, r] : ranks) {
    EXPECT_GT(r, 0.0);
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.15 - 1e-9);  // teleport floor
    total += r;
  }
  // Rank mass is bounded by |V| (sinks leak mass, so <=).
  EXPECT_LE(total, static_cast<double>(ranks.size()) + 1e-6);
}

TEST_P(GraphPropertyTest, ReverseTwiceIsIdentity) {
  auto twice = graph_.Reverse().Reverse().edges().Collect();
  std::multiset<std::pair<VertexId, VertexId>> a, b;
  for (const auto& e : edges_) a.insert({e.src, e.dst});
  for (const auto& e : twice) b.insert({e.src, e.dst});
  EXPECT_EQ(a, b);
}

TEST_P(GraphPropertyTest, DegreesSumToEdgeCount) {
  auto out_degrees = graph_.OutDegrees().Collect();
  uint64_t total = 0;
  for (const auto& [v, d] : out_degrees) total += d;
  EXPECT_EQ(total, edges_.size());
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, GraphPropertyTest,
    ::testing::Values(RandomGraphParam{8, 12, 11},
                      RandomGraphParam{20, 40, 22},
                      RandomGraphParam{30, 100, 33},
                      RandomGraphParam{50, 60, 44},
                      RandomGraphParam{15, 80, 55}),
    ParamName);

}  // namespace
}  // namespace rdfspark::spark::graphx
