// Tracer tests: span taxonomy and nesting over a real shuffle pipeline,
// per-thread buffer merge determinism (exercised under TSan by tier1),
// byte-identical serial exports, and Chrome-trace JSON well-formedness
// (parsed back with the strict validator in common/json.h).

#include "spark/tracing.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"
#include "spark/context.h"
#include "spark/rdd.h"

namespace rdfspark::spark {
namespace {

std::vector<std::pair<int64_t, int64_t>> TestPairs(int n) {
  std::vector<std::pair<int64_t, int64_t>> data;
  data.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) data.emplace_back(i % 7, i);
  return data;
}

/// One shuffle (ReduceByKey) plus one action, traced.
std::vector<std::pair<int64_t, int64_t>> RunPipeline(SparkContext* sc) {
  auto rdd = Parallelize(sc, TestPairs(64), 4);
  auto reduced =
      rdd.ReduceByKey([](int64_t a, int64_t b) { return a + b; });
  return reduced.Collect();
}

ClusterConfig TestCluster(int executor_threads) {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 4;
  cfg.executor_threads = executor_threads;
  return cfg;
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  SparkContext sc(TestCluster(1));
  ASSERT_FALSE(sc.tracer().enabled());
  RunPipeline(&sc);
  EXPECT_EQ(sc.tracer().event_count(), 0u);
}

TEST(Tracer, SpanTaxonomyAndNesting) {
  SparkContext sc(TestCluster(1));
  sc.tracer().set_enabled(true);
  RunPipeline(&sc);

  std::vector<TraceEvent> events = sc.tracer().Merged();
  ASSERT_FALSE(events.empty());
  std::map<SpanKind, int> by_kind;
  for (const auto& e : events) ++by_kind[e.kind];
  EXPECT_GE(by_kind[SpanKind::kJob], 1) << "action should record a job";
  EXPECT_GE(by_kind[SpanKind::kStage], 2)
      << "shuffle + result stage expected";
  EXPECT_GE(by_kind[SpanKind::kTask], 8)
      << "4 map + 4 reduce tasks expected";
  EXPECT_GE(by_kind[SpanKind::kShuffleWrite], 4);

  // Nesting: every task span lies inside some stage span, and stage spans
  // sit on the driver lane while tasks sit on executor lanes.
  for (const auto& task : events) {
    if (task.kind != SpanKind::kTask) continue;
    EXPECT_GE(task.lane, 0);
    bool contained = false;
    for (const auto& stage : events) {
      if (stage.kind != SpanKind::kStage) continue;
      EXPECT_EQ(stage.lane, -1);
      if (task.ts_ns >= stage.ts_ns &&
          task.ts_ns + task.dur_ns <= stage.ts_ns + stage.dur_ns) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "task span [" << task.ts_ns << ", +"
                           << task.dur_ns << "] outside every stage span";
  }
}

TEST(Tracer, SerialExportIsByteDeterministic) {
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    SparkContext sc(TestCluster(1));
    sc.tracer().set_enabled(true);
    RunPipeline(&sc);
    *out = sc.tracer().ToChromeTraceJson();
  }
  EXPECT_EQ(first, second);
}

/// The multiset of (kind, name, lane, dur, records, bytes) is charge-set
/// determined, so it must not depend on executor threading; only task
/// start offsets may differ under the pool. This is the thread-buffer
/// merge determinism test tier1 runs under TSan.
TEST(Tracer, ThreadBufferMergeMatchesSerialEventMultiset) {
  using Key =
      std::tuple<SpanKind, std::string, int, uint64_t, uint64_t, uint64_t>;
  auto multiset_of = [](SparkContext* sc) {
    std::vector<Key> keys;
    for (const auto& e : sc->tracer().Merged()) {
      keys.emplace_back(e.kind, e.name, e.lane, e.dur_ns, e.records,
                        e.bytes);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };

  SparkContext serial(TestCluster(1));
  serial.tracer().set_enabled(true);
  auto serial_rows = RunPipeline(&serial);

  SparkContext pooled(TestCluster(8));
  pooled.tracer().set_enabled(true);
  auto pooled_rows = RunPipeline(&pooled);

  EXPECT_EQ(serial_rows, pooled_rows);
  EXPECT_EQ(multiset_of(&serial), multiset_of(&pooled));
}

TEST(Tracer, ChromeTraceJsonParsesBack) {
  SparkContext sc(TestCluster(8));
  sc.tracer().set_enabled(true);
  RunPipeline(&sc);

  std::string json = sc.tracer().ToChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stage\""), std::string::npos);
}

TEST(Tracer, TimelineTextListsEveryEvent) {
  SparkContext sc(TestCluster(1));
  sc.tracer().set_enabled(true);
  RunPipeline(&sc);
  std::string text = sc.tracer().ToTimelineText();
  size_t lines = static_cast<size_t>(
      std::count(text.begin(), text.end(), '\n'));
  // Header (2 lines) + one line per event.
  EXPECT_EQ(lines, sc.tracer().event_count() + 2);
  EXPECT_NE(text.find("stage#"), std::string::npos);
  sc.tracer().Clear();
  EXPECT_EQ(sc.tracer().event_count(), 0u);
}

TEST(Tracer, ConcurrentDirectRecordsAllArrive) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.Record(SpanKind::kTask, "t", static_cast<uint64_t>(i), 1,
                      t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<size_t>(kThreads * kPerThread));
  // Merged() yields a totally ordered, thread-count-independent sequence.
  auto merged = tracer.Merged();
  ASSERT_EQ(merged.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].ts_ns, merged[i].ts_ns);
  }
}

}  // namespace
}  // namespace rdfspark::spark
