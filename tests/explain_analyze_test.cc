// EXPLAIN ANALYZE tests.
//
// Three properties are covered:
//  1. Golden outputs: the fully annotated plan (estimates, actuals,
//     estimate error, per-node counters) is pinned verbatim for three
//     engines x three LUBM shapes. Regenerate with
//
//       RDFSPARK_PRINT_ANALYZE=1 ./explain_analyze_test
//
//     and paste the emitted table between the GOLDEN_ANALYZE markers.
//  2. Determinism: for every engine (all nine systems, all four hybrid
//     modes) and every shape, the rendered EXPLAIN ANALYZE text is
//     bit-identical between executor_threads=1 and executor_threads=8.
//     Actuals are commutative sums over the charge multiset, so threading
//     must not leak into them.
//  3. Consistency: the root's actual row count equals the row count a
//     plain Execute() of the same query returns.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "systems/engine.h"
#include "systems/haqwa.h"
#include "systems/hybrid.h"
#include "systems/s2rdf.h"
#include "systems/sparqlgx.h"

namespace rdfspark::systems {
namespace {

using spark::ClusterConfig;
using spark::SparkContext;

ClusterConfig SmallCluster(int executor_threads = 1) {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  cfg.executor_threads = executor_threads;
  return cfg;
}

/// Same dataset as plan_explain_test: one small LUBM university.
const rdf::TripleStore& Dataset() {
  static rdf::TripleStore* store = [] {
    auto* s = new rdf::TripleStore();
    rdf::LubmConfig cfg;
    cfg.num_universities = 1;
    cfg.departments_per_university = 3;
    cfg.professors_per_department = 4;
    cfg.students_per_department = 20;
    cfg.courses_per_department = 5;
    s->AddAll(rdf::GenerateLubm(cfg));
    s->Dedupe();
    return s;
  }();
  return *store;
}

struct ShapeQuery {
  const char* label;
  std::string text;
};

std::vector<ShapeQuery> ShapeQueries() {
  return {
      {"star", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3)},
      {"chain", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)},
      {"snowflake", rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake)},
  };
}

struct EngineFactory {
  std::string name;
  std::function<std::unique_ptr<RdfQueryEngine>(SparkContext*)> make;
};

/// All nine systems; Hybrid once per mode, like plan_explain_test.
std::vector<EngineFactory> Factories() {
  std::vector<EngineFactory> out;
  for (auto mode :
       {HybridMode::kSparkSqlNaive, HybridMode::kRddPartitioned,
        HybridMode::kDataFrameAuto, HybridMode::kHybrid}) {
    std::string name = std::string("Hybrid_") + HybridModeName(mode);
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    out.push_back({name, [mode](SparkContext* sc) {
                     HybridEngine::Options opts;
                     opts.mode = mode;
                     return std::make_unique<HybridEngine>(sc, opts);
                   }});
  }
  SparkContext probe(SmallCluster());
  for (auto& engine : MakeAllEngines(&probe)) {
    std::string name = engine->traits().name;
    if (name.rfind("Hybrid", 0) == 0) continue;  // covered per-mode above
    // Recreate by traits-name via MakeAllEngines on the target context.
    out.push_back({name, [name](SparkContext* sc) {
                     for (auto& e : MakeAllEngines(sc)) {
                       if (e->traits().name == name) return std::move(e);
                     }
                     return std::unique_ptr<RdfQueryEngine>();
                   }});
  }
  return out;
}

const std::map<std::string, std::string>& GoldenAnalyzes() {
  static const std::map<std::string, std::string>* goldens =
      new std::map<std::string, std::string>{
          // GOLDEN_ANALYZE_BEGIN
          {"HAQWA|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=? act=12 err=-) tasks=8 busy=0.808ms
  LocalStarMatch [subject-star ?x (3 patterns)] (est=12 act=12 err=1.00x) busy=0.030ms
)PLAN"},
          {"HAQWA|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=? act=15 err=-) tasks=8 busy=0.810ms
  PartitionedHashJoin [on ?v1 (re-key)] (est=? act=15 err=-) cmp=17 shuf=22/2048B rmt=1464B reads=L6/R16 tasks=32 busy=3.220ms
    PartitionedHashJoin [on ?v2] (est=? act=12 err=-) cmp=12 shuf=11/1084B rmt=460B reads=L6/R5 tasks=32 busy=3.209ms
      LocalStarMatch [subject-star ?v2 (1 pattern)] (est=3 act=3 err=1.00x) busy=0.030ms
      LocalStarMatch [subject-star ?v1 (1 pattern)] (est=12 act=12 err=1.00x) busy=0.030ms
    LocalStarMatch [subject-star ?v0 (1 pattern)] (est=15 act=15 err=1.00x) busy=0.030ms
)PLAN"},
          {"HAQWA|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=? act=15 err=-) tasks=8 busy=0.812ms
  PartitionedHashJoin [on ?p (re-key)] (est=? act=15 err=-) cmp=17 shuf=22/2480B rmt=1768B reads=L6/R16 tasks=32 busy=3.223ms
    PartitionedHashJoin [on ?d] (est=? act=12 err=-) cmp=12 shuf=11/1324B rmt=556B reads=L6/R5 tasks=32 busy=3.210ms
      LocalStarMatch [subject-star ?d (1 pattern)] (est=3 act=3 err=1.00x) busy=0.030ms
      LocalStarMatch [subject-star ?p (2 patterns)] (est=12 act=12 err=1.00x) busy=0.030ms
    LocalStarMatch [subject-star ?x (3 patterns)] (est=15 act=15 err=1.00x) busy=0.030ms
)PLAN"},
          {"SPARQLGX|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=? act=12 err=-) tasks=2 busy=0.204ms
  PartitionedHashJoin [on ?x] (est=? act=12 err=-) cmp=12 shuf=6/4568B rmt=2236B reads=L3/R3 tasks=7 busy=0.724ms
    PartitionedHashJoin [on ?x] (est=? act=12 err=-) cmp=12 shuf=2/808B reads=L2/R0 tasks=4 busy=0.401ms
      PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13 act=12 err=0.92x) busy=0.001ms
      PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e .] (est=13 act=12 err=0.92x) busy=0.001ms
    PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#name> ?n .] (est=128 act=127 err=0.99x) busy=0.006ms
)PLAN"},
          {"SPARQLGX|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=? act=15 err=-) tasks=1 busy=0.105ms
  PartitionedHashJoin [on ?v1] (est=? act=15 err=-) cmp=17 shuf=2/904B reads=L2/R0 tasks=4 busy=0.401ms
    PartitionedHashJoin [on ?v2] (est=? act=12 err=-) cmp=12 shuf=2/520B reads=L2/R0 tasks=4 busy=0.401ms
      PatternScan [vp ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 .] (est=4 act=3 err=0.75x) busy=0.000ms
      PatternScan [vp ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 .] (est=13 act=12 err=0.92x) busy=0.001ms
    PatternScan [vp ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 .] (est=16 act=15 err=0.94x) busy=0.001ms
)PLAN"},
          {"SPARQLGX|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=? act=15 err=-) tasks=2 busy=0.208ms
  PartitionedHashJoin [on ?p] (est=? act=15 err=-) cmp=15 shuf=8/6976B rmt=3536B reads=L4/R4 tasks=8 busy=0.837ms
    PartitionedHashJoin [on ?x] (est=? act=15 err=-) cmp=15 shuf=4/3680B rmt=1864B reads=L2/R2 tasks=7 busy=0.720ms
      PartitionedHashJoin [on ?d] (est=? act=15 err=-) cmp=15 shuf=3/924B rmt=164B reads=L2/R1 tasks=7 busy=0.702ms
        PartitionedHashJoin [on ?p] (est=? act=15 err=-) cmp=15 shuf=6/1416B rmt=540B reads=L3/R3 tasks=7 busy=0.707ms
          PartitionedHashJoin [on ?x] (est=? act=15 err=-) cmp=15 shuf=6/1560B rmt=828B reads=L3/R3 tasks=7 busy=0.710ms
            PatternScan [vp ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lubm.example.org/univ-bench.owl#GraduateStudent> .] (est=2 act=15 err=7.50x) busy=0.006ms
            PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p .] (est=16 act=15 err=0.94x) busy=0.001ms
          PatternScan [vp ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13 act=12 err=0.92x) busy=0.001ms
        PatternScan [vp ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u .] (est=4 act=3 err=0.75x) busy=0.000ms
      PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm .] (est=61 act=60 err=0.98x) busy=0.003ms
    PatternScan [vp ?p <http://lubm.example.org/univ-bench.owl#name> ?pn .] (est=128 act=127 err=0.99x) busy=0.006ms
)PLAN"},
          {"S2RDF|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=? act=12 err=-) cmp=24 bcast=1296B tasks=4 busy=0.407ms
  PartitionedHashJoin [on t2.s = t0.s] (est=? act=? err=-)
    PartitionedHashJoin [on t1.s = t0.s] (est=? act=? err=-)
      PatternScan [vp vp_p23 t0] (est=12 act=? err=-)
      PatternScan [extvp extvp_ss_p3_p25 t1] (est=12 act=? err=-)
    PatternScan [vp vp_p25 t2] (est=12 act=? err=-)
)PLAN"},
          {"S2RDF|chain",
           R"PLAN(Project [?v2 ?v3 ?v1 ?v0] (est=? act=15 err=-) cmp=29 bcast=1458B tasks=4 busy=0.408ms
  PartitionedHashJoin [on t2.o = t1.s] (est=? act=? err=-)
    PartitionedHashJoin [on t1.o = t0.s] (est=? act=? err=-)
      PatternScan [vp vp_p7 t0] (est=3 act=? err=-)
      PatternScan [vp vp_p23 t1] (est=12 act=? err=-)
    PatternScan [vp vp_p64 t2] (est=15 act=? err=-)
)PLAN"},
          {"S2RDF|snowflake",
           R"PLAN(Project [?x ?d ?u ?p ?pn ?dm] (est=? act=15 err=-) cmp=75 bcast=2970B tasks=9 busy=0.915ms
  PartitionedHashJoin [on t5.s = t0.s AND t5.o = t2.s] (est=? act=? err=-)
    PartitionedHashJoin [on t4.s = t0.s] (est=? act=? err=-)
      PartitionedHashJoin [on t3.s = t2.s AND t3.o = t1.s] (est=? act=? err=-)
        CartesianProduct [1 = 1] (est=? act=? err=-)
          CartesianProduct [1 = 1] (est=? act=? err=-)
            PatternScan [extvp extvp_ss_p1_p64 t0] (est=15 act=? err=-)
            PatternScan [vp vp_p7 t1] (est=3 act=? err=-)
          PatternScan [extvp extvp_so_p3_p64 t2] (est=10 act=? err=-)
        PatternScan [vp vp_p23 t3] (est=12 act=? err=-)
      PatternScan [extvp extvp_ss_p60_p64 t4] (est=15 act=? err=-)
    PatternScan [vp vp_p64 t5] (est=15 act=? err=-)
)PLAN"},
          // GOLDEN_ANALYZE_END
      };
  return *goldens;
}

/// The three pinned engines: one locality-first system, one VP store, one
/// ExtVP store — together they exercise star matches, partitioned joins
/// and both scan flavors.
std::vector<EngineFactory> GoldenFactories() {
  std::vector<EngineFactory> out;
  out.push_back({"HAQWA", [](SparkContext* sc) {
                   return std::make_unique<HaqwaEngine>(sc);
                 }});
  out.push_back({"SPARQLGX", [](SparkContext* sc) {
                   return std::make_unique<SparqlgxEngine>(sc);
                 }});
  out.push_back({"S2RDF", [](SparkContext* sc) {
                   return std::make_unique<S2rdfEngine>(sc);
                 }});
  return out;
}

TEST(ExplainAnalyzeTest, MatchesGoldenOutputs) {
  bool print = std::getenv("RDFSPARK_PRINT_ANALYZE") != nullptr;
  const auto& goldens = GoldenAnalyzes();
  for (const auto& factory : GoldenFactories()) {
    for (const auto& q : ShapeQueries()) {
      // Fresh context per query: actuals accumulate per execution, so a
      // pinned output needs a pinned starting state.
      SparkContext sc(SmallCluster());
      auto engine = factory.make(&sc);
      ASSERT_TRUE(engine->Load(Dataset()).ok()) << factory.name;
      auto analyzed = engine->ExplainAnalyzeText(q.text);
      ASSERT_TRUE(analyzed.ok()) << factory.name << "/" << q.label << ": "
                                 << analyzed.status().ToString();
      std::string key = factory.name + "|" + q.label;
      if (print) {
        std::printf("          {\"%s\",\n           R\"PLAN(%s)PLAN\"},\n",
                    key.c_str(), analyzed->c_str());
        continue;
      }
      auto it = goldens.find(key);
      ASSERT_TRUE(it != goldens.end()) << "no golden for " << key;
      EXPECT_EQ(it->second, *analyzed) << key;
    }
  }
  if (!print) {
    EXPECT_EQ(goldens.size(),
              GoldenFactories().size() * ShapeQueries().size());
  }
}

/// Per-operator actuals are sums over the charge multiset, which is fixed
/// by the plan — not by how tasks interleave. The rendered text must be
/// bit-identical between serial and pooled execution for every engine and
/// every shape.
TEST(ExplainAnalyzeTest, ActualsAreBitIdenticalAcrossThreading) {
  for (const auto& factory : Factories()) {
    for (const auto& q : ShapeQueries()) {
      std::string serial;
      std::string pooled;
      for (auto [threads, out] :
           {std::pair<int, std::string*>{1, &serial}, {8, &pooled}}) {
        SparkContext sc(SmallCluster(threads));
        auto engine = factory.make(&sc);
        ASSERT_TRUE(engine != nullptr) << factory.name;
        ASSERT_TRUE(engine->Load(Dataset()).ok()) << factory.name;
        auto analyzed = engine->ExplainAnalyzeText(q.text);
        ASSERT_TRUE(analyzed.ok())
            << factory.name << "/" << q.label << ": "
            << analyzed.status().ToString();
        *out = *analyzed;
      }
      EXPECT_EQ(serial, pooled) << factory.name << "/" << q.label;
    }
  }
}

/// The analyzed root's actual cardinality is the query's result size.
TEST(ExplainAnalyzeTest, RootActualMatchesExecutedRowCount) {
  for (const auto& factory : GoldenFactories()) {
    for (const auto& q : ShapeQueries()) {
      SparkContext sc(SmallCluster());
      auto engine = factory.make(&sc);
      ASSERT_TRUE(engine->Load(Dataset()).ok()) << factory.name;
      auto executed = engine->ExecuteText(q.text);
      ASSERT_TRUE(executed.ok()) << factory.name << "/" << q.label;

      auto* bgp_engine = dynamic_cast<BgpEngineBase*>(engine.get());
      ASSERT_TRUE(bgp_engine != nullptr) << factory.name;
      auto root = bgp_engine->ExecuteAnalyzed(q.text);
      ASSERT_TRUE(root.ok()) << factory.name << "/" << q.label;
      ASSERT_TRUE((*root)->actuals != nullptr) << factory.name;
      EXPECT_TRUE((*root)->actuals->rows_known) << factory.name;
      EXPECT_EQ((*root)->actuals->rows_out, executed->num_rows())
          << factory.name << "/" << q.label;
    }
  }
}

/// Engines outside the shared plan layer refuse EXPLAIN ANALYZE with a
/// proper Unsupported status rather than returning garbage.
TEST(ExplainAnalyzeTest, UnplannedQueriesReportErrors) {
  SparkContext sc(SmallCluster());
  HaqwaEngine engine(&sc);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  auto bad = engine.ExplainAnalyzeText("not sparql at all");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace rdfspark::systems
