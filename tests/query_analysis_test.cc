#include "sparql/analysis.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sparql/parser.h"

namespace rdfspark::sparql {
namespace {

using systems::plan::Diagnostic;
using systems::plan::Severity;

std::vector<Diagnostic> Analyze(const std::string& text,
                                QueryAnalysisOptions options = {}) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString() << " for: " << text;
  return AnalyzeQuery(*q, options);
}

int CountRule(const std::vector<Diagnostic>& ds, const std::string& rule) {
  int n = 0;
  for (const auto& d : ds) n += d.rule == rule;
  return n;
}

const Diagnostic* FindRule(const std::vector<Diagnostic>& ds,
                           const std::string& rule) {
  for (const auto& d : ds) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------- QA001

TEST(Qa001Test, ProjectedNeverBoundIsError) {
  auto ds = Analyze("SELECT ?ghost WHERE { ?s <http://p> ?o }");
  const auto* d = FindRule(ds, "QA001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->node_path, "select");
  EXPECT_NE(d->message.find("?ghost"), std::string::npos);
}

TEST(Qa001Test, ProjectedBoundIsClean) {
  auto ds = Analyze("SELECT ?s WHERE { ?s <http://p> ?o . "
                    "?s <http://q> ?o }");
  EXPECT_EQ(CountRule(ds, "QA001"), 0);
}

TEST(Qa001Test, SingleUseUnprojectedVarIsInfo) {
  auto ds = Analyze("SELECT ?s WHERE { ?s <http://p> ?o }");
  const auto* d = FindRule(ds, "QA001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kInfo);
  EXPECT_EQ(d->node_path, "where");
  EXPECT_NE(d->message.find("?o"), std::string::npos);
}

TEST(Qa001Test, SelectStarUsesEverything) {
  // '*' projects every variable; nothing is dead and nothing is missing.
  auto ds = Analyze("SELECT * WHERE { ?s <http://p> ?o }");
  EXPECT_EQ(CountRule(ds, "QA001"), 0);
}

TEST(Qa001Test, FilterUseKeepsVariableAlive) {
  auto ds = Analyze("SELECT ?s WHERE { ?s <http://age> ?a . "
                    "FILTER (?a > 3) }");
  EXPECT_EQ(CountRule(ds, "QA001"), 0);
}

TEST(Qa001Test, UnboundOrderKeyIsWarn) {
  auto ds = Analyze("SELECT ?s WHERE { ?s <http://p> ?s } ORDER BY ?nope");
  const auto* d = FindRule(ds, "QA001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_EQ(d->node_path, "order by");
}

TEST(Qa001Test, AggregateAliasIsAValidOrderKey) {
  auto ds = Analyze(
      "SELECT ?s (COUNT(?o) AS ?cnt) WHERE { ?s <http://p> ?o } "
      "GROUP BY ?s ORDER BY ?cnt");
  EXPECT_EQ(CountRule(ds, "QA001"), 0);
}

TEST(Qa001Test, UnboundGroupKeyIsError) {
  auto ds = Analyze(
      "SELECT (COUNT(?o) AS ?cnt) WHERE { ?s <http://p> ?o } "
      "GROUP BY ?nothing");
  const auto* d = FindRule(ds, "QA001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->node_path, "group by");
}

TEST(Qa001Test, ConstructTemplateVarNeverBoundIsError) {
  auto ds = Analyze(
      "CONSTRUCT { ?s <http://made> ?ghost } WHERE { ?s <http://p> ?o }");
  bool found = false;
  for (const auto& d : ds) {
    if (d.rule == "QA001" && d.node_path == "construct") {
      found = true;
      EXPECT_EQ(d.severity, Severity::kError);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------- QA002

TEST(Qa002Test, ContradictoryEqualitiesAreError) {
  auto ds = Analyze(
      "SELECT ?s WHERE { ?s <http://age> ?a . "
      "FILTER (?a = 3 && ?a = 5) }");
  const auto* d = FindRule(ds, "QA002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("unsatisfiable"), std::string::npos);
}

TEST(Qa002Test, EmptyNumericIntervalIsError) {
  auto ds = Analyze(
      "SELECT ?s WHERE { ?s <http://age> ?a . "
      "FILTER (?a > 10) FILTER (?a < 5) }");
  const auto* d = FindRule(ds, "QA002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(Qa002Test, FlippedOperandOrderStillDetected) {
  // "5 > ?a" normalizes to "?a < 5", contradicting "?a > 10".
  auto ds = Analyze(
      "SELECT ?s WHERE { ?s <http://age> ?a . "
      "FILTER (?a > 10 && 5 > ?a) }");
  EXPECT_EQ(CountRule(ds, "QA002"), 1);
}

TEST(Qa002Test, SatisfiableRangeIsClean) {
  auto ds = Analyze(
      "SELECT ?s WHERE { ?s <http://age> ?a . "
      "FILTER (?a > 3 && ?a < 9) }");
  EXPECT_EQ(CountRule(ds, "QA002"), 0);
}

TEST(Qa002Test, TouchingClosedBoundsAreSatisfiable) {
  // ?a >= 5 && ?a <= 5 admits exactly 5 — not a contradiction.
  auto ds = Analyze(
      "SELECT ?s WHERE { ?s <http://age> ?a . "
      "FILTER (?a >= 5 && ?a <= 5) }");
  EXPECT_EQ(CountRule(ds, "QA002"), 0);
}

TEST(Qa002Test, TouchingStrictBoundIsContradiction) {
  auto ds = Analyze(
      "SELECT ?s WHERE { ?s <http://age> ?a . "
      "FILTER (?a > 5 && ?a <= 5) }");
  EXPECT_EQ(CountRule(ds, "QA002"), 1);
}

TEST(Qa002Test, UnboundFilterVarAtTopLevelIsError) {
  auto ds = Analyze(
      "SELECT ?s WHERE { ?s <http://p> ?o . FILTER (?nope > 3) }");
  const auto* d = FindRule(ds, "QA002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("?nope"), std::string::npos);
}

TEST(Qa002Test, UnboundFilterVarUnderOrIsWarn) {
  // The error can be masked by the other disjunct, so only WARN.
  auto ds = Analyze(
      "SELECT ?s WHERE { ?s <http://age> ?a . "
      "FILTER (?a > 3 || ?nope > 3) }");
  const auto* d = FindRule(ds, "QA002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarn);
}

TEST(Qa002Test, BoundGuardIsNotAComparisonRef) {
  // BOUND(?m) is defined for unbound variables — the idiomatic negation
  // pattern must stay clean.
  auto ds = Analyze(
      "SELECT ?x WHERE { ?x <http://knows> ?y . "
      "OPTIONAL { ?x <http://mail> ?m } FILTER (!BOUND(?m)) }");
  EXPECT_EQ(CountRule(ds, "QA002"), 0);
}

TEST(Qa002Test, ContradictionInsideOptionalIsWarn) {
  auto ds = Analyze(
      "SELECT ?x WHERE { ?x <http://knows> ?y . "
      "OPTIONAL { ?x <http://age> ?a . FILTER (?a = 3 && ?a = 5) } }");
  const auto* d = FindRule(ds, "QA002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_NE(d->node_path.find("optional"), std::string::npos);
}

// ---------------------------------------------------------------- QA003

TEST(Qa003Test, OptionalSharingOnlyWithSiblingOptionalIsWarn) {
  // ?m is not bound by the mandatory part, but the second optional also
  // uses it: the classic non-well-designed pattern.
  auto ds = Analyze(
      "SELECT ?x WHERE { ?x <http://knows> ?y . "
      "OPTIONAL { ?x <http://mail> ?m } "
      "OPTIONAL { ?y <http://mail> ?m } }");
  EXPECT_EQ(CountRule(ds, "QA003"), 2);
  const auto* d = FindRule(ds, "QA003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_NE(d->message.find("well-designed"), std::string::npos);
}

TEST(Qa003Test, OptionalOverMandatoryVarsIsClean) {
  auto ds = Analyze(
      "SELECT ?x WHERE { ?x <http://knows> ?y . "
      "OPTIONAL { ?x <http://mail> ?m } }");
  EXPECT_EQ(CountRule(ds, "QA003"), 0);
}

TEST(Qa003Test, NestedOptionalSeesAncestorBindings) {
  // The inner optional's ?y is bound by the outer optional's BGP, which is
  // part of its mandatory scope — well-designed.
  auto ds = Analyze(
      "SELECT ?x WHERE { ?x <http://knows> ?y . "
      "OPTIONAL { ?y <http://dept> ?d . "
      "OPTIONAL { ?d <http://head> ?h } } }");
  EXPECT_EQ(CountRule(ds, "QA003"), 0);
}

// ---------------------------------------------------------------- QA004

TEST(Qa004Test, DisconnectedPatternsAreWarn) {
  auto ds = Analyze(
      "SELECT ?a ?c WHERE { ?a <http://p> ?b . ?c <http://q> ?d }");
  const auto* d = FindRule(ds, "QA004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_NE(d->message.find("cartesian"), std::string::npos);
}

TEST(Qa004Test, ChainedPatternsAreConnected) {
  auto ds = Analyze(
      "SELECT ?a WHERE { ?a <http://p> ?b . ?b <http://q> ?c . "
      "?c <http://r> ?d }");
  EXPECT_EQ(CountRule(ds, "QA004"), 0);
}

TEST(Qa004Test, ThreeComponentsReported) {
  auto ds = Analyze(
      "SELECT ?a ?b ?c WHERE { ?a <http://p> ?x . ?b <http://q> ?y . "
      "?c <http://r> ?z }");
  const auto* d = FindRule(ds, "QA004");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("3 groups"), std::string::npos);
}

TEST(Qa004Test, GroundPatternsFormTheirOwnComponent) {
  // A fully ground pattern shares no variable with anything by definition.
  auto ds = Analyze(
      "SELECT ?a WHERE { ?a <http://p> ?b . "
      "<http://s> <http://q> <http://o> }");
  EXPECT_EQ(CountRule(ds, "QA004"), 1);
}

// ---------------------------------------------------------------- QA005

TEST(Qa005Test, PredicateVariableFiresOnlyOnVpLayouts) {
  const std::string text = "SELECT ?s ?p WHERE { ?s ?p <http://o> }";
  QueryAnalysisOptions vp;
  vp.vertical_partitioned = true;
  auto on_vp = Analyze(text, vp);
  const auto* d = FindRule(on_vp, "QA005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_NE(d->node_path.find("bgp[0]"), std::string::npos);

  auto on_triples = Analyze(text);  // default layout: rule is silent
  EXPECT_EQ(CountRule(on_triples, "QA005"), 0);
}

TEST(Qa005Test, BoundPredicatesAreCleanOnVp) {
  QueryAnalysisOptions vp;
  vp.vertical_partitioned = true;
  auto ds = Analyze("SELECT ?s WHERE { ?s <http://p> ?o }", vp);
  EXPECT_EQ(CountRule(ds, "QA005"), 0);
}

// ------------------------------------------------- corner cases & misc

TEST(QueryAnalysisTest, CleanQueryHasNoFindings) {
  auto ds = Analyze(
      "SELECT ?x ?y WHERE { ?x <http://advisor> ?y . "
      "?y <http://worksFor> ?x }");
  EXPECT_TRUE(ds.empty());
}

TEST(QueryAnalysisTest, FindingsAreDeterministic) {
  const std::string text =
      "SELECT ?ghost WHERE { ?a <http://p> ?b . ?c <http://q> ?d . "
      "FILTER (?e > 1) }";
  auto first = Analyze(text);
  auto second = Analyze(text);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].rule, second[i].rule);
    EXPECT_EQ(first[i].node_path, second[i].node_path);
    EXPECT_EQ(first[i].message, second[i].message);
  }
}

TEST(QueryAnalysisTest, EmptyWhereClauseParsesAndAnalyzes) {
  auto q = ParseQuery("ASK { }");
  if (!q.ok()) return;  // parser may reject empty groups; both are fine
  auto ds = AnalyzeQuery(*q, {});
  for (const auto& d : ds) EXPECT_NE(d.severity, Severity::kError);
}

TEST(QueryAnalysisTest, DuplicateTriplePatternsStayConnected) {
  // Duplicated patterns share all their variables; no QA004, and the
  // variables are multi-use so no dead-variable INFO either.
  auto ds = Analyze(
      "SELECT ?s WHERE { ?s <http://p> ?o . ?s <http://p> ?o }");
  EXPECT_EQ(CountRule(ds, "QA004"), 0);
  EXPECT_EQ(CountRule(ds, "QA001"), 0);
}

TEST(QueryAnalysisTest, UnionBranchesAnalyzedIndependently) {
  // The contradiction sits in one union branch: WARN, not ERROR, and the
  // path names the branch.
  auto ds = Analyze(
      "SELECT ?x WHERE { { ?x <http://age> ?a . "
      "FILTER (?a = 1 && ?a = 2) } UNION { ?x <http://name> ?n } }");
  const auto* d = FindRule(ds, "QA002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_NE(d->node_path.find("union"), std::string::npos);
}

}  // namespace
}  // namespace rdfspark::sparql
