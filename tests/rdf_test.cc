#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rdf/dictionary.h"
#include "rdf/generator.h"
#include "rdf/ntriples.h"
#include "rdf/rdfs.h"
#include "rdf/store.h"
#include "rdf/term.h"

namespace rdfspark::rdf {
namespace {

TEST(TermTest, UriSerialization) {
  Term t = Term::Uri("http://example.org/a");
  EXPECT_TRUE(t.is_uri());
  EXPECT_EQ(t.ToNTriples(), "<http://example.org/a>");
}

TEST(TermTest, PlainLiteralSerialization) {
  EXPECT_EQ(Term::Literal("hello").ToNTriples(), "\"hello\"");
}

TEST(TermTest, TypedLiteralSerialization) {
  Term t = Term::Literal("42", kXsdInteger);
  EXPECT_EQ(t.ToNTriples(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(TermTest, LangLiteralSerialization) {
  EXPECT_EQ(Term::Literal("bonjour", "", "fr").ToNTriples(),
            "\"bonjour\"@fr");
}

TEST(TermTest, BlankSerialization) {
  EXPECT_EQ(Term::Blank("b0").ToNTriples(), "_:b0");
}

TEST(TermTest, LiteralEscaping) {
  Term t = Term::Literal("line1\nline2 \"quoted\" back\\slash");
  EXPECT_EQ(t.ToNTriples(),
            "\"line1\\nline2 \\\"quoted\\\" back\\\\slash\"");
}

TEST(TermTest, AsNumberParsesNumericLiterals) {
  auto n = Term::Literal("3.5", kXsdDouble).AsNumber();
  ASSERT_TRUE(n.ok());
  EXPECT_DOUBLE_EQ(*n, 3.5);
  EXPECT_FALSE(Term::Literal("abc").AsNumber().ok());
  EXPECT_FALSE(Term::Uri("http://x").AsNumber().ok());
}

TEST(TermTest, OrderingAndEquality) {
  EXPECT_EQ(Term::Uri("a"), Term::Uri("a"));
  EXPECT_NE(Term::Uri("a"), Term::Blank("a"));
  EXPECT_NE(Term::Literal("a"), Term::Literal("a", kXsdInteger));
}

TEST(DictionaryTest, EncodeIsIdempotent) {
  Dictionary d;
  TermId a1 = d.Encode(Term::Uri("http://a"));
  TermId a2 = d.Encode(Term::Uri("http://a"));
  TermId b = d.Encode(Term::Uri("http://b"));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, DecodeRoundTrips) {
  Dictionary d;
  Term original = Term::Literal("x", kXsdInteger);
  TermId id = d.Encode(original);
  auto decoded = d.Decode(id);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(DictionaryTest, LookupWithoutInsert) {
  Dictionary d;
  EXPECT_FALSE(d.Lookup(Term::Uri("http://missing")).ok());
  d.Encode(Term::Uri("http://present"));
  EXPECT_TRUE(d.Lookup(Term::Uri("http://present")).ok());
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, DecodeOutOfRangeFails) {
  Dictionary d;
  EXPECT_EQ(d.Decode(99).status().code(), StatusCode::kOutOfRange);
}

TEST(NTriplesTest, ParsesSimpleTriple) {
  auto t = ParseNTriplesLine("<http://a> <http://p> <http://b> .");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->subject.lexical(), "http://a");
  EXPECT_EQ(t->predicate.lexical(), "http://p");
  EXPECT_EQ(t->object.lexical(), "http://b");
}

TEST(NTriplesTest, ParsesLiteralsWithDatatypeAndLang) {
  auto t1 = ParseNTriplesLine(
      "<http://a> <http://p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  EXPECT_EQ(t1->object.datatype(), kXsdInteger);

  auto t2 = ParseNTriplesLine("<http://a> <http://p> \"hi\"@en .");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->object.lang(), "en");
}

TEST(NTriplesTest, ParsesBlankNodesAndEscapes) {
  auto t = ParseNTriplesLine("_:b1 <http://p> \"a\\\"b\\nc\" .");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(t->subject.is_blank());
  EXPECT_EQ(t->object.lexical(), "a\"b\nc");
}

TEST(NTriplesTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseNTriplesLine("<http://a> <http://p> <http://b>").ok());
  EXPECT_FALSE(ParseNTriplesLine("\"lit\" <http://p> <http://b> .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<http://a> _:b <http://b> .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<http://a> <http://p> \"open .").ok());
  EXPECT_FALSE(ParseNTriplesLine("").ok());
}

TEST(NTriplesTest, DocumentSkipsCommentsAndReportsLineNumbers) {
  auto doc = ParseNTriplesDocument(
      "# a comment\n"
      "<http://a> <http://p> <http://b> .\n"
      "\n"
      "<http://c> <http://p> \"v\" .\n");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->size(), 2u);

  auto bad = ParseNTriplesDocument(
      "<http://a> <http://p> <http://b> .\nbogus line\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, WriteParseRoundTrip) {
  std::vector<Triple> triples = {
      {Term::Uri("http://a"), Term::Uri("http://p"), Term::Literal("x\ny")},
      {Term::Blank("n"), Term::Uri("http://q"),
       Term::Literal("7", kXsdInteger)},
  };
  auto parsed = ParseNTriplesDocument(WriteNTriples(triples));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, triples);
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.AddAll({
        {Term::Uri("http://s1"), Term::Uri("http://p1"), Term::Uri("http://o1")},
        {Term::Uri("http://s1"), Term::Uri("http://p2"), Term::Uri("http://o2")},
        {Term::Uri("http://s2"), Term::Uri("http://p1"), Term::Uri("http://o1")},
        {Term::Uri("http://s2"), Term::Uri("http://p1"), Term::Uri("http://o3")},
    });
  }
  TermId Id(const std::string& uri) {
    return store_.dictionary().Encode(Term::Uri(uri));
  }
  TripleStore store_;
};

TEST_F(StoreTest, MatchBySubject) {
  auto got = store_.Match({Id("http://s1"), std::nullopt, std::nullopt});
  EXPECT_EQ(got.size(), 2u);
}

TEST_F(StoreTest, MatchByPredicate) {
  EXPECT_EQ(store_.Match({std::nullopt, Id("http://p1"), std::nullopt}).size(),
            3u);
}

TEST_F(StoreTest, MatchFullyBound) {
  auto got =
      store_.Match({Id("http://s2"), Id("http://p1"), Id("http://o3")});
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(store_.Match({Id("http://s2"), Id("http://p2"), std::nullopt})
                .size(),
            0u);
}

TEST_F(StoreTest, MatchAllWildcards) {
  EXPECT_EQ(store_.Match({}).size(), 4u);
}

TEST_F(StoreTest, ContainsFindsExactTriple) {
  EncodedTriple t{Id("http://s1"), Id("http://p1"), Id("http://o1")};
  EXPECT_TRUE(store_.Contains(t));
  EncodedTriple missing{Id("http://s1"), Id("http://p1"), Id("http://o3")};
  EXPECT_FALSE(store_.Contains(missing));
}

TEST_F(StoreTest, DedupeRemovesDuplicates) {
  store_.AddEncoded(
      EncodedTriple{Id("http://s1"), Id("http://p1"), Id("http://o1")});
  EXPECT_EQ(store_.size(), 5u);
  store_.Dedupe();
  EXPECT_EQ(store_.size(), 4u);
  // Indexes still work after dedupe.
  EXPECT_EQ(store_.Match({Id("http://s1"), std::nullopt, std::nullopt}).size(),
            2u);
}

TEST_F(StoreTest, StatisticsCountDistincts) {
  auto stats = store_.ComputeStatistics();
  EXPECT_EQ(stats.num_triples, 4u);
  EXPECT_EQ(stats.distinct_subjects, 2u);
  EXPECT_EQ(stats.distinct_predicates, 2u);
  EXPECT_EQ(stats.distinct_objects, 3u);
  EXPECT_EQ(stats.predicate_count[Id("http://p1")], 3u);
  EXPECT_EQ(stats.predicate_distinct_subjects[Id("http://p1")], 2u);
  EXPECT_EQ(stats.predicate_distinct_objects[Id("http://p1")], 2u);
}

TEST(RdfsTest, SubClassTransitivityAndInstances) {
  TripleStore store;
  Term a = Term::Uri("http://A"), b = Term::Uri("http://B"),
       c = Term::Uri("http://C"), x = Term::Uri("http://x");
  store.AddAll({
      {a, Term::Uri(kRdfsSubClassOf), b},
      {b, Term::Uri(kRdfsSubClassOf), c},
      {x, Term::Uri(kRdfType), a},
  });
  auto result = MaterializeRdfs(&store);
  EXPECT_GE(result.inferred_triples, 3u);  // A sc C, x type B, x type C
  TermId xid = *store.dictionary().Lookup(x);
  TermId type = *store.dictionary().Lookup(Term::Uri(kRdfType));
  TermId cid = *store.dictionary().Lookup(c);
  EXPECT_TRUE(store.Contains(EncodedTriple{xid, type, cid}));
}

TEST(RdfsTest, SubPropertyDomainRange) {
  TripleStore store;
  Term head = Term::Uri("http://headOf"), works = Term::Uri("http://worksFor");
  Term person = Term::Uri("http://Person"), org = Term::Uri("http://Org");
  Term alice = Term::Uri("http://alice"), acme = Term::Uri("http://acme");
  store.AddAll({
      {head, Term::Uri(kRdfsSubPropertyOf), works},
      {works, Term::Uri(kRdfsDomain), person},
      {works, Term::Uri(kRdfsRange), org},
      {alice, head, acme},
  });
  MaterializeRdfs(&store);
  auto& dict = store.dictionary();
  TermId type = *dict.Lookup(Term::Uri(kRdfType));
  // rdfs7: alice worksFor acme; rdfs2/3 via worksFor: alice Person, acme Org.
  EXPECT_TRUE(store.Contains(EncodedTriple{*dict.Lookup(alice),
                                           *dict.Lookup(works),
                                           *dict.Lookup(acme)}));
  EXPECT_TRUE(store.Contains(
      EncodedTriple{*dict.Lookup(alice), type, *dict.Lookup(person)}));
  EXPECT_TRUE(store.Contains(
      EncodedTriple{*dict.Lookup(acme), type, *dict.Lookup(org)}));
}

TEST(RdfsTest, FixpointTerminatesOnCycles) {
  TripleStore store;
  Term a = Term::Uri("http://A"), b = Term::Uri("http://B");
  store.AddAll({
      {a, Term::Uri(kRdfsSubClassOf), b},
      {b, Term::Uri(kRdfsSubClassOf), a},
      {Term::Uri("http://x"), Term::Uri(kRdfType), a},
  });
  auto result = MaterializeRdfs(&store);
  EXPECT_LT(result.iterations, 10);
}

TEST(RdfsTest, LubmSchemaInfersProfessorSuperclass) {
  TripleStore store;
  store.AddAll(GenerateLubm(LubmConfig{}));
  store.AddAll(LubmSchema());
  uint64_t before = store.size();
  MaterializeRdfs(&store);
  EXPECT_GT(store.size(), before);
  auto& dict = store.dictionary();
  TermId type = *dict.Lookup(Term::Uri(kRdfType));
  TermId prof = *dict.Lookup(Term::Uri(std::string(kUbPrefix) + "Professor"));
  // Every FullProfessor instance must now also be typed Professor.
  auto profs = store.Match({std::nullopt, type, prof});
  EXPECT_GT(profs.size(), 0u);
}

TEST(GeneratorTest, LubmIsDeterministic) {
  LubmConfig cfg;
  auto a = GenerateLubm(cfg);
  auto b = GenerateLubm(cfg);
  EXPECT_EQ(a, b);
  cfg.seed = 43;
  EXPECT_NE(GenerateLubm(cfg), a);
}

TEST(GeneratorTest, LubmScalesWithUniversities) {
  LubmConfig small;
  small.num_universities = 1;
  LubmConfig big = small;
  big.num_universities = 3;
  EXPECT_GT(GenerateLubm(big).size(), 2 * GenerateLubm(small).size());
}

TEST(GeneratorTest, LubmHasExpectedShape) {
  TripleStore store;
  store.AddAll(GenerateLubm(LubmConfig{}));
  auto& dict = store.dictionary();
  TermId type = *dict.Lookup(Term::Uri(kRdfType));
  auto ub = [&](const char* local) {
    return *dict.Lookup(Term::Uri(std::string(kUbPrefix) + local));
  };
  // 4 departments, each with 6 professors and 40 students.
  EXPECT_EQ(store.Match({std::nullopt, type, ub("Department")}).size(), 4u);
  EXPECT_EQ(store.Match({std::nullopt, ub("worksFor"), std::nullopt}).size(),
            24u);
  EXPECT_EQ(store.Match({std::nullopt, ub("memberOf"), std::nullopt}).size(),
            160u);
  // Every grad student has an advisor.
  auto grads = store.Match({std::nullopt, type, ub("GraduateStudent")});
  for (const auto& g : grads) {
    EXPECT_EQ(store.Match({g.s, ub("advisor"), std::nullopt}).size(), 1u);
  }
}

TEST(GeneratorTest, WatdivZipfSkewsPopularity) {
  WatdivConfig cfg;
  cfg.num_users = 300;
  auto triples = GenerateWatdiv(cfg);
  TripleStore store;
  store.AddAll(triples);
  auto& dict = store.dictionary();
  TermId follows =
      *dict.Lookup(Term::Uri(std::string(kWdPrefix) + "follows"));
  // In-degree of user 0 (most popular under Zipf) should far exceed that of
  // the median user.
  TermId user0 = *dict.Lookup(Term::Uri(std::string(kWdPrefix) + "User0"));
  TermId user150 =
      *dict.Lookup(Term::Uri(std::string(kWdPrefix) + "User150"));
  auto in0 = store.Match({std::nullopt, follows, user0}).size();
  auto in150 = store.Match({std::nullopt, follows, user150}).size();
  EXPECT_GT(in0, in150 * 3);
}

TEST(GeneratorTest, ShapeQueriesAreDistinct) {
  std::set<std::string> texts;
  for (auto shape : {QueryShape::kStar, QueryShape::kLinear,
                     QueryShape::kSnowflake, QueryShape::kComplex}) {
    texts.insert(LubmShapeQuery(shape));
  }
  EXPECT_EQ(texts.size(), 4u);
  EXPECT_STREQ(QueryShapeName(QueryShape::kStar), "star");
  EXPECT_STREQ(QueryShapeName(QueryShape::kSnowflake), "snowflake");
}

TEST(GeneratorTest, StarQueryWidthIsClamped) {
  auto q2 = LubmShapeQuery(QueryShape::kStar, 2);
  auto q9 = LubmShapeQuery(QueryShape::kStar, 9);
  EXPECT_LT(q2.size(), q9.size());
  EXPECT_EQ(q9, LubmShapeQuery(QueryShape::kStar, 5));
}

}  // namespace
}  // namespace rdfspark::rdf
