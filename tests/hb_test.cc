// Tests for the Tier C happens-before race & determinism checker
// (spark/hb.h). The scenarios build fork/join structure directly with the
// RAII scopes, so every verdict here is a property of the declared
// structure — none of these tests depend on which thread ran what.

#include "spark/hb.h"

#include <atomic>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "spark/context.h"
#include "systems/plan/diagnostics.h"

namespace rdfspark::spark::hb {
namespace {

using systems::plan::Diagnostic;
using systems::plan::Severity;

/// Runs `body` inside an owned recorder window and returns the findings.
std::vector<Diagnostic> RunScenario(const std::function<void()>& body) {
  ScopedRaceCheck window(/*active=*/true);
  EXPECT_TRUE(window.owner()) << "another window is active";
  body();
  return window.Finish();
}

int CountRule(const std::vector<Diagnostic>& findings, const std::string& rule) {
  int n = 0;
  for (const auto& d : findings) {
    if (d.rule == rule) ++n;
  }
  return n;
}

/// Order-insensitive fingerprint of a findings list.
std::set<std::tuple<std::string, std::string, std::string>> Fingerprint(
    const std::vector<Diagnostic>& findings) {
  std::set<std::tuple<std::string, std::string, std::string>> out;
  for (const auto& d : findings) out.insert({d.rule, d.node_path, d.message});
  return out;
}

TEST(HbTest, SequentialAccessesOnOneThreadAreOrdered) {
  auto findings = RunScenario([] {
    ObjectId obj = DictionaryObject(9001);
    RecordAccess(obj, Access::kWrite, "hb_test.seq_first");
    RecordAccess(obj, Access::kRead, "hb_test.seq_second");
  });
  EXPECT_TRUE(findings.empty());
}

TEST(HbTest, TaskOrderedAgainstForkAndJoin) {
  // Driver write -> fork -> task write -> join -> driver read: every pair
  // is connected through the batch structure.
  auto findings = RunScenario([] {
    ObjectId obj = DictionaryObject(9002);
    RecordAccess(obj, Access::kWrite, "hb_test.before_fork");
    {
      BatchScope batch(1);
      TaskScope task(batch, 0);
      RecordAccess(obj, Access::kWrite, "hb_test.in_task");
    }
    RecordAccess(obj, Access::kRead, "hb_test.after_join");
  });
  EXPECT_TRUE(findings.empty());
}

TEST(HbTest, SiblingTaskConflictFiresRC001) {
  auto findings = RunScenario([] {
    ObjectId obj = DictionaryObject(9003);
    BatchScope batch(2);
    {
      TaskScope task(batch, 0);
      RecordAccess(obj, Access::kWrite, "hb_test.sib_a");
    }
    {
      TaskScope task(batch, 1);
      RecordAccess(obj, Access::kWrite, "hb_test.sib_b");
    }
  });
  ASSERT_EQ(CountRule(findings, "RC001"), 1);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].node_path, "dictionary#9003");
}

TEST(HbTest, CommonLockSuppressesTheRace) {
  static std::mutex mu;
  auto findings = RunScenario([] {
    ObjectId obj = DictionaryObject(9004);
    BatchScope batch(2);
    {
      TaskScope task(batch, 0);
      TrackedLock lock(mu);
      RecordAccess(obj, Access::kWrite, "hb_test.lock_a");
    }
    {
      TaskScope task(batch, 1);
      TrackedLock lock(mu);
      RecordAccess(obj, Access::kWrite, "hb_test.lock_b");
    }
  });
  EXPECT_TRUE(findings.empty());
}

TEST(HbTest, DistinctLocksDoNotSuppress) {
  static std::mutex mu_a;
  static std::mutex mu_b;
  auto findings = RunScenario([] {
    ObjectId obj = DictionaryObject(9005);
    BatchScope batch(2);
    {
      TaskScope task(batch, 0);
      TrackedLock lock(mu_a);
      RecordAccess(obj, Access::kWrite, "hb_test.lka");
    }
    {
      TaskScope task(batch, 1);
      TrackedLock lock(mu_b);
      RecordAccess(obj, Access::kWrite, "hb_test.lkb");
    }
  });
  EXPECT_EQ(CountRule(findings, "RC001"), 1);
}

TEST(HbTest, BothAtomicIsNeverAFinding) {
  auto findings = RunScenario([] {
    ObjectId obj = DictionaryObject(9006);
    BatchScope batch(2);
    {
      TaskScope task(batch, 0);
      RecordAccess(obj, Access::kAtomicWrite, "hb_test.at_a");
    }
    {
      TaskScope task(batch, 1);
      RecordAccess(obj, Access::kAtomicWrite, "hb_test.at_b");
    }
  });
  EXPECT_TRUE(findings.empty());
}

TEST(HbTest, PublishConsumeOrdersAcrossRoots) {
  // Roots are mutually unordered by default; a publish/consume pair is the
  // only edge connecting them here.
  auto findings = RunScenario([] {
    ObjectId obj = BroadcastObject(9007);
    {
      RootScope producer;
      RecordAccess(obj, Access::kWrite, "hb_test.pub_write");
      Publish(obj);
    }
    {
      RootScope consumer;
      Consume(obj);
      RecordAccess(obj, Access::kRead, "hb_test.pub_read");
    }
  });
  EXPECT_TRUE(findings.empty());
}

TEST(HbTest, MissingBarrierOnPublicationObjectFiresRC002) {
  auto findings = RunScenario([] {
    ObjectId obj = ShuffleObject(9008);
    {
      RootScope producer;
      RecordAccess(obj, Access::kWrite, "hb_test.nopub_write");
    }
    {
      RootScope consumer;
      Consume(obj);  // No-op: nothing was published.
      RecordAccess(obj, Access::kRead, "hb_test.nopub_read");
    }
  });
  ASSERT_EQ(CountRule(findings, "RC002"), 1);
  EXPECT_EQ(findings[0].severity, Severity::kError);
}

TEST(HbTest, EvictionAgainstPooledReadFiresRC003) {
  auto findings = RunScenario([] {
    ObjectId slot = CacheSlotObject(9009, 0);
    BatchScope batch(2);
    {
      TaskScope task(batch, 0);
      RecordAccess(slot, Access::kWrite, "hb_test.evict", kSiteEviction);
    }
    {
      TaskScope task(batch, 1);
      RecordAccess(slot, Access::kRead, "hb_test.pooled_read");
    }
  });
  ASSERT_EQ(CountRule(findings, "RC003"), 1);
  EXPECT_EQ(CountRule(findings, "RC001"), 0);
  EXPECT_EQ(findings[0].node_path, "rdd#9009.slot[0]");
}

TEST(HbTest, AccumulatorIgnoresLocksAndFiresDT001) {
  // A lock orders neither task; it only makes the writes atomic. The final
  // accumulator value still depends on completion order.
  static std::mutex mu;
  auto findings = RunScenario([] {
    ObjectId acc = AccumulatorObject(9010);
    BatchScope batch(2);
    {
      TaskScope task(batch, 0);
      TrackedLock lock(mu);
      RecordAccess(acc, Access::kWrite, "hb_test.acc_a");
    }
    {
      TaskScope task(batch, 1);
      TrackedLock lock(mu);
      RecordAccess(acc, Access::kWrite, "hb_test.acc_b");
    }
  });
  ASSERT_EQ(CountRule(findings, "DT001"), 1);
  EXPECT_EQ(CountRule(findings, "RC001"), 0);
  EXPECT_EQ(findings[0].severity, Severity::kError);
}

TEST(HbTest, CommutativeMergesNeverFire) {
  auto findings = RunScenario([] {
    ObjectId metrics = MetricsObject(9011);
    BatchScope batch(4);
    for (int i = 0; i < 4; ++i) {
      TaskScope task(batch, i);
      RecordMerge(metrics, "hb_test.counter_add", /*commutative=*/true);
    }
  });
  EXPECT_TRUE(findings.empty());
}

TEST(HbTest, NonCommutativeMergeFiresDT002) {
  auto findings = RunScenario([] {
    ObjectId obj = AccumulatorObject(9012);
    BatchScope batch(2);
    {
      TaskScope task(batch, 0);
      RecordMerge(obj, "hb_test.concat_a", /*commutative=*/false);
    }
    {
      TaskScope task(batch, 1);
      RecordMerge(obj, "hb_test.concat_b", /*commutative=*/false);
    }
  });
  EXPECT_EQ(CountRule(findings, "DT002"), 1);
}

TEST(HbTest, UnorderedContainerIterationFiresDT003) {
  auto findings = RunScenario([] {
    ObjectId obj = ContainerObject(9013);
    {
      BatchScope batch(2);
      {
        TaskScope task(batch, 0);
        RecordAccess(obj, Access::kWrite, "hb_test.insert_a");
      }
      {
        TaskScope task(batch, 1);
        RecordAccess(obj, Access::kWrite, "hb_test.insert_b");
      }
    }
    RecordUnorderedIteration(obj, "hb_test.iterate");
  });
  ASSERT_EQ(CountRule(findings, "DT003"), 1);
  EXPECT_EQ(findings[0].severity, Severity::kWarn);
}

TEST(HbTest, OrderedInsertsMakeIterationClean) {
  auto findings = RunScenario([] {
    ObjectId obj = ContainerObject(9014);
    RecordAccess(obj, Access::kWrite, "hb_test.ins_seq_a");
    RecordAccess(obj, Access::kWrite, "hb_test.ins_seq_b");
    RecordUnorderedIteration(obj, "hb_test.iter_seq");
  });
  EXPECT_TRUE(findings.empty());
}

TEST(HbTest, EventFreeBatchesContractAway) {
  // The lazy-segment property the SparkSQL-style plans rely on: a million
  // metric-only tasks must not materialize a million segments.
  ScopedRaceCheck window(/*active=*/true);
  ASSERT_TRUE(window.owner());
  ObjectId metrics = MetricsObject(9015);
  for (int b = 0; b < 1000; ++b) {
    BatchScope batch(4);
    for (int i = 0; i < 4; ++i) {
      TaskScope task(batch, i);
      RecordMerge(metrics, "hb_test.charge", /*commutative=*/true);
    }
  }
  EXPECT_LT(Recorder::Get().SegmentCountForTest(), 8u);
  EXPECT_LE(Recorder::Get().EventCountForTest(), 1u);
  EXPECT_TRUE(window.Finish().empty());
}

TEST(HbTest, FrozenDictionaryLookupsAreOrdered) {
  auto findings = RunScenario([] {
    rdf::Dictionary dict;
    auto id = dict.Encode(rdf::Term::Uri("http://example.org/frozen"));
    dict.Freeze();
    BatchScope batch(2);
    for (int i = 0; i < 2; ++i) {
      TaskScope task(batch, i);
      EXPECT_TRUE(dict.Lookup(rdf::Term::Uri("http://example.org/frozen")).ok());
      EXPECT_TRUE(dict.Decode(id).ok());
    }
  });
  EXPECT_TRUE(findings.empty());
}

TEST(HbTest, UnfrozenEncodeRacingLookupFiresRC001) {
  auto findings = RunScenario([] {
    rdf::Dictionary dict;
    dict.Encode(rdf::Term::Uri("http://example.org/seed"));
    BatchScope batch(2);
    {
      TaskScope task(batch, 0);
      dict.Encode(rdf::Term::Uri("http://example.org/late"));
    }
    {
      TaskScope task(batch, 1);
      (void)dict.Lookup(rdf::Term::Uri("http://example.org/seed"));
    }
  });
  EXPECT_GE(CountRule(findings, "RC001"), 1);
}

TEST(HbTest, VerdictsIdenticalAcrossRepeatRuns) {
  auto scenario = [] {
    ObjectId obj = DictionaryObject(9016);
    ObjectId slot = CacheSlotObject(9017, 3);
    BatchScope batch(3);
    {
      TaskScope task(batch, 0);
      RecordAccess(obj, Access::kWrite, "hb_test.rep_a");
      RecordAccess(slot, Access::kWrite, "hb_test.rep_evict", kSiteEviction);
    }
    {
      TaskScope task(batch, 1);
      RecordAccess(obj, Access::kWrite, "hb_test.rep_b");
      RecordAccess(slot, Access::kRead, "hb_test.rep_read");
    }
  };
  auto first = RunScenario(scenario);
  auto second = RunScenario(scenario);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].rule, second[i].rule);
    EXPECT_EQ(first[i].node_path, second[i].node_path);
    EXPECT_EQ(first[i].message, second[i].message);
  }
}

// The runtime probe drives real RDD machinery. The clean tree must stay
// silent and the verdicts must not depend on the executor pool size —
// that is the whole point of a structural checker. (Skipped under the
// mutation builds, where the probe is *supposed* to fire.)
#if !defined(RDFSPARK_MUTATE_NO_SLOT_LOCK) && \
    !defined(RDFSPARK_MUTATE_CACHED_PLAIN)

std::vector<Diagnostic> RunProbe(int executor_threads) {
  ClusterConfig config;
  config.num_executors = 4;
  config.executor_threads = executor_threads;
  SparkContext sc(config);
  ScopedRaceCheck window(/*active=*/true);
  EXPECT_TRUE(window.owner());
  RunRuntimeProbe(&sc);
  return window.Finish();
}

TEST(HbTest, RuntimeProbeCleanOnUnmutatedTree) {
  EXPECT_TRUE(RunProbe(/*executor_threads=*/1).empty());
}

TEST(HbTest, RuntimeProbeVerdictsIndependentOfThreadCount) {
  auto serial = RunProbe(/*executor_threads=*/1);
  auto pooled = RunProbe(/*executor_threads=*/4);
  EXPECT_EQ(Fingerprint(serial), Fingerprint(pooled));
}

#endif  // !RDFSPARK_MUTATE_*

}  // namespace
}  // namespace rdfspark::spark::hb
