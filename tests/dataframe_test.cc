#include "spark/sql/dataframe.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "spark/sql/session.h"

namespace rdfspark::spark::sql {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 4;
  return cfg;
}

Schema PeopleSchema() {
  return Schema{{Field{"name", DataType::kString},
                 Field{"age", DataType::kInt64},
                 Field{"city", DataType::kString}}};
}

std::vector<Row> PeopleRows() {
  return {
      {std::string("alice"), int64_t{30}, std::string("athens")},
      {std::string("bob"), int64_t{25}, std::string("berlin")},
      {std::string("carol"), int64_t{35}, std::string("athens")},
      {std::string("dave"), int64_t{28}, std::string("tampere")},
  };
}

TEST(DataFrameTest, FromRowsRoundTrips) {
  SparkContext sc(SmallCluster());
  auto df = DataFrame::FromRows(&sc, PeopleSchema(), PeopleRows(), 2);
  EXPECT_EQ(df.NumRows(), 4u);
  EXPECT_EQ(df.num_partitions(), 2);
  auto rows = df.Collect();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(std::get<std::string>(rows[0][0]), "alice");
  EXPECT_EQ(std::get<int64_t>(rows[1][1]), 25);
}

TEST(DataFrameTest, SelectReordersColumns) {
  SparkContext sc(SmallCluster());
  auto df = DataFrame::FromRows(&sc, PeopleSchema(), PeopleRows(), 2);
  auto sel = df.Select({"age", "name"});
  EXPECT_EQ(sel.schema().field(0).name, "age");
  EXPECT_EQ(sel.schema().field(0).type, DataType::kInt64);
  auto rows = sel.Collect();
  EXPECT_EQ(std::get<int64_t>(rows[0][0]), 30);
}

TEST(DataFrameTest, FilterWithExprDsl) {
  SparkContext sc(SmallCluster());
  auto df = DataFrame::FromRows(&sc, PeopleSchema(), PeopleRows(), 2);
  auto young = df.Filter(Col("age") < Lit(30) && Col("city") != Lit("berlin"));
  EXPECT_EQ(young.NumRows(), 1u);  // dave
  EXPECT_EQ(std::get<std::string>(young.Collect()[0][0]), "dave");
}

TEST(DataFrameTest, SelectExprsComputesArithmetic) {
  SparkContext sc(SmallCluster());
  auto df = DataFrame::FromRows(&sc, PeopleSchema(), PeopleRows(), 2);
  auto doubled =
      df.SelectExprs({{Col("age") * Lit(2), "age2"}, {Col("name"), "name"}});
  auto rows = doubled.Collect();
  EXPECT_EQ(std::get<int64_t>(rows[0][0]), 60);
}

TEST(DataFrameTest, DictionaryEncodingShrinksRepeatedStrings) {
  SparkContext sc(SmallCluster());
  // 10k rows of a highly repetitive string column.
  std::vector<Row> rows;
  for (int i = 0; i < 10000; ++i) {
    rows.push_back({std::string("repeated-city-name-") +
                        std::to_string(i % 5),
                    int64_t{i}});
  }
  Schema schema{{Field{"city", DataType::kString},
                 Field{"id", DataType::kInt64}}};
  auto df = DataFrame::FromRows(&sc, schema, rows, 4);
  uint64_t columnar = df.MemoryFootprint();
  uint64_t row_based = 0;
  for (const Row& r : rows) row_based += EstimateSize(r);
  // The columnar layout must be several times smaller (paper: "up to 10
  // times larger datasets than RDD can be managed").
  EXPECT_LT(columnar * 2, row_based);
}

TEST(DataFrameTest, UnionDistinctSortLimit) {
  SparkContext sc(SmallCluster());
  auto df = DataFrame::FromRows(&sc, PeopleSchema(), PeopleRows(), 2);
  auto unioned = df.Union(df);
  EXPECT_EQ(unioned.NumRows(), 8u);
  auto distinct = unioned.Distinct();
  EXPECT_EQ(distinct.NumRows(), 4u);
  auto sorted = distinct.Sort({{"age", true}});
  auto rows = sorted.Collect();
  EXPECT_EQ(std::get<std::string>(rows[0][0]), "bob");
  EXPECT_EQ(std::get<std::string>(rows[3][0]), "carol");
  EXPECT_EQ(sorted.Limit(2).NumRows(), 2u);
}

TEST(DataFrameTest, GroupByAggregates) {
  SparkContext sc(SmallCluster());
  auto df = DataFrame::FromRows(&sc, PeopleSchema(), PeopleRows(), 2);
  auto agg = df.GroupByAgg(
      {"city"}, {AggSpec{AggOp::kCount, "", "n"},
                 AggSpec{AggOp::kAvg, "age", "avg_age"},
                 AggSpec{AggOp::kMax, "age", "max_age"}});
  auto rows = agg.Collect();
  ASSERT_EQ(rows.size(), 3u);
  for (const Row& r : rows) {
    if (std::get<std::string>(r[0]) == "athens") {
      EXPECT_EQ(std::get<int64_t>(r[1]), 2);
      EXPECT_DOUBLE_EQ(std::get<double>(r[2]), 32.5);
      EXPECT_EQ(std::get<int64_t>(r[3]), 35);
    }
  }
}

Schema KvSchema(const std::string& k, const std::string& v) {
  return Schema{{Field{k, DataType::kInt64}, Field{v, DataType::kString}}};
}

TEST(DataFrameJoinTest, InnerJoinMatches) {
  SparkContext sc(SmallCluster());
  auto left = DataFrame::FromRows(
      &sc, KvSchema("id", "l"),
      {{int64_t{1}, std::string("a")}, {int64_t{2}, std::string("b")}}, 2);
  auto right = DataFrame::FromRows(
      &sc, KvSchema("rid", "r"),
      {{int64_t{2}, std::string("x")}, {int64_t{3}, std::string("y")}}, 2);
  auto joined = left.Join(right, {{"id", "rid"}});
  auto rows = joined.Collect();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rows[0][0]), 2);
  EXPECT_EQ(std::get<std::string>(rows[0][3]), "x");
}

TEST(DataFrameJoinTest, LeftOuterJoinPadsNulls) {
  SparkContext sc(SmallCluster());
  auto left = DataFrame::FromRows(
      &sc, KvSchema("id", "l"),
      {{int64_t{1}, std::string("a")}, {int64_t{2}, std::string("b")}}, 2);
  auto right = DataFrame::FromRows(&sc, KvSchema("rid", "r"),
                                   {{int64_t{2}, std::string("x")}}, 2);
  auto joined = left.Join(right, {{"id", "rid"}}, JoinType::kLeftOuter);
  auto rows = joined.Collect();
  ASSERT_EQ(rows.size(), 2u);
  int nulls = 0;
  for (const Row& r : rows) {
    if (IsNull(r[3])) ++nulls;
  }
  EXPECT_EQ(nulls, 1);
}

TEST(DataFrameJoinTest, SmallSideIsBroadcastAutomatically) {
  ClusterConfig cfg = SmallCluster();
  cfg.broadcast_threshold_bytes = 1 << 20;
  SparkContext sc(cfg);
  std::vector<Row> big;
  for (int i = 0; i < 2000; ++i) {
    big.push_back({int64_t{i % 100}, std::string("v") + std::to_string(i)});
  }
  auto left = DataFrame::FromRows(&sc, KvSchema("id", "l"), big, 4);
  auto right = DataFrame::FromRows(&sc, KvSchema("rid", "r"),
                                   {{int64_t{7}, std::string("x")}}, 1);
  auto before = sc.metrics();
  auto joined = left.Join(right, {{"id", "rid"}});
  auto delta = sc.metrics() - before;
  EXPECT_EQ(joined.NumRows(), 20u);
  EXPECT_EQ(delta.shuffle_records, 0u) << "broadcast join must not shuffle";
  EXPECT_GT(delta.broadcast_bytes, 0u);
}

TEST(DataFrameJoinTest, LargeSidesShuffleHashJoin) {
  ClusterConfig cfg = SmallCluster();
  cfg.broadcast_threshold_bytes = 64;  // force shuffle
  SparkContext sc(cfg);
  std::vector<Row> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back({int64_t{i}, std::string("a")});
    b.push_back({int64_t{i}, std::string("b")});
  }
  auto left = DataFrame::FromRows(&sc, KvSchema("id", "l"), a, 4);
  auto right = DataFrame::FromRows(&sc, KvSchema("rid", "r"), b, 4);
  auto before = sc.metrics();
  auto joined = left.Join(right, {{"id", "rid"}});
  auto delta = sc.metrics() - before;
  EXPECT_EQ(joined.NumRows(), 500u);
  EXPECT_EQ(delta.shuffle_records, 1000u);  // both sides shuffled
  EXPECT_EQ(delta.broadcast_bytes, 0u);
}

TEST(DataFrameJoinTest, PrePartitionedJoinSkipsShuffle) {
  ClusterConfig cfg = SmallCluster();
  cfg.broadcast_threshold_bytes = 64;
  SparkContext sc(cfg);
  std::vector<Row> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back({int64_t{i}, std::string("a")});
    b.push_back({int64_t{i}, std::string("b")});
  }
  auto left =
      DataFrame::FromRows(&sc, KvSchema("id", "l"), a, 4).PartitionBy({"id"});
  auto right = DataFrame::FromRows(&sc, KvSchema("rid", "r"), b, 4)
                   .PartitionBy({"rid"});
  auto before = sc.metrics();
  auto joined = left.Join(right, {{"id", "rid"}});
  auto delta = sc.metrics() - before;
  EXPECT_EQ(joined.NumRows(), 300u);
  EXPECT_EQ(delta.shuffle_records, 0u);
}

TEST(DataFrameJoinTest, CartesianStrategyExplodesComparisons) {
  SparkContext sc(SmallCluster());
  std::vector<Row> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back({int64_t{i}, std::string("a")});
    b.push_back({int64_t{i}, std::string("b")});
  }
  auto left = DataFrame::FromRows(&sc, KvSchema("id", "l"), a, 2);
  auto right = DataFrame::FromRows(&sc, KvSchema("rid", "r"), b, 2);

  auto before = sc.metrics();
  auto naive =
      left.Join(right, {{"id", "rid"}}, JoinType::kInner,
                JoinStrategy::kCartesian);
  auto naive_delta = sc.metrics() - before;
  EXPECT_EQ(naive.NumRows(), 50u);
  EXPECT_GE(naive_delta.join_comparisons, 2500u);

  before = sc.metrics();
  auto smart = left.Join(right, {{"id", "rid"}});
  auto smart_delta = sc.metrics() - before;
  EXPECT_EQ(smart.NumRows(), 50u);
  EXPECT_LT(smart_delta.join_comparisons, 200u);
}

TEST(DataFrameEdgeTest, NullKeysNeverJoin) {
  SparkContext sc(SmallCluster());
  Schema kv{{Field{"k", DataType::kInt64}, Field{"v", DataType::kString}}};
  auto left = DataFrame::FromRows(
      &sc, kv, {{Value{}, std::string("null-key")},
                {int64_t{1}, std::string("one")}},
      2);
  auto right = DataFrame::FromRows(
      &sc, Schema{{Field{"rk", DataType::kInt64},
                   Field{"rv", DataType::kString}}},
      {{Value{}, std::string("null-too")}, {int64_t{1}, std::string("uno")}},
      2);
  for (auto strategy :
       {JoinStrategy::kBroadcast, JoinStrategy::kShuffleHash}) {
    auto joined =
        left.Join(right, {{"k", "rk"}}, JoinType::kInner, strategy);
    EXPECT_EQ(joined.NumRows(), 1u) << "SQL NULLs must not match";
  }
  // Left-outer keeps the null-key row, padded.
  auto outer = left.Join(right, {{"k", "rk"}}, JoinType::kLeftOuter);
  EXPECT_EQ(outer.NumRows(), 2u);
}

TEST(DataFrameEdgeTest, NullsInFiltersAndAggregates) {
  SparkContext sc(SmallCluster());
  Schema schema{{Field{"g", DataType::kString},
                 Field{"x", DataType::kInt64}}};
  auto df = DataFrame::FromRows(
      &sc, schema,
      {{std::string("a"), int64_t{1}},
       {std::string("a"), Value{}},
       {std::string("b"), int64_t{5}}},
      2);
  // NULL fails every comparison.
  EXPECT_EQ(df.Filter(Col("x") > Lit(0)).NumRows(), 2u);
  EXPECT_EQ(df.Filter(!(Col("x") > Lit(0))).NumRows(), 0u);
  EXPECT_EQ(df.Filter(Expr::Unary(ExprKind::kIsNull, Col("x"))).NumRows(),
            1u);
  // SUM/AVG skip NULLs; COUNT(*) does not.
  auto agg = df.GroupByAgg({"g"}, {AggSpec{AggOp::kCount, "", "n"},
                                   AggSpec{AggOp::kSum, "x", "s"}});
  for (const Row& r : agg.Collect()) {
    if (std::get<std::string>(r[0]) == "a") {
      EXPECT_EQ(std::get<int64_t>(r[1]), 2);  // counts both rows
      EXPECT_EQ(std::get<int64_t>(r[2]), 1);  // sums only the non-null
    }
  }
}

TEST(DataFrameEdgeTest, EmptyFramesFlowThroughEverything) {
  SparkContext sc(SmallCluster());
  Schema kv{{Field{"k", DataType::kInt64}, Field{"v", DataType::kString}}};
  auto empty = DataFrame::FromRows(&sc, kv, {}, 2);
  EXPECT_EQ(empty.Filter(Col("k") > Lit(0)).NumRows(), 0u);
  EXPECT_EQ(empty.Distinct().NumRows(), 0u);
  EXPECT_EQ(empty.Sort({{"k", true}}).NumRows(), 0u);
  auto nonempty =
      DataFrame::FromRows(&sc, kv, {{int64_t{1}, std::string("x")}}, 1);
  EXPECT_EQ(nonempty
                .Join(empty.Rename({"rk", "rv"}), {{"k", "rk"}},
                      JoinType::kLeftOuter)
                .NumRows(),
            1u);
  auto agg = empty.GroupByAgg({}, {AggSpec{AggOp::kCount, "", "n"}});
  // No rows -> no groups (SQL GROUP BY over empty input with keys).
  EXPECT_EQ(agg.NumRows(), 0u);
}

TEST(DataFrameEdgeTest, IntDoubleCoercionInJoinsAndComparisons) {
  SparkContext sc(SmallCluster());
  auto ints = DataFrame::FromRows(
      &sc, Schema{{Field{"k", DataType::kInt64}}}, {{int64_t{2}}}, 1);
  auto doubles = DataFrame::FromRows(
      &sc, Schema{{Field{"d", DataType::kDouble}}}, {{2.0}, {2.5}}, 1);
  // Cross-type equi-join matches 2 == 2.0 (numeric coercion).
  EXPECT_EQ(ints.Join(doubles, {{"k", "d"}}).NumRows(), 1u);
  EXPECT_EQ(doubles.Filter(Col("d") > Lit(2)).NumRows(), 1u);
}

// ---------------------------------------------------------------------------
// SQL end-to-end.
// ---------------------------------------------------------------------------

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : sc_(SmallCluster()), session_(&sc_) {
    session_.RegisterTable(
        "people", DataFrame::FromRows(&sc_, PeopleSchema(), PeopleRows(), 2));
    session_.RegisterTable(
        "jobs",
        DataFrame::FromRows(
            &sc_,
            Schema{{Field{"who", DataType::kString},
                    Field{"title", DataType::kString}}},
            {{std::string("alice"), std::string("engineer")},
             {std::string("carol"), std::string("scientist")}},
            2));
  }

  std::vector<Row> Run(const std::string& q) {
    auto df = session_.Sql(q);
    EXPECT_TRUE(df.ok()) << df.status().ToString();
    return df->Collect();
  }

  SparkContext sc_;
  SqlSession session_;
};

TEST_F(SqlTest, SelectStar) {
  EXPECT_EQ(Run("SELECT * FROM people").size(), 4u);
}

TEST_F(SqlTest, SelectColumnsWhere) {
  auto rows = Run("SELECT name, age FROM people WHERE age >= 30");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SqlTest, StringLiteralsAndOr) {
  auto rows =
      Run("SELECT name FROM people WHERE city = 'athens' OR name = 'dave'");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlTest, JoinWithAliases) {
  auto rows = Run(
      "SELECT p.name, j.title FROM people p JOIN jobs j ON p.name = j.who");
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(SqlTest, LeftJoinKeepsAll) {
  auto rows = Run(
      "SELECT p.name, j.title FROM people p LEFT JOIN jobs j ON p.name = "
      "j.who");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(SqlTest, GroupByWithAggregates) {
  auto rows = Run(
      "SELECT city, COUNT(*) AS n, AVG(age) AS a FROM people GROUP BY city");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlTest, OrderByLimit) {
  auto rows = Run("SELECT name FROM people ORDER BY age DESC LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(rows[0][0]), "carol");
  EXPECT_EQ(std::get<std::string>(rows[1][0]), "alice");
}

TEST_F(SqlTest, DistinctCities) {
  EXPECT_EQ(Run("SELECT DISTINCT city FROM people").size(), 3u);
}

TEST_F(SqlTest, ExplainShowsPushdown) {
  auto plan = session_.Explain(
      "SELECT p.name FROM people p JOIN jobs j ON p.name = j.who WHERE "
      "p.age > 26");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The age filter must sit below the join (pushdown).
  size_t join_pos = plan->find("Join");
  size_t filter_pos = plan->find("Filter");
  ASSERT_NE(join_pos, std::string::npos);
  ASSERT_NE(filter_pos, std::string::npos);
  EXPECT_GT(filter_pos, join_pos);
}

TEST_F(SqlTest, ErrorsAreStatuses) {
  EXPECT_FALSE(session_.Sql("SELECT * FROM missing_table").ok());
  EXPECT_FALSE(session_.Sql("SELEC bogus").ok());
  EXPECT_FALSE(session_.Sql("SELECT name FROM people LIMIT x").ok());
}

TEST_F(SqlTest, JoinWithoutEquiKeysFallsBackToCartesian) {
  auto before = sc_.metrics();
  auto rows = Run(
      "SELECT p.name FROM people p JOIN jobs j ON p.age > 26 WHERE j.title "
      "= 'engineer'");
  auto delta = sc_.metrics() - before;
  // The optimizer pushes both single-sided predicates below the join; what
  // remains is a keyless (Cartesian) join of 3 people x 1 job.
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_GE(delta.join_comparisons, 3u);
}

TEST_F(SqlTest, JoinReorderPutsSmallTableFirst) {
  // Three-way join; "tiny" has 1 row and should anchor the plan.
  session_.RegisterTable(
      "tiny", DataFrame::FromRows(
                  &sc_,
                  Schema{{Field{"t", DataType::kString}}},
                  {{std::string("engineer")}}, 1));
  auto plan = session_.Explain(
      "SELECT p.name FROM people p JOIN jobs j ON p.name = j.who JOIN tiny "
      "t ON j.title = t.t");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // tiny must appear before people in the (left-deep) chain: its scan line
  // is more indented or appears first. We simply check it is not last.
  size_t tiny_pos = plan->find("Scan tiny");
  size_t people_pos = plan->find("Scan people");
  ASSERT_NE(tiny_pos, std::string::npos);
  ASSERT_NE(people_pos, std::string::npos);
  EXPECT_LT(tiny_pos, people_pos);
  // Result still correct.
  auto rows = Run(
      "SELECT p.name FROM people p JOIN jobs j ON p.name = j.who JOIN tiny "
      "t ON j.title = t.t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rows[0][0]), "alice");
}

}  // namespace
}  // namespace rdfspark::spark::sql
