#include "systems/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "systems/graphframes_engine.h"
#include "systems/graphx_sm.h"
#include "systems/haqwa.h"
#include "systems/hybrid.h"
#include "systems/s2rdf.h"
#include "systems/s2x.h"
#include "systems/sparkql.h"
#include "systems/sparkrdf.h"
#include "systems/sparqlgx.h"

namespace rdfspark::systems {
namespace {

using spark::ClusterConfig;
using spark::SparkContext;

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

/// Shared dataset: one small LUBM university, deduplicated.
const rdf::TripleStore& Dataset() {
  static rdf::TripleStore* store = [] {
    auto* s = new rdf::TripleStore();
    rdf::LubmConfig cfg;
    cfg.num_universities = 1;
    cfg.departments_per_university = 3;
    cfg.professors_per_department = 4;
    cfg.students_per_department = 20;
    cfg.courses_per_department = 5;
    s->AddAll(rdf::GenerateLubm(cfg));
    s->Dedupe();
    return s;
  }();
  return *store;
}

/// Queries every engine must answer exactly like the reference evaluator.
/// BGP-only engines skip entries with `needs_bgp_plus`.
struct TestQuery {
  const char* label;
  std::string text;
  bool needs_bgp_plus = false;
};

std::vector<TestQuery> TestQueries() {
  const std::string prologue =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
  std::vector<TestQuery> qs;
  qs.push_back({"star3", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3)});
  qs.push_back({"star5", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 5)});
  qs.push_back({"linear2", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 2)});
  qs.push_back({"linear3", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)});
  qs.push_back(
      {"snowflake", rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake)});
  qs.push_back({"complex_filter",
                rdf::LubmShapeQuery(rdf::QueryShape::kComplex), true});
  qs.push_back({"single_pattern",
                prologue + "SELECT ?x ?d WHERE { ?x ub:worksFor ?d }"});
  qs.push_back({"constant_subject",
                prologue +
                    "SELECT ?p ?o WHERE { "
                    "<" + std::string(rdf::kUbPrefix) +
                    "Dept0.Univ0> ?p ?o }"});
  qs.push_back({"constant_object",
                prologue +
                    "SELECT ?x WHERE { ?x rdf:type ub:FullProfessor }"});
  qs.push_back({"object_object",
                prologue +
                    "SELECT ?s ?t WHERE { ?s ub:takesCourse ?c . "
                    "?t ub:teacherOf ?c }"});
  qs.push_back({"no_answers",
                prologue +
                    "SELECT ?x WHERE { ?x ub:worksFor ?d . "
                    "?d rdf:type ub:FullProfessor }"});
  qs.push_back({"unknown_uri",
                prologue + "SELECT ?x WHERE { ?x ub:noSuchPredicate ?y }"});
  qs.push_back({"optional",
                prologue +
                    "SELECT ?x ?u WHERE { ?x rdf:type ub:GraduateStudent . "
                    "OPTIONAL { ?x ub:undergraduateDegreeFrom ?u } }",
                true});
  qs.push_back({"union",
                prologue +
                    "SELECT ?x WHERE { { ?x rdf:type ub:FullProfessor } "
                    "UNION { ?x rdf:type ub:AssociateProfessor } }",
                true});
  qs.push_back({"distinct_order",
                prologue +
                    "SELECT DISTINCT ?d WHERE { ?x ub:worksFor ?d } "
                    "ORDER BY ?d LIMIT 2",
                true});
  qs.push_back({"ask_yes",
                prologue + "ASK { ?x rdf:type ub:University }"});
  return qs;
}

struct EngineFactory {
  std::string name;
  std::function<std::unique_ptr<RdfQueryEngine>(SparkContext*)> make;
};

std::vector<EngineFactory> Factories() {
  std::vector<EngineFactory> out;
  out.push_back({"HAQWA", [](SparkContext* sc) {
                   return std::make_unique<HaqwaEngine>(sc);
                 }});
  out.push_back(
      {"HAQWA_workload", [](SparkContext* sc) {
         HaqwaEngine::Options opts;
         opts.frequent_queries = {
             rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)};
         return std::make_unique<HaqwaEngine>(sc, opts);
       }});
  out.push_back({"SPARQLGX", [](SparkContext* sc) {
                   return std::make_unique<SparqlgxEngine>(sc);
                 }});
  out.push_back({"SPARQLGX_nostats", [](SparkContext* sc) {
                   SparqlgxEngine::Options opts;
                   opts.enable_statistics_reordering = false;
                   return std::make_unique<SparqlgxEngine>(sc, opts);
                 }});
  out.push_back({"S2RDF", [](SparkContext* sc) {
                   return std::make_unique<S2rdfEngine>(sc);
                 }});
  out.push_back({"S2RDF_noextvp", [](SparkContext* sc) {
                   S2rdfEngine::Options opts;
                   opts.enable_extvp = false;
                   return std::make_unique<S2rdfEngine>(sc, opts);
                 }});
  out.push_back({"S2RDF_sf1", [](SparkContext* sc) {
                   S2rdfEngine::Options opts;
                   opts.selectivity_threshold = 1.0;
                   return std::make_unique<S2rdfEngine>(sc, opts);
                 }});
  for (auto mode :
       {HybridMode::kSparkSqlNaive, HybridMode::kRddPartitioned,
        HybridMode::kDataFrameAuto, HybridMode::kHybrid}) {
    std::string name = std::string("Hybrid_") + HybridModeName(mode);
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    out.push_back({name, [mode](SparkContext* sc) {
                     HybridEngine::Options opts;
                     opts.mode = mode;
                     return std::make_unique<HybridEngine>(sc, opts);
                   }});
  }
  out.push_back({"S2X", [](SparkContext* sc) {
                   return std::make_unique<S2xEngine>(sc);
                 }});
  out.push_back({"GraphX_SM", [](SparkContext* sc) {
                   return std::make_unique<GraphxSmEngine>(sc);
                 }});
  out.push_back({"Sparkql", [](SparkContext* sc) {
                   return std::make_unique<SparkqlEngine>(sc);
                 }});
  out.push_back({"GraphFrames", [](SparkContext* sc) {
                   return std::make_unique<GraphFramesEngine>(sc);
                 }});
  out.push_back({"GraphFrames_unopt", [](SparkContext* sc) {
                   GraphFramesEngine::Options opts;
                   opts.enable_frequency_ordering = false;
                   opts.enable_pruning = false;
                   return std::make_unique<GraphFramesEngine>(sc, opts);
                 }});
  out.push_back({"SparkRDF", [](SparkContext* sc) {
                   return std::make_unique<SparkRdfEngine>(sc);
                 }});
  out.push_back({"SparkRDF_noclass", [](SparkContext* sc) {
                   SparkRdfEngine::Options opts;
                   opts.enable_class_indexes = false;
                   return std::make_unique<SparkRdfEngine>(sc, opts);
                 }});
  return out;
}

class EngineConformanceTest
    : public ::testing::TestWithParam<EngineFactory> {};

TEST_P(EngineConformanceTest, MatchesReferenceEvaluatorOnAllQueries) {
  const rdf::TripleStore& store = Dataset();
  SparkContext sc(SmallCluster());
  auto engine = GetParam().make(&sc);
  auto load = engine->Load(store);
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  EXPECT_EQ(load->input_triples, store.size());

  sparql::ReferenceEvaluator reference(&store);
  for (const auto& tq : TestQueries()) {
    auto query = sparql::ParseQuery(tq.text);
    ASSERT_TRUE(query.ok()) << tq.label << ": " << query.status().ToString();
    // BGP-only engines reject pattern-level extras (FILTER/OPTIONAL/UNION);
    // solution modifiers are evaluated driver-side by every engine.
    bool bgp_plus_needed = !query->where.IsPlainBgp();
    if (bgp_plus_needed &&
        engine->traits().fragment == SparqlFragment::kBgp) {
      auto r = engine->Execute(*query);
      EXPECT_FALSE(r.ok()) << tq.label << ": BGP engine must reject BGP+";
      continue;
    }
    auto expected = reference.Evaluate(*query);
    ASSERT_TRUE(expected.ok()) << tq.label;
    auto got = engine->Execute(*query);
    ASSERT_TRUE(got.ok()) << GetParam().name << " / " << tq.label << ": "
                          << got.status().ToString();
    if (!query->order_by.empty() || query->limit >= 0) {
      // Ordered/limited results: compare row counts only (ties make exact
      // row sets non-deterministic across engines).
      EXPECT_EQ(got->num_rows(), expected->num_rows())
          << GetParam().name << " / " << tq.label;
    } else {
      EXPECT_EQ(got->Decode(store.dictionary()),
                expected->Decode(store.dictionary()))
          << GetParam().name << " / " << tq.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineConformanceTest, ::testing::ValuesIn(Factories()),
    [](const ::testing::TestParamInfo<EngineFactory>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Behaviour-preservation guard for the physical-plan layer: every engine's
// results and query-time metrics must match values captured before the
// EvaluateBgp -> PlanBgp/PlanExecutor refactor. Regenerate the table with
//   RDFSPARK_PRINT_GOLDEN=1 ./engines_test
//     --gtest_filter='*MatchesPreRefactorGoldens*'   (one line)
// ---------------------------------------------------------------------------

/// One captured execution: order-insensitive result hash plus the metric
/// counters most sensitive to join strategy and ordering changes.
struct GoldenRun {
  const char* engine;
  const char* query;
  uint64_t result_hash;
  uint64_t shuffle_records;
  uint64_t join_comparisons;
  uint64_t broadcast_bytes;
};

/// FNV-1a over the decoded rows in sorted canonical form.
uint64_t HashDecoded(const sparql::BindingTable& table,
                     const rdf::Dictionary& dict) {
  std::vector<std::string> rows;
  for (const auto& decoded : table.Decode(dict)) {
    std::string row;
    for (const auto& [var, term] : decoded) {
      row += var;
      row += '=';
      row += term;
      row += ';';
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ull;
  };
  for (const auto& row : rows) {
    for (char c : row) mix(static_cast<unsigned char>(c));
    mix(0xff);
  }
  return h;
}

const std::vector<GoldenRun>& GoldenRuns() {
  static const std::vector<GoldenRun>* runs = new std::vector<GoldenRun>{
      // RDFSPARK_GOLDEN_TABLE_BEGIN
      {"HAQWA", "star3", 0x6e4f46cd4067675bull, 0ull, 0ull, 0ull},
      {"HAQWA", "star5", 0x6ff92254b5451753ull, 0ull, 0ull, 0ull},
      {"HAQWA", "linear3", 0x59711d0770b5f4d2ull, 33ull, 29ull, 0ull},
      {"HAQWA", "snowflake", 0x4dcb0d81391cebb0ull, 33ull, 29ull, 0ull},
      {"HAQWA", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"HAQWA", "object_object", 0x2f8d36d8fb7af6d4ull, 60ull, 115ull, 0ull},
      {"HAQWA_workload", "star3", 0x6e4f46cd4067675bull, 0ull, 0ull, 0ull},
      {"HAQWA_workload", "star5", 0x6ff92254b5451753ull, 0ull, 0ull, 0ull},
      {"HAQWA_workload", "linear3", 0x59711d0770b5f4d2ull, 22ull, 29ull, 0ull},
      {"HAQWA_workload", "snowflake", 0x4dcb0d81391cebb0ull, 33ull, 29ull, 0ull},
      {"HAQWA_workload", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"HAQWA_workload", "object_object", 0x2f8d36d8fb7af6d4ull, 60ull, 115ull, 0ull},
      {"SPARQLGX", "star3", 0x6e4f46cd4067675bull, 8ull, 24ull, 0ull},
      {"SPARQLGX", "star5", 0x6ff92254b5451753ull, 12ull, 58ull, 0ull},
      {"SPARQLGX", "linear3", 0x59711d0770b5f4d2ull, 4ull, 29ull, 0ull},
      {"SPARQLGX", "snowflake", 0x4dcb0d81391cebb0ull, 27ull, 75ull, 0ull},
      {"SPARQLGX", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"SPARQLGX", "object_object", 0x2f8d36d8fb7af6d4ull, 6ull, 115ull, 0ull},
      {"SPARQLGX_nostats", "star3", 0x6e4f46cd4067675bull, 10ull, 24ull, 0ull},
      {"SPARQLGX_nostats", "star5", 0x6ff92254b5451753ull, 18ull, 53ull, 0ull},
      {"SPARQLGX_nostats", "linear3", 0x59711d0770b5f4d2ull, 4ull, 30ull, 0ull},
      {"SPARQLGX_nostats", "snowflake", 0x4dcb0d81391cebb0ull, 25ull, 75ull, 0ull},
      {"SPARQLGX_nostats", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"SPARQLGX_nostats", "object_object", 0x2f8d36d8fb7af6d4ull, 6ull, 142ull, 0ull},
      {"S2RDF", "star3", 0x6e4f46cd4067675bull, 0ull, 24ull, 1296ull},
      {"S2RDF", "star5", 0x6ff92254b5451753ull, 0ull, 53ull, 2862ull},
      {"S2RDF", "linear3", 0x59711d0770b5f4d2ull, 0ull, 29ull, 1458ull},
      {"S2RDF", "snowflake", 0x4dcb0d81391cebb0ull, 0ull, 75ull, 2970ull},
      {"S2RDF", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"S2RDF", "object_object", 0x2f8d36d8fb7af6d4ull, 0ull, 115ull, 5616ull},
      {"S2RDF_noextvp", "star3", 0x6e4f46cd4067675bull, 0ull, 24ull, 7506ull},
      {"S2RDF_noextvp", "star5", 0x6ff92254b5451753ull, 0ull, 58ull, 9072ull},
      {"S2RDF_noextvp", "linear3", 0x59711d0770b5f4d2ull, 0ull, 29ull, 1458ull},
      {"S2RDF_noextvp", "snowflake", 0x4dcb0d81391cebb0ull, 0ull, 74ull, 12366ull},
      {"S2RDF_noextvp", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"S2RDF_noextvp", "object_object", 0x2f8d36d8fb7af6d4ull, 0ull, 115ull, 5616ull},
      {"S2RDF_sf1", "star3", 0x6e4f46cd4067675bull, 0ull, 24ull, 1296ull},
      {"S2RDF_sf1", "star5", 0x6ff92254b5451753ull, 0ull, 53ull, 2862ull},
      {"S2RDF_sf1", "linear3", 0x59711d0770b5f4d2ull, 0ull, 25ull, 1350ull},
      {"S2RDF_sf1", "snowflake", 0x4dcb0d81391cebb0ull, 0ull, 75ull, 2862ull},
      {"S2RDF_sf1", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"S2RDF_sf1", "object_object", 0x2f8d36d8fb7af6d4ull, 0ull, 115ull, 5616ull},
      {"Hybrid_SparkSQL_naive", "star3", 0x6e4f46cd4067675bull, 0ull, 1668ull, 0ull},
      {"Hybrid_SparkSQL_naive", "star5", 0x6ff92254b5451753ull, 0ull, 2016ull, 0ull},
      {"Hybrid_SparkSQL_naive", "linear3", 0x59711d0770b5f4d2ull, 0ull, 225ull, 0ull},
      {"Hybrid_SparkSQL_naive", "snowflake", 0x4dcb0d81391cebb0ull, 0ull, 3255ull, 0ull},
      {"Hybrid_SparkSQL_naive", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"Hybrid_SparkSQL_naive", "object_object", 0x2f8d36d8fb7af6d4ull, 0ull, 1768ull, 0ull},
      {"Hybrid_RDD_partitioned", "star3", 0x6e4f46cd4067675bull, 26ull, 24ull, 0ull},
      {"Hybrid_RDD_partitioned", "star5", 0x6ff92254b5451753ull, 50ull, 53ull, 0ull},
      {"Hybrid_RDD_partitioned", "linear3", 0x59711d0770b5f4d2ull, 30ull, 30ull, 0ull},
      {"Hybrid_RDD_partitioned", "snowflake", 0x4dcb0d81391cebb0ull, 73ull, 75ull, 0ull},
      {"Hybrid_RDD_partitioned", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"Hybrid_RDD_partitioned", "object_object", 0x2f8d36d8fb7af6d4ull, 60ull, 142ull, 0ull},
      {"Hybrid_DataFrame_broadcast", "star3", 0x6e4f46cd4067675bull, 0ull, 24ull, 7506ull},
      {"Hybrid_DataFrame_broadcast", "star5", 0x6ff92254b5451753ull, 0ull, 53ull, 9072ull},
      {"Hybrid_DataFrame_broadcast", "linear3", 0x59711d0770b5f4d2ull, 0ull, 30ull, 810ull},
      {"Hybrid_DataFrame_broadcast", "snowflake", 0x4dcb0d81391cebb0ull, 0ull, 75ull, 11718ull},
      {"Hybrid_DataFrame_broadcast", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"Hybrid_DataFrame_broadcast", "object_object", 0x2f8d36d8fb7af6d4ull, 0ull, 142ull, 918ull},
      {"Hybrid_Hybrid", "star3", 0x6e4f46cd4067675bull, 0ull, 24ull, 7506ull},
      {"Hybrid_Hybrid", "star5", 0x6ff92254b5451753ull, 0ull, 58ull, 9072ull},
      {"Hybrid_Hybrid", "linear3", 0x59711d0770b5f4d2ull, 0ull, 29ull, 1458ull},
      {"Hybrid_Hybrid", "snowflake", 0x4dcb0d81391cebb0ull, 0ull, 75ull, 11718ull},
      {"Hybrid_Hybrid", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"Hybrid_Hybrid", "object_object", 0x2f8d36d8fb7af6d4ull, 0ull, 115ull, 5616ull},
      {"S2X", "star3", 0x6e4f46cd4067675bull, 42ull, 24ull, 0ull},
      {"S2X", "star5", 0x6ff92254b5451753ull, 80ull, 53ull, 0ull},
      {"S2X", "linear3", 0x59711d0770b5f4d2ull, 36ull, 30ull, 0ull},
      {"S2X", "snowflake", 0x4dcb0d81391cebb0ull, 103ull, 75ull, 0ull},
      {"S2X", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"S2X", "object_object", 0x2f8d36d8fb7af6d4ull, 41ull, 115ull, 0ull},
      {"GraphX_SM", "star3", 0x6e4f46cd4067675bull, 3639ull, 2806ull, 0ull},
      {"GraphX_SM", "star5", 0x6ff92254b5451753ull, 7270ull, 5612ull, 0ull},
      {"GraphX_SM", "linear3", 0x59711d0770b5f4d2ull, 3610ull, 2806ull, 0ull},
      {"GraphX_SM", "snowflake", 0x4dcb0d81391cebb0ull, 9056ull, 7015ull, 0ull},
      {"GraphX_SM", "constant_object", 0x29fef2979fd98f3cull, 6ull, 0ull, 0ull},
      {"GraphX_SM", "object_object", 0x2f8d36d8fb7af6d4ull, 1844ull, 1403ull, 0ull},
      {"Sparkql", "star3", 0x6e4f46cd4067675bull, 1117ull, 828ull, 0ull},
      {"Sparkql", "star5", 0x6ff92254b5451753ull, 3357ull, 2109ull, 0ull},
      {"Sparkql", "linear3", 0x59711d0770b5f4d2ull, 3468ull, 2357ull, 0ull},
      {"Sparkql", "snowflake", 0x4dcb0d81391cebb0ull, 4489ull, 3046ull, 0ull},
      {"Sparkql", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"Sparkql", "object_object", 0x2f8d36d8fb7af6d4ull, 2368ull, 1534ull, 0ull},
      {"GraphFrames", "star3", 0x6e4f46cd4067675bull, 0ull, 24ull, 11259ull},
      {"GraphFrames", "star5", 0x6ff92254b5451753ull, 0ull, 58ull, 13608ull},
      {"GraphFrames", "linear3", 0x59711d0770b5f4d2ull, 0ull, 29ull, 2187ull},
      {"GraphFrames", "snowflake", 0x4dcb0d81391cebb0ull, 0ull, 74ull, 27621ull},
      {"GraphFrames", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"GraphFrames", "object_object", 0x2f8d36d8fb7af6d4ull, 0ull, 115ull, 8424ull},
      {"GraphFrames_unopt", "star3", 0x6e4f46cd4067675bull, 0ull, 24ull, 11259ull},
      {"GraphFrames_unopt", "star5", 0x6ff92254b5451753ull, 0ull, 53ull, 13608ull},
      {"GraphFrames_unopt", "linear3", 0x59711d0770b5f4d2ull, 0ull, 30ull, 1215ull},
      {"GraphFrames_unopt", "snowflake", 0x4dcb0d81391cebb0ull, 0ull, 75ull, 17577ull},
      {"GraphFrames_unopt", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"GraphFrames_unopt", "object_object", 0x2f8d36d8fb7af6d4ull, 0ull, 142ull, 1377ull},
      {"SparkRDF", "star3", 0x6e4f46cd4067675bull, 99ull, 1796ull, 0ull},
      {"SparkRDF", "star5", 0x6ff92254b5451753ull, 142ull, 2907ull, 0ull},
      {"SparkRDF", "linear3", 0x59711d0770b5f4d2ull, 39ull, 256ull, 0ull},
      {"SparkRDF", "snowflake", 0x4dcb0d81391cebb0ull, 125ull, 2405ull, 0ull},
      {"SparkRDF", "constant_object", 0x29fef2979fd98f3cull, 0ull, 0ull, 0ull},
      {"SparkRDF", "object_object", 0x2f8d36d8fb7af6d4ull, 100ull, 1832ull, 0ull},
      {"SparkRDF_noclass", "star3", 0x6e4f46cd4067675bull, 99ull, 1796ull, 0ull},
      {"SparkRDF_noclass", "star5", 0x6ff92254b5451753ull, 142ull, 2907ull, 0ull},
      {"SparkRDF_noclass", "linear3", 0x59711d0770b5f4d2ull, 39ull, 256ull, 0ull},
      {"SparkRDF_noclass", "snowflake", 0x4dcb0d81391cebb0ull, 145ull, 93335ull, 0ull},
      {"SparkRDF_noclass", "constant_object", 0x29fef2979fd98f3cull, 6ull, 0ull, 0ull},
      {"SparkRDF_noclass", "object_object", 0x2f8d36d8fb7af6d4ull, 100ull, 1832ull, 0ull},
      // RDFSPARK_GOLDEN_TABLE_END
  };
  return *runs;
}

TEST(PlanRefactorEquivalenceTest, MatchesPreRefactorGoldens) {
  const std::vector<const char*> kLabels = {
      "star3",           "star5",         "linear3",
      "snowflake",       "constant_object", "object_object"};
  const rdf::TripleStore& store = Dataset();
  const bool print = std::getenv("RDFSPARK_PRINT_GOLDEN") != nullptr;
  if (!print && GoldenRuns().empty()) {
    GTEST_SKIP() << "golden table not captured yet";
  }

  std::vector<TestQuery> queries = TestQueries();
  for (const auto& factory : Factories()) {
    SparkContext sc(SmallCluster());
    auto engine = factory.make(&sc);
    ASSERT_TRUE(engine->Load(store).ok()) << factory.name;
    for (const char* label : kLabels) {
      auto it = std::find_if(
          queries.begin(), queries.end(),
          [label](const TestQuery& q) { return std::string(q.label) == label; });
      ASSERT_NE(it, queries.end()) << label;
      auto query = sparql::ParseQuery(it->text);
      ASSERT_TRUE(query.ok()) << label;
      auto before = sc.metrics();
      auto result = engine->Execute(*query);
      auto delta = sc.metrics() - before;
      ASSERT_TRUE(result.ok())
          << factory.name << " / " << label << ": "
          << result.status().ToString();
      uint64_t hash = HashDecoded(*result, store.dictionary());
      if (print) {
        std::printf(
            "      {\"%s\", \"%s\", 0x%016llxull, %lluull, %lluull, "
            "%lluull},\n",
            factory.name.c_str(), label,
            static_cast<unsigned long long>(hash),
            static_cast<unsigned long long>(delta.shuffle_records),
            static_cast<unsigned long long>(delta.join_comparisons),
            static_cast<unsigned long long>(delta.broadcast_bytes));
        continue;
      }
      auto golden = std::find_if(
          GoldenRuns().begin(), GoldenRuns().end(),
          [&](const GoldenRun& g) {
            return factory.name == g.engine && std::string(label) == g.query;
          });
      ASSERT_NE(golden, GoldenRuns().end())
          << "no golden for " << factory.name << " / " << label;
      EXPECT_EQ(hash, golden->result_hash) << factory.name << " / " << label;
      EXPECT_EQ(delta.shuffle_records, golden->shuffle_records)
          << factory.name << " / " << label;
      EXPECT_EQ(delta.join_comparisons, golden->join_comparisons)
          << factory.name << " / " << label;
      EXPECT_EQ(delta.broadcast_bytes, golden->broadcast_bytes)
          << factory.name << " / " << label;
    }
  }
}

/// The batch data plane must not depend on task interleaving: every engine
/// variant produces the same rows in the same order whether the executor
/// pool has one thread or eight. Compares the raw flat buffers (variables,
/// width, cells), which is strictly stronger than the order-insensitive
/// decoded hash.
TEST(PlanRefactorEquivalenceTest, ResultsBitIdenticalAcrossThreading) {
  const std::vector<const char*> kLabels = {"star3", "linear3", "snowflake",
                                            "object_object"};
  const rdf::TripleStore& store = Dataset();
  std::vector<TestQuery> queries = TestQueries();
  for (const auto& factory : Factories()) {
    for (const char* label : kLabels) {
      auto it = std::find_if(
          queries.begin(), queries.end(),
          [label](const TestQuery& q) { return std::string(q.label) == label; });
      ASSERT_NE(it, queries.end()) << label;
      auto query = sparql::ParseQuery(it->text);
      ASSERT_TRUE(query.ok()) << label;
      sparql::BindingTable serial;
      sparql::BindingTable pooled;
      for (auto [threads, out] :
           {std::pair<int, sparql::BindingTable*>{1, &serial}, {8, &pooled}}) {
        ClusterConfig cfg = SmallCluster();
        cfg.executor_threads = threads;
        SparkContext sc(cfg);
        auto engine = factory.make(&sc);
        ASSERT_TRUE(engine->Load(store).ok()) << factory.name;
        auto result = engine->Execute(*query);
        ASSERT_TRUE(result.ok()) << factory.name << " / " << label;
        *out = std::move(*result);
      }
      EXPECT_EQ(serial.vars(), pooled.vars()) << factory.name << " / " << label;
      EXPECT_EQ(serial.rows().width(), pooled.rows().width())
          << factory.name << " / " << label;
      EXPECT_EQ(serial.rows().data(), pooled.rows().data())
          << factory.name << " / " << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-specific behaviour.
// ---------------------------------------------------------------------------

TEST(HaqwaTest, StarQueriesShuffleNothing) {
  SparkContext sc(SmallCluster());
  HaqwaEngine engine(&sc);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  auto before = sc.metrics();
  auto result =
      engine.ExecuteText(rdf::LubmShapeQuery(rdf::QueryShape::kStar, 4));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto delta = sc.metrics() - before;
  EXPECT_EQ(delta.shuffle_records, 0u)
      << "subject-hash fragmentation must answer star queries locally";
  EXPECT_GT(result->num_rows(), 0u);
}

TEST(HaqwaTest, WorkloadReplicationRemovesLinearShuffles) {
  const std::string linear = rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3);

  SparkContext sc_plain(SmallCluster());
  HaqwaEngine plain(&sc_plain);
  ASSERT_TRUE(plain.Load(Dataset()).ok());
  auto before_plain = sc_plain.metrics();
  ASSERT_TRUE(plain.ExecuteText(linear).ok());
  auto delta_plain = sc_plain.metrics() - before_plain;

  SparkContext sc_aware(SmallCluster());
  HaqwaEngine::Options opts;
  opts.frequent_queries = {linear};
  HaqwaEngine aware(&sc_aware, opts);
  ASSERT_TRUE(aware.Load(Dataset()).ok());
  EXPECT_GT(aware.replicated_triples(), 0u);
  auto before_aware = sc_aware.metrics();
  ASSERT_TRUE(aware.ExecuteText(linear).ok());
  auto delta_aware = sc_aware.metrics() - before_aware;

  EXPECT_LT(delta_aware.shuffle_records, delta_plain.shuffle_records)
      << "workload-aware replication must reduce query-time shuffling";
}

TEST(SparqlgxTest, BoundedPredicateReadsOnlyItsPartition) {
  SparkContext sc(SmallCluster());
  SparqlgxEngine engine(&sc);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  const std::string prologue =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) + ">\n";
  auto before = sc.metrics();
  auto result = engine.ExecuteText(
      prologue + "SELECT ?x ?d WHERE { ?x ub:headOf ?d }");
  ASSERT_TRUE(result.ok());
  auto delta = sc.metrics() - before;
  // headOf has 3 triples; processing must not touch the whole dataset.
  EXPECT_LT(delta.records_processed, Dataset().size() / 4);
}

TEST(SparqlgxTest, StatisticsReorderingReducesIntermediateRecords) {
  const std::string prologue =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
  // Written worst-first: the huge name pattern precedes the selective one.
  const std::string query = prologue +
                            "SELECT ?x ?n WHERE { ?x ub:name ?n . "
                            "?x ub:headOf ?d . }";

  SparkContext sc1(SmallCluster());
  SparqlgxEngine::Options no_stats;
  no_stats.enable_statistics_reordering = false;
  SparqlgxEngine unopt(&sc1, no_stats);
  ASSERT_TRUE(unopt.Load(Dataset()).ok());
  auto before1 = sc1.metrics();
  auto r1 = unopt.ExecuteText(query);
  ASSERT_TRUE(r1.ok());
  auto delta1 = sc1.metrics() - before1;

  SparkContext sc2(SmallCluster());
  SparqlgxEngine opt(&sc2);
  ASSERT_TRUE(opt.Load(Dataset()).ok());
  auto before2 = sc2.metrics();
  auto r2 = opt.ExecuteText(query);
  ASSERT_TRUE(r2.ok());
  auto delta2 = sc2.metrics() - before2;

  EXPECT_EQ(r1->num_rows(), r2->num_rows());
  EXPECT_LE(delta2.shuffle_records, delta1.shuffle_records);
}

TEST(S2rdfTest, TranslatesBgpToSql) {
  SparkContext sc(SmallCluster());
  S2rdfEngine engine(&sc);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  auto query = sparql::ParseQuery(
      rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake));
  ASSERT_TRUE(query.ok());
  auto sql = engine.TranslateBgpToSql(query->where.bgp);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql->find("SELECT"), std::string::npos);
  EXPECT_NE(sql->find("JOIN"), std::string::npos);
  EXPECT_NE(sql->find(" ON "), std::string::npos);
}

TEST(S2rdfTest, ExtVpMaterializesOnlyUnderThreshold) {
  SparkContext sc(SmallCluster());
  S2rdfEngine::Options strict;
  strict.selectivity_threshold = 0.25;
  S2rdfEngine small(&sc, strict);
  ASSERT_TRUE(small.Load(Dataset()).ok());

  SparkContext sc2(SmallCluster());
  S2rdfEngine::Options loose;
  loose.selectivity_threshold = 1.0;
  S2rdfEngine big(&sc2, loose);
  ASSERT_TRUE(big.Load(Dataset()).ok());

  EXPECT_LT(small.num_extvp_tables(), big.num_extvp_tables());
  EXPECT_LT(small.extvp_rows(), big.extvp_rows());
  EXPECT_GT(big.num_extvp_tables(), 0u);
}

TEST(S2rdfTest, ExtVpShrinksJoinInputs) {
  const std::string linear = rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 2);

  SparkContext sc1(SmallCluster());
  S2rdfEngine::Options off;
  off.enable_extvp = false;
  S2rdfEngine vp_only(&sc1, off);
  ASSERT_TRUE(vp_only.Load(Dataset()).ok());
  auto before1 = sc1.metrics();
  auto r1 = vp_only.ExecuteText(linear);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto delta1 = sc1.metrics() - before1;

  SparkContext sc2(SmallCluster());
  S2rdfEngine::Options on;
  on.selectivity_threshold = 1.0;
  S2rdfEngine extvp(&sc2, on);
  ASSERT_TRUE(extvp.Load(Dataset()).ok());
  auto before2 = sc2.metrics();
  auto r2 = extvp.ExecuteText(linear);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  auto delta2 = sc2.metrics() - before2;

  EXPECT_EQ(r1->num_rows(), r2->num_rows());
  EXPECT_LT(delta2.join_comparisons, delta1.join_comparisons)
      << "semi-join reduced tables must cut join work";
}

TEST(S2xTest, FixpointIteratesAndPrunes) {
  SparkContext sc(SmallCluster());
  S2xEngine engine(&sc);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  auto before = sc.metrics();
  auto result =
      engine.ExecuteText(rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto delta = sc.metrics() - before;
  EXPECT_GE(engine.last_iterations(), 2);  // at least one pruning round
  EXPECT_GT(delta.supersteps, 0u);
  EXPECT_GT(delta.messages, 0u);
  EXPECT_GT(result->num_rows(), 0u);
}

TEST(S2xTest, LongerChainsNeedMoreIterations) {
  SparkContext sc(SmallCluster());
  S2xEngine engine(&sc);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  ASSERT_TRUE(
      engine.ExecuteText(rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 2))
          .ok());
  int short_iters = engine.last_iterations();
  ASSERT_TRUE(
      engine.ExecuteText(rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 4))
          .ok());
  int long_iters = engine.last_iterations();
  EXPECT_GE(long_iters, short_iters);
}

TEST(GraphxSmTest, MessagesFlowPerPattern) {
  SparkContext sc(SmallCluster());
  GraphxSmEngine engine(&sc);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  auto before = sc.metrics();
  auto result =
      engine.ExecuteText(rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto delta = sc.metrics() - before;
  EXPECT_GT(delta.messages, 0u);
  EXPECT_GT(result->num_rows(), 0u);
}

TEST(GraphFramesTest, PruningShrinksProcessedRecords) {
  const std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3);

  SparkContext sc1(SmallCluster());
  GraphFramesEngine::Options off;
  off.enable_pruning = false;
  off.enable_frequency_ordering = false;
  GraphFramesEngine unopt(&sc1, off);
  ASSERT_TRUE(unopt.Load(Dataset()).ok());
  auto before1 = sc1.metrics();
  auto r1 = unopt.ExecuteText(query);
  ASSERT_TRUE(r1.ok());
  auto delta1 = sc1.metrics() - before1;

  SparkContext sc2(SmallCluster());
  GraphFramesEngine opt(&sc2);
  ASSERT_TRUE(opt.Load(Dataset()).ok());
  auto before2 = sc2.metrics();
  auto r2 = opt.ExecuteText(query);
  ASSERT_TRUE(r2.ok());
  auto delta2 = sc2.metrics() - before2;

  EXPECT_EQ(r1->num_rows(), r2->num_rows());
  EXPECT_LT(delta2.join_comparisons, delta1.join_comparisons);
  EXPECT_LT(delta2.records_processed, delta1.records_processed);
}

TEST(SparkRdfTest, ClassIndexesCutProcessedRecords) {
  const std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake);

  SparkContext sc1(SmallCluster());
  SparkRdfEngine::Options off;
  off.enable_class_indexes = false;
  SparkRdfEngine plain(&sc1, off);
  ASSERT_TRUE(plain.Load(Dataset()).ok());
  auto before1 = sc1.metrics();
  auto r1 = plain.ExecuteText(query);
  ASSERT_TRUE(r1.ok());
  auto delta1 = sc1.metrics() - before1;

  SparkContext sc2(SmallCluster());
  SparkRdfEngine indexed(&sc2);
  auto load = indexed.Load(Dataset());
  ASSERT_TRUE(load.ok());
  // MESG's levels 2/3 store extra copies: a storage blow-up...
  auto load_plain = plain.Load(Dataset());
  ASSERT_TRUE(load_plain.ok());
  EXPECT_GT(load->stored_records, load_plain->stored_records);
  auto before2 = sc2.metrics();
  auto r2 = indexed.ExecuteText(query);
  ASSERT_TRUE(r2.ok());
  auto delta2 = sc2.metrics() - before2;

  // ...traded for less data read and joined at query time.
  EXPECT_EQ(r1->num_rows(), r2->num_rows());
  EXPECT_LT(delta2.records_processed, delta1.records_processed);
}

TEST(SparkqlTest, DataPropertiesLiveInNodes) {
  SparkContext sc(SmallCluster());
  SparkqlEngine engine(&sc);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  // A pure data-property star never touches edges: no messages at all.
  const std::string prologue =
      "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
      ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
  auto before = sc.metrics();
  auto result = engine.ExecuteText(
      prologue +
      "SELECT ?x ?n WHERE { ?x rdf:type ub:FullProfessor . ?x ub:name ?n }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto delta = sc.metrics() - before;
  EXPECT_GT(result->num_rows(), 0u);
  EXPECT_EQ(delta.messages, 0u)
      << "node-local predicates must not exchange messages";
}

TEST(MakeAllEnginesTest, ProducesNineSystems) {
  SparkContext sc(SmallCluster());
  auto engines = MakeAllEngines(&sc);
  ASSERT_EQ(engines.size(), 9u);
  // Names unique, traits populated.
  std::set<std::string> names;
  for (const auto& e : engines) {
    EXPECT_FALSE(e->traits().name.empty());
    EXPECT_FALSE(e->traits().citation.empty());
    EXPECT_FALSE(e->traits().abstractions.empty());
    names.insert(e->traits().name);
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(TraitsTest, TableRowsMatchPaper) {
  SparkContext sc(SmallCluster());
  HaqwaEngine haqwa(&sc);
  EXPECT_EQ(haqwa.traits().partitioning, "Hash / Query Aware");
  EXPECT_EQ(haqwa.traits().query_processing, "RDD API");
  EXPECT_FALSE(haqwa.traits().has_optimization);

  SparqlgxEngine gx(&sc);
  EXPECT_EQ(gx.traits().partitioning, "Vertical");
  EXPECT_TRUE(gx.traits().has_optimization);

  S2rdfEngine s2rdf(&sc);
  EXPECT_EQ(s2rdf.traits().partitioning, "Extended Vertical");
  EXPECT_EQ(s2rdf.traits().query_processing, "Spark SQL");
  EXPECT_EQ(s2rdf.traits().fragment, SparqlFragment::kBgpPlus);
}

}  // namespace
}  // namespace rdfspark::systems
