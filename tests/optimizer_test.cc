#include "spark/sql/optimizer.h"

#include <gtest/gtest.h>

#include "spark/sql/session.h"

namespace rdfspark::spark::sql {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 4;
  return cfg;
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : sc_(SmallCluster()), session_(&sc_) {
    Schema abc{{Field{"a", DataType::kInt64}, Field{"b", DataType::kString}}};
    std::vector<Row> small_rows, big_rows;
    for (int i = 0; i < 5; ++i) {
      small_rows.push_back({int64_t{i}, std::string("s") + std::to_string(i)});
    }
    for (int i = 0; i < 500; ++i) {
      big_rows.push_back(
          {int64_t{i % 50}, std::string("b") + std::to_string(i)});
    }
    session_.RegisterTable("small", DataFrame::FromRows(&sc_, abc,
                                                        small_rows, 2));
    session_.RegisterTable(
        "big", DataFrame::FromRows(
                   &sc_,
                   Schema{{Field{"x", DataType::kInt64},
                           Field{"y", DataType::kString}}},
                   big_rows, 4));
  }

  SparkContext sc_;
  SqlSession session_;
};

TEST_F(OptimizerTest, InferSchemaQualifiesAliases) {
  auto plan = MakeScan("small", "t");
  auto schema = Optimizer::InferSchema(plan, session_.catalog());
  ASSERT_TRUE(schema.ok());
  EXPECT_GE(schema->Index("t.a"), 0);
  EXPECT_GE(schema->Index("t.b"), 0);
  EXPECT_LT(schema->Index("a"), 0);
}

TEST_F(OptimizerTest, InferSchemaUnknownTableFails) {
  auto plan = MakeScan("missing");
  EXPECT_EQ(Optimizer::InferSchema(plan, session_.catalog()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(OptimizerTest, EstimateRowsShrinksWithFilters) {
  auto scan = MakeScan("big");
  uint64_t base = Optimizer::EstimateRows(scan, session_.catalog());
  EXPECT_EQ(base, 500u);
  auto filtered = MakeFilter(scan, Col("x") == Lit(3));
  uint64_t reduced = Optimizer::EstimateRows(filtered, session_.catalog());
  EXPECT_LT(reduced, base);
  EXPECT_GE(reduced, 1u);
}

TEST_F(OptimizerTest, PushdownStopsAtLeftOuterJoinRightSide) {
  // A predicate over the right (null-producing) side of a LEFT JOIN must
  // not be pushed below the join.
  auto plan = session_.Explain(
      "SELECT s.a FROM small s LEFT JOIN big b ON s.a = b.x WHERE b.y = "
      "'b1'");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Filter stays above the join: it appears before (left of) the Join line.
  size_t filter_pos = plan->find("Filter");
  size_t join_pos = plan->find("Join");
  ASSERT_NE(filter_pos, std::string::npos);
  ASSERT_NE(join_pos, std::string::npos);
  EXPECT_LT(filter_pos, join_pos);
}

TEST_F(OptimizerTest, PushdownPushesLeftSideOfLeftOuterJoin) {
  auto plan = session_.Explain(
      "SELECT s.a FROM small s LEFT JOIN big b ON s.a = b.x WHERE s.b = "
      "'s1'");
  ASSERT_TRUE(plan.ok());
  size_t filter_pos = plan->find("Filter");
  size_t join_pos = plan->find("Join");
  ASSERT_NE(filter_pos, std::string::npos);
  EXPECT_GT(filter_pos, join_pos) << *plan;
}

TEST_F(OptimizerTest, MergesStackedFilters) {
  auto parsed = ParseSql("SELECT a FROM small WHERE a > 1");
  ASSERT_TRUE(parsed.ok());
  // Stack a second filter manually.
  auto stacked = MakeFilter(*parsed, Col("a") < Lit(4));
  Optimizer optimizer;
  auto optimized = optimizer.Optimize(stacked, session_.catalog());
  ASSERT_TRUE(optimized.ok());
  // Execute to verify semantics survived the merge.
  auto df = session_.Execute(*optimized);
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  EXPECT_EQ(df->NumRows(), 2u);  // a in {2, 3}
}

TEST_F(OptimizerTest, DisabledRulesLeavePlanAlone) {
  session_.optimizer_options().push_filters = false;
  session_.optimizer_options().reorder_joins = false;
  auto plan = session_.Explain(
      "SELECT s.a FROM small s JOIN big b ON s.a = b.x WHERE s.b = 's1'");
  ASSERT_TRUE(plan.ok());
  size_t filter_pos = plan->find("Filter");
  size_t join_pos = plan->find("Join");
  EXPECT_LT(filter_pos, join_pos) << "without pushdown the filter stays on top";
  // Results identical either way.
  auto off = session_.Sql(
      "SELECT s.a FROM small s JOIN big b ON s.a = b.x WHERE s.b = 's1'");
  ASSERT_TRUE(off.ok());
  session_.optimizer_options().push_filters = true;
  auto on = session_.Sql(
      "SELECT s.a FROM small s JOIN big b ON s.a = b.x WHERE s.b = 's1'");
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(off->NumRows(), on->NumRows());
}

TEST_F(OptimizerTest, ClonePlanIsDeep) {
  auto scan = MakeScan("small");
  auto filter = MakeFilter(scan, Col("a") > Lit(1));
  auto clone = ClonePlan(filter);
  clone->left->table = "big";
  EXPECT_EQ(filter->left->table, "small");
}

TEST_F(OptimizerTest, ReorderKeepsSemanticsOnFourWayJoin) {
  // Four-way chain with mixed sizes: reordering must not change results.
  Schema kv{{Field{"k", DataType::kInt64}, Field{"v", DataType::kInt64}}};
  auto make = [&](int rows, int mod) {
    std::vector<Row> data;
    for (int i = 0; i < rows; ++i) {
      data.push_back({int64_t{i % mod}, int64_t{i}});
    }
    return DataFrame::FromRows(&sc_, kv, data, 2);
  };
  session_.RegisterTable("t1", make(40, 10));
  session_.RegisterTable("t2", make(4, 10));
  session_.RegisterTable("t3", make(100, 10));
  session_.RegisterTable("t4", make(10, 10));
  const std::string query =
      "SELECT a.v FROM t1 a JOIN t2 b ON a.k = b.k JOIN t3 c ON b.k = c.k "
      "JOIN t4 d ON c.k = d.k";
  auto with = session_.Sql(query);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  session_.optimizer_options().reorder_joins = false;
  auto without = session_.Sql(query);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->NumRows(), without->NumRows());
  EXPECT_GT(with->NumRows(), 0u);
}

}  // namespace
}  // namespace rdfspark::spark::sql
