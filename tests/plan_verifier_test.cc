// Static plan verifier tests: every rule id triggered by a hand-built plan
// tree, clean trees produce no findings, and all engine plans for the
// golden LUBM shapes verify error-free under debug-check mode.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "sparql/parser.h"
#include "systems/engine.h"
#include "systems/graphframes_engine.h"
#include "systems/graphx_sm.h"
#include "systems/haqwa.h"
#include "systems/hybrid.h"
#include "systems/plan/verifier.h"
#include "systems/s2rdf.h"
#include "systems/s2x.h"
#include "systems/sparkql.h"
#include "systems/sparkrdf.h"
#include "systems/sparqlgx.h"

namespace rdfspark::systems {
namespace {

using plan::AccessPath;
using plan::Diagnostic;
using plan::EngineProfile;
using plan::MakeBinary;
using plan::MakeScan;
using plan::MakeUnary;
using plan::NodeKind;
using plan::PlanPtr;
using plan::Severity;
using plan::VerifyPlan;
using spark::ClusterConfig;
using spark::SparkContext;

/// A descriptive pattern-scan leaf binding `vars`, subject bound to
/// `subject` (empty = constant subject).
PlanPtr Scan(std::vector<std::string> vars, std::string subject,
             uint64_t est = 10, AccessPath access = AccessPath::kVpTable) {
  auto node = MakeScan(NodeKind::kPatternScan, access, "test scan", est,
                       nullptr);
  node->out_vars = std::move(vars);
  node->subject_var = std::move(subject);
  return node;
}

int CountRule(const std::vector<Diagnostic>& diags, const std::string& rule,
              Severity severity) {
  int n = 0;
  for (const auto& d : diags) {
    if (d.rule == rule && d.severity == severity) ++n;
  }
  return n;
}

TEST(PlanVerifierTest, CleanJoinPlanHasNoFindings) {
  auto join = MakeBinary(NodeKind::kPartitionedHashJoin, "on ?x",
                         Scan({"x", "y"}, "x"), Scan({"x", "z"}, "x"),
                         nullptr);
  join->key_vars = {"x"};
  auto project = MakeUnary(NodeKind::kProject, "?x ?y ?z", std::move(join),
                           nullptr);
  project->key_vars = {"x", "y", "z"};
  EXPECT_TRUE(VerifyPlan(*project, EngineProfile{"test"}).empty());
}

TEST(PlanVerifierTest, Sc001FlagsConsumedVariableNobodyProduces) {
  auto join = MakeBinary(NodeKind::kPartitionedHashJoin, "on ?q",
                         Scan({"x", "y"}, "x"), Scan({"x", "z"}, "x"),
                         nullptr);
  join->key_vars = {"q"};  // no descendant binds ?q
  auto diags = VerifyPlan(*join, EngineProfile{"test"});
  ASSERT_EQ(CountRule(diags, "SC001", Severity::kError), 1);
  EXPECT_NE(diags[0].message.find("?q"), std::string::npos);
  EXPECT_NE(diags[0].node_path.find("PartitionedHashJoin"),
            std::string::npos);
}

TEST(PlanVerifierTest, Sc001AppliesToFiltersAndProjects) {
  auto filter = MakeUnary(NodeKind::kFilter, "?missing > 3",
                          Scan({"x"}, "x"), nullptr);
  filter->key_vars = {"missing"};
  auto project =
      MakeUnary(NodeKind::kProject, "?alsomissing", std::move(filter),
                nullptr);
  project->key_vars = {"alsomissing"};
  auto diags = VerifyPlan(*project, EngineProfile{"test"});
  EXPECT_EQ(CountRule(diags, "SC001", Severity::kError), 2);
}

TEST(PlanVerifierTest, Sc002FlagsKeylessJoinOverDisjointSchemas) {
  auto join = MakeBinary(NodeKind::kPartitionedHashJoin, "on ???",
                         Scan({"a", "b"}, "a"), Scan({"c", "d"}, "c"),
                         nullptr);
  auto diags = VerifyPlan(*join, EngineProfile{"test"});
  EXPECT_EQ(CountRule(diags, "SC002", Severity::kError), 1);
}

TEST(PlanVerifierTest, Sc002SilentWhenSchemasOverlapOrAreUnannotated) {
  // Overlapping schemas: the join key was just not declared.
  auto overlap = MakeBinary(NodeKind::kPartitionedHashJoin, "",
                            Scan({"a", "b"}, "a"), Scan({"b", "c"}, "b"),
                            nullptr);
  EXPECT_TRUE(VerifyPlan(*overlap, EngineProfile{"test"}).empty());
  // Unannotated plan (no out_vars anywhere) must verify vacuously.
  auto bare = MakeBinary(NodeKind::kPartitionedHashJoin, "",
                         Scan({}, ""), Scan({}, ""), nullptr);
  EXPECT_TRUE(VerifyPlan(*bare, EngineProfile{"test"}).empty());
}

TEST(PlanVerifierTest, Cp001WarnsOnCartesianInMultiPatternBgp) {
  auto cross = MakeBinary(NodeKind::kCartesianProduct, "merge",
                          Scan({"a"}, "a"), Scan({"b"}, "b"), nullptr);
  auto diags = VerifyPlan(*cross, EngineProfile{"test"});
  EXPECT_EQ(CountRule(diags, "CP001", Severity::kWarn), 1);
  EXPECT_EQ(plan::FormatDiagnostic(diags[0]).rfind("WARN [CP001] at 0 "
                                                   "CartesianProduct:",
                                                   0),
            0u);
}

TEST(PlanVerifierTest, Cp001SilentForSinglePatternPlans) {
  // One scan leaf: the cross joins against a constant table, which is the
  // planner's prerogative (unit rows, class-index binds).
  auto constant = plan::ConstantResultPlan(sparql::BindingTable::Unit(),
                                           "unit");
  auto cross = MakeBinary(NodeKind::kCartesianProduct, "bind",
                          std::move(constant), Scan({"a"}, "a"), nullptr);
  EXPECT_TRUE(VerifyPlan(*cross, EngineProfile{"test"}).empty());
}

TEST(PlanVerifierTest, Bc001WarnsWhenBroadcastBuildSideExceedsThreshold) {
  EngineProfile profile{"test"};
  profile.broadcast_threshold_bytes = 10000;
  // Smaller side: 1000 rows x 2 vars x 9 bytes = 18000 bytes > 10000.
  auto join = MakeBinary(NodeKind::kBroadcastJoin, "on ?x",
                         Scan({"x", "y"}, "x", 5000),
                         Scan({"x", "z"}, "x", 1000), nullptr);
  join->key_vars = {"x"};
  auto diags = VerifyPlan(*join, profile);
  EXPECT_EQ(CountRule(diags, "BC001", Severity::kWarn), 1);

  // Under the threshold: 50 rows x 2 vars x 9 bytes = 900 bytes.
  auto small = MakeBinary(NodeKind::kBroadcastJoin, "on ?x",
                          Scan({"x", "y"}, "x", 5000),
                          Scan({"x", "z"}, "x", 50), nullptr);
  small->key_vars = {"x"};
  EXPECT_EQ(CountRule(VerifyPlan(*small, profile), "BC001", Severity::kWarn),
            0);
}

TEST(PlanVerifierTest, Bc001SkipsUnestimatedPlansAndNonBroadcastEngines) {
  EngineProfile profile{"test"};
  profile.broadcast_threshold_bytes = 10000;
  auto unestimated = MakeBinary(NodeKind::kBroadcastJoin, "on ?x",
                                Scan({"x", "y"}, "x", plan::kNoEstimate),
                                Scan({"x", "z"}, "x", plan::kNoEstimate),
                                nullptr);
  unestimated->key_vars = {"x"};
  EXPECT_TRUE(VerifyPlan(*unestimated, profile).empty());

  // threshold 0 = the engine never broadcasts; the rule does not apply.
  auto join = MakeBinary(NodeKind::kBroadcastJoin, "on ?x",
                         Scan({"x", "y"}, "x", 5000),
                         Scan({"x", "z"}, "x", 1000), nullptr);
  join->key_vars = {"x"};
  EXPECT_TRUE(VerifyPlan(*join, EngineProfile{"test"}).empty());
}

TEST(PlanVerifierTest, St001ErrorsOnLocalStarMatchWithoutStarLayout) {
  auto star = MakeScan(NodeKind::kLocalStarMatch, AccessPath::kSubjectStar,
                       "?x star", 10, nullptr);
  star->out_vars = {"x", "y"};
  star->subject_var = "x";
  auto diags = VerifyPlan(*star, EngineProfile{"test"});
  EXPECT_EQ(CountRule(diags, "ST001", Severity::kError), 1);

  EngineProfile star_local{"test"};
  star_local.star_local_layout = true;
  star->subject_var = "x";
  EXPECT_TRUE(VerifyPlan(*star, star_local).empty());
}

TEST(PlanVerifierTest, St001InfoOnShuffledStarOverSubjectPartitioning) {
  EngineProfile profile{"test"};
  profile.subject_partitioned = true;
  auto join = MakeBinary(NodeKind::kPartitionedHashJoin, "on ?x",
                         Scan({"x", "y"}, "x"), Scan({"x", "z"}, "x"),
                         nullptr);
  join->key_vars = {"x"};
  auto diags = VerifyPlan(*join, profile);
  EXPECT_EQ(CountRule(diags, "ST001", Severity::kInfo), 1);

  // A co-partitioned join already exploits the placement: no finding.
  join->partition_local = true;
  EXPECT_TRUE(VerifyPlan(*join, profile).empty());

  // Joining different subjects (a chain) is not a star: no finding.
  auto chain = MakeBinary(NodeKind::kPartitionedHashJoin, "on ?y",
                          Scan({"x", "y"}, "x"), Scan({"y", "z"}, "y"),
                          nullptr);
  chain->key_vars = {"y"};
  EXPECT_EQ(CountRule(VerifyPlan(*chain, profile), "ST001", Severity::kInfo),
            0);
}

TEST(PlanVerifierTest, Vp001WarnsOnUnboundedPredicateScanOverVp) {
  EngineProfile profile{"test"};
  profile.vertical_partitioned = true;
  auto scan = Scan({"s", "p", "o"}, "s", 100, AccessPath::kFullScan);
  auto diags = VerifyPlan(*scan, profile);
  EXPECT_EQ(CountRule(diags, "VP001", Severity::kWarn), 1);

  // Bound predicate reads one VP table: fine.
  auto vp = Scan({"s", "o"}, "s", 100, AccessPath::kVpTable);
  EXPECT_TRUE(VerifyPlan(*vp, profile).empty());
  // Engines with a single triple relation full-scan by design: fine.
  auto full = Scan({"s", "p", "o"}, "s", 100, AccessPath::kFullScan);
  EXPECT_TRUE(VerifyPlan(*full, EngineProfile{"test"}).empty());
}

TEST(PlanVerifierTest, VerifyForExecutionFailsOnlyOnErrors) {
  auto join = MakeBinary(NodeKind::kPartitionedHashJoin, "on ?q",
                         Scan({"a"}, "a"), Scan({"b"}, "b"), nullptr);
  join->key_vars = {"q"};
  Status bad = plan::VerifyForExecution(*join, EngineProfile{"test"});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("SC001"), std::string::npos);

  // Warnings alone never block execution.
  auto cross = MakeBinary(NodeKind::kCartesianProduct, "merge",
                          Scan({"a"}, "a"), Scan({"b"}, "b"), nullptr);
  EXPECT_TRUE(plan::VerifyForExecution(*cross, EngineProfile{"test"}).ok());
}

// ---------------------------------------------------------------------------
// Engine-wide checks: the plans behind the golden EXPLAINs must verify with
// zero errors, both through LintQuery and under debug-check execution.

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

const rdf::TripleStore& Dataset() {
  static rdf::TripleStore* store = [] {
    auto* s = new rdf::TripleStore();
    rdf::LubmConfig cfg;
    cfg.num_universities = 1;
    cfg.departments_per_university = 3;
    cfg.professors_per_department = 4;
    cfg.students_per_department = 20;
    cfg.courses_per_department = 5;
    s->AddAll(rdf::GenerateLubm(cfg));
    s->Dedupe();
    return s;
  }();
  return *store;
}

struct EngineFactory {
  std::string name;
  std::function<std::unique_ptr<BgpEngineBase>(SparkContext*)> make;
};

std::vector<EngineFactory> Factories() {
  std::vector<EngineFactory> out;
  out.push_back({"HAQWA", [](SparkContext* sc) {
                   return std::make_unique<HaqwaEngine>(sc);
                 }});
  out.push_back({"SPARQLGX", [](SparkContext* sc) {
                   return std::make_unique<SparqlgxEngine>(sc);
                 }});
  out.push_back({"S2RDF", [](SparkContext* sc) {
                   return std::make_unique<S2rdfEngine>(sc);
                 }});
  for (auto mode :
       {HybridMode::kSparkSqlNaive, HybridMode::kRddPartitioned,
        HybridMode::kDataFrameAuto, HybridMode::kHybrid}) {
    std::string name = std::string("Hybrid_") + HybridModeName(mode);
    out.push_back({name, [mode](SparkContext* sc) {
                     HybridEngine::Options opts;
                     opts.mode = mode;
                     return std::make_unique<HybridEngine>(sc, opts);
                   }});
  }
  out.push_back({"S2X", [](SparkContext* sc) {
                   return std::make_unique<S2xEngine>(sc);
                 }});
  out.push_back({"GraphX_SM", [](SparkContext* sc) {
                   return std::make_unique<GraphxSmEngine>(sc);
                 }});
  out.push_back({"Sparkql", [](SparkContext* sc) {
                   return std::make_unique<SparkqlEngine>(sc);
                 }});
  out.push_back({"GraphFrames", [](SparkContext* sc) {
                   return std::make_unique<GraphFramesEngine>(sc);
                 }});
  out.push_back({"SparkRDF", [](SparkContext* sc) {
                   return std::make_unique<SparkRdfEngine>(sc);
                 }});
  return out;
}

std::vector<std::pair<std::string, std::string>> ShapeQueries() {
  return {
      {"star", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3)},
      {"chain", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)},
      {"snowflake", rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake)},
  };
}

TEST(PlanVerifierEnginesTest, AllGoldenPlansLintWithoutErrors) {
  for (const auto& factory : Factories()) {
    SparkContext sc(SmallCluster());
    auto engine = factory.make(&sc);
    ASSERT_TRUE(engine->Load(Dataset()).ok()) << factory.name;
    for (const auto& [shape, text] : ShapeQueries()) {
      auto findings = engine->LintQuery(text);
      ASSERT_TRUE(findings.ok()) << factory.name << "/" << shape;
      EXPECT_FALSE(plan::HasError(*findings))
          << factory.name << "/" << shape << ":\n"
          << plan::FormatDiagnostics(*findings);
    }
  }
}

TEST(PlanVerifierEnginesTest, DebugCheckModeExecutesAllShapes) {
  for (const auto& factory : Factories()) {
    SparkContext sc(SmallCluster());
    auto engine = factory.make(&sc);
    ASSERT_TRUE(engine->Load(Dataset()).ok()) << factory.name;
    engine->set_debug_check_plans(true);
    for (const auto& [shape, text] : ShapeQueries()) {
      auto parsed = sparql::ParseQuery(text);
      ASSERT_TRUE(parsed.ok()) << shape;
      auto result = engine->Execute(*parsed);
      EXPECT_TRUE(result.ok()) << factory.name << "/" << shape << ": "
                               << result.status().ToString();
    }
  }
}

// ---------------------------------------------------------------------
// Dataflow-lint tiers over the full corpus (star/linear/snowflake/complex):
// the query analyzer and the lineage analyzer must both be ERROR-free for
// every engine variant, and their output must not depend on which context
// ran the query.

TEST(DataflowLintEnginesTest, QueryAnalyzerErrorFreeOverCorpus) {
  for (const auto& factory : Factories()) {
    SparkContext sc(SmallCluster());
    auto engine = factory.make(&sc);
    ASSERT_TRUE(engine->Load(Dataset()).ok()) << factory.name;
    for (const auto& [shape, text] : rdf::LubmQueryMix()) {
      auto findings = engine->AnalyzeQueryText(text);
      ASSERT_TRUE(findings.ok())
          << factory.name << "/" << rdf::QueryShapeName(shape);
      EXPECT_FALSE(plan::HasError(*findings))
          << factory.name << "/" << rdf::QueryShapeName(shape) << ":\n"
          << plan::FormatDiagnostics(*findings);
    }
  }
}

TEST(DataflowLintEnginesTest, LineageAnalyzerErrorFreeOverCorpus) {
  for (const auto& factory : Factories()) {
    SparkContext sc(SmallCluster());
    auto engine = factory.make(&sc);
    ASSERT_TRUE(engine->Load(Dataset()).ok()) << factory.name;
    for (const auto& [shape, text] : rdf::LubmQueryMix()) {
      auto graph = engine->CaptureLineage(text);
      ASSERT_TRUE(graph.ok())
          << factory.name << "/" << rdf::QueryShapeName(shape) << ": "
          << graph.status().ToString();
      EXPECT_FALSE(plan::HasError(graph->Analyze()))
          << factory.name << "/" << rdf::QueryShapeName(shape) << ":\n"
          << plan::FormatDiagnostics(graph->Analyze());
    }
  }
}

TEST(DataflowLintEnginesTest, LineageCaptureDeterministicAcrossContexts) {
  // Node ids are assigned on the driver during plan build/execution, so two
  // fresh contexts running the same query produce byte-identical DOT — the
  // determinism dataflow_lint's CI diff relies on.
  const std::string text = rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake);
  auto capture = [&](int threads) {
    ClusterConfig cfg = SmallCluster();
    cfg.executor_threads = threads;
    SparkContext sc(cfg);
    SparqlgxEngine engine(&sc);
    EXPECT_TRUE(engine.Load(Dataset()).ok());
    auto graph = engine.CaptureLineage(text);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    return graph->ToDot();
  };
  std::string serial = capture(0);
  EXPECT_EQ(serial, capture(0));
  EXPECT_EQ(serial, capture(3));
}

TEST(DataflowLintEnginesTest, QueryGateRejectsErrorQueriesBeforeExecution) {
  SparkContext sc(SmallCluster());
  S2rdfEngine engine(&sc);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  engine.set_debug_check_queries(true);

  auto bad = sparql::ParseQuery(
      "SELECT ?ghost WHERE { ?s <http://p> ?o }");
  ASSERT_TRUE(bad.ok());
  auto rejected = engine.Execute(*bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("QA001"), std::string::npos);

  // WARN/INFO-level findings must not block execution.
  auto good = sparql::ParseQuery(
      rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(engine.Execute(*good).ok());

  // Gate off: the same query executes (the ghost column is simply unbound).
  engine.set_debug_check_queries(false);
  EXPECT_TRUE(engine.Execute(*bad).ok());
}

TEST(PlanVerifierEnginesTest, DebugCheckRejectsBrokenPlansBeforeExecution) {
  // VerifyForExecution is what EvaluateBgp consults in debug-check mode;
  // an ERROR-level finding must map to kInvalidArgument before any Spark
  // state is touched.
  auto star = MakeScan(NodeKind::kLocalStarMatch, AccessPath::kSubjectStar,
                       "?x star", 10, nullptr);
  star->subject_var = "x";
  star->out_vars = {"x"};
  EngineProfile no_star_layout{"S2X"};
  Status status = plan::VerifyForExecution(*star, no_star_layout);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("ST001"), std::string::npos);
}

}  // namespace
}  // namespace rdfspark::systems
