// Telemetry-pipeline tests: the obs/ subsystem must be a deterministic
// function of the multiset of request records — exact quantiles where the
// histogram layout promises them, merge associativity, canonical event
// ordering under bounded eviction, stats-store round-trips, Prometheus
// line-format acceptance, ingest-order invariance of the sink, the logical
// plan-cache replay, and (end to end) bit-identical serving artifacts
// across simulated executor-thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/audit.h"
#include "obs/event_log.h"
#include "obs/histogram.h"
#include "obs/prometheus.h"
#include "obs/telemetry.h"
#include "obs/time_series.h"
#include "rdf/generator.h"
#include "rdf/store.h"
#include "serving/query_server.h"
#include "spark/context.h"

namespace rdfspark::obs {
namespace {

// ---- LatencyHistogram ----------------------------------------------------

TEST(LatencyHistogramTest, ExactQuantilesForSmallValues) {
  // Values below 2^kSubBits = 16 get one bucket each, so quantiles are
  // exact order statistics: rank ceil(q * count).
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 55u);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 1u);
  EXPECT_EQ(h.ValueAtQuantile(0.50), 5u);
  EXPECT_EQ(h.ValueAtQuantile(0.90), 9u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 10u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 10u);
  EXPECT_EQ(h.min_value(), 1u);
  EXPECT_EQ(h.max_value(), 10u);
}

TEST(LatencyHistogramTest, LargeValuesBoundedRelativeErrorAndExactMax) {
  LatencyHistogram one;
  one.Record(1'000'000);
  // A single sample: every quantile's bucket bound clamps to the max.
  EXPECT_EQ(one.ValueAtQuantile(0.5), 1'000'000u);
  EXPECT_EQ(one.ValueAtQuantile(0.99), 1'000'000u);

  LatencyHistogram two;
  two.Record(100'000);
  two.Record(200'000);
  uint64_t p50 = two.ValueAtQuantile(0.5);
  EXPECT_GE(p50, 100'000u);             // Bucket upper bound >= the sample.
  EXPECT_LE(p50, 106'250u);             // Within the 6.25% layout bound.
  EXPECT_EQ(two.ValueAtQuantile(1.0), 200'000u);  // Clamped to max: exact.
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  std::vector<uint64_t> a = {1, 5, 9, 100'000};
  std::vector<uint64_t> b = {2, 6, 1'234};
  std::vector<uint64_t> c = {7, 50'000'000};
  auto make = [](const std::vector<uint64_t>& vs) {
    LatencyHistogram h;
    for (uint64_t v : vs) h.Record(v);
    return h;
  };
  LatencyHistogram ha = make(a), hb = make(b), hc = make(c);

  LatencyHistogram left = ha;   // (a + b) + c
  left.Merge(hb);
  left.Merge(hc);
  LatencyHistogram bc = hb;     // a + (b + c)
  bc.Merge(hc);
  LatencyHistogram right = ha;
  right.Merge(bc);
  EXPECT_TRUE(left == right);

  LatencyHistogram ab = ha;     // a + b == b + a
  ab.Merge(hb);
  LatencyHistogram ba = hb;
  ba.Merge(ha);
  EXPECT_TRUE(ab == ba);

  // Merging equals recording the union directly.
  std::vector<uint64_t> all;
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), c.begin(), c.end());
  EXPECT_TRUE(left == make(all));
}

// ---- WindowedRegistry ----------------------------------------------------

TEST(WindowedRegistryTest, TumblingWindowsPartitionTheTimeline) {
  WindowSpec spec;
  spec.width_ns = 100;
  spec.stride_ns = 100;
  EXPECT_EQ(spec.WindowsPerInstant(), 1u);
  WindowedRegistry reg(spec);
  SeriesId id{ScopeKind::kTotal, "", "requests"};
  reg.Add(id, 0, 1);
  reg.Add(id, 99, 1);    // Same window as t=0.
  reg.Add(id, 100, 1);   // Next window.
  reg.Add(id, 250, 1);   // [200, 300).

  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].start_ns, 0u);
  EXPECT_EQ(snap[0].end_ns, 100u);
  EXPECT_EQ(snap[0].series.at(id)->counter, 2);
  EXPECT_EQ(snap[1].start_ns, 100u);
  EXPECT_EQ(snap[1].series.at(id)->counter, 1);
  EXPECT_EQ(snap[2].start_ns, 200u);
  EXPECT_EQ(snap[2].series.at(id)->counter, 1);
}

TEST(WindowedRegistryTest, SlidingWindowsOverlap) {
  WindowSpec spec;
  spec.width_ns = 100;
  spec.stride_ns = 50;
  EXPECT_EQ(spec.WindowsPerInstant(), 2u);
  WindowedRegistry reg(spec);
  SeriesId id{ScopeKind::kTenant, "t0", "requests"};
  reg.Add(id, 250, 1);  // In [200, 300) and [250, 350).

  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].start_ns, 200u);
  EXPECT_EQ(snap[1].start_ns, 250u);
  for (const auto& w : snap) EXPECT_EQ(w.series.at(id)->counter, 1);
}

TEST(WindowedRegistryTest, GaugeIsMaxAndHistogramMerges) {
  WindowedRegistry reg;
  SeriesId g{ScopeKind::kTotal, "", "inflight"};
  SeriesId h{ScopeKind::kTotal, "", "latency_ns"};
  reg.SetMax(g, 10, 3);
  reg.SetMax(g, 20, 7);
  reg.SetMax(g, 30, 5);
  reg.Observe(h, 10, 100);
  reg.Observe(h, 20, 200);
  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].series.at(g)->gauge, 7u);
  EXPECT_EQ(snap[0].series.at(h)->hist->count(), 2u);
}

// ---- EventLog ------------------------------------------------------------

TEST(EventLogTest, CanonicalOrderAndBoundedEviction) {
  EventLog log(/*capacity=*/2);
  auto ev = [](uint64_t t, EventKind kind) {
    Event e;
    e.t_ns = t;
    e.scope = "tenant0";
    e.kind = kind;
    return e;
  };
  // Append out of order: eviction must drop the canonically *oldest*
  // (smallest timestamp), independent of append order.
  log.Add(ev(30, EventKind::kRequestFinish));
  log.Add(ev(10, EventKind::kRequestStart));
  log.Add(ev(20, EventKind::kCacheHit));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  auto sorted = log.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].t_ns, 20u);
  EXPECT_EQ(sorted[1].t_ns, 30u);
  EXPECT_TRUE(log.Covers(EventKind::kCacheHit));
  EXPECT_FALSE(log.Covers(EventKind::kRequestStart));  // Evicted.

  std::string json = log.ToJson();
  EXPECT_TRUE(ValidateJson(json));
  EXPECT_NE(json.find("\"dropped\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"cache_hit\""), std::string::npos);
}

TEST(EventLogTest, EventJsonIsValidWithSortedFields) {
  Event e;
  e.t_ns = 5;
  e.scope = "tenantA";
  e.seq = 2;
  e.kind = EventKind::kCacheHit;
  e.AddField("key", std::string("k\"1"));
  e.AddField("epoch", uint64_t{3});
  std::string json = e.ToJson();
  EXPECT_TRUE(ValidateJson(json)) << json;
  // Fields are sorted by name: epoch before key.
  EXPECT_LT(json.find("\"epoch\":3"), json.find("\"key\":"));
  // The quote in the value is escaped, not a terminator.
  EXPECT_NE(json.find("k\\\"1"), std::string::npos);
}

// ---- StatsStore ----------------------------------------------------------

TEST(StatsStoreTest, RoundTripsThroughJson) {
  StatsStore store;
  PatternActual a{"vp ?s <http://ex/p> ?o", "<http://ex/p>", 10, 40};
  PatternActual b{"vp ?s <http://ex/p> ?o", "<http://ex/p>", 10, 60};
  PatternActual c{"scan ?s ?p ?o", "?", 5, 7};
  store.Observe(a);
  store.Observe(b);
  store.Observe(c);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_DOUBLE_EQ(store.LookupMeanRows("vp ?s <http://ex/p> ?o"), 50.0);

  std::string json = store.ToJson();
  EXPECT_TRUE(ValidateJson(json)) << json;
  Result<StatsStore> parsed = StatsStore::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->LookupMeanRows("vp ?s <http://ex/p> ?o"), 50.0);
  EXPECT_DOUBLE_EQ(parsed->LookupMeanRows("scan ?s ?p ?o"), 7.0);
  EXPECT_LT(parsed->LookupMeanRows("never seen"), 0.0);
  // Re-serialization is byte-identical: the store is canonically ordered.
  EXPECT_EQ(parsed->ToJson(), json);
}

// ---- Prometheus text format ----------------------------------------------

TEST(PrometheusTest, BuilderOutputPassesTheChecker) {
  PrometheusBuilder b;
  b.Family("rdfspark_requests_total", "counter", "served requests");
  b.Add("rdfspark_requests_total", {{"tenant", "t0"}, {"variant", "S2RDF"}},
        uint64_t{42});
  b.Family("rdfspark_qps", "gauge", "queries per second");
  b.Add("rdfspark_qps", {}, 12.5);
  b.Family("rdfspark_latency_ns", "histogram", "latency distribution");
  b.Add("rdfspark_latency_ns_bucket", {{"le", "1000"}}, uint64_t{3});
  b.Add("rdfspark_latency_ns_bucket", {{"le", "+Inf"}}, uint64_t{4});
  b.Add("rdfspark_latency_ns_sum", {}, uint64_t{2500});
  b.Add("rdfspark_latency_ns_count", {}, uint64_t{4});
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(b.Text(), &error)) << error;
}

TEST(PrometheusTest, CheckerRejectsMalformedLines) {
  std::string error;
  // A sample whose family was never TYPE-declared.
  EXPECT_FALSE(CheckPrometheusText("orphan_metric 1\n", &error));
  // An illegal metric name (leading digit).
  EXPECT_FALSE(CheckPrometheusText(
      "# TYPE 1bad counter\n1bad 2\n", &error));
  // An unterminated label list.
  EXPECT_FALSE(CheckPrometheusText(
      "# TYPE m counter\nm{l=\"v\" 3\n", &error));
  // A non-numeric value.
  EXPECT_FALSE(CheckPrometheusText(
      "# TYPE m counter\nm not_a_number\n", &error));
}

// ---- TelemetrySink -------------------------------------------------------

RequestRecord MakeRecord(const std::string& tenant, uint64_t seq,
                         const std::string& variant, uint64_t busy_ns,
                         const std::string& cache_key,
                         RequestRecord::Outcome outcome =
                             RequestRecord::Outcome::kOk) {
  RequestRecord r;
  r.tenant = tenant;
  r.tenant_seq = seq;
  r.variant = variant;
  r.epoch = 1;
  r.outcome = outcome;
  r.cache_key = cache_key;
  r.busy_ns = busy_ns;
  r.rows = busy_ns / 1000;
  r.tasks = 2;
  r.shuffle_bytes = busy_ns / 10;
  return r;
}

std::vector<RequestRecord> MixedWorkload() {
  std::vector<RequestRecord> records;
  records.push_back(MakeRecord("a", 0, "S2RDF", 3'000'000, "S2RDF\nq1"));
  records.push_back(MakeRecord("a", 1, "S2RDF", 2'000'000, "S2RDF\nq1"));
  records.push_back(MakeRecord("a", 2, "HAQWA", 40'000'000, "HAQWA\nq2"));
  records.push_back(MakeRecord("a", 3, "S2X", 1'000'000, ""));
  records.back().cache_bypass = true;
  records.push_back(MakeRecord("b", 0, "S2RDF", 9'000'000, "S2RDF\nq1"));
  records.push_back(MakeRecord("b", 1, "S2RDF", 0, "",
                               RequestRecord::Outcome::kRejected));
  records.back().detail = "InvalidArgument: rejected by admission";
  records.push_back(MakeRecord("b", 2, "HAQWA", 500'000, "HAQWA\nq2",
                               RequestRecord::Outcome::kFailed));
  records.back().detail = "Internal: synthetic failure";
  return records;
}

TEST(TelemetrySinkTest, ExportsAreIngestOrderInvariant) {
  TelemetryOptions opts;
  opts.window.width_ns = 10'000'000;  // 10 simulated ms
  opts.window.stride_ns = 10'000'000;
  TelemetrySink ordered(opts);
  TelemetrySink shuffled(opts);

  std::vector<RequestRecord> records = MixedWorkload();
  for (const RequestRecord& r : records) ordered.Ingest(r);

  // Worst-case reordering: every tenant's records arrive backwards. The
  // sink must buffer and apply them in tenant_seq order.
  std::vector<RequestRecord> reversed(records.rbegin(), records.rend());
  shuffled.Ingest(reversed.front());
  EXPECT_EQ(shuffled.unapplied(), 1u);  // Stalled behind missing seq 0.
  for (size_t i = 1; i < reversed.size(); ++i) shuffled.Ingest(reversed[i]);
  EXPECT_EQ(shuffled.unapplied(), 0u);
  EXPECT_EQ(ordered.unapplied(), 0u);

  EXPECT_EQ(ordered.TelemetryJson(), shuffled.TelemetryJson());
  EXPECT_EQ(ordered.EventsJson(), shuffled.EventsJson());
  EXPECT_EQ(ordered.PrometheusText(), shuffled.PrometheusText());
  EXPECT_EQ(ordered.WindowsText(), shuffled.WindowsText());
  EXPECT_EQ(ordered.AuditJson(), shuffled.AuditJson());
  EXPECT_EQ(ordered.StatsStoreJson(), shuffled.StatsStoreJson());

  // The exports are well-formed and the checker accepts the exposition.
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(ordered.PrometheusText(), &error)) << error;
  EXPECT_TRUE(ValidateJson(ordered.TelemetryJson(), &error)) << error;
  EXPECT_TRUE(ValidateJson(ordered.EventsJson(), &error)) << error;
  EXPECT_GE(ordered.window_count(), 3u);
}

TEST(TelemetrySinkTest, LogicalCacheReplayModelsLruAtCapacity) {
  TelemetryOptions opts;
  opts.logical_cache_capacity = 1;
  TelemetrySink sink(opts);
  sink.RecordDatasetSwap(1, 100);
  sink.Ingest(MakeRecord("t", 0, "E", 1'000'000, "A"));  // miss, fill A
  sink.Ingest(MakeRecord("t", 1, "E", 1'000'000, "A"));  // hit
  sink.Ingest(MakeRecord("t", 2, "E", 1'000'000, "B"));  // miss, evict A
  sink.Ingest(MakeRecord("t", 3, "E", 1'000'000, "A"));  // miss again
  RequestRecord bypass = MakeRecord("t", 4, "S2X", 1'000'000, "");
  bypass.cache_bypass = true;
  sink.Ingest(bypass);

  Result<JsonValue> parsed = ParseJson(sink.TelemetryJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* cache = parsed->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->NumberOr("hits", -1), 1.0);
  EXPECT_EQ(cache->NumberOr("misses", -1), 3.0);
  EXPECT_EQ(cache->NumberOr("bypasses", -1), 1.0);
  EXPECT_EQ(cache->NumberOr("evictions", -1), 2.0);

  // The replay synthesizes typed cache events on the virtual timeline.
  std::string events = sink.EventsJson();
  EXPECT_NE(events.find("\"kind\":\"cache_fill\""), std::string::npos);
  EXPECT_NE(events.find("\"kind\":\"cache_hit\""), std::string::npos);
  EXPECT_NE(events.find("\"kind\":\"cache_evict\""), std::string::npos);
  EXPECT_NE(events.find("\"kind\":\"dataset_swap\""), std::string::npos);
}

TEST(TelemetrySinkTest, AuditTriggersOnLatencyAndEstimateError) {
  TelemetryOptions opts;
  opts.audit.latency_threshold_ns = 1'000'000;
  opts.audit.tenant_latency_threshold_ns["lenient"] = 5'000'000;
  opts.audit.est_error_bound = 16.0;
  TelemetrySink sink(opts);

  EXPECT_FALSE(sink.DecideAudit("t", 999'999, 1.0).Any());
  AuditDecision lat = sink.DecideAudit("t", 1'000'000, 1.0);
  EXPECT_TRUE(lat.latency);
  EXPECT_FALSE(lat.est_error);
  // The per-tenant override raises the bar for "lenient".
  EXPECT_FALSE(sink.DecideAudit("lenient", 1'000'000, 1.0).Any());
  EXPECT_TRUE(sink.DecideAudit("lenient", 5'000'000, 1.0).latency);
  // The estimate-error trigger fires regardless of latency.
  AuditDecision err = sink.DecideAudit("t", 0, 16.0);
  EXPECT_TRUE(err.est_error);
  EXPECT_FALSE(err.latency);
}

// ---- End to end: serving artifacts across executor-thread counts. --------

rdf::TripleStore TinyLubm() {
  rdf::LubmConfig cfg;
  cfg.num_universities = 1;
  cfg.departments_per_university = 3;
  cfg.professors_per_department = 4;
  cfg.students_per_department = 20;
  cfg.courses_per_department = 5;
  cfg.seed = 42;
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.Dedupe();
  return store;
}

/// Runs an identical two-tenant workload on a cluster with
/// `executor_threads` simulated threads and returns every telemetry
/// artifact the sink exports.
std::vector<std::string> ServeArtifacts(const rdf::TripleStore& store,
                                        int executor_threads) {
  spark::ClusterConfig cluster;
  cluster.num_executors = 4;
  cluster.default_parallelism = 8;
  cluster.executor_threads = executor_threads;
  spark::SparkContext sc(cluster);

  serving::QueryServer::Options options;
  options.worker_threads = 4;
  options.verify_queries = false;
  options.verify_plans = false;
  options.check_races = false;
  options.variants = {"SPARQLGX", "HAQWA", "S2X"};
  options.telemetry_options.window.width_ns = 1'000'000;  // 1 simulated ms
  options.telemetry_options.window.stride_ns = 1'000'000;
  options.telemetry_options.audit.latency_threshold_ns = 1'000'000;
  serving::QueryServer server(&sc, options);
  EXPECT_TRUE(server.AttachDataset(store).ok());

  std::vector<std::pair<rdf::QueryShape, std::string>> mix =
      rdf::LubmQueryMix();
  std::vector<std::shared_ptr<serving::QueryServer::Ticket>> tickets;
  for (int t = 0; t < 2; ++t) {
    int session = server.OpenSession("tenant" + std::to_string(t));
    for (const auto& variant : server.variant_names()) {
      for (const auto& [shape, text] : mix) {
        if (shape == rdf::QueryShape::kComplex) continue;  // BGP engines.
        tickets.push_back(server.Submit(session, variant, text));
      }
    }
  }
  for (auto& ticket : tickets) ticket->Wait();

  TelemetrySink* sink = server.telemetry();
  EXPECT_NE(sink, nullptr);
  EXPECT_EQ(sink->unapplied(), 0u);
  EXPECT_GE(sink->window_count(), 3u);
  EXPECT_GE(sink->audit_count(), 1u);
  return {sink->TelemetryJson(), sink->EventsJson(),  sink->AuditJson(),
          sink->StatsStoreJson(), sink->PrometheusText(),
          sink->WindowsText()};
}

TEST(TelemetryDeterminismTest, ArtifactsBitIdenticalAcrossExecutorThreads) {
  rdf::TripleStore store = TinyLubm();
  std::vector<std::string> serial = ServeArtifacts(store, 1);
  std::vector<std::string> threaded = ServeArtifacts(store, 8);
  ASSERT_EQ(serial.size(), threaded.size());
  const char* names[] = {"telemetry.json", "events.json",     "audit.json",
                         "stats_store.json", "metrics.prom", "windows.txt"};
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i])
        << names[i] << " diverged between executor_threads=1 and =8";
    EXPECT_FALSE(serial[i].empty()) << names[i];
  }
}

}  // namespace
}  // namespace rdfspark::obs
