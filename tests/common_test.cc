#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "sparql/binding.h"

namespace rdfspark {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token at line 3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token at line 3");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  RDFSPARK_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrips) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, "::"), "x::y::z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringUtilTest, AffixChecks) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(3u << 20), "3.00 MiB");
}

TEST(HashTest, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  // Known FNV-1a vector for empty input.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
}

TEST(HashTest, MixSpreadsConsecutiveInts) {
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 64; ++i) buckets.insert(MixHash64(i) % 8);
  EXPECT_GE(buckets.size(), 7u);  // near-uniform over 8 buckets
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, RangeInclusive) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng r(5);
  int low = 0, high = 0;
  for (int i = 0; i < 2000; ++i) {
    uint64_t k = r.Zipf(100, 1.0);
    EXPECT_LT(k, 100u);
    if (k < 10) ++low;
    if (k >= 90) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, ShufflePermutes) {
  Rng r(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// The O(1) VarIndex map must agree with a linear scan of vars() on every
// table shape the relational ops produce, or column lookups silently read
// the wrong cells.
void ExpectVarIndexConsistent(const sparql::BindingTable& table) {
  for (size_t i = 0; i < table.vars().size(); ++i) {
    EXPECT_EQ(table.VarIndex(table.vars()[i]), static_cast<int>(i))
        << table.vars()[i];
  }
  EXPECT_EQ(table.VarIndex("no_such_variable"), -1);
}

TEST(BindingTableVarIndexTest, ConsistentAcrossTableShapes) {
  sparql::BindingTable a({"s", "p", "o"});
  a.AddRow({1, 2, 3});
  a.AddRow({4, 5, 6});
  ExpectVarIndexConsistent(a);

  sparql::BindingTable b({"o", "x"});
  b.AddRow({3, 9});
  ExpectVarIndexConsistent(b);

  ExpectVarIndexConsistent(sparql::HashJoin(a, b));
  ExpectVarIndexConsistent(sparql::UnionTables(a, b));
  ExpectVarIndexConsistent(sparql::Project(a, {"o", "s", "missing"}));
  ExpectVarIndexConsistent(sparql::Distinct(a));
  ExpectVarIndexConsistent(sparql::BindingTable::Unit());
}

}  // namespace
}  // namespace rdfspark
