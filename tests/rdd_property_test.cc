// Property-based sweeps over the RDD layer: for a grid of cluster shapes
// and random datasets, every distributed operator must agree with a plain
// std:: reference implementation, and the simulator's conservation laws
// must hold (shuffles move exactly the input records; eviction never
// changes results).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "spark/rdd.h"

namespace rdfspark::spark {
namespace {

struct GridParam {
  int executors;
  int partitions;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<GridParam>& info) {
  return "e" + std::to_string(info.param.executors) + "_p" +
         std::to_string(info.param.partitions) + "_s" +
         std::to_string(info.param.seed);
}

class RddPropertyTest : public ::testing::TestWithParam<GridParam> {
 protected:
  RddPropertyTest()
      : sc_(MakeConfig()), rng_(GetParam().seed) {}

  static ClusterConfig MakeConfig() {
    ClusterConfig cfg;
    cfg.num_executors = GetParam().executors;
    cfg.default_parallelism = GetParam().partitions;
    return cfg;
  }

  std::vector<std::pair<int64_t, int64_t>> RandomPairs(int n, int key_mod) {
    std::vector<std::pair<int64_t, int64_t>> out;
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.emplace_back(static_cast<int64_t>(rng_.Below(
                           static_cast<uint64_t>(key_mod))),
                       static_cast<int64_t>(rng_.Below(1000)));
    }
    return out;
  }

  SparkContext sc_;
  Rng rng_;
};

TEST_P(RddPropertyTest, CountEqualsCollectSize) {
  auto data = RandomPairs(333, 50);
  auto rdd = Parallelize(&sc_, data, GetParam().partitions);
  EXPECT_EQ(rdd.Count(), rdd.Collect().size());
  EXPECT_EQ(rdd.Count(), data.size());
}

TEST_P(RddPropertyTest, DistinctMatchesStdSet) {
  auto data = RandomPairs(400, 20);
  auto got = Parallelize(&sc_, data, GetParam().partitions)
                 .Distinct()
                 .Collect();
  std::set<std::pair<int64_t, int64_t>> expected(data.begin(), data.end());
  std::set<std::pair<int64_t, int64_t>> got_set(got.begin(), got.end());
  EXPECT_EQ(got.size(), expected.size()) << "distinct produced duplicates";
  EXPECT_EQ(got_set, expected);
}

TEST_P(RddPropertyTest, ReduceByKeyMatchesStdMap) {
  auto data = RandomPairs(500, 17);
  auto got = Parallelize(&sc_, data, GetParam().partitions)
                 .ReduceByKey([](int64_t a, int64_t b) { return a + b; })
                 .Collect();
  std::map<int64_t, int64_t> expected;
  for (auto& [k, v] : data) expected[k] += v;
  std::map<int64_t, int64_t> got_map(got.begin(), got.end());
  EXPECT_EQ(got_map, expected);
}

TEST_P(RddPropertyTest, JoinMatchesNestedLoopReference) {
  auto left = RandomPairs(120, 25);
  auto right = RandomPairs(80, 25);
  auto got = Parallelize(&sc_, left, GetParam().partitions)
                 .Join(Parallelize(&sc_, right, GetParam().partitions))
                 .Collect();
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> expected;
  for (auto& [lk, lv] : left) {
    for (auto& [rk, rv] : right) {
      if (lk == rk) expected.insert({lk, lv, rv});
    }
  }
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> got_set;
  for (auto& [k, vw] : got) got_set.insert({k, vw.first, vw.second});
  EXPECT_EQ(got_set, expected);
}

TEST_P(RddPropertyTest, SortByProducesSortedOutput) {
  auto data = RandomPairs(300, 1000);
  auto got = Parallelize(&sc_, data, GetParam().partitions)
                 .SortBy([](const std::pair<int64_t, int64_t>& p) {
                   return p.first;
                 })
                 .Collect();
  ASSERT_EQ(got.size(), data.size());
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].first, got[i].first) << "unsorted at " << i;
  }
}

TEST_P(RddPropertyTest, ShuffleConservesRecords) {
  auto data = RandomPairs(256, 64);
  auto before = sc_.metrics();
  auto shuffled = Parallelize(&sc_, data, GetParam().partitions)
                      .PartitionByKey(GetParam().partitions);
  EXPECT_EQ(shuffled.Count(), data.size());
  auto delta = sc_.metrics() - before;
  EXPECT_EQ(delta.shuffle_records, data.size())
      << "shuffle must move each record exactly once";
  EXPECT_LE(delta.remote_shuffle_bytes, delta.shuffle_bytes);
  // With one executor nothing is remote.
  if (GetParam().executors == 1) {
    EXPECT_EQ(delta.remote_shuffle_bytes, 0u);
  }
}

TEST_P(RddPropertyTest, EvictionIsInvisible) {
  auto data = RandomPairs(200, 10);
  auto rdd = Parallelize(&sc_, data, GetParam().partitions)
                 .ReduceByKey([](int64_t a, int64_t b) { return a + b; })
                 .MapValues([](const int64_t& v) { return v * 2; });
  auto first = rdd.Collect();
  for (int p = 0; p < rdd.num_partitions(); p += 2) {
    rdd.node()->EvictPartition(p);
  }
  auto second = rdd.Collect();
  std::multiset<std::pair<int64_t, int64_t>> a(first.begin(), first.end());
  std::multiset<std::pair<int64_t, int64_t>> b(second.begin(), second.end());
  EXPECT_EQ(a, b);
}

TEST_P(RddPropertyTest, CoGroupPartitionsAllValues) {
  auto left = RandomPairs(90, 12);
  auto right = RandomPairs(70, 12);
  auto got = Parallelize(&sc_, left, GetParam().partitions)
                 .CoGroup(Parallelize(&sc_, right, GetParam().partitions))
                 .Collect();
  size_t left_total = 0, right_total = 0;
  std::set<int64_t> keys;
  for (auto& [k, vw] : got) {
    EXPECT_TRUE(keys.insert(k).second) << "duplicate cogroup key " << k;
    left_total += vw.first.size();
    right_total += vw.second.size();
  }
  EXPECT_EQ(left_total, left.size());
  EXPECT_EQ(right_total, right.size());
}

INSTANTIATE_TEST_SUITE_P(
    ClusterGrid, RddPropertyTest,
    ::testing::Values(GridParam{1, 1, 1}, GridParam{1, 8, 2},
                      GridParam{4, 4, 3}, GridParam{4, 16, 4},
                      GridParam{8, 8, 5}, GridParam{3, 7, 6},
                      GridParam{16, 32, 7}),
    ParamName);

}  // namespace
}  // namespace rdfspark::spark
