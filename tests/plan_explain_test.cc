// Golden EXPLAIN tests: the physical plan each engine reports for the
// canonical LUBM query shapes is pinned verbatim. A changed plan shape is a
// deliberate planner change — regenerate with
//
//   RDFSPARK_PRINT_EXPLAIN=1 ./plan_explain_test
//
// and paste the emitted table between the GOLDEN_EXPLAIN markers.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "systems/engine.h"
#include "systems/graphframes_engine.h"
#include "systems/graphx_sm.h"
#include "systems/haqwa.h"
#include "systems/hybrid.h"
#include "systems/s2rdf.h"
#include "systems/s2x.h"
#include "systems/sparkql.h"
#include "systems/sparkrdf.h"
#include "systems/sparqlgx.h"

namespace rdfspark::systems {
namespace {

using spark::ClusterConfig;
using spark::SparkContext;

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

/// Same dataset as engines_test: one small LUBM university.
const rdf::TripleStore& Dataset() {
  static rdf::TripleStore* store = [] {
    auto* s = new rdf::TripleStore();
    rdf::LubmConfig cfg;
    cfg.num_universities = 1;
    cfg.departments_per_university = 3;
    cfg.professors_per_department = 4;
    cfg.students_per_department = 20;
    cfg.courses_per_department = 5;
    s->AddAll(rdf::GenerateLubm(cfg));
    s->Dedupe();
    return s;
  }();
  return *store;
}

struct ShapeQuery {
  const char* label;
  std::string text;
};

std::vector<ShapeQuery> ShapeQueries() {
  return {
      {"star", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3)},
      {"chain", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)},
      {"snowflake", rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake)},
  };
}

struct EngineFactory {
  std::string name;
  std::function<std::unique_ptr<RdfQueryEngine>(SparkContext*)> make;
};

std::vector<EngineFactory> Factories() {
  std::vector<EngineFactory> out;
  out.push_back({"HAQWA", [](SparkContext* sc) {
                   return std::make_unique<HaqwaEngine>(sc);
                 }});
  out.push_back({"SPARQLGX", [](SparkContext* sc) {
                   return std::make_unique<SparqlgxEngine>(sc);
                 }});
  out.push_back({"S2RDF", [](SparkContext* sc) {
                   return std::make_unique<S2rdfEngine>(sc);
                 }});
  for (auto mode :
       {HybridMode::kSparkSqlNaive, HybridMode::kRddPartitioned,
        HybridMode::kDataFrameAuto, HybridMode::kHybrid}) {
    std::string name = std::string("Hybrid_") + HybridModeName(mode);
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    out.push_back({name, [mode](SparkContext* sc) {
                     HybridEngine::Options opts;
                     opts.mode = mode;
                     return std::make_unique<HybridEngine>(sc, opts);
                   }});
  }
  out.push_back({"S2X", [](SparkContext* sc) {
                   return std::make_unique<S2xEngine>(sc);
                 }});
  out.push_back({"GraphX_SM", [](SparkContext* sc) {
                   return std::make_unique<GraphxSmEngine>(sc);
                 }});
  out.push_back({"Sparkql", [](SparkContext* sc) {
                   return std::make_unique<SparkqlEngine>(sc);
                 }});
  out.push_back({"GraphFrames", [](SparkContext* sc) {
                   return std::make_unique<GraphFramesEngine>(sc);
                 }});
  out.push_back({"SparkRDF", [](SparkContext* sc) {
                   return std::make_unique<SparkRdfEngine>(sc);
                 }});
  return out;
}

const std::map<std::string, std::string>& GoldenExplains() {
  static const std::map<std::string, std::string>* goldens =
      new std::map<std::string, std::string>{
          // GOLDEN_EXPLAIN_BEGIN
          {"HAQWA|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  LocalStarMatch [subject-star ?x (3 patterns)] (est=12)
)PLAN"},
          {"HAQWA|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=?)
  PartitionedHashJoin [on ?v1 (re-key)] (est=?)
    PartitionedHashJoin [on ?v2] (est=?)
      LocalStarMatch [subject-star ?v2 (1 pattern)] (est=3)
      LocalStarMatch [subject-star ?v1 (1 pattern)] (est=12)
    LocalStarMatch [subject-star ?v0 (1 pattern)] (est=15)
)PLAN"},
          {"HAQWA|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=?)
  PartitionedHashJoin [on ?p (re-key)] (est=?)
    PartitionedHashJoin [on ?d] (est=?)
      LocalStarMatch [subject-star ?d (1 pattern)] (est=3)
      LocalStarMatch [subject-star ?p (2 patterns)] (est=12)
    LocalStarMatch [subject-star ?x (3 patterns)] (est=15)
)PLAN"},
          {"SPARQLGX|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  PartitionedHashJoin [on ?x] (est=?)
    PartitionedHashJoin [on ?x] (est=?)
      PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
      PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e .] (est=13)
    PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#name> ?n .] (est=128)
)PLAN"},
          {"SPARQLGX|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=?)
  PartitionedHashJoin [on ?v1] (est=?)
    PartitionedHashJoin [on ?v2] (est=?)
      PatternScan [vp ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 .] (est=4)
      PatternScan [vp ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 .] (est=13)
    PatternScan [vp ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 .] (est=16)
)PLAN"},
          {"SPARQLGX|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=?)
  PartitionedHashJoin [on ?p] (est=?)
    PartitionedHashJoin [on ?x] (est=?)
      PartitionedHashJoin [on ?d] (est=?)
        PartitionedHashJoin [on ?p] (est=?)
          PartitionedHashJoin [on ?x] (est=?)
            PatternScan [vp ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lubm.example.org/univ-bench.owl#GraduateStudent> .] (est=2)
            PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p .] (est=16)
          PatternScan [vp ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
        PatternScan [vp ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u .] (est=4)
      PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm .] (est=61)
    PatternScan [vp ?p <http://lubm.example.org/univ-bench.owl#name> ?pn .] (est=128)
)PLAN"},
          {"S2RDF|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  PartitionedHashJoin [on t2.s = t0.s] (est=?)
    PartitionedHashJoin [on t1.s = t0.s] (est=?)
      PatternScan [vp vp_p23 t0] (est=12)
      PatternScan [extvp extvp_ss_p3_p25 t1] (est=12)
    PatternScan [vp vp_p25 t2] (est=12)
)PLAN"},
          {"S2RDF|chain",
           R"PLAN(Project [?v2 ?v3 ?v1 ?v0] (est=?)
  PartitionedHashJoin [on t2.o = t1.s] (est=?)
    PartitionedHashJoin [on t1.o = t0.s] (est=?)
      PatternScan [vp vp_p7 t0] (est=3)
      PatternScan [vp vp_p23 t1] (est=12)
    PatternScan [vp vp_p64 t2] (est=15)
)PLAN"},
          {"S2RDF|snowflake",
           R"PLAN(Project [?x ?d ?u ?p ?pn ?dm] (est=?)
  PartitionedHashJoin [on t5.s = t0.s AND t5.o = t2.s] (est=?)
    PartitionedHashJoin [on t4.s = t0.s] (est=?)
      PartitionedHashJoin [on t3.s = t2.s AND t3.o = t1.s] (est=?)
        CartesianProduct [1 = 1] (est=?)
          CartesianProduct [1 = 1] (est=?)
            PatternScan [extvp extvp_ss_p1_p64 t0] (est=15)
            PatternScan [vp vp_p7 t1] (est=3)
          PatternScan [extvp extvp_so_p3_p64 t2] (est=10)
        PatternScan [vp vp_p23 t3] (est=12)
      PatternScan [extvp extvp_ss_p60_p64 t4] (est=15)
    PatternScan [vp vp_p64 t5] (est=15)
)PLAN"},
          {"Hybrid_SparkSQL_naive|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  CartesianProduct [cross-join + filter] (est=?)
    CartesianProduct [cross-join + filter] (est=?)
      PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
      PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#name> ?n .] (est=128)
    PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e .] (est=13)
)PLAN"},
          {"Hybrid_SparkSQL_naive|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=?)
  CartesianProduct [cross-join + filter] (est=?)
    CartesianProduct [cross-join + filter] (est=?)
      PatternScan [full-scan ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 .] (est=16)
      PatternScan [full-scan ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 .] (est=13)
    PatternScan [full-scan ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 .] (est=4)
)PLAN"},
          {"Hybrid_SparkSQL_naive|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=?)
  CartesianProduct [cross-join + filter] (est=?)
    CartesianProduct [cross-join + filter] (est=?)
      CartesianProduct [cross-join + filter] (est=?)
        CartesianProduct [cross-join + filter] (est=?)
          CartesianProduct [cross-join + filter] (est=?)
            PatternScan [full-scan ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lubm.example.org/univ-bench.owl#GraduateStudent> .] (est=2)
            PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm .] (est=61)
          PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p .] (est=16)
        PatternScan [full-scan ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
      PatternScan [full-scan ?p <http://lubm.example.org/univ-bench.owl#name> ?pn .] (est=128)
    PatternScan [full-scan ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u .] (est=4)
)PLAN"},
          {"Hybrid_RDD_partitioned|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  PartitionedHashJoin [on ?x] (est=?)
    PartitionedHashJoin [on ?x] (est=?)
      PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
      PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#name> ?n .] (est=128)
    PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e .] (est=13)
)PLAN"},
          {"Hybrid_RDD_partitioned|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=?)
  PartitionedHashJoin [on ?v2] (est=?)
    PartitionedHashJoin [on ?v1] (est=?)
      PatternScan [full-scan ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 .] (est=16)
      PatternScan [full-scan ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 .] (est=13)
    PatternScan [full-scan ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 .] (est=4)
)PLAN"},
          {"Hybrid_RDD_partitioned|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=?)
  PartitionedHashJoin [on ?d] (est=?)
    PartitionedHashJoin [on ?p] (est=?)
      PartitionedHashJoin [on ?p] (est=?)
        PartitionedHashJoin [on ?x] (est=?)
          PartitionedHashJoin [on ?x] (est=?)
            PatternScan [full-scan ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lubm.example.org/univ-bench.owl#GraduateStudent> .] (est=2)
            PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm .] (est=61)
          PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p .] (est=16)
        PatternScan [full-scan ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
      PatternScan [full-scan ?p <http://lubm.example.org/univ-bench.owl#name> ?pn .] (est=128)
    PatternScan [full-scan ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u .] (est=4)
)PLAN"},
          {"Hybrid_DataFrame_broadcast|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  BroadcastJoin [on ?x] (est=?)
    BroadcastJoin [on ?x] (est=?)
      PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
      PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#name> ?n .] (est=128)
    PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e .] (est=13)
)PLAN"},
          {"Hybrid_DataFrame_broadcast|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=?)
  BroadcastJoin [on ?v2] (est=?)
    BroadcastJoin [on ?v1] (est=?)
      PatternScan [full-scan ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 .] (est=16)
      PatternScan [full-scan ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 .] (est=13)
    PatternScan [full-scan ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 .] (est=4)
)PLAN"},
          {"Hybrid_DataFrame_broadcast|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=?)
  BroadcastJoin [on ?d] (est=?)
    BroadcastJoin [on ?p] (est=?)
      BroadcastJoin [on ?p] (est=?)
        BroadcastJoin [on ?x] (est=?)
          BroadcastJoin [on ?x] (est=?)
            PatternScan [full-scan ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lubm.example.org/univ-bench.owl#GraduateStudent> .] (est=2)
            PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm .] (est=61)
          PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p .] (est=16)
        PatternScan [full-scan ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
      PatternScan [full-scan ?p <http://lubm.example.org/univ-bench.owl#name> ?pn .] (est=128)
    PatternScan [full-scan ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u .] (est=4)
)PLAN"},
          {"Hybrid_Hybrid|star",
           R"PLAN(Project [?x ?d ?e ?n] (est=?)
  BroadcastJoin [on ?x] (est=13)
    BroadcastJoin [on ?x] (est=13)
      PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
      PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e .] (est=13)
    PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#name> ?n .] (est=128)
)PLAN"},
          {"Hybrid_Hybrid|chain",
           R"PLAN(Project [?v2 ?v3 ?v1 ?v0] (est=?)
  BroadcastJoin [on ?v1] (est=4)
    BroadcastJoin [on ?v2] (est=4)
      PatternScan [full-scan ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 .] (est=4)
      PatternScan [full-scan ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 .] (est=13)
    PatternScan [full-scan ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 .] (est=16)
)PLAN"},
          {"Hybrid_Hybrid|snowflake",
           R"PLAN(Project [?x ?p ?d ?u ?dm ?pn] (est=?)
  BroadcastJoin [on ?p] (est=2)
    BroadcastJoin [on ?x] (est=2)
      BroadcastJoin [on ?d] (est=2)
        BroadcastJoin [on ?p] (est=2)
          BroadcastJoin [on ?x] (est=2)
            PatternScan [full-scan ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lubm.example.org/univ-bench.owl#GraduateStudent> .] (est=2)
            PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p .] (est=16)
          PatternScan [full-scan ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=13)
        PatternScan [full-scan ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u .] (est=4)
      PatternScan [full-scan ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm .] (est=61)
    PatternScan [full-scan ?p <http://lubm.example.org/univ-bench.owl#name> ?pn .] (est=128)
)PLAN"},
          {"S2X|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  PartitionedHashJoin [on ?x] (est=?)
    PartitionedHashJoin [on ?x] (est=?)
      PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d . (pruned)] (est=12)
      PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#name> ?n . (pruned)] (est=127)
    PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e . (pruned)] (est=12)
)PLAN"},
          {"S2X|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=?)
  PartitionedHashJoin [on ?v2] (est=?)
    PartitionedHashJoin [on ?v1] (est=?)
      PatternScan [graph ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 . (pruned)] (est=15)
      PatternScan [graph ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 . (pruned)] (est=12)
    PatternScan [graph ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 . (pruned)] (est=3)
)PLAN"},
          {"S2X|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=?)
  PartitionedHashJoin [on ?d] (est=?)
    PartitionedHashJoin [on ?p] (est=?)
      PartitionedHashJoin [on ?p] (est=?)
        PartitionedHashJoin [on ?x] (est=?)
          PartitionedHashJoin [on ?x] (est=?)
            PatternScan [graph ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lubm.example.org/univ-bench.owl#GraduateStudent> . (pruned)] (est=127)
            PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm . (pruned)] (est=60)
          PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p . (pruned)] (est=15)
        PatternScan [graph ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d . (pruned)] (est=12)
      PatternScan [graph ?p <http://lubm.example.org/univ-bench.owl#name> ?pn . (pruned)] (est=127)
    PatternScan [graph ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u . (pruned)] (est=3)
)PLAN"},
          {"GraphX_SM|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  PartitionedHashJoin [aggregateMessages forward (re-anchor ?x)] (est=?)
    PartitionedHashJoin [aggregateMessages forward (re-anchor ?x)] (est=?)
      PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d . (seed)] (est=12)
      PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#name> ?n .] (est=127)
    PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e .] (est=12)
)PLAN"},
          {"GraphX_SM|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=?)
  PartitionedHashJoin [aggregateMessages forward] (est=?)
    PartitionedHashJoin [aggregateMessages forward] (est=?)
      PatternScan [graph ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 . (seed)] (est=15)
      PatternScan [graph ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 .] (est=12)
    PatternScan [graph ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 .] (est=3)
)PLAN"},
          {"GraphX_SM|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=?)
  PartitionedHashJoin [aggregateMessages forward (re-anchor ?d)] (est=?)
    PartitionedHashJoin [aggregateMessages forward (re-anchor ?p)] (est=?)
      PartitionedHashJoin [aggregateMessages forward] (est=?)
        PartitionedHashJoin [aggregateMessages forward (re-anchor ?x)] (est=?)
          PartitionedHashJoin [aggregateMessages forward] (est=?)
            PatternScan [graph ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lubm.example.org/univ-bench.owl#GraduateStudent> . (seed)] (est=127)
            PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm .] (est=60)
          PatternScan [graph ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p .] (est=15)
        PatternScan [graph ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=12)
      PatternScan [graph ?p <http://lubm.example.org/univ-bench.owl#name> ?pn .] (est=127)
    PatternScan [graph ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u .] (est=3)
)PLAN"},
          {"Sparkql|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  Project [flatten ?d tables] (est=?)
    PartitionedHashJoin [vertex-message ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=12)
      LocalStarMatch [subject-star ?d (0 local patterns)] (est=?)
      LocalStarMatch [subject-star ?x (2 local patterns)] (est=?)
)PLAN"},
          {"Sparkql|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=?)
  Project [flatten ?v1 tables] (est=?)
    PartitionedHashJoin [vertex-message ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 .] (est=12)
      PartitionedHashJoin [vertex-message ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 .] (est=15)
        LocalStarMatch [subject-star ?v1 (0 local patterns)] (est=?)
        LocalStarMatch [subject-star ?v0 (0 local patterns)] (est=?)
      PartitionedHashJoin [vertex-message ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 .] (est=3)
        LocalStarMatch [subject-star ?v2 (0 local patterns)] (est=?)
        LocalStarMatch [subject-star ?v3 (0 local patterns)] (est=?)
)PLAN"},
          {"Sparkql|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=?)
  Project [flatten ?d tables] (est=?)
    PartitionedHashJoin [vertex-message ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u .] (est=3)
      PartitionedHashJoin [vertex-message ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d .] (est=12)
        LocalStarMatch [subject-star ?d (0 local patterns)] (est=?)
        PartitionedHashJoin [vertex-message ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p .] (est=15)
          LocalStarMatch [subject-star ?p (1 local patterns)] (est=?)
          PartitionedHashJoin [vertex-message ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm .] (est=60)
            LocalStarMatch [subject-star ?x (1 local patterns)] (est=?)
            LocalStarMatch [subject-star ?dm (0 local patterns)] (est=?)
      LocalStarMatch [subject-star ?u (0 local patterns)] (est=?)
)PLAN"},
          {"GraphFrames|star",
           R"PLAN(Project [?x ?d ?e ?n] (est=?)
  PartitionedHashJoin [on m0] (est=?)
    PartitionedHashJoin [on m0] (est=?)
      PatternScan [graph (m0)-[e0]->(m1) ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d . (pruned)] (est=12)
      PatternScan [graph (m0)-[e1]->(m2) ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e . (pruned)] (est=12)
    PatternScan [graph (m0)-[e2]->(m3) ?x <http://lubm.example.org/univ-bench.owl#name> ?n . (pruned)] (est=127)
)PLAN"},
          {"GraphFrames|chain",
           R"PLAN(Project [?v2 ?v3 ?v1 ?v0] (est=?)
  PartitionedHashJoin [on m2] (est=?)
    PartitionedHashJoin [on m0] (est=?)
      PatternScan [graph (m0)-[e0]->(m1) ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 . (pruned)] (est=3)
      PatternScan [graph (m2)-[e1]->(m0) ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 . (pruned)] (est=12)
    PatternScan [graph (m3)-[e2]->(m2) ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 . (pruned)] (est=15)
)PLAN"},
          {"GraphFrames|snowflake",
           R"PLAN(Project [?d ?u ?p ?x ?dm ?pn] (est=?)
  PartitionedHashJoin [on m2] (est=?)
    PartitionedHashJoin [on m3] (est=?)
      PartitionedHashJoin [on m3] (est=?)
        PartitionedHashJoin [on m2] (est=?)
          PartitionedHashJoin [on m0] (est=?)
            PatternScan [graph (m0)-[e0]->(m1) ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u . (pruned)] (est=3)
            PatternScan [graph (m2)-[e1]->(m0) ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d . (pruned)] (est=12)
          PatternScan [graph (m3)-[e2]->(m2) ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p . (pruned)] (est=15)
        PatternScan [graph (m3)-[e3]->(m4) ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm . (pruned)] (est=60)
      PatternScan [graph (m3)-[e4]->(m5) ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://lubm.example.org/univ-bench.owl#GraduateStudent> . (pruned)] (est=127)
    PatternScan [graph (m2)-[e5]->(m6) ?p <http://lubm.example.org/univ-bench.owl#name> ?pn . (pruned)] (est=127)
)PLAN"},
          {"SparkRDF|star",
           R"PLAN(Project [?x ?d ?n ?e] (est=?)
  Project [collect matched rows] (est=?)
    CartesianProduct [merge-rows (re-partition on ?n)] (est=?)
      CartesianProduct [merge-rows (re-partition on ?d)] (est=?)
        PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#emailAddress> ?e . (relation file, partition on ?e)] (est=12)
        PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#worksFor> ?d . (relation file, partition on ?d)] (est=12)
      PatternScan [vp ?x <http://lubm.example.org/univ-bench.owl#name> ?n . (relation file, partition on ?n)] (est=127)
)PLAN"},
          {"SparkRDF|chain",
           R"PLAN(Project [?v0 ?v1 ?v2 ?v3] (est=?)
  Project [collect matched rows] (est=?)
    CartesianProduct [merge-rows (re-partition on ?v0)] (est=?)
      PartitionedHashJoin [on ?v2 (re-partition)] (est=?)
        PatternScan [vp ?v2 <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?v3 . (relation file, partition on ?v3)] (est=3)
        PatternScan [vp ?v1 <http://lubm.example.org/univ-bench.owl#worksFor> ?v2 . (relation file, partition on ?v2)] (est=12)
      PatternScan [vp ?v0 <http://lubm.example.org/univ-bench.owl#advisor> ?v1 . (relation file, partition on ?v0)] (est=15)
)PLAN"},
          {"SparkRDF|snowflake",
           R"PLAN(Project [?x ?dm ?p ?d ?pn ?u] (est=?)
  Filter [?x is-a <http://lubm.example.org/univ-bench.owl#GraduateStudent> (class index)] (est=?)
    Project [collect matched rows] (est=?)
      CartesianProduct [merge-rows (re-partition on ?pn)] (est=?)
        PartitionedHashJoin [on ?x (re-partition)] (est=?)
          CartesianProduct [merge-rows (re-partition on ?dm)] (est=?)
            PartitionedHashJoin [on ?d (re-partition)] (est=?)
              PatternScan [vp ?d <http://lubm.example.org/univ-bench.owl#subOrganizationOf> ?u . (relation file, partition on ?u)] (est=3)
              PatternScan [vp ?p <http://lubm.example.org/univ-bench.owl#worksFor> ?d . (relation file, partition on ?d)] (est=12)
            PatternScan [class-index ?x <http://lubm.example.org/univ-bench.owl#memberOf> ?dm . (cr file, partition on ?dm)] (est=15)
          PatternScan [class-index ?x <http://lubm.example.org/univ-bench.owl#advisor> ?p . (cr file, partition on ?x)] (est=15)
        PatternScan [vp ?p <http://lubm.example.org/univ-bench.owl#name> ?pn . (relation file, partition on ?pn)] (est=127)
)PLAN"},
          // GOLDEN_EXPLAIN_END
      };
  return *goldens;
}

TEST(PlanExplainTest, MatchesGoldenPlans) {
  bool print = std::getenv("RDFSPARK_PRINT_EXPLAIN") != nullptr;
  const auto& goldens = GoldenExplains();
  for (const auto& factory : Factories()) {
    SparkContext sc(SmallCluster());
    auto engine = factory.make(&sc);
    ASSERT_TRUE(engine->Load(Dataset()).ok()) << factory.name;
    for (const auto& q : ShapeQueries()) {
      auto explained = engine->ExplainText(q.text);
      ASSERT_TRUE(explained.ok())
          << factory.name << "/" << q.label << ": "
          << explained.status().ToString();
      std::string key = factory.name + "|" + q.label;
      if (print) {
        std::printf("          {\"%s\",\n           R\"PLAN(%s)PLAN\"},\n",
                    key.c_str(), explained->c_str());
        continue;
      }
      auto it = goldens.find(key);
      ASSERT_TRUE(it != goldens.end()) << "no golden for " << key;
      EXPECT_EQ(it->second, *explained) << key;
    }
  }
  if (!print) {
    EXPECT_EQ(goldens.size(), Factories().size() * ShapeQueries().size());
  }
}

/// Planning must be pure: EXPLAIN charges no metrics, and the plan printed
/// before and after execution is identical.
TEST(PlanExplainTest, ExplainIsPureAndDeterministic) {
  for (const auto& factory : Factories()) {
    SparkContext sc(SmallCluster());
    auto engine = factory.make(&sc);
    ASSERT_TRUE(engine->Load(Dataset()).ok()) << factory.name;
    const std::string query = ShapeQueries()[0].text;
    auto before = sc.metrics();
    auto first = engine->ExplainText(query);
    ASSERT_TRUE(first.ok()) << factory.name;
    auto delta = sc.metrics() - before;
    EXPECT_EQ(delta.shuffle_records, 0u) << factory.name;
    EXPECT_EQ(delta.tasks, 0u) << factory.name;
    ASSERT_TRUE(engine->ExecuteText(query).ok()) << factory.name;
    auto second = engine->ExplainText(query);
    ASSERT_TRUE(second.ok()) << factory.name;
    EXPECT_EQ(*first, *second) << factory.name;
  }
}

/// The naive SparkSQL translation has no join planning: every pattern is
/// stitched on with a cross join + filter.
TEST(PlanExplainTest, SqlNaiveFallsBackToCartesianProducts) {
  SparkContext sc(SmallCluster());
  HybridEngine::Options opts;
  opts.mode = HybridMode::kSparkSqlNaive;
  HybridEngine engine(&sc, opts);
  ASSERT_TRUE(engine.Load(Dataset()).ok());
  auto explained =
      engine.ExplainText(rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3));
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->find("CartesianProduct [cross-join + filter]"),
            std::string::npos)
      << *explained;
  EXPECT_EQ(explained->find("PartitionedHashJoin"), std::string::npos)
      << *explained;
}

/// The hybrid planner predicts broadcast vs partitioned joins from dataset
/// statistics against the cluster's broadcast threshold.
TEST(PlanExplainTest, HybridJoinStrategyFollowsBroadcastThreshold) {
  const std::string query = rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3);
  {
    ClusterConfig cfg = SmallCluster();
    cfg.broadcast_threshold_bytes = 64ull << 20;  // everything fits
    SparkContext sc(cfg);
    HybridEngine::Options opts;
    opts.mode = HybridMode::kHybrid;
    HybridEngine engine(&sc, opts);
    ASSERT_TRUE(engine.Load(Dataset()).ok());
    auto explained = engine.ExplainText(query);
    ASSERT_TRUE(explained.ok());
    EXPECT_NE(explained->find("BroadcastJoin"), std::string::npos)
        << *explained;
    EXPECT_EQ(explained->find("PartitionedHashJoin"), std::string::npos)
        << *explained;
  }
  {
    ClusterConfig cfg = SmallCluster();
    cfg.broadcast_threshold_bytes = 1;  // nothing fits
    SparkContext sc(cfg);
    HybridEngine::Options opts;
    opts.mode = HybridMode::kHybrid;
    HybridEngine engine(&sc, opts);
    ASSERT_TRUE(engine.Load(Dataset()).ok());
    auto explained = engine.ExplainText(query);
    ASSERT_TRUE(explained.ok());
    EXPECT_NE(explained->find("PartitionedHashJoin"), std::string::npos)
        << *explained;
    EXPECT_EQ(explained->find("BroadcastJoin"), std::string::npos)
        << *explained;
  }
}

}  // namespace
}  // namespace rdfspark::systems
