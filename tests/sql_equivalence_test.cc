// Property-based equivalence of the two query paths: the same relational
// operation expressed through the DataFrame API and as SQL text must
// produce identical results (the optimizer must be semantics-preserving).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "spark/sql/session.h"

namespace rdfspark::spark::sql {
namespace {

std::multiset<std::string> Canonical(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& row : rows) {
    std::string s;
    for (const Value& v : row) {
      s += ValueToString(v);
      s += "|";
    }
    out.insert(std::move(s));
  }
  return out;
}

class SqlEquivalenceTest : public ::testing::Test {
 protected:
  SqlEquivalenceTest() : sc_(ClusterConfig{}), session_(&sc_), rng_(42) {
    Schema orders{{Field{"id", DataType::kInt64},
                   Field{"customer", DataType::kInt64},
                   Field{"amount", DataType::kInt64},
                   Field{"region", DataType::kString}}};
    std::vector<Row> order_rows;
    static const char* kRegions[] = {"north", "south", "east", "west"};
    for (int i = 0; i < 300; ++i) {
      order_rows.push_back({int64_t{i}, int64_t{i % 40},
                            static_cast<int64_t>(rng_.Below(1000)),
                            std::string(kRegions[rng_.Below(4)])});
    }
    orders_ = DataFrame::FromRows(&sc_, orders, order_rows, 4);
    session_.RegisterTable("orders", orders_);

    Schema customers{{Field{"cid", DataType::kInt64},
                      Field{"name", DataType::kString}}};
    std::vector<Row> customer_rows;
    for (int i = 0; i < 40; ++i) {
      customer_rows.push_back(
          {int64_t{i}, std::string("customer-") + std::to_string(i)});
    }
    customers_ = DataFrame::FromRows(&sc_, customers, customer_rows, 2);
    session_.RegisterTable("customers", customers_);
  }

  SparkContext sc_;
  SqlSession session_;
  Rng rng_;
  DataFrame orders_;
  DataFrame customers_;
};

TEST_F(SqlEquivalenceTest, RandomThresholdFilters) {
  for (int round = 0; round < 20; ++round) {
    int64_t threshold = static_cast<int64_t>(rng_.Below(1000));
    auto api = orders_.Filter(Col("amount") >= Lit(Value(threshold)))
                   .Select({"id", "amount"})
                   .Collect();
    auto sql = session_.Sql("SELECT id, amount FROM orders WHERE amount >= " +
                            std::to_string(threshold));
    ASSERT_TRUE(sql.ok()) << sql.status().ToString();
    EXPECT_EQ(Canonical(api), Canonical(sql->Collect()))
        << "threshold " << threshold;
  }
}

TEST_F(SqlEquivalenceTest, RandomConjunctionsAndDisjunctions) {
  static const char* kRegions[] = {"north", "south", "east", "west"};
  for (int round = 0; round < 20; ++round) {
    std::string region = kRegions[rng_.Below(4)];
    int64_t lo = static_cast<int64_t>(rng_.Below(500));
    int64_t hi = lo + static_cast<int64_t>(rng_.Below(500));
    auto api =
        orders_
            .Filter((Col("region") == Lit(Value(region)) &&
                     Col("amount") > Lit(Value(lo))) ||
                    Col("amount") >= Lit(Value(hi)))
            .Collect();
    auto sql = session_.Sql(
        "SELECT * FROM orders WHERE (region = '" + region +
        "' AND amount > " + std::to_string(lo) + ") OR amount >= " +
        std::to_string(hi));
    ASSERT_TRUE(sql.ok()) << sql.status().ToString();
    EXPECT_EQ(Canonical(api), Canonical(sql->Collect()));
  }
}

TEST_F(SqlEquivalenceTest, JoinMatchesApiJoin) {
  auto api = orders_
                 .Join(customers_, {{"customer", "cid"}})
                 .Select({"id", "name"})
                 .Collect();
  auto sql = session_.Sql(
      "SELECT o.id, c.name FROM orders o JOIN customers c ON o.customer = "
      "c.cid");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(api.size(), 300u);
  EXPECT_EQ(Canonical(api), Canonical(sql->Collect()));
}

TEST_F(SqlEquivalenceTest, GroupByMatchesApiAggregation) {
  auto api = orders_.GroupByAgg(
      {"region"}, {AggSpec{AggOp::kCount, "", "n"},
                   AggSpec{AggOp::kSum, "amount", "total"},
                   AggSpec{AggOp::kMin, "amount", "lo"},
                   AggSpec{AggOp::kMax, "amount", "hi"}});
  auto sql = session_.Sql(
      "SELECT region, COUNT(*) AS n, SUM(amount) AS total, MIN(amount) AS "
      "lo, MAX(amount) AS hi FROM orders GROUP BY region");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(Canonical(api.Collect()), Canonical(sql->Collect()));
}

TEST_F(SqlEquivalenceTest, DistinctSortLimitPipeline) {
  auto api = orders_.Select({"region"})
                 .Distinct()
                 .Sort({{"region", true}})
                 .Limit(3)
                 .Collect();
  auto sql = session_.Sql(
      "SELECT DISTINCT region FROM orders ORDER BY region ASC LIMIT 3");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  auto sql_rows = sql->Collect();
  ASSERT_EQ(api.size(), sql_rows.size());
  for (size_t i = 0; i < api.size(); ++i) {
    EXPECT_EQ(std::get<std::string>(api[i][0]),
              std::get<std::string>(sql_rows[i][0]));
  }
}

TEST_F(SqlEquivalenceTest, JoinStrategiesAgreeOnResults) {
  // All physical strategies must produce the same rows.
  std::vector<Row> canonical_rows;
  for (auto strategy :
       {JoinStrategy::kBroadcast, JoinStrategy::kShuffleHash,
        JoinStrategy::kCartesian}) {
    auto joined = orders_.Join(customers_, {{"customer", "cid"}},
                               JoinType::kInner, strategy);
    auto rows = joined.Select({"id", "name"}).Collect();
    if (canonical_rows.empty()) {
      canonical_rows = rows;
      continue;
    }
    EXPECT_EQ(Canonical(rows), Canonical(canonical_rows));
  }
}

}  // namespace
}  // namespace rdfspark::spark::sql
