#include "spark/graphx/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "spark/graphx/algorithms.h"

namespace rdfspark::spark::graphx {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 4;
  return cfg;
}

/// A small directed graph:
///   1 -> 2 -> 3 -> 1   (triangle)
///   3 -> 4
///   5 -> 6              (separate component)
std::vector<Edge<std::string>> TestEdges() {
  return {
      {1, 2, "a"}, {2, 3, "b"}, {3, 1, "c"}, {3, 4, "d"}, {5, 6, "e"},
  };
}

TEST(GraphTest, FromEdgesDerivesVertices) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_EQ(g.NumEdges(), 5u);
}

TEST(GraphTest, TripletsCarryBothAttrs) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  auto g2 = g.MapVertices([](VertexId id, const int&) {
    return static_cast<int>(id * 10);
  });
  auto triplets = g2.Triplets().Collect();
  ASSERT_EQ(triplets.size(), 5u);
  for (const auto& t : triplets) {
    EXPECT_EQ(t.src_attr, static_cast<int>(t.src * 10));
    EXPECT_EQ(t.dst_attr, static_cast<int>(t.dst * 10));
  }
}

TEST(GraphTest, AggregateMessagesComputesInDegrees) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  auto before_msgs = sc.metrics().messages;
  auto in_degrees = g.AggregateMessages<uint64_t>(
      [](const EdgeTriplet<int, std::string>& t) {
        return std::vector<std::pair<VertexId, uint64_t>>{{t.dst, 1}};
      },
      [](uint64_t a, uint64_t b) { return a + b; });
  auto counts = in_degrees.CountByKey();
  auto rows = in_degrees.Collect();
  std::map<VertexId, uint64_t> m(rows.begin(), rows.end());
  EXPECT_EQ(m[1], 1u);
  EXPECT_EQ(m[3], 1u);
  EXPECT_EQ(m[4], 1u);
  EXPECT_EQ(sc.metrics().messages - before_msgs, 5u);
}

TEST(GraphTest, OutDegrees) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  auto rows = g.OutDegrees().Collect();
  std::map<VertexId, uint64_t> m(rows.begin(), rows.end());
  EXPECT_EQ(m[3], 2u);  // -> 1, -> 4
  EXPECT_EQ(m[1], 1u);
}

TEST(GraphTest, ReverseSwapsEndpoints) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  auto rows = g.Reverse().edges().Collect();
  bool found = false;
  for (const auto& e : rows) {
    if (e.src == 2 && e.dst == 1 && e.attr == "a") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GraphTest, SubgraphFiltersEdgesAndVertices) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  auto sub = g.Subgraph(
      [](VertexId id, const int&) { return id <= 4; },
      [](const EdgeTriplet<int, std::string>& t) { return t.attr != "d"; });
  EXPECT_EQ(sub.NumVertices(), 4u);
  EXPECT_EQ(sub.NumEdges(), 3u);  // triangle only
}

TEST(GraphTest, PartitionByStrategiesPreserveEdges) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  for (auto strategy :
       {PartitionStrategy::kEdgePartition1D, PartitionStrategy::kEdgePartition2D,
        PartitionStrategy::kRandomVertexCut,
        PartitionStrategy::kCanonicalRandomVertexCut}) {
    auto partitioned = g.PartitionBy(strategy, 4);
    EXPECT_EQ(partitioned.NumEdges(), 5u) << PartitionStrategyName(strategy);
  }
}

TEST(GraphTest, EdgePartition1DColocatesSourceVertices) {
  SparkContext sc(SmallCluster());
  // Many edges out of vertex 7: all must land in one partition under 1D.
  std::vector<Edge<int>> edges;
  for (int i = 0; i < 32; ++i) edges.push_back({7, 100 + i, 0});
  auto g = Graph<int, int>::FromEdges(&sc, edges, 0, 4).PartitionBy(
      PartitionStrategy::kEdgePartition1D, 4);
  auto node = g.edges().node();
  int non_empty = 0;
  for (int p = 0; p < g.edges().num_partitions(); ++p) {
    if (!node->GetPartition(p)->empty()) ++non_empty;
  }
  EXPECT_EQ(non_empty, 1);
}

TEST(PregelTest, ConvergesAndCountsSupersteps) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  auto before = sc.metrics().supersteps;
  ConnectedComponents(g).Collect();
  EXPECT_GT(sc.metrics().supersteps, before);
}

TEST(AlgorithmsTest, ConnectedComponentsFindsTwo) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  auto rows = ConnectedComponents(g).Collect();
  std::map<VertexId, VertexId> comp(rows.begin(), rows.end());
  EXPECT_EQ(comp[1], 1);
  EXPECT_EQ(comp[2], 1);
  EXPECT_EQ(comp[3], 1);
  EXPECT_EQ(comp[4], 1);
  EXPECT_EQ(comp[5], 5);
  EXPECT_EQ(comp[6], 5);
}

TEST(AlgorithmsTest, PageRankFavorsTriangleOverLeaf) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  auto rows = PageRank(g, 20).Collect();
  std::map<VertexId, double> rank(rows.begin(), rows.end());
  // Triangle members accumulate rank; vertex 6 only receives from 5.
  EXPECT_GT(rank[1], rank[6]);
  // Ranks are positive and finite.
  for (const auto& [v, r] : rank) {
    EXPECT_GT(r, 0.0);
    EXPECT_TRUE(std::isfinite(r));
  }
}

TEST(AlgorithmsTest, TriangleCountFindsExactlyOne) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  EXPECT_EQ(TriangleCount(g), 1u);
}

TEST(AlgorithmsTest, TriangleCountOnCompleteGraph) {
  SparkContext sc(SmallCluster());
  std::vector<Edge<int>> edges;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) edges.push_back({i, j, 0});
  }
  auto g = Graph<int, int>::FromEdges(&sc, edges, 0, 4);
  EXPECT_EQ(TriangleCount(g), 10u);  // C(5,3)
}

TEST(AlgorithmsTest, ShortestPathsHopCounts) {
  SparkContext sc(SmallCluster());
  auto g = Graph<int, std::string>::FromEdges(&sc, TestEdges(), 0, 4);
  auto rows = ShortestPaths(g, 1).Collect();
  std::map<VertexId, double> dist(rows.begin(), rows.end());
  EXPECT_DOUBLE_EQ(dist[1], 0.0);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);
  EXPECT_DOUBLE_EQ(dist[3], 2.0);
  EXPECT_DOUBLE_EQ(dist[4], 3.0);
  EXPECT_EQ(dist[5], std::numeric_limits<double>::max());  // unreachable
}

}  // namespace
}  // namespace rdfspark::spark::graphx
