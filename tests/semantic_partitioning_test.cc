#include "systems/semantic_partitioning.h"

#include <gtest/gtest.h>

#include <set>

#include "rdf/generator.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "systems/haqwa.h"

namespace rdfspark::systems {
namespace {

const rdf::TripleStore& Dataset() {
  static rdf::TripleStore* store = [] {
    auto* s = new rdf::TripleStore();
    s->AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
    s->Dedupe();
    return s;
  }();
  return *store;
}

TEST(SemanticPartitionerTest, SubjectsOfOneClassColocate) {
  const rdf::TripleStore& store = Dataset();
  SemanticPartitioner partitioner(store, 8);
  EXPECT_GT(partitioner.num_classes(), 0u);

  auto& dict = const_cast<rdf::TripleStore&>(store).dictionary();
  auto type = store.TypePredicate();
  ASSERT_TRUE(type.has_value());
  auto cls = dict.Lookup(
      rdf::Term::Uri(std::string(rdf::kUbPrefix) + "FullProfessor"));
  ASSERT_TRUE(cls.ok());

  std::set<int> partitions;
  for (const auto& t : store.Match({std::nullopt, *type, *cls})) {
    partitions.insert(partitioner.PartitionOfSubject(t.s));
  }
  EXPECT_EQ(partitions.size(), 1u)
      << "one class must live in one partition";
  EXPECT_EQ(partitioner.PartitionsSpannedByClass(*cls), 1);
}

TEST(SemanticPartitionerTest, AllTriplesOfASubjectColocate) {
  const rdf::TripleStore& store = Dataset();
  SemanticPartitioner partitioner(store, 8);
  std::unordered_map<rdf::TermId, int> first_seen;
  for (const auto& t : store.triples()) {
    int p = partitioner.PartitionOf(t);
    auto [it, inserted] = first_seen.emplace(t.s, p);
    if (!inserted) {
      EXPECT_EQ(it->second, p) << "subject split across partitions";
    }
  }
}

TEST(SemanticPartitionerTest, LoadIsReasonablyBalanced) {
  const rdf::TripleStore& store = Dataset();
  SemanticPartitioner partitioner(store, 4);
  double skew = partitioner.Skew(store);
  EXPECT_GE(skew, 1.0);
  EXPECT_LT(skew, 3.0) << "greedy packing should avoid extreme imbalance";
}

TEST(SemanticPartitionerTest, HashFallbackForUntypedSubjects) {
  rdf::TripleStore store;
  store.AddAll({{rdf::Term::Uri("http://untyped"),
                 rdf::Term::Uri("http://p"), rdf::Term::Uri("http://o")}});
  SemanticPartitioner partitioner(store, 4);
  int p = partitioner.PartitionOf(store.triples()[0]);
  EXPECT_GE(p, 0);
  EXPECT_LT(p, 4);
  EXPECT_EQ(partitioner.num_classes(), 0u);
}

TEST(SemanticHaqwaTest, ConformsAndKeepsStarsLocal) {
  const rdf::TripleStore& store = Dataset();
  spark::SparkContext sc(spark::ClusterConfig{});
  HaqwaEngine::Options opts;
  opts.semantic_partitioning = true;
  HaqwaEngine engine(&sc, opts);
  ASSERT_TRUE(engine.Load(store).ok());
  ASSERT_NE(engine.semantic_partitioner(), nullptr);

  sparql::ReferenceEvaluator reference(&store);
  for (auto shape :
       {rdf::QueryShape::kStar, rdf::QueryShape::kLinear,
        rdf::QueryShape::kSnowflake}) {
    auto query = sparql::ParseQuery(rdf::LubmShapeQuery(shape));
    ASSERT_TRUE(query.ok());
    auto expected = reference.Evaluate(*query);
    ASSERT_TRUE(expected.ok());
    auto before = sc.metrics();
    auto got = engine.Execute(*query);
    auto delta = sc.metrics() - before;
    ASSERT_TRUE(got.ok()) << rdf::QueryShapeName(shape);
    EXPECT_EQ(got->Decode(store.dictionary()),
              expected->Decode(store.dictionary()))
        << rdf::QueryShapeName(shape);
    if (shape == rdf::QueryShape::kStar) {
      EXPECT_EQ(delta.shuffle_records, 0u)
          << "subjects stay whole, so stars stay local";
    }
  }
}

TEST(SemanticHaqwaTest, ClassScanTouchesOnePartition) {
  // The [27] benefit: a class-restricted star reads one partition's worth
  // of data instead of spraying over all of them. We measure the number of
  // partitions holding candidate rows.
  const rdf::TripleStore& store = Dataset();
  auto run = [&](bool semantic) {
    spark::SparkContext sc(spark::ClusterConfig{});
    HaqwaEngine::Options opts;
    opts.semantic_partitioning = semantic;
    HaqwaEngine engine(&sc, opts);
    EXPECT_TRUE(engine.Load(store).ok());
    const std::string query =
        "PREFIX ub: <" + std::string(rdf::kUbPrefix) +
        ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
        "SELECT ?x ?n WHERE { ?x rdf:type ub:GraduateStudent . "
        "?x ub:name ?n . ?x ub:advisor ?p }";
    auto result = engine.ExecuteText(query);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->num_rows() : 0;
  };
  uint64_t hash_rows = run(false);
  uint64_t semantic_rows = run(true);
  EXPECT_EQ(hash_rows, semantic_rows);
  EXPECT_GT(semantic_rows, 0u);
}

}  // namespace
}  // namespace rdfspark::systems
