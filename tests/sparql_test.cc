#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "sparql/ast.h"
#include "sparql/binding.h"
#include "sparql/eval.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"
#include "sparql/shape.h"

namespace rdfspark::sparql {
namespace {

using rdf::Term;

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenizesBasicQuery) {
  auto tokens = Tokenize("SELECT ?x WHERE { ?x <http://p> \"v\" . }");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kVar);
  EXPECT_EQ((*tokens)[1].text, "x");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kVar);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kIri);
  EXPECT_EQ((*tokens)[5].text, "http://p");
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[6].text, "v");
}

TEST(LexerTest, DistinguishesIriFromLessThan) {
  auto tokens = Tokenize("FILTER (?x < 5 && ?y > <http://iri>)");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  int less_than = 0, iris = 0;
  for (const auto& t : *tokens) {
    if (t.Is(TokenKind::kPunct, "<")) ++less_than;
    if (t.kind == TokenKind::kIri) ++iris;
  }
  EXPECT_EQ(less_than, 1);
  EXPECT_EQ(iris, 1);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select ?x where { ?x ?p ?o }");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
}

TEST(LexerTest, LexesNumbersAndOperators) {
  auto tokens = Tokenize("(-3 >= 2.5) || (!(?x != 7))");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  bool saw_neg = false, saw_dec = false, saw_ge = false, saw_or = false;
  for (const auto& t : *tokens) {
    if (t.kind == TokenKind::kNumber && t.text == "-3") saw_neg = true;
    if (t.kind == TokenKind::kNumber && t.text == "2.5") saw_dec = true;
    if (t.Is(TokenKind::kPunct, ">=")) saw_ge = true;
    if (t.Is(TokenKind::kPunct, "||")) saw_or = true;
  }
  EXPECT_TRUE(saw_neg && saw_dec && saw_ge && saw_or);
}

TEST(LexerTest, LexesLiteralsWithLangAndDatatype) {
  auto tokens =
      Tokenize("\"hi\"@en \"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].lang, "en");
  EXPECT_EQ((*tokens)[1].datatype, rdf::kXsdInteger);
}

TEST(LexerTest, SkipsComments) {
  auto tokens = Tokenize("SELECT ?x # comment with <junk>\nWHERE { }");
  ASSERT_TRUE(tokens.ok());
  for (const auto& t : *tokens) EXPECT_NE(t.text, "junk");
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("SELECT @").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("?").ok());
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

TEST(ParserTest, ParsesSelectWithPrefixes) {
  auto q = ParseQuery(
      "PREFIX ub: <http://u/>\n"
      "SELECT ?x ?y WHERE { ?x ub:p ?y . ?y ub:q \"v\" . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->form, QueryForm::kSelect);
  EXPECT_EQ(q->select_vars, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(q->where.bgp.size(), 2u);
  EXPECT_EQ(q->where.bgp[0].p.term().lexical(), "http://u/p");
}

TEST(ParserTest, ParsesSelectStar) {
  auto q = ParseQuery("SELECT * WHERE { ?s ?p ?o }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->select_vars.empty());
  EXPECT_EQ(q->EffectiveProjection(),
            (std::vector<std::string>{"s", "p", "o"}));
}

TEST(ParserTest, ParsesTypeShorthand) {
  auto q = ParseQuery("SELECT ?x WHERE { ?x a <http://C> }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where.bgp[0].p.term().lexical(), rdf::kRdfType);
}

TEST(ParserTest, ParsesPredicateAndObjectLists) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x <http://p> ?a , ?b ; <http://q> ?c . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where.bgp.size(), 3u);
  EXPECT_EQ(q->where.bgp[0].o.var(), "a");
  EXPECT_EQ(q->where.bgp[1].o.var(), "b");
  EXPECT_EQ(q->where.bgp[2].p.term().lexical(), "http://q");
  // All three share subject ?x.
  EXPECT_EQ(q->where.bgp[2].s.var(), "x");
}

TEST(ParserTest, ParsesFilterPrecedence) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x <http://p> ?y . FILTER (?y > 3 && ?y < 9 || "
      "BOUND(?x)) }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where.filters.size(), 1u);
  // Top node must be OR (|| binds loosest).
  EXPECT_EQ(q->where.filters[0]->op, ExprOp::kOr);
  EXPECT_EQ(q->where.filters[0]->children[0]->op, ExprOp::kAnd);
  EXPECT_EQ(q->where.filters[0]->children[1]->op, ExprOp::kBound);
}

TEST(ParserTest, ParsesOptionalAndUnion) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x <http://p> ?y . "
      "OPTIONAL { ?x <http://mail> ?m } "
      "{ ?x <http://a> ?z } UNION { ?x <http://b> ?z } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where.optionals.size(), 1u);
  ASSERT_EQ(q->where.unions.size(), 1u);
  EXPECT_EQ(q->where.unions[0].size(), 2u);
}

TEST(ParserTest, ParsesModifiers) {
  auto q = ParseQuery(
      "SELECT DISTINCT ?x WHERE { ?x <http://p> ?y } "
      "ORDER BY DESC(?y) ?x LIMIT 10 OFFSET 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->distinct);
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_FALSE(q->order_by[0].ascending);
  EXPECT_EQ(q->order_by[0].var, "y");
  EXPECT_TRUE(q->order_by[1].ascending);
  EXPECT_EQ(q->limit, 10);
  EXPECT_EQ(q->offset, 5);
}

TEST(ParserTest, ParsesAsk) {
  auto q = ParseQuery("ASK { <http://s> <http://p> <http://o> }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->form, QueryForm::kAsk);
}

TEST(ParserTest, RejectsUnknownPrefixAndSyntaxErrors) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ub:p ?y }").ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?x ?p ?o }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p ?o ").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x { ?x ?p ?o } extra garbage").ok());
}

TEST(ParserTest, ParsesGeneratedShapeQueries) {
  for (auto shape :
       {rdf::QueryShape::kStar, rdf::QueryShape::kLinear,
        rdf::QueryShape::kSnowflake, rdf::QueryShape::kComplex}) {
    auto q = ParseQuery(rdf::LubmShapeQuery(shape));
    EXPECT_TRUE(q.ok()) << rdf::QueryShapeName(shape) << ": "
                        << q.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Binding table relational ops.
// ---------------------------------------------------------------------------

class BindingOpsTest : public ::testing::Test {
 protected:
  BindingTable MakeTable(std::vector<std::string> vars,
                         std::vector<std::vector<rdf::TermId>> rows) {
    BindingTable t(std::move(vars));
    for (auto& r : rows) t.AddRow(std::move(r));
    return t;
  }
};

TEST_F(BindingOpsTest, HashJoinOnSharedVar) {
  auto a = MakeTable({"x", "y"}, {{1, 10}, {2, 20}, {3, 30}});
  auto b = MakeTable({"y", "z"}, {{10, 100}, {30, 300}, {40, 400}});
  auto j = HashJoin(a, b);
  EXPECT_EQ(j.vars(), (std::vector<std::string>{"x", "y", "z"}));
  ASSERT_EQ(j.num_rows(), 2u);
}

TEST_F(BindingOpsTest, HashJoinCrossWhenNoSharedVars) {
  auto a = MakeTable({"x"}, {{1}, {2}});
  auto b = MakeTable({"y"}, {{7}, {8}, {9}});
  EXPECT_EQ(HashJoin(a, b).num_rows(), 6u);
}

TEST_F(BindingOpsTest, HashJoinSkipsUnboundKeys) {
  auto a = MakeTable({"x", "y"}, {{1, kUnbound}});
  auto b = MakeTable({"y", "z"}, {{kUnbound, 5}, {2, 6}});
  EXPECT_EQ(HashJoin(a, b).num_rows(), 0u);
}

TEST_F(BindingOpsTest, LeftJoinPadsUnmatched) {
  auto a = MakeTable({"x", "y"}, {{1, 10}, {2, 20}});
  auto b = MakeTable({"y", "z"}, {{10, 100}});
  auto j = LeftJoin(a, b);
  ASSERT_EQ(j.num_rows(), 2u);
  int unbound_rows = 0;
  for (const auto& row : j.rows()) {
    if (row[2] == kUnbound) ++unbound_rows;
  }
  EXPECT_EQ(unbound_rows, 1);
}

TEST_F(BindingOpsTest, UnionAlignsColumns) {
  auto a = MakeTable({"x"}, {{1}});
  auto b = MakeTable({"y"}, {{2}});
  auto u = UnionTables(a, b);
  EXPECT_EQ(u.vars(), (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(u.num_rows(), 2u);
  EXPECT_EQ(u.rows()[0][1], kUnbound);
  EXPECT_EQ(u.rows()[1][0], kUnbound);
}

TEST_F(BindingOpsTest, ProjectAndDistinct) {
  auto t = MakeTable({"x", "y"}, {{1, 10}, {1, 20}, {2, 30}});
  auto p = Project(t, {"x"});
  EXPECT_EQ(p.vars(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(p.num_rows(), 3u);
  EXPECT_EQ(Distinct(p).num_rows(), 2u);
}

TEST_F(BindingOpsTest, SliceRespectsOffsetAndLimit) {
  auto t = MakeTable({"x"}, {{1}, {2}, {3}, {4}, {5}});
  auto s = Slice(t, 1, 2);
  ASSERT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.rows()[0][0], 2u);
  EXPECT_EQ(Slice(t, 0, -1).num_rows(), 5u);
  EXPECT_EQ(Slice(t, 10, 5).num_rows(), 0u);
}

// ---------------------------------------------------------------------------
// Reference evaluator end-to-end.
// ---------------------------------------------------------------------------

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.AddAll({
        {Term::Uri("http://alice"), Term::Uri("http://knows"),
         Term::Uri("http://bob")},
        {Term::Uri("http://bob"), Term::Uri("http://knows"),
         Term::Uri("http://carol")},
        {Term::Uri("http://alice"), Term::Uri("http://age"),
         Term::Literal("30", rdf::kXsdInteger)},
        {Term::Uri("http://bob"), Term::Uri("http://age"),
         Term::Literal("25", rdf::kXsdInteger)},
        {Term::Uri("http://carol"), Term::Uri("http://age"),
         Term::Literal("35", rdf::kXsdInteger)},
        {Term::Uri("http://alice"), Term::Uri("http://mail"),
         Term::Literal("alice@x")},
    });
  }

  BindingTable Eval(const std::string& text) {
    auto q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    ReferenceEvaluator eval(&store_);
    auto r = eval.Evaluate(*q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  rdf::TripleStore store_;
};

TEST_F(EvalTest, SinglePattern) {
  auto t = Eval("SELECT ?x WHERE { ?x <http://knows> <http://bob> }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(*store_.dictionary().DecodeString(t.rows()[0][0]),
            "<http://alice>");
}

TEST_F(EvalTest, ChainJoin) {
  auto t = Eval(
      "SELECT ?a ?c WHERE { ?a <http://knows> ?b . ?b <http://knows> ?c }");
  ASSERT_EQ(t.num_rows(), 1u);
  auto decoded = t.Decode(store_.dictionary());
  EXPECT_EQ(decoded[0].at("a"), "<http://alice>");
  EXPECT_EQ(decoded[0].at("c"), "<http://carol>");
}

TEST_F(EvalTest, NumericFilter) {
  auto t = Eval(
      "SELECT ?x WHERE { ?x <http://age> ?a . FILTER (?a > 26 && ?a < 34) }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Decode(store_.dictionary())[0].at("x"), "<http://alice>");
}

TEST_F(EvalTest, OptionalKeepsAllLeftRows) {
  auto t = Eval(
      "SELECT ?x ?m WHERE { ?x <http://age> ?a . "
      "OPTIONAL { ?x <http://mail> ?m } }");
  EXPECT_EQ(t.num_rows(), 3u);
  auto decoded = t.Decode(store_.dictionary());
  int with_mail = 0;
  for (const auto& row : decoded) {
    if (row.count("m")) ++with_mail;
  }
  EXPECT_EQ(with_mail, 1);
}

TEST_F(EvalTest, BoundFilterOnOptional) {
  auto t = Eval(
      "SELECT ?x WHERE { ?x <http://age> ?a . "
      "OPTIONAL { ?x <http://mail> ?m } FILTER (!BOUND(?m)) }");
  EXPECT_EQ(t.num_rows(), 2u);  // bob and carol have no mail
}

TEST_F(EvalTest, UnionConcatenates) {
  auto t = Eval(
      "SELECT ?x WHERE { { ?x <http://knows> <http://bob> } UNION "
      "{ ?x <http://knows> <http://carol> } }");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(EvalTest, OrderByLimitOffset) {
  auto t = Eval(
      "SELECT ?x ?a WHERE { ?x <http://age> ?a } ORDER BY DESC(?a) LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2u);
  auto first = *store_.dictionary().DecodeString(t.rows()[0][0]);
  EXPECT_EQ(first, "<http://carol>");  // age 35 first
  auto t2 = Eval(
      "SELECT ?x ?a WHERE { ?x <http://age> ?a } ORDER BY ?a OFFSET 1 LIMIT "
      "1");
  ASSERT_EQ(t2.num_rows(), 1u);
  EXPECT_EQ(*store_.dictionary().DecodeString(t2.rows()[0][0]),
            "<http://alice>");  // 25, [30], 35
}

TEST_F(EvalTest, DistinctDeduplicates) {
  auto t = Eval("SELECT DISTINCT ?p WHERE { ?s ?p ?o }");
  EXPECT_EQ(t.num_rows(), 3u);  // knows, age, mail
}

TEST_F(EvalTest, AskQuery) {
  EXPECT_EQ(Eval("ASK { <http://alice> <http://knows> ?x }").num_rows(), 1u);
  EXPECT_EQ(Eval("ASK { <http://carol> <http://knows> ?x }").num_rows(), 0u);
}

TEST_F(EvalTest, ConstantNotInDataYieldsEmpty) {
  auto t = Eval("SELECT ?x WHERE { ?x <http://nonexistent> ?y }");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(EvalTest, RepeatedVariableWithinPattern) {
  store_.AddAll({{Term::Uri("http://self"), Term::Uri("http://knows"),
                  Term::Uri("http://self")}});
  auto t = Eval("SELECT ?x WHERE { ?x <http://knows> ?x }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Decode(store_.dictionary())[0].at("x"), "<http://self>");
}

TEST_F(EvalTest, LubmSnowflakeHasAnswers) {
  rdf::TripleStore store;
  store.AddAll(rdf::GenerateLubm(rdf::LubmConfig{}));
  ReferenceEvaluator eval(&store);
  auto q = ParseQuery(rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake));
  ASSERT_TRUE(q.ok());
  auto r = eval.Evaluate(*q);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->num_rows(), 0u);
}

// ---------------------------------------------------------------------------
// Shape classification.
// ---------------------------------------------------------------------------

BgpShape ShapeOf(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return ClassifyQuery(*q);
}

TEST(ShapeTest, SinglePattern) {
  EXPECT_EQ(ShapeOf("SELECT * WHERE { ?s ?p ?o }"), BgpShape::kSingle);
}

TEST(ShapeTest, GeneratedShapeQueriesClassifyAsIntended) {
  EXPECT_EQ(ShapeOf(rdf::LubmShapeQuery(rdf::QueryShape::kStar, 4)),
            BgpShape::kStar);
  EXPECT_EQ(ShapeOf(rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)),
            BgpShape::kLinear);
  EXPECT_EQ(ShapeOf(rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake)),
            BgpShape::kSnowflake);
  EXPECT_EQ(ShapeOf(rdf::LubmShapeQuery(rdf::QueryShape::kComplex)),
            BgpShape::kComplex);
}

TEST(ShapeTest, ObjectObjectJoinIsComplex) {
  EXPECT_EQ(ShapeOf("SELECT * WHERE { ?a <http://p> ?x . ?b <http://q> ?x }"),
            BgpShape::kComplex);
}

TEST(ShapeTest, DisconnectedIsComplex) {
  EXPECT_EQ(ShapeOf("SELECT * WHERE { ?a <http://p> ?x . ?b <http://q> ?y }"),
            BgpShape::kComplex);
}

TEST(ShapeTest, PredicateVariableJoinIsComplex) {
  EXPECT_EQ(ShapeOf("SELECT * WHERE { ?a ?p ?x . ?x ?p ?y }"),
            BgpShape::kComplex);
}

TEST(ShapeTest, UnionOrOptionalIsComplex) {
  EXPECT_EQ(ShapeOf("SELECT ?x WHERE { { ?x <http://a> ?y } UNION { ?x "
                    "<http://b> ?y } }"),
            BgpShape::kComplex);
  EXPECT_EQ(
      ShapeOf("SELECT ?x WHERE { ?x <http://a> ?y . OPTIONAL { ?x <http://b> "
              "?z } }"),
      BgpShape::kComplex);
}

TEST(ShapeTest, NamesAreStable) {
  EXPECT_STREQ(BgpShapeName(BgpShape::kStar), "star");
  EXPECT_STREQ(BgpShapeName(BgpShape::kLinear), "linear");
  EXPECT_STREQ(BgpShapeName(BgpShape::kSnowflake), "snowflake");
  EXPECT_STREQ(BgpShapeName(BgpShape::kComplex), "complex");
  EXPECT_STREQ(BgpShapeName(BgpShape::kSingle), "single");
}

}  // namespace
}  // namespace rdfspark::sparql
