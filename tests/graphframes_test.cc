#include "spark/graphframes/graphframe.h"

#include <gtest/gtest.h>

namespace rdfspark::spark::graphframes {
namespace {

using sql::Col;
using sql::DataFrame;
using sql::DataType;
using sql::Field;
using sql::Lit;
using sql::Row;
using sql::Schema;

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 2;
  return cfg;
}

GraphFrame SocialGraph(SparkContext* sc) {
  Schema vschema{{Field{"id", DataType::kString},
                  Field{"age", DataType::kInt64}}};
  std::vector<Row> vrows = {
      {std::string("alice"), int64_t{30}},
      {std::string("bob"), int64_t{25}},
      {std::string("carol"), int64_t{35}},
  };
  Schema eschema{{Field{"src", DataType::kString},
                  Field{"dst", DataType::kString},
                  Field{"rel", DataType::kString}}};
  std::vector<Row> erows = {
      {std::string("alice"), std::string("bob"), std::string("knows")},
      {std::string("bob"), std::string("carol"), std::string("knows")},
      {std::string("alice"), std::string("carol"), std::string("likes")},
  };
  return GraphFrame(DataFrame::FromRows(sc, vschema, vrows, 2),
                    DataFrame::FromRows(sc, eschema, erows, 2));
}

TEST(MotifParserTest, ParsesChain) {
  auto motif = ParseMotif("(a)-[e]->(b); (b)-[f]->(c)");
  ASSERT_TRUE(motif.ok()) << motif.status().ToString();
  ASSERT_EQ(motif->size(), 2u);
  EXPECT_EQ((*motif)[0].src, "a");
  EXPECT_EQ((*motif)[0].edge, "e");
  EXPECT_EQ((*motif)[1].dst, "c");
}

TEST(MotifParserTest, AnonymousElements) {
  auto motif = ParseMotif("()-[]->(b)");
  ASSERT_TRUE(motif.ok()) << motif.status().ToString();
  EXPECT_TRUE((*motif)[0].src.empty());
  EXPECT_TRUE((*motif)[0].edge.empty());
  EXPECT_EQ((*motif)[0].dst, "b");
}

TEST(MotifParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseMotif("").ok());
  EXPECT_FALSE(ParseMotif("(a)-[e]-(b)").ok());
  EXPECT_FALSE(ParseMotif("a-[e]->(b)").ok());
}

TEST(GraphFrameTest, SingleEdgeMotif) {
  SparkContext sc(SmallCluster());
  auto gf = SocialGraph(&sc);
  auto result = gf.FindMotif("(a)-[e]->(b)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 3u);
  EXPECT_GE(result->schema().Index("a"), 0);
  EXPECT_GE(result->schema().Index("e.rel"), 0);
  EXPECT_GE(result->schema().Index("a.age"), 0);
}

TEST(GraphFrameTest, ChainMotifJoins) {
  SparkContext sc(SmallCluster());
  auto gf = SocialGraph(&sc);
  auto result = gf.FindMotif("(a)-[e]->(b); (b)-[f]->(c)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // alice->bob->carol is the only 2-hop chain.
  ASSERT_EQ(result->NumRows(), 1u);
  auto rows = result->Collect();
  int a_idx = result->schema().Index("a");
  int c_idx = result->schema().Index("c");
  EXPECT_EQ(std::get<std::string>(rows[0][static_cast<size_t>(a_idx)]),
            "alice");
  EXPECT_EQ(std::get<std::string>(rows[0][static_cast<size_t>(c_idx)]),
            "carol");
}

TEST(GraphFrameTest, FilterEdgesPrunesSearchSpace) {
  SparkContext sc(SmallCluster());
  auto gf = SocialGraph(&sc);
  auto pruned = gf.FilterEdges(Col("rel") == Lit("knows"));
  EXPECT_EQ(pruned.edges().NumRows(), 2u);
  auto result = pruned.FindMotif("(a)-[e]->(b)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRows(), 2u);
}

TEST(GraphFrameTest, Degrees) {
  SparkContext sc(SmallCluster());
  auto gf = SocialGraph(&sc);
  auto in_rows = gf.InDegrees().Collect();
  bool carol_ok = false;
  for (const Row& r : in_rows) {
    if (std::get<std::string>(r[0]) == "carol") {
      EXPECT_EQ(std::get<int64_t>(r[1]), 2);
      carol_ok = true;
    }
  }
  EXPECT_TRUE(carol_ok);
  auto out_rows = gf.OutDegrees().Collect();
  bool alice_ok = false;
  for (const Row& r : out_rows) {
    if (std::get<std::string>(r[0]) == "alice") {
      EXPECT_EQ(std::get<int64_t>(r[1]), 2);
      alice_ok = true;
    }
  }
  EXPECT_TRUE(alice_ok);
}

TEST(GraphFrameBfsTest, FindsShortestPathLevel) {
  SparkContext sc(SmallCluster());
  auto gf = SocialGraph(&sc);
  // alice -> bob -> carol: shortest alice->carol is 1 hop (likes) — the
  // direct edge wins over the 2-hop knows chain.
  auto direct = gf.Bfs(Col("id") == Lit("alice"), Col("id") == Lit("carol"),
                       3);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_EQ(direct->NumRows(), 1u);
  EXPECT_GE(direct->schema().Index("v1"), 0);
  EXPECT_LT(direct->schema().Index("v2"), 0) << "must stop at first level";

  // Restrict to knows-edges: now carol is 2 hops away.
  auto knows_only = gf.FilterEdges(Col("rel") == Lit("knows"));
  auto two_hop = knows_only.Bfs(Col("id") == Lit("alice"),
                                Col("id") == Lit("carol"), 3);
  ASSERT_TRUE(two_hop.ok());
  ASSERT_EQ(two_hop->NumRows(), 1u);
  EXPECT_GE(two_hop->schema().Index("v2"), 0);
}

TEST(GraphFrameBfsTest, ZeroHopsAndUnreachable) {
  SparkContext sc(SmallCluster());
  auto gf = SocialGraph(&sc);
  // from == to: a 0-hop path.
  auto self = gf.Bfs(Col("id") == Lit("bob"), Col("id") == Lit("bob"), 2);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->NumRows(), 1u);
  // carol has no outgoing edges: alice unreachable from carol.
  auto none = gf.Bfs(Col("id") == Lit("carol"), Col("id") == Lit("alice"), 4);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->NumRows(), 0u);
  // Hop bound too small.
  auto bounded = gf.FilterEdges(Col("rel") == Lit("knows"))
                     .Bfs(Col("id") == Lit("alice"),
                          Col("id") == Lit("carol"), 1);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->NumRows(), 0u);
}

TEST(GraphFrameBfsTest, AttributePredicates) {
  SparkContext sc(SmallCluster());
  auto gf = SocialGraph(&sc);
  // From any vertex aged >= 30 to any vertex aged < 30 (alice -> bob).
  auto r = gf.Bfs(Col("age") >= Lit(30), Col("age") < Lit(30), 2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->NumRows(), 1u);
  EXPECT_GE(r->schema().Index("v0.age"), 0);
}

TEST(GraphFrameTest, TriangleMotifOnCycle) {
  SparkContext sc(SmallCluster());
  Schema vschema{{Field{"id", DataType::kInt64}}};
  Schema eschema{{Field{"src", DataType::kInt64},
                  Field{"dst", DataType::kInt64}}};
  std::vector<Row> vrows = {{int64_t{1}}, {int64_t{2}}, {int64_t{3}}};
  std::vector<Row> erows = {{int64_t{1}, int64_t{2}},
                            {int64_t{2}, int64_t{3}},
                            {int64_t{3}, int64_t{1}}};
  GraphFrame gf(DataFrame::FromRows(&sc, vschema, vrows, 1),
                DataFrame::FromRows(&sc, eschema, erows, 1));
  auto result = gf.FindMotif("(a)-[]->(b); (b)-[]->(c); (c)-[]->(a)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 3u);  // 3 rotations of the one triangle
}

}  // namespace
}  // namespace rdfspark::spark::graphframes
