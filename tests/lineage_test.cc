#include "spark/lineage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "spark/rdd.h"
#include "systems/plan/diagnostics.h"

namespace rdfspark::spark {
namespace {

using systems::plan::Diagnostic;
using systems::plan::Severity;

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

/// Spark-faithful storage: only Cache()d RDDs retain their partitions, so
/// shared lineage really recomputes — LN001's runtime truth.
ClusterConfig TransientCluster() {
  ClusterConfig cfg = SmallCluster();
  cfg.retain_uncached_rdds = false;
  return cfg;
}

std::vector<int> Ints(int n) {
  std::vector<int> v(n);
  for (int i = 0; i < n; ++i) v[i] = i;
  return v;
}

std::vector<std::pair<int, int>> Pairs(int n) {
  std::vector<std::pair<int, int>> v;
  for (int i = 0; i < n; ++i) v.emplace_back(i % 7, i);
  return v;
}

int CountRule(const std::vector<Diagnostic>& ds, const std::string& rule) {
  int n = 0;
  for (const auto& d : ds) n += d.rule == rule;
  return n;
}

const Diagnostic* FindRule(const std::vector<Diagnostic>& ds,
                           const std::string& rule) {
  for (const auto& d : ds) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

// ------------------------------------------------------------- capture

TEST(LineageGraphTest, CaptureSnapshotsTopology) {
  SparkContext sc(SmallCluster());
  auto base = Parallelize(&sc, Pairs(40), 4);
  auto shuffled = base.PartitionByKey(4);
  auto mapped = shuffled.Map([](const std::pair<int, int>& kv) { return kv; });

  auto graph = LineageGraph::Capture(mapped.node().get());
  ASSERT_EQ(graph.nodes().size(), 3u);
  for (size_t i = 1; i < graph.nodes().size(); ++i) {
    EXPECT_LT(graph.nodes()[i - 1].id, graph.nodes()[i].id);
  }
  EXPECT_EQ(graph.ShuffleCount(), 1);

  const auto* source = graph.Find(base.node()->id());
  const auto* wide = graph.Find(shuffled.node()->id());
  const auto* sink = graph.Find(mapped.node()->id());
  ASSERT_NE(source, nullptr);
  ASSERT_NE(wide, nullptr);
  ASSERT_NE(sink, nullptr);
  EXPECT_FALSE(source->is_shuffle);
  EXPECT_TRUE(wide->is_shuffle);
  ASSERT_TRUE(wide->partitioner.has_value());
  EXPECT_EQ(wide->partitioner->kind, "hash");
  EXPECT_EQ(source->children, std::vector<int>{wide->id});
  EXPECT_EQ(wide->parents, std::vector<int>{source->id});
  EXPECT_EQ(sink->parents, std::vector<int>{wide->id});
  EXPECT_TRUE(sink->children.empty());
  EXPECT_EQ(graph.Find(999999), nullptr);
}

TEST(LineageGraphTest, SharedSubLineageCapturedOnce) {
  SparkContext sc(SmallCluster());
  auto base = Parallelize(&sc, Ints(20), 4);
  auto left = base.Map([](const int& x) { return x + 1; });
  auto right = base.Filter([](const int& x) { return x > 5; });

  auto graph = LineageGraph::Capture(
      {left.node().get(), right.node().get()});
  EXPECT_EQ(graph.nodes().size(), 3u);
  const auto* shared = graph.Find(base.node()->id());
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->children.size(), 2u);
}

TEST(LineageGraphTest, CaptureIsDeterministic) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Pairs(30), 4).PartitionByKey(4).Filter(
      [](const std::pair<int, int>& kv) { return kv.second % 2 == 0; });
  auto first = LineageGraph::Capture(rdd.node().get());
  auto second = LineageGraph::Capture(rdd.node().get());
  EXPECT_EQ(first.ToDot(), second.ToDot());
  EXPECT_EQ(first.Analyze().size(), second.Analyze().size());
}

// --------------------------------------------------------------- LN001

TEST(LineageGraphTest, Ln001FlagsSharedUncachedLineage) {
  SparkContext sc(TransientCluster());
  auto base = Parallelize(&sc, Ints(40), 4).Map([](const int& x) {
    return x + 1;
  });
  auto evens = base.Filter([](const int& x) { return x % 2 == 0; });
  auto odds = base.Filter([](const int& x) { return x % 2 == 1; });

  auto graph =
      LineageGraph::Capture({evens.node().get(), odds.node().get()});
  auto findings = graph.Analyze();
  ASSERT_EQ(CountRule(findings, "LN001"), 1);
  const auto* d = FindRule(findings, "LN001");
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_NE(d->message.find("feeds 2 consumers"), std::string::npos)
      << d->message;
  EXPECT_NE(d->hint.find("Cache()"), std::string::npos);
}

TEST(LineageGraphTest, Ln001SilentWhenSharedNodeIsCached) {
  SparkContext sc(TransientCluster());
  auto base = Parallelize(&sc, Ints(40), 4)
                  .Map([](const int& x) { return x + 1; })
                  .Cache();
  auto evens = base.Filter([](const int& x) { return x % 2 == 0; });
  auto odds = base.Filter([](const int& x) { return x % 2 == 1; });

  auto graph =
      LineageGraph::Capture({evens.node().get(), odds.node().get()});
  EXPECT_EQ(CountRule(graph.Analyze(), "LN001"), 0);
}

TEST(LineageGraphTest, Ln001SilentUnderDefaultRetention) {
  // The default simulator config retains every partition, so nothing
  // recomputes and the rule must stay quiet.
  SparkContext sc(SmallCluster());
  auto base = Parallelize(&sc, Ints(40), 4).Map([](const int& x) {
    return x + 1;
  });
  auto evens = base.Filter([](const int& x) { return x % 2 == 0; });
  auto odds = base.Filter([](const int& x) { return x % 2 == 1; });

  auto graph =
      LineageGraph::Capture({evens.node().get(), odds.node().get()});
  EXPECT_EQ(CountRule(graph.Analyze(), "LN001"), 0);
}

TEST(LineageGraphTest, Ln001ExemptsSharedShuffleNodes) {
  // Shuffle outputs persist in the shuffle state (like Spark's shuffle
  // files) regardless of caching, so a shared wide node recomputes nothing.
  SparkContext sc(TransientCluster());
  auto part = Parallelize(&sc, Pairs(40), 4).PartitionByKey(4);
  auto left = part.Filter(
      [](const std::pair<int, int>& kv) { return kv.first < 3; });
  auto right = part.Filter(
      [](const std::pair<int, int>& kv) { return kv.first >= 3; });

  auto graph =
      LineageGraph::Capture({left.node().get(), right.node().get()});
  EXPECT_EQ(CountRule(graph.Analyze(), "LN001"), 0);
}

TEST(LineageGraphTest, Ln001MatchesRealRecompute) {
  // End-to-end: the finding predicts recompute, the counters observe it,
  // and Cache() removes both.
  auto run = [](bool cache) {
    SparkContext sc(TransientCluster());
    auto computes = std::make_shared<std::atomic<int>>(0);
    auto base = Parallelize(&sc, Ints(40), 4).Map([computes](const int& x) {
      computes->fetch_add(1);
      return x + 1;
    });
    if (cache) base = base.Cache();
    auto evens = base.Filter([](const int& x) { return x % 2 == 0; });
    auto odds = base.Filter([](const int& x) { return x % 2 == 1; });
    EXPECT_EQ(evens.Count() + odds.Count(), 40u);
    auto graph =
        LineageGraph::Capture({evens.node().get(), odds.node().get()});
    return std::pair<int, int>(computes->load(),
                               CountRule(graph.Analyze(), "LN001"));
  };

  auto [uncached_computes, uncached_findings] = run(false);
  EXPECT_EQ(uncached_computes, 80);  // once per consumer
  EXPECT_EQ(uncached_findings, 1);

  auto [cached_computes, cached_findings] = run(true);
  EXPECT_EQ(cached_computes, 40);  // computed once, served from cache
  EXPECT_EQ(cached_findings, 0);
}

// --------------------------------------------------------------- LN002

TEST(LineageGraphTest, Ln002FlagsShuffleOverCoPartitionedInput) {
  SparkContext sc(SmallCluster());
  // PartitionByKey sets the partitioner, Filter preserves it, and
  // GroupByKey shuffles again with the identical partitioner: the exchange
  // moves nothing that is not already in place.
  auto grouped = Parallelize(&sc, Pairs(40), 4)
                     .PartitionByKey(4)
                     .Filter([](const std::pair<int, int>& kv) {
                       return kv.second % 2 == 0;
                     })
                     .GroupByKey(4);

  auto graph = LineageGraph::Capture(grouped.node().get());
  auto findings = graph.Analyze();
  ASSERT_EQ(CountRule(findings, "LN002"), 1);
  const auto* d = FindRule(findings, "LN002");
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_NE(d->message.find("hash/4"), std::string::npos) << d->message;
}

TEST(LineageGraphTest, Ln002SilentWhenInputIsNotPartitioned) {
  SparkContext sc(SmallCluster());
  auto grouped = Parallelize(&sc, Pairs(40), 4).GroupByKey(4);
  auto graph = LineageGraph::Capture(grouped.node().get());
  EXPECT_EQ(CountRule(graph.Analyze(), "LN002"), 0);
}

TEST(LineageGraphTest, Ln002SilentWhenPartitionerDiffers) {
  SparkContext sc(SmallCluster());
  // Partitioned four ways, regrouped five ways: a genuine re-exchange.
  auto grouped =
      Parallelize(&sc, Pairs(40), 4).PartitionByKey(4).GroupByKey(5);
  auto graph = LineageGraph::Capture(grouped.node().get());
  EXPECT_EQ(CountRule(graph.Analyze(), "LN002"), 0);
}

// --------------------------------------------------------------- LN003

TEST(LineageGraphTest, Ln003FlagsDeepShuffleChains) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Pairs(40), 4)
                 .PartitionByKey(4)
                 .PartitionByKey(5)
                 .PartitionByKey(4)
                 .PartitionByKey(5);
  auto graph = LineageGraph::Capture(rdd.node().get());
  EXPECT_EQ(graph.MaxShuffleDepth(), 4);
  auto findings = graph.Analyze();
  ASSERT_EQ(CountRule(findings, "LN003"), 1);
  const auto* d = FindRule(findings, "LN003");
  EXPECT_EQ(d->severity, Severity::kInfo);
  EXPECT_NE(d->message.find("4 shuffles"), std::string::npos) << d->message;
}

TEST(LineageGraphTest, Ln003SilentForShallowChains) {
  SparkContext sc(SmallCluster());
  auto rdd =
      Parallelize(&sc, Pairs(40), 4).PartitionByKey(4).PartitionByKey(5);
  auto graph = LineageGraph::Capture(rdd.node().get());
  EXPECT_EQ(graph.MaxShuffleDepth(), 2);
  EXPECT_EQ(CountRule(graph.Analyze(), "LN003"), 0);
}

// ----------------------------------------------------------------- DOT

TEST(LineageGraphTest, DotExportShowsStructure) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Pairs(30), 4).Cache().PartitionByKey(4);
  auto dot = LineageGraph::Capture(rdd.node().get()).ToDot();
  EXPECT_NE(dot.find("digraph lineage"), std::string::npos);
  EXPECT_NE(dot.find("Parallelize"), std::string::npos);
  EXPECT_NE(dot.find("PartitionByKey"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);  // wide node
  EXPECT_NE(dot.find("label=\"shuffle\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgrey"), std::string::npos);  // cached
}

TEST(LineageGraphTest, EmptyGraphAnalyzesClean) {
  LineageGraph graph = LineageGraph::Capture(
      std::vector<const RddNodeBase*>{});
  EXPECT_TRUE(graph.nodes().empty());
  EXPECT_TRUE(graph.Analyze().empty());
  EXPECT_EQ(graph.ShuffleCount(), 0);
  EXPECT_EQ(graph.MaxShuffleDepth(), 0);
  EXPECT_NE(graph.ToDot().find("digraph lineage"), std::string::npos);
}

// ------------------------------------------------ transient retention

TEST(TransientRetentionTest, ResultsMatchDefaultRetention) {
  auto run = [](const ClusterConfig& cfg) {
    SparkContext sc(cfg);
    auto rdd = Parallelize(&sc, Pairs(50), 4)
                   .ReduceByKey([](int a, int b) { return a + b; });
    auto got = rdd.Collect();
    std::sort(got.begin(), got.end());
    return got;
  };
  EXPECT_EQ(run(SmallCluster()), run(TransientCluster()));
}

TEST(TransientRetentionTest, UncacheDropsRetainedPartitions) {
  SparkContext sc(SmallCluster());
  auto rdd = Parallelize(&sc, Ints(40), 4).Map([](const int& x) {
    return x * 2;
  });
  EXPECT_EQ(rdd.Count(), 40u);
  EXPECT_TRUE(rdd.node()->IsPartitionCached(0));
  rdd.Uncache();
  EXPECT_FALSE(rdd.node()->cached());
  for (int p = 0; p < 4; ++p) EXPECT_FALSE(rdd.node()->IsPartitionCached(p));
  // Lineage recomputes transparently — and caches again after re-enabling.
  rdd.Cache();
  EXPECT_EQ(rdd.Count(), 40u);
  EXPECT_TRUE(rdd.node()->IsPartitionCached(0));
}

}  // namespace
}  // namespace rdfspark::spark
