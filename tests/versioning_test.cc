#include "rdf/versioning.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/generator.h"
#include "sparql/eval.h"
#include "sparql/parser.h"

namespace rdfspark::rdf {
namespace {

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return Triple{Term::Uri("http://" + s), Term::Uri("http://" + p),
                Term::Uri("http://" + o)};
}

TEST(VersionedStoreTest, CommitAdvancesVersions) {
  VersionedStore store;
  EXPECT_EQ(store.latest_version(), 0);
  Delta d1;
  d1.added = {T("a", "p", "b"), T("b", "p", "c")};
  auto v1 = store.Commit(d1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1);
  EXPECT_EQ(*store.SizeAt(1), 2u);
  EXPECT_EQ(*store.SizeAt(0), 0u);
}

TEST(VersionedStoreTest, RemovalAndReAddition) {
  VersionedStore store;
  Delta d1;
  d1.added = {T("a", "p", "b")};
  ASSERT_TRUE(store.Commit(d1).ok());
  Delta d2;
  d2.removed = {T("a", "p", "b")};
  ASSERT_TRUE(store.Commit(d2).ok());
  EXPECT_EQ(*store.SizeAt(2), 0u);
  Delta d3;
  d3.added = {T("a", "p", "b")};
  ASSERT_TRUE(store.Commit(d3).ok());
  EXPECT_EQ(*store.SizeAt(3), 1u);
  EXPECT_EQ(*store.SizeAt(1), 1u);  // history intact
}

TEST(VersionedStoreTest, RemovingAbsentTripleFails) {
  VersionedStore store;
  Delta bad;
  bad.removed = {T("x", "p", "y")};
  EXPECT_EQ(store.Commit(bad).status().code(), StatusCode::kInvalidArgument);
}

TEST(VersionedStoreTest, DuplicateAddIsIgnored) {
  VersionedStore store;
  Delta d;
  d.added = {T("a", "p", "b"), T("a", "p", "b")};
  ASSERT_TRUE(store.Commit(d).ok());
  EXPECT_EQ(*store.SizeAt(1), 1u);
  Delta again;
  again.added = {T("a", "p", "b")};
  ASSERT_TRUE(store.Commit(again).ok());
  EXPECT_EQ(*store.SizeAt(2), 1u);
  EXPECT_EQ(store.StoredRecords(), 1u);  // the duplicate stored nothing
}

TEST(VersionedStoreTest, MaterializeIsQueryable) {
  VersionedStore store;
  Delta d1;
  d1.added = {T("a", "knows", "b")};
  ASSERT_TRUE(store.Commit(d1).ok());
  Delta d2;
  d2.added = {T("b", "knows", "c")};
  ASSERT_TRUE(store.Commit(d2).ok());

  auto v1 = store.Materialize(1);
  ASSERT_TRUE(v1.ok());
  auto v2 = store.Materialize(2);
  ASSERT_TRUE(v2.ok());

  auto query = sparql::ParseQuery(
      "SELECT ?x ?y WHERE { ?x <http://knows> ?y }");
  ASSERT_TRUE(query.ok());
  sparql::ReferenceEvaluator e1(&*v1), e2(&*v2);
  EXPECT_EQ((*e1.Evaluate(*query)).num_rows(), 1u);
  EXPECT_EQ((*e2.Evaluate(*query)).num_rows(), 2u);
}

TEST(VersionedStoreTest, DeltaBetweenComputesNetChange) {
  VersionedStore store;
  Delta d1;
  d1.added = {T("a", "p", "b"), T("c", "p", "d")};
  ASSERT_TRUE(store.Commit(d1).ok());
  Delta d2;
  d2.removed = {T("c", "p", "d")};
  d2.added = {T("e", "p", "f")};
  ASSERT_TRUE(store.Commit(d2).ok());

  auto net = store.DeltaBetween(1, 2);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->added.size(), 1u);
  EXPECT_EQ(net->removed.size(), 1u);
  EXPECT_EQ(net->added[0], T("e", "p", "f"));

  // Reverse direction swaps roles.
  auto back = store.DeltaBetween(2, 1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->added.size(), 1u);
  EXPECT_EQ(back->added[0], T("c", "p", "d"));
}

TEST(VersionedStoreTest, VersionBoundsChecked) {
  VersionedStore store;
  EXPECT_FALSE(store.SizeAt(1).ok());
  EXPECT_FALSE(store.Materialize(-1).ok());
  EXPECT_FALSE(store.DeltaBetween(0, 3).ok());
}

TEST(VersionedStoreTest, ArchiveStorageBeatsSnapshots) {
  // Evolving LUBM: small deltas on a large base. The delta-chain archive
  // stores far less than per-version snapshots would.
  VersionedStore store;
  Delta base;
  base.added = GenerateLubm(LubmConfig{});
  ASSERT_TRUE(store.Commit(base).ok());
  uint64_t base_size = *store.SizeAt(1);

  for (int v = 0; v < 5; ++v) {
    Delta d;
    for (int i = 0; i < 10; ++i) {
      d.added.push_back(T("new" + std::to_string(v), "rel",
                          "n" + std::to_string(i)));
    }
    ASSERT_TRUE(store.Commit(d).ok());
  }
  uint64_t snapshots_would_store = 0;
  for (int v = 1; v <= store.latest_version(); ++v) {
    snapshots_would_store += *store.SizeAt(v);
  }
  EXPECT_LT(store.StoredRecords(), snapshots_would_store / 3);
  EXPECT_GE(*store.SizeAt(store.latest_version()), base_size + 50);
}

}  // namespace
}  // namespace rdfspark::rdf
