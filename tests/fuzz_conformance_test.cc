// Property-based conformance: random basic graph patterns over a generated
// dataset, every engine checked against the reference evaluator. This is
// the suite that catches the join-order, co-partitioning, replication and
// index-selection corner cases the hand-written queries miss.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "rdf/generator.h"
#include "rdf/store.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "systems/engine.h"

namespace rdfspark::systems {
namespace {

using sparql::PatternTerm;
using sparql::Query;
using sparql::TriplePattern;

const rdf::TripleStore& Dataset() {
  static rdf::TripleStore* store = [] {
    auto* s = new rdf::TripleStore();
    rdf::LubmConfig cfg;
    cfg.num_universities = 1;
    cfg.departments_per_university = 2;
    cfg.professors_per_department = 3;
    cfg.students_per_department = 10;
    cfg.courses_per_department = 4;
    s->AddAll(rdf::GenerateLubm(cfg));
    s->Dedupe();
    return s;
  }();
  return *store;
}

/// Draws a random BGP: 1-4 patterns; subjects/objects are variables from a
/// small pool or constants sampled from the data; predicates are usually
/// bound (drawn from the data) and occasionally variables. Later patterns
/// reuse earlier variables with high probability so joins actually happen.
Query RandomBgpQuery(Rng* rng, const rdf::TripleStore& store) {
  const auto& triples = store.triples();
  const rdf::Dictionary& dict = store.dictionary();
  static const char* kVarPool[] = {"a", "b", "c", "d"};

  Query query;
  std::vector<std::string> used_vars;
  int num_patterns = 1 + static_cast<int>(rng->Below(4));
  for (int i = 0; i < num_patterns; ++i) {
    // Sample a concrete triple to anchor the pattern so it usually has
    // results; constants come from that triple.
    const rdf::EncodedTriple& seed =
        triples[rng->Below(triples.size())];
    auto const_term = [&](rdf::TermId id) {
      return PatternTerm::Const(*dict.Decode(id));
    };
    auto pick_var = [&]() -> PatternTerm {
      // Reuse an existing variable 70% of the time once some exist.
      if (!used_vars.empty() && rng->Bernoulli(0.7)) {
        return PatternTerm::Var(
            used_vars[rng->Below(used_vars.size())]);
      }
      std::string v = kVarPool[rng->Below(4)];
      if (std::find(used_vars.begin(), used_vars.end(), v) ==
          used_vars.end()) {
        used_vars.push_back(v);
      }
      return PatternTerm::Var(v);
    };

    TriplePattern tp;
    tp.s = rng->Bernoulli(0.75) ? pick_var() : const_term(seed.s);
    tp.p = rng->Bernoulli(0.85) ? const_term(seed.p)
                                : (rng->Bernoulli(0.5)
                                       ? pick_var()
                                       : const_term(seed.p));
    tp.o = rng->Bernoulli(0.6) ? pick_var() : const_term(seed.o);
    query.where.bgp.push_back(std::move(tp));
  }
  return query;  // SELECT * over the pattern
}

TEST(FuzzConformanceTest, RandomBgpsMatchReferenceOnAllEngines) {
  const rdf::TripleStore& store = Dataset();
  spark::ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  spark::SparkContext sc(cfg);
  auto engines = MakeAllEngines(&sc);
  for (auto& engine : engines) {
    ASSERT_TRUE(engine->Load(store).ok()) << engine->traits().name;
  }
  sparql::ReferenceEvaluator reference(&store);

  Rng rng(20260705);
  int checked = 0;
  for (int round = 0; round < 40; ++round) {
    Query query = RandomBgpQuery(&rng, store);
    auto expected = reference.Evaluate(query);
    ASSERT_TRUE(expected.ok());
    // Keep runtimes sane: skip the rare cartesian blow-ups.
    if (expected->num_rows() > 20000) continue;
    auto expected_decoded = expected->Decode(store.dictionary());
    for (auto& engine : engines) {
      auto got = engine->Execute(query);
      ASSERT_TRUE(got.ok())
          << engine->traits().name << " round " << round << ": "
          << got.status().ToString();
      ASSERT_EQ(got->Decode(store.dictionary()), expected_decoded)
          << engine->traits().name << " diverged on round " << round
          << "; BGP:\n"
          << [&] {
               std::string s;
               for (const auto& tp : query.where.bgp) {
                 s += "  " + tp.ToString() + "\n";
               }
               return s;
             }();
      ++checked;
    }
  }
  // 40 rounds x 9 engines, minus skipped blow-ups.
  EXPECT_GT(checked, 250);
}

TEST(FuzzConformanceTest, RandomBgpsOnSkewedWatdivData) {
  // Zipf-skewed data stresses the partitioners and the optimizers' size
  // estimates very differently from the uniform LUBM shapes.
  rdf::TripleStore store;
  rdf::WatdivConfig cfg;
  cfg.num_users = 60;
  cfg.num_products = 30;
  store.AddAll(rdf::GenerateWatdiv(cfg));
  store.Dedupe();

  spark::SparkContext sc(spark::ClusterConfig{});
  auto engines = MakeAllEngines(&sc);
  for (auto& engine : engines) {
    ASSERT_TRUE(engine->Load(store).ok()) << engine->traits().name;
  }
  sparql::ReferenceEvaluator reference(&store);

  Rng rng(999);
  for (int round = 0; round < 20; ++round) {
    Query query = RandomBgpQuery(&rng, store);
    auto expected = reference.Evaluate(query);
    ASSERT_TRUE(expected.ok());
    if (expected->num_rows() > 20000) continue;
    auto expected_decoded = expected->Decode(store.dictionary());
    for (auto& engine : engines) {
      auto got = engine->Execute(query);
      ASSERT_TRUE(got.ok()) << engine->traits().name;
      ASSERT_EQ(got->Decode(store.dictionary()), expected_decoded)
          << engine->traits().name << " diverged on watdiv round " << round;
    }
  }

  // The fixed shape queries too.
  for (auto shape :
       {rdf::QueryShape::kStar, rdf::QueryShape::kLinear,
        rdf::QueryShape::kSnowflake, rdf::QueryShape::kComplex}) {
    auto parsed = sparql::ParseQuery(rdf::WatdivShapeQuery(shape));
    ASSERT_TRUE(parsed.ok()) << rdf::QueryShapeName(shape);
    auto expected = reference.Evaluate(*parsed);
    ASSERT_TRUE(expected.ok());
    auto expected_decoded = expected->Decode(store.dictionary());
    for (auto& engine : engines) {
      bool bgp_plus = !parsed->where.IsPlainBgp();
      if (bgp_plus &&
          engine->traits().fragment == SparqlFragment::kBgp) {
        continue;
      }
      auto got = engine->Execute(*parsed);
      ASSERT_TRUE(got.ok()) << engine->traits().name;
      EXPECT_EQ(got->Decode(store.dictionary()), expected_decoded)
          << engine->traits().name << " on watdiv "
          << rdf::QueryShapeName(shape);
    }
  }
}

TEST(FuzzConformanceTest, RandomProjectionsAndModifiers) {
  const rdf::TripleStore& store = Dataset();
  spark::ClusterConfig cfg;
  spark::SparkContext sc(cfg);
  auto engines = MakeAllEngines(&sc);
  for (auto& engine : engines) {
    ASSERT_TRUE(engine->Load(store).ok());
  }
  sparql::ReferenceEvaluator reference(&store);

  Rng rng(777);
  for (int round = 0; round < 15; ++round) {
    Query query = RandomBgpQuery(&rng, store);
    // Random projection + DISTINCT + LIMIT.
    auto vars = query.where.Variables();
    if (!vars.empty()) {
      query.select_vars =
          std::vector<std::string>{vars[rng.Below(vars.size())]};
    }
    query.distinct = rng.Bernoulli(0.5);
    if (rng.Bernoulli(0.3)) query.limit = 5;
    auto expected = reference.Evaluate(query);
    ASSERT_TRUE(expected.ok());
    if (expected->num_rows() > 20000) continue;
    for (auto& engine : engines) {
      auto got = engine->Execute(query);
      ASSERT_TRUE(got.ok()) << engine->traits().name;
      if (query.limit >= 0) {
        EXPECT_EQ(got->num_rows(), expected->num_rows())
            << engine->traits().name << " round " << round;
      } else {
        EXPECT_EQ(got->Decode(store.dictionary()),
                  expected->Decode(store.dictionary()))
            << engine->traits().name << " round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace rdfspark::systems
