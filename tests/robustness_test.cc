// Robustness sweeps: random garbage must produce Status errors, never
// crashes or hangs, across every parser in the library (N-Triples, SPARQL,
// SQL, motifs). Also exercises the context's phase/cost accounting edges.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "rdf/ntriples.h"
#include "spark/context.h"
#include "spark/graphframes/graphframe.h"
#include "spark/sql/sql_parser.h"
#include "sparql/parser.h"

namespace rdfspark {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->Below(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(32 + rng->Below(95)));  // printable
  }
  return out;
}

std::string RandomFromAlphabet(Rng* rng, const std::string& alphabet,
                               size_t max_len) {
  size_t len = rng->Below(max_len + 1);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng->Below(alphabet.size())]);
  }
  return out;
}

TEST(RobustnessTest, NTriplesParserNeverCrashes) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    auto r1 = rdf::ParseNTriplesLine(RandomBytes(&rng, 80));
    (void)r1;
    // Structured-ish garbage hits deeper code paths.
    auto r2 = rdf::ParseNTriplesLine(RandomFromAlphabet(
        &rng, "<>\"\\._:@^ abc0", 60));
    (void)r2;
  }
  SUCCEED();
}

TEST(RobustnessTest, SparqlParserNeverCrashes) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    auto r1 = sparql::ParseQuery(RandomBytes(&rng, 120));
    (void)r1;
    auto r2 = sparql::ParseQuery(
        "SELECT " + RandomFromAlphabet(&rng, "?xy*( )ASCOUNT", 30) +
        " WHERE { " + RandomFromAlphabet(&rng, "?xp<>\". {}FILTERUNION", 60) +
        " }");
    (void)r2;
  }
  SUCCEED();
}

TEST(RobustnessTest, SqlParserNeverCrashes) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    auto r1 = spark::sql::ParseSql(RandomBytes(&rng, 120));
    (void)r1;
    auto r2 = spark::sql::ParseSql(
        "SELECT " + RandomFromAlphabet(&rng, "abc.,*()'=<>", 40) + " FROM " +
        RandomFromAlphabet(&rng, "abc JOINWHERE", 40));
    (void)r2;
  }
  SUCCEED();
}

TEST(RobustnessTest, MotifParserNeverCrashes) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    auto r = spark::graphframes::ParseMotif(
        RandomFromAlphabet(&rng, "()[]->;ab ", 50));
    (void)r;
  }
  SUCCEED();
}

TEST(ContextTest, NestedPhasesAccumulateTime) {
  spark::ClusterConfig cfg;
  cfg.num_executors = 2;
  spark::SparkContext sc(cfg);
  sc.BeginPhase();
  sc.ChargeTask(0, 100, 0);
  sc.BeginPhase();  // nested (a shuffle inside an action)
  sc.ChargeTask(1, 200, 50);
  sc.EndPhase();
  double after_inner = sc.metrics().simulated_ms;
  EXPECT_GT(after_inner, 0.0);
  sc.ChargeTask(0, 100, 0);
  sc.EndPhase();
  EXPECT_GT(sc.metrics().simulated_ms, after_inner);
  EXPECT_EQ(sc.metrics().stages, 2u);
  EXPECT_EQ(sc.metrics().tasks, 3u);
}

TEST(ContextTest, ExecutorPlacementIsRoundRobin) {
  spark::ClusterConfig cfg;
  cfg.num_executors = 3;
  spark::SparkContext sc(cfg);
  EXPECT_EQ(sc.ExecutorOf(0), 0);
  EXPECT_EQ(sc.ExecutorOf(4), 1);
  EXPECT_EQ(sc.ExecutorOf(5), 2);
}

TEST(ContextTest, BroadcastChargesVolumeAndTime) {
  spark::ClusterConfig cfg;
  cfg.num_executors = 4;
  spark::SparkContext sc(cfg);
  sc.ChargeBroadcastBytes(1000);
  EXPECT_EQ(sc.metrics().broadcast_bytes, 3000u);  // (executors-1) copies
  EXPECT_GT(sc.metrics().simulated_ms, 0.0);

  // A single-executor cluster broadcasts nothing.
  spark::ClusterConfig solo;
  solo.num_executors = 1;
  spark::SparkContext sc1(solo);
  sc1.ChargeBroadcastBytes(1000);
  EXPECT_EQ(sc1.metrics().broadcast_bytes, 0u);
  EXPECT_DOUBLE_EQ(sc1.metrics().simulated_ms, 0.0);
}

TEST(ContextTest, DegenerateConfigsAreClamped) {
  spark::ClusterConfig cfg;
  cfg.num_executors = 0;
  cfg.default_parallelism = -5;
  spark::SparkContext sc(cfg);
  EXPECT_GE(sc.config().num_executors, 1);
  EXPECT_GE(sc.config().default_parallelism, 1);
}

}  // namespace
}  // namespace rdfspark
