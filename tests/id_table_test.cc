#include "sparql/id_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "spark/rdd.h"
#include "spark/value_hash.h"

namespace rdfspark::sparql {
namespace {

using rdf::TermId;

IdTable MakeTable(size_t width, std::initializer_list<std::vector<TermId>> rows) {
  IdTable t(width);
  for (const auto& r : rows) t.AppendRow(IdSpan(r));
  return t;
}

TEST(IdTableTest, AppendAndView) {
  IdTable t(3);
  EXPECT_EQ(t.width(), 3u);
  EXPECT_TRUE(t.empty());

  t.AppendRow(IdSpan(std::vector<TermId>{1, 2, 3}));
  t.AppendRow(IdSpan(std::vector<TermId>{4}));  // padded with kUnbound
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.cell(0, 0), 1u);
  EXPECT_EQ(t.cell(0, 2), 3u);
  EXPECT_EQ(t.cell(1, 0), 4u);
  EXPECT_EQ(t.cell(1, 1), kUnbound);
  EXPECT_EQ(t.row(1)[2], kUnbound);

  TermId* cells = t.AppendRowUninitialized();
  ASSERT_NE(cells, nullptr);
  cells[0] = 7;
  cells[1] = 8;
  cells[2] = 9;
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.cell(2, 1), 8u);

  t.PopRow();
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.data().size(), 6u);

  t.AppendRowFilled(5);
  EXPECT_EQ(t.cell(2, 0), 5u);
  EXPECT_EQ(t.cell(2, 2), 5u);
}

TEST(IdTableTest, WidthZeroCountsRows) {
  IdTable unit(0);
  EXPECT_EQ(unit.AppendRowUninitialized(), nullptr);
  unit.AppendRowFilled(kUnbound);
  EXPECT_EQ(unit.size(), 2u);
  EXPECT_TRUE(unit.data().empty());
  unit.PopRow();
  EXPECT_EQ(unit.size(), 1u);
}

TEST(IdTableTest, AppendFromOtherTables) {
  IdTable a = MakeTable(2, {{1, 2}, {3, 4}});
  IdTable b = MakeTable(2, {{5, 6}});
  b.AppendRowFrom(a, 1);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.cell(1, 0), 3u);
  b.AppendRowsFrom(a);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.cell(2, 0), 1u);
  EXPECT_EQ(b.cell(3, 1), 4u);
}

TEST(IdTableTest, RowHashMatchesValueHashOfVector) {
  // Shuffle charging and golden hashes rely on a row hashing exactly like
  // the std::vector<TermId> rows the data plane replaced.
  IdTable t = MakeTable(3, {{1, 2, 3}, {0, kUnbound, 42}});
  for (size_t r = 0; r < t.size(); ++r) {
    std::vector<TermId> as_vector(t.row(r).begin(), t.row(r).end());
    EXPECT_EQ(t.RowHash(r), spark::HashValue(as_vector)) << r;
  }
}

TEST(IdTableTest, RowsEqualComparesCells) {
  IdTable t = MakeTable(2, {{1, 2}, {1, 2}, {1, 3}});
  EXPECT_TRUE(t.RowsEqual(0, 1));
  EXPECT_FALSE(t.RowsEqual(0, 2));
}

TEST(IdTableTest, DistinctKeepsFirstOccurrence) {
  IdTable t = MakeTable(2, {{1, 2}, {3, 4}, {1, 2}, {5, 6}, {3, 4}});
  EXPECT_EQ(t.DistinctRowIndices(), (std::vector<size_t>{0, 1, 3}));
}

TEST(IdTableTest, LexicographicOrderIsStable) {
  IdTable t = MakeTable(2, {{3, 1}, {1, 9}, {3, 0}, {1, 9}});
  // (1,9) rows keep their relative order (stability), then (3,0), (3,1).
  EXPECT_EQ(t.LexicographicOrder(), (std::vector<size_t>{1, 3, 2, 0}));
  IdTable sorted = t.PermutedByRows(t.LexicographicOrder());
  EXPECT_EQ(sorted.cell(0, 1), 9u);
  EXPECT_EQ(sorted.cell(2, 1), 0u);
  EXPECT_EQ(sorted.cell(3, 0), 3u);
}

TEST(IdTableTest, SplitRowsMatchesParallelizeBoundaries) {
  // One batch per partition must slice exactly where Parallelize slices
  // elements, or batch engines would place rows on different partitions
  // than their per-element predecessors.
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    size_t rows = rng() % 50;
    int n = 1 + static_cast<int>(rng() % 7);
    IdTable t(2);
    std::vector<std::pair<TermId, TermId>> elems;
    for (size_t i = 0; i < rows; ++i) {
      TermId a = rng() % 100, b = rng() % 100;
      t.AppendRow(IdSpan(std::vector<TermId>{a, b}));
      elems.emplace_back(a, b);
    }
    auto slices = t.SplitRows(n);
    ASSERT_EQ(slices.size(), static_cast<size_t>(n));

    spark::ClusterConfig cfg;
    cfg.num_executors = 2;
    cfg.default_parallelism = n;
    spark::SparkContext sc(cfg);
    auto rdd = spark::Parallelize(&sc, elems, n);
    for (int p = 0; p < n; ++p) {
      auto part = rdd.node()->GetPartition(p);
      ASSERT_EQ(slices[p].size(), part->size()) << trial << "/" << p;
      for (size_t i = 0; i < part->size(); ++i) {
        EXPECT_EQ(slices[p].cell(i, 0), (*part)[i].first);
        EXPECT_EQ(slices[p].cell(i, 1), (*part)[i].second);
      }
    }
  }
}

TEST(IdTableTest, DistinctAndOrderMatchNaiveOnRandomTables) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    size_t width = 1 + rng() % 4;
    size_t rows = rng() % 40;
    IdTable t(width);
    std::vector<std::vector<TermId>> naive;
    for (size_t i = 0; i < rows; ++i) {
      std::vector<TermId> row(width);
      for (auto& c : row) c = rng() % 5;  // few values => many duplicates
      t.AppendRow(IdSpan(row));
      naive.push_back(row);
    }

    // Naive stable first-occurrence dedup.
    std::vector<size_t> expect_distinct;
    std::set<std::vector<TermId>> seen;
    for (size_t i = 0; i < rows; ++i) {
      if (seen.insert(naive[i]).second) expect_distinct.push_back(i);
    }
    EXPECT_EQ(t.DistinctRowIndices(), expect_distinct) << trial;

    // Naive stable lexicographic sort of indices.
    std::vector<size_t> expect_order(rows);
    for (size_t i = 0; i < rows; ++i) expect_order[i] = i;
    std::stable_sort(expect_order.begin(), expect_order.end(),
                     [&](size_t a, size_t b) { return naive[a] < naive[b]; });
    EXPECT_EQ(t.LexicographicOrder(), expect_order) << trial;
  }
}

TEST(IdTableTest, EstimatedByteSizeIsFlat) {
  IdTable t(4);
  EXPECT_EQ(t.EstimatedByteSize(), 16u);
  for (int i = 0; i < 10; ++i) t.AppendRowFilled(0);
  // 10 rows of 4 cells: one batch-header constant + the flat buffer. The
  // per-row std::vector header charge (24B/row before the refactor) is gone.
  EXPECT_EQ(t.EstimatedByteSize(), 16u + 10u * 4u * sizeof(TermId));
}

TEST(IdTableTest, RowIteratorYieldsSpans) {
  IdTable t = MakeTable(2, {{1, 2}, {3, 4}});
  std::vector<TermId> flat;
  for (IdSpan row : t) flat.insert(flat.end(), row.begin(), row.end());
  EXPECT_EQ(flat, (std::vector<TermId>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace rdfspark::sparql
