// query_profile — runtime profile matrix across the nine engines.
//
// Executes the canonical LUBM query shapes (star, chain, snowflake) on
// every reproduced engine with per-operator actuals collection and prints
// a per-engine runtime profile: result rows, simulated time, shuffle and
// join work, task-duration skew. The EXPLAIN ANALYZE companion to
// plan_lint's static matrix — here everything *is* executed.
//
//   $ ./query_profile                  # human-readable matrix
//   $ ./query_profile --json           # machine-readable (RFC 8259) dump
//   $ ./query_profile --trace t.json   # also write a Chrome trace of the
//                                      # S2RDF/star run (chrome://tracing)
//
// Every query runs on a fresh serial-executor context, so all numbers are
// deterministic and the JSON is byte-stable across runs and machines.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "rdf/generator.h"
#include "rdf/store.h"
#include "systems/s2rdf.h"
#include "spark/context.h"
#include "systems/engine.h"
#include "systems/plan/plan.h"

namespace {

using namespace rdfspark;

spark::ClusterConfig SmallCluster() {
  spark::ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  cfg.executor_threads = 1;  // deterministic timelines for --trace
  return cfg;
}

/// Same dataset as plan_lint and the golden tests: one LUBM university.
rdf::TripleStore MakeDataset() {
  rdf::TripleStore store;
  rdf::LubmConfig cfg;
  cfg.num_universities = 1;
  cfg.departments_per_university = 3;
  cfg.professors_per_department = 4;
  cfg.students_per_department = 20;
  cfg.courses_per_department = 5;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.Dedupe();
  return store;
}

struct ShapeQuery {
  const char* label;
  std::string text;
};

std::vector<ShapeQuery> Shapes() {
  return {
      {"star", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3)},
      {"chain", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)},
      {"snowflake", rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake)},
  };
}

/// One analyzed (engine, shape) execution.
struct Profile {
  std::string engine;
  std::string shape;
  bool ok = false;
  std::string error;
  uint64_t rows = 0;
  bool rows_known = false;
  spark::Metrics delta;                   // query-only (load excluded)
  std::vector<std::string> plan_lines;    // per-node JSON objects, pre-order
};

std::string JsonNumber(double v) {
  char buf[64];
  // %.10g keeps integers exact up to 2^33 and stays valid JSON.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void AppendPlanNodes(const systems::plan::PlanNode& node, int depth,
                     std::vector<std::string>* out) {
  std::string line = "{\"op\":\"";
  line += systems::plan::NodeKindName(node.kind);
  line += "\",\"depth\":" + std::to_string(depth);
  if (!node.detail.empty()) {
    line += ",\"detail\":\"" + JsonEscape(node.detail) + "\"";
  }
  if (node.est_cardinality != systems::plan::kNoEstimate) {
    line += ",\"est\":" + std::to_string(node.est_cardinality);
  }
  if (node.actuals != nullptr) {
    const auto& a = *node.actuals;
    if (a.rows_known) line += ",\"rows\":" + std::to_string(a.rows_out);
    line += ",\"tasks\":" + std::to_string(a.tasks.value());
    line += ",\"join_comparisons\":" +
            std::to_string(a.join_comparisons.value());
    line += ",\"shuffle_bytes\":" + std::to_string(a.shuffle_bytes.value());
    line += ",\"broadcast_bytes\":" +
            std::to_string(a.broadcast_bytes.value());
    line += ",\"busy_ms\":" +
            JsonNumber(static_cast<double>(a.busy_ns.value()) / 1e6);
  }
  line += "}";
  out->push_back(std::move(line));
  for (const auto& child : node.children) {
    AppendPlanNodes(*child, depth + 1, out);
  }
}

Profile RunOne(const systems::EngineVariantFactory& factory,
               const ShapeQuery& shape, const rdf::TripleStore& store) {
  Profile p;
  p.engine = factory.name;
  p.shape = shape.label;
  spark::SparkContext sc(SmallCluster());
  auto engine = factory.make(&sc);
  auto loaded = engine->Load(store);
  if (!loaded.ok()) {
    p.error = loaded.status().ToString();
    return p;
  }
  spark::Metrics before = sc.metrics();
  auto root = engine->ExecuteAnalyzed(shape.text);
  if (!root.ok()) {
    p.error = root.status().ToString();
    return p;
  }
  p.delta = sc.metrics() - before;
  if ((*root)->actuals != nullptr && (*root)->actuals->rows_known) {
    p.rows = (*root)->actuals->rows_out;
    p.rows_known = true;
  }
  AppendPlanNodes(**root, 0, &p.plan_lines);
  p.ok = true;
  return p;
}

std::string ToJson(const std::vector<Profile>& profiles,
                   const rdf::TripleStore& store) {
  std::string out = "{\n  \"tool\": \"query_profile\",\n";
  out += "  \"dataset\": {\"triples\": " + std::to_string(store.size()) +
         "},\n";
  out += "  \"cluster\": {\"executors\": 4, \"parallelism\": 8, "
         "\"executor_threads\": 1},\n";
  out += "  \"profiles\": [\n";
  for (size_t i = 0; i < profiles.size(); ++i) {
    const Profile& p = profiles[i];
    out += "    {\"engine\": \"" + JsonEscape(p.engine) + "\", \"shape\": \"" +
           JsonEscape(p.shape) + "\"";
    if (!p.ok) {
      out += ", \"error\": \"" + JsonEscape(p.error) + "\"}";
    } else {
      out += ", \"rows\": ";
      out += p.rows_known ? std::to_string(p.rows) : std::string("null");
      out += ",\n     \"metrics\": {";
      bool first = true;
      p.delta.ForEachNumericField([&](const std::string& name, double v) {
        if (!first) out += ", ";
        first = false;
        out += "\"" + JsonEscape(name) + "\": " + JsonNumber(v);
      });
      out += "},\n     \"plan\": [";
      for (size_t n = 0; n < p.plan_lines.size(); ++n) {
        if (n > 0) out += ", ";
        out += p.plan_lines[n];
      }
      out += "]}";
    }
    out += i + 1 < profiles.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

/// Re-runs one canonical combination (S2RDF / star) with the tracer on and
/// writes the Chrome chrome://tracing export to `path`.
bool WriteTrace(const std::string& path, const rdf::TripleStore& store) {
  spark::SparkContext sc(SmallCluster());
  systems::S2rdfEngine engine(&sc);
  auto loaded = engine.Load(store);
  if (!loaded.ok()) {
    std::fprintf(stderr, "trace load failed: %s\n",
                 loaded.status().ToString().c_str());
    return false;
  }
  sc.tracer().set_enabled(true);
  auto result =
      engine.ExecuteText(rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3));
  if (!result.ok()) {
    std::fprintf(stderr, "trace query failed: %s\n",
                 result.status().ToString().c_str());
    return false;
  }
  std::string json = sc.tracer().ToChromeTraceJson();
  std::string error;
  if (!ValidateJson(json, &error)) {
    std::fprintf(stderr, "trace export is not valid JSON: %s\n",
                 error.c_str());
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << json;
  std::fprintf(stderr, "wrote %zu spans to %s\n", sc.tracer().event_count(),
               path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--trace <chrome-trace.json>]\n",
                   argv[0]);
      return 2;
    }
  }

  rdf::TripleStore store = MakeDataset();
  std::vector<Profile> profiles;
  bool any_error = false;
  for (const auto& factory : systems::AllEngineVariantFactories()) {
    for (const auto& shape : Shapes()) {
      profiles.push_back(RunOne(factory, shape, store));
      any_error |= !profiles.back().ok;
    }
  }

  if (json) {
    std::string out = ToJson(profiles, store);
    std::string error;
    if (!ValidateJson(out, &error)) {
      // Self-check: the emitter and the validator must agree.
      std::fprintf(stderr, "internal error: emitted invalid JSON: %s\n",
                   error.c_str());
      return 1;
    }
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf("query_profile: EXPLAIN ANALYZE matrix over the LUBM "
                "shape queries\n");
    std::printf("dataset: %zu triples (1 university); fresh serial context "
                "per query\n\n",
                store.size());
    std::printf("%-22s %-10s %6s %9s %9s %10s %8s %6s\n", "engine", "shape",
                "rows", "sim_ms", "shuffled", "join_cmp", "tasks", "skew");
    for (const auto& p : profiles) {
      if (!p.ok) {
        std::printf("%-22s %-10s error: %s\n", p.engine.c_str(),
                    p.shape.c_str(), p.error.c_str());
        continue;
      }
      std::printf("%-22s %-10s %6llu %9.3f %9llu %10llu %8llu %6.2f\n",
                  p.engine.c_str(), p.shape.c_str(),
                  static_cast<unsigned long long>(p.rows),
                  p.delta.simulated_ms.ms(),
                  static_cast<unsigned long long>(
                      p.delta.shuffle_records.value()),
                  static_cast<unsigned long long>(
                      p.delta.join_comparisons.value()),
                  static_cast<unsigned long long>(p.delta.tasks.value()),
                  p.delta.task_records.SkewVsMean());
    }
    std::printf("\nskew = max/mean records per task within the query; "
                "rows/actuals are per-operator in --json\n");
  }

  if (!trace_path.empty() && !WriteTrace(trace_path, store)) return 1;
  return any_error ? 1 : 0;
}
