// serve_monitor — renders and validates the telemetry artifacts a
// `serve_bench --telemetry-dir=DIR` run writes.
//
//   $ ./serve_monitor --dir=/tmp/telemetry           # render window tables
//   $ ./serve_monitor --dir=/tmp/telemetry --follow  # tail a live run
//   $ ./serve_monitor --dir=/tmp/telemetry --check
//         --require-windows=3 --require-audit        # CI smoke gate
//
// The renderer consumes telemetry.json (the machine-readable rollup) and
// rebuilds the per-window tenant/variant tables from it — deliberately NOT
// by cat-ing windows.txt, so the monitor exercises the JSON surface end to
// end. --follow polls the file and prints windows as they appear (a
// serve_bench run writes artifacts once at the end; a long-running server
// can rewrite them periodically).
//
// --check validates every artifact:
//   - metrics.prom against the Prometheus text line-format checker,
//   - events.json / audit.json / stats_store.json / telemetry.json against
//     the strict RFC 8259 validator,
//   - stats_store.json additionally round-trips through StatsStore::Parse,
// and reports which event kinds the log covers. --require-windows=N and
// --require-audit turn the acceptance thresholds into exit-code failures.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/audit.h"
#include "obs/prometheus.h"

namespace {

using namespace rdfspark;

struct Config {
  std::string dir;
  bool follow = false;
  bool check = false;
  int interval_ms = 500;
  int max_polls = 0;  // --follow poll budget; 0 = until interrupted.
  int require_windows = 0;
  bool require_audit = false;
};

bool ParseArgs(int argc, char** argv, Config* cfg) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      size_t n = std::strlen(name);
      if (arg.compare(0, n, name) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--dir")) {
      cfg->dir = v;
    } else if (arg == "--follow") {
      cfg->follow = true;
    } else if (arg == "--check") {
      cfg->check = true;
    } else if (const char* v = value("--interval-ms")) {
      cfg->interval_ms = std::atoi(v);
    } else if (const char* v = value("--max-polls")) {
      cfg->max_polls = std::atoi(v);
    } else if (const char* v = value("--require-windows")) {
      cfg->require_windows = std::atoi(v);
    } else if (arg == "--require-audit") {
      cfg->require_audit = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (cfg->dir.empty()) {
    std::fprintf(stderr, "usage: serve_monitor --dir=TELEMETRY_DIR "
                         "[--follow] [--check] [--require-windows=N] "
                         "[--require-audit]\n");
    return false;
  }
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return true;
}

/// Numeric value of `metric` for the (scope, name) pair in one window's
/// series array, or 0 when absent.
double SeriesValue(const JsonValue& window, const std::string& scope,
                   const std::string& name, const std::string& metric) {
  const JsonValue* series = window.Find("series");
  if (series == nullptr) return 0.0;
  for (const JsonValue& s : series->items) {
    if (s.StringOr("scope", "") == scope && s.StringOr("name", "") == name &&
        s.StringOr("metric", "") == metric) {
      return s.NumberOr("value", 0.0);
    }
  }
  return 0.0;
}

const JsonValue* SeriesHist(const JsonValue& window, const std::string& scope,
                            const std::string& name,
                            const std::string& metric) {
  const JsonValue* series = window.Find("series");
  if (series == nullptr) return nullptr;
  for (const JsonValue& s : series->items) {
    if (s.StringOr("scope", "") == scope && s.StringOr("name", "") == name &&
        s.StringOr("metric", "") == metric) {
      return s.Find("p50") != nullptr ? &s : nullptr;
    }
  }
  return nullptr;
}

/// Renders windows [from, end) of the parsed telemetry.json rollup.
/// Returns the new window count.
size_t RenderWindows(const JsonValue& telemetry, size_t from) {
  const JsonValue* windows = telemetry.Find("windows");
  if (windows == nullptr || windows->kind != JsonValue::Kind::kArray) {
    return from;
  }
  double width_ns = 0.0;
  if (const JsonValue* w = telemetry.Find("window")) {
    width_ns = w->NumberOr("width_ns", 0.0);
  }
  double width_s = width_ns > 0 ? width_ns / 1e9 : 1.0;

  for (size_t wi = from; wi < windows->items.size(); ++wi) {
    const JsonValue& w = windows->items[wi];
    std::printf("window [%.1fms, %.1fms)\n",
                w.NumberOr("start_ns", 0.0) / 1e6,
                w.NumberOr("end_ns", 0.0) / 1e6);
    std::printf("  %-22s %8s %8s %9s %9s %6s %7s %12s\n", "scope", "reqs",
                "qps", "p50_ms", "p99_ms", "hit%", "rejects", "shuffle_B");
    // Distinct (scope, name) pairs, in series order (SeriesId order:
    // total < tenant < variant, then name).
    std::vector<std::pair<std::string, std::string>> scopes;
    if (const JsonValue* series = w.Find("series")) {
      for (const JsonValue& s : series->items) {
        std::pair<std::string, std::string> key = {s.StringOr("scope", ""),
                                                   s.StringOr("name", "")};
        if (scopes.empty() || scopes.back() != key) scopes.push_back(key);
      }
    }
    for (const auto& [scope, name] : scopes) {
      double reqs = SeriesValue(w, scope, name, "requests");
      double rejects = SeriesValue(w, scope, name, "admission_rejects") +
                       SeriesValue(w, scope, name, "race_rejects");
      double hits = SeriesValue(w, scope, name, "cache_hits");
      double misses = SeriesValue(w, scope, name, "cache_misses");
      const JsonValue* hist = SeriesHist(w, scope, name, "latency_ns");
      char p50[32] = "-";
      char p99[32] = "-";
      if (hist != nullptr) {
        std::snprintf(p50, sizeof(p50), "%.3f",
                      hist->NumberOr("p50", 0.0) / 1e6);
        std::snprintf(p99, sizeof(p99), "%.3f",
                      hist->NumberOr("p99", 0.0) / 1e6);
      }
      char hit_rate[32] = "-";
      if (hits + misses > 0) {
        std::snprintf(hit_rate, sizeof(hit_rate), "%.1f",
                      100.0 * hits / (hits + misses));
      }
      std::string label = scope == "total" ? scope : scope + ":" + name;
      std::printf("  %-22s %8.0f %8.1f %9s %9s %6s %7.0f %12.0f\n",
                  label.c_str(), reqs, reqs / width_s, p50, p99, hit_rate,
                  rejects, SeriesValue(w, scope, name, "shuffle_bytes"));
    }
  }
  return windows->items.size();
}

/// Validates one JSON artifact; returns false (and prints) on failure.
bool CheckJsonFile(const std::string& dir, const char* file, bool* ok) {
  std::string text;
  if (!ReadFile(dir + "/" + file, &text)) {
    std::fprintf(stderr, "check: %s/%s missing\n", dir.c_str(), file);
    *ok = false;
    return false;
  }
  std::string error;
  if (!ValidateJson(text, &error)) {
    std::fprintf(stderr, "check: %s is not valid RFC 8259 JSON: %s\n", file,
                 error.c_str());
    *ok = false;
    return false;
  }
  std::printf("check: %-16s valid JSON (%zu bytes)\n", file, text.size());
  return true;
}

int RunCheck(const Config& cfg, const JsonValue& telemetry,
             size_t window_count) {
  bool ok = true;

  // metrics.prom: Prometheus text line format.
  std::string prom;
  if (!ReadFile(cfg.dir + "/metrics.prom", &prom)) {
    std::fprintf(stderr, "check: metrics.prom missing\n");
    ok = false;
  } else {
    std::string error;
    if (!obs::CheckPrometheusText(prom, &error)) {
      std::fprintf(stderr, "check: metrics.prom: %s\n", error.c_str());
      ok = false;
    } else {
      std::printf("check: metrics.prom    valid exposition (%zu bytes)\n",
                  prom.size());
    }
  }

  // The JSON artifacts: strict RFC 8259.
  CheckJsonFile(cfg.dir, "telemetry.json", &ok);
  CheckJsonFile(cfg.dir, "audit.json", &ok);
  std::string events_text;
  if (CheckJsonFile(cfg.dir, "events.json", &ok)) {
    ReadFile(cfg.dir + "/events.json", &events_text);
  }
  std::string stats_text;
  if (CheckJsonFile(cfg.dir, "stats_store.json", &ok)) {
    ReadFile(cfg.dir + "/stats_store.json", &stats_text);
    Result<obs::StatsStore> parsed = obs::StatsStore::Parse(stats_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "check: stats_store.json does not round-trip: %s\n",
                   parsed.status().ToString().c_str());
      ok = false;
    } else {
      std::printf("check: stats_store.json round-trips (%zu patterns)\n",
                  parsed.value().size());
    }
  }

  // Event-kind coverage of the structured log.
  if (!events_text.empty()) {
    Result<JsonValue> events = ParseJson(events_text);
    if (events.ok()) {
      std::set<std::string> kinds;
      if (const JsonValue* arr = events.value().Find("events")) {
        for (const JsonValue& e : arr->items) {
          kinds.insert(e.StringOr("kind", "?"));
        }
      }
      std::string joined;
      for (const std::string& k : kinds) {
        if (!joined.empty()) joined += ", ";
        joined += k;
      }
      std::printf("check: event log covers %zu kinds: %s\n", kinds.size(),
                  joined.c_str());
    }
  }

  if (cfg.require_windows > 0 &&
      window_count < static_cast<size_t>(cfg.require_windows)) {
    std::fprintf(stderr, "check: %zu windows < required %d\n", window_count,
                 cfg.require_windows);
    ok = false;
  }
  if (cfg.require_audit) {
    size_t entries = 0;
    size_t with_profile = 0;
    std::string audit_text;
    if (ReadFile(cfg.dir + "/audit.json", &audit_text)) {
      Result<JsonValue> audit = ParseJson(audit_text);
      if (audit.ok()) {
        if (const JsonValue* arr = audit.value().Find("entries")) {
          entries = arr->items.size();
          for (const JsonValue& e : arr->items) {
            if (!e.StringOr("profile", "").empty()) ++with_profile;
          }
        }
      }
    }
    if (entries == 0 || with_profile == 0) {
      std::fprintf(stderr,
                   "check: --require-audit: %zu entries, %zu with EXPLAIN "
                   "ANALYZE profile\n",
                   entries, with_profile);
      ok = false;
    } else {
      std::printf("check: audit log has %zu entries (%zu with profile)\n",
                  entries, with_profile);
    }
  }

  double cache_hits = 0.0;
  double cache_misses = 0.0;
  if (const JsonValue* cache = telemetry.Find("cache")) {
    cache_hits = cache->NumberOr("hits", 0.0);
    cache_misses = cache->NumberOr("misses", 0.0);
  }
  std::printf("check: %zu windows, cache %0.f hits / %0.f misses — %s\n",
              window_count, cache_hits, cache_misses,
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  if (!ParseArgs(argc, argv, &cfg)) return 2;

  std::string path = cfg.dir + "/telemetry.json";
  std::string last_text;
  size_t rendered = 0;
  int polls = 0;
  Result<JsonValue> telemetry = Status::NotFound("not yet read");

  do {
    std::string text;
    if (ReadFile(path, &text)) {
      if (text != last_text) {
        last_text = text;
        telemetry = ParseJson(text);
        if (!telemetry.ok()) {
          std::fprintf(stderr, "serve_monitor: %s: %s\n", path.c_str(),
                       telemetry.status().ToString().c_str());
          return 1;
        }
        if (cfg.follow && rendered > 0) {
          // A rewrite may change window contents, not just append; start
          // over so the tail reflects the artifact exactly.
          const JsonValue* windows = telemetry.value().Find("windows");
          if (windows != nullptr && windows->items.size() < rendered) {
            rendered = 0;
          }
        }
        rendered = RenderWindows(telemetry.value(), rendered);
      }
    } else if (!cfg.follow) {
      std::fprintf(stderr, "serve_monitor: cannot read %s\n", path.c_str());
      return 1;
    }
    if (cfg.follow) {
      ++polls;
      if (cfg.max_polls > 0 && polls >= cfg.max_polls) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(cfg.interval_ms));
    }
  } while (cfg.follow);

  if (!telemetry.ok()) {
    std::fprintf(stderr, "serve_monitor: no telemetry.json found under %s\n",
                 cfg.dir.c_str());
    return 1;
  }
  if (cfg.check) return RunCheck(cfg, telemetry.value(), rendered);
  return 0;
}
