// plan_lint — static plan verifier matrix across the nine engines.
//
// Plans the canonical LUBM query shapes (star, chain, snowflake) on every
// reproduced engine and runs the static verifier over each plan, printing a
// per-engine diagnostic matrix: the Table II companion, with the paper's
// qualitative claims (cartesian fallback, broadcast thresholds, star
// locality, VP scans) as checkable rule ids. Nothing is executed — plans
// are built and analysed only.
//
//   $ ./plan_lint            # matrix + per-finding detail
//
// Exit status is 1 when any ERROR-level finding surfaces (clean engines
// exit 0), so the tool doubles as a CI gate over the planners.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "rdf/generator.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "systems/engine.h"
#include "systems/plan/diagnostics.h"

namespace {

using namespace rdfspark;

spark::ClusterConfig SmallCluster() {
  spark::ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  return cfg;
}

/// Same dataset as the golden EXPLAIN tests: one small LUBM university.
rdf::TripleStore MakeDataset() {
  rdf::TripleStore store;
  rdf::LubmConfig cfg;
  cfg.num_universities = 1;
  cfg.departments_per_university = 3;
  cfg.professors_per_department = 4;
  cfg.students_per_department = 20;
  cfg.courses_per_department = 5;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.Dedupe();
  return store;
}

/// Compact cell: "RULE:SEVxCOUNT" terms joined by spaces, "ok" when clean.
std::string Summarize(const std::vector<systems::plan::Diagnostic>& findings) {
  if (findings.empty()) return "ok";
  // rule -> severity letter -> count, in rule order.
  std::map<std::string, std::map<char, int>> counts;
  for (const auto& d : findings) {
    char sev = systems::plan::SeverityName(d.severity)[0];  // E/W/I
    ++counts[d.rule][sev];
  }
  std::string out;
  for (const auto& [rule, by_sev] : counts) {
    for (const auto& [sev, n] : by_sev) {
      if (!out.empty()) out += " ";
      out += rule + ":" + std::string(1, sev);
      if (n > 1) out += "x" + std::to_string(n);
    }
  }
  return out;
}

}  // namespace

int main() {
  rdf::TripleStore store = MakeDataset();

  struct ShapeQuery {
    const char* label;
    std::string text;
  };
  std::vector<ShapeQuery> shapes = {
      {"star", rdf::LubmShapeQuery(rdf::QueryShape::kStar, 3)},
      {"chain", rdf::LubmShapeQuery(rdf::QueryShape::kLinear, 3)},
      {"snowflake", rdf::LubmShapeQuery(rdf::QueryShape::kSnowflake)},
  };

  std::printf("plan_lint: static verifier over the LUBM shape queries\n");
  std::printf("dataset: %zu triples (1 university)\n\n", store.size());
  std::printf("%-22s %-14s %-14s %-14s\n", "engine", "star", "chain",
              "snowflake");

  struct Detail {
    std::string engine;
    std::string shape;
    std::vector<systems::plan::Diagnostic> findings;
  };
  std::vector<Detail> details;
  bool any_error = false;

  // The canonical 12-variant list shared with the other whole-matrix tools
  // and the serving layer.
  for (const auto& factory : systems::AllEngineVariantFactories()) {
    spark::SparkContext sc(SmallCluster());
    auto engine = factory.make(&sc);
    auto loaded = engine->Load(store);
    if (!loaded.ok()) {
      std::printf("%-22s load failed: %s\n", factory.name.c_str(),
                  loaded.status().ToString().c_str());
      any_error = true;
      continue;
    }
    std::vector<std::string> cells;
    for (const auto& shape : shapes) {
      auto findings = engine->LintQuery(shape.text);
      if (!findings.ok()) {
        cells.push_back("error");
        any_error = true;
        continue;
      }
      cells.push_back(Summarize(*findings));
      any_error |= systems::plan::HasError(*findings);
      if (!findings->empty()) {
        details.push_back(Detail{factory.name, shape.label, *findings});
      }
    }
    std::printf("%-22s %-14s %-14s %-14s\n", factory.name.c_str(),
                cells[0].c_str(), cells[1].c_str(), cells[2].c_str());
  }

  if (!details.empty()) {
    std::printf("\nfindings:\n");
    for (const auto& d : details) {
      // Shared severity-sorted rendering, one prefixed line per finding.
      std::string rendered = systems::plan::RenderDiagnostics(d.findings);
      size_t start = 0;
      while (start < rendered.size()) {
        size_t end = rendered.find('\n', start);
        std::printf("  %s / %s: %s\n", d.engine.c_str(), d.shape.c_str(),
                    rendered.substr(start, end - start).c_str());
        start = end + 1;
      }
    }
  }
  std::printf("\nrules: SC001/SC002 schema soundness, CP001 cartesian "
              "fallback, BC001 broadcast size, ST001 star locality, "
              "VP001 unbounded-predicate scan\n");
  return any_error ? 1 : 0;
}
