// bench_gate — CI gate over the machine-readable bench output.
//
//   bench_gate --candidate=artifacts/BENCH_lubm.json \
//              --baseline=bench/baselines/BENCH_lubm.json \
//              [--metric=shuffle_bytes] [--max-regression=0.10] \
//              [--label=<row label>]
//
// Both files must pass the in-tree RFC 8259 validator. The gate then sums
// `metric` across every row of each file and exits nonzero when the
// candidate total exceeds baseline * (1 + max-regression). Totals (not
// per-label values) are compared so benign label renames don't trip the
// gate; a shuffle-volume regression big enough to matter moves the total.
//
// --label restricts the sum to the row(s) with that exact "label" value —
// the serving gate compares the aggregate row's p99_ms only, because the
// per-tenant percentile rows are noisy under worker interleaving while
// the total is stable:
//
//   bench_gate --candidate=artifacts/BENCH_serving.json \
//              --baseline=bench/baselines/BENCH_serving.json \
//              --label=total --metric=p99_ms --max-regression=0.10
//
// Exit codes: 0 pass, 1 regression, 2 usage / unreadable / invalid JSON.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Sums every `"<metric>": <number>` occurrence. The BENCH_*.json writer
// emits one flat metrics object per row with unique keys, so occurrence
// count == row count; the file has already passed full RFC 8259
// validation, so this scan only has to locate, not parse, the grammar.
double SumMetric(const std::string& json, const std::string& metric,
                 size_t* occurrences) {
  const std::string needle = "\"" + metric + "\":";
  double total = 0;
  *occurrences = 0;
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    total += std::strtod(json.c_str() + pos, nullptr);
    ++*occurrences;
  }
  return total;
}

// Like SumMetric, but only inside rows whose "label" equals `label`. A row
// window spans from its "label" key to the next "label" key (or EOF) —
// sound because the BENCH_*.json writers emit "label" first in each row
// and never nest rows.
double SumLabeledMetric(const std::string& json, const std::string& metric,
                        const std::string& label, size_t* occurrences) {
  const std::string label_key = "\"label\":";
  const std::string metric_needle = "\"" + metric + "\":";
  double total = 0;
  *occurrences = 0;
  size_t pos = 0;
  while ((pos = json.find(label_key, pos)) != std::string::npos) {
    size_t value_start = pos + label_key.size();
    size_t window_end = json.find(label_key, value_start);
    if (window_end == std::string::npos) window_end = json.size();
    // Match the label value: skip whitespace, expect "label".
    size_t v = value_start;
    while (v < json.size() && (json[v] == ' ' || json[v] == '\n')) ++v;
    const std::string quoted = "\"" + label + "\"";
    if (json.compare(v, quoted.size(), quoted) == 0) {
      size_t m = value_start;
      while ((m = json.find(metric_needle, m)) != std::string::npos &&
             m < window_end) {
        m += metric_needle.size();
        total += std::strtod(json.c_str() + m, nullptr);
        ++*occurrences;
      }
    }
    pos = value_start;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::string candidate_path, baseline_path;
  std::string metric = "shuffle_bytes";
  std::string label;
  double max_regression = 0.10;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--candidate=", 12) == 0) {
      candidate_path = arg + 12;
    } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline_path = arg + 11;
    } else if (std::strncmp(arg, "--metric=", 9) == 0) {
      metric = arg + 9;
    } else if (std::strncmp(arg, "--label=", 8) == 0) {
      label = arg + 8;
    } else if (std::strncmp(arg, "--max-regression=", 17) == 0) {
      max_regression = std::strtod(arg + 17, nullptr);
    } else {
      std::fprintf(stderr, "bench_gate: unknown argument %s\n", arg);
      return 2;
    }
  }
  if (candidate_path.empty() || baseline_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_gate --candidate=<json> --baseline=<json> "
                 "[--metric=<name>] [--label=<row>] "
                 "[--max-regression=<fraction>]\n");
    return 2;
  }

  struct {
    const char* role;
    const std::string* path;
    std::string text;
    double total = 0;
    size_t rows = 0;
  } sides[2] = {{"candidate", &candidate_path}, {"baseline", &baseline_path}};
  for (auto& side : sides) {
    if (!ReadFile(*side.path, &side.text)) {
      std::fprintf(stderr, "bench_gate: cannot read %s %s\n", side.role,
                   side.path->c_str());
      return 2;
    }
    std::string error;
    if (!rdfspark::ValidateJson(side.text, &error)) {
      std::fprintf(stderr, "bench_gate: %s %s is not valid JSON: %s\n",
                   side.role, side.path->c_str(), error.c_str());
      return 2;
    }
    side.total = label.empty()
                     ? SumMetric(side.text, metric, &side.rows)
                     : SumLabeledMetric(side.text, metric, label, &side.rows);
    if (side.rows == 0) {
      std::fprintf(stderr, "bench_gate: %s %s has no \"%s\" entries%s%s\n",
                   side.role, side.path->c_str(), metric.c_str(),
                   label.empty() ? "" : " in rows labeled ",
                   label.c_str());
      return 2;
    }
  }

  double limit = sides[1].total * (1.0 + max_regression);
  bool pass = sides[0].total <= limit;
  std::printf(
      "bench_gate: %s total %s = %.0f over %zu rows; baseline %.0f over "
      "%zu rows; limit %.0f (+%.0f%%): %s\n",
      candidate_path.c_str(), metric.c_str(), sides[0].total, sides[0].rows,
      sides[1].total, sides[1].rows, limit, max_regression * 100.0,
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
