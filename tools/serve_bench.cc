// serve_bench — closed/open-loop load generator for the serving layer.
//
// Drives a QueryServer with a configurable tenant mix over the LUBM shape
// queries and reports per-tenant and aggregate serving metrics: P50/P99
// wall latency, sustained QPS, plan-cache hit rate, and the fairness of
// the round-robin dispatch (per-tenant completion counts).
//
//   $ ./serve_bench                                  # defaults
//   $ ./serve_bench --tenants=8 --workers=8 --requests=400
//   $ ./serve_bench --mode=open --rate=200           # open loop, 200 req/s
//   $ ./serve_bench --variants=HAQWA,S2RDF,S2X
//   $ ./serve_bench --warmup=5                       # warm/cold split
//   $ ./serve_bench --threads=8 --telemetry-dir=/tmp/telemetry
//   $ ./serve_bench --memory-budget=100000           # Tier D admission gate
//   $ ./serve_bench --cache-bytes=500000             # plan-cache byte budget
//
// Closed loop: one driver thread per tenant keeps exactly one request in
// flight (submit → wait → submit), the classic closed system model. Open
// loop: requests arrive on a fixed schedule regardless of completions, so
// queueing delay shows up in the latency tail.
//
// --warmup=N excludes each tenant's first N requests from the reported
// wall-latency percentiles (cache fills and first-touch costs dominate
// them); BENCH_serving.json then carries the warm/cold split.
//
// --threads picks the simulated cluster's executor_threads (the partition
// task pool). The telemetry artifacts written by --telemetry-dir are on
// the per-tenant *virtual* timeline and must be byte-identical across
// --threads values — the determinism contract CI diffs two runs to check.
//
// Writes BENCH_serving.json via the shared BenchJson sink when
// RDFSPARK_BENCH_JSON_DIR is set (the CI baseline flow).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "obs/telemetry.h"
#include "rdf/generator.h"
#include "serving/query_server.h"
#include "spark/context.h"
#include "systems/engine.h"

namespace {

using namespace rdfspark;

struct Config {
  int universities = 1;
  int tenants = 4;
  int workers = 8;
  int requests = 120;  // Total across tenants.
  std::string mode = "closed";
  double rate = 100.0;  // Open-loop arrivals per second.
  uint64_t seed = 42;
  std::vector<std::string> variants;  // Empty = all.
  int threads = 0;     // Simulated executor_threads (0 = serial reference).
  int warmup = 0;      // Per-tenant requests excluded from percentiles.
  std::string telemetry_dir;  // Write telemetry artifacts here.
  double window_ms = 0;       // Telemetry window width (simulated ms).
  double audit_ms = 0;        // Slow-query latency threshold (simulated ms).
  double audit_err = 0;       // Cardinality-estimate error trigger factor.
  uint64_t memory_budget = 0;  // Tier D admission budget in bytes (0 = env).
  uint64_t cache_bytes = 0;    // Plan-cache byte budget (0 = entries only).
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool ParseArgs(int argc, char** argv, Config* cfg) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* name) -> const char* {
      size_t n = std::strlen(name);
      if (arg.compare(0, n, name) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--universities")) {
      cfg->universities = std::atoi(v);
    } else if (const char* v = value("--tenants")) {
      cfg->tenants = std::atoi(v);
    } else if (const char* v = value("--workers")) {
      cfg->workers = std::atoi(v);
    } else if (const char* v = value("--requests")) {
      cfg->requests = std::atoi(v);
    } else if (const char* v = value("--mode")) {
      cfg->mode = v;
    } else if (const char* v = value("--rate")) {
      cfg->rate = std::atof(v);
    } else if (const char* v = value("--seed")) {
      cfg->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--variants")) {
      cfg->variants = SplitCsv(v);
    } else if (const char* v = value("--threads")) {
      cfg->threads = std::atoi(v);
    } else if (const char* v = value("--warmup")) {
      cfg->warmup = std::atoi(v);
    } else if (const char* v = value("--telemetry-dir")) {
      cfg->telemetry_dir = v;
    } else if (const char* v = value("--window-ms")) {
      cfg->window_ms = std::atof(v);
    } else if (const char* v = value("--audit-ms")) {
      cfg->audit_ms = std::atof(v);
    } else if (const char* v = value("--audit-err")) {
      cfg->audit_err = std::atof(v);
    } else if (const char* v = value("--memory-budget")) {
      cfg->memory_budget = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--cache-bytes")) {
      cfg->cache_bytes = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (cfg->mode != "closed" && cfg->mode != "open") {
    std::fprintf(stderr, "--mode must be closed or open\n");
    return false;
  }
  return true;
}

/// SplitMix64: deterministic per-request variant/query selection.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  double rank = p * static_cast<double>(sorted_ms.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  if (!ParseArgs(argc, argv, &cfg)) return 2;

  rdf::TripleStore store = bench::MakeLubmStore(cfg.universities, cfg.seed);
  spark::SparkContext sc(bench::DefaultCluster(4, 8, cfg.threads));

  serving::QueryServer::Options options;
  options.worker_threads = cfg.workers;
  options.variants = cfg.variants;
  if (cfg.window_ms > 0) {
    uint64_t width = static_cast<uint64_t>(cfg.window_ms * 1e6);
    options.telemetry_options.window.width_ns = width;
    options.telemetry_options.window.stride_ns = width;
  }
  if (cfg.audit_ms > 0) {
    options.telemetry_options.audit.latency_threshold_ns =
        static_cast<uint64_t>(cfg.audit_ms * 1e6);
  }
  if (cfg.audit_err > 0) {
    options.telemetry_options.audit.est_error_bound = cfg.audit_err;
  }
  // The flag overrides the RDFSPARK_MEMORY_BUDGET default Options picked up.
  if (cfg.memory_budget > 0) options.memory_budget_bytes = cfg.memory_budget;
  if (cfg.cache_bytes > 0) options.plan_cache_byte_budget = cfg.cache_bytes;
  serving::QueryServer server(&sc, options);
  Status attached = server.AttachDataset(store);
  if (!attached.ok()) {
    std::fprintf(stderr, "AttachDataset: %s\n", attached.ToString().c_str());
    return 1;
  }

  // Per-variant admissible mix: BGP-only engines answer Unsupported for
  // the FILTER/DISTINCT shape, so keep it off their schedule — the bench
  // measures serving latency, not fragment coverage.
  std::vector<serving::QueryServer::VariantInfo> variants =
      server.variants();
  std::vector<std::pair<rdf::QueryShape, std::string>> mix =
      rdf::LubmQueryMix();
  std::vector<std::string> bgp_mix;
  std::vector<std::string> full_mix;
  for (const auto& [shape, text] : mix) {
    if (shape != rdf::QueryShape::kComplex) bgp_mix.push_back(text);
    full_mix.push_back(text);
  }

  std::printf("serve_bench: %s loop, %d tenants, %d workers, %d requests\n",
              cfg.mode.c_str(), cfg.tenants, cfg.workers, cfg.requests);
  std::printf("dataset: %zu triples (%d universities); %zu variants\n\n",
              store.size(), cfg.universities, variants.size());

  // Sessions and the per-request schedule, fixed up front so the workload
  // is identical run to run for a given seed.
  std::vector<int> sessions;
  for (int t = 0; t < cfg.tenants; ++t) {
    sessions.push_back(server.OpenSession("tenant" + std::to_string(t)));
  }
  struct Planned {
    int tenant;
    int tenant_index;  ///< Position within the tenant's own sequence.
    std::string variant;
    std::string text;
  };
  std::vector<Planned> schedule;
  std::vector<int> tenant_counts(static_cast<size_t>(cfg.tenants), 0);
  uint64_t rng = cfg.seed;
  for (int i = 0; i < cfg.requests; ++i) {
    Planned p;
    p.tenant = i % cfg.tenants;
    p.tenant_index = tenant_counts[static_cast<size_t>(p.tenant)]++;
    const auto& variant = variants[NextRand(&rng) % variants.size()];
    p.variant = variant.name;
    const auto& texts =
        variant.fragment == systems::SparqlFragment::kBgpPlus ? full_mix
                                                              : bgp_mix;
    p.text = texts[NextRand(&rng) % texts.size()];
    schedule.push_back(std::move(p));
  }

  std::vector<double> latencies_ms(schedule.size(), 0.0);
  std::vector<bool> succeeded(schedule.size(), false);
  // Budget-gate rejections are an expected outcome when a budget is set
  // (the bench reports them as their own column), not a workload failure.
  std::vector<bool> budget_rejected(schedule.size(), false);
  auto bench_start = std::chrono::steady_clock::now();

  if (cfg.mode == "closed") {
    // One driver per tenant, one request in flight each.
    std::vector<std::thread> drivers;
    for (int t = 0; t < cfg.tenants; ++t) {
      drivers.emplace_back([&, t] {
        for (size_t i = 0; i < schedule.size(); ++i) {
          if (schedule[i].tenant != t) continue;
          serving::RequestResult r = server.Execute(
              sessions[static_cast<size_t>(t)], schedule[i].variant,
              schedule[i].text);
          latencies_ms[i] = r.latency_ms;
          succeeded[i] = r.status.ok();
          budget_rejected[i] = r.budget_rejected;
        }
      });
    }
    for (auto& d : drivers) d.join();
  } else {
    // Open loop: submit on schedule, collect tickets, wait at the end.
    double gap_ms = cfg.rate > 0 ? 1000.0 / cfg.rate : 0.0;
    std::vector<std::shared_ptr<serving::QueryServer::Ticket>> tickets;
    tickets.reserve(schedule.size());
    for (size_t i = 0; i < schedule.size(); ++i) {
      auto due = bench_start + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       gap_ms * static_cast<double>(i)));
      std::this_thread::sleep_until(due);
      tickets.push_back(server.Submit(
          sessions[static_cast<size_t>(schedule[i].tenant)],
          schedule[i].variant, schedule[i].text));
    }
    for (size_t i = 0; i < tickets.size(); ++i) {
      const serving::RequestResult& r = tickets[i]->Wait();
      latencies_ms[i] = r.latency_ms;
      succeeded[i] = r.status.ok();
      budget_rejected[i] = r.budget_rejected;
    }
  }

  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - bench_start)
                       .count();

  // Aggregate + per-tenant report.
  bench::BenchJson json("serving");
  std::vector<int> widths = {10, 10, 10, 11, 9, 9, 11, 11, 10};
  bench::PrintRow({"tenant", "completed", "rejected", "budget_rej", "failed",
                   "rows", "p50_ms", "p99_ms", "hits"},
                  widths);
  bench::PrintRule(widths);

  uint64_t total_ok = 0;
  for (int t = 0; t < cfg.tenants; ++t) {
    std::string name = "tenant" + std::to_string(t);
    serving::TenantStats stats = server.tenant_stats(name);
    // Warm = past the tenant's first `warmup` requests; the reported
    // percentiles are warm-only so steady-state latency is not skewed by
    // plan-cache fills and first-touch costs.
    std::vector<double> mine;
    std::vector<double> cold;
    for (size_t i = 0; i < schedule.size(); ++i) {
      if (schedule[i].tenant != t || !succeeded[i]) continue;
      if (schedule[i].tenant_index < cfg.warmup) {
        cold.push_back(latencies_ms[i]);
      } else {
        mine.push_back(latencies_ms[i]);
      }
    }
    std::sort(mine.begin(), mine.end());
    std::sort(cold.begin(), cold.end());
    double p50 = Percentile(mine, 0.50);
    double p99 = Percentile(mine, 0.99);
    total_ok += stats.completed;
    bench::PrintRow({name, bench::Fmt(stats.completed),
                     bench::Fmt(stats.rejected),
                     bench::Fmt(stats.budget_rejected),
                     bench::Fmt(stats.failed),
                     bench::Fmt(stats.rows_returned), bench::Fmt(p50),
                     bench::Fmt(p99), bench::Fmt(stats.cache_hits)},
                    widths);
    json.Add(name, "completed", static_cast<double>(stats.completed));
    json.Add(name, "rejected", static_cast<double>(stats.rejected));
    json.Add(name, "budget_rejected",
             static_cast<double>(stats.budget_rejected));
    json.Add(name, "failed", static_cast<double>(stats.failed));
    json.Add(name, "rows_returned",
             static_cast<double>(stats.rows_returned));
    json.Add(name, "cache_hits", static_cast<double>(stats.cache_hits));
    json.Add(name, "cache_bypasses",
             static_cast<double>(stats.cache_bypasses));
    json.Add(name, "records_processed",
             static_cast<double>(stats.records_processed));
    json.Add(name, "tasks", static_cast<double>(stats.tasks));
    json.Add(name, "p50_ms", p50);
    json.Add(name, "p99_ms", p99);
    if (cfg.warmup > 0) {
      json.Add(name, "warm_requests", static_cast<double>(mine.size()));
      json.Add(name, "cold_requests", static_cast<double>(cold.size()));
      json.Add(name, "cold_p50_ms", Percentile(cold, 0.50));
      json.Add(name, "cold_p99_ms", Percentile(cold, 0.99));
    }
  }

  std::vector<double> all;
  std::vector<double> all_cold;
  for (size_t i = 0; i < latencies_ms.size(); ++i) {
    if (!succeeded[i]) continue;
    if (schedule[i].tenant_index < cfg.warmup) {
      all_cold.push_back(latencies_ms[i]);
    } else {
      all.push_back(latencies_ms[i]);
    }
  }
  std::sort(all.begin(), all.end());
  std::sort(all_cold.begin(), all_cold.end());
  double p50 = Percentile(all, 0.50);
  double p99 = Percentile(all, 0.99);
  double qps = wall_ms > 0
                   ? static_cast<double>(total_ok) / (wall_ms / 1000.0)
                   : 0.0;
  serving::PlanCacheStats cache = server.plan_cache_stats();
  uint64_t lookups = cache.hits + cache.misses;
  double hit_rate =
      lookups > 0
          ? static_cast<double>(cache.hits) / static_cast<double>(lookups)
          : 0.0;

  std::printf("\ntotal: %llu ok in %.1f ms  (%.1f qps)\n",
              static_cast<unsigned long long>(total_ok), wall_ms, qps);
  if (cfg.warmup > 0) {
    std::printf(
        "latency: p50 %.2f ms, p99 %.2f ms  (warm, %zu requests; cold %zu: "
        "p50 %.2f ms, p99 %.2f ms)\n",
        p50, p99, all.size(), all_cold.size(), Percentile(all_cold, 0.50),
        Percentile(all_cold, 0.99));
  } else {
    std::printf("latency: p50 %.2f ms, p99 %.2f ms\n", p50, p99);
  }
  std::printf(
      "plan cache: %llu hits, %llu misses, %llu bypasses "
      "(hit rate %.0f%%), %llu resident (%lluB held, %lluB evicted)\n",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.bypasses), hit_rate * 100.0,
      static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(cache.resident_bytes),
      static_cast<unsigned long long>(cache.evicted_bytes));
  uint64_t total_budget_rejects = 0;
  for (size_t i = 0; i < budget_rejected.size(); ++i) {
    if (budget_rejected[i]) ++total_budget_rejects;
  }
  if (total_budget_rejects > 0) {
    std::printf("budget gate: %llu request(s) rejected over the envelope "
                "budget\n",
                static_cast<unsigned long long>(total_budget_rejects));
  }

  if (obs::TelemetrySink* sink = server.telemetry()) {
    std::printf(
        "telemetry: %zu windows, %zu audit entries, %zu unapplied records\n",
        sink->window_count(), sink->audit_count(), sink->unapplied());
    if (!cfg.telemetry_dir.empty()) {
      Status wrote = sink->WriteArtifacts(cfg.telemetry_dir);
      if (!wrote.ok()) {
        std::fprintf(stderr, "telemetry artifacts: %s\n",
                     wrote.ToString().c_str());
        return 1;
      }
      std::printf("telemetry: artifacts written to %s\n",
                  cfg.telemetry_dir.c_str());
    }
  }

  json.Add("total", "completed", static_cast<double>(total_ok));
  json.Add("total", "qps", qps);
  json.Add("total", "p50_ms", p50);
  json.Add("total", "p99_ms", p99);
  json.Add("total", "cache_hits", static_cast<double>(cache.hits));
  json.Add("total", "cache_misses", static_cast<double>(cache.misses));
  json.Add("total", "cache_bypasses", static_cast<double>(cache.bypasses));
  json.Add("total", "cache_hit_rate", hit_rate);
  json.Add("total", "cache_resident_bytes",
           static_cast<double>(cache.resident_bytes));
  json.Add("total", "budget_rejected",
           static_cast<double>(total_budget_rejects));
  if (cfg.warmup > 0) {
    json.Add("total", "warm_requests", static_cast<double>(all.size()));
    json.Add("total", "cold_requests", static_cast<double>(all_cold.size()));
    json.Add("total", "cold_p50_ms", Percentile(all_cold, 0.50));
    json.Add("total", "cold_p99_ms", Percentile(all_cold, 0.99));
  }
  if (json.Write()) {
    // Self-check the written artifact with the strict RFC 8259 validator,
    // like the other JSON-emitting tools do for their outputs.
    const char* dir = std::getenv("RDFSPARK_BENCH_JSON_DIR");
    std::ifstream in(std::string(dir) + "/BENCH_serving.json");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string error;
    if (!ValidateJson(text, &error)) {
      std::fprintf(stderr, "BENCH_serving.json is not valid JSON: %s\n",
                   error.c_str());
      return 1;
    }
  }

  // Exit non-zero if anything failed outright (rejections count as
  // failures here: the default workload contains only admissible queries).
  // Budget-gate rejections are the exception — with --memory-budget set
  // they are the measured behavior, not a failure.
  uint64_t bad = 0;
  for (size_t i = 0; i < succeeded.size(); ++i) {
    if (!succeeded[i] && !budget_rejected[i]) ++bad;
  }
  if (bad > 0) {
    std::fprintf(stderr, "serve_bench: %llu requests failed\n",
                 static_cast<unsigned long long>(bad));
    return 1;
  }
  return 0;
}
