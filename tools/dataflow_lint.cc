// dataflow_lint — whole-pipeline static analysis matrix across the twelve
// engine variants (nine engines, the Hybrid one in its four modes).
//
// For every engine variant and every query of the LUBM corpus (star, chain,
// snowflake, complex) this runs the four tiers of the dataflow lint:
//
//   Tier A  query analysis (QA rules, sparql/analysis.h): pure rules over
//           the parsed AST, parameterized by the engine's storage layout.
//   Tier B  lineage analysis (LN rules, spark/lineage.h): the query's BGP
//           is executed once with actuals collection, the RDD lineage DAG
//           the run built is snapshotted, and the lineage rules inspect it
//           for recompute hazards, redundant shuffles and deep stage
//           chains.
//   Tier C  happens-before race & determinism analysis (RC/DT rules,
//           spark/hb.h): every cell executes inside a recorder window;
//           conflicting shared-object accesses that no declared
//           synchronization orders are reported regardless of which
//           interleaving actually ran. Two extra Tier C rows run after the
//           matrix: a runtime probe exercising the canonical shared
//           objects (cache slots, shuffle buffers, broadcast, uncache),
//           and a concurrent serving workload over all twelve variants.
//   Tier D  resource envelope analysis (RS rules, systems/plan/resource.h):
//           each plan's per-operator byte envelope is derived statically
//           (pure, like EXPLAIN), the cache-retention rule inspects the
//           lineage snapshot, and one profiled execution provides the
//           observed bytes the envelope is drift-checked against. The
//           footprint matrix prints "static output envelope / observed
//           bytes" per cell, and --footprint-dir writes the corpus totals
//           as bench_gate-compatible artifacts. Two ratios are gated in
//           CI: soundness (observed bytes never exceed the static peak
//           envelope, metric "sound_bytes") and scan calibration (leaf
//           scan envelopes within a small factor of leaf actuals, metric
//           "bytes"). Interior join/product bounds compound
//           multiplicatively by design — that is what keeps them sound —
//           so whole-plan sums are reported but not ratio-gated; the
//           leaves are where the statistics live.
//
// Output is deterministic — byte-identical across runs and across
// --threads settings (lineage node ids are assigned on the driver; Tier C
// verdicts depend on declared structure, not the schedule; Tier D is a pure
// function of the plan and the actuals row counts, which are themselves
// schedule-independent; no timing-dependent value is printed) — so CI
// diffs two runs to prove it.
//
//   $ ./dataflow_lint                    # matrix + per-finding detail
//   $ ./dataflow_lint --json            # machine-readable (RFC 8259)
//   $ ./dataflow_lint --threads=1       # executor pool width (0 = default)
//   $ ./dataflow_lint --serving-workers=1  # serving-row driver threads
//   $ ./dataflow_lint --tier=A,D        # run a subset of the tiers
//   $ ./dataflow_lint --footprint-dir=artifacts  # Tier D byte artifacts
//
// Exit status is 1 when any ERROR-level finding (or engine failure)
// surfaces, so the tool doubles as a CI admission gate over the corpus.

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "rdf/generator.h"
#include "rdf/store.h"
#include "serving/query_server.h"
#include "spark/context.h"
#include "spark/hb.h"
#include "spark/lineage.h"
#include "sparql/parser.h"
#include "systems/engine.h"
#include "systems/plan/diagnostics.h"
#include "systems/plan/resource.h"

namespace {

using namespace rdfspark;
using systems::plan::Diagnostic;
using systems::plan::Severity;

/// Same dataset as plan_lint and the golden EXPLAIN tests.
rdf::TripleStore MakeDataset() {
  rdf::TripleStore store;
  rdf::LubmConfig cfg;
  cfg.num_universities = 1;
  cfg.departments_per_university = 3;
  cfg.professors_per_department = 4;
  cfg.students_per_department = 20;
  cfg.courses_per_department = 5;
  store.AddAll(rdf::GenerateLubm(cfg));
  store.Dedupe();
  return store;
}

/// One analyzed (engine, query) cell.
struct Cell {
  std::vector<Diagnostic> query_findings;     // Tier A
  std::vector<Diagnostic> lineage_findings;   // Tier B
  std::vector<Diagnostic> race_findings;      // Tier C
  std::vector<Diagnostic> resource_findings;  // Tier D (RS rules)
  int lineage_nodes = 0;
  int lineage_shuffles = 0;
  // Tier D byte envelope vs profiled actuals (flat IdTable byte model).
  bool envelope_bounded = false;
  uint64_t envelope_peak_bytes = 0;    ///< Peak concurrent stage envelope.
  uint64_t envelope_output_bytes = 0;  ///< Sum of operator output envelopes.
  uint64_t observed_bytes = 0;         ///< EXPLAIN ANALYZE actual bytes.
  // Scan calibration: leaf envelopes vs leaf actuals (the gated ratio).
  uint64_t scan_envelope_bytes = 0;
  uint64_t scan_observed_bytes = 0;
  int scan_leaves = 0;
  bool failed = false;
  std::string failure;
};

/// Compact cell text: "RULE:SEVxCOUNT" terms joined by spaces, "ok" clean.
std::string Summarize(const Cell& cell) {
  if (cell.failed) return "error";
  std::map<std::string, std::map<char, int>> counts;
  for (const auto* tier :
       {&cell.query_findings, &cell.lineage_findings, &cell.race_findings,
        &cell.resource_findings}) {
    for (const auto& d : *tier) {
      char sev = systems::plan::SeverityName(d.severity)[0];  // E/W/I
      ++counts[d.rule][sev];
    }
  }
  if (counts.empty()) return "ok";
  std::string out;
  for (const auto& [rule, by_sev] : counts) {
    for (const auto& [sev, n] : by_sev) {
      if (!out.empty()) out += " ";
      out += rule + ":" + std::string(1, sev);
      if (n > 1) out += "x" + std::to_string(n);
    }
  }
  return out;
}

/// Footprint cell text: "envelopeB/observedB" (static over actual).
std::string SummarizeFootprint(const Cell& cell) {
  if (cell.failed) return "error";
  std::string env = cell.envelope_bounded
                        ? std::to_string(cell.envelope_output_bytes) + "B"
                        : std::string("unbounded");
  return env + "/" + std::to_string(cell.observed_bytes) + "B";
}

void AppendJsonFindings(const char* tier, const std::vector<Diagnostic>& ds,
                        bool* first, std::string* out) {
  for (const auto& d : ds) {
    if (!*first) *out += ",";
    *first = false;
    *out += "\n        {\"tier\": \"";
    *out += tier;
    *out += "\", \"severity\": \"";
    *out += systems::plan::SeverityName(d.severity);
    *out += "\", \"rule\": \"" + JsonEscape(d.rule) + "\", \"path\": \"" +
            JsonEscape(d.node_path) + "\", \"message\": \"" +
            JsonEscape(d.message) + "\", \"hint\": \"" + JsonEscape(d.hint) +
            "\"}";
  }
}

/// Tier C probe row: RunRuntimeProbe inside its own recorder window.
std::vector<Diagnostic> RunProbeRow(int threads) {
  spark::ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  cfg.executor_threads = threads;
  spark::SparkContext sc(cfg);
  spark::hb::ScopedRaceCheck window(/*active=*/true);
  spark::hb::RunRuntimeProbe(&sc);
  return window.Finish();
}

/// Tier C serving row: every variant serves the corpus concurrently from
/// two tenants while the server owns one recorder window. Requests run as
/// independent logical roots, so any cross-request sharing that isn't
/// protected by declared synchronization (the plan-cache lock, the frozen
/// dictionary's publication barrier, ...) surfaces here.
std::vector<Diagnostic> RunServingRow(const rdf::TripleStore& store,
                                      int threads, int serving_workers,
                                      std::string* failure) {
  spark::ClusterConfig cfg;
  cfg.num_executors = 4;
  cfg.default_parallelism = 8;
  cfg.executor_threads = threads;
  spark::SparkContext sc(cfg);
  serving::QueryServer::Options opts;
  opts.worker_threads = serving_workers;
  opts.check_races = true;
  // Pin the gates so output never depends on ambient RDFSPARK_VERIFY_*.
  opts.verify_queries = false;
  opts.verify_plans = false;
  serving::QueryServer server(&sc, opts);
  Status attached = server.AttachDataset(store);
  if (!attached.ok()) {
    *failure = attached.ToString();
    return {};
  }
  int session_a = server.OpenSession("lint-a");
  int session_b = server.OpenSession("lint-b");
  auto corpus = rdf::LubmQueryMix();
  std::vector<std::shared_ptr<serving::QueryServer::Ticket>> tickets;
  size_t i = 0;
  for (const auto& name : server.variant_names()) {
    for (const auto& [shape, text] : corpus) {
      int session = (i++ % 2 == 0) ? session_a : session_b;
      tickets.push_back(server.Submit(session, name, text));
    }
  }
  for (const auto& ticket : tickets) ticket->Wait();
  std::vector<Diagnostic> findings = server.race_findings();
  server.Shutdown();
  return findings;
}

/// Writes one bench_gate-compatible artifact: a single "footprint" row.
/// Metric "bytes" carries the corpus scan-calibration total (gate:
/// envelope within a small factor of observed), metric "sound_bytes" the
/// soundness pair (envelope side: peak envelope sum; observed side: total
/// observed bytes — gate: observed never exceeds peak).
bool WriteFootprintArtifact(const std::string& dir, const char* filename,
                            const char* benchmark, uint64_t bytes,
                            uint64_t sound_bytes, int cells,
                            int unbounded_cells, int leaves) {
  std::string json = "{\n  \"benchmark\": \"";
  json += benchmark;
  json += "\",\n  \"rows\": [\n    {\"label\": \"footprint\", \"metrics\": "
          "{\"bytes\": " +
          std::to_string(bytes) +
          ", \"sound_bytes\": " + std::to_string(sound_bytes) +
          ", \"cells\": " + std::to_string(cells) +
          ", \"unbounded_cells\": " + std::to_string(unbounded_cells) +
          ", \"leaves\": " + std::to_string(leaves) +
          "}}\n  ]\n}\n";
  std::string error;
  if (!ValidateJson(json, &error)) {
    std::fprintf(stderr, "internal error: invalid footprint JSON: %s\n",
                 error.c_str());
    return false;
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create footprint dir %s\n", dir.c_str());
    return false;
  }
  std::string path = dir + "/" + filename;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << json;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int threads = 0;
  int serving_workers = 3;
  bool tier_a = true, tier_b = true, tier_c = true, tier_d = true;
  std::string footprint_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--serving-workers=", 18) == 0) {
      serving_workers = std::atoi(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--tier=", 7) == 0) {
      tier_a = tier_b = tier_c = tier_d = false;
      bool bad = false;
      for (const char* p = argv[i] + 7; *p != '\0'; ++p) {
        char u = (*p >= 'a' && *p <= 'z') ? static_cast<char>(*p - 'a' + 'A')
                                          : *p;
        if (u == ',' || u == ' ') continue;
        if (u == 'A') tier_a = true;
        else if (u == 'B') tier_b = true;
        else if (u == 'C') tier_c = true;
        else if (u == 'D') tier_d = true;
        else bad = true;
      }
      if (bad || !(tier_a || tier_b || tier_c || tier_d)) {
        std::fprintf(stderr, "invalid --tier value '%s' (tiers are A-D)\n",
                     argv[i] + 7);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--footprint-dir=", 16) == 0) {
      footprint_dir = argv[i] + 16;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--threads=N] [--serving-workers=N] "
                   "[--tier=A,B,C,D] [--footprint-dir=DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  rdf::TripleStore store = MakeDataset();
  auto corpus = rdf::LubmQueryMix();
  auto factories = systems::AllEngineVariantFactories();

  // engine -> query label -> cell, all analyzed up front so the text and
  // JSON renderings share one result set.
  std::vector<std::vector<Cell>> cells(factories.size());
  bool any_error = false;

  for (size_t e = 0; e < factories.size(); ++e) {
    spark::ClusterConfig cfg;
    cfg.num_executors = 4;
    cfg.default_parallelism = 8;
    cfg.executor_threads = threads;
    spark::SparkContext sc(cfg);
    auto engine = factories[e].make(&sc);
    auto loaded = engine->Load(store);
    for (const auto& [shape, text] : corpus) {
      Cell cell;
      if (!loaded.ok()) {
        cell.failed = true;
        cell.failure = "load failed: " + loaded.status().ToString();
      } else {
        if (tier_a) {
          auto query_findings = engine->AnalyzeQueryText(text);  // Pure.
          if (!query_findings.ok()) {
            cell.failed = true;
            cell.failure = query_findings.status().ToString();
          } else {
            cell.query_findings = std::move(*query_findings);
          }
        }
        std::optional<spark::LineageGraph> graph;
        if (!cell.failed && (tier_b || tier_c || tier_d)) {
          // Tier C window per cell: the lineage run below is also the race
          // checker's workload. Reset happens on the driver with no tasks
          // in flight, which is the recorder's quiescence contract.
          spark::hb::ScopedRaceCheck window(/*active=*/tier_c);
          auto captured = engine->CaptureLineage(text);
          if (tier_c) cell.race_findings = window.Finish();
          if (!captured.ok()) {
            cell.failed = true;
            cell.failure = captured.status().ToString();
          } else {
            graph = std::move(*captured);
            if (tier_b) {
              cell.lineage_findings = graph->Analyze();
              cell.lineage_nodes = static_cast<int>(graph->nodes().size());
              cell.lineage_shuffles = graph->ShuffleCount();
            }
          }
        }
        if (!cell.failed && tier_d) {
          auto analysis = engine->ResourceEnvelope(text);  // Pure.
          if (!analysis.ok()) {
            cell.failed = true;
            cell.failure = analysis.status().ToString();
          } else {
            cell.resource_findings = std::move(analysis->findings);
            cell.envelope_bounded = analysis->bounded;
            cell.envelope_peak_bytes = analysis->peak_bytes;
            cell.envelope_output_bytes = analysis->output_bytes;
            // RS004 inspects the lineage snapshot of the profiled run.
            if (graph) {
              for (auto& d : graph->AnalyzeRetention()) {
                cell.resource_findings.push_back(std::move(d));
              }
            }
            // RS006: one profiled execution provides the observed bytes
            // the static envelope is drift-checked against.
            auto analyzed = engine->ExecuteAnalyzed(text);
            if (!analyzed.ok()) {
              cell.failed = true;
              cell.failure = analyzed.status().ToString();
            } else {
              auto observed = systems::plan::ObserveFootprint(**analyzed);
              cell.observed_bytes = observed.output_bytes;
              if (cell.envelope_bounded) {
                for (auto& d : systems::plan::DriftFindings(
                         cell.envelope_output_bytes, observed)) {
                  cell.resource_findings.push_back(std::move(d));
                }
              }
              // Scan calibration pairs leaf envelopes with leaf actuals
              // over the analyzed tree itself (exact pre-order alignment).
              auto query = sparql::ParseQuery(text);
              if (query.ok()) {
                auto aligned =
                    engine->AnalyzePlanResources(*query, **analyzed);
                auto calib =
                    systems::plan::CalibrateScans(**analyzed, aligned);
                cell.scan_envelope_bytes = calib.envelope_bytes;
                cell.scan_observed_bytes = calib.observed_bytes;
                cell.scan_leaves = calib.leaves;
              }
            }
          }
        }
      }
      any_error |= cell.failed;
      any_error |= systems::plan::HasError(cell.query_findings);
      any_error |= systems::plan::HasError(cell.lineage_findings);
      any_error |= systems::plan::HasError(cell.race_findings);
      any_error |= systems::plan::HasError(cell.resource_findings);
      cells[e].push_back(std::move(cell));
    }
  }

  // Tier C extra rows: the runtime probe and the serving workload.
  std::vector<Diagnostic> probe_findings;
  std::vector<Diagnostic> serving_findings;
  std::string serving_failure;
  if (tier_c) {
    probe_findings = RunProbeRow(threads);
    serving_findings =
        RunServingRow(store, threads, serving_workers, &serving_failure);
  }
  any_error |= systems::plan::HasError(probe_findings);
  any_error |= systems::plan::HasError(serving_findings);
  any_error |= !serving_failure.empty();

  // Tier C totals across cells + probe + serving (deterministic: every
  // contributing list is deduplicated and sorted by the analyzer).
  int race_errors = 0;
  int race_warnings = 0;
  auto tally = [&race_errors, &race_warnings](const std::vector<Diagnostic>& ds) {
    for (const auto& d : ds) {
      if (d.severity == Severity::kError) ++race_errors;
      if (d.severity == Severity::kWarn) ++race_warnings;
    }
  };
  for (const auto& row : cells) {
    for (const auto& cell : row) tally(cell.race_findings);
  }
  tally(probe_findings);
  tally(serving_findings);

  // Tier D corpus totals. Unbounded envelopes are excluded from the sums
  // (they would poison both ratios) and counted instead — no silent
  // truncation. The scan-calibration pair is what CI ratio-gates; the
  // whole-plan pair feeds the soundness gate (observed <= peak) and is
  // otherwise informational, since interior bounds compound by design.
  uint64_t footprint_envelope = 0;
  uint64_t footprint_observed = 0;
  uint64_t footprint_peak = 0;
  uint64_t footprint_scan_envelope = 0;
  uint64_t footprint_scan_observed = 0;
  int footprint_cells = 0;
  int footprint_unbounded = 0;
  int footprint_leaves = 0;
  if (tier_d) {
    for (const auto& row : cells) {
      for (const auto& cell : row) {
        if (cell.failed) continue;
        if (!cell.envelope_bounded) {
          ++footprint_unbounded;
          continue;
        }
        footprint_envelope += cell.envelope_output_bytes;
        footprint_observed += cell.observed_bytes;
        footprint_peak += cell.envelope_peak_bytes;
        footprint_scan_envelope += cell.scan_envelope_bytes;
        footprint_scan_observed += cell.scan_observed_bytes;
        footprint_leaves += cell.scan_leaves;
        ++footprint_cells;
      }
    }
    if (!footprint_dir.empty()) {
      bool wrote =
          WriteFootprintArtifact(footprint_dir, "FOOTPRINT_envelope.json",
                                 "footprint_envelope",
                                 footprint_scan_envelope, footprint_peak,
                                 footprint_cells, footprint_unbounded,
                                 footprint_leaves) &&
          WriteFootprintArtifact(footprint_dir, "FOOTPRINT_observed.json",
                                 "footprint_observed",
                                 footprint_scan_observed, footprint_observed,
                                 footprint_cells, footprint_unbounded,
                                 footprint_leaves);
      if (!wrote) return 2;
    }
  }

  std::string tiers_label;
  if (tier_a) tiers_label += "A";
  if (tier_b) tiers_label += "B";
  if (tier_c) tiers_label += "C";
  if (tier_d) tiers_label += "D";

  if (json) {
    std::string out = "{\n  \"tool\": \"dataflow_lint\",\n  \"tiers\": \"" +
                      tiers_label + "\",\n  \"engines\": [";
    for (size_t e = 0; e < factories.size(); ++e) {
      out += e == 0 ? "\n" : ",\n";
      out += "    {\"engine\": \"" + JsonEscape(factories[e].name) +
             "\", \"queries\": [";
      for (size_t q = 0; q < corpus.size(); ++q) {
        const Cell& cell = cells[e][q];
        out += q == 0 ? "\n" : ",\n";
        out += "      {\"query\": \"";
        out += rdf::QueryShapeName(corpus[q].first);
        out += "\", \"lineage_nodes\": " +
               std::to_string(cell.lineage_nodes) +
               ", \"lineage_shuffles\": " +
               std::to_string(cell.lineage_shuffles);
        if (tier_d) {
          out += ", \"envelope_bounded\": ";
          out += cell.envelope_bounded ? "true" : "false";
          out += ", \"envelope_peak_bytes\": " +
                 std::to_string(cell.envelope_bounded
                                    ? cell.envelope_peak_bytes
                                    : 0) +
                 ", \"envelope_output_bytes\": " +
                 std::to_string(cell.envelope_bounded
                                    ? cell.envelope_output_bytes
                                    : 0) +
                 ", \"observed_bytes\": " +
                 std::to_string(cell.observed_bytes) +
                 ", \"scan_envelope_bytes\": " +
                 std::to_string(cell.scan_envelope_bytes) +
                 ", \"scan_observed_bytes\": " +
                 std::to_string(cell.scan_observed_bytes) +
                 ", \"scan_leaves\": " + std::to_string(cell.scan_leaves);
        }
        if (cell.failed) {
          out += ", \"error\": \"" + JsonEscape(cell.failure) + "\"";
        }
        out += ", \"findings\": [";
        bool first = true;
        AppendJsonFindings("query", cell.query_findings, &first, &out);
        AppendJsonFindings("lineage", cell.lineage_findings, &first, &out);
        AppendJsonFindings("race", cell.race_findings, &first, &out);
        AppendJsonFindings("resource", cell.resource_findings, &first, &out);
        out += first ? "]}" : "\n      ]}";
      }
      out += "\n    ]}";
    }
    out += "\n  ],\n  \"race_probe\": [";
    bool first_probe = true;
    AppendJsonFindings("race", probe_findings, &first_probe, &out);
    out += first_probe ? "]" : "\n  ]";
    out += ",\n  \"race_serving\": [";
    bool first_serving = true;
    AppendJsonFindings("race", serving_findings, &first_serving, &out);
    out += first_serving ? "]" : "\n  ]";
    if (!serving_failure.empty()) {
      out += ",\n  \"race_serving_error\": \"" + JsonEscape(serving_failure) +
             "\"";
    }
    out += ",\n  \"race_errors\": " + std::to_string(race_errors) +
           ",\n  \"race_warnings\": " + std::to_string(race_warnings);
    if (tier_d) {
      out += ",\n  \"footprint_envelope_bytes\": " +
             std::to_string(footprint_envelope) +
             ",\n  \"footprint_observed_bytes\": " +
             std::to_string(footprint_observed) +
             ",\n  \"footprint_peak_bytes\": " +
             std::to_string(footprint_peak) +
             ",\n  \"footprint_scan_envelope_bytes\": " +
             std::to_string(footprint_scan_envelope) +
             ",\n  \"footprint_scan_observed_bytes\": " +
             std::to_string(footprint_scan_observed) +
             ",\n  \"footprint_scan_leaves\": " +
             std::to_string(footprint_leaves) +
             ",\n  \"footprint_cells\": " + std::to_string(footprint_cells) +
             ",\n  \"footprint_unbounded_cells\": " +
             std::to_string(footprint_unbounded);
    }
    out += ",\n  \"has_error\": ";
    out += any_error ? "true" : "false";
    out += "\n}\n";
    std::string error;
    if (!ValidateJson(out, &error)) {
      std::fprintf(stderr, "internal error: emitted invalid JSON: %s\n",
                   error.c_str());
      return 2;
    }
    std::fputs(out.c_str(), stdout);
    return any_error ? 1 : 0;
  }

  std::printf("dataflow_lint: query + lineage + race + resource analysis "
              "over the LUBM corpus (tiers %s)\n", tiers_label.c_str());
  std::printf("dataset: %zu triples (1 university)\n\n", store.size());
  std::printf("%-26s %-14s %-14s %-14s %-14s\n", "engine",
              rdf::QueryShapeName(corpus[0].first),
              rdf::QueryShapeName(corpus[1].first),
              rdf::QueryShapeName(corpus[2].first),
              rdf::QueryShapeName(corpus[3].first));
  for (size_t e = 0; e < factories.size(); ++e) {
    std::printf("%-26s %-14s %-14s %-14s %-14s\n", factories[e].name.c_str(),
                Summarize(cells[e][0]).c_str(), Summarize(cells[e][1]).c_str(),
                Summarize(cells[e][2]).c_str(),
                Summarize(cells[e][3]).c_str());
  }

  bool any_detail = false;
  for (size_t e = 0; e < factories.size(); ++e) {
    for (size_t q = 0; q < corpus.size(); ++q) {
      const Cell& cell = cells[e][q];
      if (cell.failed) {
        if (!any_detail) std::printf("\nfindings:\n");
        any_detail = true;
        std::printf("  %s / %s: %s\n", factories[e].name.c_str(),
                    rdf::QueryShapeName(corpus[q].first),
                    cell.failure.c_str());
        continue;
      }
      std::vector<Diagnostic> all = cell.query_findings;
      for (const auto& d : cell.lineage_findings) all.push_back(d);
      for (const auto& d : cell.race_findings) all.push_back(d);
      for (const auto& d : cell.resource_findings) all.push_back(d);
      if (all.empty()) continue;
      systems::plan::SortDiagnostics(&all);
      if (!any_detail) std::printf("\nfindings:\n");
      any_detail = true;
      for (const auto& d : all) {
        std::printf("  %s / %s: %s\n", factories[e].name.c_str(),
                    rdf::QueryShapeName(corpus[q].first),
                    systems::plan::FormatDiagnostic(d).c_str());
      }
    }
  }
  if (tier_c) {
    std::printf("\ntier C (happens-before race & determinism check):\n");
    std::printf("  runtime probe: %s\n",
                probe_findings.empty() ? "ok" : "findings");
    for (const auto& d : probe_findings) {
      std::printf("    %s\n", systems::plan::FormatDiagnostic(d).c_str());
    }
    if (!serving_failure.empty()) {
      std::printf("  serving workload: error: %s\n", serving_failure.c_str());
    } else {
      std::printf("  serving workload (12 variants x corpus, 2 tenants): %s\n",
                  serving_findings.empty() ? "ok" : "findings");
      for (const auto& d : serving_findings) {
        std::printf("    %s\n", systems::plan::FormatDiagnostic(d).c_str());
      }
    }
    std::printf("tier C findings: %d error(s), %d warning(s)\n", race_errors,
                race_warnings);
  }
  if (tier_d) {
    std::printf("\ntier D footprint (static output envelope / observed "
                "bytes, flat IdTable model):\n");
    std::printf("%-26s %-20s %-20s %-20s %-20s\n", "engine",
                rdf::QueryShapeName(corpus[0].first),
                rdf::QueryShapeName(corpus[1].first),
                rdf::QueryShapeName(corpus[2].first),
                rdf::QueryShapeName(corpus[3].first));
    for (size_t e = 0; e < factories.size(); ++e) {
      std::printf("%-26s %-20s %-20s %-20s %-20s\n",
                  factories[e].name.c_str(),
                  SummarizeFootprint(cells[e][0]).c_str(),
                  SummarizeFootprint(cells[e][1]).c_str(),
                  SummarizeFootprint(cells[e][2]).c_str(),
                  SummarizeFootprint(cells[e][3]).c_str());
    }
    std::printf("footprint totals: envelope %lluB, observed %lluB, peak "
                "%lluB over %d cell(s), %d unbounded cell(s) excluded\n",
                static_cast<unsigned long long>(footprint_envelope),
                static_cast<unsigned long long>(footprint_observed),
                static_cast<unsigned long long>(footprint_peak),
                footprint_cells, footprint_unbounded);
    std::printf("scan calibration (gated): envelope %lluB / observed %lluB "
                "over %d leaf scan(s)\n",
                static_cast<unsigned long long>(footprint_scan_envelope),
                static_cast<unsigned long long>(footprint_scan_observed),
                footprint_leaves);
  }
  std::printf(
      "\nrules: QA001 dead/unprojectable vars, QA002 unsatisfiable "
      "filters, QA003 non-well-designed OPTIONAL, QA004 disconnected BGP, "
      "QA005 unbounded predicate on VP; LN001 uncached reuse, LN002 "
      "redundant shuffle, LN003 deep shuffle chain; RC001 unsynchronized "
      "conflicting access, RC002 publication without barrier, RC003 "
      "eviction vs pooled access; DT001 completion-order-dependent "
      "accumulator, DT002 non-commutative unordered merge, DT003 "
      "unordered-container iteration at a result boundary; RS001 broadcast "
      "over executor budget, RS002 peak envelope over cluster budget, RS003 "
      "unbounded envelope at a blocking operator, RS004 retention dominated "
      "by a never-reread RDD, RS005 superlinear working set, RS006 envelope "
      "drift vs actuals\n");
  return any_error ? 1 : 0;
}
