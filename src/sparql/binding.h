#ifndef RDFSPARK_SPARQL_BINDING_H_
#define RDFSPARK_SPARQL_BINDING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "sparql/id_table.h"

namespace rdfspark::sparql {

/// Ids at or above this base index a table's own computed-term side store
/// (aggregate results and other values that are not dataset terms).
inline constexpr rdf::TermId kComputedTermBase = 1ull << 48;

/// A solution sequence: named variables and rows of term ids. This is the
/// common output format of every engine and the reference evaluator, so
/// results can be compared across systems. Rows live in one flat IdTable
/// whose width is fixed at construction to the variable count.
class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(std::vector<std::string> vars)
      : vars_(std::move(vars)), rows_(vars_.size()) {
    BuildVarIndex();
  }
  /// Adopts pre-built flat rows (width must equal the variable count).
  BindingTable(std::vector<std::string> vars, IdTable rows)
      : vars_(std::move(vars)), rows_(std::move(rows)) {
    BuildVarIndex();
  }

  /// The unit table (no variables, one empty row) — join identity.
  static BindingTable Unit();

  const std::vector<std::string>& vars() const { return vars_; }
  const IdTable& rows() const { return rows_; }
  /// Direct access for batch kernels that fill rows in place.
  IdTable* mutable_rows() { return &rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Index of `var` or -1. O(1) via the index map built at construction.
  int VarIndex(const std::string& var) const {
    auto it = var_index_.find(var);
    return it == var_index_.end() ? -1 : it->second;
  }

  /// Appends a row; inputs narrower than the table are padded with
  /// kUnbound.
  void AddRow(const std::vector<rdf::TermId>& row) {
    rows_.AppendRow(IdSpan(row));
  }
  void AddRowSpan(IdSpan row) { rows_.AppendRow(row); }

  /// Stores a computed term (e.g. an aggregate result) in the table's side
  /// store and returns its id (>= kComputedTermBase).
  rdf::TermId AddComputedTerm(rdf::Term term);

  /// Resolves an id against the dataset dictionary or this table's side
  /// store of computed terms.
  Result<rdf::Term> ResolveTerm(rdf::TermId id,
                                const rdf::Dictionary& dict) const;

  /// Decodes all rows to sorted "var=term" multisets — an order-insensitive
  /// canonical form used to compare engine outputs in tests.
  std::vector<std::map<std::string, std::string>> Decode(
      const rdf::Dictionary& dict) const;

  /// Human-readable table (for examples and debugging).
  std::string ToString(const rdf::Dictionary& dict, size_t max_rows = 20) const;

 private:
  void BuildVarIndex() {
    for (size_t i = 0; i < vars_.size(); ++i) {
      var_index_.emplace(vars_[i], static_cast<int>(i));
    }
  }

  std::vector<std::string> vars_;
  IdTable rows_;
  std::unordered_map<std::string, int> var_index_;
  /// Computed terms; shared so projections/slices keep them alive cheaply.
  std::shared_ptr<std::vector<rdf::Term>> computed_;

  friend BindingTable CopyComputedTerms(const BindingTable& from,
                                        BindingTable to);
};

/// Transfers `from`'s computed-term side store onto `to` (used by the
/// relational ops, which build fresh tables from existing rows).
BindingTable CopyComputedTerms(const BindingTable& from, BindingTable to);

/// Natural hash join on the shared variables (rows with kUnbound in a join
/// column never match). Output variables: a's, then b's new ones.
BindingTable HashJoin(const BindingTable& a, const BindingTable& b);

/// SPARQL left join (OPTIONAL): keeps every row of `a`, padding b-only
/// variables with kUnbound when no match exists.
BindingTable LeftJoin(const BindingTable& a, const BindingTable& b);

/// Union: aligns columns (missing variables padded with kUnbound).
BindingTable UnionTables(const BindingTable& a, const BindingTable& b);

/// Projects onto `vars` (missing variables become unbound columns).
BindingTable Project(const BindingTable& table,
                     const std::vector<std::string>& vars);

/// Stable duplicate removal (sorted/deduped by row index over the flat
/// buffer — no per-row key objects).
BindingTable Distinct(const BindingTable& table);

/// Sorts rows by the given keys; term order is (numeric value when both
/// numeric, else N-Triples string).
BindingTable OrderBy(const BindingTable& table,
                     const std::vector<OrderKey>& keys,
                     const rdf::Dictionary& dict);

/// OFFSET/LIMIT (-1 limit = unlimited).
BindingTable Slice(const BindingTable& table, int64_t offset, int64_t limit);

/// Evaluates a FILTER expression on one row. SPARQL error semantics: any
/// type error or unbound (non-BOUND) reference makes the row fail.
bool EvalFilter(const FilterExpr& expr, const BindingTable& table, IdSpan row,
                const rdf::Dictionary& dict);

/// Applies a filter to all rows.
BindingTable ApplyFilter(const BindingTable& table, const FilterExpr& expr,
                         const rdf::Dictionary& dict);

}  // namespace rdfspark::sparql

#endif  // RDFSPARK_SPARQL_BINDING_H_
