#include "sparql/id_table.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_set>

#include "common/hash.h"

namespace rdfspark::sparql {

uint64_t IdTable::RowHash(size_t r) const {
  // Same fold spark::HashValue uses for std::vector<TermId>, so hashing a
  // row view agrees with hashing the materialized row.
  uint64_t h = 0xabcdef0123456789ULL;
  const rdf::TermId* cells = data_.data() + r * width_;
  for (size_t c = 0; c < width_; ++c) {
    h = CombineHash64(h, MixHash64(cells[c]));
  }
  return h;
}

bool IdTable::RowsEqual(size_t a, size_t b) const {
  if (a == b) return true;
  return std::memcmp(data_.data() + a * width_, data_.data() + b * width_,
                     width_ * sizeof(rdf::TermId)) == 0;
}

std::vector<size_t> IdTable::DistinctRowIndices() const {
  struct IndexHash {
    const IdTable* table;
    size_t operator()(size_t r) const {
      return static_cast<size_t>(table->RowHash(r));
    }
  };
  struct IndexEq {
    const IdTable* table;
    bool operator()(size_t a, size_t b) const { return table->RowsEqual(a, b); }
  };
  std::unordered_set<size_t, IndexHash, IndexEq> seen(
      /*bucket_count=*/num_rows_ * 2 + 1, IndexHash{this}, IndexEq{this});
  std::vector<size_t> out;
  out.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    if (seen.insert(r).second) out.push_back(r);
  }
  return out;
}

std::vector<size_t> IdTable::LexicographicOrder() const {
  std::vector<size_t> order(num_rows_);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    auto ra = row(a);
    auto rb = row(b);
    return std::lexicographical_compare(ra.begin(), ra.end(), rb.begin(),
                                        rb.end());
  });
  return order;
}

IdTable IdTable::PermutedByRows(const std::vector<size_t>& order) const {
  IdTable out(width_);
  out.Reserve(order.size());
  for (size_t r : order) out.AppendRowFrom(*this, r);
  return out;
}

std::vector<IdTable> IdTable::SplitRows(int n) const {
  std::vector<IdTable> out;
  out.reserve(static_cast<size_t>(n));
  size_t total = num_rows_;
  for (int p = 0; p < n; ++p) {
    size_t begin = total * static_cast<size_t>(p) / static_cast<size_t>(n);
    size_t end = total * static_cast<size_t>(p + 1) / static_cast<size_t>(n);
    IdTable slice(width_);
    slice.Reserve(end - begin);
    for (size_t r = begin; r < end; ++r) slice.AppendRowFrom(*this, r);
    out.push_back(std::move(slice));
  }
  return out;
}

}  // namespace rdfspark::sparql
