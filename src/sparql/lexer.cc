#include "sparql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace rdfspark::sparql {

namespace {

bool IsKeyword(const std::string& upper) {
  static const char* kKeywords[] = {
      "PREFIX", "SELECT", "ASK",    "DISTINCT", "WHERE",  "OPTIONAL",
      "FILTER", "UNION",  "ORDER",  "BY",       "ASC",    "DESC",
      "LIMIT",  "OFFSET", "BOUND",  "BASE",     "REDUCED", "GROUP",
      "AS",     "COUNT",  "SUM",    "AVG",      "MIN",    "MAX",
      "CONSTRUCT", "DESCRIBE"};
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  size_t line = 1;
  auto error = [&](const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line) + ": " + msg);
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.line = line;
    // '<' is ambiguous: IRI opener or less-than. It is an IRI iff a '>'
    // appears before any whitespace (IRIs cannot contain spaces).
    bool iri_start = false;
    if (c == '<') {
      for (size_t j = i + 1; j < text.size(); ++j) {
        char cj = text[j];
        if (cj == '>') {
          iri_start = true;
          break;
        }
        if (cj == ' ' || cj == '\t' || cj == '\n' || cj == '\r') break;
      }
    }
    if (iri_start) {
      size_t end = text.find('>', i);
      tok.kind = TokenKind::kIri;
      tok.text.assign(text.substr(i + 1, end - i - 1));
      i = end + 1;
    } else if (c == '?' || c == '$') {
      size_t start = ++i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      if (i == start) return error("empty variable name");
      tok.kind = TokenKind::kVar;
      tok.text.assign(text.substr(start, i - start));
    } else if (c == '"') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < text.size()) {
        char ch = text[i];
        if (ch == '\\') {
          if (i + 1 >= text.size()) return error("bad escape");
          char esc = text[i + 1];
          switch (esc) {
            case 'n': value.push_back('\n'); break;
            case 't': value.push_back('\t'); break;
            case 'r': value.push_back('\r'); break;
            case '"': value.push_back('"'); break;
            case '\\': value.push_back('\\'); break;
            default:
              return error(std::string("unknown escape \\") + esc);
          }
          i += 2;
        } else if (ch == '"') {
          closed = true;
          ++i;
          break;
        } else {
          value.push_back(ch);
          ++i;
        }
      }
      if (!closed) return error("unterminated string literal");
      tok.kind = TokenKind::kString;
      tok.text = std::move(value);
      if (i < text.size() && text[i] == '@') {
        size_t start = ++i;
        while (i < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[i])) ||
                text[i] == '-')) {
          ++i;
        }
        if (i == start) return error("empty language tag");
        tok.lang.assign(text.substr(start, i - start));
      } else if (i + 1 < text.size() && text[i] == '^' && text[i + 1] == '^') {
        i += 2;
        if (i >= text.size() || text[i] != '<') {
          return error("datatype must be an IRI");
        }
        size_t end = text.find('>', i);
        if (end == std::string_view::npos) return error("unterminated IRI");
        tok.datatype.assign(text.substr(i + 1, end - i - 1));
        i = end + 1;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               ((c == '-' || c == '+') && i + 1 < text.size() &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      if (c == '-' || c == '+') ++i;
      bool saw_dot = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              (text[i] == '.' && !saw_dot &&
               i + 1 < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i + 1]))))) {
        if (text[i] == '.') saw_dot = true;
        ++i;
      }
      tok.kind = TokenKind::kNumber;
      tok.text.assign(text.substr(start, i - start));
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() && IsNameChar(text[i])) ++i;
      std::string word(text.substr(start, i - start));
      // A trailing '.' belongs to the triple terminator, not the name.
      while (!word.empty() && word.back() == '.') {
        word.pop_back();
        --i;
      }
      if (i < text.size() && text[i] == ':') {
        // pname: prefix:local
        ++i;
        size_t lstart = i;
        while (i < text.size() && IsNameChar(text[i])) ++i;
        std::string local(text.substr(lstart, i - lstart));
        while (!local.empty() && local.back() == '.') {
          local.pop_back();
          --i;
        }
        tok.kind = TokenKind::kPname;
        tok.text = word + ":" + local;
      } else if (word == "a") {
        tok.kind = TokenKind::kKeyword;
        tok.text = "a";
      } else {
        std::string upper = word;
        for (char& ch : upper) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        if (!IsKeyword(upper)) {
          return error("unexpected identifier '" + word + "'");
        }
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      }
    } else if (c == ':') {
      // Default-prefix pname ":local".
      ++i;
      size_t lstart = i;
      while (i < text.size() && IsNameChar(text[i])) ++i;
      std::string local(text.substr(lstart, i - lstart));
      while (!local.empty() && local.back() == '.') {
        local.pop_back();
        --i;
      }
      tok.kind = TokenKind::kPname;
      tok.text = ":" + local;
    } else {
      // Punctuation, including two-char operators.
      auto two = text.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "&&" ||
          two == "||") {
        tok.kind = TokenKind::kPunct;
        tok.text.assign(two);
        i += 2;
      } else if (std::string("{}().,;*=<>!").find(c) != std::string::npos) {
        tok.kind = TokenKind::kPunct;
        tok.text.assign(1, c);
        ++i;
      } else {
        return error(std::string("unexpected character '") + c + "'");
      }
    }
    out.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  out.push_back(eof);
  return out;
}

}  // namespace rdfspark::sparql
