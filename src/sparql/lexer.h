#ifndef RDFSPARK_SPARQL_LEXER_H_
#define RDFSPARK_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rdfspark::sparql {

enum class TokenKind {
  kEof,
  kIri,      // <...> with brackets stripped
  kPname,    // prefix:local (text keeps the colon form)
  kVar,      // ?name (text without '?')
  kString,   // "..." with optional @lang / ^^<datatype> in extra fields
  kNumber,   // integer or decimal text
  kKeyword,  // uppercased SPARQL keyword, or "a"
  kPunct,    // one of { } ( ) . , ; * = != < <= > >= && || !
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  std::string lang;      // kString only
  std::string datatype;  // kString only
  size_t line = 1;

  bool Is(TokenKind k, std::string_view t) const {
    return kind == k && text == t;
  }
};

/// Tokenizes SPARQL text. Keywords are uppercased; `a` stays lowercase (it
/// is the rdf:type shorthand, not a keyword proper).
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace rdfspark::sparql

#endif  // RDFSPARK_SPARQL_LEXER_H_
