#ifndef RDFSPARK_SPARQL_EVAL_H_
#define RDFSPARK_SPARQL_EVAL_H_

#include "common/status.h"
#include "rdf/store.h"
#include "sparql/ast.h"
#include "sparql/binding.h"

namespace rdfspark::sparql {

/// Single-node reference evaluator over a TripleStore. Not distributed and
/// not optimized — its only job is to be obviously correct, so that every
/// distributed engine's output can be cross-checked against it in tests.
class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(const rdf::TripleStore* store)
      : store_(store) {}

  /// Evaluates a full query (pattern + modifiers). For ASK queries the
  /// result has zero variables and one row iff the pattern matched.
  Result<BindingTable> Evaluate(const Query& query) const;

  /// Evaluates a CONSTRUCT query to new triples (deduplicated).
  Result<std::vector<rdf::Triple>> EvaluateConstruct(
      const Query& query) const;

  /// Evaluates a DESCRIBE query: all triples whose subject is one of the
  /// described resources (concise bounded description, subject-based).
  Result<std::vector<rdf::Triple>> EvaluateDescribe(const Query& query) const;

  /// Evaluates just a group pattern (no modifiers/projection).
  Result<BindingTable> EvaluateGroup(const GroupPattern& group) const;

  /// Evaluates one BGP by iterated pattern extension.
  BindingTable EvaluateBgp(const std::vector<TriplePattern>& bgp) const;

 private:
  /// Extends `table` with one triple pattern.
  BindingTable ExtendWithPattern(const BindingTable& table,
                                 const TriplePattern& pattern) const;

  const rdf::TripleStore* store_;
};

/// Instantiates a CONSTRUCT template over solution rows: for every row and
/// template pattern, variables are substituted; instantiations with unbound
/// variables, literal subjects or non-URI predicates are skipped, and the
/// output is deduplicated. Shared by the reference evaluator and the
/// engine-side ExecuteConstruct.
Result<std::vector<rdf::Triple>> InstantiateTemplate(
    const std::vector<TriplePattern>& construct_template,
    const BindingTable& table, const rdf::Dictionary& dict);

/// Triples describing the given resource ids (subject-based CBD),
/// deduplicated across resources.
std::vector<rdf::Triple> DescribeResources(
    const std::vector<rdf::TermId>& resources, const rdf::TripleStore& store);

/// Groups and aggregates a raw pattern result per the query's GROUP BY and
/// aggregate select items (COUNT/SUM/AVG/MIN/MAX — the BGP+ operations of
/// §III). Aggregate values become computed terms of the output table.
BindingTable ApplyAggregation(const Query& query, const BindingTable& table,
                              const rdf::Dictionary& dict);

/// Applies a query's solution modifiers (aggregation, order, projection,
/// distinct, slice) to a raw pattern result. Shared by the reference
/// evaluator and those engines that evaluate modifiers "with the Spark
/// API" driver-side.
BindingTable ApplyModifiers(const Query& query, BindingTable table,
                            const rdf::Dictionary& dict);

}  // namespace rdfspark::sparql

#endif  // RDFSPARK_SPARQL_EVAL_H_
