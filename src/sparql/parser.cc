#include "sparql/parser.h"

#include <cstdlib>
#include <unordered_map>

#include "rdf/term.h"
#include "sparql/lexer.h"

namespace rdfspark::sparql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    RDFSPARK_RETURN_NOT_OK(ParsePrologue());
    if (PeekKeyword("SELECT")) {
      Advance();
      query.form = QueryForm::kSelect;
      if (PeekKeyword("DISTINCT")) {
        Advance();
        query.distinct = true;
      } else if (PeekKeyword("REDUCED")) {
        Advance();  // treated as DISTINCT-less
      }
      if (Peek().Is(TokenKind::kPunct, "*")) {
        Advance();
      } else {
        // Select items: ?var or (AGG(?v|*) AS ?alias).
        while (true) {
          if (Peek().kind == TokenKind::kVar) {
            query.select_vars.push_back(Peek().text);
            Advance();
            continue;
          }
          if (Peek().Is(TokenKind::kPunct, "(")) {
            Advance();
            RDFSPARK_ASSIGN_OR_RETURN(SelectAggregate agg, ParseAggregate());
            RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, ")"));
            query.aggregates.push_back(std::move(agg));
            continue;
          }
          break;
        }
        if (query.select_vars.empty() && query.aggregates.empty()) {
          return Error("SELECT requires '*' or at least one item");
        }
      }
      if (PeekKeyword("WHERE")) Advance();
    } else if (PeekKeyword("ASK")) {
      Advance();
      query.form = QueryForm::kAsk;
      if (PeekKeyword("WHERE")) Advance();
    } else if (PeekKeyword("CONSTRUCT")) {
      Advance();
      query.form = QueryForm::kConstruct;
      // The template is a brace-enclosed triple block.
      RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, "{"));
      GroupPattern template_group;
      while (!Peek().Is(TokenKind::kPunct, "}")) {
        if (Peek().kind == TokenKind::kEof) {
          return Error("unterminated CONSTRUCT template");
        }
        RDFSPARK_RETURN_NOT_OK(ParseTripleBlock(&template_group));
      }
      Advance();  // consume '}'
      if (template_group.bgp.empty()) {
        return Error("CONSTRUCT template must contain triples");
      }
      query.construct_template = std::move(template_group.bgp);
      if (PeekKeyword("WHERE")) Advance();
    } else if (PeekKeyword("DESCRIBE")) {
      Advance();
      query.form = QueryForm::kDescribe;
      while (true) {
        const Token& t = Peek();
        if (t.kind == TokenKind::kVar) {
          query.describe_targets.push_back(PatternTerm::Var(t.text));
          Advance();
        } else if (t.kind == TokenKind::kIri) {
          query.describe_targets.push_back(
              PatternTerm::Const(rdf::Term::Uri(t.text)));
          Advance();
        } else if (t.kind == TokenKind::kPname) {
          RDFSPARK_ASSIGN_OR_RETURN(rdf::Term term, ExpandPname(t.text));
          query.describe_targets.push_back(
              PatternTerm::Const(std::move(term)));
          Advance();
        } else {
          break;
        }
      }
      if (query.describe_targets.empty()) {
        return Error("DESCRIBE requires at least one resource or variable");
      }
      if (PeekKeyword("WHERE")) Advance();
      // A pattern is optional for constant-only DESCRIBE.
      if (Peek().Is(TokenKind::kPunct, "{")) {
        RDFSPARK_ASSIGN_OR_RETURN(query.where, ParseGroup());
      } else {
        for (const auto& target : query.describe_targets) {
          if (target.is_variable()) {
            return Error("DESCRIBE with variables requires a WHERE pattern");
          }
        }
      }
      if (Peek().kind != TokenKind::kEof) {
        return Error("trailing tokens after DESCRIBE");
      }
      return query;
    } else {
      return Error("expected SELECT, ASK, CONSTRUCT or DESCRIBE");
    }
    RDFSPARK_ASSIGN_OR_RETURN(query.where, ParseGroup());
    RDFSPARK_RETURN_NOT_OK(ParseModifiers(&query));
    if (Peek().kind != TokenKind::kEof) {
      return Error("trailing tokens after query");
    }
    return query;
  }

 private:
  // --- token helpers ---
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(Peek().line) + ": " +
                              msg);
  }
  Status Expect(TokenKind kind, std::string_view text) {
    if (!Peek().Is(kind, text)) {
      return Error("expected '" + std::string(text) + "', got '" +
                   Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  // --- grammar ---
  Status ParsePrologue() {
    while (PeekKeyword("PREFIX") || PeekKeyword("BASE")) {
      bool is_base = PeekKeyword("BASE");
      Advance();
      if (is_base) {
        if (Peek().kind != TokenKind::kIri) return Error("BASE expects IRI");
        Advance();
        continue;
      }
      // The lexer folds "ns:" into a pname token with empty local part.
      if (Peek().kind != TokenKind::kPname) {
        return Error("PREFIX expects 'name:'");
      }
      std::string pname = Peek().text;
      size_t colon = pname.find(':');
      std::string prefix = pname.substr(0, colon);
      if (pname.size() != colon + 1) {
        return Error("PREFIX name must end with ':'");
      }
      Advance();
      if (Peek().kind != TokenKind::kIri) {
        return Error("PREFIX expects an IRI");
      }
      prefixes_[prefix] = Peek().text;
      Advance();
    }
    return Status::OK();
  }

  Result<rdf::Term> ExpandPname(const std::string& pname) {
    size_t colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("unknown prefix '" + prefix + ":'");
    }
    return rdf::Term::Uri(it->second + local);
  }

  Result<PatternTerm> ParsePatternTerm(bool predicate_position) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVar: {
        PatternTerm out = PatternTerm::Var(t.text);
        Advance();
        return out;
      }
      case TokenKind::kIri: {
        PatternTerm out = PatternTerm::Const(rdf::Term::Uri(t.text));
        Advance();
        return out;
      }
      case TokenKind::kPname: {
        RDFSPARK_ASSIGN_OR_RETURN(rdf::Term term, ExpandPname(t.text));
        Advance();
        return PatternTerm::Const(std::move(term));
      }
      case TokenKind::kString: {
        PatternTerm out = PatternTerm::Const(
            rdf::Term::Literal(t.text, t.datatype, t.lang));
        Advance();
        return out;
      }
      case TokenKind::kNumber: {
        bool is_double = t.text.find('.') != std::string::npos;
        PatternTerm out = PatternTerm::Const(rdf::Term::Literal(
            t.text, is_double ? rdf::kXsdDouble : rdf::kXsdInteger));
        Advance();
        return out;
      }
      case TokenKind::kKeyword:
        if (t.text == "a" && predicate_position) {
          Advance();
          return PatternTerm::Const(rdf::Term::Uri(rdf::kRdfType));
        }
        [[fallthrough]];
      default:
        return Error("expected term, got '" + t.text + "'");
    }
  }

  /// Parses "s p o (; p o)* (, o)* ." into one or more patterns.
  Status ParseTripleBlock(GroupPattern* group) {
    RDFSPARK_ASSIGN_OR_RETURN(PatternTerm s, ParsePatternTerm(false));
    while (true) {
      RDFSPARK_ASSIGN_OR_RETURN(PatternTerm p, ParsePatternTerm(true));
      while (true) {
        RDFSPARK_ASSIGN_OR_RETURN(PatternTerm o, ParsePatternTerm(false));
        group->bgp.push_back(TriplePattern{s, p, o});
        if (Peek().Is(TokenKind::kPunct, ",")) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().Is(TokenKind::kPunct, ";")) {
        Advance();
        // Allow trailing ';' before '.' or '}'.
        if (Peek().Is(TokenKind::kPunct, ".") ||
            Peek().Is(TokenKind::kPunct, "}")) {
          break;
        }
        continue;
      }
      break;
    }
    if (Peek().Is(TokenKind::kPunct, ".")) Advance();
    return Status::OK();
  }

  Result<GroupPattern> ParseGroup() {
    RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, "{"));
    GroupPattern group;
    while (!Peek().Is(TokenKind::kPunct, "}")) {
      if (Peek().kind == TokenKind::kEof) return Error("unterminated group");
      if (PeekKeyword("OPTIONAL")) {
        Advance();
        RDFSPARK_ASSIGN_OR_RETURN(GroupPattern opt, ParseGroup());
        group.optionals.push_back(std::move(opt));
      } else if (PeekKeyword("FILTER")) {
        Advance();
        RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, "("));
        RDFSPARK_ASSIGN_OR_RETURN(auto expr, ParseOrExpr());
        RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, ")"));
        group.filters.push_back(std::move(expr));
      } else if (Peek().Is(TokenKind::kPunct, "{")) {
        // Sub-group; if followed by UNION, gather alternatives.
        RDFSPARK_ASSIGN_OR_RETURN(GroupPattern first, ParseGroup());
        if (PeekKeyword("UNION")) {
          std::vector<GroupPattern> alternatives;
          alternatives.push_back(std::move(first));
          while (PeekKeyword("UNION")) {
            Advance();
            RDFSPARK_ASSIGN_OR_RETURN(GroupPattern alt, ParseGroup());
            alternatives.push_back(std::move(alt));
          }
          group.unions.push_back(std::move(alternatives));
        } else {
          // Plain nested group: fold its contents into this one.
          for (auto& tp : first.bgp) group.bgp.push_back(std::move(tp));
          for (auto& f : first.filters) group.filters.push_back(std::move(f));
          for (auto& o : first.optionals) {
            group.optionals.push_back(std::move(o));
          }
          for (auto& u : first.unions) group.unions.push_back(std::move(u));
        }
        if (Peek().Is(TokenKind::kPunct, ".")) Advance();
      } else {
        RDFSPARK_RETURN_NOT_OK(ParseTripleBlock(&group));
      }
    }
    Advance();  // consume '}'
    return group;
  }

  // expr := and ('||' and)*
  Result<std::shared_ptr<FilterExpr>> ParseOrExpr() {
    RDFSPARK_ASSIGN_OR_RETURN(auto lhs, ParseAndExpr());
    while (Peek().Is(TokenKind::kPunct, "||")) {
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(auto rhs, ParseAndExpr());
      lhs = FilterExpr::MakeBinary(ExprOp::kOr, std::move(lhs),
                                   std::move(rhs));
    }
    return lhs;
  }

  Result<std::shared_ptr<FilterExpr>> ParseAndExpr() {
    RDFSPARK_ASSIGN_OR_RETURN(auto lhs, ParseComparison());
    while (Peek().Is(TokenKind::kPunct, "&&")) {
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(auto rhs, ParseComparison());
      lhs = FilterExpr::MakeBinary(ExprOp::kAnd, std::move(lhs),
                                   std::move(rhs));
    }
    return lhs;
  }

  Result<std::shared_ptr<FilterExpr>> ParseComparison() {
    RDFSPARK_ASSIGN_OR_RETURN(auto lhs, ParsePrimary());
    const Token& t = Peek();
    if (t.kind == TokenKind::kPunct) {
      ExprOp op;
      if (t.text == "=") {
        op = ExprOp::kEq;
      } else if (t.text == "!=") {
        op = ExprOp::kNe;
      } else if (t.text == "<") {
        op = ExprOp::kLt;
      } else if (t.text == "<=") {
        op = ExprOp::kLe;
      } else if (t.text == ">") {
        op = ExprOp::kGt;
      } else if (t.text == ">=") {
        op = ExprOp::kGe;
      } else {
        return lhs;
      }
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(auto rhs, ParsePrimary());
      return FilterExpr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::shared_ptr<FilterExpr>> ParsePrimary() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kPunct, "(")) {
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(auto inner, ParseOrExpr());
      RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, ")"));
      return inner;
    }
    if (t.Is(TokenKind::kPunct, "!")) {
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(auto inner, ParsePrimary());
      return FilterExpr::MakeUnary(ExprOp::kNot, std::move(inner));
    }
    if (t.kind == TokenKind::kKeyword && t.text == "BOUND") {
      Advance();
      RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, "("));
      if (Peek().kind != TokenKind::kVar) {
        return Error("BOUND expects a variable");
      }
      auto e = std::make_shared<FilterExpr>();
      e->op = ExprOp::kBound;
      e->var = Peek().text;
      Advance();
      RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, ")"));
      return e;
    }
    if (t.kind == TokenKind::kVar) {
      auto e = FilterExpr::MakeVar(t.text);
      Advance();
      return e;
    }
    if (t.kind == TokenKind::kString) {
      auto e = FilterExpr::MakeLiteral(
          rdf::Term::Literal(t.text, t.datatype, t.lang));
      Advance();
      return e;
    }
    if (t.kind == TokenKind::kNumber) {
      bool is_double = t.text.find('.') != std::string::npos;
      auto e = FilterExpr::MakeLiteral(rdf::Term::Literal(
          t.text, is_double ? rdf::kXsdDouble : rdf::kXsdInteger));
      Advance();
      return e;
    }
    if (t.kind == TokenKind::kIri) {
      auto e = FilterExpr::MakeLiteral(rdf::Term::Uri(t.text));
      Advance();
      return e;
    }
    if (t.kind == TokenKind::kPname) {
      RDFSPARK_ASSIGN_OR_RETURN(rdf::Term term, ExpandPname(t.text));
      Advance();
      return FilterExpr::MakeLiteral(std::move(term));
    }
    return Error("expected filter expression, got '" + t.text + "'");
  }

  Result<SelectAggregate> ParseAggregate() {
    SelectAggregate agg;
    if (Peek().kind != TokenKind::kKeyword) {
      return Error("expected aggregate function");
    }
    const std::string& kw = Peek().text;
    if (kw == "COUNT") {
      agg.op = AggregateOp::kCount;
    } else if (kw == "SUM") {
      agg.op = AggregateOp::kSum;
    } else if (kw == "AVG") {
      agg.op = AggregateOp::kAvg;
    } else if (kw == "MIN") {
      agg.op = AggregateOp::kMin;
    } else if (kw == "MAX") {
      agg.op = AggregateOp::kMax;
    } else {
      return Error("unknown aggregate '" + kw + "'");
    }
    Advance();
    RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, "("));
    if (Peek().Is(TokenKind::kPunct, "*")) {
      if (agg.op != AggregateOp::kCount) {
        return Error("only COUNT accepts '*'");
      }
      Advance();
    } else if (Peek().kind == TokenKind::kVar) {
      agg.var = Peek().text;
      Advance();
    } else {
      return Error("aggregate expects a variable or '*'");
    }
    RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, ")"));
    if (!PeekKeyword("AS")) return Error("aggregate requires AS ?alias");
    Advance();
    if (Peek().kind != TokenKind::kVar) {
      return Error("AS expects a variable");
    }
    agg.alias = Peek().text;
    Advance();
    return agg;
  }

  Status ParseModifiers(Query* query) {
    if (PeekKeyword("GROUP")) {
      Advance();
      if (!PeekKeyword("BY")) return Error("expected BY after GROUP");
      Advance();
      while (Peek().kind == TokenKind::kVar) {
        query->group_by.push_back(Peek().text);
        Advance();
      }
      if (query->group_by.empty()) {
        return Error("GROUP BY requires at least one variable");
      }
    }
    if (query->IsAggregate()) {
      // Plain select vars must be grouping keys (SPARQL 1.1 rule).
      for (const auto& v : query->select_vars) {
        bool grouped = false;
        for (const auto& g : query->group_by) grouped |= g == v;
        if (!grouped) {
          return Error("non-aggregate variable ?" + v +
                       " must appear in GROUP BY");
        }
      }
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      if (!PeekKeyword("BY")) return Error("expected BY after ORDER");
      Advance();
      while (true) {
        OrderKey key;
        if (PeekKeyword("ASC") || PeekKeyword("DESC")) {
          key.ascending = Peek().text == "ASC";
          Advance();
          RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, "("));
          if (Peek().kind != TokenKind::kVar) {
            return Error("ORDER BY expects a variable");
          }
          key.var = Peek().text;
          Advance();
          RDFSPARK_RETURN_NOT_OK(Expect(TokenKind::kPunct, ")"));
        } else if (Peek().kind == TokenKind::kVar) {
          key.var = Peek().text;
          Advance();
        } else {
          break;
        }
        query->order_by.push_back(std::move(key));
      }
      if (query->order_by.empty()) {
        return Error("ORDER BY requires at least one key");
      }
    }
    // LIMIT and OFFSET in either order.
    for (int i = 0; i < 2; ++i) {
      if (PeekKeyword("LIMIT")) {
        Advance();
        if (Peek().kind != TokenKind::kNumber) {
          return Error("LIMIT expects a number");
        }
        query->limit = std::strtoll(Peek().text.c_str(), nullptr, 10);
        Advance();
      } else if (PeekKeyword("OFFSET")) {
        Advance();
        if (Peek().kind != TokenKind::kNumber) {
          return Error("OFFSET expects a number");
        }
        query->offset = std::strtoll(Peek().text.c_str(), nullptr, 10);
        Advance();
      }
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace rdfspark::sparql
