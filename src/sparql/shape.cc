#include "sparql/shape.h"

#include <map>
#include <set>
#include <string>

namespace rdfspark::sparql {

const char* BgpShapeName(BgpShape shape) {
  switch (shape) {
    case BgpShape::kSingle:
      return "single";
    case BgpShape::kStar:
      return "star";
    case BgpShape::kLinear:
      return "linear";
    case BgpShape::kSnowflake:
      return "snowflake";
    case BgpShape::kComplex:
      return "complex";
  }
  return "unknown";
}

namespace {

/// Positions a variable occupies across the BGP.
struct VarUse {
  std::set<size_t> subject_of;
  std::set<size_t> object_of;
  std::set<size_t> predicate_of;

  size_t Degree() const {
    std::set<size_t> all = subject_of;
    all.insert(object_of.begin(), object_of.end());
    all.insert(predicate_of.begin(), predicate_of.end());
    return all.size();
  }
};

}  // namespace

BgpShape ClassifyBgp(const std::vector<TriplePattern>& bgp) {
  if (bgp.size() <= 1) return BgpShape::kSingle;

  std::map<std::string, VarUse> uses;
  for (size_t i = 0; i < bgp.size(); ++i) {
    if (bgp[i].s.is_variable()) uses[bgp[i].s.var()].subject_of.insert(i);
    if (bgp[i].p.is_variable()) uses[bgp[i].p.var()].predicate_of.insert(i);
    if (bgp[i].o.is_variable()) uses[bgp[i].o.var()].object_of.insert(i);
  }

  // Join variables: appear in >= 2 patterns.
  bool any_pred_join = false;
  bool any_oo_join = false;
  bool any_ss_join = false;
  bool any_so_join = false;
  for (const auto& [name, use] : uses) {
    if (use.Degree() < 2) continue;
    if (!use.predicate_of.empty()) any_pred_join = true;
    if (use.subject_of.size() >= 2) any_ss_join = true;
    if (use.object_of.size() >= 2 && use.subject_of.empty()) {
      any_oo_join = true;
    }
    if (!use.subject_of.empty() && !use.object_of.empty()) any_so_join = true;
  }
  if (any_pred_join || any_oo_join) return BgpShape::kComplex;

  // Connectivity over shared variables.
  std::vector<int> component(bgp.size(), -1);
  int num_components = 0;
  for (size_t i = 0; i < bgp.size(); ++i) {
    if (component[i] >= 0) continue;
    // BFS.
    std::vector<size_t> frontier{i};
    component[i] = num_components;
    while (!frontier.empty()) {
      size_t cur = frontier.back();
      frontier.pop_back();
      for (const auto& [name, use] : uses) {
        std::set<size_t> all = use.subject_of;
        all.insert(use.object_of.begin(), use.object_of.end());
        if (!all.contains(cur)) continue;
        for (size_t j : all) {
          if (component[j] < 0) {
            component[j] = num_components;
            frontier.push_back(j);
          }
        }
      }
    }
    ++num_components;
  }
  if (num_components > 1) return BgpShape::kComplex;

  // Star: a single hub variable that is the subject of every pattern.
  for (const auto& [name, use] : uses) {
    if (use.subject_of.size() == bgp.size()) return BgpShape::kStar;
  }

  // Linear: pure subject-object chain — no subject-subject joins, and every
  // join variable links exactly two patterns (one as subject, one as object).
  if (!any_ss_join && any_so_join) {
    bool is_chain = true;
    for (const auto& [name, use] : uses) {
      if (use.Degree() < 2) continue;
      if (use.subject_of.size() != 1 || use.object_of.size() != 1) {
        is_chain = false;
        break;
      }
    }
    if (is_chain) return BgpShape::kLinear;
  }

  // Snowflake: connected mixture of subject-subject stars and
  // subject-object links.
  if (any_ss_join && any_so_join) return BgpShape::kSnowflake;

  // SS joins with several hubs but no SO links, or other leftovers.
  return BgpShape::kComplex;
}

BgpShape ClassifyQuery(const Query& query) {
  if (!query.where.unions.empty() || !query.where.optionals.empty()) {
    return BgpShape::kComplex;
  }
  return ClassifyBgp(query.where.bgp);
}

}  // namespace rdfspark::sparql
