#include "sparql/serialize.h"

namespace rdfspark::sparql {

namespace {

const char* OpToken(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
      return "=";
    case ExprOp::kNe:
      return "!=";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    case ExprOp::kGt:
      return ">";
    case ExprOp::kGe:
      return ">=";
    case ExprOp::kAnd:
      return "&&";
    case ExprOp::kOr:
      return "||";
    default:
      return "?";
  }
}

void AppendIndent(int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
}

}  // namespace

std::string ToSparql(const FilterExpr& expr) {
  switch (expr.op) {
    case ExprOp::kVar:
      return "?" + expr.var;
    case ExprOp::kLiteral:
      return expr.literal.ToNTriples();
    case ExprOp::kBound:
      return "BOUND(?" + expr.var + ")";
    case ExprOp::kNot:
      return "(!" + ToSparql(*expr.children[0]) + ")";
    default:
      return "(" + ToSparql(*expr.children[0]) + " " + OpToken(expr.op) +
             " " + ToSparql(*expr.children[1]) + ")";
  }
}

std::string ToSparql(const GroupPattern& group, int indent) {
  std::string out = "{\n";
  for (const auto& tp : group.bgp) {
    AppendIndent(indent + 1, &out);
    out += tp.ToString();
    out += "\n";
  }
  for (const auto& alternatives : group.unions) {
    AppendIndent(indent + 1, &out);
    for (size_t i = 0; i < alternatives.size(); ++i) {
      if (i) out += " UNION ";
      out += ToSparql(alternatives[i], indent + 1);
    }
    out += "\n";
  }
  for (const auto& opt : group.optionals) {
    AppendIndent(indent + 1, &out);
    out += "OPTIONAL ";
    out += ToSparql(opt, indent + 1);
    out += "\n";
  }
  for (const auto& filter : group.filters) {
    AppendIndent(indent + 1, &out);
    out += "FILTER (" + ToSparql(*filter) + ")\n";
  }
  AppendIndent(indent, &out);
  out += "}";
  return out;
}

std::string ToSparql(const Query& query) {
  std::string out;
  if (query.form == QueryForm::kAsk) {
    out = "ASK ";
    out += ToSparql(query.where, 0);
    return out;
  }
  if (query.form == QueryForm::kConstruct) {
    out = "CONSTRUCT {\n";
    for (const auto& tp : query.construct_template) {
      out += "  " + tp.ToString() + "\n";
    }
    out += "} WHERE ";
    out += ToSparql(query.where, 0);
    if (query.limit >= 0) out += "\nLIMIT " + std::to_string(query.limit);
    if (query.offset > 0) out += "\nOFFSET " + std::to_string(query.offset);
    return out;
  }
  if (query.form == QueryForm::kDescribe) {
    out = "DESCRIBE";
    for (const auto& target : query.describe_targets) {
      out += " " + target.ToString();
    }
    if (!query.where.bgp.empty() || !query.where.filters.empty() ||
        !query.where.optionals.empty() || !query.where.unions.empty()) {
      out += " WHERE ";
      out += ToSparql(query.where, 0);
    }
    return out;
  }
  out = "SELECT ";
  if (query.distinct) out += "DISTINCT ";
  if (query.select_vars.empty() && query.aggregates.empty()) {
    out += "* ";
  } else {
    for (const auto& v : query.select_vars) {
      out += "?" + v + " ";
    }
    for (const auto& agg : query.aggregates) {
      out += "(";
      out += AggregateOpName(agg.op);
      out += "(";
      out += agg.var.empty() ? "*" : "?" + agg.var;
      out += ") AS ?" + agg.alias + ") ";
    }
  }
  out += "WHERE ";
  out += ToSparql(query.where, 0);
  if (!query.group_by.empty()) {
    out += "\nGROUP BY";
    for (const auto& g : query.group_by) out += " ?" + g;
  }
  if (!query.order_by.empty()) {
    out += "\nORDER BY";
    for (const auto& key : query.order_by) {
      out += key.ascending ? " ASC(?" : " DESC(?";
      out += key.var + ")";
    }
  }
  if (query.limit >= 0) out += "\nLIMIT " + std::to_string(query.limit);
  if (query.offset > 0) out += "\nOFFSET " + std::to_string(query.offset);
  return out;
}

}  // namespace rdfspark::sparql
