#ifndef RDFSPARK_SPARQL_ANALYSIS_H_
#define RDFSPARK_SPARQL_ANALYSIS_H_

#include <vector>

#include "sparql/ast.h"
#include "systems/plan/diagnostics.h"

namespace rdfspark::sparql {

/// Engine-independent knobs for the query analyzer. The defaults describe
/// no engine in particular; engines pass their own storage traits so rules
/// that only matter for a given layout (QA005) fire selectively.
struct QueryAnalysisOptions {
  /// The target engine stores triples vertically partitioned by predicate
  /// (Table II: SPARQLGX, S2RDF, S2X-style layouts). An unbounded-predicate
  /// pattern then scans every predicate table.
  bool vertical_partitioned = false;
};

/// Tier A of the dataflow lint: pure rules over the parsed AST, before any
/// planning. Stable ids in the shared Diagnostic format:
///   QA001  projected-but-never-bound variables (ERROR: the result column
///          can only be unbound) and bound-once never-used variables (INFO:
///          the position acts as a wildcard).
///   QA002  statically unsatisfiable FILTERs: contradictory equality /
///          range constraints, constant-false comparisons, and comparisons
///          over variables never bound in the filter's group (ERROR when
///          the contradiction is a top-level conjunct, WARN when it could
///          be masked by OR/NOT or an enclosing optional).
///   QA003  non-well-designed OPTIONAL: an optional uses a variable that is
///          not bound by its mandatory ancestors but appears elsewhere in
///          the query, so the result depends on evaluation order (WARN).
///   QA004  disconnected BGP components within one group: no shared
///          variable connects the patterns, forcing a cross product in
///          every engine — the pre-plan cousin of CP001 (WARN).
///   QA005  unbounded-predicate pattern on a vertically-partitioned engine:
///          the scan unions all predicate tables (WARN; only with
///          options.vertical_partitioned).
///
/// Findings are emitted in rule order then document order — deterministic
/// for identical input.
std::vector<systems::plan::Diagnostic> AnalyzeQuery(
    const Query& query, const QueryAnalysisOptions& options = {});

}  // namespace rdfspark::sparql

#endif  // RDFSPARK_SPARQL_ANALYSIS_H_
