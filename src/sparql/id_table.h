#ifndef RDFSPARK_SPARQL_ID_TABLE_H_
#define RDFSPARK_SPARQL_ID_TABLE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rdf/dictionary.h"

namespace rdfspark::sparql {

/// Sentinel for a variable left unbound by OPTIONAL / UNION padding.
inline constexpr rdf::TermId kUnbound = ~0ull;

/// Read-only view of one row (or any contiguous run of term ids).
using IdSpan = std::span<const rdf::TermId>;

/// A flat, fixed-width row batch: one contiguous TermId buffer plus a
/// column count. This is the data plane's core type — engine partitions,
/// shuffles and BindingTable all carry IdTables, so a row costs
/// `width * sizeof(TermId)` contiguous bytes instead of a separately
/// heap-allocated std::vector per row.
///
/// Rows are exposed as cheap span views into the buffer; the sort/dedup
/// API works on row indices over the flat storage, so DISTINCT and
/// ORDER BY never materialize per-row objects. A width of 0 is legal
/// (the unit table of ASK results): such rows occupy no buffer space but
/// are still counted.
class IdTable {
 public:
  IdTable() = default;
  explicit IdTable(size_t width) : width_(width) {}
  /// Adopts a pre-built flat buffer; data.size() must be a multiple of a
  /// nonzero width.
  IdTable(size_t width, std::vector<rdf::TermId> data)
      : width_(width), num_rows_(width == 0 ? 0 : data.size() / width),
        data_(std::move(data)) {
    assert(width_ == 0 || data_.size() % width_ == 0);
  }

  size_t width() const { return width_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  IdSpan row(size_t r) const {
    return IdSpan(data_.data() + r * width_, width_);
  }
  IdSpan operator[](size_t r) const { return row(r); }
  rdf::TermId cell(size_t r, size_t c) const { return data_[r * width_ + c]; }
  rdf::TermId* mutable_row(size_t r) { return data_.data() + r * width_; }

  void Reserve(size_t rows) { data_.reserve(rows * width_); }
  void Clear() {
    data_.clear();
    num_rows_ = 0;
  }

  /// Appends a row. Inputs narrower than the table are padded with `fill`
  /// (schema growth); wider inputs are not allowed.
  void AppendRow(IdSpan row, rdf::TermId fill = kUnbound) {
    assert(row.size() <= width_);
    data_.insert(data_.end(), row.begin(), row.end());
    data_.resize(data_.size() + (width_ - row.size()), fill);
    ++num_rows_;
  }

  /// Appends an uninitialized row and returns a pointer to its `width()`
  /// cells (nullptr for width 0 — the row still counts).
  rdf::TermId* AppendRowUninitialized() {
    data_.resize(data_.size() + width_);
    ++num_rows_;
    return width_ == 0 ? nullptr : data_.data() + (num_rows_ - 1) * width_;
  }

  /// Appends one row filled with `fill`.
  void AppendRowFilled(rdf::TermId fill) {
    data_.resize(data_.size() + width_, fill);
    ++num_rows_;
  }

  /// Drops the last row (build-then-validate kernels append a row in
  /// place, then pop it when the merge turns out to conflict).
  void PopRow() {
    assert(num_rows_ > 0);
    data_.resize(data_.size() - width_);
    --num_rows_;
  }

  /// Appends row `r` of `other` (same width).
  void AppendRowFrom(const IdTable& other, size_t r) {
    assert(other.width_ == width_);
    auto src = other.row(r);
    data_.insert(data_.end(), src.begin(), src.end());
    ++num_rows_;
  }

  /// Appends every row of `other` (same width) — one bulk buffer copy.
  void AppendRowsFrom(const IdTable& other) {
    assert(other.width_ == width_);
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    num_rows_ += other.num_rows_;
  }

  /// Deterministic hash of one row's cells (platform-independent, same
  /// mixing as spark::HashValue over the cell sequence).
  uint64_t RowHash(size_t r) const;

  bool RowsEqual(size_t a, size_t b) const;

  /// Stable first-occurrence duplicate removal over full rows: returns the
  /// surviving row indices in original order. Hashes rows in place over
  /// the flat buffer — no per-row key objects.
  std::vector<size_t> DistinctRowIndices() const;

  /// Stable lexicographic sort order of row indices (cells compared as
  /// raw ids). DISTINCT/ORDER BY-style operators sort indices, then
  /// materialize once with PermutedByRows.
  std::vector<size_t> LexicographicOrder() const;

  /// New table with rows rearranged per `order` (indices into this table;
  /// may select a subset).
  IdTable PermutedByRows(const std::vector<size_t>& order) const;

  /// Splits into `n` contiguous slices with the same boundaries
  /// spark::Parallelize gives `size()` records — slice p covers rows
  /// [size*p/n, size*(p+1)/n).
  std::vector<IdTable> SplitRows(int n) const;

  const std::vector<rdf::TermId>& data() const { return data_; }

  /// Flat footprint: rows occupy one fixed-width run. The constant mirrors
  /// the object-header charge other estimated types pay, once per batch
  /// instead of once per row.
  uint64_t EstimatedByteSize() const {
    return 16 + data_.size() * sizeof(rdf::TermId);
  }

  bool operator==(const IdTable& other) const = default;

  /// Row iteration (range-for yields IdSpan views).
  class RowIterator {
   public:
    RowIterator(const IdTable* table, size_t row) : table_(table), row_(row) {}
    IdSpan operator*() const { return table_->row(row_); }
    RowIterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator!=(const RowIterator& other) const {
      return row_ != other.row_;
    }
    bool operator==(const RowIterator& other) const {
      return row_ == other.row_;
    }

   private:
    const IdTable* table_;
    size_t row_;
  };
  RowIterator begin() const { return RowIterator(this, 0); }
  RowIterator end() const { return RowIterator(this, num_rows_); }

 private:
  size_t width_ = 0;
  size_t num_rows_ = 0;
  std::vector<rdf::TermId> data_;
};

}  // namespace rdfspark::sparql

#endif  // RDFSPARK_SPARQL_ID_TABLE_H_
