#ifndef RDFSPARK_SPARQL_SHAPE_H_
#define RDFSPARK_SPARQL_SHAPE_H_

#include <vector>

#include "sparql/ast.h"

namespace rdfspark::sparql {

/// The query shapes of §II.B. Star: subject-subject joins only, one hub.
/// Linear: a chain of subject-object joins. Snowflake: several star
/// components connected by paths. Complex: everything else (object-object
/// joins, disconnected patterns, predicate-variable joins).
enum class BgpShape { kSingle, kStar, kLinear, kSnowflake, kComplex };

const char* BgpShapeName(BgpShape shape);

/// Classifies a basic graph pattern.
BgpShape ClassifyBgp(const std::vector<TriplePattern>& bgp);

/// Classifies a whole query (a query with UNION/OPTIONAL is complex; FILTER
/// does not change the pattern shape).
BgpShape ClassifyQuery(const Query& query);

}  // namespace rdfspark::sparql

#endif  // RDFSPARK_SPARQL_SHAPE_H_
