#ifndef RDFSPARK_SPARQL_PARSER_H_
#define RDFSPARK_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sparql/ast.h"

namespace rdfspark::sparql {

/// Parses the supported SPARQL fragment:
///
///   PREFIX ns: <iri> ...
///   SELECT [DISTINCT] (?v ... | *) WHERE { ... }  |  ASK { ... }
///
/// where the group pattern supports basic graph patterns (with `a`,
/// `;` predicate lists and `,` object lists), FILTER with comparison and
/// boolean operators plus BOUND, OPTIONAL { ... }, and
/// { ... } UNION { ... }; solution modifiers ORDER BY [ASC|DESC](?v),
/// LIMIT and OFFSET. This covers the BGP+ fragment of Table II.
Result<Query> ParseQuery(std::string_view text);

}  // namespace rdfspark::sparql

#endif  // RDFSPARK_SPARQL_PARSER_H_
