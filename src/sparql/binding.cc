#include "sparql/binding.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/hash.h"

namespace rdfspark::sparql {

BindingTable BindingTable::Unit() {
  BindingTable t;
  t.rows_.AppendRowFilled(kUnbound);  // width 0: one empty row
  return t;
}

rdf::TermId BindingTable::AddComputedTerm(rdf::Term term) {
  if (!computed_) computed_ = std::make_shared<std::vector<rdf::Term>>();
  computed_->push_back(std::move(term));
  return kComputedTermBase + computed_->size() - 1;
}

Result<rdf::Term> BindingTable::ResolveTerm(rdf::TermId id,
                                            const rdf::Dictionary& dict) const {
  if (id >= kComputedTermBase && id != kUnbound) {
    size_t idx = static_cast<size_t>(id - kComputedTermBase);
    if (!computed_ || idx >= computed_->size()) {
      return Status::OutOfRange("computed term id out of range");
    }
    return (*computed_)[idx];
  }
  return dict.Decode(id);
}

BindingTable CopyComputedTerms(const BindingTable& from, BindingTable to) {
  if (from.computed_ && !to.computed_) to.computed_ = from.computed_;
  return to;
}

std::vector<std::map<std::string, std::string>> BindingTable::Decode(
    const rdf::Dictionary& dict) const {
  std::vector<std::map<std::string, std::string>> out;
  out.reserve(rows_.size());
  for (IdSpan row : rows_) {
    std::map<std::string, std::string> m;
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (row[i] == kUnbound) continue;
      auto term = ResolveTerm(row[i], dict);
      m[vars_[i]] = term.ok() ? term->ToNTriples() : "<?bad-id>";
    }
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string BindingTable::ToString(const rdf::Dictionary& dict,
                                   size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < vars_.size(); ++i) {
    os << (i ? "\t" : "") << "?" << vars_[i];
  }
  os << "\n";
  size_t shown = 0;
  for (IdSpan row : rows_) {
    if (shown++ >= max_rows) {
      os << "... (" << rows_.size() << " rows total)\n";
      break;
    }
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (i) os << "\t";
      if (row[i] == kUnbound) {
        os << "-";
      } else {
        auto term = ResolveTerm(row[i], dict);
        os << (term.ok() ? term->ToNTriples() : "<?bad-id>");
      }
    }
    os << "\n";
  }
  return os.str();
}

namespace {

/// Shared/unshared variable positions for a join.
struct JoinPlan {
  std::vector<std::pair<int, int>> shared;  // (a index, b index)
  std::vector<int> b_new;                   // b columns not in a
  std::vector<std::string> out_vars;
};

JoinPlan PlanJoin(const BindingTable& a, const BindingTable& b) {
  JoinPlan plan;
  plan.out_vars = a.vars();
  for (size_t j = 0; j < b.vars().size(); ++j) {
    int ai = a.VarIndex(b.vars()[j]);
    if (ai >= 0) {
      plan.shared.emplace_back(ai, static_cast<int>(j));
    } else {
      plan.b_new.push_back(static_cast<int>(j));
      plan.out_vars.push_back(b.vars()[j]);
    }
  }
  return plan;
}

/// Deterministic hash of the key cells of one row — the same fold
/// spark::HashValue applies to a materialized key vector, computed in
/// place over the flat buffer.
uint64_t KeyHashOf(IdSpan row, const std::vector<int>& cols, bool* unbound) {
  uint64_t h = 0xabcdef0123456789ULL;
  *unbound = false;
  for (int c : cols) {
    rdf::TermId v = row[static_cast<size_t>(c)];
    if (v == kUnbound) *unbound = true;
    h = CombineHash64(h, MixHash64(v));
  }
  return h;
}

bool KeysEqual(IdSpan arow, const std::vector<int>& a_cols, IdSpan brow,
               const std::vector<int>& b_cols) {
  for (size_t k = 0; k < a_cols.size(); ++k) {
    if (arow[static_cast<size_t>(a_cols[k])] !=
        brow[static_cast<size_t>(b_cols[k])]) {
      return false;
    }
  }
  return true;
}

/// Hash-bucket build side: b row indices grouped by key-cell hash, probed
/// with cell-equality verification (collisions filtered at probe time).
using BuildIndex = std::unordered_map<uint64_t, std::vector<size_t>>;

BuildIndex BuildOnB(const BindingTable& b, const std::vector<int>& b_cols) {
  BuildIndex build;
  for (size_t r = 0; r < b.rows().size(); ++r) {
    bool unbound = false;
    uint64_t h = KeyHashOf(b.rows()[r], b_cols, &unbound);
    if (unbound) continue;
    build[h].push_back(r);
  }
  return build;
}

}  // namespace

BindingTable HashJoin(const BindingTable& a, const BindingTable& b) {
  JoinPlan plan = PlanJoin(a, b);
  BindingTable out(plan.out_vars);

  std::vector<int> a_cols, b_cols;
  for (auto& [ai, bi] : plan.shared) {
    a_cols.push_back(ai);
    b_cols.push_back(bi);
  }
  if (a_cols.empty()) {
    // Cross product: left-major, b rows in order.
    for (IdSpan arow : a.rows()) {
      for (IdSpan brow : b.rows()) {
        rdf::TermId* cells = out.mutable_rows()->AppendRowUninitialized();
        std::copy(arow.begin(), arow.end(), cells);
        rdf::TermId* tail = cells + arow.size();
        for (size_t k = 0; k < plan.b_new.size(); ++k) {
          tail[k] = brow[static_cast<size_t>(plan.b_new[k])];
        }
      }
    }
    return out;
  }
  BuildIndex build = BuildOnB(b, b_cols);
  for (IdSpan arow : a.rows()) {
    bool unbound = false;
    uint64_t h = KeyHashOf(arow, a_cols, &unbound);
    if (unbound) continue;
    auto it = build.find(h);
    if (it == build.end()) continue;
    for (size_t r : it->second) {
      IdSpan brow = b.rows()[r];
      if (!KeysEqual(arow, a_cols, brow, b_cols)) continue;
      rdf::TermId* cells = out.mutable_rows()->AppendRowUninitialized();
      std::copy(arow.begin(), arow.end(), cells);
      rdf::TermId* tail = cells + arow.size();
      for (size_t k = 0; k < plan.b_new.size(); ++k) {
        tail[k] = brow[static_cast<size_t>(plan.b_new[k])];
      }
    }
  }
  return out;
}

BindingTable LeftJoin(const BindingTable& a, const BindingTable& b) {
  JoinPlan plan = PlanJoin(a, b);
  BindingTable out(plan.out_vars);

  std::vector<int> a_cols, b_cols;
  for (auto& [ai, bi] : plan.shared) {
    a_cols.push_back(ai);
    b_cols.push_back(bi);
  }
  BuildIndex build;
  if (!a_cols.empty()) build = BuildOnB(b, b_cols);

  auto emit_padded = [&](IdSpan arow) {
    rdf::TermId* cells = out.mutable_rows()->AppendRowUninitialized();
    std::copy(arow.begin(), arow.end(), cells);
    std::fill(cells + arow.size(), cells + out.vars().size(), kUnbound);
  };
  auto emit_matched = [&](IdSpan arow, IdSpan brow) {
    rdf::TermId* cells = out.mutable_rows()->AppendRowUninitialized();
    std::copy(arow.begin(), arow.end(), cells);
    rdf::TermId* tail = cells + arow.size();
    for (size_t k = 0; k < plan.b_new.size(); ++k) {
      tail[k] = brow[static_cast<size_t>(plan.b_new[k])];
    }
  };

  for (IdSpan arow : a.rows()) {
    bool unbound = false;
    uint64_t h = KeyHashOf(arow, a_cols, &unbound);
    bool matched = false;
    if (!unbound) {
      if (a_cols.empty()) {
        // No shared vars: every b row matches (cross), unless b is empty.
        for (IdSpan brow : b.rows()) {
          emit_matched(arow, brow);
          matched = true;
        }
      } else {
        auto it = build.find(h);
        if (it != build.end()) {
          for (size_t r : it->second) {
            IdSpan brow = b.rows()[r];
            if (!KeysEqual(arow, a_cols, brow, b_cols)) continue;
            emit_matched(arow, brow);
            matched = true;
          }
        }
      }
    }
    if (!matched) emit_padded(arow);
  }
  return out;
}

BindingTable UnionTables(const BindingTable& a, const BindingTable& b) {
  std::vector<std::string> vars = a.vars();
  for (const auto& v : b.vars()) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  BindingTable out(vars);
  auto add_all = [&](const BindingTable& t) {
    std::vector<int> mapping(vars.size(), -1);
    for (size_t i = 0; i < vars.size(); ++i) mapping[i] = t.VarIndex(vars[i]);
    for (IdSpan row : t.rows()) {
      rdf::TermId* cells = out.mutable_rows()->AppendRowUninitialized();
      for (size_t i = 0; i < vars.size(); ++i) {
        cells[i] = mapping[i] >= 0 ? row[static_cast<size_t>(mapping[i])]
                                   : kUnbound;
      }
    }
  };
  add_all(a);
  add_all(b);
  return out;
}

BindingTable Project(const BindingTable& table,
                     const std::vector<std::string>& vars) {
  BindingTable out(vars);
  std::vector<int> mapping;
  mapping.reserve(vars.size());
  for (const auto& v : vars) mapping.push_back(table.VarIndex(v));
  for (IdSpan row : table.rows()) {
    rdf::TermId* cells = out.mutable_rows()->AppendRowUninitialized();
    for (size_t i = 0; i < vars.size(); ++i) {
      cells[i] =
          mapping[i] >= 0 ? row[static_cast<size_t>(mapping[i])] : kUnbound;
    }
  }
  return CopyComputedTerms(table, std::move(out));
}

BindingTable Distinct(const BindingTable& table) {
  BindingTable out(table.vars(),
                   table.rows().PermutedByRows(table.rows().DistinctRowIndices()));
  return CopyComputedTerms(table, std::move(out));
}

namespace {

/// Sort key: numeric literals order numerically before everything else
/// orders by serialized form.
struct SortKey {
  bool is_numeric = false;
  double number = 0;
  std::string text;

  bool operator<(const SortKey& rhs) const {
    if (is_numeric != rhs.is_numeric) return is_numeric;  // numbers first
    if (is_numeric) return number < rhs.number;
    return text < rhs.text;
  }
  bool operator==(const SortKey& rhs) const {
    return is_numeric == rhs.is_numeric && number == rhs.number &&
           text == rhs.text;
  }
};

SortKey MakeSortKey(const BindingTable& table, rdf::TermId id,
                    const rdf::Dictionary& dict) {
  SortKey key;
  if (id == kUnbound) {
    key.text = "";
    return key;
  }
  auto term = table.ResolveTerm(id, dict);
  if (!term.ok()) {
    key.text = "<?bad>";
    return key;
  }
  auto num = term->AsNumber();
  if (num.ok()) {
    key.is_numeric = true;
    key.number = *num;
  } else {
    key.text = term->ToNTriples();
  }
  return key;
}

}  // namespace

BindingTable OrderBy(const BindingTable& table,
                     const std::vector<OrderKey>& keys,
                     const rdf::Dictionary& dict) {
  std::vector<int> cols;
  for (const auto& k : keys) cols.push_back(table.VarIndex(k.var));
  std::vector<size_t> order(table.rows().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    for (size_t k = 0; k < keys.size(); ++k) {
      if (cols[k] < 0) continue;
      SortKey a = MakeSortKey(
          table, table.rows().cell(x, static_cast<size_t>(cols[k])), dict);
      SortKey b = MakeSortKey(
          table, table.rows().cell(y, static_cast<size_t>(cols[k])), dict);
      if (a == b) continue;
      bool less = a < b;
      return keys[k].ascending ? less : !less;
    }
    return false;
  });
  BindingTable out(table.vars(), table.rows().PermutedByRows(order));
  return CopyComputedTerms(table, std::move(out));
}

BindingTable Slice(const BindingTable& table, int64_t offset, int64_t limit) {
  int64_t n = static_cast<int64_t>(table.rows().size());
  int64_t begin = std::min(std::max<int64_t>(offset, 0), n);
  int64_t end = limit < 0 ? n : std::min(begin + limit, n);
  std::vector<size_t> order;
  order.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) order.push_back(static_cast<size_t>(i));
  BindingTable out(table.vars(), table.rows().PermutedByRows(order));
  return CopyComputedTerms(table, std::move(out));
}

namespace {

/// Tri-state filter value: error propagates per SPARQL semantics.
enum class Tri { kTrue, kFalse, kError };

Tri Negate(Tri t) {
  if (t == Tri::kError) return Tri::kError;
  return t == Tri::kTrue ? Tri::kFalse : Tri::kTrue;
}

/// A resolved operand: a concrete term or error.
struct Operand {
  bool error = false;
  rdf::Term term;
};

Operand ResolveOperand(const FilterExpr& expr, const BindingTable& table,
                       IdSpan row, const rdf::Dictionary& dict) {
  Operand out;
  if (expr.op == ExprOp::kLiteral) {
    out.term = expr.literal;
    return out;
  }
  if (expr.op == ExprOp::kVar) {
    int idx = table.VarIndex(expr.var);
    if (idx < 0 || row[static_cast<size_t>(idx)] == kUnbound) {
      out.error = true;
      return out;
    }
    auto term = dict.Decode(row[static_cast<size_t>(idx)]);
    if (!term.ok()) {
      out.error = true;
      return out;
    }
    out.term = *term;
    return out;
  }
  out.error = true;
  return out;
}

Tri EvalExpr(const FilterExpr& expr, const BindingTable& table, IdSpan row,
             const rdf::Dictionary& dict) {
  switch (expr.op) {
    case ExprOp::kBound: {
      int idx = table.VarIndex(expr.var);
      bool bound = idx >= 0 && row[static_cast<size_t>(idx)] != kUnbound;
      return bound ? Tri::kTrue : Tri::kFalse;
    }
    case ExprOp::kNot:
      return Negate(EvalExpr(*expr.children[0], table, row, dict));
    case ExprOp::kAnd: {
      Tri a = EvalExpr(*expr.children[0], table, row, dict);
      Tri b = EvalExpr(*expr.children[1], table, row, dict);
      if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
      if (a == Tri::kError || b == Tri::kError) return Tri::kError;
      return Tri::kTrue;
    }
    case ExprOp::kOr: {
      Tri a = EvalExpr(*expr.children[0], table, row, dict);
      Tri b = EvalExpr(*expr.children[1], table, row, dict);
      if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
      if (a == Tri::kError || b == Tri::kError) return Tri::kError;
      return Tri::kFalse;
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      Operand a = ResolveOperand(*expr.children[0], table, row, dict);
      Operand b = ResolveOperand(*expr.children[1], table, row, dict);
      if (a.error || b.error) return Tri::kError;
      auto na = a.term.AsNumber();
      auto nb = b.term.AsNumber();
      int cmp;
      if (na.ok() && nb.ok()) {
        cmp = *na < *nb ? -1 : (*na > *nb ? 1 : 0);
      } else {
        // Term comparison on canonical form; ordering comparisons between
        // non-literals are errors per SPARQL.
        std::string sa = a.term.ToNTriples();
        std::string sb = b.term.ToNTriples();
        if (expr.op != ExprOp::kEq && expr.op != ExprOp::kNe &&
            (!a.term.is_literal() || !b.term.is_literal())) {
          return Tri::kError;
        }
        cmp = sa < sb ? -1 : (sa > sb ? 1 : 0);
      }
      bool r = false;
      switch (expr.op) {
        case ExprOp::kEq: r = cmp == 0; break;
        case ExprOp::kNe: r = cmp != 0; break;
        case ExprOp::kLt: r = cmp < 0; break;
        case ExprOp::kLe: r = cmp <= 0; break;
        case ExprOp::kGt: r = cmp > 0; break;
        case ExprOp::kGe: r = cmp >= 0; break;
        default: break;
      }
      return r ? Tri::kTrue : Tri::kFalse;
    }
    case ExprOp::kVar:
    case ExprOp::kLiteral:
      // A bare term in boolean position: effective boolean value of
      // non-empty literals; errors otherwise. Keep it simple: error.
      return Tri::kError;
  }
  return Tri::kError;
}

}  // namespace

bool EvalFilter(const FilterExpr& expr, const BindingTable& table, IdSpan row,
                const rdf::Dictionary& dict) {
  return EvalExpr(expr, table, row, dict) == Tri::kTrue;
}

BindingTable ApplyFilter(const BindingTable& table, const FilterExpr& expr,
                         const rdf::Dictionary& dict) {
  BindingTable out(table.vars());
  for (IdSpan row : table.rows()) {
    if (EvalFilter(expr, table, row, dict)) out.AddRowSpan(row);
  }
  return out;
}

}  // namespace rdfspark::sparql
