#ifndef RDFSPARK_SPARQL_SERIALIZE_H_
#define RDFSPARK_SPARQL_SERIALIZE_H_

#include <string>

#include "sparql/ast.h"

namespace rdfspark::sparql {

/// Serializes a parsed query back to SPARQL text. The output always
/// re-parses to an equivalent query (round-trip tested), which makes it
/// suitable for logging, shipping queries between components, and the
/// workload descriptions engines persist (e.g. HAQWA's frequent-query
/// option).
std::string ToSparql(const Query& query);

/// Serializes one group pattern (indented by `indent` levels).
std::string ToSparql(const GroupPattern& group, int indent = 0);

/// Serializes a filter expression.
std::string ToSparql(const FilterExpr& expr);

}  // namespace rdfspark::sparql

#endif  // RDFSPARK_SPARQL_SERIALIZE_H_
