#include "sparql/eval.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace rdfspark::sparql {

namespace {

/// Resolves a constant pattern slot to an id; nullopt-wrapped in IdPattern
/// terms. Returns false if the constant does not exist in the dictionary
/// (then the pattern matches nothing).
bool ResolveConst(const rdf::Dictionary& dict, const PatternTerm& t,
                  std::optional<rdf::TermId>* out) {
  if (t.is_variable()) {
    out->reset();
    return true;
  }
  auto id = dict.Lookup(t.term());
  if (!id.ok()) return false;
  *out = *id;
  return true;
}

}  // namespace

BindingTable ReferenceEvaluator::ExtendWithPattern(
    const BindingTable& table, const TriplePattern& pattern) const {
  const rdf::Dictionary& dict = store_->dictionary();
  rdf::IdPattern base;
  if (!ResolveConst(dict, pattern.s, &base.s) ||
      !ResolveConst(dict, pattern.p, &base.p) ||
      !ResolveConst(dict, pattern.o, &base.o)) {
    // A constant term that is absent from the data: empty result, but the
    // output schema still gains the pattern's variables.
    std::vector<std::string> vars = table.vars();
    for (const auto& v : pattern.Variables()) {
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        vars.push_back(v);
      }
    }
    return BindingTable(vars);
  }

  // Output schema: existing vars plus new pattern vars.
  std::vector<std::string> vars = table.vars();
  std::vector<std::string> new_vars;
  for (const auto& v : pattern.Variables()) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
      new_vars.push_back(v);
    }
  }
  BindingTable out(vars);

  int s_idx = pattern.s.is_variable() ? table.VarIndex(pattern.s.var()) : -1;
  int p_idx = pattern.p.is_variable() ? table.VarIndex(pattern.p.var()) : -1;
  int o_idx = pattern.o.is_variable() ? table.VarIndex(pattern.o.var()) : -1;

  for (const auto& row : table.rows()) {
    rdf::IdPattern q = base;
    if (s_idx >= 0 && row[static_cast<size_t>(s_idx)] != kUnbound) {
      q.s = row[static_cast<size_t>(s_idx)];
    }
    if (p_idx >= 0 && row[static_cast<size_t>(p_idx)] != kUnbound) {
      q.p = row[static_cast<size_t>(p_idx)];
    }
    if (o_idx >= 0 && row[static_cast<size_t>(o_idx)] != kUnbound) {
      q.o = row[static_cast<size_t>(o_idx)];
    }
    for (const auto& t : store_->Match(q)) {
      // Check intra-pattern variable repetition, e.g. ?x ?p ?x.
      std::vector<rdf::TermId> extended(row.begin(), row.end());
      extended.resize(vars.size(), kUnbound);
      bool ok = true;
      auto bind = [&](const PatternTerm& slot, rdf::TermId value) {
        if (!slot.is_variable()) return;
        int idx = out.VarIndex(slot.var());
        rdf::TermId& cell = extended[static_cast<size_t>(idx)];
        if (cell == kUnbound) {
          cell = value;
        } else if (cell != value) {
          ok = false;
        }
      };
      bind(pattern.s, t.s);
      bind(pattern.p, t.p);
      bind(pattern.o, t.o);
      if (ok) out.AddRow(std::move(extended));
    }
  }
  return out;
}

BindingTable ReferenceEvaluator::EvaluateBgp(
    const std::vector<TriplePattern>& bgp) const {
  BindingTable table = BindingTable::Unit();
  for (const auto& pattern : bgp) {
    table = ExtendWithPattern(table, pattern);
  }
  return table;
}

Result<BindingTable> ReferenceEvaluator::EvaluateGroup(
    const GroupPattern& group) const {
  BindingTable table = EvaluateBgp(group.bgp);
  for (const auto& alternatives : group.unions) {
    BindingTable united;
    bool first = true;
    for (const auto& alt : alternatives) {
      RDFSPARK_ASSIGN_OR_RETURN(BindingTable t, EvaluateGroup(alt));
      united = first ? std::move(t) : UnionTables(united, t);
      first = false;
    }
    table = HashJoin(table, united);
  }
  for (const auto& opt : group.optionals) {
    RDFSPARK_ASSIGN_OR_RETURN(BindingTable t, EvaluateGroup(opt));
    table = LeftJoin(table, t);
  }
  for (const auto& filter : group.filters) {
    table = ApplyFilter(table, *filter, store_->dictionary());
  }
  return table;
}

Result<BindingTable> ReferenceEvaluator::Evaluate(const Query& query) const {
  if (query.form == QueryForm::kConstruct ||
      query.form == QueryForm::kDescribe) {
    return Status::InvalidArgument(
        "CONSTRUCT/DESCRIBE produce triples; use EvaluateConstruct / "
        "EvaluateDescribe");
  }
  RDFSPARK_ASSIGN_OR_RETURN(BindingTable table, EvaluateGroup(query.where));
  if (query.form == QueryForm::kAsk) {
    BindingTable out;
    if (table.num_rows() > 0) out.AddRow({});
    return out;
  }
  return ApplyModifiers(query, std::move(table), store_->dictionary());
}

Result<std::vector<rdf::Triple>> ReferenceEvaluator::EvaluateConstruct(
    const Query& query) const {
  if (query.form != QueryForm::kConstruct) {
    return Status::InvalidArgument("not a CONSTRUCT query");
  }
  RDFSPARK_ASSIGN_OR_RETURN(BindingTable table, EvaluateGroup(query.where));
  // Solution modifiers (ORDER/LIMIT/OFFSET) apply to the solutions before
  // template instantiation; the projection keeps all pattern variables.
  table = ApplyModifiers(query, std::move(table), store_->dictionary());
  return InstantiateTemplate(query.construct_template, table,
                             store_->dictionary());
}

Result<std::vector<rdf::Triple>> ReferenceEvaluator::EvaluateDescribe(
    const Query& query) const {
  if (query.form != QueryForm::kDescribe) {
    return Status::InvalidArgument("not a DESCRIBE query");
  }
  std::vector<rdf::TermId> resources;
  BindingTable table;
  bool evaluated = false;
  for (const auto& target : query.describe_targets) {
    if (target.is_variable()) {
      if (!evaluated) {
        RDFSPARK_ASSIGN_OR_RETURN(table, EvaluateGroup(query.where));
        evaluated = true;
      }
      int idx = table.VarIndex(target.var());
      if (idx < 0) continue;
      for (const auto& row : table.rows()) {
        rdf::TermId id = row[static_cast<size_t>(idx)];
        if (id != kUnbound) resources.push_back(id);
      }
    } else {
      auto id = store_->dictionary().Lookup(target.term());
      if (id.ok()) resources.push_back(*id);
    }
  }
  return DescribeResources(resources, *store_);
}

namespace {

/// Formats a double as the shortest faithful literal.
rdf::Term NumberLiteral(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    return rdf::Term::Literal(
        std::to_string(static_cast<int64_t>(value)), rdf::kXsdInteger);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return rdf::Term::Literal(buf, rdf::kXsdDouble);
}

}  // namespace

BindingTable ApplyAggregation(const Query& query, const BindingTable& table,
                              const rdf::Dictionary& dict) {
  std::vector<int> key_cols;
  for (const auto& g : query.group_by) key_cols.push_back(table.VarIndex(g));

  struct Acc {
    uint64_t count = 0;
    double sum = 0;
    uint64_t numeric = 0;
    rdf::TermId min_id = kUnbound;
    rdf::TermId max_id = kUnbound;
    double min_val = 0;
    double max_val = 0;
  };
  // Group rows. With no GROUP BY, a single global group exists even for an
  // empty input (COUNT over nothing is 0).
  std::map<std::vector<rdf::TermId>, std::vector<Acc>> groups;
  if (query.group_by.empty()) {
    groups[{}] = std::vector<Acc>(query.aggregates.size());
  }
  for (const auto& row : table.rows()) {
    std::vector<rdf::TermId> key;
    bool key_ok = true;
    for (int c : key_cols) {
      if (c < 0) {
        key_ok = false;
        break;
      }
      key.push_back(row[static_cast<size_t>(c)]);
    }
    if (!key_ok) continue;
    auto& accs = groups[key];
    if (accs.empty()) accs.resize(query.aggregates.size());
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const SelectAggregate& agg = query.aggregates[a];
      Acc& acc = accs[a];
      rdf::TermId value = kUnbound;
      if (agg.var.empty()) {  // COUNT(*)
        ++acc.count;
        continue;
      }
      int col = table.VarIndex(agg.var);
      if (col >= 0) value = row[static_cast<size_t>(col)];
      if (value == kUnbound) continue;
      ++acc.count;
      auto term = table.ResolveTerm(value, dict);
      auto num = term.ok() ? term->AsNumber() : Status::NotFound("");
      if (num.ok()) {
        ++acc.numeric;
        acc.sum += *num;
        if (acc.min_id == kUnbound || *num < acc.min_val) {
          acc.min_id = value;
          acc.min_val = *num;
        }
        if (acc.max_id == kUnbound || *num > acc.max_val) {
          acc.max_id = value;
          acc.max_val = *num;
        }
      }
    }
  }

  std::vector<std::string> out_vars = query.group_by;
  for (const auto& agg : query.aggregates) out_vars.push_back(agg.alias);
  BindingTable out(out_vars);
  for (const auto& [key, accs] : groups) {
    std::vector<rdf::TermId> row = key;
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const SelectAggregate& agg = query.aggregates[a];
      const Acc& acc = accs[a];
      switch (agg.op) {
        case AggregateOp::kCount:
          row.push_back(out.AddComputedTerm(NumberLiteral(
              static_cast<double>(acc.count))));
          break;
        case AggregateOp::kSum:
          row.push_back(out.AddComputedTerm(NumberLiteral(acc.sum)));
          break;
        case AggregateOp::kAvg:
          row.push_back(out.AddComputedTerm(
              acc.numeric
                  ? rdf::Term::Literal(
                        [&] {
                          char buf[64];
                          std::snprintf(buf, sizeof(buf), "%.6g",
                                        acc.sum / double(acc.numeric));
                          return std::string(buf);
                        }(),
                        rdf::kXsdDouble)
                  : NumberLiteral(0)));
          break;
        case AggregateOp::kMin:
          row.push_back(acc.min_id);
          break;
        case AggregateOp::kMax:
          row.push_back(acc.max_id);
          break;
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Result<std::vector<rdf::Triple>> InstantiateTemplate(
    const std::vector<TriplePattern>& construct_template,
    const BindingTable& table, const rdf::Dictionary& dict) {
  std::vector<rdf::Triple> out;
  std::set<std::string> seen;
  for (const auto& row : table.rows()) {
    for (const auto& pattern : construct_template) {
      auto resolve = [&](const PatternTerm& slot,
                         rdf::Term* term) -> bool {
        if (!slot.is_variable()) {
          *term = slot.term();
          return true;
        }
        int idx = table.VarIndex(slot.var());
        if (idx < 0) return false;
        rdf::TermId id = row[static_cast<size_t>(idx)];
        if (id == kUnbound) return false;
        auto resolved = table.ResolveTerm(id, dict);
        if (!resolved.ok()) return false;
        *term = *resolved;
        return true;
      };
      rdf::Triple triple;
      if (!resolve(pattern.s, &triple.subject) ||
          !resolve(pattern.p, &triple.predicate) ||
          !resolve(pattern.o, &triple.object)) {
        continue;
      }
      // RDF well-formedness: no literal subjects, URI predicates only.
      if (triple.subject.is_literal() || !triple.predicate.is_uri()) {
        continue;
      }
      std::string key = triple.ToNTriples();
      if (seen.insert(std::move(key)).second) {
        out.push_back(std::move(triple));
      }
    }
  }
  return out;
}

std::vector<rdf::Triple> DescribeResources(
    const std::vector<rdf::TermId>& resources,
    const rdf::TripleStore& store) {
  std::vector<rdf::Triple> out;
  std::set<std::string> seen;
  const rdf::Dictionary& dict = store.dictionary();
  for (rdf::TermId id : resources) {
    for (const auto& t : store.Match({id, std::nullopt, std::nullopt})) {
      auto s = dict.Decode(t.s);
      auto p = dict.Decode(t.p);
      auto o = dict.Decode(t.o);
      if (!s.ok() || !p.ok() || !o.ok()) continue;
      rdf::Triple triple{*s, *p, *o};
      std::string key = triple.ToNTriples();
      if (seen.insert(std::move(key)).second) {
        out.push_back(std::move(triple));
      }
    }
  }
  return out;
}

BindingTable ApplyModifiers(const Query& query, BindingTable table,
                            const rdf::Dictionary& dict) {
  if (query.IsAggregate()) {
    table = ApplyAggregation(query, table, dict);
  }
  if (!query.order_by.empty()) {
    table = OrderBy(table, query.order_by, dict);
  }
  table = Project(table, query.EffectiveProjection());
  if (query.distinct) table = Distinct(table);
  if (query.offset > 0 || query.limit >= 0) {
    table = Slice(table, query.offset, query.limit);
  }
  return table;
}

}  // namespace rdfspark::sparql
