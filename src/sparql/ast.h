#ifndef RDFSPARK_SPARQL_AST_H_
#define RDFSPARK_SPARQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rdf/term.h"

namespace rdfspark::sparql {

/// One slot of a triple pattern: a variable ("?x") or a constant term.
class PatternTerm {
 public:
  static PatternTerm Var(std::string name) {
    PatternTerm t;
    t.is_variable_ = true;
    t.var_ = std::move(name);
    return t;
  }
  static PatternTerm Const(rdf::Term term) {
    PatternTerm t;
    t.is_variable_ = false;
    t.term_ = std::move(term);
    return t;
  }

  bool is_variable() const { return is_variable_; }
  /// Variable name without the leading '?'.
  const std::string& var() const { return var_; }
  const rdf::Term& term() const { return term_; }

  std::string ToString() const {
    return is_variable_ ? "?" + var_ : term_.ToNTriples();
  }

  bool operator==(const PatternTerm&) const = default;

 private:
  bool is_variable_ = false;
  std::string var_;
  rdf::Term term_;
};

/// A SPARQL triple pattern (§II.B): each position may be a variable or a
/// constant.
struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  bool operator==(const TriplePattern&) const = default;

  std::string ToString() const {
    return s.ToString() + " " + p.ToString() + " " + o.ToString() + " .";
  }

  /// Variables used by this pattern, in s/p/o order, without duplicates.
  std::vector<std::string> Variables() const;

  /// Number of non-variable slots (S2RDF orders by this).
  int BoundCount() const {
    return (s.is_variable() ? 0 : 1) + (p.is_variable() ? 0 : 1) +
           (o.is_variable() ? 0 : 1);
  }
};

/// FILTER expression tree over variables and literals.
enum class ExprOp {
  kVar,      // leaf: variable reference
  kLiteral,  // leaf: constant term
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kBound,  // BOUND(?x)
};

struct FilterExpr {
  ExprOp op = ExprOp::kLiteral;
  std::string var;        // for kVar / kBound
  rdf::Term literal;      // for kLiteral
  std::vector<std::shared_ptr<FilterExpr>> children;

  static std::shared_ptr<FilterExpr> MakeVar(std::string name);
  static std::shared_ptr<FilterExpr> MakeLiteral(rdf::Term term);
  static std::shared_ptr<FilterExpr> MakeUnary(
      ExprOp op, std::shared_ptr<FilterExpr> child);
  static std::shared_ptr<FilterExpr> MakeBinary(
      ExprOp op, std::shared_ptr<FilterExpr> lhs,
      std::shared_ptr<FilterExpr> rhs);

  /// Variables referenced anywhere in the expression.
  void CollectVariables(std::vector<std::string>* out) const;
};

/// A group graph pattern: a BGP plus filters, OPTIONAL sub-groups, and
/// UNION alternatives (each unions entry is a list of alternative groups
/// whose results are concatenated, then joined with the rest).
struct GroupPattern {
  std::vector<TriplePattern> bgp;
  std::vector<std::shared_ptr<FilterExpr>> filters;
  std::vector<GroupPattern> optionals;
  std::vector<std::vector<GroupPattern>> unions;

  bool IsPlainBgp() const {
    return filters.empty() && optionals.empty() && unions.empty();
  }

  /// All variables appearing anywhere in the group.
  std::vector<std::string> Variables() const;
};

/// SPARQL query forms — the four output types of §II.B: "yes/no answers"
/// (ASK), "selections of values of the variables" (SELECT), "construction
/// of new triples" (CONSTRUCT), and "descriptions of resources" (DESCRIBE).
enum class QueryForm { kSelect, kAsk, kConstruct, kDescribe };

struct OrderKey {
  std::string var;
  bool ascending = true;
  bool operator==(const OrderKey&) const = default;
};

/// Aggregate functions of the BGP+ fragment ("operations (BGP+), such as
/// average (AVG)", §III).
enum class AggregateOp { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateOpName(AggregateOp op);

/// One "(AGG(?v) AS ?alias)" select item. `var` empty means COUNT(*).
struct SelectAggregate {
  AggregateOp op = AggregateOp::kCount;
  std::string var;
  std::string alias;
  bool operator==(const SelectAggregate&) const = default;
};

/// Parsed query: pattern matching part + solution modifiers (§II.B).
struct Query {
  QueryForm form = QueryForm::kSelect;
  bool distinct = false;
  /// Empty means "*": all variables in the pattern (unless aggregating).
  std::vector<std::string> select_vars;
  /// Aggregate select items; non-empty makes this an aggregate query whose
  /// plain select_vars act as (and must be) grouping keys.
  std::vector<SelectAggregate> aggregates;
  std::vector<std::string> group_by;
  /// CONSTRUCT template patterns (kConstruct only).
  std::vector<TriplePattern> construct_template;
  /// DESCRIBE targets: variables or constant resources (kDescribe only).
  std::vector<PatternTerm> describe_targets;
  GroupPattern where;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;  // -1: none
  int64_t offset = 0;

  bool IsAggregate() const { return !aggregates.empty() || !group_by.empty(); }

  /// The projection actually used (select_vars, or all pattern variables
  /// when the query used '*').
  std::vector<std::string> EffectiveProjection() const;
};

}  // namespace rdfspark::sparql

#endif  // RDFSPARK_SPARQL_AST_H_
