#include "sparql/analysis.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>

namespace rdfspark::sparql {

using systems::plan::Diagnostic;
using systems::plan::Severity;

namespace {

Diagnostic Make(Severity severity, const char* rule, std::string path,
                std::string message, std::string hint) {
  Diagnostic d;
  d.severity = severity;
  d.rule = rule;
  d.node_path = std::move(path);
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

void AddPatternVars(const TriplePattern& t,
                    std::map<std::string, int>* counts) {
  if (t.s.is_variable()) ++(*counts)[t.s.var()];
  if (t.p.is_variable()) ++(*counts)[t.p.var()];
  if (t.o.is_variable()) ++(*counts)[t.o.var()];
}

/// Occurrence counts of variables in *pattern positions* across the whole
/// subtree (filters don't bind, so they are excluded here).
void CollectPatternVarCounts(const GroupPattern& g,
                             std::map<std::string, int>* counts) {
  for (const auto& t : g.bgp) AddPatternVars(t, counts);
  for (const auto& opt : g.optionals) CollectPatternVarCounts(opt, counts);
  for (const auto& alts : g.unions) {
    for (const auto& alt : alts) CollectPatternVarCounts(alt, counts);
  }
}

void CollectFilterVars(const GroupPattern& g, std::set<std::string>* out) {
  std::vector<std::string> vars;
  for (const auto& f : g.filters) f->CollectVariables(&vars);
  out->insert(vars.begin(), vars.end());
  for (const auto& opt : g.optionals) CollectFilterVars(opt, out);
  for (const auto& alts : g.unions) {
    for (const auto& alt : alts) CollectFilterVars(alt, out);
  }
}

/// Flattens the top-level AND chain of a filter into conjuncts.
void FlattenConjuncts(const std::shared_ptr<FilterExpr>& e,
                      std::vector<const FilterExpr*>* out) {
  if (e == nullptr) return;
  if (e->op == ExprOp::kAnd) {
    for (const auto& c : e->children) FlattenConjuncts(c, out);
    return;
  }
  out->push_back(e.get());
}

/// Variables referenced as comparison operands (kVar, not kBound) within
/// `e`. `definite` records whether the reference sits on a pure AND path
/// from the conjunct root — if so, an error there makes the whole filter
/// false; under OR/NOT it may be masked.
void CollectComparisonVars(const FilterExpr& e, bool definite,
                           std::map<std::string, bool>* out) {
  switch (e.op) {
    case ExprOp::kVar: {
      auto it = out->find(e.var);
      if (it == out->end()) {
        (*out)[e.var] = definite;
      } else {
        it->second = it->second || definite;
      }
      return;
    }
    case ExprOp::kBound:
    case ExprOp::kLiteral:
      return;
    case ExprOp::kOr:
    case ExprOp::kNot:
      for (const auto& c : e.children) CollectComparisonVars(*c, false, out);
      return;
    default:
      for (const auto& c : e.children) {
        CollectComparisonVars(*c, definite, out);
      }
      return;
  }
}

/// Numeric-aware literal equality ("1" vs "1.0" are the same value).
bool LiteralsEqual(const rdf::Term& a, const rdf::Term& b) {
  auto na = a.AsNumber();
  auto nb = b.AsNumber();
  if (na.ok() && nb.ok()) return *na == *nb;
  return a == b;
}

/// One var-vs-literal constraint harvested from a conjunct.
struct Constraint {
  ExprOp op;  // kEq/kNe/kLt/kLe/kGt/kGe, normalized to "var OP literal".
  rdf::Term literal;
  int filter_index;  // which FILTER of the group it came from
};

ExprOp FlipComparison(ExprOp op) {
  switch (op) {
    case ExprOp::kLt: return ExprOp::kGt;
    case ExprOp::kLe: return ExprOp::kGe;
    case ExprOp::kGt: return ExprOp::kLt;
    case ExprOp::kGe: return ExprOp::kLe;
    default: return op;  // kEq/kNe are symmetric
  }
}

bool IsComparison(ExprOp op) {
  return op == ExprOp::kEq || op == ExprOp::kNe || op == ExprOp::kLt ||
         op == ExprOp::kLe || op == ExprOp::kGt || op == ExprOp::kGe;
}

/// Evaluates a literal-vs-literal comparison if statically decidable.
std::optional<bool> EvalConstComparison(ExprOp op, const rdf::Term& a,
                                        const rdf::Term& b) {
  auto na = a.AsNumber();
  auto nb = b.AsNumber();
  int cmp;
  if (na.ok() && nb.ok()) {
    cmp = *na < *nb ? -1 : (*na > *nb ? 1 : 0);
  } else if (op == ExprOp::kEq || op == ExprOp::kNe) {
    std::string sa = a.ToNTriples();
    std::string sb = b.ToNTriples();
    cmp = sa < sb ? -1 : (sa > sb ? 1 : 0);
  } else {
    return std::nullopt;  // ordering of non-numeric literals: runtime rules
  }
  switch (op) {
    case ExprOp::kEq: return cmp == 0;
    case ExprOp::kNe: return cmp != 0;
    case ExprOp::kLt: return cmp < 0;
    case ExprOp::kLe: return cmp <= 0;
    case ExprOp::kGt: return cmp > 0;
    case ExprOp::kGe: return cmp >= 0;
    default: return std::nullopt;
  }
}

/// Checks one variable's accumulated conjunct constraints for emptiness.
/// Returns a human-readable reason when no value can satisfy all of them.
std::optional<std::string> FindContradiction(
    const std::string& var, const std::vector<Constraint>& cs) {
  // Equality pairs: two different required values, or required == forbidden.
  for (size_t i = 0; i < cs.size(); ++i) {
    if (cs[i].op != ExprOp::kEq) continue;
    for (size_t j = 0; j < cs.size(); ++j) {
      if (i == j) continue;
      if (cs[j].op == ExprOp::kEq &&
          !LiteralsEqual(cs[i].literal, cs[j].literal)) {
        return "?" + var + " = " + cs[i].literal.ToNTriples() + " and ?" +
               var + " = " + cs[j].literal.ToNTriples() +
               " cannot both hold";
      }
      if (cs[j].op == ExprOp::kNe &&
          LiteralsEqual(cs[i].literal, cs[j].literal)) {
        return "?" + var + " = " + cs[i].literal.ToNTriples() +
               " contradicts ?" + var +
               " != " + cs[j].literal.ToNTriples();
      }
    }
  }
  // Numeric interval: intersect lower/upper bounds and equalities.
  double lower = -HUGE_VAL, upper = HUGE_VAL;
  bool lower_strict = false, upper_strict = false, any_bound = false;
  for (const auto& c : cs) {
    auto n = c.literal.AsNumber();
    if (!n.ok()) continue;
    switch (c.op) {
      case ExprOp::kGt:
      case ExprOp::kGe:
        if (*n > lower || (*n == lower && c.op == ExprOp::kGt)) {
          lower = *n;
          lower_strict = c.op == ExprOp::kGt;
        }
        any_bound = true;
        break;
      case ExprOp::kLt:
      case ExprOp::kLe:
        if (*n < upper || (*n == upper && c.op == ExprOp::kLt)) {
          upper = *n;
          upper_strict = c.op == ExprOp::kLt;
        }
        any_bound = true;
        break;
      case ExprOp::kEq:
        // x = n is the interval [n, n].
        if (*n > lower) {
          lower = *n;
          lower_strict = false;
        }
        if (*n < upper) {
          upper = *n;
          upper_strict = false;
        }
        any_bound = true;
        break;
      default:
        break;
    }
  }
  if (any_bound &&
      (lower > upper || (lower == upper && (lower_strict || upper_strict)))) {
    return "numeric constraints on ?" + var + " bound it below " +
           std::to_string(upper) + " and above " + std::to_string(lower) +
           " simultaneously";
  }
  return std::nullopt;
}

/// Shared traversal state for the per-group rules (QA002/QA003/QA004).
struct GroupWalker {
  const QueryAnalysisOptions* options;
  const std::map<std::string, int>* total_counts;  // whole-query pattern vars
  std::vector<Diagnostic>* qa002;
  std::vector<Diagnostic>* qa003;
  std::vector<Diagnostic>* qa004;
  std::vector<Diagnostic>* qa005;

  /// `top_level` is true only for the conjunctive spine of the WHERE clause
  /// (the root group): a contradiction there empties the whole result, so
  /// QA002 reports ERROR; inside OPTIONAL/UNION branches it only empties
  /// the branch, so WARN.
  void Walk(const GroupPattern& g, const std::string& path, bool top_level,
            std::set<std::string> mandatory) {
    CheckFilters(g, path, top_level);
    CheckComponents(g, path);
    CheckPredicates(g, path);

    // QA003 needs the mandatory (certainly-bound) vars of the ancestors:
    // the BGPs of every enclosing group, but not sibling optionals/unions.
    for (const auto& t : g.bgp) {
      std::map<std::string, int> vars;
      AddPatternVars(t, &vars);
      for (const auto& [v, n] : vars) mandatory.insert(v);
    }
    for (size_t i = 0; i < g.optionals.size(); ++i) {
      std::string opath = path + ".optional[" + std::to_string(i) + "]";
      CheckWellDesigned(g.optionals[i], opath, mandatory);
      Walk(g.optionals[i], opath, false, mandatory);
    }
    for (size_t i = 0; i < g.unions.size(); ++i) {
      for (size_t j = 0; j < g.unions[i].size(); ++j) {
        std::string upath = path + ".union[" + std::to_string(i) + "][" +
                            std::to_string(j) + "]";
        Walk(g.unions[i][j], upath, false, mandatory);
      }
    }
  }

  // QA002 — unsatisfiable / vacuous filters of this group.
  void CheckFilters(const GroupPattern& g, const std::string& path,
                    bool top_level) {
    if (g.filters.empty()) return;
    std::map<std::string, int> bound_here;
    CollectPatternVarCounts(g, &bound_here);

    std::map<std::string, std::vector<Constraint>> constraints;
    for (size_t fi = 0; fi < g.filters.size(); ++fi) {
      std::string fpath = path + ".filter[" + std::to_string(fi) + "]";
      std::vector<const FilterExpr*> conjuncts;
      FlattenConjuncts(g.filters[fi], &conjuncts);
      for (const FilterExpr* c : conjuncts) {
        // Constant-false conjunct.
        if (IsComparison(c->op) && c->children.size() == 2 &&
            c->children[0]->op == ExprOp::kLiteral &&
            c->children[1]->op == ExprOp::kLiteral) {
          auto value = EvalConstComparison(c->op, c->children[0]->literal,
                                           c->children[1]->literal);
          if (value.has_value() && !*value) {
            qa002->push_back(Make(
                top_level ? Severity::kError : Severity::kWarn, "QA002",
                fpath, "filter conjunct compares constants and is false",
                "remove the filter or fix the constants"));
          }
        }
        // Var-vs-literal constraint (either operand order).
        if (IsComparison(c->op) && c->children.size() == 2) {
          const FilterExpr* lhs = c->children[0].get();
          const FilterExpr* rhs = c->children[1].get();
          if (lhs->op == ExprOp::kVar && rhs->op == ExprOp::kLiteral) {
            constraints[lhs->var].push_back(
                {c->op, rhs->literal, static_cast<int>(fi)});
          } else if (lhs->op == ExprOp::kLiteral &&
                     rhs->op == ExprOp::kVar) {
            constraints[rhs->var].push_back(
                {FlipComparison(c->op), lhs->literal, static_cast<int>(fi)});
          }
        }
        // References to variables no pattern in this group binds: the
        // comparison evaluates to error, which SPARQL treats as false.
        std::map<std::string, bool> refs;
        CollectComparisonVars(*c, true, &refs);
        for (const auto& [v, definite] : refs) {
          if (bound_here.contains(v)) continue;
          bool hard = top_level && definite;
          qa002->push_back(Make(
              hard ? Severity::kError : Severity::kWarn, "QA002", fpath,
              std::string("filter compares ?") + v +
                  ", which no pattern in this group binds; the comparison "
                  "errors and the conjunct " +
                  (definite ? "eliminates every row"
                            : "can never contribute"),
              "bind ?" + v + " in the group or guard with BOUND(?" + v +
                  ")"));
        }
      }
    }
    for (const auto& [v, cs] : constraints) {
      auto reason = FindContradiction(v, cs);
      if (reason.has_value()) {
        qa002->push_back(Make(top_level ? Severity::kError : Severity::kWarn,
                              "QA002", path,
                              "filters are unsatisfiable: " + *reason,
                              "no binding of ?" + v +
                                  " can pass; drop or correct one "
                                  "constraint"));
      }
    }
  }

  // QA003 — non-well-designed OPTIONAL (Pérez et al.'s criterion): a
  // variable of the optional that the mandatory ancestors do not bind but
  // that occurs elsewhere in the query makes the result depend on
  // evaluation order.
  void CheckWellDesigned(const GroupPattern& opt, const std::string& path,
                         const std::set<std::string>& mandatory) {
    std::map<std::string, int> inside;
    CollectPatternVarCounts(opt, &inside);
    for (const auto& [v, count] : inside) {
      if (mandatory.contains(v)) continue;
      auto total = total_counts->find(v);
      if (total != total_counts->end() && total->second > count) {
        qa003->push_back(
            Make(Severity::kWarn, "QA003", path,
                 "optional uses ?" + v +
                     ", which its mandatory scope does not bind but other "
                     "parts of the query do; the pattern is not "
                     "well-designed and results depend on evaluation order",
                 "bind ?" + v +
                     " in the outer BGP or rename it inside the optional"));
      }
    }
  }

  // QA004 — disconnected components of one group's BGP.
  void CheckComponents(const GroupPattern& g, const std::string& path) {
    size_t n = g.bgp.size();
    if (n < 2) return;
    std::vector<size_t> root(n);
    for (size_t i = 0; i < n; ++i) root[i] = i;
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (root[x] != x) {
        root[x] = root[root[x]];
        x = root[x];
      }
      return x;
    };
    std::map<std::string, size_t> first_user;
    for (size_t i = 0; i < n; ++i) {
      std::map<std::string, int> vars;
      AddPatternVars(g.bgp[i], &vars);
      for (const auto& [v, count] : vars) {
        auto it = first_user.find(v);
        if (it == first_user.end()) {
          first_user[v] = i;
        } else {
          root[find(i)] = find(it->second);
        }
      }
    }
    std::set<size_t> components;
    for (size_t i = 0; i < n; ++i) components.insert(find(i));
    if (components.size() >= 2) {
      qa004->push_back(
          Make(Severity::kWarn, "QA004", path,
               std::to_string(components.size()) +
                   " groups of patterns share no variable; every engine "
                   "joins them as a cartesian product",
               "connect the components through a shared variable or split "
               "the query"));
    }
  }

  // QA005 — unbounded predicate on a vertically-partitioned layout.
  void CheckPredicates(const GroupPattern& g, const std::string& path) {
    if (!options->vertical_partitioned) return;
    for (size_t i = 0; i < g.bgp.size(); ++i) {
      if (!g.bgp[i].p.is_variable()) continue;
      qa005->push_back(Make(
          Severity::kWarn, "QA005",
          path + ".bgp[" + std::to_string(i) + "]",
          "predicate variable ?" + g.bgp[i].p.var() +
              " on a vertically-partitioned store unions a scan of every "
              "predicate table",
          "bind the predicate, or use an engine with a triples-table "
          "layout"));
    }
  }
};

}  // namespace

std::vector<Diagnostic> AnalyzeQuery(const Query& query,
                                     const QueryAnalysisOptions& options) {
  std::vector<Diagnostic> out;

  std::map<std::string, int> bound;
  CollectPatternVarCounts(query.where, &bound);

  // ---- QA001: projection soundness + dead variables.
  for (const auto& v : query.select_vars) {
    if (!bound.contains(v)) {
      out.push_back(Make(Severity::kError, "QA001", "select",
                         "projected variable ?" + v +
                             " is never bound by any pattern; the column "
                             "can only be unbound",
                         "bind ?" + v + " in the WHERE clause or drop it "
                                        "from SELECT"));
    }
  }
  for (const auto& agg : query.aggregates) {
    if (!agg.var.empty() && !bound.contains(agg.var)) {
      out.push_back(Make(Severity::kError, "QA001", "select",
                         std::string(AggregateOpName(agg.op)) + "(?" +
                             agg.var + ") aggregates a variable never "
                                       "bound by any pattern",
                         "bind ?" + agg.var + " or aggregate over *"));
    }
  }
  for (const auto& v : query.group_by) {
    if (!bound.contains(v)) {
      out.push_back(Make(Severity::kError, "QA001", "group by",
                         "grouping key ?" + v +
                             " is never bound by any pattern",
                         "bind ?" + v + " in the WHERE clause"));
    }
  }
  // Pattern variables plus aggregate aliases (ORDER BY ?cnt is legitimate).
  std::set<std::string> order_names;
  for (const auto& [v, n] : bound) order_names.insert(v);
  for (const auto& agg : query.aggregates) order_names.insert(agg.alias);
  for (const auto& key : query.order_by) {
    if (!order_names.contains(key.var)) {
      out.push_back(Make(Severity::kWarn, "QA001", "order by",
                         "sort key ?" + key.var +
                             " is never bound; the ordering is vacuous",
                         "bind ?" + key.var + " or remove the sort key"));
    }
  }
  for (const auto& t : query.construct_template) {
    std::map<std::string, int> tvars;
    AddPatternVars(t, &tvars);
    for (const auto& [v, n] : tvars) {
      if (!bound.contains(v)) {
        out.push_back(Make(Severity::kError, "QA001", "construct",
                           "template variable ?" + v +
                               " is never bound; every instantiation of "
                               "this template is skipped",
                           "bind ?" + v + " in the WHERE clause"));
      }
    }
  }
  for (const auto& target : query.describe_targets) {
    if (target.is_variable() && !bound.contains(target.var())) {
      out.push_back(Make(Severity::kError, "QA001", "describe",
                         "described variable ?" + target.var() +
                             " is never bound by any pattern",
                         "bind ?" + target.var() + " in the WHERE clause"));
    }
  }
  // Dead variables: bound exactly once and used nowhere — the position is
  // effectively a wildcard. Only meaningful under an explicit projection
  // ('*' uses everything; ASK has no projection to be absent from).
  bool explicit_projection = !query.select_vars.empty() ||
                             query.IsAggregate() ||
                             query.form == QueryForm::kConstruct;
  if (explicit_projection) {
    std::set<std::string> used(query.select_vars.begin(),
                               query.select_vars.end());
    for (const auto& agg : query.aggregates) {
      if (!agg.var.empty()) used.insert(agg.var);
    }
    used.insert(query.group_by.begin(), query.group_by.end());
    for (const auto& key : query.order_by) used.insert(key.var);
    CollectFilterVars(query.where, &used);
    for (const auto& t : query.construct_template) {
      std::map<std::string, int> tvars;
      AddPatternVars(t, &tvars);
      for (const auto& [v, n] : tvars) used.insert(v);
    }
    for (const auto& target : query.describe_targets) {
      if (target.is_variable()) used.insert(target.var());
    }
    for (const auto& [v, count] : bound) {
      if (count == 1 && !used.contains(v)) {
        out.push_back(Make(Severity::kInfo, "QA001", "where",
                           "?" + v +
                               " is bound once and never used; the "
                               "position acts as a wildcard",
                           "project ?" + v + " if it is meant to be a "
                                             "result, or ignore"));
      }
    }
  }

  // ---- QA002..QA005 walk the group tree.
  std::vector<Diagnostic> qa002, qa003, qa004, qa005;
  GroupWalker walker{&options, &bound, &qa002, &qa003, &qa004, &qa005};
  walker.Walk(query.where, "where", true, {});
  for (auto* block : {&qa002, &qa003, &qa004, &qa005}) {
    for (auto& d : *block) out.push_back(std::move(d));
  }
  return out;
}

}  // namespace rdfspark::sparql
