#include "sparql/ast.h"

#include <algorithm>

namespace rdfspark::sparql {

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> out;
  auto add = [&](const PatternTerm& t) {
    if (t.is_variable() &&
        std::find(out.begin(), out.end(), t.var()) == out.end()) {
      out.push_back(t.var());
    }
  };
  add(s);
  add(p);
  add(o);
  return out;
}

std::shared_ptr<FilterExpr> FilterExpr::MakeVar(std::string name) {
  auto e = std::make_shared<FilterExpr>();
  e->op = ExprOp::kVar;
  e->var = std::move(name);
  return e;
}

std::shared_ptr<FilterExpr> FilterExpr::MakeLiteral(rdf::Term term) {
  auto e = std::make_shared<FilterExpr>();
  e->op = ExprOp::kLiteral;
  e->literal = std::move(term);
  return e;
}

std::shared_ptr<FilterExpr> FilterExpr::MakeUnary(
    ExprOp op, std::shared_ptr<FilterExpr> child) {
  auto e = std::make_shared<FilterExpr>();
  e->op = op;
  e->children.push_back(std::move(child));
  return e;
}

std::shared_ptr<FilterExpr> FilterExpr::MakeBinary(
    ExprOp op, std::shared_ptr<FilterExpr> lhs,
    std::shared_ptr<FilterExpr> rhs) {
  auto e = std::make_shared<FilterExpr>();
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

void FilterExpr::CollectVariables(std::vector<std::string>* out) const {
  if (op == ExprOp::kVar || op == ExprOp::kBound) {
    if (std::find(out->begin(), out->end(), var) == out->end()) {
      out->push_back(var);
    }
  }
  for (const auto& c : children) c->CollectVariables(out);
}

namespace {

void AddUnique(std::vector<std::string>* out, const std::string& v) {
  if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
}

void CollectGroupVars(const GroupPattern& g, std::vector<std::string>* out) {
  for (const auto& tp : g.bgp) {
    for (const auto& v : tp.Variables()) AddUnique(out, v);
  }
  for (const auto& f : g.filters) {
    std::vector<std::string> vars;
    f->CollectVariables(&vars);
    for (const auto& v : vars) AddUnique(out, v);
  }
  for (const auto& opt : g.optionals) CollectGroupVars(opt, out);
  for (const auto& alternatives : g.unions) {
    for (const auto& alt : alternatives) CollectGroupVars(alt, out);
  }
}

}  // namespace

std::vector<std::string> GroupPattern::Variables() const {
  std::vector<std::string> out;
  CollectGroupVars(*this, &out);
  return out;
}

const char* AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kCount:
      return "COUNT";
    case AggregateOp::kSum:
      return "SUM";
    case AggregateOp::kAvg:
      return "AVG";
    case AggregateOp::kMin:
      return "MIN";
    case AggregateOp::kMax:
      return "MAX";
  }
  return "?";
}

std::vector<std::string> Query::EffectiveProjection() const {
  if (IsAggregate()) {
    std::vector<std::string> out = select_vars;
    for (const auto& agg : aggregates) out.push_back(agg.alias);
    return out;
  }
  if (!select_vars.empty()) return select_vars;
  return where.Variables();
}

}  // namespace rdfspark::sparql
