#include "systems/engine.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "spark/hb.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "systems/plan/analyze.h"
#include "systems/graphframes_engine.h"
#include "systems/graphx_sm.h"
#include "systems/haqwa.h"
#include "systems/hybrid.h"
#include "systems/s2rdf.h"
#include "systems/s2x.h"
#include "systems/sparkql.h"
#include "systems/sparkrdf.h"
#include "systems/sparqlgx.h"

namespace rdfspark::systems {

const char* SparkAbstractionName(SparkAbstraction a) {
  switch (a) {
    case SparkAbstraction::kRdd:
      return "RDD";
    case SparkAbstraction::kDataFrames:
      return "DataFrames";
    case SparkAbstraction::kSparkSql:
      return "Spark SQL";
    case SparkAbstraction::kGraphX:
      return "GraphX";
    case SparkAbstraction::kGraphFrames:
      return "GraphFrames";
  }
  return "unknown";
}

const char* DataModelName(DataModel m) {
  return m == DataModel::kTriple ? "The Triple Model" : "The Graph Model";
}

const char* SparqlFragmentName(SparqlFragment f) {
  return f == SparqlFragment::kBgp ? "BGP" : "BGP+";
}

uint64_t PatternScanBound(const rdf::Dictionary& dict,
                          const rdf::DatasetStatistics& stats,
                          const sparql::TriplePattern& tp) {
  if (tp.p.is_variable()) return stats.num_triples;
  auto id = dict.Lookup(tp.p.term());
  if (!id.ok()) return 0;  // Predicate absent from the data: empty relation.
  auto count = stats.predicate_count.find(*id);
  uint64_t bound =
      count == stats.predicate_count.end() ? 0 : count->second;
  if (!tp.s.is_variable()) {
    auto deg = stats.predicate_max_subject_degree.find(*id);
    if (deg != stats.predicate_max_subject_degree.end()) {
      bound = std::min(bound, deg->second);
    }
  }
  if (!tp.o.is_variable()) {
    auto deg = stats.predicate_max_object_degree.find(*id);
    if (deg != stats.predicate_max_object_degree.end()) {
      bound = std::min(bound, deg->second);
    }
  }
  return bound;
}

uint64_t StarScanBound(const rdf::Dictionary& dict,
                       const rdf::DatasetStatistics& stats,
                       const std::vector<sparql::TriplePattern>& patterns) {
  if (patterns.empty()) return 1;
  // Per-pattern base bounds and per-subject multiplicities.
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> degrees;
  bounds.reserve(patterns.size());
  degrees.reserve(patterns.size());
  for (const auto& tp : patterns) {
    bounds.push_back(PatternScanBound(dict, stats, tp));
    uint64_t degree = stats.num_triples;  // Predicate variable: no cap.
    if (!tp.p.is_variable()) {
      auto id = dict.Lookup(tp.p.term());
      if (!id.ok()) {
        degree = 0;
      } else {
        auto it = stats.predicate_max_subject_degree.find(*id);
        degree = it == stats.predicate_max_subject_degree.end() ? 0
                                                                : it->second;
      }
    }
    degrees.push_back(degree);
  }
  constexpr uint64_t kCap = std::numeric_limits<uint64_t>::max();
  auto sat_mul = [](uint64_t a, uint64_t b) {
    if (a == 0 || b == 0) return uint64_t{0};
    return a > kCap / b ? kCap : a * b;
  };
  uint64_t best = kCap;
  for (size_t i = 0; i < patterns.size(); ++i) {
    uint64_t candidate = bounds[i];
    for (size_t j = 0; j < patterns.size(); ++j) {
      if (j != i) candidate = sat_mul(candidate, degrees[j]);
    }
    best = std::min(best, candidate);
  }
  return best;
}

Result<sparql::BindingTable> RdfQueryEngine::ExecuteText(
    std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(text));
  return Execute(query);
}

Result<std::string> RdfQueryEngine::ExplainText(std::string_view) {
  return Status::Unsupported(traits().name + ": EXPLAIN not supported");
}

Result<std::string> RdfQueryEngine::LintText(std::string_view) {
  return Status::Unsupported(traits().name + ": LINT not supported");
}

Result<std::string> RdfQueryEngine::ExplainAnalyzeText(std::string_view) {
  return Status::Unsupported(traits().name +
                             ": EXPLAIN ANALYZE not supported");
}

BgpEngineBase::BgpEngineBase(spark::SparkContext* sc) : RdfQueryEngine(sc) {
  // Engines are constructed on the driver before any pooled task can run,
  // and nothing in this process calls setenv, so these reads cannot race.
  // NOLINTBEGIN(concurrency-mt-unsafe)
  const char* env = std::getenv("RDFSPARK_VERIFY_PLANS");
  debug_check_plans_ = env != nullptr && env[0] != '\0';
  const char* qenv = std::getenv("RDFSPARK_VERIFY_QUERIES");
  debug_check_queries_ = qenv != nullptr && qenv[0] != '\0';
  const char* renv = std::getenv("RDFSPARK_CHECK_RACES");
  debug_check_races_ = renv != nullptr && renv[0] != '\0';
  // NOLINTEND(concurrency-mt-unsafe)
}

sparql::QueryAnalysisOptions BgpEngineBase::AnalysisOptions() const {
  sparql::QueryAnalysisOptions options;
  options.vertical_partitioned = VerifyProfile().vertical_partitioned;
  return options;
}

Result<std::vector<plan::Diagnostic>> BgpEngineBase::AnalyzeQueryText(
    std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(text));
  return sparql::AnalyzeQuery(query, AnalysisOptions());
}

Result<spark::LineageGraph> BgpEngineBase::CaptureLineage(
    std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(text));
  RDFSPARK_ASSIGN_OR_RETURN(plan::PlanPtr root, PlanBgp(query.where.bgp));
  plan::PlanExecutor executor(sc_, /*collect_actuals=*/true);
  RDFSPARK_ASSIGN_OR_RETURN(sparql::BindingTable table, executor.Run(*root));
  (void)table;  // The lineage snapshot is the output.
  std::vector<const spark::RddNodeBase*> roots;
  roots.reserve(executor.lineage_roots().size());
  for (const auto& node : executor.lineage_roots()) {
    roots.push_back(node.get());
  }
  return spark::LineageGraph::Capture(roots);
}

Result<std::string> BgpEngineBase::LineageText(std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(spark::LineageGraph graph, CaptureLineage(text));
  if (graph.nodes().empty()) {
    return std::string(
        "no RDD-backed lineage (engine executes through another "
        "abstraction)\n");
  }
  return plan::RenderDiagnostics(graph.Analyze()) + graph.ToDot();
}

Result<std::string> BgpEngineBase::ExplainText(std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(text));
  // EXPLAIN covers the top-level basic graph pattern (the distributed part
  // of the query; FILTER/OPTIONAL/UNION and modifiers run driver-side).
  RDFSPARK_ASSIGN_OR_RETURN(plan::PlanPtr root, PlanBgp(query.where.bgp));
  return plan::Explain(*root);
}

Result<std::vector<plan::Diagnostic>> BgpEngineBase::LintQuery(
    std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(text));
  RDFSPARK_ASSIGN_OR_RETURN(plan::PlanPtr root, PlanBgp(query.where.bgp));
  return plan::VerifyPlan(*root, VerifyProfile());
}

Result<std::string> BgpEngineBase::LintText(std::string_view text) {
  // The static lint tiers over the same text: query analysis (QA rules),
  // the plan verifier (SC/CP/BC/ST/VP rules), then the resource analyzer
  // (RS rules); one severity-sorted rendering followed by the envelope.
  RDFSPARK_ASSIGN_OR_RETURN(std::vector<plan::Diagnostic> diags,
                            AnalyzeQueryText(text));
  RDFSPARK_ASSIGN_OR_RETURN(std::vector<plan::Diagnostic> plan_diags,
                            LintQuery(text));
  for (auto& d : plan_diags) diags.push_back(std::move(d));
  RDFSPARK_ASSIGN_OR_RETURN(plan::ResourceAnalysis analysis,
                            ResourceEnvelope(text));
  for (auto& d : analysis.findings) diags.push_back(std::move(d));
  return plan::RenderDiagnostics(std::move(diags)) +
         plan::RenderEnvelope(analysis);
}

Result<plan::ResourceAnalysis> BgpEngineBase::ResourceEnvelope(
    std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(text));
  RDFSPARK_ASSIGN_OR_RETURN(plan::PlanPtr root, PlanBgp(query.where.bgp));
  return AnalyzePlanResources(query, *root);
}

plan::ResourceAnalysis BgpEngineBase::AnalyzePlanResources(
    const sparql::Query& query, const plan::PlanNode& root,
    uint64_t cluster_budget_bytes) const {
  plan::ResourceProfile profile =
      plan::ResourceProfile::FromCluster(sc_->config(), VerifyProfile());
  profile.sort_at_root = query.distinct || !query.order_by.empty();
  if (cluster_budget_bytes != 0) {
    profile.cluster_budget_bytes = cluster_budget_bytes;
  }
  return plan::AnalyzeResources(root, profile);
}

Result<std::string> BgpEngineBase::RaceCheckText(std::string_view text) {
  spark::hb::ScopedRaceCheck window(/*active=*/true);
  Result<sparql::BindingTable> executed = ExecuteText(text);
  std::vector<plan::Diagnostic> findings =
      window.owner() ? window.Finish()
                     : spark::hb::Recorder::Get().Analyze();
  if (!executed.ok()) return executed.status();
  return plan::RenderDiagnostics(std::move(findings));
}

std::vector<plan::Diagnostic> BgpEngineBase::AnalyzeParsedQuery(
    const sparql::Query& query) const {
  return sparql::AnalyzeQuery(query, AnalysisOptions());
}

Result<plan::PlanPtr> BgpEngineBase::PlanQuery(const sparql::Query& query) {
  if (query.form != sparql::QueryForm::kSelect &&
      query.form != sparql::QueryForm::kAsk) {
    return Status::Unsupported(
        "only SELECT/ASK queries plan through PlanQuery");
  }
  if (!query.where.IsPlainBgp() || query.IsAggregate()) {
    return Status::Unsupported(
        "group patterns and aggregates evaluate recursively; no single "
        "cacheable plan");
  }
  RDFSPARK_ASSIGN_OR_RETURN(plan::PlanPtr root, PlanBgp(query.where.bgp));
  if (debug_check_plans_) {
    Status verified = plan::VerifyForExecution(*root, VerifyProfile());
    if (!verified.ok()) return verified;
  }
  return root;
}

Result<sparql::BindingTable> BgpEngineBase::ExecutePlanned(
    const sparql::Query& query, const plan::PlanNode& root) {
  RDFSPARK_ASSIGN_OR_RETURN(sparql::BindingTable table,
                            plan::PlanExecutor(sc_).Run(root));
  if (query.form == sparql::QueryForm::kAsk) {
    sparql::BindingTable out;
    if (table.num_rows() > 0) out.AddRow({});
    return out;
  }
  return ApplyModifiers(query, std::move(table), dictionary());
}

Result<plan::PlanPtr> BgpEngineBase::ExecuteAnalyzed(std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(text));
  return ExecuteAnalyzed(query);
}

Result<plan::PlanPtr> BgpEngineBase::ExecuteAnalyzed(
    const sparql::Query& query) {
  // Like EXPLAIN, the analyzed run covers the top-level basic graph
  // pattern — the distributed part whose actuals are worth attributing.
  RDFSPARK_ASSIGN_OR_RETURN(plan::PlanPtr root, PlanBgp(query.where.bgp));
  plan::PlanExecutor executor(sc_, /*collect_actuals=*/true);
  RDFSPARK_ASSIGN_OR_RETURN(sparql::BindingTable table, executor.Run(*root));
  (void)table;  // Results are discarded; the annotated plan is the output.
  return root;
}

Result<std::string> BgpEngineBase::ExplainAnalyzeText(std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(plan::PlanPtr root, ExecuteAnalyzed(text));
  return plan::ExplainAnalyze(*root);
}

plan::EngineProfile BgpEngineBase::VerifyProfile() const {
  plan::EngineProfile profile;
  profile.engine_name = traits().name;
  return profile;
}

Result<sparql::BindingTable> BgpEngineBase::EvaluateBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  RDFSPARK_ASSIGN_OR_RETURN(plan::PlanPtr root, PlanBgp(bgp));
  if (debug_check_plans_) {
    Status verified = plan::VerifyForExecution(*root, VerifyProfile());
    if (!verified.ok()) return verified;
  }
  return plan::PlanExecutor(sc_).Run(*root);
}

Result<sparql::BindingTable> BgpEngineBase::EvaluateGroup(
    const sparql::GroupPattern& group) {
  RDFSPARK_ASSIGN_OR_RETURN(sparql::BindingTable table,
                            EvaluateBgp(group.bgp));
  for (const auto& alternatives : group.unions) {
    sparql::BindingTable united;
    bool first = true;
    for (const auto& alt : alternatives) {
      RDFSPARK_ASSIGN_OR_RETURN(sparql::BindingTable t, EvaluateGroup(alt));
      united = first ? std::move(t) : UnionTables(united, t);
      first = false;
    }
    table = HashJoin(table, united);
  }
  for (const auto& opt : group.optionals) {
    RDFSPARK_ASSIGN_OR_RETURN(sparql::BindingTable t, EvaluateGroup(opt));
    table = LeftJoin(table, t);
  }
  for (const auto& filter : group.filters) {
    table = ApplyFilter(table, *filter, dictionary());
  }
  return table;
}

Result<sparql::BindingTable> BgpEngineBase::Execute(
    const sparql::Query& query) {
  if (query.form == sparql::QueryForm::kConstruct ||
      query.form == sparql::QueryForm::kDescribe) {
    return Status::InvalidArgument(
        "CONSTRUCT/DESCRIBE produce triples; use the ExecuteConstruct / "
        "ExecuteDescribe helpers");
  }
  if (traits().fragment == SparqlFragment::kBgp &&
      (!query.where.IsPlainBgp() || query.IsAggregate())) {
    return Status::Unsupported(
        traits().name +
        " supports the BGP fragment only (no FILTER/OPTIONAL/UNION/"
        "aggregates)");
  }
  if (debug_check_queries_) {
    std::vector<plan::Diagnostic> errors =
        plan::ErrorsOnly(sparql::AnalyzeQuery(query, AnalysisOptions()));
    if (!errors.empty()) {
      return Status::InvalidArgument("query analysis failed:\n" +
                                     plan::FormatDiagnostics(errors));
    }
  }
  // Tier C gate (RDFSPARK_CHECK_RACES): record every shared-object access
  // this execution makes and fail on unordered conflicting pairs. When an
  // outer window is active (serving layer, lint tool), owner() is false
  // and the gate defers to it — mirroring the verify_queries takeover.
  spark::hb::ScopedRaceCheck race_check(debug_check_races_);
  RDFSPARK_ASSIGN_OR_RETURN(sparql::BindingTable table,
                            EvaluateGroup(query.where));
  if (race_check.owner()) {
    std::vector<plan::Diagnostic> findings = race_check.Finish();
    if (plan::HasError(findings)) {
      return Status::InvalidArgument("race check failed:\n" +
                                     plan::FormatDiagnostics(findings));
    }
  }
  if (query.form == sparql::QueryForm::kAsk) {
    sparql::BindingTable out;
    if (table.num_rows() > 0) out.AddRow({});
    return out;
  }
  // Solution modifiers run "with the Spark API" driver-side, as the
  // surveyed systems implement them.
  return ApplyModifiers(query, std::move(table), dictionary());
}

Result<std::vector<rdf::Triple>> ExecuteConstruct(
    RdfQueryEngine* engine, const rdf::TripleStore& store,
    const sparql::Query& query) {
  if (query.form != sparql::QueryForm::kConstruct) {
    return Status::InvalidArgument("not a CONSTRUCT query");
  }
  sparql::Query select = query;
  select.form = sparql::QueryForm::kSelect;
  select.construct_template.clear();
  RDFSPARK_ASSIGN_OR_RETURN(sparql::BindingTable table,
                            engine->Execute(select));
  return sparql::InstantiateTemplate(query.construct_template, table,
                                     store.dictionary());
}

Result<std::vector<rdf::Triple>> ExecuteDescribe(
    RdfQueryEngine* engine, const rdf::TripleStore& store,
    const sparql::Query& query) {
  if (query.form != sparql::QueryForm::kDescribe) {
    return Status::InvalidArgument("not a DESCRIBE query");
  }
  std::vector<rdf::TermId> resources;
  bool has_vars = false;
  for (const auto& target : query.describe_targets) {
    if (target.is_variable()) {
      has_vars = true;
    } else {
      auto id = store.dictionary().Lookup(target.term());
      if (id.ok()) resources.push_back(*id);
    }
  }
  if (has_vars) {
    sparql::Query select = query;
    select.form = sparql::QueryForm::kSelect;
    select.describe_targets.clear();
    RDFSPARK_ASSIGN_OR_RETURN(sparql::BindingTable table,
                              engine->Execute(select));
    for (const auto& target : query.describe_targets) {
      if (!target.is_variable()) continue;
      int idx = table.VarIndex(target.var());
      if (idx < 0) continue;
      for (const auto& row : table.rows()) {
        rdf::TermId id = row[static_cast<size_t>(idx)];
        if (id != sparql::kUnbound) resources.push_back(id);
      }
    }
  }
  return sparql::DescribeResources(resources, store);
}

std::vector<std::unique_ptr<RdfQueryEngine>> MakeAllEngines(
    spark::SparkContext* sc) {
  std::vector<std::unique_ptr<RdfQueryEngine>> engines;
  engines.push_back(std::make_unique<HaqwaEngine>(sc));       // [7]
  engines.push_back(std::make_unique<SparqlgxEngine>(sc));    // [13]
  engines.push_back(std::make_unique<S2rdfEngine>(sc));       // [24]
  engines.push_back(std::make_unique<HybridEngine>(sc));      // [21]
  engines.push_back(std::make_unique<S2xEngine>(sc));         // [23]
  engines.push_back(std::make_unique<GraphxSmEngine>(sc));    // [16]
  engines.push_back(std::make_unique<SparkqlEngine>(sc));     // [12]
  engines.push_back(std::make_unique<GraphFramesEngine>(sc));  // [4]
  engines.push_back(std::make_unique<SparkRdfEngine>(sc));    // [5]
  return engines;
}

std::vector<EngineVariantFactory> AllEngineVariantFactories() {
  using spark::SparkContext;
  std::vector<EngineVariantFactory> out;
  out.push_back({"HAQWA", [](SparkContext* sc) {
                   return std::make_unique<HaqwaEngine>(sc);
                 }});
  out.push_back({"SPARQLGX", [](SparkContext* sc) {
                   return std::make_unique<SparqlgxEngine>(sc);
                 }});
  out.push_back({"S2RDF", [](SparkContext* sc) {
                   return std::make_unique<S2rdfEngine>(sc);
                 }});
  for (auto mode :
       {HybridMode::kSparkSqlNaive, HybridMode::kRddPartitioned,
        HybridMode::kDataFrameAuto, HybridMode::kHybrid}) {
    std::string name = std::string("Hybrid_") + HybridModeName(mode);
    for (char& c : name) {
      if (c == '-') c = '_';
    }
    out.push_back({name, [mode](SparkContext* sc) {
                     HybridEngine::Options opts;
                     opts.mode = mode;
                     return std::make_unique<HybridEngine>(sc, opts);
                   }});
  }
  out.push_back({"S2X", [](SparkContext* sc) {
                   return std::make_unique<S2xEngine>(sc);
                 }});
  out.push_back({"GraphX_SM", [](SparkContext* sc) {
                   return std::make_unique<GraphxSmEngine>(sc);
                 }});
  out.push_back({"Sparkql", [](SparkContext* sc) {
                   return std::make_unique<SparkqlEngine>(sc);
                 }});
  out.push_back({"GraphFrames", [](SparkContext* sc) {
                   return std::make_unique<GraphFramesEngine>(sc);
                 }});
  out.push_back({"SparkRDF", [](SparkContext* sc) {
                   return std::make_unique<SparkRdfEngine>(sc);
                 }});
  return out;
}

}  // namespace rdfspark::systems
