#ifndef RDFSPARK_SYSTEMS_ENGINE_H_
#define RDFSPARK_SYSTEMS_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/store.h"
#include "spark/context.h"
#include "spark/lineage.h"
#include "sparql/analysis.h"
#include "sparql/ast.h"
#include "sparql/binding.h"
#include "systems/plan/plan.h"
#include "systems/plan/resource.h"
#include "systems/plan/verifier.h"

namespace rdfspark::systems {

/// Sound output cap of one triple-pattern scan, from dataset statistics:
/// the scan cannot yield more rows than the base relation it reads (the
/// predicate's VP table, or the whole triple relation for a predicate
/// variable), tightened by the predicate's max subject/object degree when
/// the pattern binds that position. Engines annotate
/// PlanNode::max_cardinality with this so Tier D envelopes stay bounded
/// even where selectivity estimates under-shoot.
uint64_t PatternScanBound(const rdf::Dictionary& dict,
                          const rdf::DatasetStatistics& stats,
                          const sparql::TriplePattern& tp);

/// Sound output cap of a same-subject star match over `patterns`: rows =
/// sum over subjects of the product of per-pattern multiplicities, bounded
/// by min over i of bound(p_i) x prod over j != i of max_subject_degree(p_j)
/// (functional predicates contribute factor 1, so FK-style stars stay near
/// the smallest pattern's bound).
uint64_t StarScanBound(const rdf::Dictionary& dict,
                       const rdf::DatasetStatistics& stats,
                       const std::vector<sparql::TriplePattern>& patterns);

/// The Spark data abstractions of Figure 1 / Table I.
enum class SparkAbstraction {
  kRdd,
  kDataFrames,
  kSparkSql,
  kGraphX,
  kGraphFrames,
};

const char* SparkAbstractionName(SparkAbstraction a);

/// The data-model dimension of Figure 1 / Table I.
enum class DataModel { kTriple, kGraph };

const char* DataModelName(DataModel m);

/// SPARQL fragment supported (Table II): plain basic graph patterns, or
/// BGP plus further operators (FILTER, OPTIONAL, UNION, modifiers).
enum class SparqlFragment { kBgp, kBgpPlus };

const char* SparqlFragmentName(SparqlFragment f);

/// Self-description of a system. Tables I and II and Figure 1 are generated
/// from these traits, so the taxonomy is program output rather than prose.
struct EngineTraits {
  std::string name;
  std::string citation;  // e.g. "[7] Cure et al., HAQWA, ISWC P&D 2015"
  DataModel data_model = DataModel::kTriple;
  std::vector<SparkAbstraction> abstractions;
  std::string query_processing;  // Table II column "Query Processing"
  bool has_optimization = false;
  std::string optimization_note;
  std::string partitioning;  // Table II column "Partitioning"
  SparqlFragment fragment = SparqlFragment::kBgp;
  std::string contribution;  // the System Contribution dimension (§III)
};

/// What Load() did: preprocessing cost and storage blow-up, reported by the
/// partitioning assessment benchmark.
struct LoadStats {
  double wall_ms = 0.0;
  uint64_t input_triples = 0;
  /// Stored records incl. replication / ExtVP sub-tables / indexes.
  uint64_t stored_records = 0;
  uint64_t stored_bytes = 0;
};

/// Common interface of the nine reproduced systems. An engine is bound to a
/// SparkContext (the simulated cluster) and loads a dataset once; queries
/// produce binding tables over the dataset's dictionary so results can be
/// cross-checked against the reference evaluator.
class RdfQueryEngine {
 public:
  virtual ~RdfQueryEngine() = default;

  virtual const EngineTraits& traits() const = 0;

  /// Ingests the dataset, building the engine's partitioning and index
  /// structures. `store` must outlive the engine.
  virtual Result<LoadStats> Load(const rdf::TripleStore& store) = 0;

  /// Executes a parsed query. Engines whose fragment is kBgp reject
  /// queries using FILTER/OPTIONAL/UNION or solution modifiers.
  virtual Result<sparql::BindingTable> Execute(const sparql::Query& query) = 0;

  /// Parses and executes SPARQL text.
  Result<sparql::BindingTable> ExecuteText(std::string_view text);

  /// EXPLAIN: parses `text` and returns the deterministic physical plan
  /// tree its basic graph pattern would execute with, without running it.
  /// Engines that do not plan through the shared physical algebra return
  /// Unsupported.
  virtual Result<std::string> ExplainText(std::string_view text);

  /// LINT: parses `text`, plans its basic graph pattern, and returns the
  /// static verifier's findings one per line ("no findings\n" for a clean
  /// plan) without executing anything. Unsupported for engines that do not
  /// plan through the shared algebra.
  virtual Result<std::string> LintText(std::string_view text);

  /// EXPLAIN ANALYZE: parses `text`, plans its basic graph pattern, and
  /// *executes* the plan with per-operator actuals collection, returning
  /// the plan tree annotated with estimated vs actual cardinalities, an
  /// estimate-error column and per-node runtime counters (see
  /// plan::ExplainAnalyze for the format). Charges metrics like a normal
  /// execution; the annotated numbers are bit-identical regardless of
  /// executor threading. Unsupported for engines that do not plan through
  /// the shared algebra.
  virtual Result<std::string> ExplainAnalyzeText(std::string_view text);

  spark::SparkContext* context() const { return sc_; }

 protected:
  explicit RdfQueryEngine(spark::SparkContext* sc) : sc_(sc) {}

  spark::SparkContext* sc_;
};

/// Shared skeleton for engines that evaluate BGPs in a distributed fashion
/// and (when their fragment allows) run the remaining operators with the
/// "Spark API" driver-side, as the surveyed systems do. Subclasses provide
/// PlanBgp() — their documented planning strategy expressed in the shared
/// physical algebra; Execute() plans, hands the plan to the shared
/// PlanExecutor, and handles fragment checking, group structure
/// (FILTER/OPTIONAL/UNION) and solution modifiers.
class BgpEngineBase : public RdfQueryEngine {
 public:
  Result<sparql::BindingTable> Execute(const sparql::Query& query) override;

  Result<std::string> ExplainText(std::string_view text) override;

  Result<std::string> LintText(std::string_view text) override;

  Result<std::string> ExplainAnalyzeText(std::string_view text) override;

  /// Typed verifier findings for `text`'s basic graph pattern. Pure, like
  /// EXPLAIN: the plan is built but never executed.
  Result<std::vector<plan::Diagnostic>> LintQuery(std::string_view text);

  /// Tier A of the dataflow lint: query-level findings (QA rules, see
  /// sparql/analysis.h) for `text`, with this engine's storage layout
  /// feeding the layout-sensitive rules. Pure: nothing is planned or
  /// executed. LintText renders this tier together with LintQuery's
  /// plan-tier findings.
  Result<std::vector<plan::Diagnostic>> AnalyzeQueryText(
      std::string_view text);

  /// Tier A analysis on an already-parsed query — what the admission gate
  /// inside Execute runs. The serving layer calls this once per request
  /// instead of re-parsing the text.
  std::vector<plan::Diagnostic> AnalyzeParsedQuery(
      const sparql::Query& query) const;

  /// Pure planning entry point for the serving plan cache: plans the
  /// query's basic graph pattern without executing anything. Only plain-BGP
  /// non-aggregate SELECT/ASK queries are plannable this way (groups with
  /// FILTER/OPTIONAL/UNION evaluate recursively and have no single
  /// cacheable plan) — anything else returns Unsupported and the caller
  /// falls through to Execute. When debug_check_plans() is on, the plan is
  /// verified here, once, instead of on every cached execution.
  Result<plan::PlanPtr> PlanQuery(const sparql::Query& query);

  /// Executes a plan previously built by PlanQuery for `query`, then runs
  /// the driver-side tail exactly like Execute (ASK collapse, solution
  /// modifiers). With ReusablePlans() true the same plan may be executed
  /// repeatedly and from concurrent threads: execution reads the plan tree
  /// and charges metrics but never mutates the nodes.
  Result<sparql::BindingTable> ExecutePlanned(const sparql::Query& query,
                                              const plan::PlanNode& root);

  /// Whether plans built by PlanQuery survive execution and may be re-run
  /// (the plan-cache contract). S2X overrides to false: its plans consume
  /// shared match state on first execution.
  virtual bool ReusablePlans() const { return true; }

  /// Tier B of the dataflow lint: plans and *executes* `text`'s basic
  /// graph pattern with actuals collection, then snapshots the RDD lineage
  /// DAG the run built. Engines whose payloads are not RDD-backed
  /// (DataFrames, driver-side rows) produce an empty graph.
  Result<spark::LineageGraph> CaptureLineage(std::string_view text);

  /// `.lineage` rendering: the lineage analyzer's findings (LN rules)
  /// followed by the DOT export of the captured graph.
  Result<std::string> LineageText(std::string_view text);

  /// Plans and executes `text`'s basic graph pattern with actuals
  /// collection, returning the analyzed plan: every node carries an
  /// OpStats (node->actuals) with its runtime counters and output rows.
  /// The machine-readable side of ExplainAnalyzeText (tools/query_profile
  /// aggregates these instead of re-parsing the rendered text).
  Result<plan::PlanPtr> ExecuteAnalyzed(std::string_view text);

  /// Same, for an already-parsed query — the serving layer's slow-query
  /// audit re-executes the request it just served without re-parsing.
  Result<plan::PlanPtr> ExecuteAnalyzed(const sparql::Query& query);

  /// The storage/layout facts the static verifier checks plans against
  /// (Table II's partitioning column as booleans + broadcast threshold).
  /// The base profile claims nothing, so unannotated engines verify
  /// vacuously; each engine overrides with its documented layout.
  virtual plan::EngineProfile VerifyProfile() const;

  /// Debug-check mode: when enabled, EvaluateBgp verifies every plan before
  /// the executor touches Spark state, and any ERROR-level finding fails
  /// the query with an InvalidArgument status. Defaults to the
  /// RDFSPARK_VERIFY_PLANS environment variable (set and non-empty).
  void set_debug_check_plans(bool enabled) { debug_check_plans_ = enabled; }
  bool debug_check_plans() const { return debug_check_plans_; }

  /// Query-admission gate: when enabled, Execute runs the query analyzer
  /// (Tier A) first and any ERROR-level QA finding fails the query with an
  /// InvalidArgument status before planning or execution. Defaults to the
  /// RDFSPARK_VERIFY_QUERIES environment variable (set and non-empty).
  void set_debug_check_queries(bool enabled) { debug_check_queries_ = enabled; }
  bool debug_check_queries() const { return debug_check_queries_; }

  /// Tier C gate: when enabled, Execute runs inside a happens-before
  /// recorder window (see spark/hb.h) and any ERROR-level RC/DT finding
  /// fails the query with an InvalidArgument status after execution.
  /// Defaults to the RDFSPARK_CHECK_RACES environment variable (set and
  /// non-empty). Owner semantics: when an outer window is already active
  /// (the serving layer or a lint tool holds the recorder), the per-Execute
  /// gate defers to the owner instead of resetting shared state under it.
  void set_debug_check_races(bool enabled) { debug_check_races_ = enabled; }
  bool debug_check_races() const { return debug_check_races_; }

  /// Tier C of the dataflow lint: executes `text` inside a fresh
  /// happens-before recorder window and returns the RC/DT findings one per
  /// line ("no findings\n" for a clean run). If an outer window is already
  /// active its accumulated findings are rendered without disturbing it.
  Result<std::string> RaceCheckText(std::string_view text);

  /// Tier D of the dataflow lint: plans `text`'s basic graph pattern and
  /// statically derives its byte envelope against this engine's simulated
  /// cluster (see plan/resource.h). Pure, like EXPLAIN: the plan is built
  /// but never executed, and the result is byte-identical regardless of
  /// executor threading.
  Result<plan::ResourceAnalysis> ResourceEnvelope(std::string_view text);

  /// Tier D analysis of an already-built plan for `query` — what the
  /// serving admission gate runs on cached plans (no planning, no
  /// execution). `cluster_budget_bytes` overrides the profile's derived
  /// cluster budget; 0 keeps the default.
  plan::ResourceAnalysis AnalyzePlanResources(
      const sparql::Query& query, const plan::PlanNode& root,
      uint64_t cluster_budget_bytes = 0) const;

 protected:
  explicit BgpEngineBase(spark::SparkContext* sc);

  /// Builds this system's physical plan for one basic graph pattern.
  /// Planning must be pure: no Spark actions, no metrics charged — the
  /// same call backs both execution and EXPLAIN.
  virtual Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) = 0;

  /// Distributed evaluation of one basic graph pattern: plan, then run
  /// through the shared executor.
  Result<sparql::BindingTable> EvaluateBgp(
      const std::vector<sparql::TriplePattern>& bgp);

  /// Dictionary of the loaded dataset (for filters/modifiers).
  virtual const rdf::Dictionary& dictionary() const = 0;

  Result<sparql::BindingTable> EvaluateGroup(
      const sparql::GroupPattern& group);

 private:
  /// The QueryAnalysisOptions this engine's storage layout implies.
  sparql::QueryAnalysisOptions AnalysisOptions() const;

  bool debug_check_plans_ = false;
  bool debug_check_queries_ = false;
  bool debug_check_races_ = false;
};

/// All nine engines, constructed against `sc`. Order matches Table II rows.
/// Callers own the engines; each needs Load() before use.
std::vector<std::unique_ptr<RdfQueryEngine>> MakeAllEngines(
    spark::SparkContext* sc);

/// One constructible engine variant: the nine Table II systems with the
/// Hybrid engine expanded into its four studied modes — the 12 columns the
/// whole-matrix tools (plan_lint, dataflow_lint, query_profile) and the
/// serving layer all iterate over. Names are identifier-safe ('-' in
/// Hybrid mode names becomes '_').
struct EngineVariantFactory {
  std::string name;
  std::function<std::unique_ptr<BgpEngineBase>(spark::SparkContext*)> make;
};

/// The canonical 12-variant list, in Table II row order.
std::vector<EngineVariantFactory> AllEngineVariantFactories();

/// Runs a CONSTRUCT query through `engine` (distributed pattern matching,
/// driver-side template instantiation against `store`'s dictionary).
Result<std::vector<rdf::Triple>> ExecuteConstruct(
    RdfQueryEngine* engine, const rdf::TripleStore& store,
    const sparql::Query& query);

/// Runs a DESCRIBE query through `engine`: the pattern (if any) resolves
/// variable targets distributedly; descriptions come from `store`.
Result<std::vector<rdf::Triple>> ExecuteDescribe(
    RdfQueryEngine* engine, const rdf::TripleStore& store,
    const sparql::Query& query);

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_ENGINE_H_
