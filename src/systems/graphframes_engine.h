#ifndef RDFSPARK_SYSTEMS_GRAPHFRAMES_ENGINE_H_
#define RDFSPARK_SYSTEMS_GRAPHFRAMES_ENGINE_H_

#include <vector>

#include "spark/graphframes/graphframe.h"
#include "systems/common.h"
#include "systems/engine.h"

namespace rdfspark::systems {

/// Bahrami, Gulati & Abulaish [4] — "efficient processing of SPARQL queries
/// over GraphFrames". Reproduced mechanisms:
///
///  * the input dataset splits into a nodelist and an edgelist DataFrame,
///    forming an unweighted labeled GraphFrame;
///  * query optimization: sub-queries sorted in non-descending predicate
///    frequency order;
///  * local search space pruning: triples whose predicate does not occur in
///    the BGP are discarded, and a smaller temporary graph is built;
///  * query execution: motif-based subgraph matching on the pruned graph.
class GraphFramesEngine : public BgpEngineBase {
 public:
  struct Options {
    int num_partitions = -1;
    /// Ablation switches for the A7/A8 benches.
    bool enable_frequency_ordering = true;
    bool enable_pruning = true;
  };

  explicit GraphFramesEngine(spark::SparkContext* sc)
      : GraphFramesEngine(sc, Options()) {}
  GraphFramesEngine(spark::SparkContext* sc, Options options);

  const EngineTraits& traits() const override { return traits_; }
  Result<LoadStats> Load(const rdf::TripleStore& store) override;

 protected:
  Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) override;
  const rdf::Dictionary& dictionary() const override {
    return store_->dictionary();
  }

 private:
  EngineTraits traits_;
  Options options_;
  const rdf::TripleStore* store_ = nullptr;
  rdf::DatasetStatistics stats_;
  spark::graphframes::GraphFrame graph_;
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_GRAPHFRAMES_ENGINE_H_
