#include "systems/hybrid.h"

#include <algorithm>
#include <chrono>

namespace rdfspark::systems {

namespace sql = spark::sql;
using sql::Col;
using sql::DataFrame;
using sql::Expr;
using sql::JoinStrategy;
using sql::JoinType;
using sql::Lit;

const char* HybridModeName(HybridMode mode) {
  switch (mode) {
    case HybridMode::kSparkSqlNaive:
      return "SparkSQL-naive";
    case HybridMode::kRddPartitioned:
      return "RDD-partitioned";
    case HybridMode::kDataFrameAuto:
      return "DataFrame-broadcast";
    case HybridMode::kHybrid:
      return "Hybrid";
  }
  return "unknown";
}

HybridEngine::HybridEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = std::string("SPARQL-GPP (") + HybridModeName(options.mode) +
                 ")";
  traits_.citation = "[21] Naacke, Amann, Cure — GRADES@SIGMOD 2017";
  traits_.data_model = DataModel::kTriple;
  traits_.abstractions = {SparkAbstraction::kRdd,
                          SparkAbstraction::kDataFrames};
  traits_.query_processing = "Hybrid";
  traits_.has_optimization = true;
  traits_.optimization_note =
      "greedy stats-based plan mixing broadcast and partitioned joins";
  traits_.partitioning = "Hash-sbj";
  traits_.fragment = SparqlFragment::kBgp;
  traits_.contribution =
      "study of partitioned vs broadcast joins per Spark abstraction; "
      "hybrid strategy exploiting existing partitioning and DataFrame "
      "compression";
}

Result<LoadStats> HybridEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  stats_ = store.ComputeStatistics();
  num_partitions_ = options_.num_partitions > 0
                        ? options_.num_partitions
                        : sc_->config().default_parallelism;

  std::vector<KeyedTriple> keyed;
  keyed.reserve(store.triples().size());
  std::vector<sql::Row> rows;
  rows.reserve(store.triples().size());
  for (const auto& t : store.triples()) {
    keyed.emplace_back(t.s, t);
    rows.push_back(sql::Row{static_cast<int64_t>(t.s),
                            static_cast<int64_t>(t.p),
                            static_cast<int64_t>(t.o)});
  }
  rdd_by_subject_ = Parallelize(sc_, std::move(keyed), num_partitions_)
                        .PartitionByKey(num_partitions_, "hash-subject");
  rdd_by_subject_.Count();

  sql::Schema spo{{sql::Field{"s", sql::DataType::kInt64},
                   sql::Field{"p", sql::DataType::kInt64},
                   sql::Field{"o", sql::DataType::kInt64}}};
  df_plain_ = DataFrame::FromRows(sc_, spo, rows, num_partitions_);
  df_by_subject_ = df_plain_.PartitionBy({"s"}, num_partitions_);

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = store.triples().size() * 2;  // RDD + DataFrame copy
  stats.stored_bytes =
      rdd_by_subject_.MemoryFootprint() + df_by_subject_.EstimatedBytes();
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

uint64_t HybridEngine::PatternCardinality(
    const sparql::TriplePattern& tp) const {
  double cardinality = static_cast<double>(stats_.num_triples);
  if (!tp.p.is_variable()) {
    auto id = store_->dictionary().Lookup(tp.p.term());
    if (!id.ok()) return 0;
    auto it = stats_.predicate_count.find(*id);
    cardinality = it == stats_.predicate_count.end()
                      ? 0.0
                      : static_cast<double>(it->second);
  }
  if (!tp.s.is_variable() && stats_.distinct_subjects > 0) {
    cardinality /= static_cast<double>(stats_.distinct_subjects);
  }
  if (!tp.o.is_variable() && stats_.distinct_objects > 0) {
    cardinality /= static_cast<double>(stats_.distinct_objects);
  }
  return static_cast<uint64_t>(cardinality) + 1;
}

Result<DataFrame> HybridEngine::PatternDf(const sparql::TriplePattern& tp,
                                          bool subject_partitioned) const {
  const rdf::Dictionary& dict = store_->dictionary();
  DataFrame base = subject_partitioned ? df_by_subject_ : df_plain_;

  Expr condition;
  auto add = [&](Expr e) {
    condition = condition.valid() ? (condition && e) : e;
  };
  auto constant = [&](const sparql::PatternTerm& slot, const char* column)
      -> Status {
    if (slot.is_variable()) return Status::OK();
    auto id = dict.Lookup(slot.term());
    // Unknown constants match nothing.
    add(Col(column) ==
        Lit(sql::Value(id.ok() ? static_cast<int64_t>(*id) : int64_t{-1})));
    return Status::OK();
  };
  RDFSPARK_RETURN_NOT_OK(constant(tp.s, "s"));
  RDFSPARK_RETURN_NOT_OK(constant(tp.p, "p"));
  RDFSPARK_RETURN_NOT_OK(constant(tp.o, "o"));
  // Repeated variables inside the pattern.
  if (tp.s.is_variable() && tp.o.is_variable() &&
      tp.s.var() == tp.o.var()) {
    add(Col("s") == Col("o"));
  }
  if (tp.s.is_variable() && tp.p.is_variable() &&
      tp.s.var() == tp.p.var()) {
    add(Col("s") == Col("p"));
  }
  if (tp.p.is_variable() && tp.o.is_variable() &&
      tp.p.var() == tp.o.var()) {
    add(Col("p") == Col("o"));
  }

  DataFrame filtered = condition.valid() ? base.Filter(condition) : base;

  std::vector<std::pair<Expr, std::string>> projections;
  std::vector<std::string> seen;
  auto project = [&](const sparql::PatternTerm& slot, const char* column) {
    if (!slot.is_variable()) return;
    std::string name = "v_" + slot.var();
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) return;
    seen.push_back(name);
    projections.emplace_back(Col(column), name);
  };
  project(tp.s, "s");
  project(tp.p, "p");
  project(tp.o, "o");
  if (projections.empty()) {
    // Fully bound pattern: keep a marker column so the row count survives.
    projections.emplace_back(Lit(sql::Value(int64_t{1})), "__match");
  }
  DataFrame out = filtered.SelectExprs(projections);
  if (subject_partitioned && tp.s.is_variable()) {
    // Filter+project preserve row placement; rows are still hashed by the
    // (renamed) subject column.
    out = out.AssumePartitionedBy({"v_" + tp.s.var()});
  }
  return out;
}

namespace {

/// Natural join on shared v_ columns with an explicit strategy; right-side
/// duplicates are dropped. No shared columns -> cross join.
DataFrame JoinOnSharedVars(const DataFrame& left, const DataFrame& right,
                           JoinStrategy strategy) {
  std::vector<std::string> shared;
  for (const auto& f : right.schema().fields()) {
    if (left.schema().Index(f.name) >= 0) shared.push_back(f.name);
  }
  if (shared.empty()) return left.CrossJoin(right);
  std::vector<std::string> rnames;
  for (const auto& f : right.schema().fields()) {
    bool is_shared =
        std::find(shared.begin(), shared.end(), f.name) != shared.end();
    rnames.push_back(is_shared ? "__r_" + f.name : f.name);
  }
  DataFrame renamed = right.Rename(rnames);
  if (right.partitioner().has_value() && shared.size() == 1) {
    // Renaming the partition column keeps placement valid under the new
    // name.
    renamed = renamed.AssumePartitionedBy({"__r_" + shared[0]});
  }
  std::vector<std::pair<std::string, std::string>> keys;
  for (const auto& c : shared) keys.emplace_back(c, "__r_" + c);
  DataFrame joined = left.Join(renamed, keys, JoinType::kInner, strategy);
  std::vector<std::string> keep;
  for (const auto& f : joined.schema().fields()) {
    if (f.name.rfind("__r_", 0) != 0) keep.push_back(f.name);
  }
  return joined.Select(keep);
}

}  // namespace

sparql::BindingTable HybridEngine::DfToBindings(const DataFrame& df) const {
  std::vector<std::string> vars;
  std::vector<int> cols;
  for (size_t i = 0; i < df.schema().num_fields(); ++i) {
    const std::string& name = df.schema().field(i).name;
    if (name.rfind("v_", 0) == 0) {
      vars.push_back(name.substr(2));
      cols.push_back(static_cast<int>(i));
    }
  }
  sparql::BindingTable table(vars);
  for (const auto& row : df.Collect()) {
    IdRow out;
    out.reserve(cols.size());
    for (int c : cols) {
      const sql::Value& v = row[static_cast<size_t>(c)];
      out.push_back(sql::IsNull(v)
                        ? sparql::kUnbound
                        : static_cast<rdf::TermId>(std::get<int64_t>(v)));
    }
    table.AddRow(std::move(out));
  }
  return table;
}

Result<sparql::BindingTable> HybridEngine::EvaluateSqlNaive(
    const std::vector<sparql::TriplePattern>& bgp) {
  // Catalyst translation pitfall: joins between patterns carry no usable
  // equi-keys, so every step is a Cartesian product filtered afterwards.
  DataFrame result;
  for (size_t i = 0; i < bgp.size(); ++i) {
    RDFSPARK_ASSIGN_OR_RETURN(DataFrame step,
                              PatternDf(bgp[i], /*subject_partitioned=*/false));
    if (!result.valid()) {
      result = step;
      continue;
    }
    // Rename shared columns, cross join, filter equalities, drop.
    std::vector<std::string> shared;
    for (const auto& f : step.schema().fields()) {
      if (result.schema().Index(f.name) >= 0) shared.push_back(f.name);
    }
    std::vector<std::string> names;
    for (const auto& f : step.schema().fields()) {
      bool is_shared =
          std::find(shared.begin(), shared.end(), f.name) != shared.end();
      names.push_back(is_shared ? "__d_" + f.name : f.name);
    }
    DataFrame crossed = result.CrossJoin(step.Rename(names));
    Expr condition;
    for (const auto& c : shared) {
      Expr eq = Col(c) == Col("__d_" + c);
      condition = condition.valid() ? (condition && eq) : eq;
    }
    if (condition.valid()) crossed = crossed.Filter(condition);
    std::vector<std::string> keep;
    for (const auto& f : crossed.schema().fields()) {
      if (f.name.rfind("__d_", 0) != 0) keep.push_back(f.name);
    }
    result = crossed.Select(keep);
  }
  return DfToBindings(result);
}

Result<sparql::BindingTable> HybridEngine::EvaluateRdd(
    const std::vector<sparql::TriplePattern>& bgp) {
  // Input order, partitioned joins only, full scan per pattern.
  VarSchema schema;
  for (const auto& tp : bgp) {
    for (const auto& v : tp.Variables()) schema.Add(v);
  }
  size_t width = schema.vars().size();

  auto pattern_rows = [&](const sparql::TriplePattern& tp) {
    auto ep = std::make_shared<const EncodedPattern>(
        EncodePattern(store_->dictionary(), tp));
    auto pattern = std::make_shared<const sparql::TriplePattern>(tp);
    auto schema_copy = std::make_shared<const VarSchema>(schema);
    return rdd_by_subject_.FlatMap(
        [ep, pattern, schema_copy, width](const KeyedTriple& kv) {
          std::vector<IdRow> out;
          if (MatchesConstants(*ep, kv.second)) {
            IdRow row(width, sparql::kUnbound);
            if (ExtendRow(*pattern, kv.second, *schema_copy, &row)) {
              out.push_back(std::move(row));
            }
          }
          return out;
        });
  };

  auto current = pattern_rows(bgp[0]);
  VarSchema bound;
  for (const auto& v : bgp[0].Variables()) bound.Add(v);
  for (size_t i = 1; i < bgp.size(); ++i) {
    auto rows = pattern_rows(bgp[i]);
    auto shared = SharedVars(bgp[i], bound);
    if (shared.empty()) {
      current = current.Cartesian(rows).FlatMap(
          [](const std::pair<IdRow, IdRow>& ab) {
            std::vector<IdRow> out;
            auto merged = MergeRows(ab.first, ab.second);
            if (merged) out.push_back(std::move(*merged));
            return out;
          });
    } else {
      int key_idx = schema.IndexOf(shared[0]);
      auto key_by = [key_idx](const IdRow& row) {
        return std::pair<rdf::TermId, IdRow>(
            row[static_cast<size_t>(key_idx)], row);
      };
      current = current.Map(key_by)
                    .Join(rows.Map(key_by))
                    .FlatMap([](const std::pair<rdf::TermId,
                                                std::pair<IdRow, IdRow>>& kv) {
                      std::vector<IdRow> out;
                      auto merged =
                          MergeRows(kv.second.first, kv.second.second);
                      if (merged) out.push_back(std::move(*merged));
                      return out;
                    });
    }
    for (const auto& v : bgp[i].Variables()) bound.Add(v);
  }
  return ToBindingTable(schema, current.Collect());
}

Result<sparql::BindingTable> HybridEngine::EvaluateDataFrame(
    const std::vector<sparql::TriplePattern>& bgp) {
  // Input order, auto (size-threshold broadcast) joins, no partitioning
  // awareness.
  DataFrame result;
  for (const auto& tp : bgp) {
    RDFSPARK_ASSIGN_OR_RETURN(DataFrame step,
                              PatternDf(tp, /*subject_partitioned=*/false));
    result = result.valid()
                 ? JoinOnSharedVars(result, step, JoinStrategy::kAuto)
                 : step;
  }
  return DfToBindings(result);
}

Result<sparql::BindingTable> HybridEngine::EvaluateHybrid(
    const std::vector<sparql::TriplePattern>& bgp) {
  // Greedy stats-based order; subject-partitioned pattern tables so
  // subject-subject joins run co-partitioned; broadcast when a side is
  // small enough.
  std::vector<size_t> order(bgp.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return PatternCardinality(bgp[a]) < PatternCardinality(bgp[b]);
  });
  // Keep the order connected.
  std::vector<size_t> connected;
  std::vector<bool> used(bgp.size(), false);
  VarSchema seen;
  auto take = [&](size_t i) {
    used[i] = true;
    for (const auto& v : bgp[i].Variables()) seen.Add(v);
    connected.push_back(i);
  };
  take(order[0]);
  while (connected.size() < bgp.size()) {
    int next = -1;
    for (size_t k = 0; k < order.size(); ++k) {
      size_t i = order[k];
      if (used[i]) continue;
      if (!SharedVars(bgp[i], seen).empty()) {
        next = static_cast<int>(i);
        break;
      }
      if (next < 0) next = static_cast<int>(i);
    }
    take(static_cast<size_t>(next));
  }

  DataFrame result;
  for (size_t i : connected) {
    RDFSPARK_ASSIGN_OR_RETURN(DataFrame step,
                              PatternDf(bgp[i], /*subject_partitioned=*/true));
    if (!result.valid()) {
      result = step;
      continue;
    }
    JoinStrategy strategy =
        step.EstimatedBytes() <= sc_->config().broadcast_threshold_bytes ||
                result.EstimatedBytes() <=
                    sc_->config().broadcast_threshold_bytes
            ? JoinStrategy::kAuto  // auto picks the broadcast side
            : JoinStrategy::kShuffleHash;
    result = JoinOnSharedVars(result, step, strategy);
  }
  return DfToBindings(result);
}

Result<sparql::BindingTable> HybridEngine::EvaluateBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) return Status::Internal("Load() not called");
  if (bgp.empty()) return sparql::BindingTable::Unit();
  switch (options_.mode) {
    case HybridMode::kSparkSqlNaive:
      return EvaluateSqlNaive(bgp);
    case HybridMode::kRddPartitioned:
      return EvaluateRdd(bgp);
    case HybridMode::kDataFrameAuto:
      return EvaluateDataFrame(bgp);
    case HybridMode::kHybrid:
      return EvaluateHybrid(bgp);
  }
  return Status::Internal("unknown mode");
}

}  // namespace rdfspark::systems
