#include "systems/hybrid.h"

#include <algorithm>
#include <any>
#include <chrono>
#include <memory>

#include "systems/batch.h"
#include "systems/plan/planner_utils.h"

namespace rdfspark::systems {

namespace sql = spark::sql;
using sql::Col;
using sql::DataFrame;
using sql::Expr;
using sql::JoinStrategy;
using sql::JoinType;
using sql::Lit;

const char* HybridModeName(HybridMode mode) {
  switch (mode) {
    case HybridMode::kSparkSqlNaive:
      return "SparkSQL-naive";
    case HybridMode::kRddPartitioned:
      return "RDD-partitioned";
    case HybridMode::kDataFrameAuto:
      return "DataFrame-broadcast";
    case HybridMode::kHybrid:
      return "Hybrid";
  }
  return "unknown";
}

HybridEngine::HybridEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = std::string("SPARQL-GPP (") + HybridModeName(options.mode) +
                 ")";
  traits_.citation = "[21] Naacke, Amann, Cure — GRADES@SIGMOD 2017";
  traits_.data_model = DataModel::kTriple;
  traits_.abstractions = {SparkAbstraction::kRdd,
                          SparkAbstraction::kDataFrames};
  traits_.query_processing = "Hybrid";
  traits_.has_optimization = true;
  traits_.optimization_note =
      "greedy stats-based plan mixing broadcast and partitioned joins";
  traits_.partitioning = "Hash-sbj";
  traits_.fragment = SparqlFragment::kBgp;
  traits_.contribution =
      "study of partitioned vs broadcast joins per Spark abstraction; "
      "hybrid strategy exploiting existing partitioning and DataFrame "
      "compression";
}

Result<LoadStats> HybridEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  stats_ = store.ComputeStatistics();
  num_partitions_ = options_.num_partitions > 0
                        ? options_.num_partitions
                        : sc_->config().default_parallelism;

  std::vector<KeyedTriple> keyed;
  keyed.reserve(store.triples().size());
  std::vector<sql::Row> rows;
  rows.reserve(store.triples().size());
  for (const auto& t : store.triples()) {
    keyed.emplace_back(t.s, t);
    rows.push_back(sql::Row{static_cast<int64_t>(t.s),
                            static_cast<int64_t>(t.p),
                            static_cast<int64_t>(t.o)});
  }
  rdd_by_subject_ = Parallelize(sc_, std::move(keyed), num_partitions_)
                        .PartitionByKey(num_partitions_, "hash-subject");
  rdd_by_subject_.Count();

  sql::Schema spo{{sql::Field{"s", sql::DataType::kInt64},
                   sql::Field{"p", sql::DataType::kInt64},
                   sql::Field{"o", sql::DataType::kInt64}}};
  df_plain_ = DataFrame::FromRows(sc_, spo, rows, num_partitions_);
  df_by_subject_ = df_plain_.PartitionBy({"s"}, num_partitions_);

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = store.triples().size() * 2;  // RDD + DataFrame copy
  stats.stored_bytes =
      rdd_by_subject_.MemoryFootprint() + df_by_subject_.EstimatedBytes();
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

uint64_t HybridEngine::PatternCardinality(
    const sparql::TriplePattern& tp) const {
  double cardinality = static_cast<double>(stats_.num_triples);
  if (!tp.p.is_variable()) {
    auto id = store_->dictionary().Lookup(tp.p.term());
    if (!id.ok()) return 0;
    auto it = stats_.predicate_count.find(*id);
    cardinality = it == stats_.predicate_count.end()
                      ? 0.0
                      : static_cast<double>(it->second);
  }
  if (!tp.s.is_variable() && stats_.distinct_subjects > 0) {
    cardinality /= static_cast<double>(stats_.distinct_subjects);
  }
  if (!tp.o.is_variable() && stats_.distinct_objects > 0) {
    cardinality /= static_cast<double>(stats_.distinct_objects);
  }
  return static_cast<uint64_t>(cardinality) + 1;
}

Result<DataFrame> HybridEngine::PatternDf(const sparql::TriplePattern& tp,
                                          bool subject_partitioned) const {
  const rdf::Dictionary& dict = store_->dictionary();
  DataFrame base = subject_partitioned ? df_by_subject_ : df_plain_;

  Expr condition;
  auto add = [&](Expr e) {
    condition = condition.valid() ? (condition && e) : e;
  };
  auto constant = [&](const sparql::PatternTerm& slot, const char* column)
      -> Status {
    if (slot.is_variable()) return Status::OK();
    auto id = dict.Lookup(slot.term());
    // Unknown constants match nothing.
    add(Col(column) ==
        Lit(sql::Value(id.ok() ? static_cast<int64_t>(*id) : int64_t{-1})));
    return Status::OK();
  };
  RDFSPARK_RETURN_NOT_OK(constant(tp.s, "s"));
  RDFSPARK_RETURN_NOT_OK(constant(tp.p, "p"));
  RDFSPARK_RETURN_NOT_OK(constant(tp.o, "o"));
  // Repeated variables inside the pattern.
  if (tp.s.is_variable() && tp.o.is_variable() &&
      tp.s.var() == tp.o.var()) {
    add(Col("s") == Col("o"));
  }
  if (tp.s.is_variable() && tp.p.is_variable() &&
      tp.s.var() == tp.p.var()) {
    add(Col("s") == Col("p"));
  }
  if (tp.p.is_variable() && tp.o.is_variable() &&
      tp.p.var() == tp.o.var()) {
    add(Col("p") == Col("o"));
  }

  DataFrame filtered = condition.valid() ? base.Filter(condition) : base;

  std::vector<std::pair<Expr, std::string>> projections;
  std::vector<std::string> seen;
  auto project = [&](const sparql::PatternTerm& slot, const char* column) {
    if (!slot.is_variable()) return;
    std::string name = "v_" + slot.var();
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) return;
    seen.push_back(name);
    projections.emplace_back(Col(column), name);
  };
  project(tp.s, "s");
  project(tp.p, "p");
  project(tp.o, "o");
  if (projections.empty()) {
    // Fully bound pattern: keep a marker column so the row count survives.
    projections.emplace_back(Lit(sql::Value(int64_t{1})), "__match");
  }
  DataFrame out = filtered.SelectExprs(projections);
  if (subject_partitioned && tp.s.is_variable()) {
    // Filter+project preserve row placement; rows are still hashed by the
    // (renamed) subject column.
    out = out.AssumePartitionedBy({"v_" + tp.s.var()});
  }
  return out;
}

namespace {

/// Natural join on shared v_ columns with an explicit strategy; right-side
/// duplicates are dropped. No shared columns -> cross join.
DataFrame JoinOnSharedVars(const DataFrame& left, const DataFrame& right,
                           JoinStrategy strategy) {
  std::vector<std::string> shared;
  for (const auto& f : right.schema().fields()) {
    if (left.schema().Index(f.name) >= 0) shared.push_back(f.name);
  }
  if (shared.empty()) return left.CrossJoin(right);
  std::vector<std::string> rnames;
  for (const auto& f : right.schema().fields()) {
    bool is_shared =
        std::find(shared.begin(), shared.end(), f.name) != shared.end();
    rnames.push_back(is_shared ? "__r_" + f.name : f.name);
  }
  DataFrame renamed = right.Rename(rnames);
  if (right.partitioner().has_value() && shared.size() == 1) {
    // Renaming the partition column keeps placement valid under the new
    // name.
    renamed = renamed.AssumePartitionedBy({"__r_" + shared[0]});
  }
  std::vector<std::pair<std::string, std::string>> keys;
  for (const auto& c : shared) keys.emplace_back(c, "__r_" + c);
  DataFrame joined = left.Join(renamed, keys, JoinType::kInner, strategy);
  std::vector<std::string> keep;
  for (const auto& f : joined.schema().fields()) {
    if (f.name.rfind("__r_", 0) != 0) keep.push_back(f.name);
  }
  return joined.Select(keep);
}

}  // namespace

sparql::BindingTable HybridEngine::DfToBindings(const DataFrame& df) const {
  std::vector<std::string> vars;
  std::vector<int> cols;
  for (size_t i = 0; i < df.schema().num_fields(); ++i) {
    const std::string& name = df.schema().field(i).name;
    if (name.rfind("v_", 0) == 0) {
      vars.push_back(name.substr(2));
      cols.push_back(static_cast<int>(i));
    }
  }
  sparql::BindingTable table(vars);
  sparql::IdTable* rows = table.mutable_rows();
  for (const auto& row : df.Collect()) {
    rdf::TermId* cells = rows->AppendRowUninitialized();
    for (size_t i = 0; i < cols.size(); ++i) {
      const sql::Value& v = row[static_cast<size_t>(cols[i])];
      cells[i] = sql::IsNull(v)
                     ? sparql::kUnbound
                     : static_cast<rdf::TermId>(std::get<int64_t>(v));
    }
  }
  return table;
}

namespace {

/// Shared-variable list between a pattern and the variables bound so far,
/// plus the running variable footprint — used by the DataFrame planners to
/// predict join shapes without touching data.
std::string JoinDetail(const std::vector<std::string>& shared) {
  std::string detail;
  for (const auto& v : shared) detail += (detail.empty() ? "on ?" : " ?") + v;
  return detail;
}

/// Variables of the final result in DataFrame column order (first
/// appearance across patterns, s/p/o within a pattern).
std::string VarListDetail(const std::vector<sparql::TriplePattern>& patterns) {
  VarSchema vars;
  for (const auto& tp : patterns) {
    for (const auto& v : tp.Variables()) vars.Add(v);
  }
  std::string detail;
  for (const auto& v : vars.vars()) detail += (detail.empty() ? "?" : " ?") + v;
  return detail;
}

/// Column::MemoryBytes charges 9 bytes per int64 cell (value + null mask);
/// the planner mirrors that to predict DataFrame sizes from row estimates.
uint64_t EstimatedDfBytes(uint64_t rows, const sparql::TriplePattern& tp) {
  VarSchema vars;
  for (const auto& v : tp.Variables()) vars.Add(v);
  uint64_t cols = std::max<uint64_t>(1, vars.vars().size());
  return rows * cols * 9;
}

/// Result variables in first-appearance order (the Project's columns).
std::vector<std::string> AllVars(
    const std::vector<sparql::TriplePattern>& patterns) {
  VarSchema vars;
  for (const auto& tp : patterns) {
    for (const auto& v : tp.Variables()) vars.Add(v);
  }
  return vars.vars();
}

/// Verifier schema facts for a pattern-scan leaf.
void AnnotateScan(const sparql::TriplePattern& tp, uint64_t scan_bound,
                  plan::PlanNode* node) {
  node->out_vars = tp.Variables();
  if (tp.s.is_variable()) node->subject_var = tp.s.var();
  node->max_cardinality = scan_bound;
}

}  // namespace

Result<plan::PlanPtr> HybridEngine::PlanSqlNaive(
    const std::vector<sparql::TriplePattern>& bgp) {
  // Catalyst translation pitfall: joins between patterns carry no usable
  // equi-keys, so every step is a Cartesian product filtered afterwards.
  auto scan = [this](const sparql::TriplePattern& tp) {
    auto node = plan::MakeScan(
        plan::NodeKind::kPatternScan, plan::AccessPath::kFullScan,
        tp.ToString(), PatternCardinality(tp),
        [this, tp](std::vector<plan::PlanPayload>) -> Result<plan::PlanPayload> {
          RDFSPARK_ASSIGN_OR_RETURN(
              DataFrame step, PatternDf(tp, /*subject_partitioned=*/false));
          return plan::PlanPayload(std::move(step));
        });
    AnnotateScan(tp, PatternScanBound(store_->dictionary(), stats_, tp),
                 node.get());
    return node;
  };

  plan::PlanPtr root = scan(bgp[0]);
  for (size_t i = 1; i < bgp.size(); ++i) {
    root = plan::MakeBinary(
        plan::NodeKind::kCartesianProduct, "cross-join + filter",
        std::move(root), scan(bgp[i]),
        [](std::vector<plan::PlanPayload> in) -> Result<plan::PlanPayload> {
          auto result = std::any_cast<DataFrame>(std::move(in[0]));
          auto step = std::any_cast<DataFrame>(std::move(in[1]));
          // Rename shared columns, cross join, filter equalities, drop.
          std::vector<std::string> shared;
          for (const auto& f : step.schema().fields()) {
            if (result.schema().Index(f.name) >= 0) shared.push_back(f.name);
          }
          std::vector<std::string> names;
          for (const auto& f : step.schema().fields()) {
            bool is_shared =
                std::find(shared.begin(), shared.end(), f.name) != shared.end();
            names.push_back(is_shared ? "__d_" + f.name : f.name);
          }
          DataFrame crossed = result.CrossJoin(step.Rename(names));
          Expr condition;
          for (const auto& c : shared) {
            Expr eq = Col(c) == Col("__d_" + c);
            condition = condition.valid() ? (condition && eq) : eq;
          }
          if (condition.valid()) crossed = crossed.Filter(condition);
          std::vector<std::string> keep;
          for (const auto& f : crossed.schema().fields()) {
            if (f.name.rfind("__d_", 0) != 0) keep.push_back(f.name);
          }
          return plan::PlanPayload(crossed.Select(keep));
        });
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, VarListDetail(bgp), std::move(root),
      [this](std::vector<plan::PlanPayload> in) -> Result<plan::PlanPayload> {
        auto result = std::any_cast<DataFrame>(std::move(in[0]));
        return plan::PlanPayload(DfToBindings(result));
      });
  project->key_vars = AllVars(bgp);
  return project;
}

Result<plan::PlanPtr> HybridEngine::PlanRdd(
    const std::vector<sparql::TriplePattern>& bgp) {
  // Input order, partitioned joins only, full scan per pattern.
  auto schema = std::make_shared<VarSchema>();
  for (const auto& tp : bgp) {
    for (const auto& v : tp.Variables()) schema->Add(v);
  }
  size_t width = schema->vars().size();

  auto scan = [this, schema, width](const sparql::TriplePattern& tp) {
    auto node = plan::MakeScan(
        plan::NodeKind::kPatternScan, plan::AccessPath::kFullScan,
        tp.ToString(), PatternCardinality(tp),
        [this, schema, width, tp](std::vector<plan::PlanPayload>)
            -> Result<plan::PlanPayload> {
          auto ep = std::make_shared<const EncodedPattern>(
              EncodePattern(store_->dictionary(), tp));
          auto pattern = std::make_shared<const sparql::TriplePattern>(tp);
          return plan::PlanPayload(rdd_by_subject_.MapPartitionsWithIndex(
              [ep, pattern, schema,
               width](int, const std::vector<KeyedTriple>& in) {
                sparql::IdTable out(width);
                for (const KeyedTriple& kv : in) {
                  if (!MatchesConstants(*ep, kv.second)) continue;
                  rdf::TermId* cells = out.AppendRowUninitialized();
                  std::fill(cells, cells + width, sparql::kUnbound);
                  if (!ExtendRowCells(*pattern, kv.second, *schema, cells)) {
                    out.PopRow();
                  }
                }
                return std::vector<sparql::IdTable>{std::move(out)};
              }));
        });
    AnnotateScan(tp, PatternScanBound(store_->dictionary(), stats_, tp),
                 node.get());
    return node;
  };

  plan::PlanPtr root = scan(bgp[0]);
  VarSchema bound;
  for (const auto& v : bgp[0].Variables()) bound.Add(v);
  for (size_t i = 1; i < bgp.size(); ++i) {
    auto shared = SharedVars(bgp[i], bound);
    if (shared.empty()) {
      root = plan::MakeBinary(
          plan::NodeKind::kCartesianProduct, "merge-rows", std::move(root),
          scan(bgp[i]),
          [this, width](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto current =
                std::any_cast<spark::Rdd<sparql::IdTable>>(std::move(in[0]));
            auto rows =
                std::any_cast<spark::Rdd<sparql::IdTable>>(std::move(in[1]));
            return plan::PlanPayload(
                CartesianMergeBatches(sc_, current, rows, width));
          });
    } else {
      int key_idx = schema->IndexOf(shared[0]);
      root = plan::MakeBinary(
          plan::NodeKind::kPartitionedHashJoin, JoinDetail({shared[0]}),
          std::move(root), scan(bgp[i]),
          [this, key_idx, width](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto current =
                std::any_cast<spark::Rdd<sparql::IdTable>>(std::move(in[0]));
            auto rows =
                std::any_cast<spark::Rdd<sparql::IdTable>>(std::move(in[1]));
            return plan::PlanPayload(
                JoinBatchesOn(sc_, current, rows, key_idx, width));
          });
      root->key_vars = {shared[0]};
    }
    for (const auto& v : bgp[i].Variables()) bound.Add(v);
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, VarListDetail(bgp), std::move(root),
      [schema, width](std::vector<plan::PlanPayload> in)
          -> Result<plan::PlanPayload> {
        auto current =
            std::any_cast<spark::Rdd<sparql::IdTable>>(std::move(in[0]));
        return plan::PlanPayload(
            ToBindingTable(*schema, CollectRows(current, width)));
      });
  project->key_vars = schema->vars();
  return project;
}

Result<plan::PlanPtr> HybridEngine::PlanDataFrame(
    const std::vector<sparql::TriplePattern>& bgp) {
  // Input order, auto (size-threshold broadcast) joins, no partitioning
  // awareness. The node kind is the planner's stats-based prediction of
  // what the auto strategy will pick; the executor defers to the runtime
  // size check, exactly as before.
  auto scan = [this](const sparql::TriplePattern& tp) {
    auto node = plan::MakeScan(
        plan::NodeKind::kPatternScan, plan::AccessPath::kFullScan,
        tp.ToString(), PatternCardinality(tp),
        [this, tp](std::vector<plan::PlanPayload>) -> Result<plan::PlanPayload> {
          RDFSPARK_ASSIGN_OR_RETURN(
              DataFrame step, PatternDf(tp, /*subject_partitioned=*/false));
          return plan::PlanPayload(std::move(step));
        });
    AnnotateScan(tp, PatternScanBound(store_->dictionary(), stats_, tp),
                 node.get());
    return node;
  };

  plan::PlanPtr root = scan(bgp[0]);
  VarSchema bound;
  for (const auto& v : bgp[0].Variables()) bound.Add(v);
  for (size_t i = 1; i < bgp.size(); ++i) {
    const auto& tp = bgp[i];
    auto shared = SharedVars(tp, bound);
    uint64_t step_bytes = EstimatedDfBytes(PatternCardinality(tp), tp);
    plan::NodeKind kind =
        shared.empty() ? plan::NodeKind::kCartesianProduct
        : step_bytes <= sc_->config().broadcast_threshold_bytes
            ? plan::NodeKind::kBroadcastJoin
            : plan::NodeKind::kPartitionedHashJoin;
    root = plan::MakeBinary(
        kind, JoinDetail(shared), std::move(root), scan(tp),
        [](std::vector<plan::PlanPayload> in) -> Result<plan::PlanPayload> {
          auto result = std::any_cast<DataFrame>(std::move(in[0]));
          auto step = std::any_cast<DataFrame>(std::move(in[1]));
          return plan::PlanPayload(
              JoinOnSharedVars(result, step, JoinStrategy::kAuto));
        });
    root->key_vars = shared;
    for (const auto& v : tp.Variables()) bound.Add(v);
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, VarListDetail(bgp), std::move(root),
      [this](std::vector<plan::PlanPayload> in) -> Result<plan::PlanPayload> {
        auto result = std::any_cast<DataFrame>(std::move(in[0]));
        return plan::PlanPayload(DfToBindings(result));
      });
  project->key_vars = AllVars(bgp);
  return project;
}

Result<plan::PlanPtr> HybridEngine::PlanHybrid(
    const std::vector<sparql::TriplePattern>& bgp) {
  // Greedy stats-based order; subject-partitioned pattern tables so
  // subject-subject joins run co-partitioned; broadcast when a side is
  // small enough. The planner predicts the broadcast-vs-partitioned choice
  // from cardinality statistics; the executor keeps the runtime
  // EstimatedBytes decision so behaviour is bit-identical.
  std::vector<size_t> connected = plan::SortedConnectedOrder(
      bgp,
      [this](const sparql::TriplePattern& tp) {
        return PatternCardinality(tp);
      });

  auto scan = [this](const sparql::TriplePattern& tp) {
    auto node = plan::MakeScan(
        plan::NodeKind::kPatternScan, plan::AccessPath::kFullScan,
        tp.ToString(), PatternCardinality(tp),
        [this, tp](std::vector<plan::PlanPayload>) -> Result<plan::PlanPayload> {
          RDFSPARK_ASSIGN_OR_RETURN(
              DataFrame step, PatternDf(tp, /*subject_partitioned=*/true));
          return plan::PlanPayload(std::move(step));
        });
    AnnotateScan(tp, PatternScanBound(store_->dictionary(), stats_, tp),
                 node.get());
    return node;
  };

  std::vector<sparql::TriplePattern> ordered;
  for (size_t i : connected) ordered.push_back(bgp[i]);

  plan::PlanPtr root = scan(ordered[0]);
  VarSchema bound;
  for (const auto& v : ordered[0].Variables()) bound.Add(v);
  uint64_t result_est = PatternCardinality(ordered[0]);
  uint64_t result_cols =
      std::max<uint64_t>(1, ordered[0].Variables().size());
  for (size_t i = 1; i < ordered.size(); ++i) {
    const auto& tp = ordered[i];
    auto shared = SharedVars(tp, bound);
    uint64_t step_est = PatternCardinality(tp);
    uint64_t threshold = sc_->config().broadcast_threshold_bytes;
    bool small_side =
        EstimatedDfBytes(step_est, tp) <= threshold ||
        result_est * result_cols * 9 <= threshold;
    plan::NodeKind kind = shared.empty()
                              ? plan::NodeKind::kCartesianProduct
                          : small_side ? plan::NodeKind::kBroadcastJoin
                                       : plan::NodeKind::kPartitionedHashJoin;
    plan::PlanPtr node = plan::MakeBinary(
        kind, JoinDetail(shared), std::move(root), scan(tp),
        [this](std::vector<plan::PlanPayload> in) -> Result<plan::PlanPayload> {
          auto result = std::any_cast<DataFrame>(std::move(in[0]));
          auto step = std::any_cast<DataFrame>(std::move(in[1]));
          JoinStrategy strategy =
              step.EstimatedBytes() <=
                          sc_->config().broadcast_threshold_bytes ||
                      result.EstimatedBytes() <=
                          sc_->config().broadcast_threshold_bytes
                  ? JoinStrategy::kAuto  // auto picks the broadcast side
                  : JoinStrategy::kShuffleHash;
          return plan::PlanPayload(JoinOnSharedVars(result, step, strategy));
        });
    node->key_vars = shared;
    // A single-key join on the step's subject runs over the subject-hash
    // placement both pattern tables were loaded with.
    node->partition_local = kind == plan::NodeKind::kPartitionedHashJoin &&
                            shared.size() == 1 && tp.s.is_variable() &&
                            tp.s.var() == shared[0];
    // Running estimate: an equi-join keeps at most the smaller side's
    // rows; a cross product multiplies.
    result_est = shared.empty() ? result_est * step_est
                                : std::min(result_est, step_est);
    for (const auto& v : tp.Variables()) bound.Add(v);
    result_cols = std::max<uint64_t>(1, bound.vars().size());
    node->est_cardinality = result_est;
    root = std::move(node);
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, VarListDetail(ordered), std::move(root),
      [this](std::vector<plan::PlanPayload> in) -> Result<plan::PlanPayload> {
        auto result = std::any_cast<DataFrame>(std::move(in[0]));
        return plan::PlanPayload(DfToBindings(result));
      });
  project->key_vars = AllVars(ordered);
  return project;
}

plan::EngineProfile HybridEngine::VerifyProfile() const {
  plan::EngineProfile profile;
  profile.engine_name = traits_.name;
  switch (options_.mode) {
    case HybridMode::kSparkSqlNaive:
      break;  // plain DataFrames, no broadcast, no placement claims
    case HybridMode::kRddPartitioned:
      profile.subject_partitioned = true;
      break;
    case HybridMode::kDataFrameAuto:
      profile.broadcast_threshold_bytes =
          sc_->config().broadcast_threshold_bytes;
      break;
    case HybridMode::kHybrid:
      profile.subject_partitioned = true;
      profile.broadcast_threshold_bytes =
          sc_->config().broadcast_threshold_bytes;
      break;
  }
  return profile;
}

Result<plan::PlanPtr> HybridEngine::PlanBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) return Status::Internal("Load() not called");
  if (bgp.empty()) {
    return plan::ConstantResultPlan(sparql::BindingTable::Unit(), "unit");
  }
  switch (options_.mode) {
    case HybridMode::kSparkSqlNaive:
      return PlanSqlNaive(bgp);
    case HybridMode::kRddPartitioned:
      return PlanRdd(bgp);
    case HybridMode::kDataFrameAuto:
      return PlanDataFrame(bgp);
    case HybridMode::kHybrid:
      return PlanHybrid(bgp);
  }
  return Status::Internal("unknown mode");
}

}  // namespace rdfspark::systems
