#include "systems/common.h"

namespace rdfspark::systems {

EncodedPattern EncodePattern(const rdf::Dictionary& dict,
                             const sparql::TriplePattern& pattern) {
  EncodedPattern out;
  out.source = pattern;
  auto resolve = [&](const sparql::PatternTerm& t,
                     std::optional<rdf::TermId>* slot) {
    if (t.is_variable()) {
      slot->reset();
      return;
    }
    auto id = dict.Lookup(t.term());
    if (!id.ok()) {
      out.impossible = true;
      return;
    }
    *slot = *id;
  };
  resolve(pattern.s, &out.ids.s);
  resolve(pattern.p, &out.ids.p);
  resolve(pattern.o, &out.ids.o);
  return out;
}

bool ExtendRow(const sparql::TriplePattern& pattern,
               const rdf::EncodedTriple& triple, const VarSchema& schema,
               IdRow* row) {
  auto bind = [&](const sparql::PatternTerm& slot, rdf::TermId value) {
    if (!slot.is_variable()) return true;
    int idx = schema.IndexOf(slot.var());
    if (idx < 0) return true;  // variable not tracked (projection later)
    rdf::TermId& cell = (*row)[static_cast<size_t>(idx)];
    if (cell == sparql::kUnbound) {
      cell = value;
      return true;
    }
    return cell == value;
  };
  return bind(pattern.s, triple.s) && bind(pattern.p, triple.p) &&
         bind(pattern.o, triple.o);
}

bool ExtendRowCells(const sparql::TriplePattern& pattern,
                    const rdf::EncodedTriple& triple, const VarSchema& schema,
                    rdf::TermId* cells) {
  auto bind = [&](const sparql::PatternTerm& slot, rdf::TermId value) {
    if (!slot.is_variable()) return true;
    int idx = schema.IndexOf(slot.var());
    if (idx < 0) return true;  // variable not tracked (projection later)
    rdf::TermId& cell = cells[static_cast<size_t>(idx)];
    if (cell == sparql::kUnbound) {
      cell = value;
      return true;
    }
    return cell == value;
  };
  return bind(pattern.s, triple.s) && bind(pattern.p, triple.p) &&
         bind(pattern.o, triple.o);
}

bool MatchesConstants(const EncodedPattern& encoded,
                      const rdf::EncodedTriple& triple) {
  if (encoded.impossible) return false;
  return (!encoded.ids.s || *encoded.ids.s == triple.s) &&
         (!encoded.ids.p || *encoded.ids.p == triple.p) &&
         (!encoded.ids.o || *encoded.ids.o == triple.o);
}

std::vector<std::string> SharedVars(const sparql::TriplePattern& pattern,
                                    const VarSchema& schema) {
  std::vector<std::string> out;
  for (const auto& v : pattern.Variables()) {
    if (schema.IndexOf(v) >= 0) out.push_back(v);
  }
  return out;
}

sparql::BindingTable ToBindingTable(const VarSchema& schema,
                                    std::vector<IdRow> rows) {
  sparql::BindingTable table(schema.vars());
  for (auto& row : rows) {
    row.resize(schema.vars().size(), sparql::kUnbound);
    table.AddRow(std::move(row));
  }
  return table;
}

sparql::BindingTable ToBindingTable(const VarSchema& schema,
                                    sparql::IdTable rows) {
  return sparql::BindingTable(schema.vars(), std::move(rows));
}

bool MergeRowsInto(sparql::IdSpan a, sparql::IdSpan b, sparql::IdTable* out) {
  rdf::TermId* cells = out->AppendRowUninitialized();
  size_t width = out->width();
  for (size_t i = 0; i < width; ++i) {
    cells[i] = i < a.size() ? a[i] : sparql::kUnbound;
  }
  for (size_t i = 0; i < b.size() && i < width; ++i) {
    if (b[i] == sparql::kUnbound) continue;
    if (cells[i] == sparql::kUnbound) {
      cells[i] = b[i];
    } else if (cells[i] != b[i]) {
      out->PopRow();
      return false;
    }
  }
  return true;
}

std::optional<IdRow> MergeRows(const IdRow& a, const IdRow& b) {
  IdRow out = a;
  out.resize(std::max(a.size(), b.size()), sparql::kUnbound);
  for (size_t i = 0; i < b.size(); ++i) {
    if (b[i] == sparql::kUnbound) continue;
    if (out[i] == sparql::kUnbound) {
      out[i] = b[i];
    } else if (out[i] != b[i]) {
      return std::nullopt;
    }
  }
  return out;
}

std::vector<SubjectGroup> GroupBySubject(
    const std::vector<sparql::TriplePattern>& bgp,
    const rdf::Dictionary& dict) {
  std::vector<SubjectGroup> groups;
  auto find_or_add = [&](const sparql::PatternTerm& s) -> SubjectGroup& {
    for (auto& g : groups) {
      if (s.is_variable() && g.subject_var == s.var()) return g;
      if (!s.is_variable() && g.subject_var.empty() &&
          g.patterns[0].s == s) {
        return g;
      }
    }
    SubjectGroup g;
    if (s.is_variable()) {
      g.subject_var = s.var();
    } else {
      auto id = dict.Lookup(s.term());
      if (id.ok()) {
        g.subject_const = *id;
      } else {
        g.impossible = true;
      }
    }
    groups.push_back(std::move(g));
    return groups.back();
  };
  for (const auto& tp : bgp) {
    find_or_add(tp.s).patterns.push_back(tp);
  }
  return groups;
}

}  // namespace rdfspark::systems
