#include "systems/semantic_partitioning.h"

#include <algorithm>

#include "common/hash.h"

namespace rdfspark::systems {

SemanticPartitioner::SemanticPartitioner(const rdf::TripleStore& store,
                                         int num_partitions)
    : num_partitions_(std::max(1, num_partitions)) {
  auto type = store.TypePredicate();
  // Subject -> first class; class -> triple volume of its subjects.
  std::unordered_map<rdf::TermId, rdf::TermId> subject_class;
  if (type) {
    for (const auto& t : store.triples()) {
      if (t.p == *type) subject_class.emplace(t.s, t.o);
    }
  }
  std::unordered_map<rdf::TermId, uint64_t> class_volume;
  for (const auto& t : store.triples()) {
    auto it = subject_class.find(t.s);
    if (it != subject_class.end()) ++class_volume[it->second];
  }
  // Greedy balanced packing: heaviest class into the lightest partition.
  std::vector<std::pair<rdf::TermId, uint64_t>> classes(class_volume.begin(),
                                                        class_volume.end());
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;  // deterministic tie-break
            });
  std::vector<uint64_t> load(static_cast<size_t>(num_partitions_), 0);
  for (const auto& [cls, volume] : classes) {
    int lightest = 0;
    for (int p = 1; p < num_partitions_; ++p) {
      if (load[static_cast<size_t>(p)] < load[static_cast<size_t>(lightest)]) {
        lightest = p;
      }
    }
    class_partition_[cls] = lightest;
    load[static_cast<size_t>(lightest)] += volume;
  }
  for (const auto& [subject, cls] : subject_class) {
    subject_partition_[subject] = class_partition_[cls];
  }
}

int SemanticPartitioner::PartitionOfSubject(rdf::TermId subject) const {
  auto it = subject_partition_.find(subject);
  if (it != subject_partition_.end()) return it->second;
  return static_cast<int>(MixHash64(subject) %
                          static_cast<uint64_t>(num_partitions_));
}

int SemanticPartitioner::PartitionsSpannedByClass(rdf::TermId cls) const {
  return class_partition_.contains(cls) ? 1 : num_partitions_;
}

double SemanticPartitioner::Skew(const rdf::TripleStore& store) const {
  std::vector<uint64_t> counts(static_cast<size_t>(num_partitions_), 0);
  for (const auto& t : store.triples()) {
    ++counts[static_cast<size_t>(PartitionOf(t))];
  }
  uint64_t max = 0, total = 0;
  for (uint64_t c : counts) {
    max = std::max(max, c);
    total += c;
  }
  if (total == 0) return 1.0;
  double mean = static_cast<double>(total) /
                static_cast<double>(num_partitions_);
  return mean == 0 ? 1.0 : static_cast<double>(max) / mean;
}

}  // namespace rdfspark::systems
