#ifndef RDFSPARK_SYSTEMS_HAQWA_H_
#define RDFSPARK_SYSTEMS_HAQWA_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spark/rdd.h"
#include "systems/batch.h"
#include "systems/common.h"
#include "systems/engine.h"
#include "systems/semantic_partitioning.h"

namespace rdfspark::systems {

/// HAQWA [7] — "a hash-based and query workload aware distributed RDF
/// store". Reproduced mechanisms:
///
///  * two-step fragmentation: (1) hash partitioning on triple subjects, so
///    star-shaped queries evaluate locally; (2) workload-aware allocation —
///    triples reachable over subject-object links of frequent queries are
///    replicated into the partition of the link's source subject;
///  * dictionary encoding of string values to integers;
///  * query decomposition into locally-evaluable sub-queries (subject
///    stars), with the seed chosen by minimum transfer cost;
///  * evaluation mapped onto the RDD API (join/filter/count).
class HaqwaEngine : public BgpEngineBase {
 public:
  struct Options {
    int num_partitions = -1;
    /// SPARQL texts of the frequent query workload driving replication.
    std::vector<std::string> frequent_queries;
    /// Fragment by subject *class* instead of subject hash — the §V
    /// semantic-partitioning direction [27]. Star queries stay local;
    /// class-homogeneous scans touch one partition.
    bool semantic_partitioning = false;
  };

  explicit HaqwaEngine(spark::SparkContext* sc) : HaqwaEngine(sc, Options()) {}
  HaqwaEngine(spark::SparkContext* sc, Options options);

  const EngineTraits& traits() const override { return traits_; }
  Result<LoadStats> Load(const rdf::TripleStore& store) override;
  plan::EngineProfile VerifyProfile() const override;

  /// Number of replicated triples created by workload-aware allocation.
  uint64_t replicated_triples() const { return replicated_triples_; }

  /// The semantic partitioner (null unless the option is on).
  const SemanticPartitioner* semantic_partitioner() const {
    return semantic_.get();
  }

 protected:
  Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) override;
  const rdf::Dictionary& dictionary() const override {
    return store_->dictionary();
  }

 private:
  /// Evaluates one subject group locally per partition; each partition's
  /// matches come out as one keyed batch (keyed by the group's subject
  /// value), still subject-partitioned.
  spark::Rdd<KeyedBatch> EvaluateStarLocal(const SubjectGroup& group,
                                           const VarSchema& schema) const;

  /// Cost proxy for seed selection: candidate count of the group's most
  /// selective pattern.
  uint64_t GroupCost(const SubjectGroup& group) const;

  EngineTraits traits_;
  Options options_;
  const rdf::TripleStore* store_ = nullptr;
  rdf::DatasetStatistics stats_;
  spark::PartitionerInfo subject_partitioner_;
  spark::Rdd<KeyedTriple> by_subject_;
  /// (link predicate pA, target predicate pB) -> pB-triples keyed by the
  /// pA-subject whose object reaches them, co-partitioned with by_subject_.
  std::unordered_map<std::pair<rdf::TermId, rdf::TermId>,
                     spark::Rdd<KeyedTriple>, spark::ValueHasher>
      replicas_;
  /// Link-source predicates additionally replicated keyed by *object*, so a
  /// seed sitting at the target end of the link joins locally too ("the
  /// missing triples are replicated into the partitions that contain the
  /// triples of the seed").
  std::unordered_map<rdf::TermId, spark::Rdd<KeyedTriple>,
                     spark::ValueHasher>
      object_replicas_;
  uint64_t replicated_triples_ = 0;
  std::shared_ptr<const SemanticPartitioner> semantic_;
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_HAQWA_H_
