#include "systems/graphx_sm.h"

#include <any>
#include <chrono>
#include <memory>

#include "systems/plan/planner_utils.h"

namespace rdfspark::systems {

using spark::Rdd;
using spark::graphx::Edge;
using spark::graphx::EdgeTriplet;
using spark::graphx::Graph;
using spark::graphx::VertexId;

namespace {

/// A Match Track table: partial binding rows ending at a vertex, stored as
/// one flat fixed-width batch.
using Mt = sparql::IdTable;
/// Vertex attribute during evaluation: the vertex's term + its MT table.
using VAttr = std::pair<rdf::TermId, Mt>;

}  // namespace

GraphxSmEngine::GraphxSmEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = "GraphX-SM";
  traits_.citation = "[16] Kassaie — arXiv:1701.03091, 2017";
  traits_.data_model = DataModel::kGraph;
  traits_.abstractions = {SparkAbstraction::kGraphX};
  traits_.query_processing = "Graph Iterations";
  traits_.has_optimization = true;
  traits_.optimization_note =
      "connected pattern ordering; per-pattern AggregateMessages rounds";
  traits_.partitioning = "Default";
  traits_.fragment = SparqlFragment::kBgp;
  traits_.contribution =
      "subgraph matching with Match Track tables maintained at vertices via "
      "sendMsg/mergeMsg";
}

Result<LoadStats> GraphxSmEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  stats_ = store.ComputeStatistics();
  int n = options_.num_partitions > 0 ? options_.num_partitions
                                      : sc_->config().default_parallelism;
  std::vector<Edge<rdf::TermId>> edges;
  edges.reserve(store.triples().size());
  for (const auto& t : store.triples()) {
    edges.push_back(Edge<rdf::TermId>{static_cast<VertexId>(t.s),
                                      static_cast<VertexId>(t.o), t.p});
  }
  graph_ = Graph<rdf::TermId, rdf::TermId>::FromEdges(
      sc_, std::move(edges), rdf::TermId{0}, n);
  graph_ = Graph<rdf::TermId, rdf::TermId>(
      graph_.vertices().Map([](const std::pair<VertexId, rdf::TermId>& kv) {
        return std::pair<VertexId, rdf::TermId>(
            kv.first, static_cast<rdf::TermId>(kv.first));
      }),
      graph_.edges());

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = graph_.NumVertices() + graph_.NumEdges();
  stats.stored_bytes = graph_.edges().MemoryFootprint() +
                       graph_.vertices().MemoryFootprint();
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

namespace {

Mt ConcatMt(const Mt& a, const Mt& b) {
  Mt out = a;
  out.AppendRowsFrom(b);
  return out;
}

}  // namespace

Result<plan::PlanPtr> GraphxSmEngine::PlanBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) return Status::Internal("Load() not called");
  if (bgp.empty()) {
    return plan::ConstantResultPlan(sparql::BindingTable::Unit(), "unit");
  }

  auto schema = std::make_shared<VarSchema>();
  for (const auto& tp : bgp) {
    for (const auto& v : tp.Variables()) schema->Add(v);
  }
  size_t width = schema->vars().size();

  std::vector<sparql::TriplePattern> ordered = plan::OrderConnected(bgp, 0);

  auto pattern_est = [this](const sparql::TriplePattern& tp) -> uint64_t {
    if (tp.p.is_variable()) return stats_.num_triples;
    auto id = store_->dictionary().Lookup(tp.p.term());
    if (!id.ok()) return 0;
    auto it = stats_.predicate_count.find(*id);
    return it == stats_.predicate_count.end() ? 0 : it->second;
  };

  // Frontier payload: MT tables keyed by the vertex the partial paths end
  // at. The plan below threads it through one node per pattern.
  plan::PlanPtr root;
  std::string anchor;  // variable whose value keys the frontier ("" = none)
  VarSchema bound;
  bool initialized = false;

  for (const auto& tp : ordered) {
    auto ep = std::make_shared<const EncodedPattern>(
        EncodePattern(store_->dictionary(), tp));
    auto pattern = std::make_shared<const sparql::TriplePattern>(tp);
    const std::string svar = tp.s.is_variable() ? tp.s.var() : "";
    const std::string ovar = tp.o.is_variable() ? tp.o.var() : "";

    if (tp.Variables().empty()) {
      // Fully constant pattern: existence check only.
      bool exists = false;
      if (!ep->impossible) {
        exists = store_->Contains(
            rdf::EncodedTriple{*ep->ids.s, *ep->ids.p, *ep->ids.o});
      }
      if (!exists) {
        return plan::ConstantResultPlan(
            sparql::BindingTable(schema->vars()), "constant pattern absent");
      }
      continue;
    }

    if (!initialized) {
      // First pattern: seed the MT tables from the raw edge matches.
      bool anchor_at_dst = !ovar.empty();
      root = plan::MakeScan(
          plan::NodeKind::kPatternScan, plan::AccessPath::kGraphTraversal,
          tp.ToString() + " (seed)", pattern_est(tp),
          [this, ep, pattern, schema, width, anchor_at_dst](
              std::vector<plan::PlanPayload>) -> Result<plan::PlanPayload> {
            auto seeded = graph_.edges().FlatMap(
                [ep, pattern, schema, width,
                 anchor_at_dst](const Edge<rdf::TermId>& e) {
                  std::vector<std::pair<VertexId, Mt>> out;
                  rdf::EncodedTriple t{static_cast<rdf::TermId>(e.src),
                                       e.attr,
                                       static_cast<rdf::TermId>(e.dst)};
                  if (MatchesConstants(*ep, t)) {
                    IdRow row(width, sparql::kUnbound);
                    if (ExtendRow(*pattern, t, *schema, &row)) {
                      Mt one(width);
                      one.AppendRow(row);
                      out.emplace_back(anchor_at_dst ? e.dst : e.src,
                                       std::move(one));
                    }
                  }
                  return out;
                });
            return plan::PlanPayload(seeded.ReduceByKey(ConcatMt));
          });
      root->out_vars = tp.Variables();
      root->subject_var = svar;
      root->max_cardinality =
          PatternScanBound(store_->dictionary(), stats_, tp);
      anchor = anchor_at_dst ? ovar : svar;
      initialized = true;
      for (const auto& v : tp.Variables()) bound.Add(v);
      continue;
    }

    // Pick the travel direction: forward if the subject is already bound,
    // backward if the object is. Re-anchor the frontier when needed.
    bool forward;
    std::string need;  // variable the frontier must be keyed by
    if (!svar.empty() && bound.IndexOf(svar) >= 0) {
      forward = true;
      need = svar;
    } else if (!ovar.empty() && bound.IndexOf(ovar) >= 0) {
      forward = false;
      need = ovar;
    } else if (!tp.s.is_variable() || !tp.o.is_variable()) {
      // Constant endpoint, disconnected from the current frontier: match
      // the pattern standalone and merge by cartesian below.
      forward = !tp.s.is_variable() ? true : false;
      need.clear();
    } else {
      forward = true;
      need.clear();
    }

    int reanchor_idx = -1;
    if (!need.empty() && need != anchor) {
      reanchor_idx = schema->IndexOf(need);
      anchor = need;
    }

    if (need.empty()) {
      // Disconnected pattern: standalone matches, cartesian merge.
      plan::PlanPtr leaf = plan::MakeScan(
          plan::NodeKind::kPatternScan, plan::AccessPath::kGraphTraversal,
          tp.ToString(), pattern_est(tp),
          [this, ep, pattern, schema, width](std::vector<plan::PlanPayload>)
              -> Result<plan::PlanPayload> {
            return plan::PlanPayload(graph_.edges().MapPartitionsWithIndex(
                [ep, pattern, schema, width](
                    int, const std::vector<Edge<rdf::TermId>>& in) {
                  sparql::IdTable out(width);
                  for (const Edge<rdf::TermId>& e : in) {
                    rdf::EncodedTriple t{static_cast<rdf::TermId>(e.src),
                                         e.attr,
                                         static_cast<rdf::TermId>(e.dst)};
                    if (!MatchesConstants(*ep, t)) continue;
                    rdf::TermId* cells = out.AppendRowUninitialized();
                    std::fill(cells, cells + width, sparql::kUnbound);
                    if (!ExtendRowCells(*pattern, t, *schema, cells)) {
                      out.PopRow();
                    }
                  }
                  return std::vector<sparql::IdTable>{std::move(out)};
                }));
          });
      leaf->out_vars = tp.Variables();
      leaf->subject_var = svar;
      leaf->max_cardinality =
          PatternScanBound(store_->dictionary(), stats_, tp);
      root = plan::MakeBinary(
          plan::NodeKind::kCartesianProduct, "merge match-tracks",
          std::move(root), std::move(leaf),
          [this](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto frontier = std::any_cast<Rdd<std::pair<VertexId, Mt>>>(
                std::move(in[0]));
            auto rows =
                std::any_cast<Rdd<sparql::IdTable>>(std::move(in[1]));
            auto* sc = sc_;
            // Batch-major merge: the per-element path emitted one message
            // per (frontier entry, standalone row) pair; concatenating over
            // the batch's rows in order yields the same per-vertex sequence
            // after ReduceByKey.
            auto crossed = frontier.Cartesian(rows).FlatMap(
                [sc](const std::pair<std::pair<VertexId, Mt>,
                                     sparql::IdTable>& ab) {
                  std::vector<std::pair<VertexId, Mt>> out;
                  const Mt& table = ab.first.second;
                  const sparql::IdTable& batch = ab.second;
                  sc->ChargeJoinComparisons(table.size() * batch.size());
                  Mt merged_rows(table.width());
                  for (size_t j = 0; j < batch.size(); ++j) {
                    for (size_t i = 0; i < table.size(); ++i) {
                      MergeRowsInto(table.row(i), batch.row(j), &merged_rows);
                    }
                  }
                  if (!merged_rows.empty()) {
                    out.emplace_back(ab.first.first, std::move(merged_rows));
                  }
                  return out;
                });
            return plan::PlanPayload(crossed.ReduceByKey(ConcatMt));
          });
      for (const auto& v : tp.Variables()) bound.Add(v);
      continue;
    }

    // One AggregateMessages round: install MT tables at the anchor
    // vertices, forward extended rows along matching edges.
    std::string detail =
        std::string("aggregateMessages ") + (forward ? "forward" : "backward");
    if (reanchor_idx >= 0) detail += " (re-anchor ?" + need + ")";
    plan::PlanPtr leaf = plan::MakeScan(
        plan::NodeKind::kPatternScan, plan::AccessPath::kGraphTraversal,
        tp.ToString(), pattern_est(tp), nullptr);
    leaf->out_vars = tp.Variables();
    leaf->subject_var = svar;
    leaf->max_cardinality = PatternScanBound(store_->dictionary(), stats_, tp);
    root = plan::MakeBinary(
        plan::NodeKind::kPartitionedHashJoin, detail, std::move(root),
        std::move(leaf),
        [this, ep, pattern, schema, forward, reanchor_idx](
            std::vector<plan::PlanPayload> in) -> Result<plan::PlanPayload> {
          auto frontier = std::any_cast<Rdd<std::pair<VertexId, Mt>>>(
              std::move(in[0]));
          if (reanchor_idx >= 0) {
            int idx = reanchor_idx;
            frontier = frontier
                           .FlatMap([idx](const std::pair<VertexId, Mt>& kv) {
                             std::vector<std::pair<VertexId, Mt>> out;
                             for (size_t r = 0; r < kv.second.size(); ++r) {
                               Mt one(kv.second.width());
                               one.AppendRowFrom(kv.second, r);
                               out.emplace_back(
                                   static_cast<VertexId>(kv.second.cell(
                                       r, static_cast<size_t>(idx))),
                                   std::move(one));
                             }
                             return out;
                           })
                           .ReduceByKey(ConcatMt);
          }
          auto installed = graph_.OuterJoinVertices(
              frontier, [](VertexId, const rdf::TermId& term,
                           const std::optional<Mt>& table) {
                return VAttr(term, table ? *table : Mt{});
              });
          auto msgs = installed.AggregateMessages<Mt>(
              [ep, pattern, schema, forward](
                  const EdgeTriplet<VAttr, rdf::TermId>& t) {
                std::vector<std::pair<VertexId, Mt>> out;
                const Mt& source_table =
                    forward ? t.src_attr.second : t.dst_attr.second;
                if (source_table.empty()) return out;
                rdf::EncodedTriple triple{static_cast<rdf::TermId>(t.src),
                                          t.attr,
                                          static_cast<rdf::TermId>(t.dst)};
                if (!MatchesConstants(*ep, triple)) return out;
                Mt extended(source_table.width());
                for (size_t r = 0; r < source_table.size(); ++r) {
                  rdf::TermId* cells = extended.AppendRowUninitialized();
                  sparql::IdSpan base = source_table.row(r);
                  std::copy(base.begin(), base.end(), cells);
                  if (!ExtendRowCells(*pattern, triple, *schema, cells)) {
                    extended.PopRow();
                  }
                }
                if (!extended.empty()) {
                  out.emplace_back(forward ? t.dst : t.src,
                                   std::move(extended));
                }
                return out;
              },
              ConcatMt);
          return plan::PlanPayload(msgs);
        });
    root->key_vars = {need};
    anchor = forward ? ovar : svar;  // may be "" when the far end is const
    for (const auto& v : tp.Variables()) bound.Add(v);
  }

  if (!initialized) {
    // Only constant patterns, all present: one all-unbound row.
    sparql::IdTable rows(width);
    rows.AppendRowFilled(sparql::kUnbound);
    return plan::ConstantResultPlan(ToBindingTable(*schema, std::move(rows)),
                                    "constant-only BGP");
  }

  std::string project_detail;
  for (const auto& v : schema->vars()) {
    project_detail += (project_detail.empty() ? "?" : " ?") + v;
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, project_detail, std::move(root),
      [schema, width](std::vector<plan::PlanPayload> in)
          -> Result<plan::PlanPayload> {
        auto frontier =
            std::any_cast<Rdd<std::pair<VertexId, Mt>>>(std::move(in[0]));
        sparql::IdTable rows(width);
        for (auto& [v, table] : frontier.Collect()) {
          if (table.empty()) continue;
          rows.AppendRowsFrom(table);
        }
        return plan::PlanPayload(ToBindingTable(*schema, std::move(rows)));
      });
  project->key_vars = schema->vars();
  return project;
}

}  // namespace rdfspark::systems
