#ifndef RDFSPARK_SYSTEMS_S2RDF_H_
#define RDFSPARK_SYSTEMS_S2RDF_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spark/sql/session.h"
#include "systems/common.h"
#include "systems/engine.h"

namespace rdfspark::systems {

/// S2RDF [24] — "RDF querying with SPARQL on Spark" over the ExtVP schema.
/// Reproduced mechanisms:
///
///  * ExtVP: per predicate-pair semi-join reductions of the vertical
///    partitioning tables, for subject-subject (SS), object-subject (OS)
///    and subject-object (SO) correlations;
///  * a selectivity factor (SF = |ExtVP| / |VP|) threshold above which
///    sub-tables are not materialized, bounding the storage overhead;
///  * SPARQL is translated to SQL (our parser plays Jena ARQ's role) and
///    executed by the Spark SQL layer;
///  * join order: most bound variables first, ties broken by smaller table.
class S2rdfEngine : public BgpEngineBase {
 public:
  struct Options {
    int num_partitions = -1;
    /// ExtVP tables with SF above this are not materialized (1.0 keeps
    /// everything, 0.0 disables ExtVP entirely).
    double selectivity_threshold = 0.25;
    bool enable_extvp = true;
  };

  explicit S2rdfEngine(spark::SparkContext* sc) : S2rdfEngine(sc, Options()) {}
  S2rdfEngine(spark::SparkContext* sc, Options options);

  const EngineTraits& traits() const override { return traits_; }
  Result<LoadStats> Load(const rdf::TripleStore& store) override;
  plan::EngineProfile VerifyProfile() const override;

  /// The SQL emitted for a BGP (exposed for tests and the EXPLAIN example).
  Result<std::string> TranslateBgpToSql(
      const std::vector<sparql::TriplePattern>& bgp) const;

  /// Count of materialized ExtVP tables and their total rows.
  uint64_t num_extvp_tables() const { return num_extvp_tables_; }
  uint64_t extvp_rows() const { return extvp_rows_; }

 protected:
  Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) override;
  const rdf::Dictionary& dictionary() const override {
    return store_->dictionary();
  }

 private:
  struct TableInfo {
    std::string name;
    uint64_t rows = 0;
  };

  /// Structured form of the SQL translation: one step per (ordered)
  /// pattern with its table, alias and join conditions. Both the emitted
  /// SQL text and the physical plan tree are assembled from this.
  struct SqlParts {
    struct Step {
      std::string table;
      std::string alias;
      uint64_t rows = 0;
      std::vector<std::string> on;  // join conditions (empty for step 0)
      /// Schema facts for the plan verifier: variables first bound by this
      /// step's table, variables the ON conditions equate, and the
      /// pattern's subject variable (empty when the subject is a constant).
      std::vector<std::string> new_vars;
      std::vector<std::string> on_vars;
      std::string subject_var;
    };
    std::vector<Step> steps;
    std::vector<std::string> where;
    std::vector<std::string> var_order;
    std::unordered_map<std::string, std::string> var_column;
  };

  Result<SqlParts> BuildSqlParts(
      const std::vector<sparql::TriplePattern>& bgp) const;

  /// Best table for pattern `i` given its correlations within the BGP.
  TableInfo ChooseTable(const std::vector<sparql::TriplePattern>& bgp,
                        size_t i) const;

  EngineTraits traits_;
  Options options_;
  const rdf::TripleStore* store_ = nullptr;
  std::unique_ptr<spark::sql::SqlSession> session_;
  /// Table sizes for ordering (name -> rows).
  std::unordered_map<std::string, uint64_t> table_rows_;
  uint64_t num_extvp_tables_ = 0;
  uint64_t extvp_rows_ = 0;
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_S2RDF_H_
