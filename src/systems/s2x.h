#ifndef RDFSPARK_SYSTEMS_S2X_H_
#define RDFSPARK_SYSTEMS_S2X_H_

#include <atomic>
#include <vector>

#include "spark/graphx/graph.h"
#include "systems/common.h"
#include "systems/engine.h"

namespace rdfspark::systems {

/// S2X [23] — "graph-parallel querying of RDF with GraphX". Reproduced
/// mechanisms:
///
///  * RDF as a property graph: vertices carry subject/object terms plus a
///    structure of candidate query variables; edges carry the predicate;
///  * BGP matching: every triple pattern is first matched independently,
///    then match candidates are iteratively validated against the candidate
///    sets of adjacent vertices until a fixpoint ("until they do not change
///    anymore"), with invalid candidates discarded;
///  * the final result is assembled from the per-pattern matches with
///    data-parallel joins, and the remaining SPARQL operators run on the
///    data-parallel side (BGP+ fragment).
class S2xEngine : public BgpEngineBase {
 public:
  struct Options {
    int num_partitions = -1;
    int max_iterations = 32;
  };

  explicit S2xEngine(spark::SparkContext* sc) : S2xEngine(sc, Options()) {}
  S2xEngine(spark::SparkContext* sc, Options options);

  const EngineTraits& traits() const override { return traits_; }
  Result<LoadStats> Load(const rdf::TripleStore& store) override;

  /// Validation rounds of the last BGP evaluation. With concurrent
  /// queries on one engine this reports whichever evaluation wrote last.
  int last_iterations() const {
    return last_iterations_.load(std::memory_order_relaxed);
  }

  /// S2X plans defer the whole-BGP matching fixpoint into a shared
  /// MatchState that the first executed scan fills and the assembly joins
  /// consume (match rows are moved out) — a plan is good for exactly one
  /// execution, so the serving plan cache must not reuse it.
  bool ReusablePlans() const override { return false; }

 protected:
  Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) override;
  const rdf::Dictionary& dictionary() const override {
    return store_->dictionary();
  }

 private:
  EngineTraits traits_;
  Options options_;
  const rdf::TripleStore* store_ = nullptr;
  rdf::DatasetStatistics stats_;
  spark::graphx::Graph<rdf::TermId, rdf::TermId> graph_;
  /// Written by the matching fixpoint inside plan execution; atomic so
  /// concurrent queries on one shared engine (the serving layer) do not
  /// race the counter.
  std::atomic<int> last_iterations_{0};
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_S2X_H_
