#include "systems/graphframes_engine.h"

#include <algorithm>
#include <any>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace rdfspark::systems {

namespace sql = spark::sql;
using spark::graphframes::GraphFrame;
using sql::Col;
using sql::DataFrame;
using sql::Expr;
using sql::Lit;

GraphFramesEngine::GraphFramesEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = "GF-SPARQL";
  traits_.citation = "[4] Bahrami, Gulati, Abulaish — WI 2017";
  traits_.data_model = DataModel::kGraph;
  traits_.abstractions = {SparkAbstraction::kGraphFrames};
  traits_.query_processing = "Subgraph Matching";
  traits_.has_optimization = true;
  traits_.optimization_note =
      "predicate-frequency sub-query ordering + local search space pruning";
  traits_.partitioning = "Default";
  traits_.fragment = SparqlFragment::kBgp;
  traits_.contribution =
      "first efficient RDF processing over the GraphFrames API";
}

Result<LoadStats> GraphFramesEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  stats_ = store.ComputeStatistics();
  int n = options_.num_partitions > 0 ? options_.num_partitions
                                      : sc_->config().default_parallelism;

  // Nodelist and edgelist.
  std::unordered_set<rdf::TermId> node_ids;
  std::vector<sql::Row> edge_rows;
  for (const auto& t : store.triples()) {
    node_ids.insert(t.s);
    node_ids.insert(t.o);
    edge_rows.push_back(sql::Row{static_cast<int64_t>(t.s),
                                 static_cast<int64_t>(t.o),
                                 static_cast<int64_t>(t.p)});
  }
  std::vector<sql::Row> node_rows;
  node_rows.reserve(node_ids.size());
  for (rdf::TermId id : node_ids) {
    node_rows.push_back(sql::Row{static_cast<int64_t>(id)});
  }
  sql::Schema vschema{{sql::Field{"id", sql::DataType::kInt64}}};
  sql::Schema eschema{{sql::Field{"src", sql::DataType::kInt64},
                       sql::Field{"dst", sql::DataType::kInt64},
                       sql::Field{"rel", sql::DataType::kInt64}}};
  graph_ = GraphFrame(DataFrame::FromRows(sc_, vschema, node_rows, n),
                      DataFrame::FromRows(sc_, eschema, edge_rows, n));

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = node_rows.size() + edge_rows.size();
  stats.stored_bytes = graph_.vertices().EstimatedBytes() +
                       graph_.edges().EstimatedBytes();
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

Result<plan::PlanPtr> GraphFramesEngine::PlanBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) return Status::Internal("Load() not called");
  if (bgp.empty()) {
    return plan::ConstantResultPlan(sparql::BindingTable::Unit(), "unit");
  }
  const rdf::Dictionary& dict = store_->dictionary();

  // Sub-query ordering: non-descending predicate frequency, kept connected.
  auto frequency = [&](const sparql::TriplePattern& tp) -> uint64_t {
    if (tp.p.is_variable()) return stats_.num_triples;
    auto id = dict.Lookup(tp.p.term());
    if (!id.ok()) return 0;
    auto it = stats_.predicate_count.find(*id);
    return it == stats_.predicate_count.end() ? 0 : it->second;
  };
  std::vector<sparql::TriplePattern> ordered = bgp;
  if (options_.enable_frequency_ordering) {
    std::vector<sparql::TriplePattern> result;
    std::vector<bool> used(bgp.size(), false);
    VarSchema seen;
    size_t first = 0;
    for (size_t i = 1; i < bgp.size(); ++i) {
      if (frequency(bgp[i]) < frequency(bgp[first])) first = i;
    }
    auto take = [&](size_t i) {
      used[i] = true;
      for (const auto& v : bgp[i].Variables()) seen.Add(v);
      result.push_back(bgp[i]);
    };
    take(first);
    while (result.size() < bgp.size()) {
      int best = -1;
      bool best_connected = false;
      for (size_t i = 0; i < bgp.size(); ++i) {
        if (used[i]) continue;
        bool connected = !SharedVars(bgp[i], seen).empty();
        if (best < 0 || (connected && !best_connected) ||
            (connected == best_connected &&
             frequency(bgp[i]) < frequency(bgp[static_cast<size_t>(best)]))) {
          best = static_cast<int>(i);
          best_connected = connected;
        }
      }
      take(static_cast<size_t>(best));
    }
    ordered = std::move(result);
  }

  // Local search space pruning: drop triples whose predicate is absent
  // from the BGP (only when all predicates are bound). The filter expression
  // is built here; the actual FilterEdges runs in the root exec.
  bool all_bound_predicates = true;
  for (const auto& tp : ordered) {
    all_bound_predicates &= !tp.p.is_variable();
  }
  bool do_prune = options_.enable_pruning && all_bound_predicates;
  Expr keep;
  if (do_prune) {
    for (const auto& tp : ordered) {
      auto id = dict.Lookup(tp.p.term());
      Expr eq = Col("rel") ==
                Lit(sql::Value(id.ok() ? static_cast<int64_t>(*id)
                                       : int64_t{-1}));
      keep = keep.valid() ? (keep || eq) : eq;
    }
  }

  // Motif construction: variables map to motif names; constants get fresh
  // names plus a post filter; repeated variables within a pattern get a
  // second name plus an equality filter.
  std::unordered_map<std::string, std::string> var_name;
  std::vector<std::pair<std::string, std::string>> var_column;  // var, column
  int name_counter = 0;
  std::vector<Expr> post_filters;
  GraphFrame::MotifOptions motif_options;
  std::string motif;

  // Reverse of var_name for motif vertex names: lets join nodes report
  // their keys as SPARQL variables rather than motif names.
  std::unordered_map<std::string, std::string> name_var;

  auto fresh = [&]() { return "m" + std::to_string(name_counter++); };
  auto vertex_name = [&](const sparql::PatternTerm& t,
                         const std::unordered_set<std::string>& taken)
      -> std::string {
    if (t.is_variable()) {
      auto it = var_name.find(t.var());
      if (it == var_name.end()) {
        std::string name = fresh();
        var_name.emplace(t.var(), name);
        name_var.emplace(name, t.var());
        var_column.emplace_back(t.var(), name);
        return name;
      }
      if (!taken.contains(it->second)) return it->second;
      // Same variable twice in one pattern: alias + equality filter.
      std::string alias = fresh();
      post_filters.push_back(Col(alias) == Col(it->second));
      return alias;
    }
    std::string name = fresh();
    auto id = dict.Lookup(t.term());
    // Constant vertices constrain the match as soon as the column exists.
    motif_options.vertex_predicates.emplace(
        name,
        Col(name) ==
            Lit(sql::Value(id.ok() ? static_cast<int64_t>(*id)
                                   : int64_t{-1})));
    return name;
  };

  plan::PlanPtr root;
  std::unordered_set<std::string> motif_names_seen;
  for (size_t i = 0; i < ordered.size(); ++i) {
    const auto& tp = ordered[i];
    std::unordered_set<std::string> taken;
    std::string s_name = vertex_name(tp.s, taken);
    taken.insert(s_name);
    std::string o_name = vertex_name(tp.o, taken);
    std::string e_name = "e" + std::to_string(i);
    std::string element = "(" + s_name + ")-[" + e_name + "]->(" + o_name +
                          ")";
    if (!motif.empty()) motif += "; ";
    motif += element;
    // Descriptive plan node per motif element; the matching itself is
    // monolithic (FindMotif in the root exec).
    auto leaf = plan::MakeScan(
        plan::NodeKind::kPatternScan, plan::AccessPath::kGraphTraversal,
        element + " " + tp.ToString() + (do_prune ? " (pruned)" : ""),
        frequency(tp), nullptr);
    leaf->out_vars = tp.Variables();
    if (tp.s.is_variable()) leaf->subject_var = tp.s.var();
    leaf->max_cardinality = PatternScanBound(store_->dictionary(), stats_, tp);
    if (root == nullptr) {
      root = std::move(leaf);
    } else {
      std::vector<std::string> shared_names;
      if (motif_names_seen.contains(s_name)) shared_names.push_back(s_name);
      if (motif_names_seen.contains(o_name)) shared_names.push_back(o_name);
      if (shared_names.empty()) {
        root = plan::MakeBinary(plan::NodeKind::kCartesianProduct,
                                "disconnected motif", std::move(root),
                                std::move(leaf), nullptr);
      } else {
        std::string join_detail = "on";
        for (const auto& name : shared_names) join_detail += " " + name;
        root = plan::MakeBinary(plan::NodeKind::kPartitionedHashJoin,
                                join_detail, std::move(root), std::move(leaf),
                                nullptr);
        // Shared motif names always stand for variables (constants get a
        // fresh name per occurrence), so every name resolves.
        for (const auto& name : shared_names) {
          auto it = name_var.find(name);
          if (it != name_var.end()) root->key_vars.push_back(it->second);
        }
      }
    }
    motif_names_seen.insert(s_name);
    motif_names_seen.insert(o_name);
    if (tp.p.is_variable()) {
      const std::string column = e_name + ".rel";
      auto it = var_name.find(tp.p.var());
      if (it == var_name.end()) {
        var_name.emplace(tp.p.var(), column);
        var_column.emplace_back(tp.p.var(), column);
      } else {
        post_filters.push_back(Col(column) == Col(it->second));
      }
    } else {
      // Edge labels constrain the matching itself.
      auto id = dict.Lookup(tp.p.term());
      motif_options.edge_predicates.emplace(
          e_name,
          Col(e_name + ".rel") ==
              Lit(sql::Value(id.ok() ? static_cast<int64_t>(*id)
                                     : int64_t{-1})));
    }
  }

  std::string project_detail;
  std::vector<std::string> project_vars;
  for (const auto& [var, column] : var_column) {
    project_detail += (project_detail.empty() ? "?" : " ?") + var;
    project_vars.push_back(var);
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, project_detail, std::move(root),
      [this, do_prune, keep, motif, motif_options, post_filters, var_column](
          std::vector<plan::PlanPayload>) -> Result<plan::PlanPayload> {
        GraphFrame graph = graph_;
        if (do_prune) graph = graph.FilterEdges(keep);
        RDFSPARK_ASSIGN_OR_RETURN(DataFrame result,
                                  graph.FindMotif(motif, motif_options));
        for (const Expr& f : post_filters) result = result.Filter(f);

        // Project variable columns and convert ids.
        std::vector<std::string> vars;
        std::vector<int> cols;
        for (const auto& [var, column] : var_column) {
          int idx = result.schema().Index(column);
          if (idx < 0) continue;
          vars.push_back(var);
          cols.push_back(idx);
        }
        sparql::BindingTable table(vars);
        sparql::IdTable* rows = table.mutable_rows();
        for (const auto& row : result.Collect()) {
          rdf::TermId* cells = rows->AppendRowUninitialized();
          for (size_t i = 0; i < cols.size(); ++i) {
            const sql::Value& v = row[static_cast<size_t>(cols[i])];
            cells[i] = sql::IsNull(v) ? sparql::kUnbound
                                      : static_cast<rdf::TermId>(
                                            std::get<int64_t>(v));
          }
        }
        return plan::PlanPayload(std::move(table));
      });
  project->key_vars = std::move(project_vars);
  return project;
}

}  // namespace rdfspark::systems
