#ifndef RDFSPARK_SYSTEMS_BATCH_H_
#define RDFSPARK_SYSTEMS_BATCH_H_

#include <string>
#include <utility>
#include <vector>

#include "spark/rdd.h"
#include "spark/value_hash.h"
#include "sparql/id_table.h"
#include "systems/common.h"

namespace rdfspark::systems {

/// Batch-at-a-time data plane: every RDD partition carries ONE IdTable
/// (possibly empty) instead of one std::vector per row. Shuffles move
/// fixed-width sub-batches, joins build/probe contiguous id memory, and
/// row order is preserved exactly as the per-element path produced it:
/// sub-batches merge in source-partition order, probes walk the left batch
/// in row order, and matches emit in build order.

/// A batch whose rows carry a routing key (e.g. HAQWA/SparkRDF subject
/// keys, which are not always a row column — constant subjects). keys and
/// rows are parallel: keys[i] routes rows.row(i).
struct KeyedBatch {
  std::vector<rdf::TermId> keys;
  sparql::IdTable rows;

  uint64_t EstimatedByteSize() const {
    return 24 + keys.size() * sizeof(rdf::TermId) + rows.EstimatedByteSize();
  }
  bool operator==(const KeyedBatch& other) const = default;
};

/// A dictionary-encoded triple routed by one of its terms (subject for
/// HAQWA fragments, join term for replicas). Stays element-wise: triples
/// are the base data, not intermediate rows.
using KeyedTriple = std::pair<rdf::TermId, rdf::EncodedTriple>;

/// Distributes a driver-side table over `n` partitions (one batch each),
/// with the same contiguous slice boundaries spark::Parallelize uses for
/// `rows.size()` records.
spark::Rdd<sparql::IdTable> ParallelizeBatch(spark::SparkContext* sc,
                                             sparql::IdTable rows, int n);

/// Hash-repartitions rows by column `key_col`: row i goes to partition
/// HashValue(row[key_col]) % n — identical placement to keying the row and
/// calling PartitionByKey. The resulting batches carry `info` as their
/// partitioner claim; no-op when the input already claims `info`.
spark::Rdd<sparql::IdTable> RepartitionBatches(
    const spark::Rdd<sparql::IdTable>& rdd, int key_col, int n, size_t width,
    const std::string& name, spark::PartitionerInfo info);

/// Keyed repartition with a caller-chosen routing function over the
/// side-car key (HAQWA's semantic partitioner routes by rdf:type class,
/// not by hash). `target(key) % n` picks the partition.
template <typename TargetFn>
spark::Rdd<KeyedBatch> RepartitionKeyedBy(const spark::Rdd<KeyedBatch>& rdd,
                                          TargetFn target, int n, size_t width,
                                          const std::string& name,
                                          spark::PartitionerInfo info) {
  if (rdd.node()->partitioner() && *rdd.node()->partitioner() == info) {
    return rdd;
  }
  auto split = rdd.MapPartitionsWithIndex(
      [target, n, width](int, const std::vector<KeyedBatch>& in) {
        std::vector<std::pair<int, KeyedBatch>> out;
        std::vector<int> slot(static_cast<size_t>(n), -1);
        for (const KeyedBatch& batch : in) {
          for (size_t r = 0; r < batch.rows.size(); ++r) {
            int t = static_cast<int>(target(batch.keys[r]) %
                                     static_cast<uint64_t>(n));
            int& s = slot[static_cast<size_t>(t)];
            if (s < 0) {
              s = static_cast<int>(out.size());
              out.emplace_back(t,
                               KeyedBatch{{}, sparql::IdTable(width)});
            }
            auto& sub = out[static_cast<size_t>(s)].second;
            sub.keys.push_back(batch.keys[r]);
            sub.rows.AppendRowFrom(batch.rows, r);
          }
        }
        return out;
      });
  auto shuffled = split.ShuffleBy(
      [](const std::pair<int, KeyedBatch>& kv) {
        return static_cast<uint64_t>(kv.first);
      },
      n, name, info);
  return shuffled.MapPartitionsWithIndex(
      [width](int, const std::vector<std::pair<int, KeyedBatch>>& in) {
        KeyedBatch merged{{}, sparql::IdTable(width)};
        for (const auto& kv : in) {
          merged.keys.insert(merged.keys.end(), kv.second.keys.begin(),
                             kv.second.keys.end());
          merged.rows.AppendRowsFrom(kv.second.rows);
        }
        return std::vector<KeyedBatch>{std::move(merged)};
      },
      info);
}

/// Hash-keyed repartition (the PartitionByKey analogue).
spark::Rdd<KeyedBatch> RepartitionKeyed(const spark::Rdd<KeyedBatch>& rdd,
                                        int n, size_t width,
                                        const std::string& name,
                                        spark::PartitionerInfo info);

/// Recomputes every key from row column `key_col` (narrow; drops any
/// partitioner claim — callers re-assert with AssumePartitioner when the
/// placement proof holds).
spark::Rdd<KeyedBatch> RekeyBatches(const spark::Rdd<KeyedBatch>& rdd,
                                    int key_col, size_t width);

/// Hash join of two batch RDDs on row column `key_col` (same schema on
/// both sides), merging matched rows with MergeRowsInto. Mirrors
/// Rdd::Join: co-partitioned inputs zip directly; otherwise both sides
/// repartition to max(partitions); output claims {"hash", n, 0}.
spark::Rdd<sparql::IdTable> JoinBatchesOn(
    spark::SparkContext* sc, const spark::Rdd<sparql::IdTable>& left,
    const spark::Rdd<sparql::IdTable>& right, int key_col, size_t width);

/// Keyed-batch join on the side-car keys. Joined rows keep the probe key.
spark::Rdd<KeyedBatch> JoinKeyedBatches(spark::SparkContext* sc,
                                        const spark::Rdd<KeyedBatch>& left,
                                        const spark::Rdd<KeyedBatch>& right,
                                        size_t width);

/// Joins a keyed-batch RDD against keyed triples (HAQWA replica fast
/// path): each matched triple extends the row under `pattern`'s variable
/// bindings after `ep`'s constant check; conflicting extensions drop.
spark::Rdd<KeyedBatch> JoinKeyedWithTriples(
    spark::SparkContext* sc, const spark::Rdd<KeyedBatch>& left,
    const spark::Rdd<KeyedTriple>& right, const EncodedPattern& ep,
    const VarSchema& schema, size_t width);

/// Cartesian merge of two batch RDDs (ln*rn output partitions, one batch
/// each), left-major within a partition pair.
spark::Rdd<sparql::IdTable> CartesianMergeBatches(
    spark::SparkContext* sc, const spark::Rdd<sparql::IdTable>& left,
    const spark::Rdd<sparql::IdTable>& right, size_t width);

/// Keyed cartesian merge; the surviving key is the left row's when
/// `keep_left_key`, else the right row's.
spark::Rdd<KeyedBatch> CartesianMergeKeyed(spark::SparkContext* sc,
                                           const spark::Rdd<KeyedBatch>& left,
                                           const spark::Rdd<KeyedBatch>& right,
                                           bool keep_left_key, size_t width);

/// Collects all batches into one driver-side table (partition order).
sparql::IdTable CollectRows(const spark::Rdd<sparql::IdTable>& rdd,
                            size_t width);

/// Collects a keyed-batch RDD, dropping the keys.
sparql::IdTable CollectKeyedRows(const spark::Rdd<KeyedBatch>& rdd,
                                 size_t width);

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_BATCH_H_
