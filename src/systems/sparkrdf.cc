#include "systems/sparkrdf.h"

#include <algorithm>
#include <any>
#include <chrono>
#include <memory>
#include <optional>

#include "systems/batch.h"

namespace rdfspark::systems {

using spark::Rdd;

SparkRdfEngine::SparkRdfEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = "SparkRDF";
  traits_.citation = "[5] Chen, Chen, Zhang, Zhang — WI-IAT 2015";
  traits_.data_model = DataModel::kGraph;
  traits_.abstractions = {SparkAbstraction::kRdd};
  traits_.query_processing = "Custom";
  traits_.has_optimization = true;
  traits_.optimization_note =
      "rdf:type elimination via class messages; variable-order query plan; "
      "on-demand dynamic pre-partitioning";
  traits_.partitioning = "Hash-sbj";
  traits_.fragment = SparqlFragment::kBgp;
  traits_.contribution =
      "multi-layer elastic sub-graph indexes reduce I/O and intermediate "
      "communication";
}

plan::EngineProfile SparkRdfEngine::VerifyProfile() const {
  plan::EngineProfile profile;
  profile.engine_name = traits_.name;
  // RDSGs are dynamically pre-partitioned on the current join variable
  // (subject hash at load); co-partitioned joins mark partition_local.
  profile.subject_partitioned = true;
  return profile;
}

Result<LoadStats> SparkRdfEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  num_partitions_ = options_.num_partitions > 0
                        ? options_.num_partitions
                        : sc_->config().default_parallelism;
  auto type_id = store.TypePredicate();
  has_type_predicate_ = type_id.has_value();
  if (has_type_predicate_) type_predicate_ = *type_id;

  all_triples_.assign(store.triples().begin(), store.triples().end());
  class_index_.clear();
  relation_index_.clear();
  cr_index_.clear();
  rc_index_.clear();
  crc_index_.clear();
  index_records_ = 0;

  // Level 1: class files (rdf:type triples by object class) and relation
  // files (other triples by predicate name). rdf:type triples also stay
  // addressable as a relation for class-variable patterns.
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> classes_of;
  for (const auto& t : all_triples_) {
    if (has_type_predicate_ && t.p == type_predicate_) {
      class_index_[t.o].insert(t.s);
      classes_of[t.s].push_back(t.o);
    }
    relation_index_[t.p].push_back(t);
    ++index_records_;
  }

  // Levels 2 and 3: divide each predicate file by the classes of subjects
  // and objects.
  if (options_.enable_class_indexes) {
    for (const auto& [p, triples] : relation_index_) {
      if (has_type_predicate_ && p == type_predicate_) continue;
      for (const auto& t : triples) {
        auto s_it = classes_of.find(t.s);
        auto o_it = classes_of.find(t.o);
        if (s_it != classes_of.end()) {
          for (rdf::TermId sc : s_it->second) {
            cr_index_[{sc, p}].push_back(t);
            ++index_records_;
            if (o_it != classes_of.end()) {
              for (rdf::TermId oc : o_it->second) {
                crc_index_[{sc, p, oc}].push_back(t);
                ++index_records_;
              }
            }
          }
        }
        if (o_it != classes_of.end()) {
          for (rdf::TermId oc : o_it->second) {
            rc_index_[{p, oc}].push_back(t);
            ++index_records_;
          }
        }
      }
    }
  }

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = index_records_;
  stats.stored_bytes = index_records_ * 24;
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

const SparkRdfEngine::TripleList* SparkRdfEngine::SelectFile(
    const sparql::TriplePattern& tp,
    const std::unordered_map<std::string, rdf::TermId>& var_class) const {
  static const TripleList kEmpty;
  if (tp.p.is_variable()) return &all_triples_;
  auto pid = store_->dictionary().Lookup(tp.p.term());
  if (!pid.ok()) return &kEmpty;

  std::optional<rdf::TermId> s_class, o_class;
  // rdf:type itself is only filed in the relation index (levels 2/3 divide
  // non-type predicates).
  bool is_type = has_type_predicate_ && *pid == type_predicate_;
  if (options_.enable_class_indexes && !is_type) {
    if (tp.s.is_variable()) {
      auto it = var_class.find(tp.s.var());
      if (it != var_class.end()) s_class = it->second;
    }
    if (tp.o.is_variable()) {
      auto it = var_class.find(tp.o.var());
      if (it != var_class.end()) o_class = it->second;
    }
  }
  const TripleList* best = nullptr;
  if (s_class && o_class) {
    auto it = crc_index_.find({*s_class, *pid, *o_class});
    best = it == crc_index_.end() ? &kEmpty : &it->second;
    return best;
  }
  if (s_class) {
    auto it = cr_index_.find({*s_class, *pid});
    return it == cr_index_.end() ? &kEmpty : &it->second;
  }
  if (o_class) {
    auto it = rc_index_.find({*pid, *o_class});
    return it == rc_index_.end() ? &kEmpty : &it->second;
  }
  auto it = relation_index_.find(*pid);
  return it == relation_index_.end() ? &kEmpty : &it->second;
}

Result<plan::PlanPtr> SparkRdfEngine::PlanBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) return Status::Internal("Load() not called");
  if (bgp.empty()) {
    return plan::ConstantResultPlan(sparql::BindingTable::Unit(), "unit");
  }
  const rdf::Dictionary& dict = store_->dictionary();

  VarSchema schema;
  for (const auto& tp : bgp) {
    for (const auto& v : tp.Variables()) schema.Add(v);
  }
  size_t width = schema.vars().size();
  auto schema_copy = std::make_shared<const VarSchema>(schema);

  // rdf:type elimination: (?x rdf:type Class) patterns become class
  // constraints passed to the variable's other patterns.
  std::unordered_map<std::string, rdf::TermId> var_class;
  std::vector<sparql::TriplePattern> work;
  std::vector<std::string> class_only_vars;
  if (options_.enable_class_indexes && has_type_predicate_) {
    for (const auto& tp : bgp) {
      bool is_type_const = !tp.p.is_variable() && tp.s.is_variable() &&
                           !tp.o.is_variable() &&
                           tp.p.term().lexical() == rdf::kRdfType;
      if (is_type_const) {
        auto cid = dict.Lookup(tp.o.term());
        if (!cid.ok()) {
          return plan::ConstantResultPlan(sparql::BindingTable(schema.vars()),
                                          "unknown class");
        }
        // Keep only the first class constraint per variable; further type
        // patterns stay as normal patterns.
        if (!var_class.contains(tp.s.var())) {
          var_class[tp.s.var()] = *cid;
          continue;
        }
      }
      work.push_back(tp);
    }
    // Variables constrained by class only: bind from the class index.
    for (const auto& [var, cls] : var_class) {
      bool appears = false;
      for (const auto& tp : work) {
        for (const auto& v : tp.Variables()) appears |= v == var;
      }
      if (!appears) class_only_vars.push_back(var);
    }
  } else {
    work = bgp;
  }

  // Query plan: order join variables by the total size of the files their
  // patterns read; per variable, its patterns ordered by file size.
  std::vector<std::string> var_order;
  {
    std::unordered_map<std::string, uint64_t> var_cost;
    for (const auto& tp : work) {
      const TripleList* file = SelectFile(tp, var_class);
      for (const auto& v : tp.Variables()) var_cost[v] += file->size();
    }
    for (const auto& [v, cost] : var_cost) var_order.push_back(v);
    std::sort(var_order.begin(), var_order.end(),
              [&](const std::string& a, const std::string& b) {
                return var_cost[a] < var_cost[b];
              });
  }

  spark::PartitionerInfo part_info{"hash-sbj", num_partitions_, 0};

  // Names the MESG file SelectFile picks for a pattern, for EXPLAIN.
  auto file_access = [&](const sparql::TriplePattern& tp)
      -> std::pair<plan::AccessPath, std::string> {
    if (tp.p.is_variable()) {
      return {plan::AccessPath::kFullScan, "all triples"};
    }
    auto pid = dict.Lookup(tp.p.term());
    if (!pid.ok()) return {plan::AccessPath::kFullScan, "missing predicate"};
    bool is_type = has_type_predicate_ && *pid == type_predicate_;
    bool s_cls = false;
    bool o_cls = false;
    if (options_.enable_class_indexes && !is_type) {
      s_cls = tp.s.is_variable() && var_class.contains(tp.s.var());
      o_cls = tp.o.is_variable() && var_class.contains(tp.o.var());
    }
    if (s_cls && o_cls) return {plan::AccessPath::kClassIndex, "crc file"};
    if (s_cls) return {plan::AccessPath::kClassIndex, "cr file"};
    if (o_cls) return {plan::AccessPath::kClassIndex, "rc file"};
    return {plan::AccessPath::kVpTable, "relation file"};
  };

  // RDSG generation: a scan leaf loads its file on demand in the exec,
  // pre-partitioned on the join variable's value.
  auto scan_pattern = [&](const sparql::TriplePattern& tp,
                          const std::string& key_var) -> plan::PlanPtr {
    const TripleList* file = SelectFile(tp, var_class);
    auto [access, file_kind] = file_access(tp);
    auto ep = std::make_shared<const EncodedPattern>(EncodePattern(dict, tp));
    auto pattern = std::make_shared<const sparql::TriplePattern>(tp);
    int key_idx = schema.IndexOf(key_var);
    auto node = plan::MakeScan(
        plan::NodeKind::kPatternScan, access,
        tp.ToString() + " (" + file_kind + ", partition on ?" + key_var + ")",
        file->size(),
        [this, file, ep, pattern, schema_copy, width, key_idx, part_info](
            std::vector<plan::PlanPayload>) -> Result<plan::PlanPayload> {
          auto rows =
              Parallelize(sc_, *file, num_partitions_)
                  .MapPartitionsWithIndex(
                      [ep, pattern, schema_copy, width, key_idx](
                          int, const std::vector<rdf::EncodedTriple>& in) {
                        KeyedBatch out{{}, sparql::IdTable(width)};
                        for (const rdf::EncodedTriple& t : in) {
                          if (!MatchesConstants(*ep, t)) continue;
                          rdf::TermId* cells =
                              out.rows.AppendRowUninitialized();
                          std::fill(cells, cells + width, sparql::kUnbound);
                          if (ExtendRowCells(*pattern, t, *schema_copy,
                                             cells)) {
                            out.keys.push_back(
                                cells[static_cast<size_t>(key_idx)]);
                          } else {
                            out.rows.PopRow();
                          }
                        }
                        return std::vector<KeyedBatch>{std::move(out)};
                      });
          return plan::PlanPayload(RepartitionKeyed(
              rows, num_partitions_, width, "PartitionByKey", part_info));
        });
    node->out_vars = tp.Variables();
    if (tp.s.is_variable()) node->subject_var = tp.s.var();
    // The scan filters its class-eliminated file, so the file size is a
    // sound cap (tighter than the whole-store pattern bound).
    node->max_cardinality = file->size();
    return node;
  };

  plan::PlanPtr current;
  std::string current_key;
  std::vector<bool> done(work.size(), false);
  VarSchema bound;

  for (const auto& x : var_order) {
    // Patterns of this variable, smallest file first.
    std::vector<size_t> mine;
    for (size_t i = 0; i < work.size(); ++i) {
      if (done[i]) continue;
      for (const auto& v : work[i].Variables()) {
        if (v == x) {
          mine.push_back(i);
          break;
        }
      }
    }
    if (mine.empty()) continue;
    std::sort(mine.begin(), mine.end(), [&](size_t a, size_t b) {
      return SelectFile(work[a], var_class)->size() <
             SelectFile(work[b], var_class)->size();
    });

    for (size_t i : mine) {
      done[i] = true;
      auto leaf = scan_pattern(work[i], x);
      if (current == nullptr) {
        current = std::move(leaf);
        current_key = x;
      } else {
        if (current_key != x && bound.IndexOf(x) < 0) {
          // Rows missing x (disconnected component boundary) go through a
          // cartesian merge instead.
          current = plan::MakeBinary(
              plan::NodeKind::kCartesianProduct,
              "merge-rows (re-partition on ?" + x + ")", std::move(current),
              std::move(leaf),
              [this, width, part_info](std::vector<plan::PlanPayload> in)
                  -> Result<plan::PlanPayload> {
                auto cur = std::any_cast<Rdd<KeyedBatch>>(std::move(in[0]));
                auto rows = std::any_cast<Rdd<KeyedBatch>>(std::move(in[1]));
                // The merged row adopts the fresh leaf's key (the new join
                // variable), like the per-element path did.
                auto crossed = CartesianMergeKeyed(
                    sc_, cur, rows, /*keep_left_key=*/false, width);
                return plan::PlanPayload(RepartitionKeyed(
                    crossed, num_partitions_, width, "PartitionByKey",
                    part_info));
              });
          current_key = x;
          for (const auto& v : work[i].Variables()) bound.Add(v);
          continue;
        }
        bool need_rekey = current_key != x;
        int idx = schema.IndexOf(x);
        current = plan::MakeBinary(
            plan::NodeKind::kPartitionedHashJoin,
            "on ?" + x +
                (need_rekey ? " (re-partition)" : " (co-partitioned)"),
            std::move(current), std::move(leaf),
            [this, need_rekey, idx, width, part_info](
                std::vector<plan::PlanPayload> in)
                -> Result<plan::PlanPayload> {
              auto cur = std::any_cast<Rdd<KeyedBatch>>(std::move(in[0]));
              auto rows = std::any_cast<Rdd<KeyedBatch>>(std::move(in[1]));
              if (need_rekey) {
                cur = RepartitionKeyed(RekeyBatches(cur, idx, width),
                                       num_partitions_, width,
                                       "PartitionByKey", part_info);
              }
              // Co-partitioned join on x (no shuffle after the
              // pre-partition).
              auto joined = JoinKeyedBatches(sc_, cur, rows, width);
              return plan::PlanPayload(joined.AssumePartitioner(part_info));
            });
        current->key_vars = {x};
        // The fresh leaf is pre-partitioned on x; without a re-key the
        // accumulated side already is too, so the join never shuffles.
        current->partition_local = !need_rekey;
        current_key = x;
      }
      for (const auto& v : work[i].Variables()) bound.Add(v);
    }
  }

  // Bridge from the distributed join phase to the driver-side class
  // constraint phase.
  plan::PlanPtr rows_plan;
  if (current != nullptr) {
    rows_plan = plan::MakeUnary(
        plan::NodeKind::kProject, "collect matched rows", std::move(current),
        [width](std::vector<plan::PlanPayload> in)
            -> Result<plan::PlanPayload> {
          auto cur = std::any_cast<Rdd<KeyedBatch>>(std::move(in[0]));
          return plan::PlanPayload(CollectKeyedRows(cur, width));
        });
  } else {
    rows_plan = plan::MakeScan(
        plan::NodeKind::kPatternScan, plan::AccessPath::kNone,
        "unit row (all patterns class-eliminated)", 1,
        [width](std::vector<plan::PlanPayload>) -> Result<plan::PlanPayload> {
          sparql::IdTable unit(width);
          unit.AppendRowFilled(sparql::kUnbound);
          return plan::PlanPayload(std::move(unit));
        });
    rows_plan->max_cardinality = 1;
  }

  // Class constraints for variables bound by other patterns.
  for (const auto& [var, cls] : var_class) {
    auto it = class_index_.find(cls);
    int idx = schema.IndexOf(var);
    if (idx < 0) continue;
    const std::unordered_set<rdf::TermId>* instances =
        it == class_index_.end() ? nullptr : &it->second;
    auto cname = dict.DecodeString(cls);
    std::string cls_name = cname.ok() ? *cname : "#" + std::to_string(cls);
    bool class_only =
        std::find(class_only_vars.begin(), class_only_vars.end(), var) !=
        class_only_vars.end();
    if (class_only) {
      // Bind from the class index (cartesian with current rows).
      auto index_leaf = plan::MakeScan(
          plan::NodeKind::kPatternScan, plan::AccessPath::kClassIndex,
          "instances of " + cls_name,
          instances == nullptr ? 0 : instances->size(), nullptr);
      index_leaf->out_vars = {var};
      index_leaf->subject_var = var;
      index_leaf->max_cardinality =
          instances == nullptr ? 0 : instances->size();
      rows_plan = plan::MakeBinary(
          plan::NodeKind::kCartesianProduct, "bind ?" + var,
          std::move(rows_plan), std::move(index_leaf),
          [instances, idx](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto rows = std::any_cast<sparql::IdTable>(std::move(in[0]));
            sparql::IdTable expanded(rows.width());
            if (instances != nullptr) {
              for (size_t r = 0; r < rows.size(); ++r) {
                for (rdf::TermId instance : *instances) {
                  rdf::TermId* cells = expanded.AppendRowUninitialized();
                  sparql::IdSpan base = rows.row(r);
                  std::copy(base.begin(), base.end(), cells);
                  cells[static_cast<size_t>(idx)] = instance;
                }
              }
            }
            return plan::PlanPayload(std::move(expanded));
          });
    } else {
      rows_plan = plan::MakeUnary(
          plan::NodeKind::kFilter,
          "?" + var + " is-a " + cls_name + " (class index)",
          std::move(rows_plan),
          [instances, idx](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto rows = std::any_cast<sparql::IdTable>(std::move(in[0]));
            sparql::IdTable kept(rows.width());
            for (size_t r = 0; r < rows.size(); ++r) {
              rdf::TermId value = rows.cell(r, static_cast<size_t>(idx));
              if (instances != nullptr && instances->count(value)) {
                kept.AppendRowFrom(rows, r);
              }
            }
            return plan::PlanPayload(std::move(kept));
          });
      rows_plan->key_vars = {var};
    }
  }

  std::string project_detail;
  for (const auto& v : schema.vars()) {
    project_detail += (project_detail.empty() ? "?" : " ?") + v;
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, project_detail, std::move(rows_plan),
      [schema_copy](std::vector<plan::PlanPayload> in)
          -> Result<plan::PlanPayload> {
        auto rows = std::any_cast<sparql::IdTable>(std::move(in[0]));
        return plan::PlanPayload(
            ToBindingTable(*schema_copy, std::move(rows)));
      });
  project->key_vars = schema.vars();
  return project;
}

}  // namespace rdfspark::systems
