#include "systems/sparqlgx.h"

#include <algorithm>
#include <chrono>

namespace rdfspark::systems {

using spark::Rdd;

SparqlgxEngine::SparqlgxEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = "SPARQLGX";
  traits_.citation = "[13] Graux, Jachiet, Geneves, Layaida — ISWC 2016";
  traits_.data_model = DataModel::kTriple;
  traits_.abstractions = {SparkAbstraction::kRdd};
  traits_.query_processing = "RDD API";
  traits_.has_optimization = true;
  traits_.optimization_note =
      "join reordering from distinct subject/predicate/object statistics";
  traits_.partitioning = "Vertical";
  traits_.fragment = SparqlFragment::kBgpPlus;
  traits_.contribution =
      "vertical partitioning shrinks the footprint; bounded-predicate "
      "patterns read only their predicate's file";
}

Result<LoadStats> SparqlgxEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  stats_ = store.ComputeStatistics();
  num_partitions_ = options_.num_partitions > 0
                        ? options_.num_partitions
                        : sc_->config().default_parallelism;

  // Vertical partitioning: one (s, o) dataset per predicate.
  std::unordered_map<rdf::TermId, std::vector<SoPair>> buckets;
  for (const auto& t : store.triples()) {
    buckets[t.p].emplace_back(t.s, t.o);
  }
  uint64_t stored_bytes = 0;
  for (auto& [p, pairs] : buckets) {
    // Small predicates still get at least one partition.
    int parts = std::max(
        1, std::min(num_partitions_,
                    static_cast<int>(pairs.size() / 64 + 1)));
    auto rdd = Parallelize(sc_, std::move(pairs), parts);
    rdd.Count();  // materialize the "file"
    stored_bytes += rdd.MemoryFootprint();
    vp_.emplace(p, std::move(rdd));
  }
  all_triples_ =
      Parallelize(sc_, std::vector<rdf::EncodedTriple>(
                           store.triples().begin(), store.triples().end()),
                  num_partitions_);

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = store.triples().size();
  stats.stored_bytes = stored_bytes;
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

uint64_t SparqlgxEngine::PatternSelectivity(
    const sparql::TriplePattern& tp) const {
  const rdf::Dictionary& dict = store_->dictionary();
  // Base cardinality: the predicate's VP size, or all triples.
  double cardinality = static_cast<double>(stats_.num_triples);
  if (!tp.p.is_variable()) {
    auto id = dict.Lookup(tp.p.term());
    if (!id.ok()) return 0;
    auto it = stats_.predicate_count.find(*id);
    cardinality = it == stats_.predicate_count.end()
                      ? 0.0
                      : static_cast<double>(it->second);
  }
  // Bound subject/object shrink the estimate by the distinct counts — the
  // statistic SPARQLGX computes ("counts all distinct subjects, predicates
  // and objects").
  if (!tp.s.is_variable() && stats_.distinct_subjects > 0) {
    cardinality /= static_cast<double>(stats_.distinct_subjects);
  }
  if (!tp.o.is_variable() && stats_.distinct_objects > 0) {
    cardinality /= static_cast<double>(stats_.distinct_objects);
  }
  return static_cast<uint64_t>(cardinality) + 1;
}

spark::Rdd<IdRow> SparqlgxEngine::PatternRows(
    const sparql::TriplePattern& tp, const VarSchema& schema) const {
  auto ep = std::make_shared<const EncodedPattern>(
      EncodePattern(store_->dictionary(), tp));
  auto pattern = std::make_shared<const sparql::TriplePattern>(tp);
  auto schema_copy = std::make_shared<const VarSchema>(schema);
  size_t width = schema.vars().size();

  auto expand = [ep, pattern, schema_copy,
                 width](const rdf::EncodedTriple& t) {
    std::vector<IdRow> out;
    if (MatchesConstants(*ep, t)) {
      IdRow row(width, sparql::kUnbound);
      if (ExtendRow(*pattern, t, *schema_copy, &row)) {
        out.push_back(std::move(row));
      }
    }
    return out;
  };

  if (!tp.p.is_variable()) {
    if (ep->impossible || !ep->ids.p) {
      return Parallelize(sc_, std::vector<IdRow>{}, 1);
    }
    auto it = vp_.find(*ep->ids.p);
    if (it == vp_.end()) {
      return Parallelize(sc_, std::vector<IdRow>{}, 1);
    }
    rdf::TermId pid = *ep->ids.p;
    return it->second.FlatMap(
        [expand, pid](const SoPair& so) {
          return expand(rdf::EncodedTriple{so.first, pid, so.second});
        });
  }
  // Predicate variable: scan everything.
  return all_triples_.FlatMap(expand);
}

Result<sparql::BindingTable> SparqlgxEngine::EvaluateBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) {
    return Status::Internal("SPARQLGX: Load() not called");
  }
  if (bgp.empty()) return sparql::BindingTable::Unit();

  VarSchema schema;
  for (const auto& tp : bgp) {
    for (const auto& v : tp.Variables()) schema.Add(v);
  }

  // Optimization: reorder the join sequence by ascending selectivity,
  // keeping the sequence connected.
  std::vector<sparql::TriplePattern> ordered = bgp;
  if (options_.enable_statistics_reordering) {
    std::vector<size_t> indices(bgp.size());
    for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    size_t first = 0;
    for (size_t i = 1; i < bgp.size(); ++i) {
      if (PatternSelectivity(bgp[i]) < PatternSelectivity(bgp[first])) {
        first = i;
      }
    }
    // Greedy connected order, preferring cheap patterns.
    std::vector<sparql::TriplePattern> result;
    std::vector<bool> used(bgp.size(), false);
    VarSchema seen;
    auto take = [&](size_t i) {
      used[i] = true;
      for (const auto& v : bgp[i].Variables()) seen.Add(v);
      result.push_back(bgp[i]);
    };
    take(first);
    while (result.size() < bgp.size()) {
      int best = -1;
      bool best_connected = false;
      for (size_t i = 0; i < bgp.size(); ++i) {
        if (used[i]) continue;
        bool connected = !SharedVars(bgp[i], seen).empty();
        if (best < 0 || (connected && !best_connected) ||
            (connected == best_connected &&
             PatternSelectivity(bgp[i]) <
                 PatternSelectivity(bgp[static_cast<size_t>(best)]))) {
          best = static_cast<int>(i);
          best_connected = connected;
        }
      }
      take(static_cast<size_t>(best));
    }
    ordered = std::move(result);
  }

  // Sequential translation: each pattern's rows joined with the
  // accumulated result via keyBy on a common variable.
  Rdd<IdRow> current = PatternRows(ordered[0], schema);
  VarSchema bound;
  for (const auto& v : ordered[0].Variables()) bound.Add(v);

  for (size_t i = 1; i < ordered.size(); ++i) {
    const auto& tp = ordered[i];
    Rdd<IdRow> rows = PatternRows(tp, schema);
    auto shared = SharedVars(tp, bound);
    if (shared.empty()) {
      // "If no common variable is found the cross product is computed."
      auto pairs = current.Cartesian(rows);
      current = pairs.FlatMap(
          [](const std::pair<IdRow, IdRow>& ab) {
            std::vector<IdRow> out;
            auto merged = MergeRows(ab.first, ab.second);
            if (merged) out.push_back(std::move(*merged));
            return out;
          });
    } else {
      int key_idx = schema.IndexOf(shared[0]);
      auto key_by = [key_idx](const IdRow& row) {
        return std::pair<rdf::TermId, IdRow>(
            row[static_cast<size_t>(key_idx)], row);
      };
      auto joined = current.Map(key_by).Join(rows.Map(key_by));
      current = joined.FlatMap(
          [](const std::pair<rdf::TermId, std::pair<IdRow, IdRow>>& kv) {
            std::vector<IdRow> out;
            auto merged = MergeRows(kv.second.first, kv.second.second);
            if (merged) out.push_back(std::move(*merged));
            return out;
          });
    }
    for (const auto& v : tp.Variables()) bound.Add(v);
  }

  return ToBindingTable(schema, current.Collect());
}

}  // namespace rdfspark::systems
