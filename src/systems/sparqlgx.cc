#include "systems/sparqlgx.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "systems/batch.h"
#include "systems/plan/planner_utils.h"

namespace rdfspark::systems {

using spark::Rdd;

SparqlgxEngine::SparqlgxEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = "SPARQLGX";
  traits_.citation = "[13] Graux, Jachiet, Geneves, Layaida — ISWC 2016";
  traits_.data_model = DataModel::kTriple;
  traits_.abstractions = {SparkAbstraction::kRdd};
  traits_.query_processing = "RDD API";
  traits_.has_optimization = true;
  traits_.optimization_note =
      "join reordering from distinct subject/predicate/object statistics";
  traits_.partitioning = "Vertical";
  traits_.fragment = SparqlFragment::kBgpPlus;
  traits_.contribution =
      "vertical partitioning shrinks the footprint; bounded-predicate "
      "patterns read only their predicate's file";
}

Result<LoadStats> SparqlgxEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  stats_ = store.ComputeStatistics();
  num_partitions_ = options_.num_partitions > 0
                        ? options_.num_partitions
                        : sc_->config().default_parallelism;

  // Vertical partitioning: one (s, o) dataset per predicate. A reload
  // (dataset hot-swap) must drop every previous predicate dataset:
  // emplace below is a no-op for surviving keys, and predicates absent
  // from the new store would otherwise keep serving the old triples.
  vp_.clear();
  std::unordered_map<rdf::TermId, std::vector<SoPair>> buckets;
  for (const auto& t : store.triples()) {
    buckets[t.p].emplace_back(t.s, t.o);
  }
  uint64_t stored_bytes = 0;
  for (auto& [p, pairs] : buckets) {
    // Small predicates still get at least one partition.
    int parts = std::max(
        1, std::min(num_partitions_,
                    static_cast<int>(pairs.size() / 64 + 1)));
    auto rdd = Parallelize(sc_, std::move(pairs), parts);
    rdd.Count();  // materialize the "file"
    stored_bytes += rdd.MemoryFootprint();
    vp_.emplace(p, std::move(rdd));
  }
  all_triples_ =
      Parallelize(sc_, std::vector<rdf::EncodedTriple>(
                           store.triples().begin(), store.triples().end()),
                  num_partitions_);

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = store.triples().size();
  stats.stored_bytes = stored_bytes;
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

uint64_t SparqlgxEngine::PatternSelectivity(
    const sparql::TriplePattern& tp) const {
  const rdf::Dictionary& dict = store_->dictionary();
  // Base cardinality: the predicate's VP size, or all triples.
  double cardinality = static_cast<double>(stats_.num_triples);
  if (!tp.p.is_variable()) {
    auto id = dict.Lookup(tp.p.term());
    if (!id.ok()) return 0;
    auto it = stats_.predicate_count.find(*id);
    cardinality = it == stats_.predicate_count.end()
                      ? 0.0
                      : static_cast<double>(it->second);
  }
  // Bound subject/object shrink the estimate by the distinct counts — the
  // statistic SPARQLGX computes ("counts all distinct subjects, predicates
  // and objects").
  if (!tp.s.is_variable() && stats_.distinct_subjects > 0) {
    cardinality /= static_cast<double>(stats_.distinct_subjects);
  }
  if (!tp.o.is_variable() && stats_.distinct_objects > 0) {
    cardinality /= static_cast<double>(stats_.distinct_objects);
  }
  return static_cast<uint64_t>(cardinality) + 1;
}

spark::Rdd<sparql::IdTable> SparqlgxEngine::PatternRows(
    const sparql::TriplePattern& tp, const VarSchema& schema) const {
  auto ep = std::make_shared<const EncodedPattern>(
      EncodePattern(store_->dictionary(), tp));
  auto pattern = std::make_shared<const sparql::TriplePattern>(tp);
  auto schema_copy = std::make_shared<const VarSchema>(schema);
  size_t width = schema.vars().size();

  // Expands one partition's matches into a single fixed-width batch: a row
  // is appended pre-filled with kUnbound, extended in place, and popped
  // when a repeated variable conflicts.
  auto expand = [ep, pattern, schema_copy, width](sparql::IdTable* out,
                                                  const rdf::EncodedTriple& t) {
    if (!MatchesConstants(*ep, t)) return;
    rdf::TermId* cells = out->AppendRowUninitialized();
    std::fill(cells, cells + width, sparql::kUnbound);
    if (!ExtendRowCells(*pattern, t, *schema_copy, cells)) out->PopRow();
  };

  if (!tp.p.is_variable()) {
    if (ep->impossible || !ep->ids.p) {
      return Parallelize(sc_, std::vector<sparql::IdTable>{
                                  sparql::IdTable(width)},
                         1);
    }
    auto it = vp_.find(*ep->ids.p);
    if (it == vp_.end()) {
      return Parallelize(sc_, std::vector<sparql::IdTable>{
                                  sparql::IdTable(width)},
                         1);
    }
    rdf::TermId pid = *ep->ids.p;
    return it->second.MapPartitionsWithIndex(
        [expand, pid, width](int, const std::vector<SoPair>& in) {
          sparql::IdTable out(width);
          for (const SoPair& so : in) {
            expand(&out, rdf::EncodedTriple{so.first, pid, so.second});
          }
          return std::vector<sparql::IdTable>{std::move(out)};
        });
  }
  // Predicate variable: scan everything.
  return all_triples_.MapPartitionsWithIndex(
      [expand, width](int, const std::vector<rdf::EncodedTriple>& in) {
        sparql::IdTable out(width);
        for (const rdf::EncodedTriple& t : in) expand(&out, t);
        return std::vector<sparql::IdTable>{std::move(out)};
      });
}

Result<plan::PlanPtr> SparqlgxEngine::PlanBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) {
    return Status::Internal("SPARQLGX: Load() not called");
  }
  if (bgp.empty()) {
    return plan::ConstantResultPlan(sparql::BindingTable::Unit(), "unit");
  }

  auto schema = std::make_shared<VarSchema>();
  for (const auto& tp : bgp) {
    for (const auto& v : tp.Variables()) schema->Add(v);
  }
  size_t width = schema->vars().size();

  // Optimization: reorder the join sequence by ascending selectivity,
  // keeping the sequence connected.
  std::vector<sparql::TriplePattern> ordered = bgp;
  if (options_.enable_statistics_reordering) {
    ordered = plan::GreedyConnectedOrder(
        bgp,
        [this](const sparql::TriplePattern& tp) {
          return PatternSelectivity(tp);
        });
  }

  // Leaves: a bounded predicate reads only its vertical partition; a
  // predicate variable falls back to the full triple scan.
  auto scan = [this, schema](const sparql::TriplePattern& tp) {
    plan::AccessPath access = tp.p.is_variable()
                                  ? plan::AccessPath::kFullScan
                                  : plan::AccessPath::kVpTable;
    auto leaf = plan::MakeScan(
        plan::NodeKind::kPatternScan, access, tp.ToString(),
        PatternSelectivity(tp),
        [this, schema, tp](std::vector<plan::PlanPayload>)
            -> Result<plan::PlanPayload> {
          return plan::PlanPayload(PatternRows(tp, *schema));
        });
    leaf->out_vars = tp.Variables();
    if (tp.s.is_variable()) leaf->subject_var = tp.s.var();
    leaf->max_cardinality = PatternScanBound(store_->dictionary(), stats_, tp);
    return leaf;
  };

  // Sequential translation: each pattern's rows joined with the
  // accumulated result via keyBy on a common variable.
  plan::PlanPtr root = scan(ordered[0]);
  VarSchema bound;
  for (const auto& v : ordered[0].Variables()) bound.Add(v);

  for (size_t i = 1; i < ordered.size(); ++i) {
    const auto& tp = ordered[i];
    auto shared = SharedVars(tp, bound);
    if (shared.empty()) {
      // "If no common variable is found the cross product is computed."
      root = plan::MakeBinary(
          plan::NodeKind::kCartesianProduct, "merge-rows", std::move(root),
          scan(tp),
          [this, width](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto current =
                std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
            auto rows = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[1]));
            return plan::PlanPayload(
                CartesianMergeBatches(sc_, current, rows, width));
          });
    } else {
      int key_idx = schema->IndexOf(shared[0]);
      root = plan::MakeBinary(
          plan::NodeKind::kPartitionedHashJoin, "on ?" + shared[0],
          std::move(root), scan(tp),
          [this, key_idx, width](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto current =
                std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
            auto rows = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[1]));
            return plan::PlanPayload(
                JoinBatchesOn(sc_, current, rows, key_idx, width));
          });
      root->key_vars = {shared[0]};
    }
    for (const auto& v : tp.Variables()) bound.Add(v);
  }

  std::string vars_detail;
  for (const auto& v : schema->vars()) {
    vars_detail += (vars_detail.empty() ? "?" : " ?") + v;
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, vars_detail, std::move(root),
      [schema, width](std::vector<plan::PlanPayload> in)
          -> Result<plan::PlanPayload> {
        auto current = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
        return plan::PlanPayload(
            ToBindingTable(*schema, CollectRows(current, width)));
      });
  project->key_vars = schema->vars();
  return project;
}

plan::EngineProfile SparqlgxEngine::VerifyProfile() const {
  plan::EngineProfile profile;
  profile.engine_name = traits_.name;
  profile.vertical_partitioned = true;
  return profile;
}

}  // namespace rdfspark::systems
