#include "systems/sparkql.h"

#include <algorithm>
#include <any>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "systems/batch.h"

namespace rdfspark::systems {

using spark::Rdd;
using spark::graphx::Edge;
using spark::graphx::EdgeTriplet;
using spark::graphx::Graph;
using spark::graphx::VertexId;

uint64_t EstimateSize(const SparkqlNode& n) {
  return 8 + n.data_properties.size() * 16 + n.types.size() * 8;
}

namespace {

/// Per-vertex sub-result table, stored as one flat fixed-width batch.
using Mt = sparql::IdTable;

Mt ConcatMt(const Mt& a, const Mt& b) {
  Mt out = a;
  out.AppendRowsFrom(b);
  return out;
}

}  // namespace

SparkqlEngine::SparkqlEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = "Spar(k)ql";
  traits_.citation = "[12] Gombos, Racz, Kiss — FiCloud Workshops 2016";
  traits_.data_model = DataModel::kGraph;
  traits_.abstractions = {SparkAbstraction::kGraphX};
  traits_.query_processing = "Graph Iterations";
  traits_.has_optimization = true;
  traits_.optimization_note = "BFS query-plan tree, bottom-up evaluation";
  traits_.partitioning = "Default";
  traits_.fragment = SparqlFragment::kBgp;
  traits_.contribution =
      "node model storing data properties (and rdf:type) inside vertices; "
      "vertex programs with sub-result tables";
}

plan::EngineProfile SparkqlEngine::VerifyProfile() const {
  plan::EngineProfile profile;
  profile.engine_name = traits_.name;
  // The node model stores data properties and rdf:type inside the vertex,
  // so LocalStarMatch over node-local patterns never shuffles.
  profile.star_local_layout = true;
  return profile;
}

Result<LoadStats> SparkqlEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  stats_ = store.ComputeStatistics();
  int n = options_.num_partitions > 0 ? options_.num_partitions
                                      : sc_->config().default_parallelism;

  auto type_id = store.TypePredicate();
  has_type_predicate_ = type_id.has_value();
  if (has_type_predicate_) type_predicate_ = *type_id;

  // A predicate is a data property iff every object is a literal.
  std::unordered_map<rdf::TermId, bool> all_literal;
  for (const auto& t : store.triples()) {
    auto term = store.dictionary().Decode(t.o);
    bool literal = term.ok() && term->is_literal();
    auto it = all_literal.find(t.p);
    if (it == all_literal.end()) {
      all_literal[t.p] = literal;
    } else {
      it->second = it->second && literal;
    }
  }
  data_predicates_.clear();
  for (const auto& [p, literal] : all_literal) {
    if (literal && !(has_type_predicate_ && p == type_predicate_)) {
      data_predicates_.insert(p);
    }
  }

  // Split triples into node properties and object-property edges.
  std::unordered_map<VertexId, SparkqlNode> nodes;
  auto node_of = [&](rdf::TermId id) -> SparkqlNode& {
    auto [it, inserted] = nodes.emplace(static_cast<VertexId>(id),
                                        SparkqlNode{});
    if (inserted) it->second.term = id;
    return it->second;
  };
  std::vector<Edge<rdf::TermId>> edges;
  for (const auto& t : store.triples()) {
    if (has_type_predicate_ && t.p == type_predicate_) {
      node_of(t.s).types.push_back(t.o);
      node_of(t.o);  // classes are nodes too (type queries bind them)
    } else if (data_predicates_.contains(t.p)) {
      node_of(t.s).data_properties.emplace_back(t.p, t.o);
    } else {
      edges.push_back(Edge<rdf::TermId>{static_cast<VertexId>(t.s),
                                        static_cast<VertexId>(t.o), t.p});
      node_of(t.s);
      node_of(t.o);
    }
  }
  std::vector<std::pair<VertexId, SparkqlNode>> vertex_list(nodes.begin(),
                                                            nodes.end());
  graph_ = Graph<SparkqlNode, rdf::TermId>(
      Parallelize(sc_, std::move(vertex_list), n),
      Parallelize(sc_, std::move(edges), n));

  num_vertices_ = graph_.NumVertices();

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = graph_.NumVertices() + graph_.NumEdges();
  stats.stored_bytes = graph_.vertices().MemoryFootprint() +
                       graph_.edges().MemoryFootprint();
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

Result<plan::PlanPtr> SparkqlEngine::PlanBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) return Status::Internal("Load() not called");
  if (bgp.empty()) {
    return plan::ConstantResultPlan(sparql::BindingTable::Unit(), "unit");
  }
  const rdf::Dictionary& dict = store_->dictionary();

  auto pattern_est = [this](const sparql::TriplePattern& tp) -> uint64_t {
    if (tp.p.is_variable()) return stats_.num_triples;
    auto id = store_->dictionary().Lookup(tp.p.term());
    if (!id.ok()) return 0;
    auto it = stats_.predicate_count.find(*id);
    return it == stats_.predicate_count.end() ? 0 : it->second;
  };
  auto predicate_est = [this](rdf::TermId p) -> uint64_t {
    auto it = stats_.predicate_count.find(p);
    return it == stats_.predicate_count.end() ? 0 : it->second;
  };

  // Rewrite: constant subjects/objects of object-property patterns become
  // synthetic variables with forced bindings, so the plan tree is purely
  // over variables.
  std::vector<sparql::TriplePattern> rewritten;
  std::unordered_map<std::string, rdf::TermId> forced;
  int synth_counter = 0;
  bool impossible = false;
  auto as_var = [&](const sparql::PatternTerm& t) -> sparql::PatternTerm {
    if (t.is_variable()) return t;
    auto id = dict.Lookup(t.term());
    std::string name = "__c" + std::to_string(synth_counter++);
    if (id.ok()) {
      forced[name] = *id;
    } else {
      impossible = true;
    }
    return sparql::PatternTerm::Var(name);
  };

  // Classify patterns. Any variable predicate forces the generic fallback
  // (the node model needs bound predicates to route to node vs edge data).
  bool any_pvar = false;
  for (const auto& tp : bgp) any_pvar |= tp.p.is_variable();

  VarSchema schema;
  // Local patterns per variable; edge patterns across variables.
  struct EdgePattern {
    std::string src_var;
    std::string dst_var;
    rdf::TermId predicate;
    sparql::TriplePattern source;
  };
  std::vector<EdgePattern> edge_patterns;
  std::unordered_map<std::string, std::vector<sparql::TriplePattern>> local;

  if (!any_pvar) {
    for (const auto& tp : bgp) {
      auto pid = dict.Lookup(tp.p.term());
      if (!pid.ok()) {
        impossible = true;
        continue;
      }
      bool is_type = has_type_predicate_ && *pid == type_predicate_;
      bool is_data = data_predicates_.contains(*pid);
      if (is_type || is_data) {
        // Node-local: subject may still be constant.
        sparql::TriplePattern p = tp;
        p.s = as_var(tp.s);
        local[p.s.var()].push_back(p);
        for (const auto& v : p.Variables()) schema.Add(v);
      } else {
        sparql::TriplePattern p = tp;
        p.s = as_var(tp.s);
        p.o = as_var(tp.o);
        edge_patterns.push_back(
            EdgePattern{p.s.var(), p.o.var(), *pid, p});
        for (const auto& v : p.Variables()) schema.Add(v);
      }
    }
  }

  if (impossible) {
    VarSchema all;
    for (const auto& tp : bgp) {
      for (const auto& v : tp.Variables()) all.Add(v);
    }
    return plan::ConstantResultPlan(sparql::BindingTable(all.vars()),
                                    "impossible pattern");
  }

  if (any_pvar) {
    // Generic fallback over "virtual triples" (edges + node properties).
    // The virtual-triple RDD is built once here (lazily) and shared by all
    // scan execs, preserving the original single lineage.
    auto all_schema = std::make_shared<VarSchema>();
    for (const auto& tp : bgp) {
      for (const auto& v : tp.Variables()) all_schema->Add(v);
    }
    size_t width = all_schema->vars().size();
    bool has_type = has_type_predicate_;
    rdf::TermId type_pred = type_predicate_;
    auto virtual_triples =
        graph_.edges()
            .Map([](const Edge<rdf::TermId>& e) {
              return rdf::EncodedTriple{static_cast<rdf::TermId>(e.src),
                                        e.attr,
                                        static_cast<rdf::TermId>(e.dst)};
            })
            .Union(graph_.vertices().FlatMap(
                [has_type, type_pred](
                    const std::pair<VertexId, SparkqlNode>& kv) {
                  std::vector<rdf::EncodedTriple> out;
                  for (const auto& [p, v] : kv.second.data_properties) {
                    out.push_back(
                        rdf::EncodedTriple{kv.second.term, p, v});
                  }
                  if (has_type) {
                    for (rdf::TermId c : kv.second.types) {
                      out.push_back(rdf::EncodedTriple{kv.second.term,
                                                       type_pred, c});
                    }
                  }
                  return out;
                }));

    auto scan = [&](const sparql::TriplePattern& tp) {
      auto ep = std::make_shared<const EncodedPattern>(
          EncodePattern(dict, tp));
      auto pattern = std::make_shared<const sparql::TriplePattern>(tp);
      auto node = plan::MakeScan(
          plan::NodeKind::kPatternScan, plan::AccessPath::kFullScan,
          tp.ToString() + " (virtual triples)", pattern_est(tp),
          [virtual_triples, ep, pattern, all_schema, width](
              std::vector<plan::PlanPayload>) -> Result<plan::PlanPayload> {
            return plan::PlanPayload(virtual_triples.MapPartitionsWithIndex(
                [ep, pattern, all_schema, width](
                    int, const std::vector<rdf::EncodedTriple>& in) {
                  sparql::IdTable out(width);
                  for (const rdf::EncodedTriple& t : in) {
                    if (!MatchesConstants(*ep, t)) continue;
                    rdf::TermId* cells = out.AppendRowUninitialized();
                    std::fill(cells, cells + width, sparql::kUnbound);
                    if (!ExtendRowCells(*pattern, t, *all_schema, cells)) {
                      out.PopRow();
                    }
                  }
                  return std::vector<sparql::IdTable>{std::move(out)};
                }));
          });
      node->out_vars = tp.Variables();
      if (tp.s.is_variable()) node->subject_var = tp.s.var();
      // Virtual triples reconstruct the store one triple per original
      // (edges + data properties + types), so the store-level cap holds.
      node->max_cardinality = PatternScanBound(dict, stats_, tp);
      return node;
    };

    plan::PlanPtr root = scan(bgp[0]);
    VarSchema bound;
    for (const auto& v : bgp[0].Variables()) bound.Add(v);
    for (size_t i = 1; i < bgp.size(); ++i) {
      auto shared = SharedVars(bgp[i], bound);
      if (shared.empty()) {
        root = plan::MakeBinary(
            plan::NodeKind::kCartesianProduct, "merge-rows", std::move(root),
            scan(bgp[i]),
            [this, width](std::vector<plan::PlanPayload> in)
                -> Result<plan::PlanPayload> {
              auto current =
                  std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
              auto rows =
                  std::any_cast<Rdd<sparql::IdTable>>(std::move(in[1]));
              return plan::PlanPayload(
                  CartesianMergeBatches(sc_, current, rows, width));
            });
      } else {
        int key_idx = all_schema->IndexOf(shared[0]);
        root = plan::MakeBinary(
            plan::NodeKind::kPartitionedHashJoin, "on ?" + shared[0],
            std::move(root), scan(bgp[i]),
            [this, key_idx, width](std::vector<plan::PlanPayload> in)
                -> Result<plan::PlanPayload> {
              auto current =
                  std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
              auto rows =
                  std::any_cast<Rdd<sparql::IdTable>>(std::move(in[1]));
              return plan::PlanPayload(
                  JoinBatchesOn(sc_, current, rows, key_idx, width));
            });
        root->key_vars = {shared[0]};
      }
      for (const auto& v : bgp[i].Variables()) bound.Add(v);
    }
    std::string project_detail;
    for (const auto& v : all_schema->vars()) {
      project_detail += (project_detail.empty() ? "?" : " ?") + v;
    }
    auto project = plan::MakeUnary(
        plan::NodeKind::kProject, project_detail, std::move(root),
        [all_schema, width](std::vector<plan::PlanPayload> in)
            -> Result<plan::PlanPayload> {
          auto current =
              std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
          return plan::PlanPayload(
              ToBindingTable(*all_schema, CollectRows(current, width)));
        });
    project->key_vars = all_schema->vars();
    return project;
  }

  size_t width = schema.vars().size();
  auto schema_copy = std::make_shared<const VarSchema>(schema);

  // Variables participating in the plan.
  std::vector<std::string> all_vars;
  for (const auto& [v, ps] : local) {
    if (std::find(all_vars.begin(), all_vars.end(), v) == all_vars.end()) {
      all_vars.push_back(v);
    }
  }
  for (const auto& e : edge_patterns) {
    for (const auto& v : {e.src_var, e.dst_var}) {
      if (std::find(all_vars.begin(), all_vars.end(), v) == all_vars.end()) {
        all_vars.push_back(v);
      }
    }
  }
  std::sort(all_vars.begin(), all_vars.end());

  // Local candidate tables: vertices satisfying the variable's node-local
  // patterns, with literal/class variables bound.
  auto candidates = [&](const std::string& var) -> plan::PlanPtr {
    auto patterns = std::make_shared<const std::vector<sparql::TriplePattern>>(
        local.contains(var) ? local.at(var)
                         : std::vector<sparql::TriplePattern>{});
    // Encode constants of the local patterns.
    auto encoded = std::make_shared<std::vector<EncodedPattern>>();
    for (const auto& p : *patterns) encoded->push_back(EncodePattern(dict, p));
    std::optional<rdf::TermId> force;
    auto fit = forced.find(var);
    if (fit != forced.end()) force = fit->second;
    int var_idx = schema.IndexOf(var);
    bool has_type = has_type_predicate_;
    rdf::TermId type_pred = type_predicate_;
    auto match_vertex =
        [patterns, encoded, schema_copy, width, var_idx, force, has_type,
         type_pred](const std::pair<VertexId, SparkqlNode>& kv) {
          std::vector<std::pair<VertexId, Mt>> out;
          const SparkqlNode& node = kv.second;
          if (force && node.term != *force) return out;
          IdRow base(width, sparql::kUnbound);
          if (var_idx >= 0) base[static_cast<size_t>(var_idx)] = node.term;
          std::vector<IdRow> rows{std::move(base)};
          for (size_t i = 0; i < patterns->size(); ++i) {
            const auto& p = (*patterns)[i];
            const auto& ep = (*encoded)[i];
            if (ep.impossible) return out;
            std::vector<IdRow> next;
            // Enumerate this node's matching property triples.
            std::vector<rdf::EncodedTriple> triples;
            bool is_type = has_type && ep.ids.p &&
                           *ep.ids.p == type_pred;
            if (is_type) {
              for (rdf::TermId c : node.types) {
                triples.push_back(
                    rdf::EncodedTriple{node.term, type_pred, c});
              }
            } else {
              for (const auto& [dp, dv] : node.data_properties) {
                triples.push_back(rdf::EncodedTriple{node.term, dp, dv});
              }
            }
            for (const IdRow& row : rows) {
              for (const auto& t : triples) {
                if (!MatchesConstants(ep, t)) continue;
                IdRow e = row;
                if (ExtendRow(p, t, *schema_copy, &e)) {
                  next.push_back(std::move(e));
                }
              }
            }
            rows = std::move(next);
            if (rows.empty()) return out;
          }
          Mt table(width);
          for (const IdRow& row : rows) table.AppendRow(row);
          out.emplace_back(kv.first, std::move(table));
          return out;
        };
    auto node = plan::MakeScan(
        plan::NodeKind::kLocalStarMatch, plan::AccessPath::kSubjectStar,
        "?" + var + " (" + std::to_string(patterns->size()) +
            " local patterns)",
        force ? 1 : plan::kNoEstimate,
        [this, match_vertex](std::vector<plan::PlanPayload>)
            -> Result<plan::PlanPayload> {
          return plan::PlanPayload(graph_.vertices().FlatMap(match_vertex));
        });
    VarSchema leaf_vars;
    leaf_vars.Add(var);
    for (const auto& p : *patterns) {
      for (const auto& v : p.Variables()) leaf_vars.Add(v);
    }
    node->out_vars = leaf_vars.vars();
    node->subject_var = var;
    // A patternless candidate table emits one base row per vertex; with
    // local patterns the star bound applies (a forced constant still
    // matches at most one vertex, but the star bound already covers it).
    node->max_cardinality =
        patterns->empty()
            ? num_vertices_
            : StarScanBound(store_->dictionary(), stats_, *patterns);
    return node;
  };

  // Build the BFS plan tree over edge patterns, rooted at the most
  // connected variable.
  std::unordered_map<std::string, int> degree;
  for (const auto& e : edge_patterns) {
    ++degree[e.src_var];
    ++degree[e.dst_var];
  }
  std::vector<bool> pattern_used(edge_patterns.size(), false);

  // Plan one connected component rooted at `root`; its exec produces the
  // per-vertex tables for the component. Recursion over the BFS tree.
  std::unordered_map<std::string, bool> var_done;
  std::function<plan::PlanPtr(const std::string&)> plan_var =
      [&](const std::string& var) -> plan::PlanPtr {
    var_done[var] = true;
    plan::PlanPtr node = candidates(var);
    for (size_t i = 0; i < edge_patterns.size(); ++i) {
      if (pattern_used[i]) continue;
      const auto& e = edge_patterns[i];
      bool forward;  // child below, edge points parent -> child?
      std::string child;
      if (e.src_var == var && !var_done[e.dst_var]) {
        child = e.dst_var;
        forward = true;  // pattern (var p child): edges var -> child
      } else if (e.dst_var == var && !var_done[e.src_var]) {
        child = e.src_var;
        forward = false;  // pattern (child p var): edges child -> var
      } else {
        continue;
      }
      pattern_used[i] = true;
      auto child_plan = plan_var(child);
      rdf::TermId pid = e.predicate;
      node = plan::MakeBinary(
          plan::NodeKind::kPartitionedHashJoin,
          "vertex-message " + e.source.ToString(), std::move(node),
          std::move(child_plan),
          [this, pid, forward](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto table = std::any_cast<Rdd<std::pair<VertexId, Mt>>>(
                std::move(in[0]));
            auto child_table = std::any_cast<Rdd<std::pair<VertexId, Mt>>>(
                std::move(in[1]));
            // Ship child tables to the parent along the pattern's edges.
            auto installed = graph_.OuterJoinVertices(
                child_table, [](VertexId, const SparkqlNode& node,
                                const std::optional<Mt>& t) {
                  return std::pair<SparkqlNode, Mt>(node, t ? *t : Mt{});
                });
            auto msgs = installed.AggregateMessages<Mt>(
                [pid, forward](
                    const EdgeTriplet<std::pair<SparkqlNode, Mt>,
                                      rdf::TermId>& t) {
                  std::vector<std::pair<VertexId, Mt>> out;
                  if (t.attr != pid) return out;
                  // forward: parent=src receives from child=dst.
                  const Mt& source =
                      forward ? t.dst_attr.second : t.src_attr.second;
                  if (source.empty()) return out;
                  out.emplace_back(forward ? t.src : t.dst, source);
                  return out;
                },
                ConcatMt);
            // Combine: per-vertex product of current rows and child rows.
            table = table.Join(msgs).MapValues(
                [](const std::pair<Mt, Mt>& ab) {
                  Mt merged(ab.first.width());
                  for (size_t i = 0; i < ab.first.size(); ++i) {
                    for (size_t j = 0; j < ab.second.size(); ++j) {
                      MergeRowsInto(ab.first.row(i), ab.second.row(j),
                                    &merged);
                    }
                  }
                  return merged;
                });
            table = table.Filter([](const std::pair<VertexId, Mt>& kv) {
              return !kv.second.empty();
            });
            return plan::PlanPayload(std::move(table));
          });
      node->est_cardinality = predicate_est(pid);
      node->key_vars = {e.src_var, e.dst_var};
    }
    return node;
  };

  // Components in decreasing connectivity order.
  plan::PlanPtr current;
  while (true) {
    std::string root;
    int best_degree = -1;
    for (const auto& v : all_vars) {
      if (var_done[v]) continue;
      int d = degree.contains(v) ? degree[v] : 0;
      if (d > best_degree) {
        best_degree = d;
        root = v;
      }
    }
    if (root.empty()) break;
    auto component = plan::MakeUnary(
        plan::NodeKind::kProject, "flatten ?" + root + " tables",
        plan_var(root),
        [width](std::vector<plan::PlanPayload> in)
            -> Result<plan::PlanPayload> {
          auto table =
              std::any_cast<Rdd<std::pair<VertexId, Mt>>>(std::move(in[0]));
          return plan::PlanPayload(table.MapPartitionsWithIndex(
              [width](int,
                      const std::vector<std::pair<VertexId, Mt>>& part) {
                sparql::IdTable out(width);
                for (const auto& kv : part) {
                  if (kv.second.empty()) continue;
                  out.AppendRowsFrom(kv.second);
                }
                return std::vector<sparql::IdTable>{std::move(out)};
              }));
        });
    if (current == nullptr) {
      current = std::move(component);
    } else {
      current = plan::MakeBinary(
          plan::NodeKind::kCartesianProduct, "merge-rows",
          std::move(current), std::move(component),
          [this, width](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto a = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
            auto b = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[1]));
            return plan::PlanPayload(CartesianMergeBatches(sc_, a, b, width));
          });
    }
  }
  if (current == nullptr) {
    return plan::ConstantResultPlan(sparql::BindingTable(schema.vars()),
                                    "empty plan");
  }

  // Closing (non-tree) patterns: verify edge existence.
  for (size_t i = 0; i < edge_patterns.size(); ++i) {
    if (pattern_used[i]) continue;
    const auto& e = edge_patterns[i];
    int a_idx = schema.IndexOf(e.src_var);
    int b_idx = schema.IndexOf(e.dst_var);
    rdf::TermId pid = e.predicate;
    current = plan::MakeUnary(
        plan::NodeKind::kFilter, "edge exists " + e.source.ToString(),
        std::move(current),
        [this, a_idx, b_idx, pid, width](std::vector<plan::PlanPayload> in)
            -> Result<plan::PlanPayload> {
          using EdgeKey = std::pair<rdf::TermId, rdf::TermId>;
          auto rows = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
          auto pairs = graph_.edges().FlatMap(
              [pid](const Edge<rdf::TermId>& edge) {
                std::vector<std::pair<EdgeKey, bool>> out;
                if (edge.attr == pid) {
                  out.emplace_back(
                      std::make_pair(static_cast<rdf::TermId>(edge.src),
                                     static_cast<rdf::TermId>(edge.dst)),
                      true);
                }
                return out;
              });
          auto dist = pairs.Distinct();
          // Semi-join against the distinct edge set, batch-at-a-time:
          // rows route by the (src, dst) pair hash, the edge side by its
          // key — the same placements the keyed Join produced.
          int n = std::max(rows.node()->num_partitions(),
                           dist.node()->num_partitions());
          spark::PartitionerInfo info{"hash", n, 0};
          auto split = rows.MapPartitionsWithIndex(
              [a_idx, b_idx, n, width](
                  int, const std::vector<sparql::IdTable>& batches) {
                std::vector<std::pair<int, sparql::IdTable>> out;
                std::vector<int> slot(static_cast<size_t>(n), -1);
                for (const sparql::IdTable& batch : batches) {
                  for (size_t r = 0; r < batch.size(); ++r) {
                    EdgeKey key = std::make_pair(
                        batch.cell(r, static_cast<size_t>(a_idx)),
                        batch.cell(r, static_cast<size_t>(b_idx)));
                    int t = static_cast<int>(spark::HashValue(key) %
                                             static_cast<uint64_t>(n));
                    int& s = slot[static_cast<size_t>(t)];
                    if (s < 0) {
                      s = static_cast<int>(out.size());
                      out.emplace_back(t, sparql::IdTable(width));
                    }
                    out[static_cast<size_t>(s)].second.AppendRowFrom(batch,
                                                                     r);
                  }
                }
                return out;
              });
          auto shuffled = split.ShuffleBy(
              [](const std::pair<int, sparql::IdTable>& kv) {
                return static_cast<uint64_t>(kv.first);
              },
              n, "PartitionByKey", info);
          auto merged = shuffled.MapPartitionsWithIndex(
              [width](int,
                      const std::vector<std::pair<int, sparql::IdTable>>&
                          in_parts) {
                sparql::IdTable out(width);
                for (const auto& kv : in_parts) out.AppendRowsFrom(kv.second);
                return std::vector<sparql::IdTable>{std::move(out)};
              },
              info);
          auto* sc = sc_;
          return plan::PlanPayload(merged.ZipPartitions(
              dist.PartitionByKey(n),
              [sc, a_idx, b_idx, width](
                  int, const std::vector<sparql::IdTable>& batches,
                  const std::vector<std::pair<EdgeKey, bool>>& edge_keys) {
                std::unordered_set<EdgeKey, spark::ValueHasher> present;
                present.reserve(edge_keys.size() * 2 + 1);
                for (const auto& kv : edge_keys) present.insert(kv.first);
                sparql::IdTable out(width);
                uint64_t comparisons = 0;
                for (const sparql::IdTable& batch : batches) {
                  for (size_t r = 0; r < batch.size(); ++r) {
                    ++comparisons;
                    EdgeKey key = std::make_pair(
                        batch.cell(r, static_cast<size_t>(a_idx)),
                        batch.cell(r, static_cast<size_t>(b_idx)));
                    if (present.contains(key)) out.AppendRowFrom(batch, r);
                  }
                }
                sc->ChargeJoinComparisons(comparisons);
                return std::vector<sparql::IdTable>{std::move(out)};
              }));
        });
    current->key_vars = {e.src_var};
    if (e.dst_var != e.src_var) current->key_vars.push_back(e.dst_var);
  }

  // Strip synthetic variables by projecting onto the real schema.
  auto real_vars = std::make_shared<std::vector<std::string>>();
  {
    VarSchema real;
    for (const auto& tp : bgp) {
      for (const auto& v : tp.Variables()) real.Add(v);
    }
    *real_vars = real.vars();
  }
  std::string project_detail;
  for (const auto& v : *real_vars) {
    project_detail += (project_detail.empty() ? "?" : " ?") + v;
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, project_detail, std::move(current),
      [schema_copy, real_vars, width](std::vector<plan::PlanPayload> in)
          -> Result<plan::PlanPayload> {
        auto rows = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
        auto table = ToBindingTable(*schema_copy, CollectRows(rows, width));
        return plan::PlanPayload(Project(table, *real_vars));
      });
  project->key_vars = *real_vars;
  return project;
}

}  // namespace rdfspark::systems
