#ifndef RDFSPARK_SYSTEMS_SEMANTIC_PARTITIONING_H_
#define RDFSPARK_SYSTEMS_SEMANTIC_PARTITIONING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/store.h"

namespace rdfspark::systems {

/// Prototype of the paper's §V direction citing Troullinou et al. [27]
/// ("Semantic partitioning for RDF datasets"): instead of hashing opaque
/// ids, co-locate entities of the same schema class. All triples of one
/// subject land in the subject's class partition, so subject stars stay
/// local (like hash) while class-homogeneous scans and same-class joins
/// touch few partitions.
///
/// Placement: classes are assigned to partitions by greedy balanced bin
/// packing of their triple volume (largest class first, into the currently
/// lightest partition); untyped subjects fall back to subject hash.
class SemanticPartitioner {
 public:
  /// Builds the class -> partition assignment from the dataset.
  SemanticPartitioner(const rdf::TripleStore& store, int num_partitions);

  int num_partitions() const { return num_partitions_; }

  /// Partition of a subject (class placement, or hash fallback).
  int PartitionOfSubject(rdf::TermId subject) const;

  /// Partition of a triple (by its subject).
  int PartitionOf(const rdf::EncodedTriple& t) const {
    return PartitionOfSubject(t.s);
  }

  /// Partitions holding at least one instance of `cls` (locality measure:
  /// 1 means a class-restricted scan is a single-partition read).
  int PartitionsSpannedByClass(rdf::TermId cls) const;

  /// Load imbalance: max partition triple count / mean (1.0 = perfect).
  double Skew(const rdf::TripleStore& store) const;

  /// Number of classes assigned.
  size_t num_classes() const { return class_partition_.size(); }

 private:
  int num_partitions_;
  /// Subject -> partition for typed subjects.
  std::unordered_map<rdf::TermId, int> subject_partition_;
  /// Class -> partition.
  std::unordered_map<rdf::TermId, int> class_partition_;
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_SEMANTIC_PARTITIONING_H_
