#include "systems/s2x.h"

#include "systems/batch.h"

#include <any>
#include <chrono>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace rdfspark::systems {

using spark::Rdd;
using spark::graphx::Edge;
using spark::graphx::Graph;
using spark::graphx::VertexId;

S2xEngine::S2xEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = "S2X";
  traits_.citation =
      "[23] Schatzle, Przyjaciel-Zablocki, Berberich, Lausen — Big-O(Q) 2015";
  traits_.data_model = DataModel::kGraph;
  traits_.abstractions = {SparkAbstraction::kGraphX};
  traits_.query_processing = "Graph Iterations";
  traits_.has_optimization = false;
  traits_.optimization_note = "no cost-based optimization; fixpoint pruning";
  traits_.partitioning = "Default";
  traits_.fragment = SparqlFragment::kBgpPlus;
  traits_.contribution =
      "combines graph-parallel BGP matching with data-parallel evaluation "
      "of the remaining operators";
}

Result<LoadStats> S2xEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  stats_ = store.ComputeStatistics();
  int n = options_.num_partitions > 0 ? options_.num_partitions
                                      : sc_->config().default_parallelism;
  std::vector<Edge<rdf::TermId>> edges;
  edges.reserve(store.triples().size());
  for (const auto& t : store.triples()) {
    edges.push_back(Edge<rdf::TermId>{static_cast<VertexId>(t.s),
                                      static_cast<VertexId>(t.o), t.p});
  }
  graph_ = Graph<rdf::TermId, rdf::TermId>::FromEdges(
      sc_, std::move(edges), rdf::TermId{0}, n);
  // Vertex attribute = the term id itself.
  graph_ = Graph<rdf::TermId, rdf::TermId>(
      graph_.vertices().Map([](const std::pair<VertexId, rdf::TermId>& kv) {
        return std::pair<VertexId, rdf::TermId>(
            kv.first, static_cast<rdf::TermId>(kv.first));
      }),
      graph_.edges());
  uint64_t nv = graph_.NumVertices();
  uint64_t ne = graph_.NumEdges();

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = nv + ne;
  stats.stored_bytes = graph_.edges().MemoryFootprint() +
                       graph_.vertices().MemoryFootprint();
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

namespace {

/// Per-pattern edge matches with variable bindings. Row schema is the BGP's
/// VarSchema; subject/object values kept for candidate pruning.
struct PatternMatches {
  sparql::IdTable rows;
  std::vector<std::pair<rdf::TermId, rdf::TermId>> endpoints;  // (s, o)
};

/// Deferred graph-parallel matching state, shared by all scan nodes of one
/// plan: the first scan executed runs the per-pattern matching and the
/// candidate-validation fixpoint for the whole BGP (Steps 1 and 2), later
/// scans just pick up their pruned match sets.
struct MatchState {
  bool ready = false;
  std::vector<PatternMatches> matches;
};

}  // namespace

Result<plan::PlanPtr> S2xEngine::PlanBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) return Status::Internal("S2X: Load() not called");
  if (bgp.empty()) {
    return plan::ConstantResultPlan(sparql::BindingTable::Unit(), "unit");
  }

  auto schema = std::make_shared<VarSchema>();
  for (const auto& tp : bgp) {
    for (const auto& v : tp.Variables()) schema->Add(v);
  }
  size_t width = schema->vars().size();
  auto bgp_copy =
      std::make_shared<const std::vector<sparql::TriplePattern>>(bgp);
  auto state = std::make_shared<MatchState>();

  // Steps 1 + 2, run once on first scan execution.
  auto ensure_matched = std::make_shared<std::function<void()>>(
      [this, state, bgp_copy, schema, width]() {
        if (state->ready) return;
        state->ready = true;
        const auto& bgp = *bgp_copy;

        // Step 1: match every triple pattern independently against all
        // edges (graph-parallel over the triplets view).
        auto& matches = state->matches;
        matches.resize(bgp.size());
        for (auto& m : matches) m.rows = sparql::IdTable(width);
        for (size_t i = 0; i < bgp.size(); ++i) {
          auto ep = std::make_shared<const EncodedPattern>(
              EncodePattern(store_->dictionary(), bgp[i]));
          auto pattern =
              std::make_shared<const sparql::TriplePattern>(bgp[i]);
          using MatchTuple = std::tuple<rdf::TermId, rdf::TermId, IdRow>;
          auto rdd = graph_.edges().FlatMap(
              [ep, pattern, schema, width](const Edge<rdf::TermId>& e) {
                std::vector<MatchTuple> out;
                rdf::EncodedTriple t{static_cast<rdf::TermId>(e.src), e.attr,
                                     static_cast<rdf::TermId>(e.dst)};
                if (MatchesConstants(*ep, t)) {
                  IdRow row(width, sparql::kUnbound);
                  if (ExtendRow(*pattern, t, *schema, &row)) {
                    out.emplace_back(t.s, t.o, std::move(row));
                  }
                }
                return out;
              });
          for (auto& [s, o, row] : rdd.Collect()) {
            matches[i].endpoints.emplace_back(s, o);
            matches[i].rows.AppendRow(row);
          }
        }

        // Step 2: iterative validation of match candidates. A vertex stays
        // a candidate for variable x only if every pattern mentioning x
        // retains a match with this vertex in x's position; matches whose
        // endpoint lost candidacy are discarded. Messages = surviving
        // matches per round.
        std::unordered_map<std::string, std::unordered_set<rdf::TermId>>
            cand;
        auto var_of =
            [](const sparql::PatternTerm& t) -> const std::string* {
          return t.is_variable() ? &t.var() : nullptr;
        };
        // Initial local match sets.
        for (size_t i = 0; i < bgp.size(); ++i) {
          const std::string* sv = var_of(bgp[i].s);
          const std::string* ov = var_of(bgp[i].o);
          for (const auto& [s, o] : matches[i].endpoints) {
            if (sv) cand[*sv].insert(s);
            if (ov) cand[*ov].insert(o);
          }
        }
        int iterations = 0;
        bool changed = true;
        while (changed && iterations < options_.max_iterations) {
          changed = false;
          ++iterations;
          sc_->RecordSuperstep();
          // Filter matches by current candidates; rebuild candidate sets.
          std::unordered_map<std::string, std::unordered_set<rdf::TermId>>
              next;
          std::unordered_map<std::string, bool> initialized;
          for (size_t i = 0; i < bgp.size(); ++i) {
            const std::string* sv = var_of(bgp[i].s);
            const std::string* ov = var_of(bgp[i].o);
            sparql::IdTable kept_rows(width);
            std::vector<std::pair<rdf::TermId, rdf::TermId>> kept_eps;
            std::unordered_set<rdf::TermId> s_here, o_here;
            for (size_t m = 0; m < matches[i].endpoints.size(); ++m) {
              auto [s, o] = matches[i].endpoints[m];
              if (sv && !cand[*sv].contains(s)) continue;
              if (ov && !cand[*ov].contains(o)) continue;
              kept_rows.AppendRowFrom(matches[i].rows, m);
              kept_eps.emplace_back(s, o);
              if (sv) s_here.insert(s);
              if (ov) o_here.insert(o);
              sc_->RecordMessages(1);  // local match sent to neighbors
            }
            if (kept_rows.size() != matches[i].rows.size()) changed = true;
            matches[i].rows = std::move(kept_rows);
            matches[i].endpoints = std::move(kept_eps);
            // Candidates for a variable: intersection over patterns using
            // it.
            auto merge = [&](const std::string& var,
                             std::unordered_set<rdf::TermId>& here) {
              if (!initialized[var]) {
                next[var] = std::move(here);
                initialized[var] = true;
              } else {
                std::unordered_set<rdf::TermId> inter;
                for (rdf::TermId v : next[var]) {
                  if (here.contains(v)) inter.insert(v);
                }
                next[var] = std::move(inter);
              }
            };
            if (sv) merge(*sv, s_here);
            if (ov) merge(*ov, o_here);
          }
          for (auto& [var, set] : next) {
            if (set.size() != cand[var].size()) changed = true;
          }
          cand = std::move(next);
        }
        last_iterations_.store(iterations, std::memory_order_relaxed);
      });

  auto pattern_est = [this](const sparql::TriplePattern& tp) -> uint64_t {
    if (tp.p.is_variable()) return stats_.num_triples;
    auto id = store_->dictionary().Lookup(tp.p.term());
    if (!id.ok()) return 0;
    auto it = stats_.predicate_count.find(*id);
    return it == stats_.predicate_count.end() ? 0 : it->second;
  };

  // Scan node for pattern i: the validated (pruned) match set, parallelized
  // for the data-parallel assembly joins.
  auto scan = [&](size_t i) {
    auto node = plan::MakeScan(
        plan::NodeKind::kPatternScan, plan::AccessPath::kGraphTraversal,
        bgp[i].ToString() + " (pruned)", pattern_est(bgp[i]),
        [this, state, ensure_matched, i](std::vector<plan::PlanPayload>)
            -> Result<plan::PlanPayload> {
          (*ensure_matched)();
          return plan::PlanPayload(
              ParallelizeBatch(sc_, std::move(state->matches[i].rows),
                               sc_->config().default_parallelism));
        });
    node->out_vars = bgp[i].Variables();
    if (bgp[i].s.is_variable()) node->subject_var = bgp[i].s.var();
    // Pruning only shrinks the match set; the pattern bound still caps it.
    node->max_cardinality =
        PatternScanBound(store_->dictionary(), stats_, bgp[i]);
    return node;
  };

  // Step 3: assemble the final output from the per-pattern subgraphs with
  // data-parallel joins.
  plan::PlanPtr root = scan(0);
  VarSchema bound;
  for (const auto& v : bgp[0].Variables()) bound.Add(v);
  std::vector<bool> done(bgp.size(), false);
  done[0] = true;
  for (size_t step = 1; step < bgp.size(); ++step) {
    // Next pattern sharing a variable.
    int next_i = -1;
    for (size_t i = 0; i < bgp.size(); ++i) {
      if (done[i]) continue;
      if (!SharedVars(bgp[i], bound).empty()) {
        next_i = static_cast<int>(i);
        break;
      }
      if (next_i < 0) next_i = static_cast<int>(i);
    }
    size_t i = static_cast<size_t>(next_i);
    done[i] = true;
    auto shared = SharedVars(bgp[i], bound);
    if (shared.empty()) {
      root = plan::MakeBinary(
          plan::NodeKind::kCartesianProduct, "merge-rows", std::move(root),
          scan(i),
          [this, width](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto current =
                std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
            auto rows = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[1]));
            return plan::PlanPayload(
                CartesianMergeBatches(sc_, current, rows, width));
          });
    } else {
      int key_idx = schema->IndexOf(shared[0]);
      root = plan::MakeBinary(
          plan::NodeKind::kPartitionedHashJoin, "on ?" + shared[0],
          std::move(root), scan(i),
          [this, key_idx, width](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto current =
                std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
            auto rows = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[1]));
            return plan::PlanPayload(
                JoinBatchesOn(sc_, current, rows, key_idx, width));
          });
      root->key_vars = {shared[0]};
    }
    for (const auto& v : bgp[i].Variables()) bound.Add(v);
  }

  std::string project_detail;
  for (const auto& v : schema->vars()) {
    project_detail += (project_detail.empty() ? "?" : " ?") + v;
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, project_detail, std::move(root),
      [schema, width](std::vector<plan::PlanPayload> in)
          -> Result<plan::PlanPayload> {
        auto current = std::any_cast<Rdd<sparql::IdTable>>(std::move(in[0]));
        return plan::PlanPayload(
            ToBindingTable(*schema, CollectRows(current, width)));
      });
  project->key_vars = schema->vars();
  return project;
}

}  // namespace rdfspark::systems
