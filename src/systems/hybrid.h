#ifndef RDFSPARK_SYSTEMS_HYBRID_H_
#define RDFSPARK_SYSTEMS_HYBRID_H_

#include <string>
#include <utility>
#include <vector>

#include "spark/rdd.h"
#include "spark/sql/dataframe.h"
#include "systems/common.h"
#include "systems/engine.h"

namespace rdfspark::systems {

/// The four BGP evaluation strategies studied by Naacke, Amann & Cure [21]
/// ("SPARQL graph pattern processing with Apache Spark"). Data is hash
/// partitioned on the subject.
enum class HybridMode {
  /// Spark SQL / Catalyst translation: with more than one triple pattern,
  /// degenerates to Cartesian products + filters (the paper's noted
  /// drawback).
  kSparkSqlNaive,
  /// RDD API: every join becomes a partitioned (shuffle) join in the input
  /// order; the whole dataset is read for each triple pattern.
  kRddPartitioned,
  /// DataFrame API: columnar compressed representation; cost-based single
  /// broadcast join when a side is under the size threshold; ignores data
  /// partitioning.
  kDataFrameAuto,
  /// The paper's contribution: broadcast joins combined with partitioned
  /// joins, exploiting the existing subject partitioning, planned by a
  /// greedy statistics-based optimizer.
  kHybrid,
};

const char* HybridModeName(HybridMode mode);

/// Engine for [21]. The mode selects which of the four strategies runs;
/// kHybrid is the paper's proposal and the default.
class HybridEngine : public BgpEngineBase {
 public:
  struct Options {
    int num_partitions = -1;
    HybridMode mode = HybridMode::kHybrid;
  };

  explicit HybridEngine(spark::SparkContext* sc)
      : HybridEngine(sc, Options()) {}
  HybridEngine(spark::SparkContext* sc, Options options);

  const EngineTraits& traits() const override { return traits_; }
  Result<LoadStats> Load(const rdf::TripleStore& store) override;
  plan::EngineProfile VerifyProfile() const override;

  HybridMode mode() const { return options_.mode; }

 protected:
  Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) override;
  const rdf::Dictionary& dictionary() const override {
    return store_->dictionary();
  }

 private:
  using KeyedTriple = std::pair<rdf::TermId, rdf::EncodedTriple>;

  /// Pattern candidates as a DataFrame with one "v_<var>" column per
  /// variable. `subject_partitioned` marks the result as placed by its
  /// subject column (valid when built from the subject-partitioned table).
  Result<spark::sql::DataFrame> PatternDf(const sparql::TriplePattern& tp,
                                          bool subject_partitioned) const;

  Result<plan::PlanPtr> PlanSqlNaive(
      const std::vector<sparql::TriplePattern>& bgp);
  Result<plan::PlanPtr> PlanRdd(const std::vector<sparql::TriplePattern>& bgp);
  Result<plan::PlanPtr> PlanDataFrame(
      const std::vector<sparql::TriplePattern>& bgp);
  Result<plan::PlanPtr> PlanHybrid(
      const std::vector<sparql::TriplePattern>& bgp);

  /// Rows of a result DataFrame (v_<var> columns) as a binding table.
  sparql::BindingTable DfToBindings(const spark::sql::DataFrame& df) const;

  uint64_t PatternCardinality(const sparql::TriplePattern& tp) const;

  EngineTraits traits_;
  Options options_;
  const rdf::TripleStore* store_ = nullptr;
  rdf::DatasetStatistics stats_;
  int num_partitions_ = 0;
  spark::Rdd<KeyedTriple> rdd_by_subject_;
  spark::sql::DataFrame df_by_subject_;  // partitioned by "s"
  spark::sql::DataFrame df_plain_;       // same data, placement ignored
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_HYBRID_H_
