#include "systems/s2rdf.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

namespace rdfspark::systems {

namespace sql = spark::sql;

S2rdfEngine::S2rdfEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(options) {
  traits_.name = "S2RDF";
  traits_.citation =
      "[24] Schatzle, Przyjaciel-Zablocki, Skilevic, Lausen — PVLDB 2016";
  traits_.data_model = DataModel::kTriple;
  traits_.abstractions = {SparkAbstraction::kSparkSql};
  traits_.query_processing = "Spark SQL";
  traits_.has_optimization = true;
  traits_.optimization_note =
      "sub-query ordering by bound variables then table size; ExtVP "
      "semi-join reductions shrink join inputs";
  traits_.partitioning = "Extended Vertical";
  traits_.fragment = SparqlFragment::kBgpPlus;
  traits_.contribution =
      "improvements for all query types via ExtVP with bounded storage "
      "overhead (selectivity factor threshold)";
}

namespace {

std::string VpName(rdf::TermId p) { return "vp_p" + std::to_string(p); }

std::string ExtVpName(const char* kind, rdf::TermId p1, rdf::TermId p2) {
  return std::string("extvp_") + kind + "_p" + std::to_string(p1) + "_p" +
         std::to_string(p2);
}

}  // namespace

Result<LoadStats> S2rdfEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  session_ = std::make_unique<sql::SqlSession>(sc_);
  // The session catalog above is rebuilt from scratch, so the row-count
  // shadow map must be too — stale ExtVP entries would otherwise make the
  // planner pick tables the fresh catalog doesn't have.
  table_rows_.clear();
  int n = options_.num_partitions > 0 ? options_.num_partitions
                                      : sc_->config().default_parallelism;

  sql::Schema so_schema{{sql::Field{"s", sql::DataType::kInt64},
                         sql::Field{"o", sql::DataType::kInt64}}};
  sql::Schema spo_schema{{sql::Field{"s", sql::DataType::kInt64},
                          sql::Field{"p", sql::DataType::kInt64},
                          sql::Field{"o", sql::DataType::kInt64}}};

  // VP tables.
  std::unordered_map<rdf::TermId, std::vector<std::pair<int64_t, int64_t>>>
      vp_rows;
  std::vector<sql::Row> all_rows;
  for (const auto& t : store.triples()) {
    vp_rows[t.p].emplace_back(static_cast<int64_t>(t.s),
                              static_cast<int64_t>(t.o));
    all_rows.push_back(sql::Row{static_cast<int64_t>(t.s),
                                static_cast<int64_t>(t.p),
                                static_cast<int64_t>(t.o)});
  }
  session_->RegisterTable(
      "triples", sql::DataFrame::FromRows(sc_, spo_schema, all_rows, n));
  table_rows_["triples"] = all_rows.size();

  uint64_t stored_records = store.triples().size();
  for (const auto& [p, rows] : vp_rows) {
    std::vector<sql::Row> df_rows;
    df_rows.reserve(rows.size());
    for (const auto& [s, o] : rows) df_rows.push_back(sql::Row{s, o});
    int parts = std::max(1, std::min(n, static_cast<int>(rows.size() / 64) +
                                            1));
    session_->RegisterTable(
        VpName(p), sql::DataFrame::FromRows(sc_, so_schema, df_rows, parts));
    table_rows_[VpName(p)] = rows.size();
  }

  // ExtVP: for every predicate pair, semi-join reductions SS / OS / SO.
  // Computed driver-side during preprocessing (the paper does this in a
  // one-off load job), registered as tables when SF <= threshold.
  num_extvp_tables_ = 0;
  extvp_rows_ = 0;
  if (options_.enable_extvp && options_.selectivity_threshold > 0.0) {
    // Per-predicate subject/object value sets.
    std::unordered_map<rdf::TermId, std::unordered_set<rdf::TermId>> subjects;
    std::unordered_map<rdf::TermId, std::unordered_set<rdf::TermId>> objects;
    for (const auto& [p, rows] : vp_rows) {
      auto& subj = subjects[p];
      auto& obj = objects[p];
      for (const auto& [s, o] : rows) {
        subj.insert(static_cast<rdf::TermId>(s));
        obj.insert(static_cast<rdf::TermId>(o));
      }
    }
    auto materialize = [&](const char* kind, rdf::TermId p1, rdf::TermId p2,
                           const std::unordered_set<rdf::TermId>& keep,
                           bool key_on_subject) {
      const auto& rows = vp_rows[p1];
      std::vector<sql::Row> kept;
      for (const auto& [s, o] : rows) {
        rdf::TermId key = key_on_subject ? static_cast<rdf::TermId>(s)
                                         : static_cast<rdf::TermId>(o);
        if (keep.contains(key)) kept.push_back(sql::Row{s, o});
      }
      double sf = rows.empty()
                      ? 0.0
                      : static_cast<double>(kept.size()) /
                            static_cast<double>(rows.size());
      if (sf > options_.selectivity_threshold) return;  // not materialized
      std::string name = ExtVpName(kind, p1, p2);
      int parts =
          std::max(1, std::min(n, static_cast<int>(kept.size() / 64) + 1));
      table_rows_[name] = kept.size();
      extvp_rows_ += kept.size();
      ++num_extvp_tables_;
      session_->RegisterTable(
          name,
          sql::DataFrame::FromRows(sc_, so_schema, std::move(kept), parts));
    };
    for (const auto& [p1, rows1] : vp_rows) {
      for (const auto& [p2, rows2] : vp_rows) {
        if (p1 == p2) continue;
        materialize("ss", p1, p2, subjects[p2], /*key_on_subject=*/true);
        materialize("os", p1, p2, subjects[p2], /*key_on_subject=*/false);
        materialize("so", p1, p2, objects[p2], /*key_on_subject=*/true);
      }
    }
  }

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = stored_records + extvp_rows_;
  for (const auto& [name, df] : session_->catalog()) {
    stats.stored_bytes += df.EstimatedBytes();
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

S2rdfEngine::TableInfo S2rdfEngine::ChooseTable(
    const std::vector<sparql::TriplePattern>& bgp, size_t i) const {
  const auto& tp = bgp[i];
  TableInfo best;
  if (tp.p.is_variable()) {
    best.name = "triples";
    best.rows = table_rows_.at("triples");
    return best;
  }
  auto pid = store_->dictionary().Lookup(tp.p.term());
  if (!pid.ok()) {
    best.name = "";  // impossible pattern
    return best;
  }
  std::string vp = VpName(*pid);
  auto vp_it = table_rows_.find(vp);
  if (vp_it == table_rows_.end()) {
    // The term exists but never as a predicate: matches nothing.
    best.name = "";
    return best;
  }
  best.name = vp;
  best.rows = vp_it->second;

  // Among ExtVP tables applicable to this pattern's correlations, pick the
  // smallest materialized one.
  auto consider = [&](const std::string& name) {
    auto it = table_rows_.find(name);
    if (it != table_rows_.end() && it->second <= best.rows) {
      best.name = name;
      best.rows = it->second;
    }
  };
  for (size_t j = 0; j < bgp.size(); ++j) {
    if (j == i || bgp[j].p.is_variable()) continue;
    auto pj = store_->dictionary().Lookup(bgp[j].p.term());
    if (!pj.ok()) continue;
    // Correlation of pattern i relative to j.
    auto shares = [](const sparql::PatternTerm& a,
                     const sparql::PatternTerm& b) {
      return a.is_variable() && b.is_variable() && a.var() == b.var();
    };
    if (shares(tp.s, bgp[j].s)) consider(ExtVpName("ss", *pid, *pj));
    if (shares(tp.o, bgp[j].s)) consider(ExtVpName("os", *pid, *pj));
    if (shares(tp.s, bgp[j].o)) consider(ExtVpName("so", *pid, *pj));
  }
  return best;
}

Result<S2rdfEngine::SqlParts> S2rdfEngine::BuildSqlParts(
    const std::vector<sparql::TriplePattern>& bgp) const {
  if (bgp.empty()) return Status::InvalidArgument("empty BGP");
  const rdf::Dictionary& dict = store_->dictionary();

  // Order: most bound variables first; ties by smaller table.
  std::vector<size_t> order(bgp.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int ba = bgp[a].BoundCount();
    int bb = bgp[b].BoundCount();
    if (ba != bb) return ba > bb;
    return ChooseTable(bgp, a).rows < ChooseTable(bgp, b).rows;
  });

  SqlParts parts;
  for (size_t k = 0; k < order.size(); ++k) {
    size_t i = order[k];
    const auto& tp = bgp[i];
    TableInfo table = ChooseTable(bgp, i);
    if (table.name.empty()) {
      // Unknown constant: an always-false condition keeps the query valid.
      table.name = "triples";
      table.rows = table_rows_.at("triples");
      parts.where.push_back("t" + std::to_string(k) + ".s = -1");
    }
    std::string alias = "t" + std::to_string(k);
    std::vector<std::string> on;
    std::vector<std::string> new_vars;
    std::vector<std::string> on_vars;

    auto handle_slot = [&](const sparql::PatternTerm& slot,
                           const std::string& column) {
      std::string qualified = alias + "." + column;
      if (slot.is_variable()) {
        auto it = parts.var_column.find(slot.var());
        if (it == parts.var_column.end()) {
          parts.var_column.emplace(slot.var(), qualified);
          parts.var_order.push_back(slot.var());
          new_vars.push_back(slot.var());
        } else {
          (k == 0 ? parts.where : on).push_back(qualified + " = " +
                                                it->second);
          if (k > 0) on_vars.push_back(slot.var());
        }
      } else {
        auto id = dict.Lookup(slot.term());
        std::string value = id.ok() ? std::to_string(*id) : "-1";
        (k == 0 ? parts.where : on).push_back(qualified + " = " + value);
      }
    };
    handle_slot(tp.s, "s");
    if (tp.p.is_variable() || table.name == "triples") {
      if (tp.p.is_variable()) {
        handle_slot(tp.p, "p");
      } else {
        auto id = dict.Lookup(tp.p.term());
        std::string value = id.ok() ? std::to_string(*id) : "-1";
        (k == 0 ? parts.where : on).push_back(alias + ".p = " + value);
      }
    }
    handle_slot(tp.o, "o");

    parts.steps.push_back(SqlParts::Step{
        table.name, alias, table.rows, std::move(on), std::move(new_vars),
        std::move(on_vars),
        tp.s.is_variable() ? tp.s.var() : std::string()});
  }
  return parts;
}

Result<std::string> S2rdfEngine::TranslateBgpToSql(
    const std::vector<sparql::TriplePattern>& bgp) const {
  RDFSPARK_ASSIGN_OR_RETURN(SqlParts parts, BuildSqlParts(bgp));

  std::string from_clause;
  for (size_t k = 0; k < parts.steps.size(); ++k) {
    const auto& step = parts.steps[k];
    if (k == 0) {
      from_clause = step.table + " " + step.alias;
    } else {
      std::string cond = step.on.empty() ? "1 = 1" : "";
      for (size_t c = 0; c < step.on.size(); ++c) {
        if (c) cond += " AND ";
        cond += step.on[c];
      }
      from_clause += " JOIN " + step.table + " " + step.alias + " ON " + cond;
    }
  }

  std::string select = "SELECT ";
  for (size_t v = 0; v < parts.var_order.size(); ++v) {
    if (v) select += ", ";
    select += parts.var_column[parts.var_order[v]] + " AS v_" +
              parts.var_order[v];
  }
  if (parts.var_order.empty()) select += "1 AS one";
  std::string sql = select + " FROM " + from_clause;
  if (!parts.where.empty()) {
    sql += " WHERE ";
    for (size_t c = 0; c < parts.where.size(); ++c) {
      if (c) sql += " AND ";
      sql += parts.where[c];
    }
  }
  return sql;
}

Result<plan::PlanPtr> S2rdfEngine::PlanBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) return Status::Internal("S2RDF: Load() not called");
  if (bgp.empty()) {
    return plan::ConstantResultPlan(sparql::BindingTable::Unit(), "unit");
  }

  RDFSPARK_ASSIGN_OR_RETURN(SqlParts parts, BuildSqlParts(bgp));
  RDFSPARK_ASSIGN_OR_RETURN(std::string sql_text, TranslateBgpToSql(bgp));

  // The Spark SQL layer executes the translated query as one unit, so the
  // scan/join nodes below are descriptive (no exec); the root Project runs
  // the captured SQL and converts the v_<var> columns back to bindings.
  auto access = [](const std::string& table) {
    if (table.rfind("extvp_", 0) == 0) return plan::AccessPath::kExtVpTable;
    if (table.rfind("vp_", 0) == 0) return plan::AccessPath::kVpTable;
    return plan::AccessPath::kFullScan;
  };
  auto leaf = [&](const SqlParts::Step& step) {
    auto node =
        plan::MakeScan(plan::NodeKind::kPatternScan, access(step.table),
                       step.table + " " + step.alias, step.rows, nullptr);
    node->out_vars = step.new_vars;
    node->subject_var = step.subject_var;
    // step.rows is the scanned VP/ExtVP table's size — a sound cap for the
    // filtered scan over it.
    node->max_cardinality = step.rows;
    return node;
  };

  plan::PlanPtr root = leaf(parts.steps[0]);
  for (size_t k = 1; k < parts.steps.size(); ++k) {
    const auto& step = parts.steps[k];
    std::string cond;
    for (size_t c = 0; c < step.on.size(); ++c) {
      if (c) cond += " AND ";
      cond += step.on[c];
    }
    root = step.on.empty()
               ? plan::MakeBinary(plan::NodeKind::kCartesianProduct, "1 = 1",
                                  std::move(root), leaf(step), nullptr)
               : plan::MakeBinary(plan::NodeKind::kPartitionedHashJoin,
                                  "on " + cond, std::move(root), leaf(step),
                                  nullptr);
    root->key_vars = step.on_vars;
  }

  std::string project_detail;
  for (const auto& v : parts.var_order) {
    project_detail += (project_detail.empty() ? "?" : " ?") + v;
  }
  if (project_detail.empty()) project_detail = "1 AS one";

  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, project_detail, std::move(root),
      [this, sql_text](std::vector<plan::PlanPayload>)
          -> Result<plan::PlanPayload> {
        RDFSPARK_ASSIGN_OR_RETURN(sql::DataFrame result,
                                  session_->Sql(sql_text));
        // Convert v_<var> columns back to a binding table.
        std::vector<std::string> vars;
        std::vector<int> cols;
        for (size_t i = 0; i < result.schema().num_fields(); ++i) {
          const std::string& name = result.schema().field(i).name;
          if (name.rfind("v_", 0) == 0) {
            vars.push_back(name.substr(2));
            cols.push_back(static_cast<int>(i));
          }
        }
        sparql::BindingTable table(vars);
        sparql::IdTable* rows = table.mutable_rows();
        for (const auto& row : result.Collect()) {
          rdf::TermId* cells = rows->AppendRowUninitialized();
          for (size_t i = 0; i < cols.size(); ++i) {
            const sql::Value& v = row[static_cast<size_t>(cols[i])];
            cells[i] = sql::IsNull(v) ? sparql::kUnbound
                                      : static_cast<rdf::TermId>(
                                            std::get<int64_t>(v));
          }
        }
        return plan::PlanPayload(std::move(table));
      });
  project->key_vars = parts.var_order;
  return project;
}

plan::EngineProfile S2rdfEngine::VerifyProfile() const {
  plan::EngineProfile profile;
  profile.engine_name = traits_.name;
  profile.vertical_partitioned = true;
  return profile;
}

}  // namespace rdfspark::systems
