#ifndef RDFSPARK_SYSTEMS_SPARKQL_H_
#define RDFSPARK_SYSTEMS_SPARKQL_H_

#include <unordered_set>
#include <vector>

#include "spark/graphx/graph.h"
#include "systems/common.h"
#include "systems/engine.h"

namespace rdfspark::systems {

/// Node attributes in Spar(k)ql's model: data properties (literal-valued
/// predicates) and rdf:type values are stored inside the node; object
/// properties become graph edges.
struct SparkqlNode {
  rdf::TermId term = 0;
  /// (predicate, literal value) pairs.
  std::vector<std::pair<rdf::TermId, rdf::TermId>> data_properties;
  std::vector<rdf::TermId> types;

  bool operator==(const SparkqlNode&) const = default;
};

uint64_t EstimateSize(const SparkqlNode& n);

/// Spar(k)ql [12] — SPARQL evaluation on GraphX via vertex programs.
/// Reproduced mechanisms:
///
///  * node model: data properties and rdf:type stored as node properties
///    (rdf:type kept in the node despite being an object property, due to
///    its popularity); object properties are edges;
///  * query planning: a breadth-first-search tree over the object-property
///    patterns;
///  * execution: the plan tree is traversed bottom-up; each node receives
///    sub-result tables from its children as messages and combines them
///    with its locally-stored property matches; non-tree (cycle-closing)
///    patterns are verified at the end.
class SparkqlEngine : public BgpEngineBase {
 public:
  struct Options {
    int num_partitions = -1;
  };

  explicit SparkqlEngine(spark::SparkContext* sc)
      : SparkqlEngine(sc, Options()) {}
  SparkqlEngine(spark::SparkContext* sc, Options options);

  const EngineTraits& traits() const override { return traits_; }
  Result<LoadStats> Load(const rdf::TripleStore& store) override;
  plan::EngineProfile VerifyProfile() const override;

 protected:
  Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) override;
  const rdf::Dictionary& dictionary() const override {
    return store_->dictionary();
  }

 private:
  EngineTraits traits_;
  Options options_;
  const rdf::TripleStore* store_ = nullptr;
  rdf::DatasetStatistics stats_;
  spark::graphx::Graph<SparkqlNode, rdf::TermId> graph_;
  uint64_t num_vertices_ = 0;
  std::unordered_set<rdf::TermId> data_predicates_;
  rdf::TermId type_predicate_ = ~0ull;
  bool has_type_predicate_ = false;
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_SPARKQL_H_
