#ifndef RDFSPARK_SYSTEMS_SPARKRDF_H_
#define RDFSPARK_SYSTEMS_SPARKRDF_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "spark/rdd.h"
#include "systems/common.h"
#include "systems/engine.h"

namespace rdfspark::systems {

/// SparkRDF [5] — "elastic discreted RDF graph processing engine with
/// distributed memory", built directly on Spark without a graph API.
/// Reproduced mechanisms:
///
///  * MESG (Multi-layer Elastic Sub-Graph) storage: level 1 splits triples
///    into a class index (rdf:type triples, filed by object class) and a
///    relation index (filed by predicate); level 2 adds CR (class-relation)
///    and RC (relation-class) files keyed by the subject's / object's
///    class; level 3 adds CRC files keyed by both classes;
///  * RDSG (Resilient Discreted Semantic SubGraph): index files are loaded
///    on demand into distributed memory with dynamic pre-partitioning on
///    the join variable, so records sharing a variable value land in the
///    same partition;
///  * optimizations: rdf:type patterns are eliminated by passing the
///    variable's class to its other patterns (selecting CR/RC/CRC files);
///    the query plan orders join variables, then the triple patterns per
///    variable.
class SparkRdfEngine : public BgpEngineBase {
 public:
  struct Options {
    int num_partitions = -1;
    /// Disables rdf:type elimination + class-indexed file selection (A8).
    bool enable_class_indexes = true;
  };

  explicit SparkRdfEngine(spark::SparkContext* sc)
      : SparkRdfEngine(sc, Options()) {}
  SparkRdfEngine(spark::SparkContext* sc, Options options);

  const EngineTraits& traits() const override { return traits_; }
  Result<LoadStats> Load(const rdf::TripleStore& store) override;
  plan::EngineProfile VerifyProfile() const override;

 protected:
  Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) override;
  const rdf::Dictionary& dictionary() const override {
    return store_->dictionary();
  }

 private:
  using TripleList = std::vector<rdf::EncodedTriple>;

  /// Picks the smallest MESG file applicable to a pattern, given known
  /// variable classes. Returns nullptr when the combination cannot match.
  const TripleList* SelectFile(
      const sparql::TriplePattern& tp,
      const std::unordered_map<std::string, rdf::TermId>& var_class) const;

  EngineTraits traits_;
  Options options_;
  const rdf::TripleStore* store_ = nullptr;
  int num_partitions_ = 0;
  rdf::TermId type_predicate_ = ~0ull;
  bool has_type_predicate_ = false;

  TripleList all_triples_;
  // Level 1.
  std::unordered_map<rdf::TermId, std::unordered_set<rdf::TermId>>
      class_index_;  // class -> instances
  std::unordered_map<rdf::TermId, TripleList> relation_index_;  // p -> triples
  // Level 2.
  std::unordered_map<std::pair<rdf::TermId, rdf::TermId>, TripleList,
                     spark::ValueHasher>
      cr_index_;  // (subject class, p)
  std::unordered_map<std::pair<rdf::TermId, rdf::TermId>, TripleList,
                     spark::ValueHasher>
      rc_index_;  // (p, object class)
  // Level 3.
  std::unordered_map<std::tuple<rdf::TermId, rdf::TermId, rdf::TermId>,
                     TripleList, spark::ValueHasher>
      crc_index_;  // (subject class, p, object class)
  uint64_t index_records_ = 0;
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_SPARKRDF_H_
