#include "systems/haqwa.h"

#include <algorithm>
#include <any>
#include <chrono>
#include <memory>

#include "sparql/parser.h"

namespace rdfspark::systems {

using spark::Rdd;

HaqwaEngine::HaqwaEngine(spark::SparkContext* sc, Options options)
    : BgpEngineBase(sc), options_(std::move(options)) {
  traits_.name = "HAQWA";
  traits_.citation = "[7] Cure, Naacke, Baazizi, Amann — ISWC P&D 2015";
  traits_.data_model = DataModel::kTriple;
  traits_.abstractions = {SparkAbstraction::kRdd};
  traits_.query_processing = "RDD API";
  traits_.has_optimization = false;
  traits_.optimization_note =
      "no join reordering; relies on fragmentation + replication";
  traits_.partitioning = "Hash / Query Aware";
  traits_.fragment = SparqlFragment::kBgpPlus;
  traits_.contribution =
      "trade-off between data distribution complexity and query answering "
      "efficiency; star queries local by construction";
}

Result<LoadStats> HaqwaEngine::Load(const rdf::TripleStore& store) {
  auto start = std::chrono::steady_clock::now();
  store_ = &store;
  stats_ = store.ComputeStatistics();
  int n = options_.num_partitions > 0 ? options_.num_partitions
                                      : sc_->config().default_parallelism;

  // Step 1: fragmentation on subjects (dictionary-encoded triples) — hash
  // by default, by subject class under the semantic option.
  std::vector<KeyedTriple> keyed;
  keyed.reserve(store.triples().size());
  for (const auto& t : store.triples()) keyed.emplace_back(t.s, t);
  auto base = Parallelize(sc_, std::move(keyed), n);
  if (options_.semantic_partitioning) {
    semantic_ = std::make_shared<const SemanticPartitioner>(store, n);
    subject_partitioner_ = spark::PartitionerInfo{"semantic-class", n, 0};
    auto partitioner = semantic_;
    by_subject_ = base.ShuffleBy(
        [partitioner](const KeyedTriple& kv) {
          // The partition index is already < n, so the modulo in ShuffleBy
          // leaves it unchanged.
          return static_cast<uint64_t>(
              partitioner->PartitionOfSubject(kv.first));
        },
        n, "SemanticPartition", subject_partitioner_);
  } else {
    semantic_.reset();
    subject_partitioner_ = spark::PartitionerInfo{"hash-subject", n, 0};
    by_subject_ = base.PartitionByKey(n, "hash-subject");
  }
  by_subject_.Count();  // materialize the fragmentation

  // Step 2: workload-aware allocation. For every subject-object link
  // (?x pA ?y)(?y pB ?z) in a frequent query, replicate the pB triples to
  // the partition of the pA subject that reaches them.
  replicated_triples_ = 0;
  // Replicas are guarded by contains() below, so a reload must clear them
  // or the second Load keeps replicas built from the previous store.
  replicas_.clear();
  object_replicas_.clear();
  std::vector<std::pair<rdf::TermId, rdf::TermId>> links;
  for (const auto& text : options_.frequent_queries) {
    auto query = sparql::ParseQuery(text);
    if (!query.ok()) continue;
    const auto& bgp = query->where.bgp;
    for (const auto& a : bgp) {
      if (!a.o.is_variable() || a.p.is_variable()) continue;
      for (const auto& b : bgp) {
        if (&a == &b || b.p.is_variable()) continue;
        if (b.s.is_variable() && b.s.var() == a.o.var()) {
          auto pa = store.dictionary().Lookup(a.p.term());
          auto pb = store.dictionary().Lookup(b.p.term());
          if (pa.ok() && pb.ok()) links.emplace_back(*pa, *pb);
        }
      }
    }
  }
  for (const auto& [pa, pb] : links) {
    if (replicas_.contains({pa, pb})) continue;
    rdf::TermId pa_id = pa;
    rdf::TermId pb_id = pb;
    // A-triples keyed by object; B-triples keyed by subject.
    auto a_by_object =
        by_subject_
            .Filter([pa_id](const KeyedTriple& kv) {
              return kv.second.p == pa_id;
            })
            .Map([](const KeyedTriple& kv) {
              return std::pair<rdf::TermId, rdf::TermId>(kv.second.o,
                                                         kv.second.s);
            });
    auto b_by_subject = by_subject_.Filter(
        [pb_id](const KeyedTriple& kv) { return kv.second.p == pb_id; });
    // (object==subject) join, then re-key by the reaching A-subject and
    // co-partition with the base fragmentation.
    auto replica =
        a_by_object.Join(b_by_subject)
            .Map([](const std::pair<rdf::TermId,
                                    std::pair<rdf::TermId,
                                              rdf::EncodedTriple>>& kv) {
              return KeyedTriple(kv.second.first, kv.second.second);
            })
            .PartitionByKey(subject_partitioner_.num_partitions,
                            "hash-subject");
    replicated_triples_ += replica.Count();
    replicas_.emplace(std::make_pair(pa, pb), replica);

    // Object-keyed replica of the link source, for seeds at the target end.
    if (!object_replicas_.contains(pa)) {
      auto by_object =
          by_subject_
              .Filter([pa_id](const KeyedTriple& kv) {
                return kv.second.p == pa_id;
              })
              .Map([](const KeyedTriple& kv) {
                return KeyedTriple(kv.second.o, kv.second);
              })
              .PartitionByKey(subject_partitioner_.num_partitions,
                              "hash-subject");
      replicated_triples_ += by_object.Count();
      object_replicas_.emplace(pa, by_object);
    }
  }

  LoadStats stats;
  stats.input_triples = store.triples().size();
  stats.stored_records = stats.input_triples + replicated_triples_;
  stats.stored_bytes = by_subject_.MemoryFootprint();
  for (auto& [key, replica] : replicas_) {
    stats.stored_bytes += replica.MemoryFootprint();
  }
  for (auto& [key, replica] : object_replicas_) {
    stats.stored_bytes += replica.MemoryFootprint();
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

spark::Rdd<KeyedBatch> HaqwaEngine::EvaluateStarLocal(
    const SubjectGroup& group, const VarSchema& schema) const {
  // Encode the group's patterns once, outside the closure.
  auto encoded = std::make_shared<std::vector<EncodedPattern>>();
  for (const auto& tp : group.patterns) {
    encoded->push_back(EncodePattern(store_->dictionary(), tp));
  }
  auto schema_copy = std::make_shared<const VarSchema>(schema);
  size_t width = schema.vars().size();
  auto rows = by_subject_.MapPartitionsWithIndex(
      [encoded, schema_copy, width](int,
                                    const std::vector<KeyedTriple>& part) {
        // Bucket the partition's triples by subject.
        std::unordered_map<rdf::TermId, std::vector<rdf::EncodedTriple>,
                           spark::ValueHasher>
            by_subject;
        for (const auto& kv : part) by_subject[kv.first].push_back(kv.second);
        KeyedBatch out{{}, sparql::IdTable(width)};
        for (const auto& [subject, triples] : by_subject) {
          std::vector<IdRow> rows{IdRow(width, sparql::kUnbound)};
          for (const auto& ep : *encoded) {
            std::vector<IdRow> next;
            for (const auto& row : rows) {
              for (const auto& t : triples) {
                if (!MatchesConstants(ep, t)) continue;
                IdRow extended = row;
                if (ExtendRow(ep.source, t, *schema_copy, &extended)) {
                  next.push_back(std::move(extended));
                }
              }
            }
            rows = std::move(next);
            if (rows.empty()) break;
          }
          for (const auto& row : rows) {
            out.keys.push_back(subject);
            out.rows.AppendRow(row);
          }
        }
        return std::vector<KeyedBatch>{std::move(out)};
      });
  // Per-partition star joins never move rows off the subject's partition.
  return rows.AssumePartitioner(subject_partitioner_);
}

uint64_t HaqwaEngine::GroupCost(const SubjectGroup& group) const {
  uint64_t best = ~0ull;
  for (const auto& tp : group.patterns) {
    uint64_t cost = stats_.num_triples;
    if (!tp.p.is_variable()) {
      auto id = store_->dictionary().Lookup(tp.p.term());
      if (id.ok()) {
        auto it = stats_.predicate_count.find(*id);
        cost = it == stats_.predicate_count.end() ? 0 : it->second;
      } else {
        cost = 0;
      }
    }
    best = std::min(best, cost);
  }
  return best;
}

Result<plan::PlanPtr> HaqwaEngine::PlanBgp(
    const std::vector<sparql::TriplePattern>& bgp) {
  if (store_ == nullptr) return Status::Internal("HAQWA: Load() not called");
  if (bgp.empty()) {
    return plan::ConstantResultPlan(sparql::BindingTable::Unit(), "unit");
  }

  // Fixed schema over all BGP variables.
  auto schema = std::make_shared<VarSchema>();
  for (const auto& tp : bgp) {
    for (const auto& v : tp.Variables()) schema->Add(v);
  }
  size_t width = schema->vars().size();

  // Decompose into locally evaluable sub-queries (subject stars).
  std::vector<SubjectGroup> groups =
      GroupBySubject(bgp, store_->dictionary());
  for (const auto& g : groups) {
    if (g.impossible) {
      return plan::ConstantResultPlan(sparql::BindingTable(schema->vars()),
                                      "impossible pattern");
    }
  }
  // Seed: cheapest group (transfer-cost proxy).
  std::sort(groups.begin(), groups.end(),
            [this](const SubjectGroup& a, const SubjectGroup& b) {
              return GroupCost(a) < GroupCost(b);
            });

  // One locally-evaluable subject star; rows stay on their partition.
  auto star_leaf = [&](const SubjectGroup& group) {
    auto g = std::make_shared<const SubjectGroup>(group);
    std::string detail =
        (group.subject_var.empty() ? "[const]" : "?" + group.subject_var) +
        " (" + std::to_string(group.patterns.size()) +
        (group.patterns.size() == 1 ? " pattern)" : " patterns)");
    auto leaf = plan::MakeScan(
        plan::NodeKind::kLocalStarMatch, plan::AccessPath::kSubjectStar,
        detail, GroupCost(group),
        [this, g, schema](std::vector<plan::PlanPayload>)
            -> Result<plan::PlanPayload> {
          return plan::PlanPayload(EvaluateStarLocal(*g, *schema));
        });
    VarSchema group_vars;
    for (const auto& tp : group.patterns) {
      for (const auto& v : tp.Variables()) group_vars.Add(v);
    }
    leaf->out_vars = group_vars.vars();
    leaf->subject_var = group.subject_var;
    leaf->max_cardinality =
        StarScanBound(store_->dictionary(), stats_, group.patterns);
    return leaf;
  };

  // Plan the seed.
  plan::PlanPtr root = star_leaf(groups[0]);
  std::string current_key_var = groups[0].subject_var;  // may be empty

  std::vector<bool> done(groups.size(), false);
  done[0] = true;
  VarSchema bound;
  for (const auto& tp : groups[0].patterns) {
    for (const auto& v : tp.Variables()) bound.Add(v);
  }

  for (size_t step = 1; step < groups.size(); ++step) {
    // Pick the next group sharing a variable with what is bound so far.
    int next = -1;
    std::string link_var;
    for (size_t i = 0; i < groups.size(); ++i) {
      if (done[i]) continue;
      // Prefer linking through the group's subject variable (enables the
      // replica fast path).
      if (!groups[i].subject_var.empty() &&
          bound.IndexOf(groups[i].subject_var) >= 0) {
        next = static_cast<int>(i);
        link_var = groups[i].subject_var;
        break;
      }
      if (next < 0) {
        for (const auto& tp : groups[i].patterns) {
          for (const auto& v : tp.Variables()) {
            if (bound.IndexOf(v) >= 0) {
              next = static_cast<int>(i);
              link_var = v;
              break;
            }
          }
          if (next >= 0) break;
        }
      }
    }
    if (next < 0) {
      // Disconnected: take any remaining group (cartesian).
      for (size_t i = 0; i < groups.size(); ++i) {
        if (!done[i]) {
          next = static_cast<int>(i);
          break;
        }
      }
      link_var.clear();
    }
    const SubjectGroup& group = groups[static_cast<size_t>(next)];
    done[static_cast<size_t>(next)] = true;

    // Workload-aware fast path: the group is a single pattern reached over
    // a subject-object link from the current key variable, and its triples
    // were replicated to the link source's partitions at load time — the
    // join is local (no shuffle).
    if (!link_var.empty() && link_var == group.subject_var &&
        group.patterns.size() == 1 && !group.patterns[0].p.is_variable() &&
        !current_key_var.empty()) {
      std::optional<std::pair<rdf::TermId, rdf::TermId>> replica_key;
      for (const auto& tp : bgp) {
        if (tp.s.is_variable() && tp.s.var() == current_key_var &&
            tp.o.is_variable() && tp.o.var() == link_var &&
            !tp.p.is_variable()) {
          auto pa = store_->dictionary().Lookup(tp.p.term());
          auto pb = store_->dictionary().Lookup(group.patterns[0].p.term());
          if (pa.ok() && pb.ok() && replicas_.contains({*pa, *pb})) {
            replica_key = std::make_pair(*pa, *pb);
          }
          break;
        }
      }
      if (replica_key) {
        auto g = std::make_shared<const SubjectGroup>(group);
        auto key = *replica_key;
        plan::PlanPtr right = plan::MakeScan(
            plan::NodeKind::kPatternScan, plan::AccessPath::kReplica,
            group.patterns[0].ToString(), plan::kNoEstimate, nullptr);
        right->out_vars = group.patterns[0].Variables();
        right->subject_var = group.subject_var;
        right->max_cardinality =
            PatternScanBound(store_->dictionary(), stats_, group.patterns[0]);
        root = plan::MakeBinary(
            plan::NodeKind::kPartitionedHashJoin,
            "on ?" + link_var + " via replica (local)", std::move(root),
            std::move(right),
            [this, g, schema, key, width](std::vector<plan::PlanPayload> in)
                -> Result<plan::PlanPayload> {
              auto current = std::any_cast<Rdd<KeyedBatch>>(std::move(in[0]));
              const auto& replica = replicas_.at(key);
              EncodedPattern ep =
                  EncodePattern(store_->dictionary(), g->patterns[0]);
              // Co-partitioned with the replica: no shuffle.
              auto next = JoinKeyedWithTriples(sc_, current, replica, ep,
                                               *schema, width);
              // Key variable unchanged (still the link source's subject).
              if (!options_.semantic_partitioning) {
                next = next.AssumePartitioner(subject_partitioner_);
              }
              return plan::PlanPayload(std::move(next));
            });
        root->key_vars = {link_var};
        root->partition_local = true;  // replica co-partitioned at load time
        for (const auto& tp : group.patterns) {
          for (const auto& v : tp.Variables()) bound.Add(v);
        }
        continue;
      }
    }

    // Backward fast path: the group's single pattern reaches the current
    // key variable at its *object* and its triples were object-replicated.
    if (!link_var.empty() && link_var == current_key_var &&
        group.patterns.size() == 1 && !group.patterns[0].p.is_variable() &&
        group.patterns[0].o.is_variable() &&
        group.patterns[0].o.var() == link_var) {
      auto pb = store_->dictionary().Lookup(group.patterns[0].p.term());
      if (pb.ok() && object_replicas_.contains(*pb)) {
        auto g = std::make_shared<const SubjectGroup>(group);
        rdf::TermId pb_id = *pb;
        plan::PlanPtr right = plan::MakeScan(
            plan::NodeKind::kPatternScan, plan::AccessPath::kReplica,
            group.patterns[0].ToString(), plan::kNoEstimate, nullptr);
        right->out_vars = group.patterns[0].Variables();
        right->subject_var = group.subject_var;
        right->max_cardinality =
            PatternScanBound(store_->dictionary(), stats_, group.patterns[0]);
        root = plan::MakeBinary(
            plan::NodeKind::kPartitionedHashJoin,
            "on ?" + link_var + " via object-replica (local)",
            std::move(root), std::move(right),
            [this, g, schema, pb_id, width](std::vector<plan::PlanPayload> in)
                -> Result<plan::PlanPayload> {
              auto current = std::any_cast<Rdd<KeyedBatch>>(std::move(in[0]));
              const auto& replica = object_replicas_.at(pb_id);
              EncodedPattern ep =
                  EncodePattern(store_->dictionary(), g->patterns[0]);
              // Co-partitioned with the object replica: no shuffle.
              auto next = JoinKeyedWithTriples(sc_, current, replica, ep,
                                               *schema, width);
              if (!options_.semantic_partitioning) {
                next = next.AssumePartitioner(subject_partitioner_);
              }
              return plan::PlanPayload(std::move(next));
            });
        root->key_vars = {link_var};
        root->partition_local = true;  // object replica is co-partitioned
        for (const auto& tp : group.patterns) {
          for (const auto& v : tp.Variables()) bound.Add(v);
        }
        continue;
      }
    }

    plan::PlanPtr group_leaf = star_leaf(group);

    if (link_var.empty()) {
      // Cartesian of two keyed row sets.
      root = plan::MakeBinary(
          plan::NodeKind::kCartesianProduct, "merge-rows", std::move(root),
          std::move(group_leaf),
          [this, width](std::vector<plan::PlanPayload> in)
              -> Result<plan::PlanPayload> {
            auto current = std::any_cast<Rdd<KeyedBatch>>(std::move(in[0]));
            auto group_rows = std::any_cast<Rdd<KeyedBatch>>(std::move(in[1]));
            // Merged rows keep the left (accumulated) key, like the
            // per-element path did.
            return plan::PlanPayload(CartesianMergeKeyed(
                sc_, current, group_rows, /*keep_left_key=*/true, width));
          });
      current_key_var.clear();
    } else {
      int link_idx = schema->IndexOf(link_var);
      // Hash placement is a pure function of the key, so rows re-keyed by
      // their current key variable keep their placement claim. Semantic
      // placement is a function of the *subject entity*, not of arbitrary
      // key values — no claim.
      bool keep_claim =
          current_key_var == link_var && !options_.semantic_partitioning;
      bool group_keyed_by_link = link_var == group.subject_var;
      root = plan::MakeBinary(
          plan::NodeKind::kPartitionedHashJoin,
          "on ?" + link_var + (keep_claim ? "" : " (re-key)"),
          std::move(root), std::move(group_leaf),
          [this, link_idx, keep_claim, group_keyed_by_link, width](
              std::vector<plan::PlanPayload> in) -> Result<plan::PlanPayload> {
            auto current = std::any_cast<Rdd<KeyedBatch>>(std::move(in[0]));
            auto group_rows = std::any_cast<Rdd<KeyedBatch>>(std::move(in[1]));
            // Re-key current rows by the link variable.
            auto rekeyed_current = RekeyBatches(current, link_idx, width);
            if (keep_claim) {
              rekeyed_current =
                  rekeyed_current.AssumePartitioner(subject_partitioner_);
            }
            Rdd<KeyedBatch> rekeyed_group;
            if (group_keyed_by_link) {
              rekeyed_group =
                  group_rows;  // already keyed & partitioned by subject
            } else {
              rekeyed_group = RekeyBatches(group_rows, link_idx, width);
            }
            return plan::PlanPayload(
                JoinKeyedBatches(sc_, rekeyed_current, rekeyed_group, width));
          });
      root->key_vars = {link_var};
      root->partition_local = keep_claim && group_keyed_by_link;
      current_key_var = link_var;
    }
    for (const auto& tp : group.patterns) {
      for (const auto& v : tp.Variables()) bound.Add(v);
    }
  }

  std::string project_detail;
  for (const auto& v : schema->vars()) {
    project_detail += (project_detail.empty() ? "?" : " ?") + v;
  }
  auto project = plan::MakeUnary(
      plan::NodeKind::kProject, project_detail, std::move(root),
      [schema, width](std::vector<plan::PlanPayload> in)
          -> Result<plan::PlanPayload> {
        auto current = std::any_cast<Rdd<KeyedBatch>>(std::move(in[0]));
        return plan::PlanPayload(
            ToBindingTable(*schema, CollectKeyedRows(current, width)));
      });
  project->key_vars = schema->vars();
  return project;
}

plan::EngineProfile HaqwaEngine::VerifyProfile() const {
  plan::EngineProfile profile;
  profile.engine_name = traits_.name;
  // Both fragmentation modes place a subject's whole star on one partition
  // (hash of the subject, or the subject's class partition).
  profile.subject_partitioned = true;
  profile.star_local_layout = true;
  return profile;
}

}  // namespace rdfspark::systems
