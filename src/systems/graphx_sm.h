#ifndef RDFSPARK_SYSTEMS_GRAPHX_SM_H_
#define RDFSPARK_SYSTEMS_GRAPHX_SM_H_

#include <vector>

#include "spark/graphx/graph.h"
#include "systems/common.h"
#include "systems/engine.h"

namespace rdfspark::systems {

/// Kassaie [16] — "SPARQL over GraphX": subgraph matching driven by
/// AggregateMessages. Reproduced mechanisms:
///
///  * vertices labelled with their term and a Match Track (MT) table of
///    partial bindings ending at the vertex; edges labelled with the
///    predicate;
///  * per BGP triple, sendMsg matches the pattern against all graph edges
///    and forwards extended MT rows to the far endpoint; mergeMsg
///    concatenates the incoming tables (one AggregateMessages round per
///    pattern);
///  * after all patterns, the MT tables of the end vertices are joined to
///    produce the final answer (closing patterns of cyclic queries are
///    verified as final filters).
class GraphxSmEngine : public BgpEngineBase {
 public:
  struct Options {
    int num_partitions = -1;
  };

  explicit GraphxSmEngine(spark::SparkContext* sc)
      : GraphxSmEngine(sc, Options()) {}
  GraphxSmEngine(spark::SparkContext* sc, Options options);

  const EngineTraits& traits() const override { return traits_; }
  Result<LoadStats> Load(const rdf::TripleStore& store) override;

 protected:
  Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) override;
  const rdf::Dictionary& dictionary() const override {
    return store_->dictionary();
  }

 private:
  EngineTraits traits_;
  Options options_;
  const rdf::TripleStore* store_ = nullptr;
  rdf::DatasetStatistics stats_;
  spark::graphx::Graph<rdf::TermId, rdf::TermId> graph_;
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_GRAPHX_SM_H_
