#include "systems/batch.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "spark/hb.h"
#include "spark/value_hash.h"

namespace rdfspark::systems {

namespace {

using rdf::TermId;
using sparql::IdSpan;
using sparql::IdTable;

/// Per-key row buckets over one batch, insertion-ordered within a bucket so
/// probes emit matches in build order (the order Rdd::Join produced them).
std::unordered_map<TermId, std::vector<size_t>> BuildBuckets(
    const IdTable& rows, int key_col) {
  std::unordered_map<TermId, std::vector<size_t>> build;
  build.reserve(rows.size() * 2 + 1);
  for (size_t r = 0; r < rows.size(); ++r) {
    build[rows.cell(r, static_cast<size_t>(key_col))].push_back(r);
  }
  return build;
}

std::unordered_map<TermId, std::vector<size_t>> BuildKeyBuckets(
    const std::vector<TermId>& keys) {
  std::unordered_map<TermId, std::vector<size_t>> build;
  build.reserve(keys.size() * 2 + 1);
  for (size_t r = 0; r < keys.size(); ++r) build[keys[r]].push_back(r);
  return build;
}

}  // namespace

spark::Rdd<IdTable> ParallelizeBatch(spark::SparkContext* sc, IdTable rows,
                                     int n) {
  return spark::Parallelize(sc, rows.SplitRows(n), n);
}

spark::Rdd<IdTable> RepartitionBatches(const spark::Rdd<IdTable>& rdd,
                                       int key_col, int n, size_t width,
                                       const std::string& name,
                                       spark::PartitionerInfo info) {
  if (rdd.node()->partitioner() && *rdd.node()->partitioner() == info) {
    return rdd;
  }
  // Tier C identity of this repartition's cross-partition hand-off: split
  // tasks write sub-batches into the target buffers, merge tasks read them.
  // The ShuffleState publication barrier between the two stages is what
  // orders the pairs — the checker validates that chain end to end.
  const int64_t hb_id = spark::hb::AssignWindowId();
  auto split = rdd.MapPartitionsWithIndex(
      [key_col, n, width, hb_id](int, const std::vector<IdTable>& in) {
        std::vector<std::pair<int, IdTable>> out;
        std::vector<int> slot(static_cast<size_t>(n), -1);
        for (const IdTable& batch : in) {
          for (size_t r = 0; r < batch.size(); ++r) {
            uint64_t h =
                spark::HashValue(batch.cell(r, static_cast<size_t>(key_col)));
            int t = static_cast<int>(h % static_cast<uint64_t>(n));
            int& s = slot[static_cast<size_t>(t)];
            if (s < 0) {
              s = static_cast<int>(out.size());
              out.emplace_back(t, IdTable(width));
            }
            out[static_cast<size_t>(s)].second.AppendRowFrom(batch, r);
          }
        }
        // Sibling split tasks append sub-batches for the same target
        // partition; the append itself is serialized by the shuffle
        // layer's bucket mutex (an atomic enqueue), so only the hand-off
        // to the plain merge-side read below needs the publication
        // barrier — that write→barrier→read chain is what Tier C checks.
        for (const auto& kv : out) {
          spark::hb::RecordAccess(spark::hb::BatchBufferObject(hb_id, kv.first),
                                  spark::hb::Access::kAtomicWrite,
                                  "RepartitionBatches.split");
        }
        return out;
      });
  auto shuffled = split.ShuffleBy(
      [](const std::pair<int, IdTable>& kv) {
        return static_cast<uint64_t>(kv.first);
      },
      n, name, info);
  return shuffled.MapPartitionsWithIndex(
      [width, hb_id](int p, const std::vector<std::pair<int, IdTable>>& in) {
        spark::hb::RecordAccess(spark::hb::BatchBufferObject(hb_id, p),
                                spark::hb::Access::kRead,
                                "RepartitionBatches.merge");
        IdTable merged(width);
        for (const auto& kv : in) merged.AppendRowsFrom(kv.second);
        return std::vector<IdTable>{std::move(merged)};
      },
      info);
}

spark::Rdd<KeyedBatch> RepartitionKeyed(const spark::Rdd<KeyedBatch>& rdd,
                                        int n, size_t width,
                                        const std::string& name,
                                        spark::PartitionerInfo info) {
  return RepartitionKeyedBy(
      rdd, [](TermId key) { return spark::HashValue(key); }, n, width, name,
      info);
}

spark::Rdd<KeyedBatch> RekeyBatches(const spark::Rdd<KeyedBatch>& rdd,
                                    int key_col, size_t width) {
  return rdd.Map([key_col, width](const KeyedBatch& batch) {
    KeyedBatch out{{}, IdTable(width)};
    out.keys.reserve(batch.rows.size());
    for (size_t r = 0; r < batch.rows.size(); ++r) {
      out.keys.push_back(batch.rows.cell(r, static_cast<size_t>(key_col)));
    }
    out.rows = batch.rows;
    return out;
  });
}

spark::Rdd<IdTable> JoinBatchesOn(spark::SparkContext* sc,
                                  const spark::Rdd<IdTable>& left,
                                  const spark::Rdd<IdTable>& right,
                                  int key_col, size_t width) {
  int n = std::max(left.node()->num_partitions(),
                   right.node()->num_partitions());
  bool copartitioned =
      left.node()->partitioner() && right.node()->partitioner() &&
      *left.node()->partitioner() == *right.node()->partitioner();
  spark::PartitionerInfo info{"hash", n, 0};
  auto l = copartitioned
               ? left
               : RepartitionBatches(left, key_col, n, width, "PartitionByKey",
                                    info);
  auto r = copartitioned
               ? right
               : RepartitionBatches(right, key_col, n, width, "PartitionByKey",
                                    info);
  // Engines historically merged join pairs through a claim-dropping FlatMap
  // and re-asserted placement with AssumePartitioner; emit claimless output
  // so downstream shuffle decisions match the per-element path exactly.
  return l.ZipPartitions(
      r,
      [sc, key_col, width](int, const std::vector<IdTable>& lin,
                           const std::vector<IdTable>& rin) {
        IdTable out(width);
        uint64_t comparisons = 0;
        for (const IdTable& lb : lin) {
          for (const IdTable& rb : rin) {
            auto build = BuildBuckets(rb, key_col);
            for (size_t i = 0; i < lb.size(); ++i) {
              auto it = build.find(lb.cell(i, static_cast<size_t>(key_col)));
              ++comparisons;
              if (it == build.end()) continue;
              comparisons += it->second.size() - 1;
              for (size_t j : it->second) {
                MergeRowsInto(lb.row(i), rb.row(j), &out);
              }
            }
          }
        }
        sc->ChargeJoinComparisons(comparisons);
        return std::vector<IdTable>{std::move(out)};
      });
}

spark::Rdd<KeyedBatch> JoinKeyedBatches(spark::SparkContext* sc,
                                        const spark::Rdd<KeyedBatch>& left,
                                        const spark::Rdd<KeyedBatch>& right,
                                        size_t width) {
  int n = std::max(left.node()->num_partitions(),
                   right.node()->num_partitions());
  bool copartitioned =
      left.node()->partitioner() && right.node()->partitioner() &&
      *left.node()->partitioner() == *right.node()->partitioner();
  spark::PartitionerInfo info{"hash", n, 0};
  auto l = copartitioned
               ? left
               : RepartitionKeyed(left, n, width, "PartitionByKey", info);
  auto r = copartitioned
               ? right
               : RepartitionKeyed(right, n, width, "PartitionByKey", info);
  return l.ZipPartitions(
      r,
      [sc, width](int, const std::vector<KeyedBatch>& lin,
                  const std::vector<KeyedBatch>& rin) {
        KeyedBatch out{{}, IdTable(width)};
        uint64_t comparisons = 0;
        for (const KeyedBatch& lb : lin) {
          for (const KeyedBatch& rb : rin) {
            auto build = BuildKeyBuckets(rb.keys);
            for (size_t i = 0; i < lb.rows.size(); ++i) {
              auto it = build.find(lb.keys[i]);
              ++comparisons;
              if (it == build.end()) continue;
              comparisons += it->second.size() - 1;
              for (size_t j : it->second) {
                if (MergeRowsInto(lb.rows.row(i), rb.rows.row(j),
                                  &out.rows)) {
                  out.keys.push_back(lb.keys[i]);
                }
              }
            }
          }
        }
        sc->ChargeJoinComparisons(comparisons);
        return std::vector<KeyedBatch>{std::move(out)};
      });
}

spark::Rdd<KeyedBatch> JoinKeyedWithTriples(
    spark::SparkContext* sc, const spark::Rdd<KeyedBatch>& left,
    const spark::Rdd<KeyedTriple>& right, const EncodedPattern& ep,
    const VarSchema& schema, size_t width) {
  int n = std::max(left.node()->num_partitions(),
                   right.node()->num_partitions());
  bool copartitioned =
      left.node()->partitioner() && right.node()->partitioner() &&
      *left.node()->partitioner() == *right.node()->partitioner();
  spark::PartitionerInfo info{"hash", n, 0};
  auto l = copartitioned
               ? left
               : RepartitionKeyed(left, n, width, "PartitionByKey", info);
  auto r = copartitioned ? right : right.PartitionByKey(n);
  return l.ZipPartitions(
      r,
      [sc, ep, schema, width](int, const std::vector<KeyedBatch>& lin,
                              const std::vector<KeyedTriple>& rin) {
        std::unordered_map<TermId, std::vector<size_t>> build;
        build.reserve(rin.size() * 2 + 1);
        for (size_t j = 0; j < rin.size(); ++j) {
          build[rin[j].first].push_back(j);
        }
        KeyedBatch out{{}, IdTable(width)};
        uint64_t comparisons = 0;
        for (const KeyedBatch& lb : lin) {
          for (size_t i = 0; i < lb.rows.size(); ++i) {
            auto it = build.find(lb.keys[i]);
            ++comparisons;
            if (it == build.end()) continue;
            comparisons += it->second.size() - 1;
            for (size_t j : it->second) {
              const rdf::EncodedTriple& triple = rin[j].second;
              if (!MatchesConstants(ep, triple)) continue;
              TermId* cells = out.rows.AppendRowUninitialized();
              IdSpan base = lb.rows.row(i);
              std::copy(base.begin(), base.end(), cells);
              if (ExtendRowCells(ep.source, triple, schema, cells)) {
                out.keys.push_back(lb.keys[i]);
              } else {
                out.rows.PopRow();
              }
            }
          }
        }
        sc->ChargeJoinComparisons(comparisons);
        return std::vector<KeyedBatch>{std::move(out)};
      });
}

spark::Rdd<IdTable> CartesianMergeBatches(spark::SparkContext* sc,
                                          const spark::Rdd<IdTable>& left,
                                          const spark::Rdd<IdTable>& right,
                                          size_t width) {
  return left.Cartesian(right).MapPartitionsWithIndex(
      [sc, width](int, const std::vector<std::pair<IdTable, IdTable>>& in) {
        IdTable out(width);
        for (const auto& ab : in) {
          sc->ChargeJoinComparisons(ab.first.size() * ab.second.size());
          for (size_t i = 0; i < ab.first.size(); ++i) {
            for (size_t j = 0; j < ab.second.size(); ++j) {
              MergeRowsInto(ab.first.row(i), ab.second.row(j), &out);
            }
          }
        }
        return std::vector<IdTable>{std::move(out)};
      });
}

spark::Rdd<KeyedBatch> CartesianMergeKeyed(spark::SparkContext* sc,
                                           const spark::Rdd<KeyedBatch>& left,
                                           const spark::Rdd<KeyedBatch>& right,
                                           bool keep_left_key, size_t width) {
  return left.Cartesian(right).MapPartitionsWithIndex(
      [sc, keep_left_key, width](
          int, const std::vector<std::pair<KeyedBatch, KeyedBatch>>& in) {
        KeyedBatch out{{}, IdTable(width)};
        for (const auto& ab : in) {
          sc->ChargeJoinComparisons(ab.first.rows.size() *
                                    ab.second.rows.size());
          for (size_t i = 0; i < ab.first.rows.size(); ++i) {
            for (size_t j = 0; j < ab.second.rows.size(); ++j) {
              if (MergeRowsInto(ab.first.rows.row(i), ab.second.rows.row(j),
                                &out.rows)) {
                out.keys.push_back(keep_left_key ? ab.first.keys[i]
                                                 : ab.second.keys[j]);
              }
            }
          }
        }
        return std::vector<KeyedBatch>{std::move(out)};
      });
}

sparql::IdTable CollectRows(const spark::Rdd<IdTable>& rdd, size_t width) {
  IdTable out(width);
  for (const IdTable& batch : rdd.Collect()) {
    if (batch.empty()) continue;
    out.AppendRowsFrom(batch);
  }
  return out;
}

sparql::IdTable CollectKeyedRows(const spark::Rdd<KeyedBatch>& rdd,
                                 size_t width) {
  IdTable out(width);
  for (const KeyedBatch& batch : rdd.Collect()) {
    if (batch.rows.empty()) continue;
    out.AppendRowsFrom(batch.rows);
  }
  return out;
}

}  // namespace rdfspark::systems
