#ifndef RDFSPARK_SYSTEMS_SPARQLGX_H_
#define RDFSPARK_SYSTEMS_SPARQLGX_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "spark/rdd.h"
#include "systems/common.h"
#include "systems/engine.h"

namespace rdfspark::systems {

/// SPARQLGX [13] — vertical partitioning over RDDs. Reproduced mechanisms:
///
///  * storage: one (subject, object) RDD per predicate ("a triple (s p o)
///    is stored in a file named p whose content keeps only s and o"),
///    reducing the memory footprint and making bounded-predicate patterns
///    cheap;
///  * translation: triple patterns map one by one onto the RDD API; each
///    sub-query result is joined with the next via keyBy on a common
///    variable, with a cross product when none is shared;
///  * optimization: statistics (counts of distinct subjects, predicates and
///    objects) reorder the join sequence.
class SparqlgxEngine : public BgpEngineBase {
 public:
  struct Options {
    int num_partitions = -1;
    /// Disables the statistics-based reordering (for the A7 ablation).
    bool enable_statistics_reordering = true;
  };

  explicit SparqlgxEngine(spark::SparkContext* sc)
      : SparqlgxEngine(sc, Options()) {}
  SparqlgxEngine(spark::SparkContext* sc, Options options);

  const EngineTraits& traits() const override { return traits_; }
  Result<LoadStats> Load(const rdf::TripleStore& store) override;
  plan::EngineProfile VerifyProfile() const override;

 protected:
  Result<plan::PlanPtr> PlanBgp(
      const std::vector<sparql::TriplePattern>& bgp) override;
  const rdf::Dictionary& dictionary() const override {
    return store_->dictionary();
  }

 private:
  using SoPair = std::pair<rdf::TermId, rdf::TermId>;

  /// Estimated result size of a pattern (the reordering statistic).
  uint64_t PatternSelectivity(const sparql::TriplePattern& tp) const;

  /// The candidate rows of one pattern as a batch RDD (one fixed-width
  /// IdTable per partition) over `schema`.
  spark::Rdd<sparql::IdTable> PatternRows(const sparql::TriplePattern& tp,
                                          const VarSchema& schema) const;

  EngineTraits traits_;
  Options options_;
  const rdf::TripleStore* store_ = nullptr;
  rdf::DatasetStatistics stats_;
  int num_partitions_ = 0;
  /// Vertical partitions: predicate id -> (s, o) RDD.
  std::unordered_map<rdf::TermId, spark::Rdd<SoPair>> vp_;
  /// Fallback for predicate-variable patterns.
  spark::Rdd<rdf::EncodedTriple> all_triples_;
};

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_SPARQLGX_H_
