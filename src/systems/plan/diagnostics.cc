#include "systems/plan/diagnostics.h"

#include <algorithm>

namespace rdfspark::systems::plan {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarn:
      return "WARN";
    case Severity::kError:
      return "ERROR";
  }
  return "unknown";
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::string out = SeverityName(d.severity);
  out += " [";
  out += d.rule;
  out += "] at ";
  out += d.node_path;
  out += ": ";
  out += d.message;
  if (!d.hint.empty()) {
    out += " (hint: ";
    out += d.hint;
    out += ")";
  }
  return out;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) {
    out += FormatDiagnostic(d);
    out += "\n";
  }
  return out;
}

bool HasError(const std::vector<Diagnostic>& diags) {
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

void SortDiagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.node_path != b.node_path) {
                       return a.node_path < b.node_path;
                     }
                     return a.message < b.message;
                   });
}

std::string RenderDiagnostics(std::vector<Diagnostic> diags) {
  if (diags.empty()) return "no findings\n";
  SortDiagnostics(&diags);
  return FormatDiagnostics(diags);
}

std::vector<Diagnostic> ErrorsOnly(const std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> errors;
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) errors.push_back(d);
  }
  return errors;
}

}  // namespace rdfspark::systems::plan
