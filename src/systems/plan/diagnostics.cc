#include "systems/plan/diagnostics.h"

namespace rdfspark::systems::plan {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarn:
      return "WARN";
    case Severity::kError:
      return "ERROR";
  }
  return "unknown";
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::string out = SeverityName(d.severity);
  out += " [";
  out += d.rule;
  out += "] at ";
  out += d.node_path;
  out += ": ";
  out += d.message;
  if (!d.hint.empty()) {
    out += " (hint: ";
    out += d.hint;
    out += ")";
  }
  return out;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) {
    out += FormatDiagnostic(d);
    out += "\n";
  }
  return out;
}

bool HasError(const std::vector<Diagnostic>& diags) {
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

}  // namespace rdfspark::systems::plan
