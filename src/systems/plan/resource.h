#ifndef RDFSPARK_SYSTEMS_PLAN_RESOURCE_H_
#define RDFSPARK_SYSTEMS_PLAN_RESOURCE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "spark/context.h"
#include "systems/plan/diagnostics.h"
#include "systems/plan/plan.h"
#include "systems/plan/verifier.h"

namespace rdfspark::systems::plan {

/// Tier D of the static dataflow lint: memory/shuffle envelope analysis.
///
/// The analyzer symbolically propagates per-operator *byte envelopes*
/// bottom-up over a physical plan: every operator's output is bounded in
/// the flat IdTable byte model (fixed-width rows of 8-byte term ids plus a
/// 16-byte batch header), operator working sets (hash-build side, broadcast
/// replicas, sort buffers) are added on top, and the plan's shuffle-barrier
/// stage structure is folded into a peak concurrent envelope — the most
/// bytes the simulated cluster can have live at once while the plan runs.
///
/// Envelopes are *bounds*, not estimates: a node's row bound prefers the
/// planner's sound cap (PlanNode::max_cardinality, the size of the scanned
/// base relation) over its selectivity estimate, and interior bounds are
/// derived structurally (equi-joins bounded by the larger input times a
/// small fanout headroom, capped at the product; Cartesian products by the
/// product). The soundness contract — static peak envelope >= bytes
/// actually observed by EXPLAIN ANALYZE — is enforced as a property test
/// over the whole LUBM corpus x all twelve engine variants, and the
/// envelope-vs-actual ratio is gated in CI so the bounds stay useful.
///
/// Rule catalog (DESIGN.md has the full symptom/term/fix table):
///   RS001 ERROR  broadcast replica exceeds the per-executor budget
///   RS002 ERROR  peak stage envelope exceeds the cluster budget
///   RS003 WARN   unbounded envelope: a kNoEstimate leaf feeds a blocking
///                operator, so no byte bound exists for its working set
///   RS004 WARN   cache retention dominated by a never-reread RDD
///                (emitted by spark::LineageGraph::AnalyzeRetention)
///   RS005 WARN   cartesian/star working set superlinear in its inputs
///   RS006 WARN   envelope drift: a plan's assumed envelope diverges from
///                the actuals EXPLAIN ANALYZE observed beyond a bound

/// Byte model shared with sparql::IdTable (EstimatedByteSize):
/// width * 8 bytes per row, one 16-byte header per materialized batch.
inline constexpr uint64_t kEnvelopeBytesPerCell = 8;
inline constexpr uint64_t kEnvelopeBatchHeaderBytes = 16;

/// Envelope value meaning "no finite bound derivable".
inline constexpr uint64_t kUnboundedBytes =
    std::numeric_limits<uint64_t>::max();

/// Model constants. kJoinFanoutHeadroom multiplies the larger input of a
/// keyed equi-join (LUBM-style foreign-key joins stay below the larger
/// input; the headroom absorbs moderate key fanout). kHashBuildFactor
/// covers hash-table overhead over the build side's payload bytes.
/// kSortBufferFactor covers the sort/dedup buffer ORDER BY and DISTINCT
/// materialize over the final output.
inline constexpr uint64_t kJoinFanoutHeadroom = 2;
inline constexpr uint64_t kHashBuildFactor = 2;
inline constexpr uint64_t kSortBufferFactor = 2;
/// RS005 fires when a product grows beyond this multiple of its inputs.
inline constexpr uint64_t kSuperlinearFactor = 4;
/// RS006 default: envelope more than this multiple over (or any amount
/// under) the observed bytes counts as drift.
inline constexpr double kEnvelopeDriftBound = 16.0;

/// The budgets and cluster facts the envelope is checked against.
struct ResourceProfile {
  std::string engine_name;
  int num_executors = 4;
  /// Memory one executor can dedicate to a single query's working sets and
  /// broadcast replicas. The model default stands in for a typical
  /// spark.executor.memory slice; serving overrides the cluster budget
  /// with RDFSPARK_MEMORY_BUDGET.
  uint64_t executor_budget_bytes = 64ull << 20;
  /// Whole-cluster budget for the peak concurrent envelope; 0 derives
  /// num_executors * executor_budget_bytes.
  uint64_t cluster_budget_bytes = 0;
  /// The query carries ORDER BY or DISTINCT: the root pays a sort buffer.
  bool sort_at_root = false;

  uint64_t ClusterBudget() const {
    return cluster_budget_bytes != 0
               ? cluster_budget_bytes
               : executor_budget_bytes *
                     static_cast<uint64_t>(num_executors < 1 ? 1
                                                             : num_executors);
  }

  /// Profile for plans built by an engine bound to `config`.
  static ResourceProfile FromCluster(const spark::ClusterConfig& config,
                                     const EngineProfile& engine);
};

/// Per-node envelope, in the pre-order position of the node in the plan.
struct NodeEnvelope {
  std::string path;       ///< Same path syntax as the verifier's findings.
  NodeKind kind = NodeKind::kProject;
  uint64_t row_bound = kNoEstimate;  ///< kNoEstimate = unbounded.
  uint64_t width = 1;                ///< Output schema width (variables).
  uint64_t output_bytes = kUnboundedBytes;
  uint64_t working_bytes = 0;  ///< Hash build / broadcast / sort term.
  uint64_t shuffle_bytes = 0;  ///< In-flight shuffle buffer term.
  int stage = 0;               ///< Shuffle-barrier stage index (0-based).
};

/// One stage's concurrent envelope: everything retained up to and including
/// the stage (the simulator retains every computed partition), the working
/// sets of the operators running in the stage, and the shuffle buffers
/// crossing into it.
struct StageEnvelope {
  int stage = 0;
  uint64_t live_output_bytes = 0;
  uint64_t working_bytes = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t total_bytes = 0;  ///< Sum; kUnboundedBytes when poisoned.
};

struct ResourceAnalysis {
  std::vector<NodeEnvelope> nodes;    ///< Pre-order, deterministic.
  std::vector<StageEnvelope> stages;  ///< Ascending stage index.
  /// Max stage total: the peak concurrent envelope the admission gate and
  /// the soundness property compare against budgets and actuals.
  uint64_t peak_bytes = 0;
  /// Sum of all operator output envelopes — the "over-estimation ratio"
  /// numerator CI gates against observed bytes (working sets excluded:
  /// they are deliberate safety margin, not estimation error).
  uint64_t output_bytes = 0;
  bool bounded = true;
  std::vector<Diagnostic> findings;  ///< RS001/RS002/RS003/RS005.
};

/// Pure static analysis: no Spark state touched, no metrics charged.
/// Deterministic: a pure function of the plan tree and the profile, so the
/// result is byte-identical regardless of executor threading.
ResourceAnalysis AnalyzeResources(const PlanNode& root,
                                  const ResourceProfile& profile);

/// The observed counterpart, folded over a plan EXPLAIN ANALYZE annotated
/// (PlanExecutor with collect_actuals): the same IdTable byte model with
/// each operator's *actual* output rows. Nodes without known actuals
/// (descriptive inner nodes of monolithic back-ends) contribute nothing.
struct ObservedFootprint {
  uint64_t output_bytes = 0;
  int nodes_with_actuals = 0;
};

ObservedFootprint ObserveFootprint(const PlanNode& root);

/// RS006 drift check: compares a plan's assumed output envelope against the
/// bytes a profiled execution actually materialized. Fires when the
/// envelope under-estimates (observed > envelope — a soundness violation)
/// or over-estimates beyond `bound`.
std::vector<Diagnostic> DriftFindings(uint64_t envelope_output_bytes,
                                      const ObservedFootprint& observed,
                                      double bound = kEnvelopeDriftBound);

/// Scan-calibration sample: envelope vs observed bytes summed over exactly
/// the scan leaves whose actual output is known. Interior join/product
/// bounds compound multiplicatively by design (that is what makes them
/// sound), so whole-plan sums over-estimate without limit as plans deepen;
/// the *leaves* are where the statistics live, and their ratio is what CI
/// gates to keep the model calibrated. `analysis` must come from
/// AnalyzeResources over this same `root` (pre-order node alignment).
struct CalibrationSample {
  uint64_t envelope_bytes = 0;
  uint64_t observed_bytes = 0;
  int leaves = 0;  ///< Scan leaves with known actuals and a bounded envelope.
};

CalibrationSample CalibrateScans(const PlanNode& root,
                                 const ResourceAnalysis& analysis);

/// Deterministic text rendering of an analysis: one line per stage plus
/// the peak/output summary (integer bytes only, so output is byte-stable).
std::string RenderEnvelope(const ResourceAnalysis& analysis);

}  // namespace rdfspark::systems::plan

#endif  // RDFSPARK_SYSTEMS_PLAN_RESOURCE_H_
