#ifndef RDFSPARK_SYSTEMS_PLAN_ANALYZE_H_
#define RDFSPARK_SYSTEMS_PLAN_ANALYZE_H_

#include <optional>
#include <string>

#include "spark/rdd.h"
#include "systems/plan/plan.h"

namespace rdfspark::systems::plan {

/// Renders a plan tree that was executed with actuals collection
/// (PlanExecutor(sc, /*collect_actuals=*/true)) as EXPLAIN ANALYZE text.
/// Per-node format, indented two spaces per level like Explain():
///
///   <Kind> [<access> <detail>] (est=<n>|? act=<rows>|? err=<r>x|-)
///       cmp=<n> shuf=<records>/<bytes>B rmt=<bytes>B bcast=<bytes>B
///       reads=L<n>/R<n> tasks=<n> busy=<ms>ms
///
/// (one line per node; wrapped here for readability). `err` is the
/// estimate-error ratio actual/estimated — >1 under-, <1 over-estimate —
/// printed with two decimals, "inf" when est=0 but rows materialized, and
/// "-" when either side is unknown. Counter groups are omitted when zero,
/// so cheap nodes stay one short line. Nodes never executed (descriptive
/// inner nodes under a monolithic root still get charged-through scopes,
/// but un-analyzed trees entirely) render est-only, matching Explain.
///
/// All numbers are bit-identical between executor_threads=1 and N: they
/// are sums over the same multiset of charges (see OpStats).
std::string ExplainAnalyze(const PlanNode& root);

/// Max over all analyzed nodes of the *symmetric* estimate-error factor
/// max(actual/estimate, estimate/actual) — 1.0 is a perfect estimate,
/// larger is worse in either direction. Nodes without an estimate or
/// without known actuals are skipped; a zero on exactly one side counts as
/// the other side's magnitude (an estimate of 0 that materialized rows is
/// as wrong as the row count is large). Returns 0 when no node qualifies.
double MaxEstimateErrorFactor(const PlanNode& root);

/// Estimated vs. observed output cardinality of one leaf operator of an
/// analyzed plan, for the slow-query audit's stats store.
struct LeafActual {
  std::string detail;     ///< Scan annotation: "[<access> <detail>]" text.
  std::string predicate;  ///< Best-effort predicate: the first <IRI> in the
                          ///< detail, else its first token, else "?".
  uint64_t est_rows = 0;  ///< Planner estimate (0 when kNoEstimate).
  uint64_t actual_rows = 0;
};

/// Walks an analyzed plan and returns one LeafActual per leaf node with
/// known actuals, in plan (pre-)order.
std::vector<LeafActual> CollectLeafActuals(const PlanNode& root);

/// Registers a row counter for payloads of type spark::Rdd<T>: rows out is
/// the sum of the RDD's cached partition sizes (every partition an
/// analyzed run needed is cached by the time counting happens; reading
/// sizes charges nothing). Also registers the matching lineage probe, so
/// any payload type the analyzer can count is one the lineage analyzer can
/// snapshot. Engines whose payload element types are translation-unit-local
/// instantiate this in their own TU:
///
///   namespace { const plan::RddPayloadRowCounterRegistration<MyRow> reg; }
///
/// Common payload types (IdRow rows, keyed rows, DataFrame, driver-side
/// vectors) are registered centrally in analyze.cc.
template <typename T>
class RddPayloadRowCounterRegistration {
 public:
  RddPayloadRowCounterRegistration() {
    RegisterPayloadRowCounter(
        [](const PlanPayload& payload) -> std::optional<uint64_t> {
          const auto* rdd = std::any_cast<spark::Rdd<T>>(&payload);
          if (rdd == nullptr || !rdd->valid()) return std::nullopt;
          return rdd->node()->CachedRecords();
        });
    RegisterPayloadLineageProbe(
        [](const PlanPayload& payload) -> std::shared_ptr<spark::RddNodeBase> {
          const auto* rdd = std::any_cast<spark::Rdd<T>>(&payload);
          if (rdd == nullptr || !rdd->valid()) return nullptr;
          return rdd->node();
        });
  }
};

/// Batch-payload variant: partitions hold container elements (IdTable
/// batches, keyed batches, per-vertex tables) whose row count is not the
/// element count. `rows_of(element)` supplies rows-per-element; only cached
/// partitions are read, so counting still charges nothing.
template <typename T, typename RowsFn>
class BatchPayloadRowCounterRegistration {
 public:
  explicit BatchPayloadRowCounterRegistration(RowsFn rows_of) {
    RegisterPayloadRowCounter(
        [rows_of](const PlanPayload& payload) -> std::optional<uint64_t> {
          const auto* rdd = std::any_cast<spark::Rdd<T>>(&payload);
          if (rdd == nullptr || !rdd->valid()) return std::nullopt;
          auto node = rdd->node();
          uint64_t total = 0;
          for (int p = 0; p < node->num_partitions(); ++p) {
            if (!node->IsPartitionCached(p)) continue;
            auto part = node->GetPartition(p);
            for (const T& x : *part) total += rows_of(x);
          }
          return total;
        });
    RegisterPayloadLineageProbe(
        [](const PlanPayload& payload) -> std::shared_ptr<spark::RddNodeBase> {
          const auto* rdd = std::any_cast<spark::Rdd<T>>(&payload);
          if (rdd == nullptr || !rdd->valid()) return nullptr;
          return rdd->node();
        });
  }
};

}  // namespace rdfspark::systems::plan

#endif  // RDFSPARK_SYSTEMS_PLAN_ANALYZE_H_
