#ifndef RDFSPARK_SYSTEMS_PLAN_ANALYZE_H_
#define RDFSPARK_SYSTEMS_PLAN_ANALYZE_H_

#include <optional>
#include <string>

#include "spark/rdd.h"
#include "systems/plan/plan.h"

namespace rdfspark::systems::plan {

/// Renders a plan tree that was executed with actuals collection
/// (PlanExecutor(sc, /*collect_actuals=*/true)) as EXPLAIN ANALYZE text.
/// Per-node format, indented two spaces per level like Explain():
///
///   <Kind> [<access> <detail>] (est=<n>|? act=<rows>|? err=<r>x|-)
///       cmp=<n> shuf=<records>/<bytes>B rmt=<bytes>B bcast=<bytes>B
///       reads=L<n>/R<n> tasks=<n> busy=<ms>ms
///
/// (one line per node; wrapped here for readability). `err` is the
/// estimate-error ratio actual/estimated — >1 under-, <1 over-estimate —
/// printed with two decimals, "inf" when est=0 but rows materialized, and
/// "-" when either side is unknown. Counter groups are omitted when zero,
/// so cheap nodes stay one short line. Nodes never executed (descriptive
/// inner nodes under a monolithic root still get charged-through scopes,
/// but un-analyzed trees entirely) render est-only, matching Explain.
///
/// All numbers are bit-identical between executor_threads=1 and N: they
/// are sums over the same multiset of charges (see OpStats).
std::string ExplainAnalyze(const PlanNode& root);

/// Registers a row counter for payloads of type spark::Rdd<T>: rows out is
/// the sum of the RDD's cached partition sizes (every partition an
/// analyzed run needed is cached by the time counting happens; reading
/// sizes charges nothing). Also registers the matching lineage probe, so
/// any payload type the analyzer can count is one the lineage analyzer can
/// snapshot. Engines whose payload element types are translation-unit-local
/// instantiate this in their own TU:
///
///   namespace { const plan::RddPayloadRowCounterRegistration<MyRow> reg; }
///
/// Common payload types (IdRow rows, keyed rows, DataFrame, driver-side
/// vectors) are registered centrally in analyze.cc.
template <typename T>
class RddPayloadRowCounterRegistration {
 public:
  RddPayloadRowCounterRegistration() {
    RegisterPayloadRowCounter(
        [](const PlanPayload& payload) -> std::optional<uint64_t> {
          const auto* rdd = std::any_cast<spark::Rdd<T>>(&payload);
          if (rdd == nullptr || !rdd->valid()) return std::nullopt;
          return rdd->node()->CachedRecords();
        });
    RegisterPayloadLineageProbe(
        [](const PlanPayload& payload) -> std::shared_ptr<spark::RddNodeBase> {
          const auto* rdd = std::any_cast<spark::Rdd<T>>(&payload);
          if (rdd == nullptr || !rdd->valid()) return nullptr;
          return rdd->node();
        });
  }
};

/// Batch-payload variant: partitions hold container elements (IdTable
/// batches, keyed batches, per-vertex tables) whose row count is not the
/// element count. `rows_of(element)` supplies rows-per-element; only cached
/// partitions are read, so counting still charges nothing.
template <typename T, typename RowsFn>
class BatchPayloadRowCounterRegistration {
 public:
  explicit BatchPayloadRowCounterRegistration(RowsFn rows_of) {
    RegisterPayloadRowCounter(
        [rows_of](const PlanPayload& payload) -> std::optional<uint64_t> {
          const auto* rdd = std::any_cast<spark::Rdd<T>>(&payload);
          if (rdd == nullptr || !rdd->valid()) return std::nullopt;
          auto node = rdd->node();
          uint64_t total = 0;
          for (int p = 0; p < node->num_partitions(); ++p) {
            if (!node->IsPartitionCached(p)) continue;
            auto part = node->GetPartition(p);
            for (const T& x : *part) total += rows_of(x);
          }
          return total;
        });
    RegisterPayloadLineageProbe(
        [](const PlanPayload& payload) -> std::shared_ptr<spark::RddNodeBase> {
          const auto* rdd = std::any_cast<spark::Rdd<T>>(&payload);
          if (rdd == nullptr || !rdd->valid()) return nullptr;
          return rdd->node();
        });
  }
};

}  // namespace rdfspark::systems::plan

#endif  // RDFSPARK_SYSTEMS_PLAN_ANALYZE_H_
