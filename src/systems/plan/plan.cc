#include "systems/plan/plan.h"

#include <mutex>

#include "spark/rdd.h"

namespace rdfspark::systems::plan {

const char* NodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::kPatternScan:
      return "PatternScan";
    case NodeKind::kPartitionedHashJoin:
      return "PartitionedHashJoin";
    case NodeKind::kBroadcastJoin:
      return "BroadcastJoin";
    case NodeKind::kCartesianProduct:
      return "CartesianProduct";
    case NodeKind::kLocalStarMatch:
      return "LocalStarMatch";
    case NodeKind::kFilter:
      return "Filter";
    case NodeKind::kProject:
      return "Project";
  }
  return "unknown";
}

const char* AccessPathName(AccessPath a) {
  switch (a) {
    case AccessPath::kNone:
      return "";
    case AccessPath::kFullScan:
      return "full-scan";
    case AccessPath::kVpTable:
      return "vp";
    case AccessPath::kExtVpTable:
      return "extvp";
    case AccessPath::kSubjectStar:
      return "subject-star";
    case AccessPath::kGraphTraversal:
      return "graph";
    case AccessPath::kClassIndex:
      return "class-index";
    case AccessPath::kReplica:
      return "replica";
  }
  return "";
}

PlanPtr MakeScan(NodeKind kind, AccessPath access, std::string detail,
                 uint64_t est, ExecFn exec) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->access_path = access;
  node->detail = std::move(detail);
  node->est_cardinality = est;
  node->exec = std::move(exec);
  return node;
}

PlanPtr MakeUnary(NodeKind kind, std::string detail, PlanPtr child,
                  ExecFn exec) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->detail = std::move(detail);
  node->children.push_back(std::move(child));
  node->exec = std::move(exec);
  return node;
}

PlanPtr MakeBinary(NodeKind kind, std::string detail, PlanPtr left,
                   PlanPtr right, ExecFn exec) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->detail = std::move(detail);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->exec = std::move(exec);
  return node;
}

PlanPtr ConstantResultPlan(sparql::BindingTable table, std::string detail) {
  auto node = std::make_unique<PlanNode>();
  node->kind = NodeKind::kProject;
  node->detail = std::move(detail);
  node->est_cardinality = table.num_rows();
  node->max_cardinality = table.num_rows();  // The answer is the bound.
  node->out_vars = table.vars();
  auto shared = std::make_shared<sparql::BindingTable>(std::move(table));
  node->exec = [shared](std::vector<PlanPayload>) -> Result<PlanPayload> {
    return PlanPayload(*shared);
  };
  return node;
}

namespace {

void ExplainNode(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(NodeKindName(node.kind));
  std::string bracket = AccessPathName(node.access_path);
  if (!node.detail.empty()) {
    if (!bracket.empty()) bracket += " ";
    bracket += node.detail;
  }
  if (!bracket.empty()) {
    out->append(" [");
    out->append(bracket);
    out->append("]");
  }
  out->append(" (est=");
  out->append(node.est_cardinality == kNoEstimate
                  ? std::string("?")
                  : std::to_string(node.est_cardinality));
  out->append(")\n");
  for (const auto& child : node.children) {
    ExplainNode(*child, depth + 1, out);
  }
}

}  // namespace

std::string Explain(const PlanNode& root) {
  std::string out;
  ExplainNode(root, 0, &out);
  return out;
}

namespace {

std::vector<PayloadRowCounter>& PayloadRowCounters() {
  static auto* counters = new std::vector<PayloadRowCounter>();
  return *counters;
}

std::mutex& PayloadRowCountersMutex() {
  static auto* mu = new std::mutex();
  return *mu;
}

}  // namespace

void RegisterPayloadRowCounter(PayloadRowCounter counter) {
  std::lock_guard<std::mutex> lock(PayloadRowCountersMutex());
  PayloadRowCounters().push_back(std::move(counter));
}

namespace {

std::vector<PayloadLineageProbe>& PayloadLineageProbes() {
  static auto* probes = new std::vector<PayloadLineageProbe>();
  return *probes;
}

}  // namespace

void RegisterPayloadLineageProbe(PayloadLineageProbe probe) {
  std::lock_guard<std::mutex> lock(PayloadRowCountersMutex());
  PayloadLineageProbes().push_back(std::move(probe));
}

std::shared_ptr<spark::RddNodeBase> ProbePayloadLineage(
    const PlanPayload& payload) {
  if (!payload.has_value()) return nullptr;
  std::lock_guard<std::mutex> lock(PayloadRowCountersMutex());
  for (const auto& probe : PayloadLineageProbes()) {
    if (auto node = probe(payload)) return node;
  }
  return nullptr;
}

std::optional<uint64_t> CountPayloadRows(const PlanPayload& payload) {
  if (!payload.has_value()) return std::nullopt;
  if (const auto* table = std::any_cast<sparql::BindingTable>(&payload)) {
    return table->num_rows();
  }
  std::lock_guard<std::mutex> lock(PayloadRowCountersMutex());
  for (const auto& counter : PayloadRowCounters()) {
    if (auto rows = counter(payload)) return rows;
  }
  return std::nullopt;
}

Result<PlanPayload> PlanExecutor::RunNode(const PlanNode& node) {
  std::vector<PlanPayload> inputs;
  inputs.reserve(node.children.size());
  for (const auto& child : node.children) {
    RDFSPARK_ASSIGN_OR_RETURN(PlanPayload payload, RunNode(*child));
    inputs.push_back(std::move(payload));
  }
  std::shared_ptr<spark::OpStats> stats;
  if (collect_actuals_) {
    stats = std::make_shared<spark::OpStats>();
    node.actuals = stats;
  }
  Result<PlanPayload> out = PlanPayload{};
  {
    spark::OpScopeGuard scope(stats);
    if (node.exec) out = node.exec(std::move(inputs));
  }
  if (collect_actuals_ && out.ok()) analyzed_.emplace_back(&node, *out);
  return out;
}

Result<sparql::BindingTable> PlanExecutor::Run(const PlanNode& root) {
  analyzed_.clear();
  lineage_roots_.clear();
  RDFSPARK_ASSIGN_OR_RETURN(PlanPayload out, RunNode(root));
  auto* table = std::any_cast<sparql::BindingTable>(&out);
  if (table == nullptr) {
    return Status::Internal("plan root did not produce a binding table");
  }
  // Count rows only now: lazy payloads (RDDs) have materialized everything
  // they ever will by the time the root collected, so cached partition
  // sizes are the operator's true output cardinality.
  for (auto& [node, payload] : analyzed_) {
    if (auto rows = CountPayloadRows(payload)) {
      node->actuals->rows_out = *rows;
      node->actuals->rows_known = true;
    }
    // Harvest RDD-backed payloads for the lineage analyzer before the
    // payloads are released; the shared_ptr keeps the DAG alive.
    if (auto lineage = ProbePayloadLineage(payload)) {
      bool seen = false;
      for (const auto& existing : lineage_roots_) {
        seen = seen || existing->id() == lineage->id();
      }
      if (!seen) lineage_roots_.push_back(std::move(lineage));
    }
  }
  analyzed_.clear();
  return std::move(*table);
}

}  // namespace rdfspark::systems::plan
