#include "systems/plan/planner_utils.h"

#include <algorithm>

namespace rdfspark::systems::plan {

std::vector<sparql::TriplePattern> OrderConnected(
    std::vector<sparql::TriplePattern> bgp, size_t first) {
  if (bgp.empty()) return bgp;
  std::vector<sparql::TriplePattern> out;
  std::vector<bool> used(bgp.size(), false);
  VarSchema seen;
  auto take = [&](size_t i) {
    used[i] = true;
    for (const auto& v : bgp[i].Variables()) seen.Add(v);
    out.push_back(bgp[i]);
  };
  take(std::min(first, bgp.size() - 1));
  while (out.size() < bgp.size()) {
    int next = -1;
    for (size_t i = 0; i < bgp.size(); ++i) {
      if (used[i]) continue;
      if (!SharedVars(bgp[i], seen).empty()) {
        next = static_cast<int>(i);
        break;
      }
      if (next < 0) next = static_cast<int>(i);  // fallback: disconnected
    }
    take(static_cast<size_t>(next));
  }
  return out;
}

std::vector<sparql::TriplePattern> GreedyConnectedOrder(
    const std::vector<sparql::TriplePattern>& bgp, const PatternCost& cost) {
  if (bgp.empty()) return bgp;
  std::vector<sparql::TriplePattern> result;
  std::vector<bool> used(bgp.size(), false);
  VarSchema seen;
  size_t first = 0;
  for (size_t i = 1; i < bgp.size(); ++i) {
    if (cost(bgp[i]) < cost(bgp[first])) first = i;
  }
  auto take = [&](size_t i) {
    used[i] = true;
    for (const auto& v : bgp[i].Variables()) seen.Add(v);
    result.push_back(bgp[i]);
  };
  take(first);
  while (result.size() < bgp.size()) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < bgp.size(); ++i) {
      if (used[i]) continue;
      bool connected = !SharedVars(bgp[i], seen).empty();
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           cost(bgp[i]) < cost(bgp[static_cast<size_t>(best)]))) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    take(static_cast<size_t>(best));
  }
  return result;
}

std::vector<size_t> SortedConnectedOrder(
    const std::vector<sparql::TriplePattern>& bgp, const PatternCost& cost) {
  std::vector<size_t> order(bgp.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return cost(bgp[a]) < cost(bgp[b]); });
  std::vector<size_t> connected;
  if (bgp.empty()) return connected;
  std::vector<bool> used(bgp.size(), false);
  VarSchema seen;
  auto take = [&](size_t i) {
    used[i] = true;
    for (const auto& v : bgp[i].Variables()) seen.Add(v);
    connected.push_back(i);
  };
  take(order[0]);
  while (connected.size() < bgp.size()) {
    int next = -1;
    for (size_t k = 0; k < order.size(); ++k) {
      size_t i = order[k];
      if (used[i]) continue;
      if (!SharedVars(bgp[i], seen).empty()) {
        next = static_cast<int>(i);
        break;
      }
      if (next < 0) next = static_cast<int>(i);
    }
    take(static_cast<size_t>(next));
  }
  return connected;
}

}  // namespace rdfspark::systems::plan
